package mklite

// PR 9 observability gate: the obs layer is judged by BENCH_PR9.json
// (same "mklite-bench/v1" schema, compared by cmd/mkbench in CI with
// -budget obs_on_overhead_percent=2). Two modes over the same quick
// facility run (the PR8 "facility-quick" scale, single policy so the
// interleaved pair stays inside the PR loop):
//
//   - "obs-off": the plain fleet run — the baseline;
//   - "obs-on": the same run with every standing observability backend
//     attached — facility timeline, backfill decision log, job-namespaced
//     counters and the SLO watchdog.
//
// The derived obs_on_overhead_percent is the median of per-pair on/off
// ratios from interleaved runs — one step beyond the BENCH_PR4
// interleaving: pairing cancels slow machine drift, alternating the
// within-pair order cancels any first-run bias, each pair slot is the min
// of three back-to-back runs (filtering sub-second load transients), and
// the median over ≥ 40 pairs (unlike the best-of difference, whose minimum
// statistics amplify one lucky GC-free window on either side) is robust to
// the multi-second load spikes shared runners exhibit. A placebo check —
// the identical config in both pair halves — holds this estimator within
// ±1.5 percentage points on a loaded runner, inside the 2% budget the CI
// gate enforces. The result is clamped at zero — a negative overhead is
// noise, not a speedup claim. TestObsOffIsByteInvisible pins the stronger
// off-side claim: disabled observability is not merely cheap but
// byte-invisible.

import (
	"bytes"
	"encoding/json"
	"os"
	"runtime"
	"slices"
	"sync"
	"testing"

	"mklite/internal/benchfmt"
	"mklite/internal/fleet"
	"mklite/internal/obs"
)

var benchPR9 struct {
	mu   sync.Mutex
	file *benchfmt.File
}

// recordBenchPR9 rewrites BENCH_PR9.json after every update, so the
// artifact is valid however many benchmarks the -bench filter selects.
func recordBenchPR9(b *testing.B, apply func(f *benchfmt.File)) {
	b.Helper()
	benchPR9.mu.Lock()
	defer benchPR9.mu.Unlock()
	if benchPR9.file == nil {
		benchPR9.file = benchfmt.New("facility-quick", runtime.GOMAXPROCS(0))
	}
	apply(benchPR9.file)
	out, err := benchPR9.file.Marshal()
	if err != nil {
		b.Fatalf("marshal BENCH_PR9: %v", err)
	}
	if err := os.WriteFile("BENCH_PR9.json", out, 0o644); err != nil {
		b.Fatalf("write BENCH_PR9.json: %v", err)
	}
}

// obsBenchConfig is the quick facility stream (the BENCH_PR8
// "facility-quick" scale) under one policy, at width 1 for the
// conservative wall clock.
func obsBenchConfig(b *testing.B) fleet.Config {
	b.Helper()
	cfg := fleet.Config{
		Nodes:    64,
		Jobs:     150,
		Seed:     1,
		Workers:  1,
		Backfill: true,
		Share:    2,
		Counters: true,
	}
	pol, err := fleet.ParsePolicy("heuristic", cfg.Seed, cfg.Workers, nil)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Policy = pol
	return cfg
}

// observed attaches every standing observability backend to cfg: a fresh
// timeline and decision log per run (per-run state, like a trace sink),
// job-namespaced counters, and the stock SLO.
func observed(b *testing.B, cfg fleet.Config) fleet.Config {
	b.Helper()
	cfg.Observe = &obs.Options{
		Timeline:    obs.NewTimeline(cfg.Nodes, cfg.Share, 0),
		Decisions:   obs.NewDecisionLog(),
		JobCounters: true,
	}
	slo, err := obs.ParseSLO(DefaultFacilitySLO)
	if err != nil {
		b.Fatal(err)
	}
	cfg.SLO = slo
	return cfg
}

// BenchmarkObsOverhead times the quick facility run with observability off
// and fully on, interleaved, recording both modes and the derived overhead
// percentage the CI budget gates at ≤2%.
func BenchmarkObsOverhead(b *testing.B) {
	run := func(on bool) func() {
		return func() {
			cfg := obsBenchConfig(b)
			if on {
				cfg = observed(b, cfg)
			}
			res, err := fleet.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if res.Jobs != cfg.Jobs {
				b.Fatalf("run lost jobs: %d of %d", res.Jobs, cfg.Jobs)
			}
			if on && (cfg.Observe.Timeline.Open() != 0 || cfg.Observe.Decisions.Len() != cfg.Jobs) {
				b.Fatal("observed run produced incomplete artifacts")
			}
		}
	}
	// Each pair slot is the best of three back-to-back runs: a sub-second
	// load transient corrupts at most one of the three, so the slot time is
	// the mode's clean cost under whatever sustained load the whole pair
	// shares (and the pair ratio then cancels that shared load). No forced
	// collection between runs: GC phase carries across runs, so the cycle
	// count a mode's allocations earn amortizes to its true fraction —
	// resetting the heap before every run would charge a full quantized
	// cycle to whichever mode sits just past a trigger boundary.
	slot := func(f func()) float64 {
		best := timed(f)
		for range 2 {
			best = min(best, timed(f))
		}
		return best
	}
	// Floor the pair count at 40 regardless of b.N: CI invokes with
	// -benchtime=1x, and the median needs ≥ 40 pairs to sit inside the
	// budget's noise margin (see the placebo figure above).
	n := max(b.N, 40)
	offS, onS, ratios := make([]float64, n), make([]float64, n), make([]float64, n)
	for i := range n {
		// Alternate the within-pair order so neither mode always runs
		// into the other's freshly produced garbage.
		if i%2 == 0 {
			offS[i] = slot(run(false))
			onS[i] = slot(run(true))
		} else {
			onS[i] = slot(run(true))
			offS[i] = slot(run(false))
		}
		ratios[i] = onS[i] / offS[i]
	}
	slices.Sort(ratios)
	overhead := max((ratios[n/2]-1)*100, 0)
	offBest, offSpread := bestSpread(offS)
	onBest, onSpread := bestSpread(onS)
	b.ReportMetric(onBest, "wall-s/op")
	b.ReportMetric(onSpread, "spread-%")
	b.ReportMetric(overhead, "overhead-%")
	recordBenchPR9(b, func(f *benchfmt.File) {
		f.Modes["obs-off"] = benchfmt.Mode{Reps: n, Seconds: offBest, SpreadPercent: offSpread}
		f.Modes["obs-on"] = benchfmt.Mode{Reps: n, Seconds: onBest, SpreadPercent: onSpread}
		if f.Derived == nil {
			f.Derived = map[string]float64{}
		}
		f.Derived["obs_on_overhead_percent"] = overhead
	})
}

// TestObsOffIsByteInvisible is the off-side half of the PR9 claim, at the
// benchmark's own scale: a run with no observability options, one with a
// nil-field Options, and one with an all-off Options produce identical
// result bytes — disabled observability leaves no trace in the artifact.
func TestObsOffIsByteInvisible(t *testing.T) {
	marshal := func(observe *obs.Options) []byte {
		cfg := fleet.Config{
			Nodes:    64,
			Jobs:     150,
			Seed:     1,
			Workers:  1,
			Backfill: true,
			Share:    2,
			Counters: true,
			Observe:  observe,
		}
		pol, err := fleet.ParsePolicy("heuristic", cfg.Seed, cfg.Workers, nil)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Policy = pol
		res, err := fleet.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	base := marshal(nil)
	if zero := marshal(&obs.Options{}); !bytes.Equal(base, zero) {
		t.Fatal("zero-value obs.Options changed the result bytes")
	}
	if bytes.Contains(base, []byte("job_counters")) || bytes.Contains(base, []byte(`"slo"`)) {
		t.Fatalf("unobserved result leaks observability fields:\n%.300s", base)
	}
}
