// Quickstart: run one application on all three kernel models and compare.
//
//	go run ./examples/quickstart
//
// This is the minimal end-to-end use of the public API: pick an
// application, pick node counts, run, compare figures of merit.
package main

import (
	"fmt"
	"log"

	"mklite"
)

func main() {
	fmt.Println("mklite quickstart: miniFE (strong scaled CG solve) across kernels")
	fmt.Println()

	// The applications the framework models, as in the paper's III-B.
	fmt.Println("Available applications:")
	for _, a := range mklite.Apps() {
		fmt.Printf("  %-10s %s\n", a.Name, a.Desc)
	}
	fmt.Println()

	for _, nodes := range []int{16, 256, 1024} {
		results, err := mklite.Compare("minife", nodes, 1, nil)
		if err != nil {
			log.Fatal(err)
		}
		linux := results[0].FOM
		fmt.Printf("%d nodes (%d ranks):\n", nodes, results[0].Ranks)
		for _, r := range results {
			fmt.Printf("  %-9s %12.4g %s  (%.2fx Linux)\n",
				r.Kernel, r.FOM, r.Unit, r.FOM/linux)
		}
		fmt.Println()
	}
	fmt.Println("The lightweight kernels pull ahead as the job grows: the strong-scaled")
	fmt.Println("CG iterations shrink while the per-iteration allreduce keeps absorbing")
	fmt.Println("the worst OS-noise detour over all ranks — on Linux that maximum climbs")
	fmt.Println("into the heavy tail, on the tickless LWKs there is no tail to hit.")
}
