// Offload-storm example: the discrete-event node model makes the cost of
// system-call offloading visible at the event level. All ranks fire device
// syscalls in lockstep (a neighbour-exchange phase); on the multi-kernels
// those calls cross into Linux and queue on the four OS cores — the
// contention component behind the LAMMPS result (Figure 6b). The trace
// subsystem's queue-depth timeline renders the burst-and-drain sawtooth
// that the elapsed/analytic gap summarises.
//
//	go run ./examples/offloadstorm
package main

import (
	"fmt"
	"log"
	"strings"

	"mklite"
)

func main() {
	cfg := mklite.NodeSimConfig{
		Ranks:              64,
		Steps:              20,
		ComputePerStepSecs: 2e-3, // 2 ms compute
		SyscallsPerStep:    8,    // device syscalls per exchange
		SyscallServiceSecs: 3e-6, // 3 us Linux-side service
		Barrier:            true, // exchanges synchronise the node
		Seed:               1,
		TraceQueueDepth:    true, // observational: results are unchanged
	}

	fmt.Println("Discrete-event node simulation: 64 ranks, 8 device syscalls/step,")
	fmt.Println("per-step barrier (all ranks fire their syscalls together)")
	fmt.Println()
	fmt.Printf("%-10s %12s %12s %14s %16s %11s\n",
		"kernel", "elapsed", "analytic", "worst syscall", "offloads served", "peak queue")
	var mck mklite.NodeSimResult
	for _, k := range []mklite.Kernel{mklite.Linux, mklite.MOS, mklite.McKernel} {
		res, err := mklite.SimulateNode(k, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %10.3fms %10.3fms %12.1fus %16d %11d\n",
			res.Kernel,
			res.ElapsedSeconds*1e3,
			res.AnalyticSeconds*1e3,
			res.MaxOffloadLatencySec*1e6,
			res.OffloadsServiced,
			peakDepth(res.QueueDepth))
		if k == mklite.McKernel {
			mck = res
		}
	}
	fmt.Println()
	fmt.Println("Linux services every call natively in well under a microsecond. The")
	fmt.Println("multi-kernels pay the crossing (thread migration is cheaper than the")
	fmt.Println("proxy round trip) and, because all 64 ranks burst at once into 4")
	fmt.Println("Linux-side cores, the worst call waits in the IKC queue far beyond the")
	fmt.Println("uncontended round trip — the gap between 'analytic' and 'elapsed'.")
	fmt.Println("On a user-space-driven fabric none of this happens (see Fig. 6b).")

	fmt.Println()
	fmt.Println("McKernel IKC queue depth over the first exchange (virtual time):")
	printTimeline(mck.QueueDepth)
}

func peakDepth(samples []mklite.CounterSample) int64 {
	var peak int64
	for _, s := range samples {
		peak = max(peak, s.Value)
	}
	return peak
}

// printTimeline renders one burst-and-drain cycle of the queue-depth
// counter as an ASCII strip chart: each row is one timeline sample (an
// enqueue or a dequeue), the bar is the depth at that instant.
func printTimeline(samples []mklite.CounterSample) {
	if len(samples) == 0 {
		fmt.Println("  (no samples — enable TraceQueueDepth)")
		return
	}
	// The barrier makes every step identical; the first drain back to
	// zero bounds one full cycle.
	cycle := samples
	for i := 1; i < len(samples); i++ {
		if samples[i].Value == 0 {
			cycle = samples[:i+1]
			break
		}
	}
	peak := peakDepth(cycle)
	stride := (len(cycle) + 19) / 20 // at most ~20 rows
	for i := 0; i < len(cycle); i += stride {
		s := cycle[i]
		width := int(s.Value * 50 / max(peak, 1))
		fmt.Printf("  %9.3fms |%-50s| %d\n",
			s.TimeSeconds*1e3, strings.Repeat("#", width), s.Value)
	}
	fmt.Printf("  peak depth %d: the node's whole exchange burst serialises behind\n", peak)
	fmt.Println("  the Linux-side service cores, then drains before compute resumes.")
}
