// Offload-storm example: the discrete-event node model makes the cost of
// system-call offloading visible at the event level. All ranks fire device
// syscalls in lockstep (a neighbour-exchange phase); on the multi-kernels
// those calls cross into Linux and queue on the four OS cores — the
// contention component behind the LAMMPS result (Figure 6b).
//
//	go run ./examples/offloadstorm
package main

import (
	"fmt"
	"log"

	"mklite"
)

func main() {
	cfg := mklite.NodeSimConfig{
		Ranks:              64,
		Steps:              20,
		ComputePerStepSecs: 2e-3, // 2 ms compute
		SyscallsPerStep:    8,    // device syscalls per exchange
		SyscallServiceSecs: 3e-6, // 3 us Linux-side service
		Barrier:            true, // exchanges synchronise the node
		Seed:               1,
	}

	fmt.Println("Discrete-event node simulation: 64 ranks, 8 device syscalls/step,")
	fmt.Println("per-step barrier (all ranks fire their syscalls together)")
	fmt.Println()
	fmt.Printf("%-10s %12s %12s %14s %16s\n",
		"kernel", "elapsed", "analytic", "worst syscall", "offloads served")
	for _, k := range []mklite.Kernel{mklite.Linux, mklite.MOS, mklite.McKernel} {
		res, err := mklite.SimulateNode(k, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %10.3fms %10.3fms %12.1fus %16d\n",
			res.Kernel,
			res.ElapsedSeconds*1e3,
			res.AnalyticSeconds*1e3,
			res.MaxOffloadLatencySec*1e6,
			res.OffloadsServiced)
	}
	fmt.Println()
	fmt.Println("Linux services every call natively in well under a microsecond. The")
	fmt.Println("multi-kernels pay the crossing (thread migration is cheaper than the")
	fmt.Println("proxy round trip) and, because all 64 ranks burst at once into 4")
	fmt.Println("Linux-side cores, the worst call waits in the IKC queue far beyond the")
	fmt.Println("uncontended round trip — the gap between 'analytic' and 'elapsed'.")
	fmt.Println("On a user-space-driven fabric none of this happens (see Fig. 6b).")
}
