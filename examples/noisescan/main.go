// Noise example: measure per-kernel interference with FWQ, then watch the
// bulk-synchronous amplification law turn microseconds of jitter into a
// scaling cliff (the mechanism behind the paper's Figures 5b and 6a).
//
//	go run ./examples/noisescan
package main

import (
	"fmt"
	"log"

	"mklite"
)

func main() {
	fmt.Println("Step 1 — FWQ microbenchmark (1 ms quanta): per-core interference")
	fmt.Println()
	fmt.Printf("%-10s %16s %18s\n", "kernel", "noise (mean %)", "max stretch (%)")
	for _, s := range mklite.MeasureNoise(1, 10000) {
		fmt.Printf("%-10s %16.5f %18.3f\n", s.Kernel, s.NoisePercent, s.MaxStretchPercent)
	}

	fmt.Println()
	fmt.Println("Step 2 — amplification: MILC ends every short CG iteration with a")
	fmt.Println("global allreduce, which waits for the slowest of all ranks. Watch the")
	fmt.Println("Linux noise share of each step grow with the job:")
	fmt.Println()
	fmt.Printf("%8s %12s %14s %14s\n", "nodes", "ranks", "Linux noise", "LWK/Linux")
	for _, nodes := range []int{1, 16, 128, 1024, 2048} {
		lin, err := mklite.Run("milc", mklite.Linux, nodes, 1, nil)
		if err != nil {
			log.Fatal(err)
		}
		mck, err := mklite.Run("milc", mklite.McKernel, nodes, 1, nil)
		if err != nil {
			log.Fatal(err)
		}
		noiseShare := lin.Breakdown["noise"] / lin.ElapsedSeconds * 100
		fmt.Printf("%8d %12d %13.1f%% %13.2fx\n", nodes, lin.Ranks, noiseShare, mck.FOM/lin.FOM)
	}
	fmt.Println()
	fmt.Println("The per-core noise never changes — only the rank count does. A detour")
	fmt.Println("that steals 0.04% of one core becomes the gating term of every")
	fmt.Println("iteration once 131,072 ranks synchronise through it.")
}
