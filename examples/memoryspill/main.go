// Memory-hierarchy example: CCS-QCD's working set is double the 16 GiB of
// on-package MCDRAM, so placement policy decides performance (the paper's
// Figure 5a):
//
//   - Linux in SNC-4 mode cannot express "prefer the four MCDRAM domains,
//     spill to DDR4" with standard interfaces, so it runs from DDR4;
//
//   - mOS divides MCDRAM upfront, rank by rank, respecting NUMA boundaries;
//
//   - McKernel falls back to demand paging when the preferred domain is
//     short, letting the node's ranks share MCDRAM by touch order.
//
//     go run ./examples/memoryspill
package main

import (
	"fmt"
	"log"

	"mklite"
)

func main() {
	const nodes = 64
	fmt.Printf("CCS-QCD (32 GiB/node working set vs 16 GiB MCDRAM), %d nodes\n\n", nodes)

	results, err := mklite.Compare("ccs-qcd", nodes, 1, nil)
	if err != nil {
		log.Fatal(err)
	}
	linux := results[0].FOM
	fmt.Printf("%-9s %14s %10s %14s %13s\n", "kernel", "Mflops/s/node", "vs Linux", "MCDRAM bytes", "demand ranks")
	for _, r := range results {
		fmt.Printf("%-9s %14.4g %9.2fx %14d %13d\n",
			r.Kernel, r.FOM, r.FOM/linux, r.MCDRAMBytes, r.DemandRanks)
	}

	// The section IV follow-up: how much of McKernel's win is MCDRAM?
	ddr, err := mklite.Run("ccs-qcd", mklite.McKernel, nodes, 1, &mklite.Options{ForceDDROnly: true})
	if err != nil {
		log.Fatal(err)
	}
	mck := results[1]
	fmt.Printf("\nMcKernel pinned to DDR4: %.4g (%.1f%% slower than its MCDRAM-spill run)\n",
		ddr.FOM, (1-ddr.FOM/mck.FOM)*100)
	fmt.Println("\nLinux runs everything from DDR4; both LWKs fill MCDRAM and spill the")
	fmt.Println("remainder 'transparently and seamlessly'. McKernel's demand-paged ranks")
	fmt.Println("land their hot field arrays in MCDRAM first, which is why it also beats")
	fmt.Println("mOS's rigid upfront division here.")
}
