// Heap-optimisation example: the paper's Table I and section IV brk study.
// LULESH 2.0 calls brk() thousands of times per run — 5:2:1
// query:grow:shrink, a peak heap of tens of megabytes but *gigabytes* of
// cumulative growth. The Linux heap turns that churn into demand faults and
// full-page clears every timestep; the LWK HPC heap grows in pre-zeroed
// 2 MiB chunks, never returns memory, and never faults.
//
//	go run ./examples/heapoptim
package main

import (
	"fmt"
	"log"

	"mklite"
)

func main() {
	fmt.Println("LULESH 2.0, single node, all memory pinned to DDR4 (Table I setup)")
	fmt.Println()

	off := false
	configs := []struct {
		name string
		k    mklite.Kernel
		opts *mklite.Options
	}{
		{"Linux", mklite.Linux, &mklite.Options{ForceDDROnly: true}},
		{"mOS, heap management disabled", mklite.MOS, &mklite.Options{ForceDDROnly: true, HPCHeap: &off}},
		{"mOS, regular heap management", mklite.MOS, &mklite.Options{ForceDDROnly: true}},
	}
	var linux float64
	fmt.Printf("%-31s %12s %9s %12s\n", "configuration", "zones/s", "relative", "heap faults")
	for i, c := range configs {
		r, err := mklite.Run("lulesh2.0", c.k, 1, 1, c.opts)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			linux = r.FOM
		}
		fmt.Printf("%-31s %12.5g %8.1f%% %12d\n", c.name, r.FOM, r.FOM/linux*100, r.HeapFaults)
	}
	fmt.Println("\n(paper: 100.0% / 106.6% / 121.0%)")

	// The brk trace itself, as logged in section IV.
	traces, err := mklite.ReproduceBrkTrace(mklite.ExperimentConfig{Reps: 1, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nPer-rank brk trace over the run (paper -s30: 7,526/3,028/1,499; 87 MB peak, 22 GB cumulative):")
	for _, tr := range traces {
		fmt.Printf("  %-9s %4d queries %4d grows %4d shrinks; peak %.1f MiB; cumulative %.2f GiB; %d faults\n",
			tr.Kernel, tr.Queries, tr.Grows, tr.Shrinks,
			float64(tr.PeakBytes)/(1<<20), float64(tr.CumulativeBytes)/(1<<30), tr.HeapFaults)
	}
	fmt.Println("\nNote the asymmetry: identical call trace, wildly different kernel work.")
	fmt.Println("Growing 2 MiB at a time and retaining shrunk memory is exactly what a")
	fmt.Println("general-purpose kernel cannot afford to do — and what an LWK can.")
}
