package mklite

import (
	"strings"
	"testing"
)

func TestAppsList(t *testing.T) {
	list := Apps()
	if len(list) != 8 {
		t.Fatalf("%d apps, want 8", len(list))
	}
	for i := 1; i < len(list); i++ {
		if list[i-1].Name >= list[i].Name {
			t.Fatal("apps not sorted")
		}
	}
	for _, a := range list {
		if a.Unit == "" || a.RanksPerNode <= 0 || len(a.NodeCounts) == 0 {
			t.Fatalf("incomplete app info: %+v", a)
		}
	}
}

func TestParseKernel(t *testing.T) {
	for _, s := range []string{"linux", "mckernel", "mos"} {
		if _, err := ParseKernel(s); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ParseKernel("windows"); err == nil {
		t.Fatal("bad kernel accepted")
	}
}

func TestRunBasic(t *testing.T) {
	r, err := Run("milc", McKernel, 16, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.App != "milc" || r.Kernel != "McKernel" || r.Nodes != 16 {
		t.Fatalf("metadata: %+v", r)
	}
	if r.FOM <= 0 || r.ElapsedSeconds <= 0 {
		t.Fatal("outcome")
	}
	sum := 0.0
	for _, v := range r.Breakdown {
		sum += v
	}
	if sum <= 0 || sum > r.ElapsedSeconds*1.001 || sum < r.ElapsedSeconds*0.999 {
		t.Fatalf("breakdown sums to %v, elapsed %v", sum, r.ElapsedSeconds)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run("nope", Linux, 1, 1, nil); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := Run("milc", Kernel("bad"), 1, 1, nil); err == nil {
		t.Fatal("unknown kernel accepted")
	}
	if _, err := Run("milc", Linux, 0, 1, nil); err == nil {
		t.Fatal("zero nodes accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, _ := Run("hpcg", Linux, 8, 42, nil)
	b, _ := Run("hpcg", Linux, 8, 42, nil)
	if a.FOM != b.FOM {
		t.Fatal("same seed, different FOM")
	}
}

func TestCompare(t *testing.T) {
	rs, err := Compare("geofem", 32, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("%d results", len(rs))
	}
	if rs[0].Kernel != "Linux" || rs[1].Kernel != "McKernel" || rs[2].Kernel != "mOS" {
		t.Fatalf("kernel order: %v %v %v", rs[0].Kernel, rs[1].Kernel, rs[2].Kernel)
	}
}

func TestOptionsPlumbing(t *testing.T) {
	ddr, err := Run("lulesh2.0", McKernel, 1, 1, &Options{ForceDDROnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if ddr.MCDRAMBytes != 0 {
		t.Fatal("ForceDDROnly ignored")
	}
	off := false
	noHeap, err := Run("lulesh2.0", McKernel, 1, 1, &Options{HPCHeap: &off})
	if err != nil {
		t.Fatal(err)
	}
	if noHeap.HeapFaults == 0 {
		t.Fatal("HPCHeap=false should fault")
	}
	withHeap, _ := Run("lulesh2.0", McKernel, 1, 1, nil)
	if withHeap.HeapFaults != 0 {
		t.Fatal("default HPC heap should not fault")
	}
}

func TestUserSpaceFabricOption(t *testing.T) {
	opa, _ := Run("lammps", McKernel, 256, 1, nil)
	us, _ := Run("lammps", McKernel, 256, 1, &Options{UserSpaceFabric: true})
	if us.FOM <= opa.FOM {
		t.Fatal("user-space fabric should remove the offload penalty")
	}
}

func TestDescribe(t *testing.T) {
	lin, err := Describe(Linux)
	if err != nil {
		t.Fatal(err)
	}
	if lin.UnsupportedSyscalls != 0 || !lin.Preemptive {
		t.Fatalf("linux info: %+v", lin)
	}
	mck, _ := Describe(McKernel)
	if mck.UnsupportedSyscalls == 0 || mck.Preemptive {
		t.Fatalf("mckernel info: %+v", mck)
	}
	if mck.NoiseRate >= lin.NoiseRate {
		t.Fatal("LWK should be quieter")
	}
	if lin.OSCores != 4 || lin.AppCores != 64 {
		t.Fatalf("partition: %+v", lin)
	}
	if _, err := Describe(Kernel("bad")); err == nil {
		t.Fatal("bad kernel accepted")
	}
}

func TestMeasureNoise(t *testing.T) {
	samples := MeasureNoise(1, 2000)
	if len(samples) != 3 {
		t.Fatal("sample count")
	}
	byK := map[Kernel]NoiseSample{}
	for _, s := range samples {
		byK[s.Kernel] = s
	}
	if byK[McKernel].NoisePercent >= byK[Linux].NoisePercent {
		t.Fatalf("noise ordering: %+v", byK)
	}
	if byK[Linux].MaxStretchPercent < byK[Linux].NoisePercent {
		t.Fatal("max stretch below mean")
	}
}

func TestConformanceFacade(t *testing.T) {
	reports, rendered, err := Conformance()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"linux": 0, "mckernel": 32, "mos": 111}
	for _, rep := range reports {
		if rep.Failed != want[rep.Kernel] {
			t.Fatalf("%s: %d failures", rep.Kernel, rep.Failed)
		}
		if rep.Total != 3328 {
			t.Fatalf("total %d", rep.Total)
		}
	}
	if !strings.Contains(rendered, "mckernel") {
		t.Fatal("render")
	}
}

func TestEvaluateLTPCase(t *testing.T) {
	pass, reason, err := EvaluateLTPCase("brk-shrink-fault", MOS)
	if err != nil {
		t.Fatal(err)
	}
	if pass || reason == "" {
		t.Fatalf("mOS should fail brk-shrink-fault: pass=%v reason=%q", pass, reason)
	}
	pass, _, err = EvaluateLTPCase("brk-shrink-fault", Linux)
	if err != nil || !pass {
		t.Fatal("Linux should pass")
	}
	if _, _, err := EvaluateLTPCase("no-such-case", Linux); err == nil {
		t.Fatal("unknown case accepted")
	}
}

func TestReproduceTableIFacade(t *testing.T) {
	rows, rendered, err := ReproduceTableI(ExperimentConfig{Reps: 2, Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0].Percent != 100 {
		t.Fatalf("rows: %+v", rows)
	}
	if !strings.Contains(rendered, "zones/s") {
		t.Fatal("render")
	}
}

func TestReproduceFigure5bFacade(t *testing.T) {
	fig, err := ReproduceFigure5b(ExperimentConfig{Reps: 2, Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if fig.Get("Linux") == nil || fig.Get("McKernel") == nil || fig.Get("mOS") == nil {
		t.Fatal("missing series")
	}
	out := fig.Render()
	if !strings.Contains(out, "fig5b") || !strings.Contains(out, "McKernel") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestReproduceBrkTraceFacade(t *testing.T) {
	traces, err := ReproduceBrkTrace(ExperimentConfig{Reps: 1, Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 3 {
		t.Fatal("trace count")
	}
	for _, tr := range traces {
		if tr.Calls != tr.Queries+tr.Grows+tr.Shrinks {
			t.Fatal("call arithmetic")
		}
	}
}

func TestAppNodeCounts(t *testing.T) {
	counts, err := AppNodeCounts("lulesh2.0")
	if err != nil {
		t.Fatal(err)
	}
	if counts[len(counts)-1] != 1728 {
		t.Fatalf("lulesh counts: %v", counts)
	}
	if _, err := AppNodeCounts("nope"); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestQuadrantOption(t *testing.T) {
	// In quadrant mode Linux can prefer MCDRAM with spill: CCS-QCD gets
	// faster than its SNC-4 DDR-only run.
	snc, err := Run("ccs-qcd", Linux, 16, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	quad, err := Run("ccs-qcd", Linux, 16, 1, &Options{Quadrant: true})
	if err != nil {
		t.Fatal(err)
	}
	if quad.FOM <= snc.FOM {
		t.Fatalf("quadrant Linux (%v) should beat SNC-4 DDR-only (%v)", quad.FOM, snc.FOM)
	}
	if quad.MCDRAMBytes == 0 {
		t.Fatal("quadrant Linux did not use MCDRAM")
	}
}

func TestReproduceQuadrantFacade(t *testing.T) {
	rows, err := ReproduceQuadrant(ExperimentConfig{Reps: 2, Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || rows[0].Percent != 100 {
		t.Fatalf("rows: %+v", rows)
	}
}

func TestReproduceCoreSpecializationFacade(t *testing.T) {
	rows, err := ReproduceCoreSpecialization(ExperimentConfig{Reps: 2, Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatal("row count")
	}
	if rows[2].FOM <= rows[0].FOM {
		t.Fatal("mOS-64 should beat Linux-68")
	}
}

func TestSimulateNode(t *testing.T) {
	cfg := NodeSimConfig{
		Ranks:              8,
		Steps:              10,
		ComputePerStepSecs: 1e-3,
		SyscallsPerStep:    2,
		SyscallServiceSecs: 2e-6,
		Seed:               1,
	}
	mck, err := SimulateNode(McKernel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mck.OffloadsServiced != 8*10*2 {
		t.Fatalf("offloads %d", mck.OffloadsServiced)
	}
	lin, err := SimulateNode(Linux, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if lin.OffloadsServiced != 0 {
		t.Fatal("Linux offloaded")
	}
	if mck.ElapsedSeconds <= 0 || mck.AnalyticSeconds <= 0 {
		t.Fatal("timings")
	}
	if _, err := SimulateNode(Kernel("bad"), cfg); err == nil {
		t.Fatal("bad kernel accepted")
	}
}

func TestMeasureUtilization(t *testing.T) {
	samples := MeasureUtilization(1, 2000)
	if len(samples) != 3 {
		t.Fatal("sample count")
	}
	for _, s := range samples {
		if s.MeanUtilization <= 0 || s.MeanUtilization > 1 {
			t.Fatalf("%s utilisation %v", s.Kernel, s.MeanUtilization)
		}
		if s.WorstWindow > s.MeanUtilization {
			t.Fatal("worst window above mean")
		}
	}
	if samples[1].MeanUtilization <= samples[0].MeanUtilization {
		t.Fatal("LWK should utilise more than Linux")
	}
}

func TestTraceOption(t *testing.T) {
	r, err := Run("lulesh2.0", Linux, 8, 1, &Options{Observe: Observe{Trace: true}})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.StepTrace) != 40 {
		t.Fatalf("%d step traces", len(r.StepTrace))
	}
	if r.StepTrace[0].Heap <= 0 {
		t.Fatal("Linux Lulesh step should show heap time")
	}
	plain, _ := Run("lulesh2.0", Linux, 8, 1, nil)
	if plain.StepTrace != nil {
		t.Fatal("untraced run has a trace")
	}
}

func TestReproduceBrkTraceS30Facade(t *testing.T) {
	res, err := ReproduceBrkTraceS30()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 || res[0].Calls != 12053 {
		t.Fatalf("res: %+v", res)
	}
}

func TestNoiseSamplesAndHistogram(t *testing.T) {
	samples, err := NoiseSamplesMicros(Linux, 1, 2000)
	if err != nil || len(samples) != 2000 {
		t.Fatalf("samples: %d, %v", len(samples), err)
	}
	out := RenderHistogram(samples, 8, "us")
	if !strings.Contains(out, "#") {
		t.Fatal("histogram render")
	}
	if _, err := NoiseSamplesMicros(Kernel("bad"), 1, 10); err == nil {
		t.Fatal("bad kernel accepted")
	}
}

func TestRelativeFacade(t *testing.T) {
	fig, err := ReproduceFigure5b(ExperimentConfig{Reps: 2, Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	rel := Relative(fig)
	if rel.Get("Linux") != nil {
		t.Fatal("baseline series kept")
	}
	mck := rel.Get("McKernel")
	if mck == nil || mck.Unit != "x Linux" {
		t.Fatalf("relative series: %+v", mck)
	}
	last := mck.Points[len(mck.Points)-1]
	if last.Median < 2 {
		t.Fatalf("relative miniFE at scale = %v, expected a cliff", last.Median)
	}
}
