package mklite

// Sequential-vs-parallel wall-clock smoke for the par fan-out. CI runs
//
//	go test -bench=Figure4 -benchtime=1x
//
// which executes BenchmarkFigure4 (the headline-metric benchmark in
// bench_test.go) plus the two benchmarks below; these emit BENCH_PR2.json
// with the measured wall clock per mode so the speedup on a multi-core
// runner is recorded as a build artifact. The output bytes are already
// proven identical across widths by determinism_test.go; this file only
// measures time. (Test files are exempt from mklint, so reading the wall
// clock here does not violate the nowalltime contract — the simulation
// itself never does.)

import (
	"encoding/json"
	"os"
	"runtime"
	"sync"
	"testing"
)

// benchPR2 accumulates results across the benchmarks in this file and
// rewrites BENCH_PR2.json after each one, so the artifact exists however
// many of them the -bench filter selects.
var benchPR2 struct {
	mu       sync.Mutex
	Figure   string             `json:"figure"`
	Maxprocs int                `json:"gomaxprocs"`
	Seconds  map[string]float64 `json:"wall_clock_seconds"`
	Speedup  float64            `json:"speedup,omitempty"`
}

func recordBenchPR2(b *testing.B, mode string, seconds float64) {
	benchPR2.mu.Lock()
	defer benchPR2.mu.Unlock()
	benchPR2.Figure = "figure4-quick"
	benchPR2.Maxprocs = runtime.GOMAXPROCS(0)
	if benchPR2.Seconds == nil {
		benchPR2.Seconds = map[string]float64{}
	}
	benchPR2.Seconds[mode] = seconds
	seq, par := benchPR2.Seconds["sequential"], benchPR2.Seconds["parallel"]
	if seq > 0 && par > 0 {
		benchPR2.Speedup = seq / par
	}
	out, err := json.MarshalIndent(&benchPR2, "", "  ")
	if err != nil {
		b.Fatalf("marshal BENCH_PR2: %v", err)
	}
	if err := os.WriteFile("BENCH_PR2.json", append(out, '\n'), 0o644); err != nil {
		b.Fatalf("write BENCH_PR2.json: %v", err)
	}
}

func benchFigure4Workers(b *testing.B, mode string, workers int) {
	b.Helper()
	cfg := benchCfg()
	cfg.Workers = workers
	for i := 0; i < b.N; i++ {
		figs, _, err := ReproduceFigure4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(figs) != 8 {
			b.Fatal("figure count")
		}
	}
	secs := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(secs, "wall-s/op")
	recordBenchPR2(b, mode, secs)
}

// BenchmarkFigure4Sequential pins the fan-out width to 1: the pure
// sequential path with zero goroutines, the pre-par baseline.
func BenchmarkFigure4Sequential(b *testing.B) {
	benchFigure4Workers(b, "sequential", 1)
}

// BenchmarkFigure4Parallel uses the production default width (GOMAXPROCS).
// On the 4-core CI runner this is expected to be >=2x faster than the
// sequential baseline with byte-identical output.
func BenchmarkFigure4Parallel(b *testing.B) {
	benchFigure4Workers(b, "parallel", 0)
}
