package mklite

// Sequential-vs-parallel wall-clock smoke for the par fan-out. CI runs
//
//	go test -bench=Figure4 -benchtime=1x
//
// which executes BenchmarkFigure4 (the headline-metric benchmark in
// bench_test.go) plus the benchmarks below; through the shared recorder in
// bench_util_test.go they emit BENCH_PR4.json with the best-of-N wall
// clock per mode, so the speedup on a multi-core runner is recorded as a
// build artifact. The output bytes are already proven identical across
// widths by determinism_test.go; this file only measures time.

import "testing"

// BenchmarkFigure4Sequential pins the fan-out width to 1: the pure
// sequential path with zero goroutines, the baseline every overhead
// percentage in BENCH_PR4.json is computed against.
func BenchmarkFigure4Sequential(b *testing.B) {
	benchFigure4Mode(b, "sequential", nil)
}

// BenchmarkFigure4Parallel uses the production default width (GOMAXPROCS).
// On a multi-core runner this is expected to beat the sequential baseline
// with byte-identical output; "parallel_speedup" records by how much.
func BenchmarkFigure4Parallel(b *testing.B) {
	benchFigure4Mode(b, "parallel", func(cfg *ExperimentConfig) { cfg.Workers = 0 })
}
