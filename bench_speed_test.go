package mklite

// PR 7 speed gate: the calendar-queue / columnar-hot-loop optimisation work
// is judged by BENCH_PR7.json (same "mklite-bench/v1" schema, compared by
// cmd/mkbench in CI). Two modes:
//
//   - "figure4-quick": the width-1 quick Figure 4 sweep — the same workload
//     BENCH_PR5's faults-off baseline timed, so the two artifacts are
//     directly comparable across PRs. This is the PR gate.
//   - "figure4-full-2048": the complete Figure 4 sweep (Quick off) — every
//     application at every node count it is evaluated at, up to 2,048
//     nodes x 64 ranks/node (131,072 ranks, the paper's largest
//     configuration) on all three kernels. Smoke-scale and full-scale
//     behaviour differ qualitatively (the order-statistic noise path only
//     engages beyond 1,024 ranks), so the speedup is also measured at the
//     scale that matters. Gated behind MKLITE_BENCH_FULL=1 (the nightly CI
//     step) to keep the PR loop fast; mkbench compare reports a mode
//     missing from the current file without failing, so the PR gate can
//     run the quick mode alone against the full baseline.

import (
	"os"
	"runtime"
	"sync"
	"testing"

	"mklite/internal/benchfmt"
)

// fullScaleNodes is the paper's largest evaluated configuration.
const fullScaleNodes = 2048

var benchPR7 struct {
	mu   sync.Mutex
	file *benchfmt.File
}

func benchPR7File() *benchfmt.File {
	if benchPR7.file == nil {
		benchPR7.file = benchfmt.New("figure4-quick", runtime.GOMAXPROCS(0))
	}
	return benchPR7.file
}

// recordBenchPR7Mode rewrites BENCH_PR7.json after every update, so the
// artifact is valid however many benchmarks the -bench filter selects.
// Regenerating the *checked-in* artifact therefore needs both modes in one
// process: MKLITE_BENCH_FULL=1 go test -bench Speed -benchtime 1x -run '^$' .
// (a quick-only run writes a quick-only file — harmless in CI, where the
// checked-in baseline is stashed first and mkbench compare never fails a
// mode that is present on one side only).
func recordBenchPR7Mode(b *testing.B, mode string, reps int, best, spread float64) {
	b.Helper()
	benchPR7.mu.Lock()
	defer benchPR7.mu.Unlock()
	f := benchPR7File()
	f.Modes[mode] = benchfmt.Mode{Reps: reps, Seconds: best, SpreadPercent: spread}
	out, err := f.Marshal()
	if err != nil {
		b.Fatalf("marshal BENCH_PR7: %v", err)
	}
	if err := os.WriteFile("BENCH_PR7.json", out, 0o644); err != nil {
		b.Fatalf("write BENCH_PR7.json: %v", err)
	}
}

// BenchmarkSpeedFigure4Quick times the quick Figure 4 sweep best-of-N —
// the cross-PR wall-clock trajectory the 25%-improvement acceptance gate
// of the calendar-queue PR was judged on.
func BenchmarkSpeedFigure4Quick(b *testing.B) {
	best, spread := benchBestOf(b, figure4Run(b, nil))
	b.ReportMetric(best, "wall-s/op")
	b.ReportMetric(spread, "spread-%")
	recordBenchPR7Mode(b, "figure4-quick", repsFor(b), best, spread)
}

// BenchmarkSpeedFigure4FullScale times the complete Figure 4 sweep with
// Quick off: all node counts per application — seven of the eight reach
// fullScaleNodes; lulesh's cubic job sizes top out at 1,728 — on all three
// kernels, same reps as the quick grid.
func BenchmarkSpeedFigure4FullScale(b *testing.B) {
	if os.Getenv("MKLITE_BENCH_FULL") == "" {
		b.Skip("full-scale bench: set MKLITE_BENCH_FULL=1 (nightly CI runs it)")
	}
	sawFull := false
	for _, a := range Apps() {
		for _, n := range a.NodeCounts {
			if n == fullScaleNodes {
				sawFull = true
			}
		}
	}
	if !sawFull {
		b.Fatal("no application scales to 2048 nodes")
	}
	cfg := benchCfg()
	cfg.Quick = false
	run := func() {
		figs, _, err := ReproduceFigure4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(figs) != 8 {
			b.Fatalf("expected 8 figures, got %d", len(figs))
		}
	}
	best, spread := benchBestOf(b, run)
	b.ReportMetric(best, "wall-s/op")
	b.ReportMetric(spread, "spread-%")
	recordBenchPR7Mode(b, "figure4-full-2048", repsFor(b), best, spread)
}
