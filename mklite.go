// Package mklite is a simulation framework for lightweight multi-kernel
// operating systems, reproducing Gerofi et al., "Performance and
// Scalability of Lightweight Multi-Kernel based Operating Systems"
// (IEEE IPDPS 2018).
//
// The library models the paper's full stack: Intel Xeon Phi "Knights
// Landing" nodes in SNC-4 flat mode (MCDRAM + DDR4), three kernel
// configurations — production Linux, IHK/McKernel (proxy-process syscall
// offloading) and mOS (thread-migration offloading) — an Omni-Path-like
// fabric whose host driver needs kernel involvement, a hierarchical MPI
// collective model, OS-noise generators, and phase-level workload models
// of the paper's eight evaluation applications. On top of that, the
// experiments API regenerates every table and figure of the evaluation
// section.
//
// Quick start:
//
//	res, err := mklite.Run("minife", mklite.McKernel, 1024, 1, nil)
//	fmt.Println(res.FOM, res.Unit)
//
// See the examples/ directory for complete programs.
package mklite

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"

	"mklite/internal/apps"
	"mklite/internal/cluster"
	"mklite/internal/fabric"
	"mklite/internal/fault"
	"mklite/internal/kernel"
	"mklite/internal/mckernel"
	"mklite/internal/metrics"
	"mklite/internal/mos"
	"mklite/internal/sched"
	"mklite/internal/trace"
)

// Kernel selects one of the three modelled operating systems.
type Kernel string

// The three kernels of the paper's evaluation.
const (
	Linux    Kernel = "linux"
	McKernel Kernel = "mckernel"
	MOS      Kernel = "mos"
)

// Kernels returns all kernels in the paper's comparison order.
func Kernels() []Kernel { return []Kernel{Linux, McKernel, MOS} }

// ParseKernel converts a string (as used on command lines) to a Kernel.
func ParseKernel(s string) (Kernel, error) {
	switch Kernel(s) {
	case Linux, McKernel, MOS:
		return Kernel(s), nil
	}
	return "", fmt.Errorf("mklite: unknown kernel %q (want linux, mckernel or mos)", s)
}

func (k Kernel) internalType() (kernel.Type, error) {
	switch k {
	case Linux:
		return kernel.TypeLinux, nil
	case McKernel:
		return kernel.TypeMcKernel, nil
	case MOS:
		return kernel.TypeMOS, nil
	}
	return 0, fmt.Errorf("mklite: unknown kernel %q", string(k))
}

// Observe groups a run's observability attachments: the per-step trace,
// mechanism counters, the virtual-time event timeline, the metrics registry
// and the flame-graph export. All of them are purely observational — every
// simulated output is byte-identical with or without them attached.
type Observe struct {
	// Trace records a per-timestep breakdown into Result.StepTrace.
	Trace bool
	// Counters attaches a mechanism-counter sink to the run; the
	// aggregated counts land in Result.Counters.
	Counters bool
	// Events records the run's virtual-time event timeline (bounded
	// ring); Result.TraceJSON holds the Chrome trace-event export.
	Events bool
	// EventCap bounds the event ring (0 = trace.DefaultEventCap;
	// negative values are rejected). When the ring overflows, the oldest
	// events are evicted and the export notes the count.
	EventCap int
	// Metrics attaches a metrics registry to the run: latency
	// histograms, per-rank distributions, per-phase virtual-time
	// accounting and gauges. Result.MetricsJSON holds the
	// mklite-metrics/v1 report and Result.MetricsText its rendered
	// tables.
	Metrics bool
	// Flame additionally exports the run's event timeline as a
	// virtual-time-weighted folded-stack flame graph (Result.Folded,
	// loadable by speedscope/inferno/flamegraph.pl). Implies Events.
	Flame bool
}

// Options carries per-run tunables: the model configuration, the Observe
// block, and an optional fault plan.
type Options struct {
	// ForceDDROnly pins all application memory to DDR4 (the Table I
	// and CCS-QCD-DDR configurations).
	ForceDDROnly bool
	// MpolShmPremap enables McKernel's --mpol-shm-premap.
	MpolShmPremap bool
	// DisableSchedYield enables McKernel's --disable-sched-yield.
	DisableSchedYield bool
	// HPCHeap toggles the LWK heap optimisations (nil = kernel
	// default: enabled).
	HPCHeap *bool
	// UserSpaceFabric swaps the Omni-Path model for a fabric driven
	// entirely from user space (no syscalls on the message path).
	UserSpaceFabric bool
	// Quadrant runs the nodes in quadrant mode instead of SNC-4
	// (one DDR4 + one MCDRAM domain; numactl -p works, the SNC-4
	// mesh advantage is lost).
	Quadrant bool
	// Sched selects the scheduling policy of the booted kernel's
	// application cores: one of "cfs", "rr", "coop", "gang", "tickless",
	// "adaptive" (see docs/SCHED.md). Empty keeps each kernel's default —
	// cfs on Linux, coop on the LWKs — under which every output is
	// byte-identical to a build without the scheduler seam.
	Sched string

	// Observe groups the run's observability attachments.
	Observe Observe

	// Faults, when non-nil and non-empty, schedules deterministic fault
	// injection for the run — stragglers, offload stalls, link loss,
	// transient node failures, daemon storms — with job-level retry and
	// optional degraded completion (see docs/FAULTS.md). Faults draw
	// from their own seed-derived stream: a nil or empty plan leaves
	// every output byte-identical to a faultless build.
	Faults *fault.Plan
}

// observe returns the effective observability configuration.
func (o *Options) observe() Observe {
	if o == nil {
		return Observe{}
	}
	return o.Observe
}

// validate rejects malformed options with a proper error (a negative
// EventCap used to be silently treated as the default).
func (o *Options) validate() error {
	if o == nil {
		return nil
	}
	if o.Observe.EventCap < 0 {
		return fmt.Errorf("mklite: negative Observe.EventCap %d", o.Observe.EventCap)
	}
	if o.Sched != "" {
		if _, err := sched.Parse(o.Sched); err != nil {
			return fmt.Errorf("mklite: %w", err)
		}
	}
	return o.Faults.Validate()
}

// StepTrace is one timestep's attribution, in seconds.
type StepTrace struct {
	Compute float64
	Memory  float64
	Heap    float64
	Syscall float64
	Sched   float64
	Comm    float64
	Noise   float64
}

// AppInfo describes one of the modelled applications.
type AppInfo struct {
	Name           string
	Desc           string
	Unit           string
	RanksPerNode   int
	ThreadsPerRank int
	Weak           bool
	NodeCounts     []int
}

// Apps lists the eight evaluation applications.
func Apps() []AppInfo {
	var out []AppInfo
	for _, s := range apps.All() {
		out = append(out, AppInfo{
			Name:           s.Name,
			Desc:           s.Desc,
			Unit:           s.Unit,
			RanksPerNode:   s.RanksPerNode,
			ThreadsPerRank: s.ThreadsPerRank,
			Weak:           s.Weak,
			NodeCounts:     append([]int(nil), s.NodeCounts...),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Result is one run's outcome.
type Result struct {
	App    string
	Kernel string
	Nodes  int
	Ranks  int

	// ElapsedSeconds is the timed (solve) phase duration.
	ElapsedSeconds float64
	// FOM is the application's figure of merit (a rate in Unit).
	FOM  float64
	Unit string

	// Breakdown attributes the elapsed time to mechanisms, in seconds:
	// keys are "compute", "memory", "heap", "syscall", "sched", "comm",
	// "noise", "shm-setup".
	Breakdown map[string]float64

	// Heap accounting of rank 0 (queries/grows/shrinks/peak bytes/
	// cumulative growth/faults).
	HeapQueries, HeapGrows, HeapShrinks int64
	HeapPeakBytes, HeapGrownBytes       int64
	HeapFaults                          int64

	// MCDRAMBytes is the node's MCDRAM residency after setup;
	// DemandRanks counts ranks that ended up demand paged.
	MCDRAMBytes int64
	DemandRanks int

	// StepTrace holds the per-timestep attribution when Options.Trace
	// was set.
	StepTrace []StepTrace

	// Retries counts failed attempts re-executed after injected
	// transient node failures; RecoverySeconds is the virtual time lost
	// to failed attempts and retry backoff (included in ElapsedSeconds).
	// Degraded reports completion on a reduced node set, with LostNodes
	// nodes dropped. All zero — and absent from JSON — without an active
	// fault plan.
	Retries         int     `json:"Retries,omitempty"`
	RecoverySeconds float64 `json:"RecoverySeconds,omitempty"`
	Degraded        bool    `json:"Degraded,omitempty"`
	LostNodes       int     `json:"LostNodes,omitempty"`

	// Counters holds the run's mechanism counters when Options.Counters
	// was set (sorted on export; see docs/TRACING.md for the key
	// namespace).
	Counters map[string]int64 `json:"Counters,omitempty"`
	// TraceJSON holds the Chrome trace-event export when Options.Events
	// was set. Excluded from JSON marshalling — it is a document of its
	// own, not a field; write it to a .trace.json file instead.
	TraceJSON []byte `json:"-"`
	// MetricsJSON holds the mklite-metrics/v1 report when Options.Metrics
	// was set, and MetricsText its rendered tables. Documents of their
	// own, like TraceJSON.
	MetricsJSON []byte `json:"-"`
	MetricsText string `json:"-"`
	// Folded holds the collapsed-stack flame-graph export when
	// Options.Flame was set.
	Folded string `json:"-"`
}

func toJob(appName string, k Kernel, nodes int, seed uint64, opts *Options) (cluster.Job, error) {
	app, err := apps.Get(appName)
	if err != nil {
		return cluster.Job{}, err
	}
	kt, err := k.internalType()
	if err != nil {
		return cluster.Job{}, err
	}
	job := cluster.Job{App: app, Kernel: kt, Nodes: nodes, Seed: seed}
	if opts == nil {
		return job, nil
	}
	job.ForceDDROnly = opts.ForceDDROnly
	job.Quadrant = opts.Quadrant
	job.Trace = opts.observe().Trace
	job.Faults = opts.Faults
	if opts.Sched != "" {
		kind, err := sched.Parse(opts.Sched)
		if err != nil {
			return cluster.Job{}, fmt.Errorf("mklite: %w", err)
		}
		job.Sched = kind
	}
	if opts.UserSpaceFabric {
		job.Fabric = fabric.UserSpaceFabric()
	}
	mckOpts := mckernel.DefaultOptions()
	mckOpts.MpolShmPremap = opts.MpolShmPremap
	mckOpts.DisableSchedYield = opts.DisableSchedYield
	if opts.HPCHeap != nil {
		mckOpts.HPCBrk = *opts.HPCHeap
	}
	job.McK = &mckOpts
	if opts.HPCHeap != nil {
		mosCfg := mos.DefaultConfig()
		mosCfg.HeapManagement = *opts.HPCHeap
		job.MOS = &mosCfg
	}
	return job, nil
}

// Run executes one application at one node count on one kernel. The seed
// makes the run reproducible; repeated measurements should vary it. Run is
// the context.Background() form of RunContext.
func Run(appName string, k Kernel, nodes int, seed uint64, opts *Options) (Result, error) {
	return RunContext(context.Background(), appName, k, nodes, seed, opts)
}

// RunContext is Run with cancellation: fault plans with retries can
// re-execute a job several times, and callers may want to abandon the wait.
// Cancellation is safe for determinism-checked pipelines — a cancelled run
// returns ctx's error and never a partial Result, so no timing-dependent
// output can leak downstream.
func RunContext(ctx context.Context, appName string, k Kernel, nodes int, seed uint64, opts *Options) (Result, error) {
	if err := opts.validate(); err != nil {
		return Result{}, err
	}
	job, err := toJob(appName, k, nodes, seed, opts)
	if err != nil {
		return Result{}, err
	}
	observe := opts.observe()
	var ctrs *trace.Counters
	var evs *trace.Events
	var reg *metrics.Registry
	if observe != (Observe{}) {
		if observe.Counters {
			ctrs = trace.NewCounters()
		}
		if observe.Events || observe.Flame {
			evs = trace.NewEvents(observe.EventCap)
		}
		var obs trace.Observer
		if observe.Metrics {
			reg = metrics.NewRegistry()
			obs = reg
		}
		job.Sink = trace.NewSinkObs(ctrs, evs, obs)
	}
	res, err := cluster.RunContext(ctx, job)
	if err != nil {
		return Result{}, err
	}
	out := Result{
		App:            res.App,
		Kernel:         res.Kernel,
		Nodes:          res.Nodes,
		Ranks:          res.Ranks,
		ElapsedSeconds: res.Elapsed.Seconds(),
		FOM:            res.FOM,
		Unit:           res.Unit,
		Breakdown: map[string]float64{
			"compute":   res.Breakdown.Compute.Seconds(),
			"memory":    res.Breakdown.Memory.Seconds(),
			"heap":      res.Breakdown.Heap.Seconds(),
			"syscall":   res.Breakdown.Syscall.Seconds(),
			"sched":     res.Breakdown.Sched.Seconds(),
			"comm":      res.Breakdown.Comm.Seconds(),
			"noise":     res.Breakdown.Noise.Seconds(),
			"shm-setup": res.Breakdown.SetupShm.Seconds(),
		},
		HeapQueries:    res.HeapStats.Queries,
		HeapGrows:      res.HeapStats.Grows,
		HeapShrinks:    res.HeapStats.Shrinks,
		HeapPeakBytes:  res.HeapStats.Peak,
		HeapGrownBytes: res.HeapStats.GrownBytes,
		HeapFaults:     res.HeapStats.Faults,
		MCDRAMBytes:    res.MCDRAMBytes,
		DemandRanks:    res.DemandRanks,
		StepTrace:      stepTrace(res.Steps),

		Retries:         res.Retries,
		RecoverySeconds: res.Recovery.Seconds(),
		Degraded:        res.Degraded,
		LostNodes:       res.LostNodes,
	}
	if ctrs != nil {
		out.Counters = ctrs.Map()
	}
	if evs != nil {
		out.TraceJSON = evs.JSON()
		if observe.Flame {
			out.Folded = metrics.Folded(evs.Snapshot())
		}
	}
	if reg != nil {
		rep := reg.Report()
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			return Result{}, err
		}
		out.MetricsJSON = buf.Bytes()
		out.MetricsText = rep.Render()
	}
	return out, nil
}

func stepTrace(steps []cluster.StepRecord) []StepTrace {
	if steps == nil {
		return nil
	}
	out := make([]StepTrace, len(steps))
	for i, s := range steps {
		out[i] = StepTrace{
			Compute: s.Compute.Seconds(),
			Memory:  s.Memory.Seconds(),
			Heap:    s.Heap.Seconds(),
			Syscall: s.Syscall.Seconds(),
			Sched:   s.Sched.Seconds(),
			Comm:    s.Comm.Seconds(),
			Noise:   s.Noise.Seconds(),
		}
	}
	return out
}

// FormatCounters renders a counter map as aligned "name value" lines,
// sorted by counter name — the human-readable form of Result.Counters and
// Figure.Counters.
func FormatCounters(m map[string]int64) string { return trace.FormatCounters(m) }

// Compare runs the application on all three kernels with the same seed. A
// kernel that fails no longer aborts the sweep: the successful Results are
// returned alongside a joined error naming the failed kernels, so callers
// can render a partial comparison (check the error, then use whatever
// Results came back).
func Compare(appName string, nodes int, seed uint64, opts *Options) ([]Result, error) {
	var out []Result
	var errs []error
	for _, k := range Kernels() {
		r, err := Run(appName, k, nodes, seed, opts)
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", k, err))
			continue
		}
		out = append(out, r)
	}
	return out, errors.Join(errs...)
}

// ParseFaults parses the -faults command-line syntax into a fault plan —
// see fault.ParsePlan for the clause grammar. An empty spec returns a nil
// plan (no faults).
func ParseFaults(spec string) (*fault.Plan, error) { return fault.ParsePlan(spec) }
