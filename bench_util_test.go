package mklite

// Shared harness for the wall-clock bench smokes (bench_par_test.go,
// bench_trace_test.go, bench_metrics_test.go). Two methodology rules,
// both learned from BENCH_PR3.json recording a *negative* trace-off
// overhead on a shared CI runner:
//
//   - best-of-N: every mode is timed at least benchReps times and reports
//     the minimum, with the (worst-best)/best spread recorded so a
//     consumer can tell a delta from noise;
//   - interleaving: overhead percentages are computed from baseline and
//     probe runs timed alternately within one benchmark, because machine
//     load drifts between benchmarks run seconds apart and that drift is
//     larger than the effects being measured.
//
// All modes accumulate into one BENCH_PR4.json ("mklite-bench/v1") that
// cmd/mkbench compares against the checked-in baseline. (Test files are
// exempt from mklint, so reading the wall clock here does not violate the
// nowalltime contract — the simulation itself never does.)

import (
	"math"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"mklite/internal/benchfmt"
)

// benchReps is the minimum repetition count per mode; the best (minimum)
// wall clock is the reported figure and (worst-best)/best the spread.
const benchReps = 5

var benchPR4 struct {
	mu   sync.Mutex
	file *benchfmt.File
}

// timed runs f once and returns its wall clock in seconds.
func timed(f func()) float64 {
	start := time.Now()
	f()
	return time.Since(start).Seconds()
}

// bestSpread reduces per-rep samples to (best seconds, spread percent).
func bestSpread(samples []float64) (best, spread float64) {
	best, worst := math.Inf(1), 0.0
	for _, s := range samples {
		best = math.Min(best, s)
		worst = math.Max(worst, s)
	}
	return best, (worst - best) / best * 100
}

// benchReps honoring b.N so larger -benchtime just adds reps.
func repsFor(b *testing.B) int {
	if b.N > benchReps {
		return b.N
	}
	return benchReps
}

// benchBestOf times max(b.N, benchReps) back-to-back runs of one mode.
func benchBestOf(b *testing.B, run func()) (best, spread float64) {
	b.Helper()
	samples := make([]float64, repsFor(b))
	for i := range samples {
		samples[i] = timed(run)
	}
	return bestSpread(samples)
}

// benchBestOfN is benchBestOf with an explicit rep floor, for benchmarks
// whose artifact must carry the same rep count as sibling modes measured
// with more reps than the default benchReps.
func benchBestOfN(b *testing.B, n int, run func()) (best, spread float64) {
	b.Helper()
	if b.N > n {
		n = b.N
	}
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = timed(run)
	}
	return bestSpread(samples)
}

// benchInterleaved times base and probe alternately (base first) so both
// see the same slow drift in machine load; the overhead percentage
// computed from the two bests is then a within-window comparison.
func benchInterleaved(b *testing.B, base, probe func()) (baseBest, baseSpread, probeBest, probeSpread float64) {
	b.Helper()
	n := repsFor(b)
	baseS, probeS := make([]float64, n), make([]float64, n)
	for i := 0; i < n; i++ {
		baseS[i] = timed(base)
		probeS[i] = timed(probe)
	}
	baseBest, baseSpread = bestSpread(baseS)
	probeBest, probeSpread = bestSpread(probeS)
	return
}

// flushBenchPR4 recomputes the cross-mode derived metrics and rewrites
// BENCH_PR4.json — called with the lock held after every update, so the
// artifact is valid however many benchmarks the -bench filter selects.
func flushBenchPR4(b *testing.B) {
	b.Helper()
	f := benchPR4.file
	if seq, ok := f.Modes["sequential"]; ok {
		if par, ok2 := f.Modes["parallel"]; ok2 && par.Seconds > 0 {
			if f.Derived == nil {
				f.Derived = map[string]float64{}
			}
			f.Derived["parallel_speedup"] = seq.Seconds / par.Seconds
		}
	}
	out, err := f.Marshal()
	if err != nil {
		b.Fatalf("marshal BENCH_PR4: %v", err)
	}
	if err := os.WriteFile("BENCH_PR4.json", out, 0o644); err != nil {
		b.Fatalf("write BENCH_PR4.json: %v", err)
	}
}

func benchFile() *benchfmt.File {
	if benchPR4.file == nil {
		benchPR4.file = benchfmt.New("figure4-quick", runtime.GOMAXPROCS(0))
	}
	return benchPR4.file
}

// recordBenchPR4Mode folds one mode's measurement into BENCH_PR4.json.
func recordBenchPR4Mode(b *testing.B, mode string, best, spread float64) {
	b.Helper()
	benchPR4.mu.Lock()
	defer benchPR4.mu.Unlock()
	f := benchFile()
	f.Modes[mode] = benchfmt.Mode{Reps: benchReps, Seconds: best, SpreadPercent: spread}
	flushBenchPR4(b)
}

// recordBenchPR4Derived folds one derived metric into BENCH_PR4.json.
func recordBenchPR4Derived(b *testing.B, name string, value float64) {
	b.Helper()
	benchPR4.mu.Lock()
	defer benchPR4.mu.Unlock()
	f := benchFile()
	if f.Derived == nil {
		f.Derived = map[string]float64{}
	}
	f.Derived[name] = value
	flushBenchPR4(b)
}

// figure4Run returns a closure running one Figure 4 quick sweep at width 1
// with the given config tweak.
func figure4Run(b *testing.B, mutate func(*ExperimentConfig)) func() {
	b.Helper()
	cfg := benchCfg()
	cfg.Workers = 1
	if mutate != nil {
		mutate(&cfg)
	}
	return func() {
		figs, _, err := ReproduceFigure4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(figs) != 8 {
			b.Fatal("figure count")
		}
	}
}

// benchFigure4Mode measures one configuration best-of-N on its own —
// right for modes compared qualitatively (sequential vs parallel).
func benchFigure4Mode(b *testing.B, mode string, mutate func(*ExperimentConfig)) {
	b.Helper()
	best, spread := benchBestOf(b, figure4Run(b, mutate))
	b.ReportMetric(best, "wall-s/op")
	b.ReportMetric(spread, "spread-%")
	recordBenchPR4Mode(b, mode, best, spread)
}

// benchFigure4Overhead measures a probe configuration against the
// sequential baseline, interleaved, and records the probe mode plus the
// overhead percentage derived from the paired bests.
func benchFigure4Overhead(b *testing.B, probeMode, derivedName string, mutate func(*ExperimentConfig)) {
	b.Helper()
	baseBest, baseSpread, probeBest, probeSpread := benchInterleaved(b,
		figure4Run(b, nil), figure4Run(b, mutate))
	overhead := (probeBest - baseBest) / baseBest * 100
	b.ReportMetric(probeBest, "wall-s/op")
	b.ReportMetric(probeSpread, "spread-%")
	b.ReportMetric(overhead, "overhead-%")
	recordBenchPR4Mode(b, probeMode, probeBest, probeSpread)
	recordBenchPR4Mode(b, probeMode+"-baseline", baseBest, baseSpread)
	recordBenchPR4Derived(b, derivedName, overhead)
}
