package mklite

// PR 8 facility gate: the fleet scheduler is judged by BENCH_PR8.json
// (same "mklite-bench/v1" schema, compared by cmd/mkbench in CI). Two
// modes:
//
//   - "facility-quick": the quick facility comparison — every kernel
//     policy over the same seeded 150-job stream on a 64-node facility.
//     This is the PR gate: it times the whole pipeline (stream generation,
//     backfill planning, allocation, thousands of cluster.Run launches,
//     counter merges) at a scale that stays inside the PR loop.
//   - "facility-full-1000": the acceptance-scale comparison — 1,000 jobs
//     over 256 nodes per policy, the configuration the full-scale
//     determinism test pins. Gated behind MKLITE_BENCH_FULL=1 (the
//     nightly CI step); mkbench compare reports a mode missing from the
//     current file without failing, so the PR gate can run the quick mode
//     alone against the full baseline.

import (
	"os"
	"runtime"
	"sync"
	"testing"

	"mklite/internal/benchfmt"
)

var benchPR8 struct {
	mu   sync.Mutex
	file *benchfmt.File
}

func benchPR8File() *benchfmt.File {
	if benchPR8.file == nil {
		benchPR8.file = benchfmt.New("facility-quick", runtime.GOMAXPROCS(0))
	}
	return benchPR8.file
}

// recordBenchPR8Mode rewrites BENCH_PR8.json after every update, so the
// artifact is valid however many benchmarks the -bench filter selects.
// Regenerating the *checked-in* artifact needs both modes in one process:
// MKLITE_BENCH_FULL=1 go test -bench Facility -benchtime 1x -run '^$' .
func recordBenchPR8Mode(b *testing.B, mode string, reps int, best, spread float64) {
	b.Helper()
	benchPR8.mu.Lock()
	defer benchPR8.mu.Unlock()
	f := benchPR8File()
	f.Modes[mode] = benchfmt.Mode{Reps: reps, Seconds: best, SpreadPercent: spread}
	out, err := f.Marshal()
	if err != nil {
		b.Fatalf("marshal BENCH_PR8: %v", err)
	}
	if err := os.WriteFile("BENCH_PR8.json", out, 0o644); err != nil {
		b.Fatalf("write BENCH_PR8.json: %v", err)
	}
}

// facilityRun returns a closure running the all-policy facility comparison
// at width 1 (sequential launch batches — the conservative wall clock).
func facilityRun(b *testing.B, quick bool) func() {
	b.Helper()
	cfg := benchCfg()
	cfg.Quick = quick
	cfg.Workers = 1
	return func() {
		results, _, err := ReproduceFacility(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != 5 {
			b.Fatalf("expected 5 policies, got %d", len(results))
		}
	}
}

// BenchmarkFacilityQuick times the quick facility comparison best-of-N —
// the cross-PR wall-clock trajectory of the fleet scheduler.
func BenchmarkFacilityQuick(b *testing.B) {
	best, spread := benchBestOf(b, facilityRun(b, true))
	b.ReportMetric(best, "wall-s/op")
	b.ReportMetric(spread, "spread-%")
	recordBenchPR8Mode(b, "facility-quick", repsFor(b), best, spread)
}

// BenchmarkFacilityFullScale times the acceptance-scale comparison: 1,000
// jobs over 256 nodes for each of the five kernel policies.
func BenchmarkFacilityFullScale(b *testing.B) {
	if os.Getenv("MKLITE_BENCH_FULL") == "" {
		b.Skip("full-scale facility bench: set MKLITE_BENCH_FULL=1 (nightly CI runs it)")
	}
	best, spread := benchBestOf(b, facilityRun(b, false))
	b.ReportMetric(best, "wall-s/op")
	b.ReportMetric(spread, "spread-%")
	recordBenchPR8Mode(b, "facility-full-1000", repsFor(b), best, spread)
}
