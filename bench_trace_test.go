package mklite

// Tracing-overhead smoke for the trace subsystem. CI runs
//
//	go test -bench=Figure4 -benchtime=1x
//
// which also selects the two benchmarks below; they emit BENCH_PR3.json
// recording the Figure 4 wall clock with tracing off versus with counter
// sinks attached, and the resulting overhead percentage. The acceptance
// budget is <=2% with tracing off — the nil-sink fast path must reduce to
// one pointer test per emission site. (Outputs are already proven
// byte-identical across modes by determinism_test.go; this file only
// measures time.)

import (
	"encoding/json"
	"os"
	"runtime"
	"sync"
	"testing"
)

// benchPR3 accumulates results across the benchmarks in this file and
// rewrites BENCH_PR3.json after each one, so the artifact exists however
// many of them the -bench filter selects.
var benchPR3 struct {
	mu       sync.Mutex
	Figure   string             `json:"figure"`
	Maxprocs int                `json:"gomaxprocs"`
	Seconds  map[string]float64 `json:"wall_clock_seconds"`
	// TraceOffOverheadPercent compares trace-off against the
	// BenchmarkFigure4Sequential baseline from bench_par_test.go — the
	// identical width-1, sink-free workload — so it isolates what the
	// nil fast path costs (budget: <=2% in expectation; at the CI
	// smoke's -benchtime=1x a single shot carries a few percent of
	// scheduler noise in either direction, so judge the trend, not one
	// sample — BenchmarkSinkDisabled in internal/trace pins the
	// per-site cost directly).
	TraceOffOverheadPercent float64 `json:"trace_off_overhead_percent,omitempty"`
	CountersOverheadPercent float64 `json:"counters_overhead_percent,omitempty"`
}

func recordBenchPR3(b *testing.B, mode string, seconds float64) {
	benchPR3.mu.Lock()
	defer benchPR3.mu.Unlock()
	benchPR3.Figure = "figure4-quick"
	benchPR3.Maxprocs = runtime.GOMAXPROCS(0)
	if benchPR3.Seconds == nil {
		benchPR3.Seconds = map[string]float64{}
	}
	benchPR3.Seconds[mode] = seconds
	off, on := benchPR3.Seconds["trace-off"], benchPR3.Seconds["trace-counters"]
	if off > 0 && on > 0 {
		benchPR3.CountersOverheadPercent = (on - off) / off * 100
	}
	benchPR2.mu.Lock()
	if seq := benchPR2.Seconds["sequential"]; seq > 0 && off > 0 {
		benchPR3.Seconds["sequential-baseline"] = seq
		benchPR3.TraceOffOverheadPercent = (off - seq) / seq * 100
	}
	benchPR2.mu.Unlock()
	out, err := json.MarshalIndent(&benchPR3, "", "  ")
	if err != nil {
		b.Fatalf("marshal BENCH_PR3: %v", err)
	}
	if err := os.WriteFile("BENCH_PR3.json", append(out, '\n'), 0o644); err != nil {
		b.Fatalf("write BENCH_PR3.json: %v", err)
	}
}

func benchFigure4Trace(b *testing.B, mode string, counters bool) {
	b.Helper()
	cfg := benchCfg()
	// Width 1 keeps the measurement free of scheduler variance; the
	// overhead of interest is per-emission-site, not fan-out.
	cfg.Workers = 1
	cfg.Counters = counters
	for i := 0; i < b.N; i++ {
		figs, _, err := ReproduceFigure4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(figs) != 8 {
			b.Fatal("figure count")
		}
	}
	secs := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(secs, "wall-s/op")
	recordBenchPR3(b, mode, secs)
}

// BenchmarkFigure4TraceOff is the no-sink baseline: every emission site
// takes the nil fast path.
func BenchmarkFigure4TraceOff(b *testing.B) {
	benchFigure4Trace(b, "trace-off", false)
}

// BenchmarkFigure4TraceCounters attaches a per-repetition counter sink to
// every run of the grid — the full counting cost, paid only when asked for.
func BenchmarkFigure4TraceCounters(b *testing.B) {
	benchFigure4Trace(b, "trace-counters", true)
}
