package mklite

// Tracing-overhead smoke for the trace subsystem, measured best-of-N via
// bench_util_test.go into BENCH_PR4.json. Two budgets:
//
//   - trace-off must be free: every emission site reduces to one pointer
//     test, so "trace_off_overhead_percent" is pure measurement noise and
//     must sit within the recorded spreads (BenchmarkSinkDisabled in
//     internal/trace pins the per-site cost directly).
//   - trace-counters must stay <=5%: the interned trace.Key fast path
//     (dense-slice add, no map lookup, no allocation) replaced the map
//     path that once cost +25% on this same workload (BENCH_PR3.json).
//
// Outputs are already proven byte-identical across modes by
// determinism_test.go; this file only measures time.

import "testing"

// BenchmarkFigure4TraceOff is the no-sink configuration measured against
// itself, interleaved: every emission site takes the nil fast path in
// both halves, so the derived overhead is the methodology's noise floor.
func BenchmarkFigure4TraceOff(b *testing.B) {
	benchFigure4Overhead(b, "trace-off", "trace_off_overhead_percent", nil)
}

// BenchmarkFigure4TraceCounters attaches a per-repetition counter sink to
// every run of the grid — the full counting cost, paid only when asked
// for. "counters_overhead_percent" carries the <=5% budget enforced by
// cmd/mkbench in CI.
func BenchmarkFigure4TraceCounters(b *testing.B) {
	benchFigure4Overhead(b, "trace-counters", "counters_overhead_percent",
		func(cfg *ExperimentConfig) { cfg.Counters = true })
}
