package apps

import "mklite/internal/hw"

// CCSQCD models the CCS-QCD clover-fermion solver, 4 ranks/node x 32
// threads, deliberately sized NOT to fit in MCDRAM (the only such app in
// the evaluation). It is the memory-hierarchy experiment of Figure 5a:
//
//   - the LWKs "load a portion of the workload into MCDRAM and then
//     seamlessly spill the rest into DDR4 RAM";
//   - Linux cannot express that in SNC-4 mode (numactl -p takes one
//     domain), so the paper runs it from DDR4 only;
//   - McKernel's demand-paging fallback lets the node's ranks share
//     MCDRAM by touch order instead of dividing it upfront, which is the
//     paper's hypothesis for McKernel beating mOS here.
func CCSQCD() *Spec {
	const (
		ranksPerNode = 4
		wsPerRank    = 8 * hw.GiB // 32 GiB/node: double the MCDRAM
	)
	return &Spec{
		Name:           "ccs-qcd",
		Unit:           "Mflops/s/node",
		Desc:           "CCS-QCD clover fermion BiCGStab, working set 2x MCDRAM",
		PerNode:        true,
		RanksPerNode:   ranksPerNode,
		ThreadsPerRank: 32,
		Timesteps:      50, // solver iterations
		Weak:           true,
		NodeCounts:     powersOfTwo(2048),

		WorkingSetPerRank: func(nodes int) int64 { return wsPerRank },
		// Lattice kernels: high arithmetic intensity per site, but the
		// step is still bandwidth-sensitive.
		FlopsPerStep: func(nodes int) float64 { return 15e6 },
		EffGFlops:    1.0,
		// One partial sweep of the fermion fields per iteration.
		MemTrafficPerStep: func(nodes int) int64 { return 50 * hw.MiB },
		// The clover/gauge field arrays are the hot 35%, taking ~95%
		// of the traffic.
		HotFraction: 0.35,
		HotTraffic:  0.95,

		Halo: func(nodes int) *HaloSpec {
			return &HaloSpec{Bytes: 512 << 10, Neighbors: 8, Rounds: 1}
		},
		Colls: func(nodes int) []CollSpec {
			// BiCGStab global dot product each iteration.
			return []CollSpec{{Kind: CollAllreduce, Bytes: 64, Every: 1}}
		},

		HeapLimit:          1 * hw.GiB,
		SchedYieldsPerStep: 800,
		ShmWindowBytes:     32 * hw.MiB,

		WorkPerStepPerNode: func(nodes int) float64 {
			// Mflop per node per iteration.
			return 15e6 * ranksPerNode / 1e6
		},
	}
}
