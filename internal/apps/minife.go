package apps

import "mklite/internal/hw"

// MiniFE models the miniFE 660x660x660 configuration: the only
// strong-scaled application in the evaluation ("All applications, except
// MiniFE ran weakly scaled"), 64 ranks/node x 4 threads. Its conjugate-
// gradient solve does two small allreduces per iteration over the full job;
// at a thousand nodes the per-iteration compute window shrinks to fractions
// of a millisecond, and the allreduces start absorbing the worst noise
// detour of 65k+ Linux ranks every iteration — the Figure 5b cliff where
// the LWKs end up "almost seven times faster" at 1,024 nodes.
func MiniFE() *Spec {
	const (
		totalRows    = 660 * 660 * 660 // fixed global problem
		ranksPerNode = 64
		// ~0.7 KiB per row: 27-point stencil matrix + vectors.
		bytesPerRow = 700
		// ~54 FLOP per row per CG iteration (SpMV + dots + axpys).
		flopsPerRow = 54
	)
	rowsPerRank := func(nodes int) int64 {
		return int64(totalRows / (ranksPerNode * nodes))
	}
	return &Spec{
		Name:           "minife",
		Unit:           "Mflops",
		Desc:           "miniFE 660^3 CG solve, strong scaled, allreduce-bound at scale",
		RanksPerNode:   ranksPerNode,
		ThreadsPerRank: 4,
		Timesteps:      60, // CG iterations
		Weak:           false,
		NodeCounts:     []int{16, 32, 64, 128, 256, 512, 1024, 2048},

		WorkingSetPerRank: func(nodes int) int64 { return rowsPerRank(nodes) * bytesPerRow },
		FlopsPerStep:      func(nodes int) float64 { return float64(rowsPerRank(nodes) * flopsPerRow) },
		EffGFlops:         0.9,
		// CG streams the matrix once per iteration.
		MemTrafficPerStep: func(nodes int) int64 { return rowsPerRank(nodes) * bytesPerRow },

		Halo: func(nodes int) *HaloSpec {
			// SpMV boundary exchange shrinks with the subdomain
			// surface.
			bytes := int64(256 << 10)
			if nodes > 64 {
				bytes = 64 << 10
			}
			return &HaloSpec{Bytes: bytes, Neighbors: 6, Rounds: 1}
		},
		Colls: func(nodes int) []CollSpec {
			// Two dot products per CG iteration.
			return []CollSpec{
				{Kind: CollAllreduce, Bytes: 8, Every: 1},
				{Kind: CollAllreduce, Bytes: 8, Every: 1},
			}
		},

		HeapLimit:          1 * hw.GiB,
		SchedYieldsPerStep: 1500,
		ShmWindowBytes:     8 * hw.MiB,

		// Mflop completed per node per iteration.
		WorkPerStepPerNode: func(nodes int) float64 {
			return float64(rowsPerRank(nodes)*flopsPerRow) * ranksPerNode / 1e6
		},
	}
}
