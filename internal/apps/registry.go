package apps

import (
	"fmt"
	"sort"
)

// All returns the eight evaluation applications in the paper's Figure 4
// order.
func All() []*Spec {
	return []*Spec{
		AMG2013(),
		CCSQCD(),
		GeoFEM(),
		HPCG(),
		LAMMPS(),
		MILC(),
		MiniFE(),
		Lulesh(),
	}
}

// Names returns the registered application names, sorted.
func Names() []string {
	var out []string
	for _, s := range All() {
		out = append(out, s.Name)
	}
	sort.Strings(out)
	return out
}

// Get returns the application with the given name.
func Get(name string) (*Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("apps: unknown application %q (known: %v)", name, Names())
}
