package apps

import (
	"testing"

	"mklite/internal/hw"
)

func TestAllSpecsValidate(t *testing.T) {
	for _, s := range All() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestEightApplications(t *testing.T) {
	if len(All()) != 8 {
		t.Fatalf("%d applications, the paper evaluates 8", len(All()))
	}
}

func TestGet(t *testing.T) {
	s, err := Get("lulesh2.0")
	if err != nil || s.Name != "lulesh2.0" {
		t.Fatal(err)
	}
	if _, err := Get("nonexistent"); err == nil {
		t.Fatal("phantom app")
	}
}

func TestNamesSortedUnique(t *testing.T) {
	names := Names()
	seen := map[string]bool{}
	for i, n := range names {
		if seen[n] {
			t.Fatalf("duplicate app %s", n)
		}
		seen[n] = true
		if i > 0 && names[i-1] >= n {
			t.Fatal("names not sorted")
		}
	}
}

func TestOnlyMiniFEStrongScaled(t *testing.T) {
	// "All applications, except MiniFE ran weakly scaled."
	for _, s := range All() {
		if s.Name == "minife" {
			if s.Weak {
				t.Fatal("minife must be strong scaled")
			}
			continue
		}
		if !s.Weak {
			t.Fatalf("%s must be weak scaled", s.Name)
		}
	}
}

func TestOnlyCCSQCDExceedsMCDRAM(t *testing.T) {
	// "All but CCS-QCD were sized to fit entirely into MCDRAM."
	const mcdram = 16 * hw.GiB
	for _, s := range All() {
		for _, n := range s.NodeCounts {
			perNode := s.WorkingSetPerRank(n) * int64(s.RanksPerNode)
			if s.Name == "ccs-qcd" {
				if perNode <= mcdram {
					t.Fatalf("ccs-qcd fits MCDRAM at %d nodes (%d bytes)", n, perNode)
				}
			} else if perNode > mcdram {
				t.Fatalf("%s exceeds MCDRAM at %d nodes (%d bytes)", s.Name, n, perNode)
			}
		}
	}
}

func TestLuleshCubicNodeCounts(t *testing.T) {
	s := Lulesh()
	want := []int{1, 8, 27, 64, 125, 216, 343, 512, 729, 1000, 1331, 1728}
	if len(s.NodeCounts) != len(want) {
		t.Fatalf("node counts %v", s.NodeCounts)
	}
	for i := range want {
		if s.NodeCounts[i] != want[i] {
			t.Fatalf("node counts %v, want cubes %v", s.NodeCounts, want)
		}
	}
}

func TestLuleshHeapTraceRatios(t *testing.T) {
	// Per-step ops must follow the paper's ~5:2:1 query:grow:shrink mix
	// and the cumulative growth must dwarf the per-step retained size.
	ops := Lulesh().HeapOpsPerStep(64)
	var q, g, s int
	var grown, shrunk int64
	for _, d := range ops {
		switch {
		case d == 0:
			q++
		case d > 0:
			g++
			grown += d
		default:
			s++
			shrunk -= d
		}
	}
	if q != 15 || g != 6 || s != 3 {
		t.Fatalf("trace mix %d:%d:%d, want 15:6:3", q, g, s)
	}
	if grown != shrunk {
		t.Fatalf("per-step trace must balance: +%d -%d", grown, shrunk)
	}
}

func TestMiniFEStrongScalingShrinksWork(t *testing.T) {
	s := MiniFE()
	if s.WorkingSetPerRank(1024) >= s.WorkingSetPerRank(16) {
		t.Fatal("strong scaling must shrink per-rank memory")
	}
	if s.FlopsPerStep(1024) >= s.FlopsPerStep(16) {
		t.Fatal("strong scaling must shrink per-rank flops")
	}
}

func TestWeakAppsConstantPerRankWork(t *testing.T) {
	for _, s := range All() {
		if !s.Weak {
			continue
		}
		lo, hi := s.NodeCounts[0], s.NodeCounts[len(s.NodeCounts)-1]
		if s.WorkingSetPerRank(lo) != s.WorkingSetPerRank(hi) {
			t.Fatalf("%s: weak scaling changed per-rank working set", s.Name)
		}
	}
}

func TestLAMMPSIsDeviceSyscallBound(t *testing.T) {
	s := LAMMPS()
	if s.DeviceSyscallFactor <= 1 {
		t.Fatal("LAMMPS must exercise the OPA device-syscall path intensely")
	}
	if s.Colls(64)[0].Every <= 1 {
		t.Fatal("LAMMPS global collectives should be infrequent")
	}
	for _, other := range []*Spec{MiniFE(), Lulesh(), HPCG()} {
		if other.DeviceSyscallFactor > 0 {
			t.Fatalf("%s should not override device syscalls", other.Name)
		}
	}
}

func TestCCSQCDHotModel(t *testing.T) {
	s := CCSQCD()
	if s.HotFraction <= 0 || s.HotFraction >= 1 {
		t.Fatal("hot fraction")
	}
	if s.HotTraffic <= s.HotFraction {
		t.Fatal("hot bytes must be disproportionately hot")
	}
	if s.RanksPerNode != 4 || s.ThreadsPerRank != 32 {
		t.Fatal("paper runs CCS-QCD 4 ranks x 32 threads")
	}
}

func TestAMGHasHeavySpinWaiting(t *testing.T) {
	if AMG2013().SchedYieldsPerStep < 5000 {
		t.Fatal("AMG models heavy sched_yield spinning (the --disable-sched-yield target)")
	}
}

func TestThreadsTimesRanksWithinNode(t *testing.T) {
	// rpn x tpr must not exceed 272 logical CPUs (and should use at
	// least the 64 application cores).
	for _, s := range All() {
		lcpus := s.RanksPerNode * s.ThreadsPerRank
		if lcpus > 272 {
			t.Fatalf("%s oversubscribes: %d logical CPUs", s.Name, lcpus)
		}
		if lcpus < 64 {
			t.Fatalf("%s underuses the node: %d logical CPUs", s.Name, lcpus)
		}
	}
}

func TestValidateCatchesBadSpecs(t *testing.T) {
	s := Lulesh()
	s.Name = ""
	if s.Validate() == nil {
		t.Fatal("empty name accepted")
	}
	s = Lulesh()
	s.NodeCounts = []int{8, 1}
	if s.Validate() == nil {
		t.Fatal("unsorted node counts accepted")
	}
	s = Lulesh()
	s.EffGFlops = 0
	if s.Validate() == nil {
		t.Fatal("zero GF accepted")
	}
	s = Lulesh()
	s.WorkingSetPerRank = nil
	if s.Validate() == nil {
		t.Fatal("missing workload fn accepted")
	}
}

func TestHeapLimitOrDefault(t *testing.T) {
	s := &Spec{}
	if s.HeapLimitOrDefault() != 1*hw.GiB {
		t.Fatal("default heap limit")
	}
	s.HeapLimit = 5
	if s.HeapLimitOrDefault() != 5 {
		t.Fatal("explicit heap limit")
	}
}

func TestCollKindStrings(t *testing.T) {
	if CollAllreduce.String() != "allreduce" || CollAlltoall.String() != "alltoall" {
		t.Fatal("coll kind strings")
	}
}

func TestPowersOfTwo(t *testing.T) {
	got := powersOfTwo(2048)
	if len(got) != 12 || got[0] != 1 || got[11] != 2048 {
		t.Fatalf("powersOfTwo(2048) = %v", got)
	}
}

func TestLuleshBrkTraceS30ExactCounts(t *testing.T) {
	trace := LuleshBrkTraceS30()
	var q, g, s int
	var running, peak, grown int64
	for _, d := range trace {
		switch {
		case d == 0:
			q++
		case d > 0:
			g++
			grown += d
			running += d
		default:
			s++
			running += d
			if running < 0 {
				running = 0
			}
		}
		if running > peak {
			peak = running
		}
	}
	// The paper's exact counts: 7,526 / 3,028 / 1,499 = ~12k calls.
	if q != 7526 || g != 3028 || s != 1499 {
		t.Fatalf("trace mix %d:%d:%d, want 7526:3028:1499", q, g, s)
	}
	if got := len(trace); got != 12053 {
		t.Fatalf("total calls %d, want 12053", got)
	}
	// "At its largest, the heap grew to 87 MB" (within a chunk).
	if peak < 80*hw.MiB || peak > 95*hw.MiB {
		t.Fatalf("peak %d bytes, want ~87 MB", peak)
	}
	// "the cumulative amount of memory requested was 22 GB".
	if grown < 20*hw.GiB || grown > 24*hw.GiB {
		t.Fatalf("cumulative growth %d, want ~22 GB", grown)
	}
}
