package apps

import "mklite/internal/hw"

// LuleshBrkTraceS30 generates the full brk trace of the paper's section IV
// study (LULESH 2.0 with -s 30): exactly 7,526 queries (sbrk(0)), 3,028
// growth requests and 1,499 contraction requests — "a total of about
// 12,000 calls to brk in the few seconds the program runs" — with the heap
// peaking at ~87 MB while the cumulative growth reaches ~22 GB.
//
// The trace is deterministic and is replayed call-for-call through the
// kernels' process syscall layer by experiments.BrkTraceS30.
func LuleshBrkTraceS30() []int64 {
	const (
		queries = 7526
		grows   = 3028
		shrinks = 1499
		// Average expansion ~7.3 MB puts the cumulative growth at
		// ~22 GB over 3,028 requests.
		growBytes = int64(7398) * 1024 // ~7.2 MiB
		// glibc trims the heap back to a floor once it outgrows the
		// high-water mark — variable-size contractions.
		trimAbove = 80 * hw.MiB
		trimFloor = 64 * hw.MiB
	)
	trace := make([]int64, 0, queries+grows+shrinks)
	var running int64
	q, g, s := 0, 0, 0
	// Interleave in the application's rhythm: a couple of allocator
	// queries, an expansion, and a trim back to the floor whenever the
	// heap outgrows its ~87 MB peak.
	for g < grows {
		for i := 0; i < 2 && q < queries; i++ {
			trace = append(trace, 0)
			q++
		}
		if running > trimAbove && s < shrinks {
			trim := running - trimFloor
			trace = append(trace, -trim)
			running -= trim
			s++
		}
		trace = append(trace, growBytes)
		running += growBytes
		g++
	}
	// Remaining contractions and queries close out the run (trim
	// attempts keep happening even once the heap is back at its floor —
	// tiny requests that release little or nothing).
	for s < shrinks {
		shrink := running / 2
		if shrink < int64(hw.Page4K) {
			shrink = int64(hw.Page4K)
		}
		trace = append(trace, -shrink)
		running -= shrink
		if running < 0 {
			running = 0
		}
		s++
	}
	for q < queries {
		trace = append(trace, 0)
		q++
	}
	return trace
}
