package apps

import "mklite/internal/hw"

// The paper's section IV brk-trace shape (LULESH 2.0 with -s 30), exported
// so the golden mechanism-count tests assert the same numbers the generator
// uses — one source of truth for "about 12,000 calls to brk".
const (
	// BrkS30Queries is the number of sbrk(0) queries in the trace.
	BrkS30Queries = 7526
	// BrkS30Grows is the number of growth requests.
	BrkS30Grows = 3028
	// BrkS30Shrinks is the number of contraction requests.
	BrkS30Shrinks = 1499
	// BrkS30GrowBytes is the size of each expansion (~7.2 MiB; puts the
	// cumulative growth at ~22 GB over the 3,028 requests).
	BrkS30GrowBytes = int64(7398) * 1024
	// BrkS30TrimAbove / BrkS30TrimFloor bound the glibc trimming rhythm
	// that keeps the peak near the paper's ~87 MB.
	BrkS30TrimAbove = 80 * hw.MiB
	BrkS30TrimFloor = 64 * hw.MiB
)

// LuleshBrkTraceS30 generates the full brk trace of the paper's section IV
// study (LULESH 2.0 with -s 30): exactly 7,526 queries (sbrk(0)), 3,028
// growth requests and 1,499 contraction requests — "a total of about
// 12,000 calls to brk in the few seconds the program runs" — with the heap
// peaking at ~87 MB while the cumulative growth reaches ~22 GB.
//
// The trace is deterministic and is replayed call-for-call through the
// kernels' process syscall layer by experiments.BrkTraceS30.
func LuleshBrkTraceS30() []int64 {
	const (
		queries   = BrkS30Queries
		grows     = BrkS30Grows
		shrinks   = BrkS30Shrinks
		growBytes = BrkS30GrowBytes
		trimAbove = BrkS30TrimAbove
		trimFloor = BrkS30TrimFloor
	)
	trace := make([]int64, 0, queries+grows+shrinks)
	var running int64
	q, g, s := 0, 0, 0
	// Interleave in the application's rhythm: a couple of allocator
	// queries, an expansion, and a trim back to the floor whenever the
	// heap outgrows its ~87 MB peak.
	for g < grows {
		for i := 0; i < 2 && q < queries; i++ {
			trace = append(trace, 0)
			q++
		}
		if running > trimAbove && s < shrinks {
			trim := running - trimFloor
			trace = append(trace, -trim)
			running -= trim
			s++
		}
		trace = append(trace, growBytes)
		running += growBytes
		g++
	}
	// Remaining contractions and queries close out the run (trim
	// attempts keep happening even once the heap is back at its floor —
	// tiny requests that release little or nothing).
	for s < shrinks {
		shrink := running / 2
		if shrink < int64(hw.Page4K) {
			shrink = int64(hw.Page4K)
		}
		trace = append(trace, -shrink)
		running -= shrink
		if running < 0 {
			running = 0
		}
		s++
	}
	for q < queries {
		trace = append(trace, 0)
		q++
	}
	return trace
}
