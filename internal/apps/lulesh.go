package apps

import "mklite/internal/hw"

// luleshNodeCounts are the cubic job sizes of Figure 6a.
var luleshNodeCounts = []int{1, 8, 27, 64, 125, 216, 343, 512, 729, 1000, 1331, 1728}

// Lulesh models LULESH 2.0 with -s 50, 64 ranks/node x 2 threads (the
// paper's configuration). Its signature is the brk churn of section IV:
// thousands of heap queries, expansions and contractions per run — 87 MB
// peak but tens of gigabytes of cumulative growth — which the Linux heap
// turns into page-fault and page-clearing work every timestep while the
// LWK HPC heaps service it from retained, pre-zeroed 2 MiB chunks.
func Lulesh() *Spec {
	const (
		// 50^3 elements per rank.
		zonesPerRank = 50 * 50 * 50
		ranksPerNode = 64
	)
	return &Spec{
		Name:           "lulesh2.0",
		Unit:           "zones/s",
		Desc:           "LULESH 2.0 s50, shock hydrodynamics, brk-heavy",
		RanksPerNode:   ranksPerNode,
		ThreadsPerRank: 2,
		Timesteps:      40,
		Weak:           true,
		NodeCounts:     luleshNodeCounts,

		// ~1.5 KiB of state per zone: fits MCDRAM node-wide.
		WorkingSetPerRank: func(nodes int) int64 { return zonesPerRank * 1536 },
		// Hydro step: ~300 FLOP per zone per step in the modelled loop.
		FlopsPerStep: func(nodes int) float64 { return zonesPerRank * 300 },
		EffGFlops:    1.1,
		// One sweep over the zone state per step.
		MemTrafficPerStep: func(nodes int) int64 { return zonesPerRank * 1536 / 4 },

		Halo: func(nodes int) *HaloSpec {
			return &HaloSpec{Bytes: 48 << 10, Neighbors: 6, Rounds: 3}
		},
		Colls: func(nodes int) []CollSpec {
			// The dt reduction synchronises all ranks every step.
			return []CollSpec{{Kind: CollAllreduce, Bytes: 8, Every: 1}}
		},

		// Per-step heap trace, scaled from the paper's -s 30 numbers
		// (7,526 queries / 3,028 grows / 1,499 shrinks, 22 GB
		// cumulative growth, 87 MB peak): ratios 5:2:1, per-step churn
		// far above the retained size.
		HeapOpsPerStep: func(nodes int) []int64 {
			ops := make([]int64, 0, 24)
			for i := 0; i < 15; i++ {
				ops = append(ops, 0) // queries
			}
			for i := 0; i < 6; i++ {
				ops = append(ops, 8*hw.MiB) // temporary arrays
			}
			for i := 0; i < 3; i++ {
				ops = append(ops, -16*hw.MiB) // released again
			}
			return ops
		},
		HeapLimit: 2 * hw.GiB,

		SchedYieldsPerStep: 500,
		ShmWindowBytes:     16 * hw.MiB,

		WorkPerStepPerNode: func(nodes int) float64 {
			return float64(zonesPerRank * ranksPerNode)
		},
	}
}
