// Package apps holds the workload models for the paper's eight evaluation
// applications: AMG 2013, CCS-QCD, GeoFEM, HPCG, LAMMPS, Lulesh 2.0, MILC
// and MiniFE. Each model is a phase-level trace — per-timestep compute,
// memory traffic, heap activity, halo exchanges and global collectives —
// parameterised from the paper's own measurements and the benchmarks'
// published characteristics. The cluster harness executes these traces
// against the real kernel, memory and MPI models of this repository.
package apps

import (
	"fmt"
	"sort"

	"mklite/internal/hw"
)

// CollKind identifies a global collective operation.
type CollKind int

const (
	CollAllreduce CollKind = iota
	CollBcast
	CollAllgather
	CollAlltoall
)

// String names the collective.
func (k CollKind) String() string {
	switch k {
	case CollAllreduce:
		return "allreduce"
	case CollBcast:
		return "bcast"
	case CollAllgather:
		return "allgather"
	case CollAlltoall:
		return "alltoall"
	default:
		return fmt.Sprintf("CollKind(%d)", int(k))
	}
}

// CollSpec is a recurring global collective in the timestep loop. Global
// collectives synchronise every rank, so they absorb the worst per-rank
// noise detour each time they run — the amplification channel.
type CollSpec struct {
	Kind  CollKind
	Bytes int64
	// Every runs the collective every k-th timestep (1 = every step).
	Every int
}

// HaloSpec is the nearest-neighbour exchange of the timestep loop. Halo
// exchanges synchronise only small neighbourhoods, so noise is barely
// amplified — the reason LAMMPS does not exhibit the Linux cliff.
type HaloSpec struct {
	// Bytes per neighbour per round.
	Bytes int64
	// Neighbors per rank (6 for 3D stencils, 26 for full stencils).
	Neighbors int
	// Rounds per timestep.
	Rounds int
}

// Spec is one application's workload model. All per-rank quantities may
// depend on the node count (strong-scaled apps shrink per-rank work as the
// job grows).
type Spec struct {
	Name string
	// Unit of the figure of merit, e.g. "zones/s".
	Unit string
	// Desc is a one-line description for the harness output.
	Desc string
	// PerNode reports the FOM per node rather than job-total.
	PerNode bool

	RanksPerNode   int
	ThreadsPerRank int
	// Timesteps in the modelled run (compressed relative to the real
	// benchmarks; FOM rates normalise it out).
	Timesteps int
	// Weak scaling grows the problem with the job; strong scaling
	// divides a fixed problem (only MiniFE in the paper).
	Weak bool
	// NodeCounts are the job sizes the paper evaluates this app on.
	NodeCounts []int

	// WorkingSetPerRank is the bytes mapped (mmap) per rank at startup.
	WorkingSetPerRank func(nodes int) int64
	// FlopsPerStep is the per-rank floating-point work per timestep.
	FlopsPerStep func(nodes int) float64
	// EffGFlops is the achieved (not peak) compute rate per rank in
	// GF/s for the CPU-bound portion.
	EffGFlops float64
	// MemTrafficPerStep is the per-rank DRAM traffic per timestep in
	// bytes; it is serviced at the rank's share of the node's effective
	// memory bandwidth (MCDRAM vs DDR4 mix decided by the kernel).
	MemTrafficPerStep func(nodes int) int64
	// HotFraction is the fraction of the working set that receives
	// HotTraffic of the memory traffic (stencil codes concentrate
	// accesses on field arrays). Zero means uniform access. The split
	// matters only when the working set exceeds MCDRAM and placement
	// policy decides which bytes are fast — the CCS-QCD scenario.
	HotFraction float64
	// HotTraffic is the fraction of MemTrafficPerStep hitting the hot
	// bytes (>= HotFraction when set).
	HotTraffic float64

	// Halo, if non-nil, runs every timestep.
	Halo func(nodes int) *HaloSpec
	// Colls are the global collectives of the timestep loop.
	Colls func(nodes int) []CollSpec

	// HeapOpsPerStep is the sbrk delta trace replayed each timestep
	// (0 = query). Lulesh's trace is the paper's section IV subject.
	HeapOpsPerStep func(nodes int) []int64
	// HeapLimit is the heap's virtual reservation.
	HeapLimit int64

	// SchedYieldsPerStep counts glibc sched_yield invocations per rank
	// per step (spin-wait loops inside MPI).
	SchedYieldsPerStep int
	// ShmWindowBytes is the per-rank MPI intra-node shared-memory
	// window; without premapping it faults on first touch.
	ShmWindowBytes int64
	// DeviceSyscallFactor multiplies the fabric's per-message syscall
	// count (how intensely the app's communication pattern exercises
	// the driver's kernel path); 0 means 1. On a user-space fabric the
	// product — and hence the offload penalty — is zero regardless.
	DeviceSyscallFactor float64

	// WorkPerStepPerNode is the FOM-units of work one node completes
	// per timestep (zones for Lulesh, Mflop for MiniFE, ...).
	WorkPerStepPerNode func(nodes int) float64
}

// Validate checks the spec is complete and internally consistent.
func (s *Spec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("apps: spec without name")
	case s.RanksPerNode <= 0:
		return fmt.Errorf("apps: %s: bad RanksPerNode %d", s.Name, s.RanksPerNode)
	case s.ThreadsPerRank <= 0:
		return fmt.Errorf("apps: %s: bad ThreadsPerRank %d", s.Name, s.ThreadsPerRank)
	case s.Timesteps <= 0:
		return fmt.Errorf("apps: %s: bad Timesteps %d", s.Name, s.Timesteps)
	case len(s.NodeCounts) == 0:
		return fmt.Errorf("apps: %s: no node counts", s.Name)
	case s.WorkingSetPerRank == nil || s.FlopsPerStep == nil || s.MemTrafficPerStep == nil:
		return fmt.Errorf("apps: %s: missing workload functions", s.Name)
	case s.EffGFlops <= 0:
		return fmt.Errorf("apps: %s: bad EffGFlops %v", s.Name, s.EffGFlops)
	case s.WorkPerStepPerNode == nil:
		return fmt.Errorf("apps: %s: missing WorkPerStepPerNode", s.Name)
	case s.HeapLimit < 0:
		return fmt.Errorf("apps: %s: negative heap limit", s.Name)
	}
	if !sort.IntsAreSorted(s.NodeCounts) {
		return fmt.Errorf("apps: %s: node counts not sorted", s.Name)
	}
	for _, n := range s.NodeCounts {
		if n <= 0 {
			return fmt.Errorf("apps: %s: non-positive node count", s.Name)
		}
		if ws := s.WorkingSetPerRank(n); ws <= 0 {
			return fmt.Errorf("apps: %s: non-positive working set at %d nodes", s.Name, n)
		}
	}
	return nil
}

// HeapLimitOrDefault returns the heap reservation, defaulting to 1 GiB.
func (s *Spec) HeapLimitOrDefault() int64 {
	if s.HeapLimit > 0 {
		return s.HeapLimit
	}
	return 1 * hw.GiB
}

// powersOfTwo returns {1,2,4,...,max}.
func powersOfTwo(max int) []int {
	var out []int
	for n := 1; n <= max; n *= 2 {
		out = append(out, n)
	}
	return out
}
