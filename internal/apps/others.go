package apps

import "mklite/internal/hw"

// AMG2013 models the BoomerAMG algebraic-multigrid solver (weak scaled, 32
// ranks/node x 4 threads). Multigrid cycles are latency-sensitive — small
// collectives on the coarse levels every cycle — and the MPI runtime
// busy-waits through sched_yield, which is why McKernel's
// --disable-sched-yield option buys ~9% on 16 nodes (section IV). The
// intra-node shared-memory windows benefit from --mpol-shm-premap.
func AMG2013() *Spec {
	const ranksPerNode = 32
	return &Spec{
		Name:           "amg2013",
		Unit:           "FOM/s",
		Desc:           "AMG 2013 BoomerAMG solve cycles, latency-sensitive multigrid",
		RanksPerNode:   ranksPerNode,
		ThreadsPerRank: 4,
		Timesteps:      40, // V-cycles
		Weak:           true,
		NodeCounts:     powersOfTwo(2048),

		WorkingSetPerRank: func(nodes int) int64 { return 360 * hw.MiB },
		FlopsPerStep:      func(nodes int) float64 { return 24e6 },
		EffGFlops:         1.0,
		MemTrafficPerStep: func(nodes int) int64 { return 96 * hw.MiB },

		Halo: func(nodes int) *HaloSpec {
			return &HaloSpec{Bytes: 32 << 10, Neighbors: 6, Rounds: 2}
		},
		Colls: func(nodes int) []CollSpec {
			// Coarse-level reductions: one small allreduce every
			// other cycle on average.
			return []CollSpec{{Kind: CollAllreduce, Bytes: 16, Every: 2}}
		},

		HeapLimit: 1 * hw.GiB,
		// Heavy MPI spin-waiting on the coarse levels.
		SchedYieldsPerStep: 12000,
		ShmWindowBytes:     64 * hw.MiB,

		WorkPerStepPerNode: func(nodes int) float64 { return 24e6 * ranksPerNode },
	}
}

// GeoFEM models the GeoFEM parallel iterative solver with selective
// blocking preconditioning (weak scaled, 32 ranks/node): an ICCG sweep per
// iteration, bandwidth-bound with a per-iteration dot product.
func GeoFEM() *Spec {
	const ranksPerNode = 32
	return &Spec{
		Name:           "geofem",
		Unit:           "Gflops",
		Desc:           "GeoFEM ICCG solver with selective blocking",
		RanksPerNode:   ranksPerNode,
		ThreadsPerRank: 8,
		Timesteps:      40,
		Weak:           true,
		NodeCounts:     powersOfTwo(2048),

		WorkingSetPerRank: func(nodes int) int64 { return 420 * hw.MiB },
		FlopsPerStep:      func(nodes int) float64 { return 36e6 },
		EffGFlops:         1.0,
		MemTrafficPerStep: func(nodes int) int64 { return 130 * hw.MiB },

		Halo: func(nodes int) *HaloSpec {
			return &HaloSpec{Bytes: 96 << 10, Neighbors: 6, Rounds: 1}
		},
		Colls: func(nodes int) []CollSpec {
			return []CollSpec{{Kind: CollAllreduce, Bytes: 8, Every: 1}}
		},

		HeapLimit:          1 * hw.GiB,
		SchedYieldsPerStep: 1000,
		ShmWindowBytes:     16 * hw.MiB,

		WorkPerStepPerNode: func(nodes int) float64 { return 36e6 * ranksPerNode / 1e9 },
	}
}

// HPCG models the High Performance Conjugate Gradient benchmark (weak
// scaled, 16 ranks/node x 16 threads): symmetric Gauss-Seidel + SpMV
// sweeps, a dot-product allreduce per iteration, bandwidth-bound.
func HPCG() *Spec {
	const ranksPerNode = 16
	return &Spec{
		Name:           "hpcg",
		Unit:           "Gflops",
		Desc:           "HPCG multigrid-preconditioned CG, bandwidth bound",
		RanksPerNode:   ranksPerNode,
		ThreadsPerRank: 16,
		Timesteps:      40,
		Weak:           true,
		NodeCounts:     powersOfTwo(2048),

		WorkingSetPerRank: func(nodes int) int64 { return 800 * hw.MiB },
		FlopsPerStep:      func(nodes int) float64 { return 90e6 },
		EffGFlops:         1.2,
		MemTrafficPerStep: func(nodes int) int64 { return 400 * hw.MiB },

		Halo: func(nodes int) *HaloSpec {
			return &HaloSpec{Bytes: 128 << 10, Neighbors: 26, Rounds: 1}
		},
		Colls: func(nodes int) []CollSpec {
			return []CollSpec{{Kind: CollAllreduce, Bytes: 8, Every: 1}}
		},

		HeapLimit:          1 * hw.GiB,
		SchedYieldsPerStep: 1200,
		ShmWindowBytes:     16 * hw.MiB,

		WorkPerStepPerNode: func(nodes int) float64 { return 90e6 * ranksPerNode / 1e9 },
	}
}

// MILC models the MILC lattice-QCD conjugate-gradient phase (weak scaled,
// 64 ranks/node x 2 threads): very short CG iterations, each ending in a
// global reduction — the configuration most exposed to noise amplification
// after MiniFE. Figure 4 marks its 2,048-node McKernel median at 1.99x.
func MILC() *Spec {
	const ranksPerNode = 64
	return &Spec{
		Name:           "milc",
		Unit:           "Mflops",
		Desc:           "MILC su3 CG, short iterations with per-iteration allreduce",
		RanksPerNode:   ranksPerNode,
		ThreadsPerRank: 2,
		Timesteps:      60, // CG iterations
		Weak:           true,
		NodeCounts:     powersOfTwo(2048),

		WorkingSetPerRank: func(nodes int) int64 { return 96 * hw.MiB },
		FlopsPerStep:      func(nodes int) float64 { return 5.0e6 },
		EffGFlops:         1.4,
		MemTrafficPerStep: func(nodes int) int64 { return 9 * hw.MiB },

		Halo: func(nodes int) *HaloSpec {
			return &HaloSpec{Bytes: 24 << 10, Neighbors: 8, Rounds: 1}
		},
		Colls: func(nodes int) []CollSpec {
			return []CollSpec{{Kind: CollAllreduce, Bytes: 16, Every: 1}}
		},

		HeapLimit:          1 * hw.GiB,
		SchedYieldsPerStep: 600,
		ShmWindowBytes:     8 * hw.MiB,

		WorkPerStepPerNode: func(nodes int) float64 { return 5.0e6 * ranksPerNode / 1e6 },
	}
}
