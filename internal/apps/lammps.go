package apps

import "mklite/internal/hw"

// LAMMPS models the lj.weak.4x2x2x7900 molecular-dynamics run, 64
// ranks/node x 2 threads. Its communication is dominated by frequent
// nearest-neighbour exchanges whose driver path on the current Omni-Path
// generation "involves system calls" — on the multi-kernels those syscalls
// offload to Linux, adding microseconds each. Because halo exchanges only
// synchronise small neighbourhoods, Linux suffers no noise amplification to
// offset that, so "neither mOS nor McKernel performed better than Linux at
// scale" (Figure 6b) while the LWKs still win on a handful of nodes.
func LAMMPS() *Spec {
	const (
		ranksPerNode = 64
		atomsPerRank = 32000 // lj weak-scaled block
		bytesPerAtom = 900   // neighbor lists dominate
		flopsPerAtom = 1100  // LJ force evaluation per step
	)
	return &Spec{
		Name:           "lammps",
		Unit:           "timesteps/s",
		Desc:           "LAMMPS lj weak scaling, neighbour-exchange bound",
		RanksPerNode:   ranksPerNode,
		ThreadsPerRank: 2,
		Timesteps:      50,
		Weak:           true,
		NodeCounts:     powersOfTwo(2048),

		WorkingSetPerRank: func(nodes int) int64 { return atomsPerRank * bytesPerAtom },
		FlopsPerStep:      func(nodes int) float64 { return atomsPerRank * flopsPerAtom },
		EffGFlops:         4.0,
		MemTrafficPerStep: func(nodes int) int64 { return atomsPerRank * bytesPerAtom / 3 },

		Halo: func(nodes int) *HaloSpec {
			// Full 26-neighbour stencil, forward+reverse
			// communication plus reneighbouring traffic.
			return &HaloSpec{Bytes: 24 << 10, Neighbors: 26, Rounds: 6}
		},
		Colls: func(nodes int) []CollSpec {
			// Thermo output reduction every 10 steps only.
			return []CollSpec{{Kind: CollAllreduce, Bytes: 48, Every: 25}}
		},

		HeapLimit:          1 * hw.GiB,
		SchedYieldsPerStep: 300,
		ShmWindowBytes:     8 * hw.MiB,
		// LAMMPS's many small exchanges exercise the driver's kernel
		// path hard (doorbells, completion reaping, progress).
		DeviceSyscallFactor: 16.0,

		WorkPerStepPerNode: func(nodes int) float64 {
			// FOM is timesteps/s: one unit of work per step per
			// job, expressed per node for aggregation.
			return 1.0 / float64(nodes)
		},
	}
}
