package ihk

import (
	"testing"

	"mklite/internal/hw"
	"mklite/internal/linuxos"
	"mklite/internal/mem"
	"mklite/internal/sim"
)

func bootLinux(t *testing.T) *linuxos.Kernel {
	t.Helper()
	k, err := linuxos.Boot(hw.KNL7250SNC4(), linuxos.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestReserveCarvesMostMemory(t *testing.T) {
	lin := bootLinux(t)
	g, err := Reserve(lin, DefaultReserveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Part.AppCores) != 64 {
		t.Fatalf("LWK cores = %d", len(g.Part.AppCores))
	}
	// The LWK view must hold ~95% of each MCDRAM domain.
	for d := 4; d < 8; d++ {
		got := g.Phys.Capacity(d)
		if got < 3*hw.GiB {
			t.Fatalf("MCDRAM domain %d grant = %d", d, got)
		}
	}
	// Linux keeps the remainder.
	if lin.Phys().FreeBytes(4) == 0 {
		t.Fatal("Linux kept no MCDRAM at all")
	}
}

func TestReserveInheritsFragmentation(t *testing.T) {
	// Late reservation cannot produce 1 GiB-contiguous DDR blocks beyond
	// what post-boot Linux still had: largest grant block <= largest
	// Linux free block before the carve.
	lin := bootLinux(t)
	before := lin.Phys().LargestFree(0)
	g, err := Reserve(lin, DefaultReserveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Phys.LargestFree(0); got > before {
		t.Fatalf("grant contiguity %d exceeds donor's %d", got, before)
	}
}

func TestReserveAllocatesFromLWKView(t *testing.T) {
	lin := bootLinux(t)
	g, err := Reserve(lin, DefaultReserveOptions())
	if err != nil {
		t.Fatal(err)
	}
	as := mem.NewAddrSpace(g.Phys)
	v, err := as.Map(2*hw.GiB, mem.VMAAnon, mem.Policy{
		Domains: []int{4, 5, 6, 7},
		MaxPage: hw.Page2M,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Populated != 2*hw.GiB {
		t.Fatal("LWK mapping not backed")
	}
}

func TestReserveBadOptions(t *testing.T) {
	lin := bootLinux(t)
	opts := DefaultReserveOptions()
	opts.MemFraction = 0
	if _, err := Reserve(lin, opts); err == nil {
		t.Fatal("zero fraction accepted")
	}
	opts = DefaultReserveOptions()
	opts.OSCores = 99
	if _, err := Reserve(lin, opts); err == nil {
		t.Fatal("bad core split accepted")
	}
}

func TestRelease(t *testing.T) {
	lin := bootLinux(t)
	free4 := lin.Phys().FreeBytes(4)
	g, err := Reserve(lin, DefaultReserveOptions())
	if err != nil {
		t.Fatal(err)
	}
	Release(lin, g)
	if lin.Phys().FreeBytes(4) != free4 {
		t.Fatalf("MCDRAM not fully returned: %d vs %d", lin.Phys().FreeBytes(4), free4)
	}
}

func TestIKCTopologyAwareLatency(t *testing.T) {
	lin := bootLinux(t)
	ikc := NewIKC(lin.Partition())
	// OS cores 0-3 live in quadrant 0. App core 5 (quadrant 0) is local;
	// app core 40 (quadrant 2) is remote.
	local := ikc.OneWay(5, 0)
	remote := ikc.OneWay(40, 0)
	if local >= remote {
		t.Fatalf("local %v not cheaper than remote %v", local, remote)
	}
	if ikc.RoundTrip(5, 0) != 2*local {
		t.Fatal("round trip != 2x one way")
	}
}

func TestIKCBestRoundTrip(t *testing.T) {
	lin := bootLinux(t)
	ikc := NewIKC(lin.Partition())
	rtt, err := ikc.BestRoundTrip(5)
	if err != nil {
		t.Fatal(err)
	}
	if rtt != 2*ikc.LocalLatency {
		t.Fatalf("best RTT from same-quadrant core = %v", rtt)
	}
}

func TestOffloadServerSingleCall(t *testing.T) {
	lin := bootLinux(t)
	eng := sim.NewEngine(1)
	ikc := NewIKC(lin.Partition())
	srv := NewOffloadServer(eng, ikc, 1)
	var took sim.Duration
	eng.Spawn("caller", func(p *sim.Proc) {
		start := p.Now()
		if err := srv.Offload(p, 5, 2*sim.Microsecond); err != nil {
			t.Error(err)
		}
		took = sim.Duration(p.Now() - start)
	})
	eng.RunUntil(sim.Time(sim.Second))
	want := 2*ikc.LocalLatency + 2*sim.Microsecond
	if took != want {
		t.Fatalf("offload took %v, want %v", took, want)
	}
	if srv.Serviced != 1 {
		t.Fatalf("serviced = %d", srv.Serviced)
	}
}

func TestOffloadServerQueueing(t *testing.T) {
	// Eight simultaneous offloads onto one proxy worker must serialise:
	// the last caller waits ~8 service times.
	lin := bootLinux(t)
	eng := sim.NewEngine(1)
	ikc := NewIKC(lin.Partition())
	srv := NewOffloadServer(eng, ikc, 1)
	service := 5 * sim.Microsecond
	var maxTook sim.Duration
	for i := 0; i < 8; i++ {
		core := 5 + i
		eng.Spawn("caller", func(p *sim.Proc) {
			start := p.Now()
			if err := srv.Offload(p, core, service); err != nil {
				t.Error(err)
			}
			if took := sim.Duration(p.Now() - start); took > maxTook {
				maxTook = took
			}
		})
	}
	eng.RunUntil(sim.Time(sim.Second))
	if srv.Serviced != 8 {
		t.Fatalf("serviced = %d", srv.Serviced)
	}
	if maxTook < 8*service {
		t.Fatalf("no queueing observed: max %v < %v", maxTook, 8*service)
	}
}

func TestOffloadServerMoreWorkersLessQueueing(t *testing.T) {
	lin := bootLinux(t)
	run := func(workers int) sim.Duration {
		eng := sim.NewEngine(1)
		srv := NewOffloadServer(eng, NewIKC(lin.Partition()), workers)
		var maxTook sim.Duration
		for i := 0; i < 16; i++ {
			core := 5 + i
			eng.Spawn("c", func(p *sim.Proc) {
				start := p.Now()
				srv.Offload(p, core, 5*sim.Microsecond)
				if took := sim.Duration(p.Now() - start); took > maxTook {
					maxTook = took
				}
			})
		}
		eng.RunUntil(sim.Time(sim.Second))
		return maxTook
	}
	if run(4) >= run(1) {
		t.Fatal("more proxy workers did not reduce offload tail latency")
	}
}
