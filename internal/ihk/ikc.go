package ihk

import (
	"fmt"

	"mklite/internal/kernel"
	"mklite/internal/sim"
	"mklite/internal/trace"
)

// IKC models the Inter-Kernel Communication layer: message queues between
// LWK cores and Linux cores used for system-call offloading. The channel is
// NUMA-topology aware — "IKC ... understands the underlying topology to
// perform efficient message delivery between the two kernels" — so the
// one-way latency depends on whether the two endpoint cores share a NUMA
// domain.
type IKC struct {
	part kernel.Partition
	// LocalLatency is the one-way message latency between cores in the
	// same NUMA domain; RemoteLatency applies across domains.
	LocalLatency  sim.Duration
	RemoteLatency sim.Duration
}

// NewIKC builds the channel model for a partition.
func NewIKC(part kernel.Partition) *IKC {
	return &IKC{
		part:          part,
		LocalLatency:  600 * sim.Nanosecond,
		RemoteLatency: 1100 * sim.Nanosecond,
	}
}

// OneWay returns the message latency from an application core to an OS
// core.
func (c *IKC) OneWay(appCore, osCore int) sim.Duration {
	node := c.part.Node
	if node.Cores[appCore].Domain == node.Cores[osCore].Domain {
		return c.LocalLatency
	}
	return c.RemoteLatency
}

// RoundTrip returns request+response latency between the cores, excluding
// the service time on the Linux side.
func (c *IKC) RoundTrip(appCore, osCore int) sim.Duration {
	return 2 * c.OneWay(appCore, osCore)
}

// BestRoundTrip returns the round-trip latency to the NUMA-nearest OS core
// — the routing both kernels actually use.
func (c *IKC) BestRoundTrip(appCore int) (sim.Duration, error) {
	osCore, err := c.part.NearestOSCore(appCore)
	if err != nil {
		return 0, fmt.Errorf("ihk: %w", err)
	}
	return c.RoundTrip(appCore, osCore), nil
}

// OffloadServer is a discrete-event model of the Linux-side syscall
// servicing path: a fixed pool of proxy workers drains a request queue.
// When many LWK cores offload simultaneously (e.g. 64 ranks all hitting a
// device syscall in the same exchange phase), queueing delay adds to the
// IKC round trip — the contention component of the LAMMPS slowdown.
type OffloadServer struct {
	eng     *sim.Engine
	ikc     *IKC
	workers int
	queue   sim.Mailbox
	replies map[int]*sim.Signal
	nextID  int
	// Serviced counts completed offloads.
	Serviced int
	// depth tracks requests enqueued but not yet picked up by a worker;
	// the engine's trace sink exports it as the "offload.queue_depth"
	// counter timeline.
	depth int64
}

type offloadReq struct {
	id      int
	appCore int
	service sim.Duration
}

// NewOffloadServer starts `workers` proxy workers on the engine.
func NewOffloadServer(eng *sim.Engine, ikc *IKC, workers int) *OffloadServer {
	s := &OffloadServer{
		eng:     eng,
		ikc:     ikc,
		workers: workers,
		replies: make(map[int]*sim.Signal),
	}
	for w := 0; w < workers; w++ {
		eng.Spawn(fmt.Sprintf("proxy-worker-%d", w), s.worker)
	}
	return s
}

func (s *OffloadServer) worker(p *sim.Proc) {
	for {
		req := p.Recv(&s.queue).(offloadReq)
		s.depth--
		if sink := s.eng.Sink(); sink.Eventing() {
			sink.CounterEvent(int64(s.eng.Now()), 0, "offload.queue_depth", s.depth)
		}
		p.Sleep(req.service)
		s.Serviced++
		s.eng.Sink().CountKey(trace.KeyIHKServiced, 1)
		if sig := s.replies[req.id]; sig != nil {
			delete(s.replies, req.id)
			sig.Fire(s.eng)
		}
	}
}

// Offload issues one offloaded syscall from the calling process on appCore
// with the given Linux-side service time, blocking the caller for the IKC
// round trip plus queueing plus service.
func (s *OffloadServer) Offload(p *sim.Proc, appCore int, service sim.Duration) error {
	rtt, err := s.ikc.BestRoundTrip(appCore)
	if err != nil {
		return err
	}
	// Request flight time.
	p.Sleep(rtt / 2)
	id := s.nextID
	s.nextID++
	sig := &sim.Signal{}
	s.replies[id] = sig
	s.queue.Send(s.eng, offloadReq{id: id, appCore: appCore, service: service})
	s.depth++
	if sink := s.eng.Sink(); sink != nil {
		sink.CountKey(trace.KeyIHKOffloads, 1)
		sink.CountKey(trace.KeyIHKRTTNs, int64(rtt))
		sink.Observe("ihk.rtt_ns", int64(rtt))
		if sink.Eventing() {
			sink.CounterEvent(int64(s.eng.Now()), 0, "offload.queue_depth", s.depth)
		}
	}
	p.WaitSignal(sig)
	// Response flight time.
	p.Sleep(rtt - rtt/2)
	return nil
}
