// Package ihk models the Interface for Heterogeneous Kernels: the low-level
// infrastructure McKernel boots from. IHK partitions CPU cores and physical
// memory out of a *running* Linux — no reboot — and provides the
// Inter-Kernel Communication (IKC) channel that system-call offloading
// rides on.
//
// Because IHK requests memory only after Linux has booted (it is a
// collection of kernel modules), the LWK inherits whatever contiguity
// Linux has left — "McKernel has to request them from Linux later,
// potentially after Linux has already placed unmovable data structures into
// it" (section II-D5). The Reserve function reproduces that mechanically by
// carving the grant out of the live Linux allocator.
package ihk

import (
	"fmt"

	"mklite/internal/hw"
	"mklite/internal/kernel"
	"mklite/internal/linuxos"
	"mklite/internal/mem"
)

// Grant is the resource partition IHK hands to an LWK.
type Grant struct {
	// Part is the core split (the LWK receives Part.AppCores).
	Part kernel.Partition
	// Extents are the physical ranges donated by Linux.
	Extents []mem.Extent
	// Phys is the LWK-side allocator over those extents.
	Phys *mem.Phys
}

// ReserveOptions tunes a reservation.
type ReserveOptions struct {
	// OSCores stay with Linux (default 4 — the paper's configuration).
	OSCores int
	// MemFraction of each domain's *currently free* memory is donated
	// to the LWK (default 0.95; Linux keeps the rest for the proxy
	// processes and daemons).
	MemFraction float64
	// Granule is the allocation granularity of the carve-out.
	Granule int64
}

// DefaultReserveOptions returns the paper's deployment values.
func DefaultReserveOptions() ReserveOptions {
	return ReserveOptions{OSCores: 4, MemFraction: 0.95, Granule: int64(hw.Page2M)}
}

// Reserve dynamically partitions CPU cores and memory from a running Linux
// ("IHK can allocate and release host resources dynamically without
// rebooting the host machine").
func Reserve(lin *linuxos.Kernel, opts ReserveOptions) (*Grant, error) {
	if opts.MemFraction <= 0 || opts.MemFraction > 1 {
		return nil, fmt.Errorf("ihk: bad MemFraction %v", opts.MemFraction)
	}
	if opts.Granule <= 0 {
		opts.Granule = int64(hw.Page2M)
	}
	node := lin.Partition().Node
	part, err := kernel.DefaultPartition(node, opts.OSCores)
	if err != nil {
		return nil, fmt.Errorf("ihk: %w", err)
	}
	g := &Grant{Part: part}
	for _, d := range node.Domains {
		want := int64(float64(lin.Phys().FreeBytes(d.ID)) * opts.MemFraction)
		want = want / opts.Granule * opts.Granule
		if want == 0 {
			continue
		}
		exts, got := lin.Phys().AllocUpTo(d.ID, want, opts.Granule)
		if got == 0 {
			return nil, fmt.Errorf("ihk: domain %d donated nothing", d.ID)
		}
		g.Extents = append(g.Extents, exts...)
	}
	g.Phys = mem.NewPhysView(node, g.Extents)
	return g, nil
}

// Release returns the grant's memory to Linux. The LWK must have freed
// everything first; releasing while the LWK still holds allocations panics
// in the donor's allocator (double accounting is a model bug).
func Release(lin *linuxos.Kernel, g *Grant) {
	for _, e := range g.Extents {
		lin.Phys().Free(e)
	}
	g.Extents = nil
	g.Phys = nil
}
