package sim

import "math"

// calQueue is a calendar queue (Brown 1988): the engine's pending-event set
// bucketed by timestamp so that push and pop are O(1) amortized instead of
// the binary heap's O(log n). Each bucket is a "day" of `width` nanoseconds;
// the buckets wrap around like a calendar, so bucket i holds every event
// whose timestamp falls in day i of *any* year. Pop scans days forward from
// the last popped timestamp; because simulations schedule most events a
// short, similar distance into the future, the next event is almost always
// within the first day or two of the scan.
//
// Ordering contract (identical to the heap it replaced): events pop in
// (at, seq) order — strictly by timestamp, FIFO by insertion seq within a
// timestamp. Same-timestamp events always land in the same bucket, where
// they are kept sorted by seq, so the FIFO tie-break is structural rather
// than incidental.
//
// Invariant: q.last <= the timestamp of every queued event. The engine
// normally guarantees this (At panics on past timestamps and last tracks
// popped events), but peek advances last to the minimum it found, and a
// subsequent RunUntil deadline can rewind the engine clock below it — so
// push restores the invariant by lowering last when it sees an earlier
// timestamp. Lowering last is always safe: the scan merely starts earlier.
type calQueue struct {
	buckets []calBucket
	mask    int    // len(buckets)-1; bucket count is a power of two
	width   uint64 // bucket width in virtual nanoseconds, >= 1
	size    int    // queued events, including cancelled ones not yet popped
	last    Time   // scan floor: no queued event is earlier
}

// calBucket is one calendar day: events sorted by (at, seq). Popping
// advances head (nil-ing the slot so the Event can be collected); the slice
// is reset once drained so its capacity is reused.
type calBucket struct {
	evs  []*Event
	head int
}

// calMinBuckets is the smallest bucket count; resizing never shrinks below
// it.
const calMinBuckets = 8

func (q *calQueue) init() {
	q.buckets = make([]calBucket, calMinBuckets)
	q.mask = calMinBuckets - 1
	q.width = 1
	q.size = 0
	q.last = 0
}

// bucketFor maps a timestamp to its calendar day.
func (q *calQueue) bucketFor(t Time) int {
	return int((uint64(t) / q.width)) & q.mask
}

// push inserts ev, keeping its bucket sorted by (at, seq). Because seq is
// monotone, an event scheduled later than everything in its bucket — the
// common case — is a plain append.
func (q *calQueue) push(ev *Event) {
	if q.size == 0 || ev.at < q.last {
		q.last = ev.at
	}
	q.insert(ev)
	q.size++
	if q.size > 2*len(q.buckets) {
		q.resize(2 * len(q.buckets))
	}
}

func (q *calQueue) insert(ev *Event) {
	b := &q.buckets[q.bucketFor(ev.at)]
	b.evs = append(b.evs, ev)
	i := len(b.evs) - 1
	for i > b.head {
		prev := b.evs[i-1]
		if prev.at < ev.at || (prev.at == ev.at && prev.seq < ev.seq) {
			break
		}
		b.evs[i] = prev
		i--
	}
	b.evs[i] = ev
}

// peek returns the minimum queued event by (at, seq) without removing it,
// or nil when the queue is empty. It tightens q.last to the found timestamp
// so the following pop (and the next peek) find it in the first bucket.
func (q *calQueue) peek() *Event {
	if q.size == 0 {
		return nil
	}
	start := int(uint64(q.last)/q.width) & q.mask
	// top is the exclusive end of the current scan day, saturating so
	// timestamps near Never cannot overflow the comparison.
	top := (uint64(q.last)/q.width + 1) * q.width
	for i := 0; i <= q.mask; i++ {
		b := &q.buckets[(start+i)&q.mask]
		if b.head < len(b.evs) {
			if ev := b.evs[b.head]; uint64(ev.at) < top {
				q.last = ev.at
				return ev
			}
		}
		next := top + q.width
		if next < top {
			next = math.MaxUint64
		}
		top = next
	}
	// Full lap without a hit: the next event is more than a full calendar
	// year away. Fall back to a direct minimum over the bucket heads.
	var min *Event
	for bi := range q.buckets {
		b := &q.buckets[bi]
		if b.head >= len(b.evs) {
			continue
		}
		ev := b.evs[b.head]
		if min == nil || ev.at < min.at || (ev.at == min.at && ev.seq < min.seq) {
			min = ev
		}
	}
	q.last = min.at
	return min
}

// pop removes and returns the minimum queued event, or nil when empty.
func (q *calQueue) pop() *Event {
	ev := q.peek()
	if ev == nil {
		return nil
	}
	// peek set q.last = ev.at, so ev is at the head of last's bucket.
	b := &q.buckets[q.bucketFor(ev.at)]
	b.evs[b.head] = nil
	b.head++
	if b.head == len(b.evs) {
		b.evs = b.evs[:0]
		b.head = 0
	}
	q.size--
	if q.size < len(q.buckets)/2 && len(q.buckets) > calMinBuckets {
		q.resize(len(q.buckets) / 2)
	}
	return ev
}

// resize rebuilds the calendar with nbuckets buckets and a width recalibrated
// to the average inter-event gap, so a year (nbuckets x width) spans the
// queued events and the pop scan touches O(1) buckets per event.
func (q *calQueue) resize(nbuckets int) {
	all := make([]*Event, 0, q.size)
	minAt, maxAt := Never, Time(0)
	for bi := range q.buckets {
		b := &q.buckets[bi]
		for _, ev := range b.evs[b.head:] {
			all = append(all, ev)
			if ev.at < minAt {
				minAt = ev.at
			}
			if ev.at > maxAt {
				maxAt = ev.at
			}
		}
	}
	width := uint64(1)
	if n := len(all); n > 1 && maxAt > minAt {
		if w := uint64(maxAt-minAt) / uint64(n); w > width {
			width = w
		}
	}
	q.buckets = make([]calBucket, nbuckets)
	q.mask = nbuckets - 1
	q.width = width
	for _, ev := range all {
		q.insert(ev)
	}
}

// clear cancels and discards every queued event, nil-ing the stored slots so
// the backing arrays retain no Event (and closure) references.
func (q *calQueue) clear() {
	for bi := range q.buckets {
		b := &q.buckets[bi]
		for i := b.head; i < len(b.evs); i++ {
			b.evs[i].dead = true
			b.evs[i] = nil
		}
		b.evs = b.evs[:0]
		b.head = 0
	}
	q.size = 0
}
