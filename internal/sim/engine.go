package sim

import (
	"fmt"
	"sort"

	"mklite/internal/trace"
)

// Event is a unit of scheduled work: a function that executes at a point in
// virtual time. Events with the same timestamp execute in scheduling order
// (FIFO), which keeps runs deterministic.
type Event struct {
	at   Time
	seq  uint64 // tiebreaker: insertion order
	fn   func()
	dead bool // cancelled events stay in the queue but are skipped
}

// Cancel prevents the event from running. Cancelling an already-executed or
// already-cancelled event is a no-op.
func (ev *Event) Cancel() { ev.dead = true }

// Cancelled reports whether Cancel has been called on the event.
func (ev *Event) Cancelled() bool { return ev.dead }

// When returns the virtual time the event is scheduled for.
func (ev *Event) When() Time { return ev.at }

// Engine is a sequential discrete-event simulator. It is not safe for
// concurrent use; cooperative processes spawned with Spawn hand control back
// and forth with the engine so that exactly one goroutine runs at a time.
type Engine struct {
	now    Time
	seq    uint64
	events calQueue
	rng    *RNG

	executed uint64 // number of events run, for diagnostics
	running  bool
	stopped  bool

	// procs maps each live process to its spawn sequence number, so
	// teardown paths (Drain) can order processes deterministically.
	procs   map[*Proc]uint64
	procSeq uint64
	yieldCh chan struct{} // proc -> engine: "I have blocked or finished"

	// sink is the run's trace destination; subsystems built on the engine
	// (ihk, nodesim) key their events to the engine clock. Nil when
	// tracing is off. The sink is passive: it never draws from the
	// engine's RNG and never schedules events.
	sink *trace.Sink
}

// NewEngine returns an engine with its clock at zero, drawing randomness
// from the given seed.
func NewEngine(seed uint64) *Engine {
	e := &Engine{
		rng:     NewRNG(seed),
		procs:   make(map[*Proc]uint64),
		yieldCh: make(chan struct{}),
	}
	e.events.init()
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// RNG returns the engine's root random stream. Subsystems should Split it
// rather than sharing it so that adding a consumer does not perturb others.
func (e *Engine) RNG() *RNG { return e.rng }

// SetSink attaches a per-run trace sink (nil turns tracing off).
func (e *Engine) SetSink(s *trace.Sink) { e.sink = s }

// Sink returns the attached trace sink; nil means tracing is off.
func (e *Engine) Sink() *trace.Sink { return e.sink }

// Executed returns the number of events executed so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of events currently scheduled (including
// cancelled events that have not yet been skipped).
func (e *Engine) Pending() int { return e.events.size }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: virtual time is monotone by construction, so a past timestamp is
// always a model bug.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v, before now %v", t, e.now))
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	e.events.push(ev)
	return ev
}

// After schedules fn to run d from now. Negative delays are clamped to zero.
func (e *Engine) After(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// Stop makes Run return after the current event completes. Pending events
// remain queued; a subsequent Run resumes them.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single next event, advancing the clock to its timestamp.
// It returns false when the queue is empty.
func (e *Engine) Step() bool {
	for {
		ev := e.events.pop()
		if ev == nil {
			return false
		}
		if ev.dead {
			continue
		}
		e.now = ev.at
		e.executed++
		ev.fn()
		return true
	}
}

// Run executes events until the queue drains or Stop is called. It returns
// the final virtual time.
func (e *Engine) Run() Time {
	return e.RunUntil(Never)
}

// RunUntil executes events with timestamps <= deadline, then sets the clock
// to deadline (if any events remain beyond it, they stay queued). It returns
// the final virtual time.
func (e *Engine) RunUntil(deadline Time) Time {
	if e.running {
		panic("sim: Engine.Run called reentrantly")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()

	for !e.stopped {
		ev := e.events.peek()
		if ev == nil {
			break
		}
		if ev.at > deadline {
			e.now = deadline
			break
		}
		e.Step()
	}
	if deadline != Never && e.now < deadline && e.events.size == 0 {
		e.now = deadline
	}
	return e.now
}

// Drain cancels every pending event and kills every live process, then runs
// the resulting kill deliveries so each killed process unwinds (running its
// deferred cleanup) before Drain returns. Processes are killed in spawn
// order — iterating the procs map directly would make the teardown order,
// and therefore any trace output or side effects of the unwinding, vary
// between runs. The engine remains usable afterwards; the clock does not
// move.
func (e *Engine) Drain() {
	// Clearing the queue nils the stored slots: the old truncate-in-place
	// retained every Event (and its fn closure) in the backing array.
	e.events.clear()
	live := make([]*Proc, 0, len(e.procs))
	//mklint:ignore maprange collection order is erased by the spawn-sequence sort below
	for p := range e.procs {
		live = append(live, p)
	}
	sort.Slice(live, func(i, j int) bool { return e.procs[live[i]] < e.procs[live[j]] })
	for _, p := range live {
		p.Kill()
	}
	// Deliver the kill dispatches now: dropping them (as the old Drain
	// did) left every killed process goroutine blocked forever.
	for e.Step() {
	}
}
