// Package sim provides the deterministic discrete-event simulation core that
// every other subsystem of mklite is built on: a virtual clock, an event
// queue, a cooperative process abstraction, and a splittable random number
// generator.
//
// All randomness in a simulation run must come from RNG values derived from
// the run seed; the engine itself never consults wall-clock time or global
// random state, so a run is a pure function of (model, seed).
package sim

import "math"

// RNG is a small, fast, deterministic pseudo random number generator based
// on SplitMix64. It is not safe for concurrent use; derive per-goroutine
// streams with Split instead of sharing one RNG.
//
// SplitMix64 passes BigCrush, has a full 2^64 period, and — unlike
// math/rand's default source — can be forked into statistically independent
// streams, which the cluster harness uses to give every rank its own stream
// while keeping runs reproducible.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators constructed
// from the same seed produce identical sequences.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// golden gamma constant used by SplitMix64 to advance the state.
const splitMixGamma = 0x9e3779b97f4a7c15

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	r.state += splitMixGamma
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split returns a new generator whose stream is statistically independent of
// the receiver's. The receiver advances by one step.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64()}
}

// StreamSeed derives the seed of sub-stream `stream` of `base`: the
// stream-th split a generator seeded with base would hand out, computed in
// O(1) by evaluating the SplitMix64 output function at that position. It is
// the sanctioned way to give each element of an indexed family of jobs
// (repetitions of an experiment, workers of a par.Map) its own independent
// stream. Unlike naive `base+i` derivation, two families with nearby base
// seeds share no stream seeds: the full 64-bit mix decorrelates them.
//
// StreamSeed(base, i) == NewRNG(base).SplitN(i+1)[i] seed for every i.
func StreamSeed(base, stream uint64) uint64 {
	z := base + (stream+1)*splitMixGamma
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SplitN returns n independent generators derived from the receiver.
func (r *RNG) SplitN(n int) []*RNG {
	out := make([]*RNG, n)
	for i := range out {
		out[i] = r.Split()
	}
	return out
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 random mantissa bits.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n called with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// ExpFloat64 returns an exponentially distributed value with rate 1
// (mean 1), via inverse transform sampling.
func (r *RNG) ExpFloat64() float64 {
	// 1-Float64() is in (0,1], so the log argument is never zero.
	return -math.Log(1 - r.Float64())
}

// NormFloat64 returns a standard normal value using the Marsaglia polar
// method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// LogNormal returns a log-normally distributed value with the given
// parameters of the underlying normal distribution.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Pareto returns a Pareto(xm, alpha) distributed value. Heavy-tailed noise
// detours (rare long daemon activity) are drawn from this family.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	return xm / math.Pow(1-r.Float64(), 1/alpha)
}

// poissonNormalCutoff is the mean above which Poisson switches from Knuth's
// product method to the normal approximation.
const poissonNormalCutoff = 30

// Poisson returns a Poisson(lambda) variate: Knuth's product method for
// small means, the normal approximation above. Occurrence counts in a
// window (noise events, lost messages, stalled offloads) are drawn from
// this family.
func (r *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > poissonNormalCutoff {
		return r.PoissonExp(lambda, 0)
	}
	return r.PoissonExp(lambda, math.Exp(-lambda))
}

// PoissonExp is Poisson with exp(-lambda) supplied by the caller, for hot
// paths that draw repeatedly at the same mean (the noise sources draw once
// per source per timestep at a window that rarely changes, and math.Exp was
// a measurable share of the whole harness). The uniform draw sequence is
// identical to Poisson's for every lambda, so switching a call site between
// the two cannot perturb a run. expNegLambda is only consulted on the
// Knuth branch (lambda <= 30); pass anything (0 is fine) above the cutoff.
func (r *RNG) PoissonExp(lambda, expNegLambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > poissonNormalCutoff {
		v := lambda + math.Sqrt(lambda)*r.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := expNegLambda
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
