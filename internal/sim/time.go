package sim

import (
	"fmt"
	"time"
)

// Time is a point on the simulation's virtual clock, in nanoseconds since
// the start of the run. It is deliberately distinct from time.Time: the
// simulation clock only advances when the engine executes events.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenient duration units, mirroring package time.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
)

// Never is a sentinel Time further in the future than any event a simulation
// will schedule.
const Never Time = 1<<63 - 1

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time as a duration since the start of the run.
func (t Time) String() string {
	if t == Never {
		return "never"
	}
	return time.Duration(t).String()
}

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Micros returns the duration as a floating-point number of microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// String formats the duration using time.Duration notation.
func (d Duration) String() string { return time.Duration(d).String() }

// DurationOf converts a floating-point number of seconds into a Duration,
// rounding to the nearest nanosecond. Negative inputs are clamped to zero:
// model arithmetic occasionally produces tiny negative values from floating
// point cancellation, and virtual time must not run backwards.
func DurationOf(seconds float64) Duration {
	if seconds <= 0 {
		return 0
	}
	return Duration(seconds*float64(Second) + 0.5)
}

// Scale multiplies the duration by a dimensionless factor, rounding to the
// nearest nanosecond and clamping at zero.
func (d Duration) Scale(f float64) Duration {
	return DurationOf(d.Seconds() * f)
}

// CheckNonNegative panics if d is negative; models call it at boundaries
// where a negative duration would indicate a bug rather than a modelling
// choice.
func (d Duration) CheckNonNegative(context string) Duration {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative duration %v in %s", d, context))
	}
	return d
}
