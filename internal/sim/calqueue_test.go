package sim

import (
	"container/heap"
	"fmt"
	"testing"
)

// refHeap is the binary heap the calendar queue replaced, kept here as the
// reference model for the equivalence property: a container/heap ordered by
// (at, seq), exactly as internal/sim/engine.go had it before the calendar
// queue landed.
type refHeap []*Event

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(*Event)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// TestCalQueueMatchesBinaryHeap drives the calendar queue and the retired
// binary heap through identical random workloads — pushes at random future
// times, same-timestamp bursts, cancellations, interleaved pops — and
// requires byte-for-byte identical pop sequences. Pops respect the engine
// invariant that nothing is ever scheduled before the last popped timestamp.
func TestCalQueueMatchesBinaryHeap(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 42, 0xdead} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := NewRNG(seed)
			var q calQueue
			q.init()
			var ref refHeap
			var live []*Event // events pushed and not yet popped, for Cancel
			var seq uint64
			now := Time(0)

			push := func(at Time) {
				ev := &Event{at: at, seq: seq}
				seq++
				q.push(ev)
				// The reference holds its own Event so the heap's
				// bookkeeping cannot alias the calendar queue's.
				heap.Push(&ref, &Event{at: at, seq: ev.seq, dead: false})
				live = append(live, ev)
			}
			popBoth := func() {
				got := q.pop()
				var want *Event
				if ref.Len() > 0 {
					want = heap.Pop(&ref).(*Event)
				}
				switch {
				case got == nil && want == nil:
					return
				case got == nil || want == nil:
					t.Fatalf("pop mismatch: calqueue=%v heap=%v", got, want)
				case got.at != want.at || got.seq != want.seq:
					t.Fatalf("pop order diverged: calqueue (at=%d seq=%d) vs heap (at=%d seq=%d)",
						got.at, got.seq, want.at, want.seq)
				case got.dead != want.dead:
					t.Fatalf("cancel state diverged at seq %d", got.seq)
				}
				now = got.at
			}

			for op := 0; op < 20000; op++ {
				switch r := rng.Intn(100); {
				case r < 45: // push at a random future time
					push(now + Time(rng.Intn(5000)))
				case r < 60: // same-timestamp burst
					at := now + Time(rng.Intn(1000))
					for i := 0; i < 1+rng.Intn(8); i++ {
						push(at)
					}
				case r < 70: // far-future outlier (stresses bucket wrap)
					push(now + Time(1+rng.Int63n(int64(50*Second))))
				case r < 80: // cancel a random live event in both structures
					if len(live) > 0 {
						i := rng.Intn(len(live))
						victim := live[i]
						victim.dead = true
						for j := range ref {
							if ref[j].seq == victim.seq {
								ref[j].dead = true
								break
							}
						}
						live = append(live[:i], live[i+1:]...)
					}
				default:
					popBoth()
				}
			}
			// Drain: the tails must match too.
			for q.size > 0 || ref.Len() > 0 {
				popBoth()
			}
		})
	}
}

// TestCalQueueFIFOBurst pops a large same-timestamp burst in strict
// insertion order — the tie-break contract the engine's determinism rests
// on, exercised through bucket resizes.
func TestCalQueueFIFOBurst(t *testing.T) {
	var q calQueue
	q.init()
	const n = 4096
	for i := 0; i < n; i++ {
		q.push(&Event{at: 77, seq: uint64(i)})
	}
	for i := 0; i < n; i++ {
		ev := q.pop()
		if ev == nil || ev.seq != uint64(i) {
			t.Fatalf("burst pop %d returned seq %v", i, ev)
		}
	}
	if q.pop() != nil {
		t.Fatal("queue not empty after draining burst")
	}
}

// TestEngineDrainKillOrderDeterministic spawns processes with teardown
// side effects and requires Drain to unwind them in spawn order — the old
// Drain ranged over the procs map, so the order (and any trace output of
// the deferred cleanup) varied between runs.
func TestEngineDrainKillOrderDeterministic(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		e := NewEngine(1)
		const n = 16
		var unwound []int
		for i := 0; i < n; i++ {
			i := i
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				defer func() { unwound = append(unwound, i) }()
				p.Sleep(1000 * Duration(Second))
			})
		}
		e.RunUntil(10) // all processes started and blocked in Sleep
		e.Drain()
		if len(unwound) != n {
			t.Fatalf("iter %d: %d of %d processes unwound during Drain", iter, len(unwound), n)
		}
		for i, v := range unwound {
			if v != i {
				t.Fatalf("iter %d: kill order not spawn order: %v", iter, unwound)
			}
		}
	}
}

// TestEngineDrainReleasesEventReferences checks that Drain really empties
// the queue's storage: a post-Drain engine schedules and runs fresh events
// with no leftovers from before.
func TestEngineDrainReleasesEventReferences(t *testing.T) {
	e := NewEngine(1)
	stale := 0
	for i := 0; i < 100; i++ {
		e.After(Duration(i), func() { stale++ })
	}
	e.Drain()
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after Drain", e.Pending())
	}
	ran := false
	e.After(5, func() { ran = true })
	e.Run()
	if stale != 0 {
		t.Fatalf("%d drained events ran", stale)
	}
	if !ran {
		t.Fatal("post-Drain event did not run")
	}
}
