package sim

import "fmt"

// Proc is a cooperative simulation process: a goroutine whose execution is
// interleaved with the engine so that exactly one goroutine — either the
// engine loop or a single process — runs at any moment. Processes express
// protocols that are awkward as raw event callbacks (a thread that computes,
// blocks in a syscall, is woken by a message, computes again, ...).
//
// A process may only call its blocking methods (Sleep, WaitSignal, ...) from
// its own goroutine; the engine resumes it by scheduling wake events.
type Proc struct {
	eng    *Engine
	name   string
	resume chan procMsg
	done   bool
	killed bool
}

type procMsg struct{ kill bool }

// procKilled is the panic payload used to unwind a killed process.
type procKilled struct{ p *Proc }

// Spawn starts fn as a new process at the current virtual time (the process
// body begins executing when the engine processes the start event). The
// name is used in diagnostics only.
func (e *Engine) Spawn(name string, fn func(*Proc)) *Proc {
	p := &Proc{eng: e, name: name, resume: make(chan procMsg)}
	e.procs[p] = e.procSeq
	e.procSeq++
	e.After(0, func() {
		// The engine's dispatch/yield handshake guarantees this is the
		// only runnable goroutine until the process blocks or exits,
		// so it cannot race with simulation state.
		go p.run(fn) //mklint:ignore nogoroutine Proc is the cooperative abstraction itself; the handshake serialises execution
		// Hand control to the process body and wait for it to block
		// or finish.
		p.dispatch()
	})
	return p
}

func (p *Proc) run(fn func(*Proc)) {
	defer func() {
		p.done = true
		delete(p.eng.procs, p)
		if r := recover(); r != nil {
			if pk, ok := r.(procKilled); ok && pk.p == p {
				// Normal teardown of a killed process.
				p.eng.yieldCh <- struct{}{}
				return
			}
			// Real panic: surface it in the engine goroutine by
			// re-panicking there is not possible; crash loudly
			// here with context instead.
			panic(fmt.Sprintf("sim: process %q panicked: %v", p.name, r))
		}
		p.eng.yieldCh <- struct{}{}
	}()
	// Wait for the initial dispatch before running the body.
	p.block()
	fn(p)
}

// dispatch resumes the process goroutine and blocks the engine until the
// process yields (blocks or finishes).
func (p *Proc) dispatch() {
	if p.done {
		return
	}
	p.resume <- procMsg{kill: p.killed}
	<-p.eng.yieldCh
}

// block suspends the process goroutine until the engine dispatches it again.
// It must only be called from the process goroutine.
func (p *Proc) block() {
	msg := <-p.resume
	if msg.kill {
		panic(procKilled{p: p})
	}
}

// yield hands control back to the engine and suspends until re-dispatched.
func (p *Proc) yield() {
	p.eng.yieldCh <- struct{}{}
	p.block()
}

// Name returns the diagnostic name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine the process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.Now() }

// Done reports whether the process body has returned or been killed.
func (p *Proc) Done() bool { return p.done }

// Kill marks the process for termination. The process unwinds the next time
// it would be resumed (immediately if it is currently blocked on an event
// that has not fired yet — the kill is delivered via a zero-delay event).
func (p *Proc) Kill() {
	if p.done || p.killed {
		return
	}
	p.killed = true
	p.eng.After(0, func() { p.dispatch() })
}

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.eng.After(d, func() { p.dispatch() })
	p.yield()
}

// Signal is a broadcast wake-up point for processes. The zero value is ready
// to use.
type Signal struct {
	waiters []*Proc
}

// WaitSignal suspends the process until s fires.
func (p *Proc) WaitSignal(s *Signal) {
	s.waiters = append(s.waiters, p)
	p.yield()
}

// Fire wakes every process currently waiting on s, in wait order. Each wakes
// via its own zero-delay event at the current virtual time.
func (s *Signal) Fire(e *Engine) {
	waiters := s.waiters
	s.waiters = nil
	for _, w := range waiters {
		w := w
		e.After(0, func() { w.dispatch() })
	}
}

// Waiting returns the number of processes blocked on the signal.
func (s *Signal) Waiting() int { return len(s.waiters) }

// Mailbox is a FIFO rendezvous between processes: senders never block,
// receivers block while the box is empty.
type Mailbox struct {
	items   []any
	waiters []*Proc
}

// Send deposits v and wakes one waiting receiver, if any.
func (m *Mailbox) Send(e *Engine, v any) {
	m.items = append(m.items, v)
	if len(m.waiters) > 0 {
		w := m.waiters[0]
		m.waiters = m.waiters[1:]
		e.After(0, func() { w.dispatch() })
	}
}

// Recv blocks until an item is available, then removes and returns it.
func (p *Proc) Recv(m *Mailbox) any {
	for len(m.items) == 0 {
		m.waiters = append(m.waiters, p)
		p.yield()
	}
	v := m.items[0]
	m.items = m.items[1:]
	return v
}

// Len returns the number of queued items.
func (m *Mailbox) Len() int { return len(m.items) }
