package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("wrong order: %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("clock at %v, want 30", e.Now())
	}
}

func TestEngineFIFOAtSameTimestamp(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-timestamp events reordered: %v", order)
		}
	}
}

func TestEngineAfterUsesCurrentTime(t *testing.T) {
	e := NewEngine(1)
	var fired Time
	e.At(100, func() {
		e.After(50, func() { fired = e.Now() })
	})
	e.Run()
	if fired != 150 {
		t.Fatalf("nested After fired at %v, want 150", fired)
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1)
	ran := false
	ev := e.At(10, func() { ran = true })
	ev.Cancel()
	e.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() false after Cancel")
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine(1)
	var ran []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func() { ran = append(ran, at) })
	}
	e.RunUntil(25)
	if len(ran) != 2 {
		t.Fatalf("RunUntil(25) ran %d events, want 2", len(ran))
	}
	if e.Now() != 25 {
		t.Fatalf("clock at %v after RunUntil(25)", e.Now())
	}
	// Resume: remaining events still fire.
	e.Run()
	if len(ran) != 4 {
		t.Fatalf("resume ran %d total events, want 4", len(ran))
	}
}

func TestEngineRunUntilEmptyAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	e.RunUntil(500)
	if e.Now() != 500 {
		t.Fatalf("clock %v after RunUntil on empty queue, want 500", e.Now())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("Stop did not halt run: %d events ran", count)
	}
	if e.Pending() != 7 {
		t.Fatalf("pending %d after Stop, want 7", e.Pending())
	}
}

func TestEngineStepReturnsFalseWhenEmpty(t *testing.T) {
	e := NewEngine(1)
	if e.Step() {
		t.Fatal("Step on empty engine returned true")
	}
	e.At(1, func() {})
	if !e.Step() {
		t.Fatal("Step with pending event returned false")
	}
}

func TestEngineExecutedCount(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 5; i++ {
		e.At(Time(i), func() {})
	}
	e.Run()
	if e.Executed() != 5 {
		t.Fatalf("Executed() = %d, want 5", e.Executed())
	}
}

func TestEngineDeterministicAcrossRuns(t *testing.T) {
	trace := func() []Time {
		e := NewEngine(99)
		r := e.RNG()
		var out []Time
		var step func()
		n := 0
		step = func() {
			out = append(out, e.Now())
			n++
			if n < 50 {
				e.After(Duration(1+r.Intn(100)), step)
			}
		}
		e.After(0, step)
		e.Run()
		return out
	}
	a, b := trace(), trace()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: for any set of non-negative delays, the engine executes events
// in non-decreasing time order.
func TestEngineMonotoneClockProperty(t *testing.T) {
	check := func(delays []uint16) bool {
		e := NewEngine(1)
		last := Time(-1)
		ok := true
		for _, d := range delays {
			e.At(Time(d), func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run()
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeHelpers(t *testing.T) {
	tm := Time(0).Add(5 * Duration(Second))
	if tm.Seconds() != 5 {
		t.Fatalf("Seconds() = %v", tm.Seconds())
	}
	if !Time(1).Before(Time(2)) || !Time(2).After(Time(1)) {
		t.Fatal("Before/After broken")
	}
	if Time(10).Sub(Time(4)) != 6 {
		t.Fatal("Sub broken")
	}
	if Never.String() != "never" {
		t.Fatalf("Never.String() = %q", Never.String())
	}
}

func TestDurationOfClampsNegative(t *testing.T) {
	if DurationOf(-1) != 0 {
		t.Fatal("DurationOf(-1) != 0")
	}
	if DurationOf(1.5) != Duration(1500*Millisecond) {
		t.Fatalf("DurationOf(1.5) = %v", DurationOf(1.5))
	}
}

func TestDurationScale(t *testing.T) {
	d := Duration(1000)
	if d.Scale(2.5) != 2500 {
		t.Fatalf("Scale(2.5) = %v", d.Scale(2.5))
	}
	if d.Scale(-1) != 0 {
		t.Fatalf("Scale(-1) = %v, want 0", d.Scale(-1))
	}
}

func TestDurationCheckNonNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CheckNonNegative(-1) did not panic")
		}
	}()
	Duration(-1).CheckNonNegative("test")
}

func TestDurationMicros(t *testing.T) {
	if Duration(2500).Micros() != 2.5 {
		t.Fatalf("Micros() = %v", Duration(2500).Micros())
	}
}
