package sim

import "testing"

func TestProcSleepAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	var woke Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(100)
		woke = p.Now()
	})
	e.Run()
	if woke != 100 {
		t.Fatalf("woke at %v, want 100", woke)
	}
}

func TestProcSequentialSleeps(t *testing.T) {
	e := NewEngine(1)
	var marks []Time
	e.Spawn("s", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(10)
			marks = append(marks, p.Now())
		}
	})
	e.Run()
	want := []Time{10, 20, 30}
	for i := range want {
		if marks[i] != want[i] {
			t.Fatalf("marks = %v, want %v", marks, want)
		}
	}
}

func TestTwoProcsInterleave(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.Spawn("a", func(p *Proc) {
		p.Sleep(10)
		order = append(order, "a10")
		p.Sleep(20) // wakes at 30
		order = append(order, "a30")
	})
	e.Spawn("b", func(p *Proc) {
		p.Sleep(20)
		order = append(order, "b20")
	})
	e.Run()
	want := []string{"a10", "b20", "a30"}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestProcDone(t *testing.T) {
	e := NewEngine(1)
	p := e.Spawn("d", func(p *Proc) { p.Sleep(5) })
	if p.Done() {
		t.Fatal("Done before run")
	}
	e.Run()
	if !p.Done() {
		t.Fatal("not Done after run")
	}
}

func TestProcKill(t *testing.T) {
	e := NewEngine(1)
	reached := false
	p := e.Spawn("victim", func(p *Proc) {
		p.Sleep(100)
		reached = true
	})
	e.At(50, func() { p.Kill() })
	e.Run()
	if reached {
		t.Fatal("killed process ran past its sleep")
	}
	if !p.Done() {
		t.Fatal("killed process not Done")
	}
}

func TestSignalWakesAllWaiters(t *testing.T) {
	e := NewEngine(1)
	var sig Signal
	woke := 0
	for i := 0; i < 4; i++ {
		e.Spawn("w", func(p *Proc) {
			p.WaitSignal(&sig)
			woke++
		})
	}
	e.At(10, func() { sig.Fire(e) })
	e.Run()
	if woke != 4 {
		t.Fatalf("%d waiters woke, want 4", woke)
	}
}

func TestSignalWaitingCount(t *testing.T) {
	e := NewEngine(1)
	var sig Signal
	e.Spawn("w", func(p *Proc) { p.WaitSignal(&sig) })
	e.At(5, func() {
		if sig.Waiting() != 1 {
			t.Errorf("Waiting() = %d, want 1", sig.Waiting())
		}
		sig.Fire(e)
	})
	e.Run()
	if sig.Waiting() != 0 {
		t.Fatalf("Waiting() = %d after fire", sig.Waiting())
	}
}

func TestMailboxDeliversFIFO(t *testing.T) {
	e := NewEngine(1)
	var m Mailbox
	var got []int
	e.Spawn("recv", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, p.Recv(&m).(int))
		}
	})
	e.At(10, func() { m.Send(e, 1) })
	e.At(20, func() { m.Send(e, 2) })
	e.At(30, func() { m.Send(e, 3) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestMailboxBuffersBeforeReceiver(t *testing.T) {
	e := NewEngine(1)
	var m Mailbox
	m.Send(e, 7)
	m.Send(e, 8)
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
	var got []int
	e.Spawn("late", func(p *Proc) {
		got = append(got, p.Recv(&m).(int))
		got = append(got, p.Recv(&m).(int))
	})
	e.Run()
	if len(got) != 2 || got[0] != 7 || got[1] != 8 {
		t.Fatalf("got %v", got)
	}
}

func TestProcPingPong(t *testing.T) {
	// Two processes exchanging messages through mailboxes: a rendezvous
	// pattern used by the IKC model.
	e := NewEngine(1)
	var req, resp Mailbox
	e.Spawn("server", func(p *Proc) {
		for i := 0; i < 3; i++ {
			v := p.Recv(&req).(int)
			p.Sleep(5) // service time
			resp.Send(e, v*10)
		}
	})
	var results []int
	var times []Time
	e.Spawn("client", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			req.Send(e, i)
			results = append(results, p.Recv(&resp).(int))
			times = append(times, p.Now())
		}
	})
	e.Run()
	if len(results) != 3 || results[0] != 10 || results[1] != 20 || results[2] != 30 {
		t.Fatalf("results %v", results)
	}
	// Each round trip costs the 5-unit service time.
	if times[2] != 15 {
		t.Fatalf("third response at %v, want 15", times[2])
	}
}

func TestEngineDrainKillsProcs(t *testing.T) {
	e := NewEngine(1)
	reached := false
	e.Spawn("p", func(p *Proc) {
		p.Sleep(1000)
		reached = true
	})
	e.RunUntil(10)
	e.Drain()
	e.Run()
	if reached {
		t.Fatal("drained process continued")
	}
}

func TestProcName(t *testing.T) {
	e := NewEngine(1)
	p := e.Spawn("worker-3", func(p *Proc) {})
	if p.Name() != "worker-3" {
		t.Fatalf("Name() = %q", p.Name())
	}
	if p.Engine() != e {
		t.Fatal("Engine() mismatch")
	}
	e.Run()
}
