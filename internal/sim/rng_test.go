package sim

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("step %d: streams diverged: %d != %d", i, x, y)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values in 100 draws", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(7)
	s1 := r.Split()
	s2 := r.Split()
	// The two derived streams must differ from each other.
	diff := false
	for i := 0; i < 64; i++ {
		if s1.Uint64() != s2.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("split streams are identical")
	}
}

func TestRNGSplitN(t *testing.T) {
	r := NewRNG(9)
	streams := r.SplitN(8)
	if len(streams) != 8 {
		t.Fatalf("SplitN(8) returned %d streams", len(streams))
	}
	seen := map[uint64]bool{}
	for _, s := range streams {
		v := s.Uint64()
		if seen[v] {
			t.Fatalf("duplicate first draw %d across split streams", v)
		}
		seen[v] = true
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(4)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(5)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		counts[r.Intn(7)]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("bucket %d has suspicious count %d (expect ~10000)", i, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestInt63nPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Int63n(-1) did not panic")
		}
	}()
	NewRNG(1).Int63n(-1)
}

func TestBoolEdges(t *testing.T) {
	r := NewRNG(6)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(8)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) hit rate %v", frac)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(10)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("exponential sample negative: %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1.0) > 0.02 {
		t.Fatalf("exponential mean %v too far from 1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := NewRNG(12)
	for i := 0; i < 10000; i++ {
		if v := r.LogNormal(0, 1); v <= 0 {
			t.Fatalf("log-normal sample non-positive: %v", v)
		}
	}
}

func TestParetoBounds(t *testing.T) {
	r := NewRNG(13)
	for i := 0; i < 10000; i++ {
		v := r.Pareto(2.0, 1.5)
		if v < 2.0 {
			t.Fatalf("Pareto(2, 1.5) sample below xm: %v", v)
		}
	}
}

func TestParetoHeavyTail(t *testing.T) {
	// A Pareto with alpha=1.1 should produce occasional samples far above
	// xm; verify at least one 10x excursion in a modest sample.
	r := NewRNG(14)
	saw := false
	for i := 0; i < 50000; i++ {
		if r.Pareto(1, 1.1) > 10 {
			saw = true
			break
		}
	}
	if !saw {
		t.Fatal("no heavy-tail excursion observed in 50000 Pareto draws")
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		if n == 0 {
			return true
		}
		p := NewRNG(seed).Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := NewRNG(15)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: sum %d != %d", got, sum)
	}
}

func TestStreamSeedMatchesSplit(t *testing.T) {
	// StreamSeed(base, i) must equal the seed of the i-th Split of a
	// generator seeded with base — the O(1) shortcut and the explicit
	// splitting must define the same stream family.
	for _, base := range []uint64{0, 1, 2, 42, 0xdeadbeef} {
		r := NewRNG(base)
		for i := uint64(0); i < 20; i++ {
			want := r.Split().state
			if got := StreamSeed(base, i); got != want {
				t.Fatalf("StreamSeed(%d, %d) = %#x, want %#x", base, i, got, want)
			}
		}
	}
}

func TestStreamSeedDecorrelatesNearbyBases(t *testing.T) {
	// The reason StreamSeed replaces Seed+i rep derivation: consecutive
	// base seeds must not share any stream seeds across small indices.
	seen := map[uint64]string{}
	for base := uint64(1); base <= 8; base++ {
		for i := uint64(0); i < 8; i++ {
			s := StreamSeed(base, i)
			if prev, dup := seen[s]; dup {
				t.Fatalf("StreamSeed(%d, %d) collides with %s", base, i, prev)
			}
			seen[s] = fmt.Sprintf("(%d, %d)", base, i)
		}
	}
}
