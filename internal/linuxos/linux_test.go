package linuxos

import (
	"strings"
	"testing"

	"mklite/internal/hw"
	"mklite/internal/kernel"
	"mklite/internal/mem"
)

func bootDefault(t *testing.T) *Kernel {
	t.Helper()
	k, err := Boot(hw.KNL7250SNC4(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestBootBasics(t *testing.T) {
	k := bootDefault(t)
	if k.Type() != kernel.TypeLinux || k.Name() != "linux" {
		t.Fatal("identity")
	}
	if len(k.Partition().AppCores) != 64 || len(k.Partition().OSCores) != 4 {
		t.Fatal("partition")
	}
	if !k.Sched().Preemptive() {
		t.Fatal("Linux must time-share")
	}
}

func TestBootRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OSCores = 100
	if _, err := Boot(hw.KNL7250SNC4(), cfg); err == nil {
		t.Fatal("bad partition accepted")
	}
}

func TestAllSyscallsNative(t *testing.T) {
	k := bootDefault(t)
	if n := k.Table().Count(kernel.Native); n != kernel.NumSyscalls {
		t.Fatalf("only %d/%d syscalls native", n, kernel.NumSyscalls)
	}
	if k.SyscallTime(kernel.SysOpen) != k.Costs().Trap {
		t.Fatal("native syscall should cost one trap")
	}
}

func TestLinuxHasAllCaps(t *testing.T) {
	k := bootDefault(t)
	for _, c := range []kernel.Capability{
		kernel.CapFullFork, kernel.CapPtraceFull, kernel.CapBrkShrinkReleases,
		kernel.CapMovePages, kernel.CapExoticCloneFlags, kernel.CapLinuxMisc,
	} {
		if !k.Caps().Has(c) {
			t.Fatalf("missing capability %v", c)
		}
	}
}

func TestKernelReservationFragmentsDDR(t *testing.T) {
	k := bootDefault(t)
	// Kernel boot reservation must consume memory and break contiguity
	// somewhat.
	if k.Phys().UsedBytes(0) == 0 {
		t.Fatal("no kernel reservation in domain 0")
	}
	if k.Phys().LargestFree(0) == k.Phys().Capacity(0) {
		t.Fatal("reservation did not fragment the domain")
	}
}

func TestMapPolicyDefaultsToDDRDemand(t *testing.T) {
	k := bootDefault(t)
	pol := k.MapPolicy(mem.VMAAnon)
	if !pol.Demand {
		t.Fatal("Linux anon memory must be demand paged")
	}
	if pol.MaxPage != hw.Page2M {
		t.Fatalf("THP max page = %v", pol.MaxPage)
	}
	node := k.Partition().Node
	for i, d := range node.DomainsOfKind(hw.DDR4) {
		if pol.Domains[i] != d {
			t.Fatalf("policy domains %v, want DDR first", pol.Domains)
		}
	}
}

func TestMapPolicySinglePreferredDomain(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PreferredDomain = 4 // one MCDRAM quadrant: all numactl -p can express
	k, err := Boot(hw.KNL7250SNC4(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	pol := k.MapPolicy(mem.VMAAnon)
	if pol.Domains[0] != 4 {
		t.Fatalf("preferred domain not first: %v", pol.Domains)
	}
	// Exactly one MCDRAM domain in the preference list: the SNC-4
	// limitation.
	mcdram := 0
	node := k.Partition().Node
	for _, d := range pol.Domains {
		if dom, err := node.Domain(d); err == nil && dom.Mem.Kind == hw.MCDRAM {
			mcdram++
		}
	}
	if mcdram != 1 {
		t.Fatalf("%d MCDRAM domains in Linux policy, want exactly 1", mcdram)
	}
}

func TestTHPOffUsesSmallPages(t *testing.T) {
	cfg := DefaultConfig()
	cfg.THP = false
	k, _ := Boot(hw.KNL7250SNC4(), cfg)
	if k.MapPolicy(mem.VMAAnon).MaxPage != hw.Page4K {
		t.Fatal("THP off should cap at 4K")
	}
}

func TestNewHeapIsLinuxHeap(t *testing.T) {
	k := bootDefault(t)
	as := mem.NewAddrSpace(k.Phys())
	h, err := k.NewHeap(as, hw.GiB, nil)
	if err != nil {
		t.Fatal(err)
	}
	h.Sbrk(1 * hw.MiB)
	w := h.TouchUpTo(1 * hw.MiB)
	if w.Faults == 0 {
		t.Fatal("Linux heap did not demand fault")
	}
}

func TestUntunedNoisier(t *testing.T) {
	tuned := bootDefault(t)
	cfg := DefaultConfig()
	cfg.Tuned = false
	untuned, _ := Boot(hw.KNL7250SNC4(), cfg)
	if untuned.Noise().ExpectedRate(1) <= tuned.Noise().ExpectedRate(1) {
		t.Fatal("untuned kernel should be noisier")
	}
}

func TestProcFSBasicFiles(t *testing.T) {
	k := bootDefault(t)
	fs := k.ProcFS()
	for _, path := range []string{
		"/proc/cpuinfo", "/proc/meminfo", "/proc/stat",
		"/sys/devices/system/cpu/online", "/sys/devices/system/node/online",
		"/sys/devices/system/node/node0/cpulist",
		"/sys/devices/system/node/node7/meminfo",
	} {
		if !fs.Has(path) {
			t.Fatalf("missing %s", path)
		}
	}
	if _, err := fs.Read("/proc/nonexistent"); err == nil {
		t.Fatal("phantom file read")
	}
}

func TestProcFSCpuinfoCounts(t *testing.T) {
	k := bootDefault(t)
	content, err := k.ProcFS().Read("/proc/cpuinfo")
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(content, "processor\t:"); got != 272 {
		t.Fatalf("cpuinfo lists %d CPUs, want 272", got)
	}
}

func TestProcFSOnlineRanges(t *testing.T) {
	k := bootDefault(t)
	online, _ := k.ProcFS().Read("/sys/devices/system/cpu/online")
	if online != "0-271" {
		t.Fatalf("cpu online = %q", online)
	}
	nodes, _ := k.ProcFS().Read("/sys/devices/system/node/online")
	if nodes != "0-7" {
		t.Fatalf("node online = %q", nodes)
	}
}

func TestPartitionProcFSRestrictsView(t *testing.T) {
	node := hw.KNL7250SNC4()
	part, _ := kernel.DefaultPartition(node, 4)
	fs := NewPartitionProcFS(node, part)
	content, _ := fs.Read("/proc/cpuinfo")
	// 64 app cores x 4 threads = 256 logical CPUs visible.
	if got := strings.Count(content, "processor\t:"); got != 256 {
		t.Fatalf("partition cpuinfo lists %d CPUs, want 256", got)
	}
	// MCDRAM domains stay visible (memory-only).
	if !fs.Has("/sys/devices/system/node/node4/meminfo") {
		t.Fatal("MCDRAM domain hidden")
	}
}

func TestRangeString(t *testing.T) {
	cases := []struct {
		in   []int
		want string
	}{
		{nil, ""},
		{[]int{3}, "3"},
		{[]int{0, 1, 2, 3}, "0-3"},
		{[]int{0, 1, 5, 7, 8}, "0-1,5,7-8"},
	}
	for _, c := range cases {
		if got := rangeString(c.in); got != c.want {
			t.Fatalf("rangeString(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestProcFSList(t *testing.T) {
	k := bootDefault(t)
	list := k.ProcFS().List()
	if len(list) < 10 {
		t.Fatalf("only %d pseudo-files", len(list))
	}
	for i := 1; i < len(list); i++ {
		if list[i-1] >= list[i] {
			t.Fatal("List not sorted")
		}
	}
}

func TestNumaMaps(t *testing.T) {
	k := bootDefault(t)
	as := mem.NewAddrSpace(k.Phys())
	v, err := as.Map(8*1024*1024, mem.VMAAnon, mem.Policy{Domains: []int{4}, MaxPage: hw.Page2M})
	if err != nil {
		t.Fatal(err)
	}
	_ = v
	out := NumaMaps(as)
	if !strings.Contains(out, "N4=2048") { // 8 MiB / 4 KiB pages
		t.Fatalf("numa_maps missing residency:\n%s", out)
	}
	if !strings.Contains(out, "kernelpagesize_kB=2048") {
		t.Fatalf("numa_maps missing page size:\n%s", out)
	}
	if !strings.Contains(out, "bind:4") {
		t.Fatalf("numa_maps missing policy:\n%s", out)
	}
}
