package linuxos

import (
	"fmt"
	"maps"
	"slices"
	"sort"
	"strings"

	"mklite/internal/hw"
	"mklite/internal/kernel"
	"mklite/internal/mem"
)

// ProcFS synthesises the /proc and /sys surface tools depend on. Full
// Linux compatibility "requires ... mimicking the complex and ever changing
// pseudo file systems"; mOS mostly reuses this implementation while
// McKernel re-implements a subset reflecting its own resource partition
// (section II-D4).
type ProcFS struct {
	// Construction inputs, retained so the file map can be synthesised
	// lazily: every kernel boot creates a ProcFS, but most simulated runs
	// never read a pseudo-file, and formatting cpuinfo for 272 logical
	// CPUs per boot dominated setup time. The content is a pure function
	// of these inputs, so deferral is invisible to readers.
	node    *hw.NodeSpec
	cpus    []int
	domains []hw.DomainSpec

	files map[string]string
}

// NewProcFS builds the full Linux pseudo-filesystem view of a node: all
// CPUs and all NUMA domains are visible.
func NewProcFS(node *hw.NodeSpec) *ProcFS {
	return &ProcFS{node: node, cpus: allCPUs(node), domains: node.Domains}
}

// NewPartitionProcFS builds the view an LWK exposes: only the partition's
// application cores and its assigned memory appear — "McKernel needs to
// implement various /sys and /proc files to reflect the resource partition
// assigned to the LWK".
func NewPartitionProcFS(node *hw.NodeSpec, part kernel.Partition) *ProcFS {
	var cpus []int
	for _, c := range part.AppCores {
		cpus = append(cpus, node.Cores[c].CPUs...)
	}
	sort.Ints(cpus)
	var domains []hw.DomainSpec
	appDoms := map[int]bool{}
	for _, d := range part.AppDomains() {
		appDoms[d] = true
	}
	for _, d := range node.Domains {
		if appDoms[d.ID] || d.Mem.Kind == hw.MCDRAM {
			domains = append(domains, d)
		}
	}
	return &ProcFS{node: node, cpus: cpus, domains: domains}
}

func allCPUs(node *hw.NodeSpec) []int {
	var cpus []int
	for _, c := range node.Cores {
		cpus = append(cpus, c.CPUs...)
	}
	sort.Ints(cpus)
	return cpus
}

// ensure synthesises the file map on first access.
func (p *ProcFS) ensure() {
	if p.files == nil {
		buildProcFS(p, p.node, p.cpus, p.domains)
	}
}

func buildProcFS(p *ProcFS, node *hw.NodeSpec, cpus []int, domains []hw.DomainSpec) {
	p.files = make(map[string]string)

	var cpuinfo strings.Builder
	for _, cpu := range cpus {
		core, err := node.CoreOfCPU(cpu)
		if err != nil {
			continue
		}
		fmt.Fprintf(&cpuinfo, "processor\t: %d\ncore id\t\t: %d\ncpu MHz\t\t: %.0f\n\n",
			cpu, core.ID, node.CoreFreqGHz*1000)
	}
	p.files["/proc/cpuinfo"] = cpuinfo.String()

	var total int64
	for _, d := range domains {
		total += d.Mem.Capacity
	}
	p.files["/proc/meminfo"] = fmt.Sprintf("MemTotal: %d kB\nMemFree: %d kB\nHugePagesize: 2048 kB\n",
		total/1024, total/1024)
	p.files["/proc/stat"] = fmt.Sprintf("cpu  0 0 0 0\nctxt 0\nbtime 0\nprocesses 1\nncpus %d\n", len(cpus))
	p.files["/proc/self/status"] = "Name:\tapp\nState:\tR (running)\nThreads:\t1\n"
	p.files["/proc/self/maps"] = "00400000-00452000 r-xp 00000000 00:00 0 app\n"

	p.files["/sys/devices/system/cpu/online"] = rangeString(cpus)
	var nodeIDs []int
	for _, d := range domains {
		nodeIDs = append(nodeIDs, d.ID)
	}
	sort.Ints(nodeIDs)
	p.files["/sys/devices/system/node/online"] = rangeString(nodeIDs)
	for _, d := range domains {
		prefix := fmt.Sprintf("/sys/devices/system/node/node%d", d.ID)
		p.files[prefix+"/meminfo"] = fmt.Sprintf("Node %d MemTotal: %d kB\n", d.ID, d.Mem.Capacity/1024)
		var local []int
		for _, cpu := range d.CPUs {
			if contains(cpus, cpu) {
				local = append(local, cpu)
			}
		}
		p.files[prefix+"/cpulist"] = rangeString(local)
	}
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// rangeString formats a sorted int list in Linux cpulist notation
// ("0-3,68-71").
func rangeString(xs []int) string {
	if len(xs) == 0 {
		return ""
	}
	var b strings.Builder
	start, prev := xs[0], xs[0]
	flush := func() {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		if start == prev {
			fmt.Fprintf(&b, "%d", start)
		} else {
			fmt.Fprintf(&b, "%d-%d", start, prev)
		}
	}
	for _, x := range xs[1:] {
		if x == prev+1 {
			prev = x
			continue
		}
		flush()
		start, prev = x, x
	}
	flush()
	return b.String()
}

// Read returns the content of a pseudo-file.
func (p *ProcFS) Read(path string) (string, error) {
	p.ensure()
	if c, ok := p.files[path]; ok {
		return c, nil
	}
	return "", fmt.Errorf("procfs: %s: no such file", path)
}

// Has reports whether the path exists.
func (p *ProcFS) Has(path string) bool {
	p.ensure()
	_, ok := p.files[path]
	return ok
}

// List returns all paths in sorted order.
func (p *ProcFS) List() []string {
	p.ensure()
	return slices.Sorted(maps.Keys(p.files))
}

// NumaMaps renders a /proc/<pid>/numa_maps-style view of an address space:
// one line per VMA with its policy, per-domain residency and page-size
// hints. Tools like numastat parse this surface; McKernel must reimplement
// it, mOS reuses this implementation (section II-D4).
func NumaMaps(as *mem.AddrSpace) string {
	var b strings.Builder
	for _, v := range as.VMAs() {
		fmt.Fprintf(&b, "%012x %s %s", v.Start, policyName(v), v.Kind)
		doms := v.DomainsOf()
		for _, d := range slices.Sorted(maps.Keys(doms)) {
			fmt.Fprintf(&b, " N%d=%d", d, doms[d]/4096)
		}
		fmt.Fprintf(&b, " kernelpagesize_kB=%d\n", largestPageKB(v))
	}
	return b.String()
}

func policyName(v *mem.VMA) string {
	if len(v.Pol.Domains) == 1 {
		return fmt.Sprintf("bind:%d", v.Pol.Domains[0])
	}
	if v.Pol.Demand {
		return "default"
	}
	return fmt.Sprintf("prefer:%d", v.Pol.Domains[0])
}

func largestPageKB(v *mem.VMA) int64 {
	var max int64 = 4096
	for _, b := range v.Backings {
		if int64(b.Page) > max {
			max = int64(b.Page)
		}
	}
	return max / 1024
}
