// Package linuxos models the production Linux environment of the paper's
// baseline: a full-featured kernel (every syscall native), demand-paged
// memory with THP's alignment constraints, tick-driven time sharing, the
// residual noise of a tuned (nohz_full) HPC distribution, and the SNC-4
// NUMA-policy limitation that prevents "prefer MCDRAM, spill to DDR4" from
// being expressed with standard interfaces.
package linuxos

import (
	"fmt"

	"mklite/internal/hw"
	"mklite/internal/kernel"
	"mklite/internal/mem"
	"mklite/internal/noise"
	"mklite/internal/sched"
)

// Config tunes the Linux model.
type Config struct {
	// OSCores is the number of cores reserved for system services (the
	// paper reserves 4).
	OSCores int
	// Tuned selects the nohz_full HPC configuration; false models a
	// stock distribution kernel (used in ablations).
	Tuned bool
	// THP enables transparent huge pages for anonymous memory.
	THP bool
	// PreferredDomain, if >= 0, is the single NUMA domain a numactl -p
	// style policy prefers. Linux's set_mempolicy accepts only one
	// preferred domain: in SNC-4 mode "four such domains exist, but the
	// current Linux implementation allows only one to be listed".
	PreferredDomain int
	// KernelReservation is physical memory claimed by the kernel image
	// and unmovable structures at boot, spread over the DDR domains.
	KernelReservation int64
	// ExtraNoise appends interference sources to the boot profile. The
	// fault layer's daemon-storm mode injects its rogue daemon here: on a
	// full-weight kernel nothing shields the application cores, so the
	// storm lands directly on them (the LWKs only feel it through
	// inflated offload round trips).
	ExtraNoise []noise.Source
	// Sched selects the scheduling policy of application cores; empty
	// means the Linux default (sched.CFS, whose tick cost is part of the
	// boot noise profile). sched.Tickless additionally drops the
	// tick-class noise sources from the profile while boot happens.
	Sched sched.Kind
}

// DefaultConfig is the paper's production Linux setup.
func DefaultConfig() Config {
	return Config{
		OSCores:           4,
		Tuned:             true,
		THP:               true,
		PreferredDomain:   -1,
		KernelReservation: 2 * hw.GiB,
	}
}

// Kernel is the Linux model.
type Kernel struct {
	kernel.Base
	cfg    Config
	procfs *ProcFS
}

// Boot constructs a Linux kernel on the given node.
func Boot(node *hw.NodeSpec, cfg Config) (*Kernel, error) {
	if err := node.Validate(); err != nil {
		return nil, fmt.Errorf("linuxos: %w", err)
	}
	part, err := kernel.DefaultPartition(node, cfg.OSCores)
	if err != nil {
		return nil, fmt.Errorf("linuxos: %w", err)
	}
	phys := mem.NewPhys(node)
	// The kernel's own footprint: spread over DDR domains, in
	// scattered chunks (this is what later fragments McKernel's view).
	ddr := node.DomainsOfKind(hw.DDR4)
	if cfg.KernelReservation > 0 && len(ddr) > 0 {
		per := cfg.KernelReservation / int64(len(ddr))
		for _, d := range ddr {
			if _, err := phys.Fragment(d, per/8, phys.Capacity(d)/8); err != nil {
				return nil, fmt.Errorf("linuxos: reserving kernel memory: %w", err)
			}
		}
	}
	kind := cfg.Sched
	if kind == "" {
		kind = sched.CFS
	}
	pol, err := kernel.NewPolicy(kind, kernel.LinuxCosts())
	if err != nil {
		return nil, fmt.Errorf("linuxos: %w", err)
	}
	prof := noise.LinuxTuned()
	if !cfg.Tuned {
		prof = noise.LinuxUntuned()
	}
	if kind == sched.Tickless {
		// Dyntick: with a single HPC task per core the tick is switched
		// off outright, so the tick-class interference sources vanish.
		prof = prof.WithoutTicks()
	}
	for _, s := range cfg.ExtraNoise {
		prof = prof.WithSource(s)
	}
	k := &Kernel{
		Base: kernel.Base{
			KName:  "linux",
			KType:  kernel.TypeLinux,
			KCaps:  linuxCaps(),
			KTable: kernel.NewTable(kernel.Native),
			KCosts: kernel.LinuxCosts(),
			KNoise: prof,
			KPart:  part,
			KPhys:  phys,
			KSched: pol,
		},
		cfg:    cfg,
		procfs: NewProcFS(node),
	}
	return k, nil
}

// ProcFS returns the full Linux pseudo-filesystem surface.
func (k *Kernel) ProcFS() *ProcFS { return k.procfs }

// linuxCaps: Linux has every capability the suite knows about.
func linuxCaps() kernel.CapSet {
	return kernel.CapSet{}.With(
		kernel.CapFullFork,
		kernel.CapPtraceFull,
		kernel.CapBrkShrinkReleases,
		kernel.CapMovePages,
		kernel.CapExoticCloneFlags,
		kernel.CapLinuxMisc,
		kernel.CapProcSysFull,
		kernel.CapToolsOnLinuxSide,
		kernel.CapTimeSharing,
	)
}

// Config returns the boot configuration.
func (k *Kernel) Config() Config { return k.cfg }

// MapPolicy implements kernel.Kernel. Anonymous memory is demand paged
// onto the DDR domains (first-touch local); a preferred domain, when set,
// is consulted first — but it is a single domain, which is exactly why
// SNC-4 MCDRAM spill cannot be expressed (section III-B: "We chose to use
// DDR4 RAM only for CCS-QCD when running on Linux").
func (k *Kernel) MapPolicy(kind mem.VMAKind) mem.Policy {
	node := k.Partition().Node
	domains := node.DomainsOfKind(hw.DDR4)
	if k.cfg.PreferredDomain >= 0 {
		domains = append([]int{k.cfg.PreferredDomain}, domains...)
	}
	maxPage := hw.Page4K
	if k.cfg.THP && kind != mem.VMADevice {
		maxPage = hw.Page2M
	}
	return mem.Policy{
		Domains: domains,
		MaxPage: maxPage,
		Demand:  true,
	}
}

// NewHeap implements kernel.Kernel with the demand-paged Linux heap.
func (k *Kernel) NewHeap(as *mem.AddrSpace, limit int64, domains []int) (mem.Heap, error) {
	if domains == nil {
		domains = k.Partition().Node.DomainsOfKind(hw.DDR4)
	}
	return mem.NewLinuxHeap(as, limit, domains, k.cfg.THP)
}

var _ kernel.Kernel = (*Kernel)(nil)
