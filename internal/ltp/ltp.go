// Package ltp models the Linux Test Project conformance run of section
// III-D: a catalogue of 3,328 system-call test cases executed against each
// kernel's dispatch surface. The paper's result — "Concentrating only on
// system calls, McKernel passes all but 32 of them. For mOS the numbers are
// more bleak: 111 tests out of 3,328 fail" — emerges from the kernels'
// dispositions and capabilities:
//
//   - eleven McKernel failures test move_pages() combinations (work in
//     progress), one an unusual clone() flag combination, one the
//     brk-shrink page-fault behaviour the HPC heap deliberately breaks,
//     and nineteen exercise Linux facilities McKernel intentionally omits;
//   - most mOS failures cascade from the incomplete fork() ("many failures
//     before the tests of the targeted system calls even begin"), plus
//     four of the five ptrace variants, the brk-shrink test and the clone
//     flag test.
package ltp

import (
	"fmt"
	"maps"
	"slices"
	"sort"

	"mklite/internal/kernel"
)

// TotalCases is the catalogue size the paper reports.
const TotalCases = 3328

// Requirement is a semantic precondition of a test case beyond the target
// syscall being dispatchable.
type Requirement int

const (
	// ReqForkSetup: the case forks a child to set up the experiment.
	ReqForkSetup Requirement = iota
	// ReqPtraceVariant: the case exercises a non-trivial ptrace request.
	ReqPtraceVariant
	// ReqBrkShrinkReleases: the case expects a fault after shrinking
	// the heap.
	ReqBrkShrinkReleases
	// ReqExoticCloneFlags: the case checks error behaviour of "an
	// unusual clone() flag combination, which actual applications never
	// seem to use".
	ReqExoticCloneFlags
)

// Case is one conformance test.
type Case struct {
	ID       string
	Sysno    kernel.Sysno
	Variant  int
	Requires []Requirement
}

// forkSetupPlan spreads the fork-dependent setup across the process/file
// syscalls whose LTP tests genuinely fork; the counts sum to 105.
var forkSetupPlan = []struct {
	sysno kernel.Sysno
	tests int
}{
	{kernel.SysFork, 12},
	{kernel.SysVfork, 6},
	{kernel.SysWait4, 9},
	{kernel.SysWaitid, 6},
	{kernel.SysKill, 10},
	{kernel.SysTgkill, 4},
	{kernel.SysExecve, 10},
	{kernel.SysPipe, 8},
	{kernel.SysPipe2, 4},
	{kernel.SysDup, 5},
	{kernel.SysDup2, 5},
	{kernel.SysSetpgid, 4},
	{kernel.SysGetpgid, 2},
	{kernel.SysSetsid, 3},
	{kernel.SysRtSigaction, 6},
	{kernel.SysRtSigprocmask, 4},
	{kernel.SysPause, 2},
	{kernel.SysShmat, 3},
	{kernel.SysShmdt, 2},
}

// specialCounts fixes the per-syscall case counts the paper's numbers pin
// down exactly.
var specialCounts = map[kernel.Sysno]int{
	kernel.SysMovePages:     11, // "Eleven of the 32 failing experiments"
	kernel.SysPtrace:        5,  // "four of the five ptrace experiments fail"
	kernel.SysPerfEventOpen: 4,
	kernel.SysUserfaultfd:   3,
	kernel.SysSeccomp:       4,
	kernel.SysMemfdCreate:   3,
	kernel.SysMigratePages:  3,
	kernel.SysPersonality:   2,
}

// Catalogue builds the deterministic 3,328-case suite.
func Catalogue() []Case {
	forkPlan := map[kernel.Sysno]int{}
	for _, e := range forkSetupPlan {
		forkPlan[e.sysno] += e.tests
	}

	// Per-syscall counts: specials are pinned; fork-heavy syscalls get
	// at least their fork quota plus a margin; everything else shares
	// the remainder evenly.
	// Iterate sorted keys so the schedule derivation never depends on
	// map order, keeping the emitted catalogue stable across runs.
	counts := map[kernel.Sysno]int{}
	assigned := 0
	for _, s := range slices.Sorted(maps.Keys(specialCounts)) {
		counts[s] = specialCounts[s]
		assigned += specialCounts[s]
	}
	for _, s := range slices.Sorted(maps.Keys(forkPlan)) {
		counts[s] = forkPlan[s] + 2 // the quota plus two fork-free variants
		assigned += counts[s]
	}
	var rest []kernel.Sysno
	for _, s := range kernel.All() {
		if _, done := counts[s]; !done {
			rest = append(rest, s)
		}
	}
	remaining := TotalCases - assigned
	per := remaining / len(rest)
	extra := remaining - per*len(rest)
	for i, s := range rest {
		counts[s] = per
		if i < extra {
			counts[s]++
		}
	}

	var cases []Case
	for _, s := range kernel.All() {
		n := counts[s]
		forks := forkPlan[s]
		for v := 0; v < n; v++ {
			c := Case{
				ID:      fmt.Sprintf("%s%02d", s, v+1),
				Sysno:   s,
				Variant: v,
			}
			// The first `forks` variants of fork-heavy syscalls
			// fork during setup.
			if v < forks {
				c.Requires = append(c.Requires, ReqForkSetup)
			}
			// ptrace variants beyond the first exercise the
			// richer request surface.
			if s == kernel.SysPtrace && v > 0 {
				c.Requires = append(c.Requires, ReqPtraceVariant)
			}
			cases = append(cases, c)
		}
	}
	// The two single-variant semantic probes.
	cases = append(cases,
		Case{ID: "brk-shrink-fault", Sysno: kernel.SysBrk, Variant: 99,
			Requires: []Requirement{ReqBrkShrinkReleases}},
		Case{ID: "clone-exotic-flags", Sysno: kernel.SysClone, Variant: 99,
			Requires: []Requirement{ReqExoticCloneFlags}},
	)
	// Keep the total pinned: the two probes displace two filler cases.
	return trimTo(cases, TotalCases)
}

// trimTo removes filler cases (highest-variant, requirement-free, from the
// evenly filled syscalls) until the catalogue has exactly n entries.
func trimTo(cases []Case, n int) []Case {
	for len(cases) > n {
		idx := -1
		for i := len(cases) - 1; i >= 0; i-- {
			c := cases[i]
			if len(c.Requires) == 0 && specialCounts[c.Sysno] == 0 && c.Variant > 0 {
				idx = i
				break
			}
		}
		if idx < 0 {
			break
		}
		cases = append(cases[:idx], cases[idx+1:]...)
	}
	return cases
}

// FailureReason classifies why a case failed.
type FailureReason string

const (
	ReasonUnsupported FailureReason = "syscall-unsupported"
	ReasonForkSetup   FailureReason = "fork-setup-incomplete"
	ReasonPtrace      FailureReason = "ptrace-variant"
	ReasonBrkShrink   FailureReason = "brk-shrink-retains-memory"
	ReasonCloneFlags  FailureReason = "exotic-clone-flags"
)

// Report is a suite run's outcome against one kernel.
type Report struct {
	Kernel  string
	Total   int
	Passed  int
	Failed  int
	ByCause map[FailureReason]int
	// FailedCases lists the failing case IDs, sorted.
	FailedCases []string
}

// Evaluate runs one case against a kernel, returning the failure reason or
// "" on pass.
func Evaluate(k kernel.Kernel, c Case) FailureReason {
	if k.Table().Get(c.Sysno) == kernel.Unsupported {
		return ReasonUnsupported
	}
	for _, r := range c.Requires {
		switch r {
		case ReqForkSetup:
			if !k.Caps().Has(kernel.CapFullFork) {
				return ReasonForkSetup
			}
		case ReqPtraceVariant:
			if !k.Caps().Has(kernel.CapPtraceFull) {
				return ReasonPtrace
			}
		case ReqBrkShrinkReleases:
			if !k.Caps().Has(kernel.CapBrkShrinkReleases) {
				return ReasonBrkShrink
			}
		case ReqExoticCloneFlags:
			if !k.Caps().Has(kernel.CapExoticCloneFlags) {
				return ReasonCloneFlags
			}
		}
	}
	return ""
}

// Run executes the whole catalogue against a kernel.
func Run(k kernel.Kernel) Report {
	rep := Report{
		Kernel:  k.Name(),
		ByCause: map[FailureReason]int{},
	}
	for _, c := range Catalogue() {
		rep.Total++
		if reason := Evaluate(k, c); reason != "" {
			rep.Failed++
			rep.ByCause[reason]++
			rep.FailedCases = append(rep.FailedCases, c.ID)
		} else {
			rep.Passed++
		}
	}
	sort.Strings(rep.FailedCases)
	return rep
}
