package ltp

import (
	"strings"
	"testing"

	"mklite/internal/hw"
	"mklite/internal/kernel"
	"mklite/internal/linuxos"
	"mklite/internal/mckernel"
	"mklite/internal/mos"
)

func kernels(t *testing.T) (kernel.Kernel, kernel.Kernel, kernel.Kernel) {
	t.Helper()
	lin, err := linuxos.Boot(hw.KNL7250SNC4(), linuxos.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	mck, _, err := mckernel.Deploy(hw.KNL7250SNC4(), mckernel.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	mosk, err := mos.Boot(hw.KNL7250SNC4(), mos.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return lin, mck, mosk
}

func TestCatalogueSize(t *testing.T) {
	if got := len(Catalogue()); got != TotalCases {
		t.Fatalf("catalogue has %d cases, want %d", got, TotalCases)
	}
}

func TestCatalogueDeterministic(t *testing.T) {
	a, b := Catalogue(), Catalogue()
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("catalogue not deterministic at %d", i)
		}
	}
}

func TestCatalogueUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Catalogue() {
		if seen[c.ID] {
			t.Fatalf("duplicate case id %q", c.ID)
		}
		seen[c.ID] = true
	}
}

func TestCatalogueCoversInventory(t *testing.T) {
	bySys := map[kernel.Sysno]int{}
	for _, c := range Catalogue() {
		bySys[c.Sysno]++
	}
	for _, s := range kernel.All() {
		if bySys[s] == 0 {
			t.Fatalf("syscall %v has no test cases", s)
		}
	}
	if bySys[kernel.SysMovePages] != 11 {
		t.Fatalf("move_pages has %d cases, want 11", bySys[kernel.SysMovePages])
	}
	if bySys[kernel.SysPtrace] != 5 {
		t.Fatalf("ptrace has %d cases, want 5", bySys[kernel.SysPtrace])
	}
}

func TestLinuxPassesEverything(t *testing.T) {
	lin, _, _ := kernels(t)
	rep := Run(lin)
	if rep.Failed != 0 {
		t.Fatalf("Linux failed %d cases: %v", rep.Failed, rep.FailedCases[:min(10, len(rep.FailedCases))])
	}
	if rep.Total != TotalCases || rep.Passed != TotalCases {
		t.Fatalf("totals: %+v", rep)
	}
}

func TestMcKernelFailsExactly32(t *testing.T) {
	// "McKernel passes all but 32 of them."
	_, mck, _ := kernels(t)
	rep := Run(mck)
	if rep.Failed != 32 {
		t.Fatalf("McKernel failed %d, want 32 (%v)", rep.Failed, rep.ByCause)
	}
	// "Eleven of the 32 failing experiments attempt to test various
	// combinations of the move_pages() system call."
	movePages := 0
	for _, id := range rep.FailedCases {
		if strings.HasPrefix(id, "move_pages") {
			movePages++
		}
	}
	if movePages != 11 {
		t.Fatalf("%d move_pages failures, want 11", movePages)
	}
	if rep.ByCause[ReasonBrkShrink] != 1 || rep.ByCause[ReasonCloneFlags] != 1 {
		t.Fatalf("semantic probes: %v", rep.ByCause)
	}
	if rep.ByCause[ReasonForkSetup] != 0 {
		t.Fatal("McKernel supports fork; no cascades expected")
	}
}

func TestMOSFailsExactly111(t *testing.T) {
	// "For mOS the numbers are more bleak: 111 tests out of 3,328 fail."
	_, _, mosk := kernels(t)
	rep := Run(mosk)
	if rep.Failed != 111 {
		t.Fatalf("mOS failed %d, want 111 (%v)", rep.Failed, rep.ByCause)
	}
	// "Many of the LTP tests rely on fork() to set up the experiment."
	if rep.ByCause[ReasonForkSetup] != 105 {
		t.Fatalf("fork cascades = %d, want 105", rep.ByCause[ReasonForkSetup])
	}
	// "four of the five ptrace experiments fail."
	if rep.ByCause[ReasonPtrace] != 4 {
		t.Fatalf("ptrace failures = %d, want 4", rep.ByCause[ReasonPtrace])
	}
	if rep.ByCause[ReasonBrkShrink] != 1 || rep.ByCause[ReasonCloneFlags] != 1 {
		t.Fatalf("semantic probes: %v", rep.ByCause)
	}
	// mOS reaches everything else through Linux: nothing unsupported.
	if rep.ByCause[ReasonUnsupported] != 0 {
		t.Fatalf("mOS unsupported failures: %d", rep.ByCause[ReasonUnsupported])
	}
}

func TestEvaluateSingleCases(t *testing.T) {
	lin, mck, mosk := kernels(t)
	brkShrink := Case{ID: "x", Sysno: kernel.SysBrk, Requires: []Requirement{ReqBrkShrinkReleases}}
	if Evaluate(lin, brkShrink) != "" {
		t.Fatal("Linux should pass brk shrink")
	}
	if Evaluate(mck, brkShrink) != ReasonBrkShrink {
		t.Fatal("McKernel should fail brk shrink")
	}
	if Evaluate(mosk, brkShrink) != ReasonBrkShrink {
		t.Fatal("mOS should fail brk shrink")
	}
	moveCase := Case{ID: "y", Sysno: kernel.SysMovePages}
	if Evaluate(mck, moveCase) != ReasonUnsupported {
		t.Fatal("McKernel move_pages")
	}
	if Evaluate(mosk, moveCase) != "" {
		t.Fatal("mOS move_pages should pass via Linux")
	}
}

func TestReportFieldsConsistent(t *testing.T) {
	_, mck, _ := kernels(t)
	rep := Run(mck)
	if rep.Passed+rep.Failed != rep.Total {
		t.Fatal("report arithmetic")
	}
	if len(rep.FailedCases) != rep.Failed {
		t.Fatal("failed case list length")
	}
	sum := 0
	for _, n := range rep.ByCause {
		sum += n
	}
	if sum != rep.Failed {
		t.Fatal("cause counts do not sum to failures")
	}
	if rep.Kernel != "mckernel" {
		t.Fatalf("kernel name %q", rep.Kernel)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestExecutableCasesExistInCatalogue(t *testing.T) {
	ids := map[string]bool{}
	for _, c := range Catalogue() {
		ids[c.ID] = true
	}
	for _, id := range ExecutableCaseIDs() {
		if !ids[id] {
			t.Fatalf("executable case %q not in the catalogue", id)
		}
	}
}

func TestExecutedCasesAgreeWithEvaluate(t *testing.T) {
	// The declarative capability check and the mechanically executed
	// outcome must agree for every executable case on every kernel —
	// this pins the capability flags to the real implementations.
	lin, mck, mosk := kernels(t)
	byID := map[string]Case{}
	for _, c := range Catalogue() {
		byID[c.ID] = c
	}
	for _, k := range []kernel.Kernel{lin, mck, mosk} {
		for _, id := range ExecutableCaseIDs() {
			c, ok := byID[id]
			if !ok {
				t.Fatalf("case %q missing", id)
			}
			declPass := Evaluate(k, c) == ""
			out, ok := RunExecutable(id, k)
			if !ok {
				t.Fatalf("case %q not executable", id)
			}
			if out.Pass != declPass {
				t.Fatalf("%s on %s: executed=%v (%s) but capability says %v",
					id, k.Name(), out.Pass, out.Detail, declPass)
			}
		}
	}
}

func TestRunExecutableUnknownCase(t *testing.T) {
	lin, _, _ := kernels(t)
	if _, ok := RunExecutable("not-a-case", lin); ok {
		t.Fatal("unknown case executed")
	}
}

func TestBrkShrinkExecution(t *testing.T) {
	lin, mck, _ := kernels(t)
	out, _ := RunExecutable("brk-shrink-fault", lin)
	if !out.Pass {
		t.Fatalf("Linux: %s", out.Detail)
	}
	out, _ = RunExecutable("brk-shrink-fault", mck)
	if out.Pass {
		t.Fatal("McKernel HPC heap should retain memory")
	}
}
