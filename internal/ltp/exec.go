package ltp

import (
	"maps"
	"slices"

	"mklite/internal/hw"
	"mklite/internal/kernel"
	"mklite/internal/mem"
)

// This file gives a subset of the catalogue *executable* semantics: instead
// of consulting capability flags, these cases drive a real kernel.Process
// through the syscall layer and check observable behaviour — the way LTP
// itself works. The capability-based Evaluate and the executed outcome must
// agree (enforced by TestExecutedCasesAgreeWithEvaluate), which pins the
// declarative kernel models to their mechanical implementations.

// ExecOutcome is an executed case's result.
type ExecOutcome struct {
	Pass   bool
	Detail string
}

// ExecFunc runs a conformance experiment against a live process.
type ExecFunc func(p *kernel.Process) ExecOutcome

// Executable returns the execution function for a case id, if the case has
// executable semantics.
func Executable(id string) (ExecFunc, bool) {
	f, ok := execCases[id]
	return f, ok
}

// ExecutableCaseIDs lists the cases with executable semantics, sorted.
func ExecutableCaseIDs() []string {
	return slices.Sorted(maps.Keys(execCases))
}

// RunExecutable executes one case id against a fresh process on the given
// kernel.
func RunExecutable(id string, k kernel.Kernel) (ExecOutcome, bool) {
	f, ok := execCases[id]
	if !ok {
		return ExecOutcome{}, false
	}
	p, err := kernel.NewProcess(k, 4242, hw.GiB)
	if err != nil {
		return ExecOutcome{Pass: false, Detail: "process setup: " + err.Error()}, true
	}
	defer p.Exit()
	return f(p), true
}

var execCases = map[string]ExecFunc{
	// The brk-shrink probe of section III-D: grow the heap, touch it,
	// shrink it, and expect the released range to fault (i.e. to be
	// re-populated) when touched again. LWK heaps retain the memory, so
	// "tests that expect a page fault fail".
	"brk-shrink-fault": func(p *kernel.Process) ExecOutcome {
		if _, err := p.Sbrk(8 * hw.MiB); err != nil {
			return ExecOutcome{Detail: "grow failed: " + err.Error()}
		}
		p.Heap.TouchUpTo(8 * hw.MiB)
		if _, err := p.Sbrk(-8 * hw.MiB); err != nil {
			return ExecOutcome{Detail: "shrink failed: " + err.Error()}
		}
		if _, err := p.Sbrk(8 * hw.MiB); err != nil {
			return ExecOutcome{Detail: "regrow failed: " + err.Error()}
		}
		w := p.Heap.TouchUpTo(8 * hw.MiB)
		if w.Faults == 0 {
			return ExecOutcome{Detail: "no fault after shrink+regrow: heap retained physical memory"}
		}
		return ExecOutcome{Pass: true, Detail: "released range re-faulted"}
	},

	// move_pages: map memory in DDR4, migrate it to MCDRAM, verify the
	// residency moved.
	"move_pages01": func(p *kernel.Process) ExecOutcome {
		v, err := p.Mmap(8*hw.MiB, mem.VMAAnon)
		if err != nil {
			return ExecOutcome{Detail: "mmap: " + err.Error()}
		}
		node := p.Kern.Partition().Node
		targets := node.DomainsOfKind(hw.DDR4)
		if _, err := p.MovePages(v, targets); err != nil {
			return ExecOutcome{Detail: "move_pages: " + err.Error()}
		}
		for d := range v.DomainsOf() {
			if dom, derr := node.Domain(d); derr == nil && dom.Mem.Kind != hw.DDR4 {
				return ExecOutcome{Detail: "pages not migrated to DDR4"}
			}
		}
		return ExecOutcome{Pass: true, Detail: "pages migrated"}
	},

	// mprotect: an interior protection change must split the area and
	// leave the protection visible.
	"mprotect01": func(p *kernel.Process) ExecOutcome {
		v, err := p.Mmap(4*hw.MiB, mem.VMAAnon)
		if err != nil {
			return ExecOutcome{Detail: "mmap: " + err.Error()}
		}
		mid, err := p.Mprotect(v, 1*hw.MiB, 1*hw.MiB, mem.ProtRead)
		if err != nil {
			return ExecOutcome{Detail: "mprotect: " + err.Error()}
		}
		if mid.Prot != mem.ProtRead {
			return ExecOutcome{Detail: "protection not applied"}
		}
		return ExecOutcome{Pass: true, Detail: "area split and protected"}
	},
}
