package cluster

import (
	"testing"

	"mklite/internal/apps"
	"mklite/internal/fabric"
	"mklite/internal/kernel"
	"mklite/internal/mckernel"
	"mklite/internal/mos"
	"mklite/internal/sim"
)

func run(t *testing.T, j Job) Result {
	t.Helper()
	r, err := Run(j)
	if err != nil {
		t.Fatalf("Run(%s on %v at %d): %v", j.App.Name, j.Kernel, j.Nodes, err)
	}
	return r
}

func fomOf(t *testing.T, app *apps.Spec, kt kernel.Type, nodes int) float64 {
	return run(t, Job{App: app, Kernel: kt, Nodes: nodes, Seed: 7}).FOM
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Job{}); err == nil {
		t.Fatal("nil app accepted")
	}
	if _, err := Run(Job{App: apps.MILC(), Nodes: 0}); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := Run(Job{App: apps.MILC(), Nodes: 1, Kernel: kernel.Type(99)}); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	j := Job{App: apps.MILC(), Kernel: kernel.TypeLinux, Nodes: 32, Seed: 11}
	a := run(t, j)
	b := run(t, j)
	if a.FOM != b.FOM || a.Elapsed != b.Elapsed {
		t.Fatalf("same seed, different results: %v vs %v", a.FOM, b.FOM)
	}
	j.Seed = 12
	c := run(t, j)
	if c.Elapsed == a.Elapsed {
		t.Fatal("different seed produced identical elapsed time")
	}
}

func TestResultMetadata(t *testing.T) {
	r := run(t, Job{App: apps.HPCG(), Kernel: kernel.TypeMOS, Nodes: 4, Seed: 1})
	if r.App != "hpcg" || r.Kernel != "mOS" || r.Nodes != 4 {
		t.Fatalf("metadata: %+v", r)
	}
	if r.Ranks != 4*16 {
		t.Fatalf("ranks = %d", r.Ranks)
	}
	if r.Unit != "Gflops" {
		t.Fatalf("unit = %q", r.Unit)
	}
	if r.FOM <= 0 || r.Elapsed <= 0 {
		t.Fatal("non-positive outcome")
	}
	if got, want := r.Breakdown.Total()+r.Elapsed-r.Elapsed, r.Breakdown.Total(); got != want {
		t.Fatal("breakdown total")
	}
}

func TestBreakdownSumsToElapsed(t *testing.T) {
	r := run(t, Job{App: apps.Lulesh(), Kernel: kernel.TypeLinux, Nodes: 8, Seed: 3})
	if r.Breakdown.Total() != r.Elapsed {
		t.Fatalf("breakdown %v != elapsed %v", r.Breakdown.Total(), r.Elapsed)
	}
}

func TestLWKsBeatLinuxOnNoiseSensitiveApps(t *testing.T) {
	for _, app := range []*apps.Spec{apps.MILC(), apps.MiniFE()} {
		nodes := app.NodeCounts[len(app.NodeCounts)-1]
		lin := fomOf(t, app, kernel.TypeLinux, nodes)
		mck := fomOf(t, app, kernel.TypeMcKernel, nodes)
		mosv := fomOf(t, app, kernel.TypeMOS, nodes)
		if mck <= lin || mosv <= lin {
			t.Fatalf("%s at %d nodes: LWKs (%v, %v) not above Linux (%v)",
				app.Name, nodes, mck, mosv, lin)
		}
	}
}

func TestMiniFECliffGrowsWithScale(t *testing.T) {
	app := apps.MiniFE()
	ratioAt := func(nodes int) float64 {
		return fomOf(t, app, kernel.TypeMcKernel, nodes) / fomOf(t, app, kernel.TypeLinux, nodes)
	}
	small, mid, big := ratioAt(16), ratioAt(256), ratioAt(1024)
	if !(small < mid && mid < big) {
		t.Fatalf("cliff not growing: %v %v %v", small, mid, big)
	}
	// "almost seven times faster on 1,024 nodes" — accept a generous
	// band around the paper's factor.
	if big < 4 || big > 12 {
		t.Fatalf("1024-node miniFE advantage %v outside plausible band", big)
	}
}

func TestLAMMPSLinuxWinsAtScale(t *testing.T) {
	app := apps.LAMMPS()
	// Single node: LWKs at least on par.
	if fomOf(t, app, kernel.TypeMcKernel, 1) < fomOf(t, app, kernel.TypeLinux, 1)*0.99 {
		t.Fatal("single-node LAMMPS should not favour Linux")
	}
	// At scale the device-syscall offloads cost the LWKs the lead.
	lin := fomOf(t, app, kernel.TypeLinux, 1024)
	mck := fomOf(t, app, kernel.TypeMcKernel, 1024)
	if mck >= lin {
		t.Fatalf("LAMMPS at scale: McKernel %v should trail Linux %v", mck, lin)
	}
	// On a user-space fabric the anomaly disappears.
	j := Job{App: app, Kernel: kernel.TypeMcKernel, Nodes: 1024, Seed: 7, Fabric: fabric.UserSpaceFabric()}
	jl := Job{App: app, Kernel: kernel.TypeLinux, Nodes: 1024, Seed: 7, Fabric: fabric.UserSpaceFabric()}
	if run(t, j).FOM < run(t, jl).FOM {
		t.Fatal("user-space fabric should restore the LWK lead")
	}
}

func TestCCSQCDMemoryHierarchy(t *testing.T) {
	app := apps.CCSQCD()
	lin := run(t, Job{App: app, Kernel: kernel.TypeLinux, Nodes: 64, Seed: 7})
	mck := run(t, Job{App: app, Kernel: kernel.TypeMcKernel, Nodes: 64, Seed: 7})
	mosr := run(t, Job{App: app, Kernel: kernel.TypeMOS, Nodes: 64, Seed: 7})

	// Ordering of Figure 5a: McKernel > mOS > Linux.
	if !(mck.FOM > mosr.FOM && mosr.FOM > lin.FOM) {
		t.Fatalf("ordering: mck=%v mos=%v linux=%v", mck.FOM, mosr.FOM, lin.FOM)
	}
	// McKernel's ranks fall back to demand paging (the working set
	// exceeds the local MCDRAM domain); mOS divides upfront.
	if mck.DemandRanks != app.RanksPerNode {
		t.Fatalf("McKernel demand ranks = %d", mck.DemandRanks)
	}
	if mosr.DemandRanks != 0 {
		t.Fatalf("mOS demand ranks = %d", mosr.DemandRanks)
	}
	// Linux runs from DDR4: no MCDRAM residency. LWKs fill MCDRAM.
	if lin.MCDRAMBytes != 0 {
		t.Fatalf("Linux used %d bytes of MCDRAM in SNC-4", lin.MCDRAMBytes)
	}
	if mck.MCDRAMBytes == 0 || mosr.MCDRAMBytes == 0 {
		t.Fatal("LWKs did not use MCDRAM")
	}
}

func TestForceDDROnly(t *testing.T) {
	app := apps.Lulesh()
	r := run(t, Job{App: app, Kernel: kernel.TypeMcKernel, Nodes: 1, Seed: 7, ForceDDROnly: true})
	if r.MCDRAMBytes != 0 {
		t.Fatalf("ForceDDROnly left %d bytes in MCDRAM", r.MCDRAMBytes)
	}
	spill := run(t, Job{App: app, Kernel: kernel.TypeMcKernel, Nodes: 1, Seed: 7})
	if r.FOM >= spill.FOM {
		t.Fatal("DDR-only run should be slower than MCDRAM run")
	}
}

func TestLuleshHeapDominatesLinuxDeficit(t *testing.T) {
	lin := run(t, Job{App: apps.Lulesh(), Kernel: kernel.TypeLinux, Nodes: 8, Seed: 7})
	mck := run(t, Job{App: apps.Lulesh(), Kernel: kernel.TypeMcKernel, Nodes: 8, Seed: 7})
	if lin.Breakdown.Heap <= 10*mck.Breakdown.Heap {
		t.Fatalf("Linux heap time %v should dwarf LWK %v",
			lin.Breakdown.Heap, mck.Breakdown.Heap)
	}
	// The heap trace statistics survive into the result.
	if lin.HeapStats.Grows == 0 || lin.HeapStats.Shrinks == 0 || lin.HeapStats.Queries == 0 {
		t.Fatalf("heap stats empty: %+v", lin.HeapStats)
	}
}

func TestMcKernelProxyOptions(t *testing.T) {
	app := apps.AMG2013()
	plain := run(t, Job{App: app, Kernel: kernel.TypeMcKernel, Nodes: 16, Seed: 7})
	opts := mckernel.DefaultOptions()
	opts.MpolShmPremap = true
	opts.DisableSchedYield = true
	tuned := run(t, Job{App: app, Kernel: kernel.TypeMcKernel, Nodes: 16, Seed: 7, McK: &opts})
	if tuned.FOM <= plain.FOM {
		t.Fatalf("proxy options did not help: %v vs %v", tuned.FOM, plain.FOM)
	}
	gain := tuned.FOM/plain.FOM - 1
	// Paper: +9% on AMG 2013 at 16 nodes; accept a broad band.
	if gain < 0.01 || gain > 0.30 {
		t.Fatalf("AMG proxy-option gain %v outside band", gain)
	}
}

func TestMOSHeapToggleMatters(t *testing.T) {
	cfg := mos.DefaultConfig()
	cfg.HeapManagement = false
	off := run(t, Job{App: apps.Lulesh(), Kernel: kernel.TypeMOS, Nodes: 1, Seed: 7, MOS: &cfg, ForceDDROnly: true})
	on := run(t, Job{App: apps.Lulesh(), Kernel: kernel.TypeMOS, Nodes: 1, Seed: 7, ForceDDROnly: true})
	if on.FOM <= off.FOM {
		t.Fatalf("heap management off (%v) not slower than on (%v)", off.FOM, on.FOM)
	}
}

func TestWeakScalingRoughlyFlatPerNode(t *testing.T) {
	// A weak-scaled app's per-node rate on a quiet LWK should stay
	// within ~25% from 1 to 512 nodes (communication grows slowly).
	app := apps.GeoFEM()
	f1 := fomOf(t, app, kernel.TypeMcKernel, 1) / 1
	f512 := fomOf(t, app, kernel.TypeMcKernel, 512) / 512
	ratio := f512 / f1
	if ratio < 0.75 || ratio > 1.05 {
		t.Fatalf("weak scaling per-node ratio %v", ratio)
	}
}

func TestAllAppsRunOnAllKernels(t *testing.T) {
	for _, app := range apps.All() {
		nodes := app.NodeCounts[0]
		for _, kt := range []kernel.Type{kernel.TypeLinux, kernel.TypeMcKernel, kernel.TypeMOS} {
			r := run(t, Job{App: app, Kernel: kt, Nodes: nodes, Seed: 1})
			if r.FOM <= 0 {
				t.Fatalf("%s on %v: FOM %v", app.Name, kt, r.FOM)
			}
		}
	}
}

func TestTraceRecordsSteps(t *testing.T) {
	app := apps.MILC()
	r := run(t, Job{App: app, Kernel: kernel.TypeLinux, Nodes: 8, Seed: 3, Trace: true})
	if len(r.Steps) != app.Timesteps {
		t.Fatalf("%d step records, want %d", len(r.Steps), app.Timesteps)
	}
	var total sim.Duration
	for _, s := range r.Steps {
		if s.Total() <= 0 {
			t.Fatal("empty step record")
		}
		total += s.Total()
	}
	if total+r.Breakdown.SetupShm != r.Elapsed {
		t.Fatalf("step totals %v + shm %v != elapsed %v", total, r.Breakdown.SetupShm, r.Elapsed)
	}
	// No trace by default.
	plain := run(t, Job{App: app, Kernel: kernel.TypeLinux, Nodes: 8, Seed: 3})
	if plain.Steps != nil {
		t.Fatal("untraced run recorded steps")
	}
}

// TestHeapOpsPerStepCalledOnce is the regression test for the hot-loop bug:
// HeapOpsPerStep depends only on the node count, yet it used to be invoked
// inside the per-rank loop of every timestep (ranks x timesteps calls
// rebuilding an identical trace slice). The counting stub pins the contract
// to exactly one lookup per run.
func TestHeapOpsPerStepCalledOnce(t *testing.T) {
	app := *apps.Lulesh()
	calls := 0
	inner := app.HeapOpsPerStep
	app.HeapOpsPerStep = func(nodes int) []int64 {
		calls++
		return inner(nodes)
	}
	r := run(t, Job{App: &app, Kernel: kernel.TypeLinux, Nodes: 2, Seed: 5})
	if calls != 1 {
		t.Fatalf("HeapOpsPerStep called %d times over %d timesteps x %d ranks, want 1",
			calls, app.Timesteps, r.Ranks)
	}
	if r.Breakdown.Heap <= 0 {
		t.Fatal("hoisted trace produced no heap time")
	}
}

// TestHoistedTraceMatchesReference: the hoist must not change results — a
// spec whose trace function is pure gives identical output either way, so
// compare against the unmodified spec on the same seed.
func TestHoistedTraceMatchesReference(t *testing.T) {
	a := run(t, Job{App: apps.Lulesh(), Kernel: kernel.TypeMOS, Nodes: 4, Seed: 9})
	b := run(t, Job{App: apps.Lulesh(), Kernel: kernel.TypeMOS, Nodes: 4, Seed: 9})
	if a.Elapsed != b.Elapsed || a.Breakdown != b.Breakdown {
		t.Fatalf("hoisted trace not reproducible: %+v vs %+v", a.Breakdown, b.Breakdown)
	}
}

// TestHaloDetourComposesWithCollectives is the regression test for the
// dropped-halo bug: on a step with both a collective and a halo exchange,
// the old switch sampled only the collective's job-wide detour and silently
// discarded the halo neighbourhood's. With the fix, adding a halo exchange
// to an app whose collective fires every step must strictly increase the
// absorbed noise on the same seed (before the fix the draws were identical,
// so the noise breakdown did not move at all).
func TestHaloDetourComposesWithCollectives(t *testing.T) {
	mk := func(withHalo bool) *apps.Spec {
		app := *apps.MiniFE() // collectives run every step (CG solver)
		if !withHalo {
			app.Halo = nil
		} else if app.Halo == nil {
			t.Fatal("fixture app lost its halo exchange")
		}
		return &app
	}
	with := run(t, Job{App: mk(true), Kernel: kernel.TypeLinux, Nodes: 32, Seed: 21})
	without := run(t, Job{App: mk(false), Kernel: kernel.TypeLinux, Nodes: 32, Seed: 21})
	if with.Breakdown.Noise <= without.Breakdown.Noise {
		t.Fatalf("halo detour still dropped on collective steps: noise with halo %v <= without %v",
			with.Breakdown.Noise, without.Breakdown.Noise)
	}
}
