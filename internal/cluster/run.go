package cluster

import (
	"context"
	"fmt"

	"mklite/internal/apps"
	"mklite/internal/fault"
	"mklite/internal/hw"
	"mklite/internal/kernel"
	"mklite/internal/mem"
	"mklite/internal/mpi"
	"mklite/internal/noise"
	"mklite/internal/sched"
	"mklite/internal/sim"
	"mklite/internal/trace"
)

// haloNeighborhood is the synchronisation scope of a halo exchange: a rank
// waits only for its stencil neighbours, so noise maxima are taken over a
// small neighbourhood instead of the whole job — the reason halo-bound
// applications (LAMMPS) show no Linux cliff.
const haloNeighborhood = 27

// laneMPI is the trace tid carrying per-collective skew instants, kept off
// the phase-span lane (tid 0) so each lane's timestamps stay monotone.
const laneMPI = 1

// stepParts is the single composition point for one timestep's duration.
// The hot loop's elapsed-time accumulation and every observer — the
// Breakdown, the StepRecord trace and the span emitter — all derive from
// this one struct, so trace output can never drift from simulated time.
type stepParts struct {
	compute sim.Duration
	memory  sim.Duration
	heap    sim.Duration
	syscall sim.Duration
	sched   sim.Duration
	comm    sim.Duration
	noise   sim.Duration
}

// total is the step's full duration — the only quantity the hot loop adds
// to elapsed.
func (p stepParts) total() sim.Duration {
	return p.compute + p.memory + p.heap + p.syscall + p.sched + p.comm + p.noise
}

// record converts the composition into the public per-step attribution.
func (p stepParts) record() StepRecord {
	return StepRecord{Compute: p.compute, Memory: p.memory, Heap: p.heap,
		Syscall: p.syscall, Sched: p.sched, Comm: p.comm, Noise: p.noise}
}

// addTo accumulates the composition into the run-level breakdown.
func (p stepParts) addTo(bd *Breakdown) {
	bd.Compute += p.compute
	bd.Memory += p.memory
	bd.Heap += p.heap
	bd.Syscall += p.syscall
	bd.Sched += p.sched
	bd.Comm += p.comm
	bd.Noise += p.noise
}

// emitSpans writes the step's phase timeline: a "step" span enclosing one
// child span per non-empty phase, laid out sequentially from start in the
// same order total() sums them. Because the spans are derived from the same
// stepParts the hot loop adds to elapsed, the enclosing span's end is
// exactly the simulated step end.
func (p stepParts) emitSpans(sink *trace.Sink, start sim.Time) {
	t := int64(start)
	sink.Begin(t, 0, 0, "step", "cluster")
	for _, ph := range []struct {
		name string
		d    sim.Duration
	}{
		{"compute", p.compute}, {"memory", p.memory}, {"heap", p.heap},
		{"syscall", p.syscall}, {"sched", p.sched}, {"comm", p.comm},
		{"noise", p.noise},
	} {
		if ph.d <= 0 {
			continue
		}
		sink.Begin(t, 0, 0, ph.name, "cluster")
		t += int64(ph.d)
		sink.End(t, 0, 0, ph.name, "cluster")
	}
	sink.End(int64(start)+int64(p.total()), 0, 0, "step", "cluster")
}

// runSteps executes the application's timestep loop. inj is this run's
// fault injector (nil when faults are off — the fast path adds one pointer
// test per site); stopStep, when >= 0, truncates the run at that step to
// model an attempt dying mid-flight, in which case the partial result
// carries the time-to-failure and the end-of-run metrics emission is
// skipped (only the surviving attempt reports phases and gauges).
func runSteps(ctx context.Context, k kernel.Kernel, j Job, comm *mpi.Comm, ns *nodeState, rng *sim.RNG, inj *fault.Injector, stopStep int) (Result, error) {
	app := j.App
	costs := k.Costs()
	prof := k.Noise()
	totalRanks := comm.Ranks()

	// Scheduler seam: the booted kernel's policy charges each step's
	// explicit overhead. The state's RNG stream is derived from the job
	// seed, never the run RNG, so the default (zero-charge) policies leave
	// the draw sequence — and the run output — untouched. Gang scheduling
	// additionally reshapes noise absorption: with every rank's windows
	// aligned, a detour at a synchronisation point is absorbed inside one
	// shared window instead of max-combined across ranks.
	pol := k.Sched()
	schedSt := pol.NewState(sim.StreamSeed(j.Seed, sched.StreamState))
	gangAligned := pol.Kind() == sched.Gang

	sink := j.Sink
	counting := sink.Counting()
	eventing := sink.Eventing()
	observing := sink.Observing()

	// Wire costs are identical every step; precompute.
	var haloWire sim.Duration
	var haloMsgs float64
	haloRounds := 0
	if app.Halo != nil {
		if h := app.Halo(j.Nodes); h != nil && h.Rounds > 0 {
			res := comm.HaloExchange(h.Bytes, h.Neighbors)
			haloWire = res.Time * sim.Duration(h.Rounds)
			haloMsgs = res.Messages * float64(h.Rounds)
			haloRounds = h.Rounds
		}
	}
	type collRun struct {
		every int
		wire  sim.Duration
		msgs  float64
	}
	// Collectives that run every step contribute identically each
	// iteration; fold them into static per-step totals so the step loop
	// only re-evaluates the periodic ones.
	var colls []collRun
	var everyStepMsgs float64
	var everyStepWire sim.Duration
	everyStepColls := 0
	if app.Colls != nil {
		for _, c := range app.Colls(j.Nodes) {
			every := c.Every
			if every <= 0 {
				every = 1
			}
			var res mpi.CollResult
			switch c.Kind {
			case apps.CollBcast:
				res = comm.Bcast(c.Bytes)
			case apps.CollAllgather:
				res = comm.Allgather(c.Bytes)
			case apps.CollAlltoall:
				res = comm.Alltoall(c.Bytes)
			default:
				res = comm.Allreduce(c.Bytes)
			}
			if every == 1 {
				everyStepMsgs += res.Messages
				everyStepWire += res.Time
				everyStepColls++
				continue
			}
			colls = append(colls, collRun{every: every, wire: res.Time, msgs: res.Messages})
		}
	}

	// Deterministic per-rank, per-step syscall overheads.
	factor := app.DeviceSyscallFactor
	if factor == 0 {
		factor = 1
	}
	dsPerMsg := j.Fabric.SyscallsPerMessage * factor
	ioctlTime := k.SyscallTime(kernel.SysIoctl)
	yieldTime := k.SyscallTime(kernel.SysSchedYield)
	brkTime := k.SyscallTime(kernel.SysBrk)

	cpuTime := sim.DurationOf(app.FlopsPerStep(j.Nodes) / (app.EffGFlops * 1e9))

	// When core 0 belongs to the application (no core specialisation —
	// the 68-core configuration the paper's section III-A discusses),
	// the rank on it absorbs the system services' detours and, being the
	// slowest, gates every synchronisation.
	core0Hosted := false
	for _, c := range k.Partition().AppCores {
		if c == 0 {
			core0Hosted = true
			break
		}
	}

	var bd Breakdown
	var res0Steps []StepRecord
	bd.SetupShm = ns.shmFault
	elapsed := ns.shmFault
	if eventing && ns.shmFault > 0 {
		sink.Begin(0, 0, 0, "shm-fault", "cluster")
		sink.End(int64(ns.shmFault), 0, 0, "shm-fault", "cluster")
	}

	// The brk trace depends only on the node count: one lookup serves
	// every rank of every step. (Calling it inside the per-rank loop was
	// the harness's own hot-path bug — ranks x timesteps rebuilds of an
	// identical slice.)
	var heapOps []int64
	if app.HeapOpsPerStep != nil {
		heapOps = app.HeapOpsPerStep(j.Nodes)
	}

	ioctlOffloaded := k.Table().Get(kernel.SysIoctl) == kernel.Offloaded

	// Fault-layer precomputation: the resend wire time for a degraded
	// link, and the LWK-side offload inflation while a daemon storm
	// rages. Both are invariant across steps.
	var linkResend sim.Duration
	stormScale := 1.0
	if inj.Active() {
		linkResend = comm.Retransmit(inj.LinkBytes())
		if ioctlOffloaded {
			stormScale = inj.StormOffloadScale()
		}
	}
	// A straggler's excess is absorbed at the next synchronisation point;
	// steps without one let it accumulate (the healthy nodes run ahead
	// until something makes them wait).
	var stragglerPending sim.Duration

	steps := app.Timesteps
	if stopStep >= 0 && stopStep < steps {
		steps = stopStep
	}
	if j.Trace {
		res0Steps = make([]StepRecord, 0, steps)
	}

	// Steady-state memoization of the heap replay. A step whose replay
	// issued only kernel crossings (no faults, mappings, zeroing,
	// allocation or freeing) and whose break returned to its starting
	// offset left the heap engine — and the physical allocator behind it
	// — in exactly its pre-step state, so every later step replays
	// identically; its cost is cached and the replay skipped. The LWK
	// heaps reach this state right after their initial over-reserving
	// growth; the Linux heap never does (shrink frees pages, so each
	// balanced cycle faults anew) and keeps paying full price — which is
	// its cost model. Rank 0 is always replayed so Result.HeapStats keeps
	// exact whole-run accounting, and memoization is disabled entirely
	// when counting: the per-call counter emission inside Sbrk/TouchUpTo
	// is part of the contract then. -1 marks "not steady yet".
	var heapMemo []sim.Duration
	if heapOps != nil && !counting {
		heapMemo = make([]sim.Duration, len(ns.heaps))
		for i := range heapMemo {
			heapMemo[i] = -1
		}
	}

	for step := 0; step < steps; step++ {
		if step&0x3f == 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, fmt.Errorf("cluster: cancelled at step %d: %w", step, err)
			}
		}
		stepStart := sim.Time(elapsed)

		// Heap activity: every rank replays the per-step brk trace on
		// its own heap engine (columnar slice — the loop body touches no
		// rankState); the slowest rank gates the node.
		var heapMax sim.Duration
		if heapOps != nil {
			for ri, h := range ns.heaps {
				if heapMemo != nil && heapMemo[ri] >= 0 {
					cost := heapMemo[ri]
					if cost > heapMax {
						heapMax = cost
					}
					if observing {
						sink.ObserveRank("heap.cost_ns", ri, int64(cost))
					}
					continue
				}
				sizeBefore := h.Size()
				var cost sim.Duration
				var work mem.Work
				for _, delta := range heapOps {
					cost += brkTime
					if _, w, err := h.Sbrk(delta); err == nil {
						work.Accumulate(w)
					}
					if delta > 0 {
						// The application uses what it just
						// allocated before the next call —
						// first touch happens here.
						work.Accumulate(h.TouchUpTo(h.Size()))
					}
				}
				cost += costs.WorkTime(work)
				if cost > heapMax {
					heapMax = cost
				}
				if observing {
					sink.ObserveRank("heap.cost_ns", ri, int64(cost))
				}
				if heapMemo != nil && ri != 0 && h.Size() == sizeBefore && work.PureSyscall() {
					heapMemo[ri] = cost
				}
			}
			if counting {
				sink.CountKey(trace.KeySyscallBrk, int64(len(heapOps)*len(ns.ranks)))
			}
		}

		// Per-step message-driven device syscalls and spin waiting.
		msgs := haloMsgs + everyStepMsgs
		collWire := everyStepWire
		collsDue := everyStepColls
		for _, c := range colls {
			if step%c.every == 0 {
				msgs += c.msgs
				collWire += c.wire
				collsDue++
			}
		}
		sysTime := sim.DurationOf(msgs*dsPerMsg*ioctlTime.Seconds()) +
			sim.DurationOf(float64(app.SchedYieldsPerStep)*yieldTime.Seconds())
		if counting {
			devCalls := int64(msgs * dsPerMsg)
			sink.CountKey(trace.KeyFabricMessages, int64(msgs))
			sink.CountKey(trace.KeyFabricDevSyscalls, devCalls)
			sink.CountKey(trace.KeySyscallIoctl, devCalls)
			sink.CountKey(trace.KeySyscallSchedYield, int64(app.SchedYieldsPerStep))
			if ioctlOffloaded && devCalls > 0 {
				// Every device-file call on the comm path pays the
				// kernel's IKC/migration round trip.
				sink.CountKey(trace.KeyOffloadCalls, devCalls)
				sink.CountKey(trace.KeyOffloadRTTNs, devCalls*int64(costs.OffloadRTT))
			}
		}

		// Fault layer: a flaky offload channel stalls calls until the
		// re-issue timeout, and a daemon storm inflates the round trip
		// (LWKs only — Linux executes natively and never crosses the
		// channel); a degraded link loses messages, each waiting out the
		// retransmit timer and paying the wire again.
		var linkDelay sim.Duration
		if inj.Active() {
			if ioctlOffloaded {
				if stalls, stallTime := inj.OffloadStalls(int(msgs * dsPerMsg)); stalls > 0 {
					sysTime += stallTime
					if counting {
						sink.CountKey(trace.KeyFaultOffloadStalls, int64(stalls))
						sink.CountKey(trace.KeyFaultOffloadStallNs, int64(stallTime))
					}
				}
				if stormScale > 1 {
					extra := sim.DurationOf(msgs * dsPerMsg * costs.OffloadRTT.Seconds() * (stormScale - 1))
					sysTime += extra
					if counting {
						sink.CountKey(trace.KeyFaultStormOffloadNs, int64(extra))
					}
				}
			}
			if n, d := inj.LinkRetransmits(msgs, linkResend); n > 0 {
				linkDelay = d
				if counting {
					sink.CountKey(trace.KeyFaultLinkRetransmits, int64(n))
					sink.CountKey(trace.KeyFaultLinkDelayNs, int64(d))
				}
			}
		}

		// The slowest rank's local phase gates the node (ranks differ
		// only in memory placement); placement is fixed after setup, so
		// the maximum was hoisted out of the step loop entirely.
		memMax := ns.memMax
		base := cpuTime + memMax + heapMax + sysTime

		// Explicit scheduling overhead for this step's busy time. Zero
		// under the default disciplines (their cost is embedded in the
		// calibrated noise/cost model); rr/gang/adaptive charge deltas.
		schedCost := schedSt.Step(base)
		if counting {
			if schedCost.Switches > 0 {
				sink.CountKey(trace.KeySchedSwitches, schedCost.Switches)
			}
			if schedCost.Ticks > 0 {
				sink.CountKey(trace.KeySchedTicks, schedCost.Ticks)
			}
			if schedCost.Adjusted > 0 {
				sink.CountKey(trace.KeySchedQuantumAdjust, schedCost.Adjusted)
			}
			if schedCost.GangSlack > 0 {
				sink.CountKey(trace.KeySchedGangSlackNs, int64(schedCost.GangSlack))
			}
		}

		// Fault layer: a straggler's excess over the healthy local phase
		// is absorbed by the whole job at the step's synchronisation
		// point — the max-over-ranks semantics that let one slow node
		// poison a collective. Sync-free steps let it accumulate until
		// something makes the healthy nodes wait.
		var stragglerAbs sim.Duration
		if inj.Active() {
			stragglerPending += inj.StragglerExcess(step, j.Nodes, base)
			if stragglerPending > 0 && (collsDue > 0 || haloWire > 0) {
				stragglerAbs = stragglerPending
				stragglerPending = 0
				if counting {
					sink.CountKey(trace.KeyFaultStragglerNs, int64(stragglerAbs))
				}
				if observing {
					sink.Observe("fault.straggler_ns", int64(stragglerAbs))
				}
			}
		}

		// Interference: global collectives absorb the worst detour of
		// the whole job; halo exchanges only a neighbourhood's. A step
		// that has both synchronises twice — the halo at the stencil
		// boundary and the collective at the reduction — and each sync
		// point absorbs its own worst detour, so the detours compose
		// additively (they are maxima over disjoint waiting windows of
		// the same step, not alternatives; previously the halo share
		// was silently dropped whenever a collective was due).
		var detour sim.Duration
		for i := 0; i < collsDue; i++ {
			var d sim.Duration
			maxRank := -1
			if gangAligned {
				// Aligned gang windows: every rank's detours land in
				// the same co-scheduling window, so the collective
				// absorbs one rank's worth of interference instead of
				// the max over all ranks (no single straggling rank —
				// max_rank is reported as -1).
				d = prof.DetourInTo(rng, 1, base, sink)
			} else {
				d, maxRank = noise.MaxDetourRank(rng, prof, totalRanks, base)
			}
			detour += d
			if counting {
				sink.CountKey(trace.KeyMPICollectives, 1)
				sink.CountKey(trace.KeyNoiseCollectiveMaxNs, int64(d))
			}
			if observing {
				sink.Observe("noise.collective_max_ns", int64(d))
			}
			if eventing {
				sink.Instant(int64(stepStart), 0, laneMPI, "collective", "mpi",
					map[string]int64{"step": int64(step), "max_rank": int64(maxRank),
						"skew_ns": int64(d)})
			}
		}
		if haloWire > 0 {
			var d sim.Duration
			if gangAligned {
				// Same alignment argument as the collective path, over
				// the stencil neighbourhood.
				d = prof.DetourInTo(rng, 1, base, sink)
			} else {
				nb := haloNeighborhood
				if nb > totalRanks {
					nb = totalRanks
				}
				d, _ = noise.MaxDetourRank(rng, prof, nb, base)
			}
			detour += d
			if counting {
				sink.CountKey(trace.KeyMPIHaloExchanges, int64(haloRounds))
				sink.CountKey(trace.KeyNoiseHaloMaxNs, int64(d))
			}
			if observing {
				sink.Observe("noise.halo_max_ns", int64(d))
			}
		}
		if collsDue == 0 && haloWire == 0 {
			// No synchronisation: only the rank's own detour counts.
			detour = prof.DetourInTo(rng, 1, base, sink)
		}
		if core0Hosted {
			if d0 := prof.DetourInTo(rng, 0, base, sink); d0 > detour {
				detour = d0
			}
		}

		parts := stepParts{compute: cpuTime, memory: memMax, heap: heapMax,
			syscall: sysTime, sched: schedCost.Overhead,
			comm:  haloWire + collWire + linkDelay,
			noise: detour + stragglerAbs}
		if counting {
			sink.CountKey(trace.KeyNoiseDetourNs, int64(detour))
		}
		if observing {
			sink.Observe("noise.detour_ns", int64(detour))
			sink.Observe("step.total_ns", int64(parts.total()))
			sink.Observe("fabric.step_messages", int64(msgs))
		}
		if eventing {
			parts.emitSpans(sink, stepStart)
		}
		elapsed += parts.total()
		if j.Trace {
			res0Steps = append(res0Steps, parts.record())
		}
		parts.addTo(&bd)
	}

	if stragglerPending > 0 {
		// The run ends with the job waiting out the straggler one last
		// time (no further sync point absorbed it).
		elapsed += stragglerPending
		bd.Noise += stragglerPending
		if counting {
			sink.CountKey(trace.KeyFaultStragglerNs, int64(stragglerPending))
		}
	}

	if observing && stopStep < 0 {
		// One accumulation per run, derived from the same Breakdown the
		// results report — the phase table cannot drift from simulated
		// time.
		sink.Phase("compute", int64(bd.Compute))
		sink.Phase("memory", int64(bd.Memory))
		sink.Phase("heap", int64(bd.Heap))
		sink.Phase("syscall", int64(bd.Syscall))
		if bd.Sched > 0 {
			// Guarded: a default-policy run's metrics table is
			// byte-identical to the pre-policy simulator's.
			sink.Phase("sched", int64(bd.Sched))
		}
		sink.Phase("comm", int64(bd.Comm))
		sink.Phase("noise", int64(bd.Noise))
		sink.Phase("setup.shm", int64(bd.SetupShm))
		sink.Gauge("cluster.ranks", int64(totalRanks))
		sink.Gauge("cluster.timesteps", int64(app.Timesteps))
	}

	work := app.WorkPerStepPerNode(j.Nodes) * float64(app.Timesteps)
	fom := 0.0
	if elapsed > 0 {
		fom = work / elapsed.Seconds()
		if !app.PerNode {
			fom *= float64(j.Nodes)
		}
	}
	// An empty-rank job (a zero-rank app spec) has no heap to report;
	// indexing ranks[0] unconditionally panicked here.
	var heapStats mem.HeapStats
	if len(ns.ranks) > 0 {
		heapStats = ns.ranks[0].heap.Stats()
	}
	return Result{
		Elapsed:     elapsed,
		FOM:         fom,
		Setup:       ns.setup,
		Breakdown:   bd,
		HeapStats:   heapStats,
		MCDRAMBytes: mcdramResidency(ns),
		DemandRanks: countDemandRanks(ns),
		Steps:       res0Steps,
	}, nil
}

func mcdramResidency(ns *nodeState) int64 {
	var total int64
	for _, rs := range ns.ranks {
		total += rs.as.BytesByKind()[hw.MCDRAM]
	}
	return total
}

func countDemandRanks(ns *nodeState) int {
	n := 0
	for _, rs := range ns.ranks {
		if rs.ws.DemandActive {
			n++
		}
	}
	return n
}
