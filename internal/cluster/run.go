package cluster

import (
	"mklite/internal/apps"
	"mklite/internal/hw"
	"mklite/internal/kernel"
	"mklite/internal/mem"
	"mklite/internal/mpi"
	"mklite/internal/noise"
	"mklite/internal/sim"
)

// haloNeighborhood is the synchronisation scope of a halo exchange: a rank
// waits only for its stencil neighbours, so noise maxima are taken over a
// small neighbourhood instead of the whole job — the reason halo-bound
// applications (LAMMPS) show no Linux cliff.
const haloNeighborhood = 27

// runSteps executes the application's timestep loop.
func runSteps(k kernel.Kernel, j Job, comm *mpi.Comm, ns *nodeState, rng *sim.RNG) Result {
	app := j.App
	costs := k.Costs()
	prof := k.Noise()
	totalRanks := comm.Ranks()

	// Wire costs are identical every step; precompute.
	var haloWire sim.Duration
	var haloMsgs float64
	if app.Halo != nil {
		if h := app.Halo(j.Nodes); h != nil && h.Rounds > 0 {
			res := comm.HaloExchange(h.Bytes, h.Neighbors)
			haloWire = res.Time * sim.Duration(h.Rounds)
			haloMsgs = res.Messages * float64(h.Rounds)
		}
	}
	type collRun struct {
		every int
		wire  sim.Duration
		msgs  float64
	}
	// Collectives that run every step contribute identically each
	// iteration; fold them into static per-step totals so the step loop
	// only re-evaluates the periodic ones.
	var colls []collRun
	var everyStepMsgs float64
	var everyStepWire sim.Duration
	everyStepColls := 0
	if app.Colls != nil {
		for _, c := range app.Colls(j.Nodes) {
			every := c.Every
			if every <= 0 {
				every = 1
			}
			var res mpi.CollResult
			switch c.Kind {
			case apps.CollBcast:
				res = comm.Bcast(c.Bytes)
			case apps.CollAllgather:
				res = comm.Allgather(c.Bytes)
			case apps.CollAlltoall:
				res = comm.Alltoall(c.Bytes)
			default:
				res = comm.Allreduce(c.Bytes)
			}
			if every == 1 {
				everyStepMsgs += res.Messages
				everyStepWire += res.Time
				everyStepColls++
				continue
			}
			colls = append(colls, collRun{every: every, wire: res.Time, msgs: res.Messages})
		}
	}

	// Deterministic per-rank, per-step syscall overheads.
	factor := app.DeviceSyscallFactor
	if factor == 0 {
		factor = 1
	}
	dsPerMsg := j.Fabric.SyscallsPerMessage * factor
	ioctlTime := k.SyscallTime(kernel.SysIoctl)
	yieldTime := k.SyscallTime(kernel.SysSchedYield)
	brkTime := k.SyscallTime(kernel.SysBrk)

	cpuTime := sim.DurationOf(app.FlopsPerStep(j.Nodes) / (app.EffGFlops * 1e9))

	// When core 0 belongs to the application (no core specialisation —
	// the 68-core configuration the paper's section III-A discusses),
	// the rank on it absorbs the system services' detours and, being the
	// slowest, gates every synchronisation.
	core0Hosted := false
	for _, c := range k.Partition().AppCores {
		if c == 0 {
			core0Hosted = true
			break
		}
	}

	var bd Breakdown
	var res0Steps []StepRecord
	bd.SetupShm = ns.shmFault
	elapsed := ns.shmFault

	// The brk trace depends only on the node count: one lookup serves
	// every rank of every step. (Calling it inside the per-rank loop was
	// the harness's own hot-path bug — ranks x timesteps rebuilds of an
	// identical slice.)
	var heapOps []int64
	if app.HeapOpsPerStep != nil {
		heapOps = app.HeapOpsPerStep(j.Nodes)
	}

	for step := 0; step < app.Timesteps; step++ {
		// Heap activity: every rank replays the per-step brk trace on
		// its own heap engine; the slowest rank gates the node.
		var heapMax sim.Duration
		if heapOps != nil {
			for _, rs := range ns.ranks {
				var cost sim.Duration
				var work mem.Work
				for _, delta := range heapOps {
					cost += brkTime
					if _, w, err := rs.heap.Sbrk(delta); err == nil {
						work.Accumulate(w)
					}
					if delta > 0 {
						// The application uses what it just
						// allocated before the next call —
						// first touch happens here.
						work.Accumulate(rs.heap.TouchUpTo(rs.heap.Size()))
					}
				}
				cost += costs.WorkTime(work)
				if cost > heapMax {
					heapMax = cost
				}
			}
		}

		// Per-step message-driven device syscalls and spin waiting.
		msgs := haloMsgs + everyStepMsgs
		collWire := everyStepWire
		collsDue := everyStepColls
		for _, c := range colls {
			if step%c.every == 0 {
				msgs += c.msgs
				collWire += c.wire
				collsDue++
			}
		}
		sysTime := sim.DurationOf(msgs*dsPerMsg*ioctlTime.Seconds()) +
			sim.DurationOf(float64(app.SchedYieldsPerStep)*yieldTime.Seconds())

		// The slowest rank's local phase gates the node (ranks differ
		// only in memory placement).
		var memMax sim.Duration
		for _, rs := range ns.ranks {
			if rs.memTime > memMax {
				memMax = rs.memTime
			}
		}
		base := cpuTime + memMax + heapMax + sysTime

		// Interference: global collectives absorb the worst detour of
		// the whole job; halo exchanges only a neighbourhood's. A step
		// that has both synchronises twice — the halo at the stencil
		// boundary and the collective at the reduction — and each sync
		// point absorbs its own worst detour, so the detours compose
		// additively (they are maxima over disjoint waiting windows of
		// the same step, not alternatives; previously the halo share
		// was silently dropped whenever a collective was due).
		var detour sim.Duration
		for i := 0; i < collsDue; i++ {
			detour += noise.MaxDetour(rng, prof, totalRanks, base)
		}
		if haloWire > 0 {
			nb := haloNeighborhood
			if nb > totalRanks {
				nb = totalRanks
			}
			detour += noise.MaxDetour(rng, prof, nb, base)
		}
		if collsDue == 0 && haloWire == 0 {
			// No synchronisation: only the rank's own detour counts.
			detour = prof.DetourIn(rng, 1, base)
		}
		if core0Hosted {
			if d0 := prof.DetourIn(rng, 0, base); d0 > detour {
				detour = d0
			}
		}

		elapsed += base + haloWire + collWire + detour
		if j.Trace {
			res0Steps = append(res0Steps, StepRecord{
				Compute: cpuTime,
				Memory:  memMax,
				Heap:    heapMax,
				Syscall: sysTime,
				Comm:    haloWire + collWire,
				Noise:   detour,
			})
		}
		bd.Compute += cpuTime
		bd.Memory += memMax
		bd.Heap += heapMax
		bd.Syscall += sysTime
		bd.Comm += haloWire + collWire
		bd.Noise += detour
	}

	work := app.WorkPerStepPerNode(j.Nodes) * float64(app.Timesteps)
	fom := work / elapsed.Seconds()
	if !app.PerNode {
		fom *= float64(j.Nodes)
	}
	return Result{
		Elapsed:     elapsed,
		FOM:         fom,
		Setup:       ns.setup,
		Breakdown:   bd,
		HeapStats:   ns.ranks[0].heap.Stats(),
		MCDRAMBytes: mcdramResidency(k, ns),
		DemandRanks: countDemandRanks(ns),
		Steps:       res0Steps,
	}
}

func mcdramResidency(k kernel.Kernel, ns *nodeState) int64 {
	var total int64
	for _, rs := range ns.ranks {
		total += rs.as.BytesByKind()[hw.MCDRAM]
	}
	return total
}

func countDemandRanks(ns *nodeState) int {
	n := 0
	for _, rs := range ns.ranks {
		if rs.ws.DemandActive {
			n++
		}
	}
	return n
}
