// Package cluster is the experiment harness: it boots a kernel on a model
// KNL node, lays out an application's ranks (address spaces, heaps, MPI
// shared-memory windows) through the kernel's real memory-management code
// paths, and then runs the application's timestep trace across N such nodes
// — composing compute, memory-bandwidth, heap, system-call, network and
// noise costs into an elapsed time and the paper's figure of merit.
//
// SPMD jobs are homogeneous per node, so the harness materialises one
// node's full memory image and reuses the derived per-rank parameters for
// all nodes; per-step noise maxima are still sampled across the entire
// job's rank count, which is where scale enters.
package cluster

import (
	"context"
	"fmt"

	"mklite/internal/apps"
	"mklite/internal/fabric"
	"mklite/internal/fault"
	"mklite/internal/hw"
	"mklite/internal/ihk"
	"mklite/internal/kernel"
	"mklite/internal/linuxos"
	"mklite/internal/mckernel"
	"mklite/internal/mem"
	"mklite/internal/mos"
	"mklite/internal/mpi"
	"mklite/internal/noise"
	"mklite/internal/sched"
	"mklite/internal/sim"
	"mklite/internal/trace"
)

// Job describes one run: an application at a node count on a kernel.
type Job struct {
	App    *apps.Spec
	Kernel kernel.Type
	Nodes  int
	// Seed drives all stochastic draws; same seed => identical result.
	Seed uint64

	// Fabric overrides the interconnect (default: Omni-Path).
	Fabric *fabric.Spec
	// McK carries McKernel job options (proxy flags, heap branch);
	// nil selects the defaults.
	McK *mckernel.Options
	// MOS carries the mOS boot configuration; nil selects the defaults.
	MOS *mos.Config
	// Linux carries the Linux boot configuration; nil selects the
	// defaults.
	Linux *linuxos.Config
	// Sched overrides the booted kernel's scheduling policy (see
	// internal/sched); empty keeps each kernel's default — cfs on Linux,
	// coop on the LWKs — under which the run is byte-identical to a
	// pre-policy simulator. The override is copied into whichever OS
	// config the job boots, so it works on all three kernels.
	Sched sched.Kind
	// ForceDDROnly pins all application memory to DDR4 regardless of
	// kernel (the Table I and CCS-QCD-DDR experiments).
	ForceDDROnly bool
	// Quadrant runs the node in quadrant mode instead of SNC-4: one
	// DDR4 domain with all cores plus one MCDRAM domain. Linux can then
	// express "prefer MCDRAM, spill to DDR" with numactl -p, at the
	// cost of the SNC-4 mesh advantage (section III-B).
	Quadrant bool
	// Trace records a per-timestep breakdown into Result.Steps.
	Trace bool
	// Sink receives mechanism counters and virtual-time events for this
	// run. It must be owned by the run (never shared across par workers)
	// and is purely observational: results are byte-identical with or
	// without one attached.
	Sink *trace.Sink
	// Faults, when non-nil and non-empty, schedules deterministic fault
	// injection for the run (see internal/fault and docs/FAULTS.md). The
	// injector draws from its own sim.StreamSeed stream, so a nil or
	// empty plan leaves every output byte-identical to a faultless build.
	Faults *fault.Plan
}

// StepRecord is one timestep's attribution (recorded when Job.Trace).
type StepRecord struct {
	Compute sim.Duration
	Memory  sim.Duration
	Heap    sim.Duration
	Syscall sim.Duration
	Sched   sim.Duration
	Comm    sim.Duration
	Noise   sim.Duration
}

// Total returns the step's duration.
func (s StepRecord) Total() sim.Duration {
	return s.Compute + s.Memory + s.Heap + s.Syscall + s.Sched + s.Comm + s.Noise
}

// normalized fills defaults.
func (j Job) normalized() Job {
	if j.Fabric == nil {
		j.Fabric = fabric.OmniPath()
	}
	if j.McK == nil {
		opts := mckernel.DefaultOptions()
		j.McK = &opts
	}
	if j.MOS == nil {
		cfg := mos.DefaultConfig()
		j.MOS = &cfg
	}
	if j.Linux == nil {
		cfg := linuxos.DefaultConfig()
		j.Linux = &cfg
	}
	return j
}

// Breakdown attributes the run's per-node time to mechanisms; the ablation
// experiments and tests assert against it.
type Breakdown struct {
	Compute  sim.Duration // pure flops
	Memory   sim.Duration // bandwidth-limited traffic
	Heap     sim.Duration // brk servicing + heap faults
	Syscall  sim.Duration // device syscalls, sched_yield, traps
	Sched    sim.Duration // explicit scheduler charges (non-default policies)
	Comm     sim.Duration // wire time of halo + collectives
	Noise    sim.Duration // interference absorbed (incl. amplification)
	SetupShm sim.Duration // first-touch of MPI shm windows (timed phase)
}

// Total sums the attributed time.
func (b Breakdown) Total() sim.Duration {
	return b.Compute + b.Memory + b.Heap + b.Syscall + b.Sched + b.Comm + b.Noise + b.SetupShm
}

// Result is one run's outcome.
type Result struct {
	App    string
	Kernel string
	Nodes  int
	Ranks  int

	// Elapsed is the timed (solve) phase duration.
	Elapsed sim.Duration
	// FOM is the application's figure of merit (rate in Unit).
	FOM  float64
	Unit string

	// Setup is the untimed initialisation (mmap + first touch of the
	// working set), reported for analysis.
	Setup sim.Duration
	// Breakdown attributes the timed phase.
	Breakdown Breakdown
	// HeapStats is rank 0's heap accounting after the run.
	HeapStats mem.HeapStats
	// MCDRAMBytes is the model node's MCDRAM residency after setup.
	MCDRAMBytes int64
	// DemandRanks counts ranks that ended up demand-paged.
	DemandRanks int
	// Steps holds the per-timestep attribution when Job.Trace was set.
	Steps []StepRecord

	// Retries counts failed attempts re-executed after transient node
	// failures (zero without an active fault plan).
	Retries int
	// Recovery is the virtual time lost to failed attempts and retry
	// backoff, included in Elapsed: with faults active,
	// Elapsed = Breakdown.Total() + Recovery.
	Recovery sim.Duration
	// Degraded reports that the job completed on a reduced node set
	// after exhausting retries (Plan.AllowDegraded).
	Degraded bool
	// LostNodes counts the nodes dropped by degraded completion; Nodes
	// reports the surviving count the result was computed on.
	LostNodes int
}

// bootKernel constructs the requested kernel on a fresh KNL node.
func bootKernel(j Job) (kernel.Kernel, error) {
	node := hw.KNL7250SNC4()
	if j.Quadrant {
		node = hw.KNL7250Quadrant()
	}
	switch j.Kernel {
	case kernel.TypeLinux:
		return linuxos.Boot(node, *j.Linux)
	case kernel.TypeMcKernel:
		lin, err := linuxos.Boot(node, linuxos.DefaultConfig())
		if err != nil {
			return nil, err
		}
		g, err := ihk.Reserve(lin, ihk.DefaultReserveOptions())
		if err != nil {
			return nil, err
		}
		return mckernel.Boot(lin, g, *j.McK)
	case kernel.TypeMOS:
		return mos.Boot(node, *j.MOS)
	default:
		return nil, fmt.Errorf("cluster: unknown kernel type %v", j.Kernel)
	}
}

// Run executes the job and returns its result. It is the
// context.Background() form of RunContext.
func Run(j Job) (Result, error) {
	return RunContext(context.Background(), j)
}

// RunContext executes the job, honouring ctx between attempts and
// periodically inside the step loop — fault plans with retries can re-execute
// a job several times, and callers may want to abandon the wait. A cancelled
// run returns ctx's error and never a partial Result, so cancellation cannot
// leak a timing-dependent output into a determinism-checked pipeline.
func RunContext(ctx context.Context, j Job) (Result, error) {
	j = j.normalized()
	if j.App == nil {
		return Result{}, fmt.Errorf("cluster: job without application")
	}
	if err := j.App.Validate(); err != nil {
		return Result{}, err
	}
	if j.Nodes <= 0 {
		return Result{}, fmt.Errorf("cluster: bad node count %d", j.Nodes)
	}
	if err := j.Faults.Validate(); err != nil {
		return Result{}, err
	}
	if j.Sched != "" {
		// Per-job policy override: copy each OS config — they may be the
		// caller's — and let whichever kernel boots honour it.
		kind, err := sched.Parse(string(j.Sched))
		if err != nil {
			return Result{}, fmt.Errorf("cluster: %w", err)
		}
		lin, mck, mosCfg := *j.Linux, *j.McK, *j.MOS
		lin.Sched, mck.Sched, mosCfg.Sched = kind, kind, kind
		j.Linux, j.McK, j.MOS = &lin, &mck, &mosCfg
	}
	// The injector draws from its own stream — never from the run RNG —
	// so a nil injector (empty plan) leaves the draw sequence untouched.
	inj := fault.NewInjector(j.Faults, sim.StreamSeed(j.Seed, fault.StreamCluster))
	if st := inj.Storm(); st != nil && j.Kernel == kernel.TypeLinux {
		// The daemon storm lands on Linux's application cores directly;
		// the LWKs feel it only through inflated offload round trips
		// (handled in runSteps). Copy the config — j.Linux may be the
		// caller's.
		cfg := *j.Linux
		cfg.ExtraNoise = append(append([]noise.Source{}, cfg.ExtraNoise...),
			noise.Storm(st.Period, st.Burst, st.CV))
		j.Linux = &cfg
	}

	sink := j.Sink
	var recovery sim.Duration
	retries, lost := 0, 0
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return Result{}, fmt.Errorf("cluster: run cancelled: %w", err)
		}
		res, failNode, failStep, failed, err := runAttempt(ctx, j, inj, attempt)
		if err != nil {
			return Result{}, err
		}
		if !failed {
			res.Retries = retries
			res.LostNodes = lost
			res.Degraded = lost > 0
			if recovery > 0 {
				// Recovery time counts against the job's wall clock;
				// the figure of merit degrades accordingly.
				total := res.Elapsed + recovery
				res.FOM *= float64(res.Elapsed) / float64(total)
				res.Elapsed = total
				res.Recovery = recovery
				if sink.Counting() {
					sink.CountKey(trace.KeyFaultRecoveryNs, int64(recovery))
				}
				if sink.Observing() {
					sink.Observe("fault.recovery_ns", int64(recovery))
					sink.Gauge("fault.retries", int64(retries))
				}
			}
			if lost > 0 && sink.Observing() {
				sink.Gauge("fault.degraded_nodes", int64(lost))
			}
			return res, nil
		}

		// The attempt died at failStep: its partial elapsed time is the
		// time-to-failure, lost to the job along with the retry backoff.
		recovery += res.Elapsed
		if sink.Counting() {
			sink.CountKey(trace.KeyFaultNodeFailures, 1)
		}
		if sink.Eventing() {
			sink.Instant(int64(recovery), 0, laneMPI, "node-failure", "fault",
				map[string]int64{"attempt": int64(attempt), "node": int64(failNode),
					"step": int64(failStep)})
		}
		if retries < inj.MaxRetries() {
			retries++
			recovery += inj.Backoff(retries - 1)
			if sink.Counting() {
				sink.CountKey(trace.KeyFaultRetries, 1)
			}
			continue
		}
		if inj.AllowDegraded() && j.Nodes > 1 {
			// Out of retries: drop the dead node and finish on the
			// survivors. Further failures are disabled so the shrunken
			// job is guaranteed to terminate.
			j.Nodes--
			lost++
			inj.DisableNodeFailures()
			recovery += inj.Backoff(retries)
			if sink.Counting() {
				sink.CountKey(trace.KeyFaultDegradedNodes, 1)
			}
			continue
		}
		return Result{}, fmt.Errorf("cluster: node %d failed at step %d; retries exhausted after %d attempts",
			failNode, failStep, attempt+1)
	}
}

// runAttempt boots a fresh node image, lays the job out, draws this
// attempt's node-failure fate and executes the steps — all of them, or only
// up to the failure step when the attempt is doomed.
func runAttempt(ctx context.Context, j Job, inj *fault.Injector, attempt int) (res Result, failNode, failStep int, failed bool, err error) {
	k, err := bootKernel(j)
	if err != nil {
		return Result{}, 0, 0, false, err
	}
	comm, err := mpi.New(j.Fabric, j.Nodes, j.App.RanksPerNode)
	if err != nil {
		return Result{}, 0, 0, false, err
	}
	seed := j.Seed ^ 0x6d6b6c697465 // "mklite"
	if attempt > 0 {
		// Re-executions derive their own stream; attempt 0 keeps the
		// historical derivation so faults-off runs stay byte-identical.
		seed = sim.StreamSeed(seed, uint64(attempt))
	}
	rng := sim.NewRNG(seed)

	node, err := setupNode(k, j, rng.Split())
	if err != nil {
		return Result{}, 0, 0, false, err
	}
	failNode, failStep, failed = inj.NodeFailure(attempt, j.Nodes, j.App.Timesteps)
	stop := -1
	if failed {
		stop = failStep
	}
	res, err = runSteps(ctx, k, j, comm, node, rng.Split(), inj, stop)
	if err != nil {
		return Result{}, 0, 0, false, err
	}
	res.App = j.App.Name
	res.Kernel = k.Type().String()
	res.Nodes = j.Nodes
	res.Ranks = comm.Ranks()
	res.Unit = j.App.Unit
	return res, failNode, failStep, failed, nil
}
