// Package cluster is the experiment harness: it boots a kernel on a model
// KNL node, lays out an application's ranks (address spaces, heaps, MPI
// shared-memory windows) through the kernel's real memory-management code
// paths, and then runs the application's timestep trace across N such nodes
// — composing compute, memory-bandwidth, heap, system-call, network and
// noise costs into an elapsed time and the paper's figure of merit.
//
// SPMD jobs are homogeneous per node, so the harness materialises one
// node's full memory image and reuses the derived per-rank parameters for
// all nodes; per-step noise maxima are still sampled across the entire
// job's rank count, which is where scale enters.
package cluster

import (
	"fmt"

	"mklite/internal/apps"
	"mklite/internal/fabric"
	"mklite/internal/hw"
	"mklite/internal/ihk"
	"mklite/internal/kernel"
	"mklite/internal/linuxos"
	"mklite/internal/mckernel"
	"mklite/internal/mem"
	"mklite/internal/mos"
	"mklite/internal/mpi"
	"mklite/internal/sim"
	"mklite/internal/trace"
)

// Job describes one run: an application at a node count on a kernel.
type Job struct {
	App    *apps.Spec
	Kernel kernel.Type
	Nodes  int
	// Seed drives all stochastic draws; same seed => identical result.
	Seed uint64

	// Fabric overrides the interconnect (default: Omni-Path).
	Fabric *fabric.Spec
	// McK carries McKernel job options (proxy flags, heap branch);
	// nil selects the defaults.
	McK *mckernel.Options
	// MOS carries the mOS boot configuration; nil selects the defaults.
	MOS *mos.Config
	// Linux carries the Linux boot configuration; nil selects the
	// defaults.
	Linux *linuxos.Config
	// ForceDDROnly pins all application memory to DDR4 regardless of
	// kernel (the Table I and CCS-QCD-DDR experiments).
	ForceDDROnly bool
	// Quadrant runs the node in quadrant mode instead of SNC-4: one
	// DDR4 domain with all cores plus one MCDRAM domain. Linux can then
	// express "prefer MCDRAM, spill to DDR" with numactl -p, at the
	// cost of the SNC-4 mesh advantage (section III-B).
	Quadrant bool
	// Trace records a per-timestep breakdown into Result.Steps.
	Trace bool
	// Sink receives mechanism counters and virtual-time events for this
	// run. It must be owned by the run (never shared across par workers)
	// and is purely observational: results are byte-identical with or
	// without one attached.
	Sink *trace.Sink
}

// StepRecord is one timestep's attribution (recorded when Job.Trace).
type StepRecord struct {
	Compute sim.Duration
	Memory  sim.Duration
	Heap    sim.Duration
	Syscall sim.Duration
	Comm    sim.Duration
	Noise   sim.Duration
}

// Total returns the step's duration.
func (s StepRecord) Total() sim.Duration {
	return s.Compute + s.Memory + s.Heap + s.Syscall + s.Comm + s.Noise
}

// normalized fills defaults.
func (j Job) normalized() Job {
	if j.Fabric == nil {
		j.Fabric = fabric.OmniPath()
	}
	if j.McK == nil {
		opts := mckernel.DefaultOptions()
		j.McK = &opts
	}
	if j.MOS == nil {
		cfg := mos.DefaultConfig()
		j.MOS = &cfg
	}
	if j.Linux == nil {
		cfg := linuxos.DefaultConfig()
		j.Linux = &cfg
	}
	return j
}

// Breakdown attributes the run's per-node time to mechanisms; the ablation
// experiments and tests assert against it.
type Breakdown struct {
	Compute  sim.Duration // pure flops
	Memory   sim.Duration // bandwidth-limited traffic
	Heap     sim.Duration // brk servicing + heap faults
	Syscall  sim.Duration // device syscalls, sched_yield, traps
	Comm     sim.Duration // wire time of halo + collectives
	Noise    sim.Duration // interference absorbed (incl. amplification)
	SetupShm sim.Duration // first-touch of MPI shm windows (timed phase)
}

// Total sums the attributed time.
func (b Breakdown) Total() sim.Duration {
	return b.Compute + b.Memory + b.Heap + b.Syscall + b.Comm + b.Noise + b.SetupShm
}

// Result is one run's outcome.
type Result struct {
	App    string
	Kernel string
	Nodes  int
	Ranks  int

	// Elapsed is the timed (solve) phase duration.
	Elapsed sim.Duration
	// FOM is the application's figure of merit (rate in Unit).
	FOM  float64
	Unit string

	// Setup is the untimed initialisation (mmap + first touch of the
	// working set), reported for analysis.
	Setup sim.Duration
	// Breakdown attributes the timed phase.
	Breakdown Breakdown
	// HeapStats is rank 0's heap accounting after the run.
	HeapStats mem.HeapStats
	// MCDRAMBytes is the model node's MCDRAM residency after setup.
	MCDRAMBytes int64
	// DemandRanks counts ranks that ended up demand-paged.
	DemandRanks int
	// Steps holds the per-timestep attribution when Job.Trace was set.
	Steps []StepRecord
}

// bootKernel constructs the requested kernel on a fresh KNL node.
func bootKernel(j Job) (kernel.Kernel, error) {
	node := hw.KNL7250SNC4()
	if j.Quadrant {
		node = hw.KNL7250Quadrant()
	}
	switch j.Kernel {
	case kernel.TypeLinux:
		return linuxos.Boot(node, *j.Linux)
	case kernel.TypeMcKernel:
		lin, err := linuxos.Boot(node, linuxos.DefaultConfig())
		if err != nil {
			return nil, err
		}
		g, err := ihk.Reserve(lin, ihk.DefaultReserveOptions())
		if err != nil {
			return nil, err
		}
		return mckernel.Boot(lin, g, *j.McK)
	case kernel.TypeMOS:
		return mos.Boot(node, *j.MOS)
	default:
		return nil, fmt.Errorf("cluster: unknown kernel type %v", j.Kernel)
	}
}

// Run executes the job and returns its result.
func Run(j Job) (Result, error) {
	j = j.normalized()
	if j.App == nil {
		return Result{}, fmt.Errorf("cluster: job without application")
	}
	if err := j.App.Validate(); err != nil {
		return Result{}, err
	}
	if j.Nodes <= 0 {
		return Result{}, fmt.Errorf("cluster: bad node count %d", j.Nodes)
	}
	k, err := bootKernel(j)
	if err != nil {
		return Result{}, err
	}
	comm, err := mpi.New(j.Fabric, j.Nodes, j.App.RanksPerNode)
	if err != nil {
		return Result{}, err
	}
	rng := sim.NewRNG(j.Seed ^ 0x6d6b6c697465) // "mklite"

	node, err := setupNode(k, j, rng.Split())
	if err != nil {
		return Result{}, err
	}
	res := runSteps(k, j, comm, node, rng.Split())
	res.App = j.App.Name
	res.Kernel = k.Type().String()
	res.Nodes = j.Nodes
	res.Ranks = comm.Ranks()
	res.Unit = j.App.Unit
	return res, nil
}
