package cluster

import (
	"fmt"
	"math"

	"mklite/internal/hw"
	"mklite/internal/kernel"
	"mklite/internal/mem"
	"mklite/internal/sim"
)

// upfrontHotBias models that applications allocate their arrays roughly in
// order of access frequency, so even address-ordered upfront placement
// captures hot data with a modest bias over the uniform assumption.
const upfrontHotBias = 1.5

// demandRounds is the interleaving granularity of first-touch population:
// demand-paged ranks touch their working sets concurrently, so MCDRAM fills
// round-robin across ranks instead of rank-by-rank — the sharing effect the
// paper attributes McKernel's CCS-QCD win to.
const demandRounds = 16

// rankState is one rank's memory image on the model node.
type rankState struct {
	id       int
	homeQuad int
	as       *mem.AddrSpace
	ws       *mem.VMA
	heap     mem.Heap
	shm      *mem.VMA

	// memTime is the per-step memory-traffic service time.
	memTime sim.Duration
}

// nodeState is the fully set-up model node.
type nodeState struct {
	ranks []*rankState
	// setup is the untimed initialisation cost (max over ranks).
	setup sim.Duration
	// shmFault is the timed first-touch cost of the MPI shared-memory
	// windows (avoided by --mpol-shm-premap).
	shmFault sim.Duration

	// Columnar (struct-of-arrays) mirrors of the per-rank state the step
	// loop reads every iteration: the hot loop walks these dense slices
	// instead of chasing a *rankState per rank per step. Built once by
	// buildColumns after setup; rankState stays the construction-time
	// view.
	heaps    []mem.Heap
	memTimes []sim.Duration
	// memMax is the maximum of memTimes — step-invariant (memory service
	// time depends only on placement, fixed after setup), so the step
	// loop reads it instead of re-scanning the ranks every timestep.
	memMax sim.Duration
}

// buildColumns populates the columnar mirrors from the per-rank structs.
func (ns *nodeState) buildColumns() {
	ns.heaps = make([]mem.Heap, len(ns.ranks))
	ns.memTimes = make([]sim.Duration, len(ns.ranks))
	ns.memMax = 0
	for i, rs := range ns.ranks {
		ns.heaps[i] = rs.heap
		ns.memTimes[i] = rs.memTime
		if rs.memTime > ns.memMax {
			ns.memMax = rs.memTime
		}
	}
}

// rotateLocalFirst orders domain ids so that the rank's home-quadrant
// domain of each kind comes first — the NUMA-aware placement both LWKs
// implement.
func rotateLocalFirst(ids []int, home int) []int {
	out := make([]int, 0, len(ids))
	for _, id := range ids {
		if id == home {
			out = append(out, id)
		}
	}
	for _, id := range ids {
		if id != home {
			out = append(out, id)
		}
	}
	return out
}

// homeDomains maps a rank's quadrant index onto its local DDR domain and
// the MCDRAM domain nearest to it, for any clustering mode (SNC-4 has four
// of each; quadrant mode one of each).
func homeDomains(node *hw.NodeSpec, quad int) (mcHome, ddrHome int) {
	ddr := node.DomainsOfKind(hw.DDR4)
	ddrHome = ddr[quad%len(ddr)]
	mc := node.DomainsOfKind(hw.MCDRAM)
	mcHome, err := node.NearestDomain(ddrHome, mc)
	if err != nil {
		mcHome = mc[0]
	}
	return mcHome, ddrHome
}

// wsPolicy derives the working-set placement policy for one rank,
// reproducing each kernel's behaviour described in section II-D.
func wsPolicy(k kernel.Kernel, j Job, quad int, wsBytes int64) mem.Policy {
	node := k.Partition().Node
	mcHome, ddrHome := homeDomains(node, quad)
	mc := rotateLocalFirst(node.DomainsOfKind(hw.MCDRAM), mcHome)
	ddr := rotateLocalFirst(node.DomainsOfKind(hw.DDR4), ddrHome)
	pol := k.MapPolicy(mem.VMAAnon)

	if j.ForceDDROnly {
		pol.Domains = ddr
		pol.FallbackDemand = false
		return pol
	}

	switch k.Type() {
	case kernel.TypeLinux:
		switch {
		case fitsInMCDRAM(j):
			// numactl --membind on the MCDRAM domains: no
			// fallback needed because the job is sized to fit.
			pol.Domains = mc
		case node.Mode == hw.Quadrant:
			// In quadrant mode numactl -p can express "prefer
			// MCDRAM, spill to DDR" — the tuning route the paper
			// notes most KNL clusters take.
			pol.Domains = append(append([]int{}, mc...), ddr...)
		default:
			// SNC-4 prevents "prefer all MCDRAM, spill to DDR":
			// the paper runs such jobs from DDR4 only.
			pol.Domains = ddr
		}
	case kernel.TypeMcKernel:
		pol.Domains = append(append([]int{}, mc...), ddr...)
		// McKernel's distinctive fallback: when the preferred NUMA
		// domain cannot back the mapping, switch to demand paging
		// for best-effort placement instead of dividing upfront.
		if k.Caps().Has(kernel.CapDemandPagingFallback) &&
			k.Phys().FreeBytes(mcHome) < wsBytes {
			pol.Demand = true
		}
	case kernel.TypeMOS:
		// Rigid launch-time division respecting NUMA boundaries:
		// local MCDRAM, then local DDR, then the rest.
		rest := append(rotateLocalFirst(mc, mcHome)[1:], rotateLocalFirst(ddr, ddrHome)[1:]...)
		pol.Domains = append([]int{mcHome, ddrHome}, rest...)
	}
	return pol
}

// fitsInMCDRAM reports whether the job's per-node footprint fits the
// 16 GiB of MCDRAM with headroom for heaps and windows.
func fitsInMCDRAM(j Job) bool {
	perNode := j.App.WorkingSetPerRank(j.Nodes) * int64(j.App.RanksPerNode)
	return perNode <= 15*hw.GiB
}

// setupNode builds every rank's address space, working set, heap and MPI
// shared-memory window through the kernel's real memory paths.
func setupNode(k kernel.Kernel, j Job, rng *sim.RNG) (*nodeState, error) {
	app := j.App
	ws := app.WorkingSetPerRank(j.Nodes)
	ns := &nodeState{}
	costs := k.Costs()

	for r := 0; r < app.RanksPerNode; r++ {
		quad := r * 4 / app.RanksPerNode
		rs := &rankState{id: r, homeQuad: quad, as: mem.NewAddrSpace(k.Phys())}
		// Attach the run's sink before any mapping so placement, fault
		// and heap counters cover the whole setup.
		rs.as.SetSink(j.Sink)

		pol := wsPolicy(k, j, quad, ws)
		v, err := rs.as.Map(ws, mem.VMAAnon, pol)
		if err != nil {
			return nil, fmt.Errorf("cluster: rank %d working set: %w", r, err)
		}
		rs.ws = v

		var heapDomains []int
		if j.ForceDDROnly {
			_, ddrHome := homeDomains(k.Partition().Node, quad)
			heapDomains = rotateLocalFirst(k.Partition().Node.DomainsOfKind(hw.DDR4), ddrHome)
		}
		h, err := k.NewHeap(rs.as, app.HeapLimitOrDefault(), heapDomains)
		if err != nil {
			return nil, fmt.Errorf("cluster: rank %d heap: %w", r, err)
		}
		rs.heap = h

		if app.ShmWindowBytes > 0 {
			shmPol := k.MapPolicy(mem.VMAShared)
			node := k.Partition().Node
			mcHome, ddrHome := homeDomains(node, quad)
			mcLocal := rotateLocalFirst(node.DomainsOfKind(hw.MCDRAM), mcHome)
			ddrLocal := rotateLocalFirst(node.DomainsOfKind(hw.DDR4), ddrHome)
			shmPol.Domains = append(append([]int{}, mcLocal...), ddrLocal...)
			if j.ForceDDROnly || (k.Type() == kernel.TypeLinux && !fitsInMCDRAM(j)) {
				// DDR-pinned job (Table I) or a Linux job that
				// cannot express MCDRAM preference in SNC-4.
				shmPol.Domains = ddrLocal
			}
			sv, err := rs.as.Map(app.ShmWindowBytes, mem.VMAShared, shmPol)
			if err != nil {
				return nil, fmt.Errorf("cluster: rank %d shm window: %w", r, err)
			}
			rs.shm = sv
		}
		ns.ranks = append(ns.ranks, rs)
	}

	// First-touch population, interleaved across ranks, hot bytes first
	// (initialisation order follows access frequency in these codes).
	// Watermarks are 2 MiB aligned: sequential first touch populates in
	// huge-page chunks on every kernel (THP on Linux, upfront granules
	// on the LWKs); the interleaving is between ranks, not within pages.
	align2M := func(x int64) int64 {
		const m = int64(hw.Page2M)
		return (x + m - 1) / m * m
	}
	hot := int64(float64(ws) * app.HotFraction)
	for round := 1; round <= demandRounds; round++ {
		for _, rs := range ns.ranks {
			if !rs.ws.DemandActive {
				continue
			}
			if hot > 0 {
				rs.as.Touch(rs.ws, 0, align2M(hot*int64(round)/demandRounds))
			} else {
				rs.as.Touch(rs.ws, 0, align2M(ws*int64(round)/demandRounds))
			}
		}
	}
	if hot > 0 {
		for round := 1; round <= demandRounds; round++ {
			for _, rs := range ns.ranks {
				if rs.ws.DemandActive {
					rs.as.Touch(rs.ws, 0, align2M(hot+(ws-hot)*int64(round)/demandRounds))
				}
			}
		}
	}

	// Untimed setup cost: faults (demand) or page-table population and
	// zeroing (upfront); identical ranks, take the max.
	for _, rs := range ns.ranks {
		var w mem.Work
		w.Faults = rs.ws.Faults
		w.PagesMapped = int64(len(rs.ws.Backings))
		w.ZeroedBytes = rs.ws.Populated
		if c := costs.WorkTime(w); c > ns.setup {
			ns.setup = c
		}
	}

	// MPI shared-memory windows: demand-paged windows fault during the
	// first exchanges — inside the timed phase, and under contention
	// (every rank faults into the handler at once).
	const shmContention = 4
	for _, rs := range ns.ranks {
		if rs.shm == nil {
			continue
		}
		if rs.shm.DemandActive {
			res := rs.as.Touch(rs.shm, 0, rs.shm.Size)
			w := mem.Work{Faults: res.Faults * shmContention, ZeroedBytes: res.BytesPopulated}
			if c := costs.WorkTime(w); c > ns.shmFault {
				ns.shmFault = c
			}
		} else {
			// Premapped: the cost moved into untimed setup.
			w := mem.Work{PagesMapped: int64(len(rs.shm.Backings)), ZeroedBytes: rs.shm.Populated}
			if c := costs.WorkTime(w); c > ns.setup {
				ns.setup += c
			}
		}
	}

	// Derive each rank's per-step memory service time, then hoist the
	// hot-loop state into columnar form.
	for _, rs := range ns.ranks {
		rs.memTime = memTimeFor(k, j, rs)
	}
	ns.buildColumns()
	return ns, nil
}

// contiguityFactor credits physically contiguous backing with up to 4%
// extra effective bandwidth: "An implication of contiguous physical memory
// is better cache performance, similar to techniques such as page
// coloring" (section II-D3). The credit ramps logarithmically from 2 MiB
// extents (none) to 1 GiB extents (full).
func contiguityFactor(avgExtent int64) float64 {
	const (
		lo    = float64(hw.Page2M)
		hi    = float64(hw.Page1G)
		bonus = 0.04
	)
	if avgExtent <= int64(lo) {
		return 1
	}
	f := math.Log(float64(avgExtent)/lo) / math.Log(hi/lo)
	if f > 1 {
		f = 1
	}
	return 1 + bonus*f
}

// memTimeFor computes a rank's per-step memory-traffic time from where its
// pages actually landed: MCDRAM vs DDR4 split (with the hot-data model),
// per-rank bandwidth shares and TLB derating by page size.
func memTimeFor(k kernel.Kernel, j Job, rs *rankState) sim.Duration {
	app := j.App
	traffic := float64(app.MemTrafficPerStep(j.Nodes))
	if traffic <= 0 {
		return 0
	}
	node := k.Partition().Node
	ws := float64(rs.ws.Populated)
	if ws <= 0 {
		// Nothing resident: everything will fault later; treat as DDR.
		ws = float64(rs.ws.Size)
	}

	// Bytes and page mix by kind for the working-set area.
	var mcBytes, ddrBytes float64
	mixByKind := map[hw.MemKind]map[hw.PageSize]int64{
		hw.MCDRAM: {}, hw.DDR4: {},
	}
	for _, b := range rs.ws.Backings {
		d, err := node.Domain(b.Ext.Domain)
		if err != nil {
			continue
		}
		mixByKind[d.Mem.Kind][b.Page] += b.Ext.Size
		if d.Mem.Kind == hw.MCDRAM {
			mcBytes += float64(b.Ext.Size)
		} else {
			ddrBytes += float64(b.Ext.Size)
		}
	}

	// Physical contiguity per kind (average extent size) feeds the
	// cache-benefit credit below.
	type extStat struct{ bytes, count int64 }
	extStats := map[hw.MemKind]extStat{}
	for _, b := range rs.ws.Backings {
		d, err := node.Domain(b.Ext.Domain)
		if err != nil {
			continue
		}
		e := extStats[d.Mem.Kind]
		e.bytes += b.Ext.Size
		e.count++
		extStats[d.Mem.Kind] = e
	}

	// Per-rank bandwidth share of each kind, TLB-derated and credited
	// for physical contiguity.
	bwShare := func(kind hw.MemKind) float64 {
		var total float64
		var dev hw.MemDeviceSpec
		for _, d := range node.Domains {
			if d.Mem.Kind == kind {
				total += d.Mem.StreamBandwidth
				dev = d.Mem
			}
		}
		share := total / float64(app.RanksPerNode)
		kindBytes := int64(0)
		frac := map[hw.PageSize]float64{}
		for _, b := range mixByKind[kind] {
			kindBytes += b
		}
		if kindBytes > 0 {
			for p, b := range mixByKind[kind] {
				frac[p] = float64(b) / float64(kindBytes)
			}
			derate := node.TLB.EffectiveBandwidth(dev, kindBytes, frac) / dev.StreamBandwidth
			share *= derate
		}
		if e := extStats[kind]; e.count > 0 {
			share *= contiguityFactor(e.bytes / e.count)
		}
		return share * float64(hw.GiB) // bytes/s
	}
	bwMC := bwShare(hw.MCDRAM)
	bwDDR := bwShare(hw.DDR4)

	mcFrac := mcBytes / ws
	if mcFrac > 1 {
		mcFrac = 1
	}

	if app.HotFraction <= 0 {
		t := traffic * (mcFrac/bwMC + (1-mcFrac)/bwDDR)
		if mcBytes == 0 {
			t = traffic / bwDDR
		}
		return sim.DurationOf(t)
	}

	// Hot-data model: hot bytes receive HotTraffic of the traffic.
	hot := app.HotFraction * float64(rs.ws.Size)
	cold := float64(rs.ws.Size) - hot
	var hotMCFrac, coldMCFrac float64
	if rs.ws.DemandActive {
		// Hot-first touch order: MCDRAM filled with hot bytes.
		hotInMC := mcBytes
		if hotInMC > hot {
			hotInMC = hot
		}
		hotMCFrac = hotInMC / hot
		if cold > 0 {
			coldMCFrac = (mcBytes - hotInMC) / cold
		}
	} else {
		// Upfront address-ordered placement with a modest hot bias.
		hotMCFrac = mcFrac * upfrontHotBias
		if hotMCFrac > 1 {
			hotMCFrac = 1
		}
		if cold > 0 {
			coldMCFrac = (mcBytes - hotMCFrac*hot) / cold
			if coldMCFrac < 0 {
				coldMCFrac = 0
			}
			if coldMCFrac > 1 {
				coldMCFrac = 1
			}
		}
	}
	hotT := app.HotTraffic * traffic
	coldT := traffic - hotT
	t := hotT*(hotMCFrac/bwMC+(1-hotMCFrac)/bwDDR) +
		coldT*(coldMCFrac/bwMC+(1-coldMCFrac)/bwDDR)
	return sim.DurationOf(t)
}
