// Package metrics is the simulator's derived-metrics layer: per-run
// registries of log-bucketed latency histograms, per-rank distributions,
// per-phase virtual-time accounting and gauges, fed from the trace.Sink
// emission sites through the trace.Observer hook.
//
// The contract matches internal/trace exactly, because a registry rides the
// same sink:
//
//  1. Metrics are passive. Recording never draws randomness, never feeds
//     back into the model; run digests are byte-identical with metrics off
//     or on (determinism_test.go).
//  2. Registries are per-run state — created next to the run's seed, never
//     package-global, never shared across internal/par worker closures.
//     mklint's parshare analyzer enforces both.
//  3. Off is free. The nil *Registry records nothing, and every emission
//     site reaches it through the sink's one pointer test.
//
// Histograms use HDR-style log-linear bucketing (see Histogram) so a
// nanosecond-resolution detour and a millisecond daemon tail fit the same
// fixed-resolution structure — the paper's FWQ story is exactly such a
// spread. All quantiles derive from the internal/stats Rank rule, so an
// mkprof report and a figure table can never disagree on the same data.
package metrics

import (
	"math"
	"math/bits"

	"mklite/internal/stats"
)

// subBits fixes the histogram resolution: 1<<subBits sub-buckets per
// power-of-two octave, i.e. a worst-case relative error of 1/2^subBits
// (~3%) — ample for latency percentiles, tiny enough that the full int64
// range needs fewer than 2k buckets.
const (
	subBits    = 5
	subBuckets = 1 << subBits
)

// bucketIndex maps a non-negative value to its bucket. Values below
// subBuckets*2 get exact width-1 buckets; above that, each octave [2^e,
// 2^e+1) splits into subBuckets equal slices.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < subBuckets {
		return int(u)
	}
	exp := bits.Len64(u) - subBits - 1
	return exp<<subBits + int(u>>uint(exp))
}

// bucketBounds is bucketIndex's inverse: the half-open value range [lo, hi)
// of bucket i.
func bucketBounds(i int) (lo, hi int64) {
	if i < subBuckets {
		return int64(i), int64(i) + 1
	}
	exp := uint(i/subBuckets - 1)
	sub := int64(i) - int64(exp)*subBuckets
	return sub << exp, (sub + 1) << exp
}

// Histogram is a log-linear latency histogram: fixed ~3% relative
// resolution across the whole non-negative int64 range, constant-time
// recording, exact count/sum/min/max. Like every metrics type it is
// per-run, single-goroutine state; the nil receiver records nothing and
// reports an empty distribution.
type Histogram struct {
	counts []int64
	total  int64
	sum    int64
	min    int64
	max    int64
}

// Record adds one sample. Negative values clamp to zero — virtual-time
// durations are never negative, so a negative sample is already a caller
// bug upstream of the histogram.
func (h *Histogram) Record(v int64) { h.RecordN(v, 1) }

// RecordN adds n identical samples (n <= 0 records nothing).
func (h *Histogram) RecordN(v int64, n int64) {
	if h == nil || n <= 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	i := bucketIndex(v)
	if i >= len(h.counts) {
		grown := make([]int64, i+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[i] += n
	if h.total == 0 || v < h.min {
		h.min = v
	}
	if h.total == 0 || v > h.max {
		h.max = v
	}
	h.total += n
	h.sum += v * n
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.total
}

// Sum returns the sum of all recorded samples.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Min returns the smallest recorded sample (0 when empty).
func (h *Histogram) Min() int64 {
	if h == nil || h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample (0 when empty).
func (h *Histogram) Max() int64 {
	if h == nil || h.total == 0 {
		return 0
	}
	return h.max
}

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil || h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Percentile returns the p-th percentile (0..100) under the shared
// stats.Rank rule, with samples inside a bucket spread evenly from its
// lower bound (stats.BucketPercentile), clamped into the exact observed
// [Min, Max]. An empty histogram returns 0.
func (h *Histogram) Percentile(p float64) float64 {
	if h == nil || h.total == 0 {
		return 0
	}
	v := stats.BucketPercentile(h.total, p, len(h.counts),
		func(i int) int64 { return h.counts[i] },
		func(i int) (float64, float64) {
			lo, hi := bucketBounds(i)
			return float64(lo), float64(hi)
		})
	return math.Min(math.Max(v, float64(h.min)), float64(h.max))
}

// Merge adds every sample of o into h. Merging is associative and
// commutative — bucket counts, totals and sums are plain additions, min/max
// plain extrema — so index-ordered par merging yields the same histogram as
// any other order (TestMergeAssociative pins this).
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil || o.total == 0 {
		return
	}
	if len(o.counts) > len(h.counts) {
		grown := make([]int64, len(o.counts))
		copy(grown, h.counts)
		h.counts = grown
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.total == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.total == 0 || o.max > h.max {
		h.max = o.max
	}
	h.total += o.total
	h.sum += o.sum
}

// Buckets calls fn for every non-empty bucket in value order.
func (h *Histogram) Buckets(fn func(lo, hi, count int64)) {
	if h == nil {
		return
	}
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		lo, hi := bucketBounds(i)
		fn(lo, hi, c)
	}
}
