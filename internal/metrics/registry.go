package metrics

import (
	"maps"
	"slices"
)

// Registry is one run's metrics destination: named latency histograms,
// per-rank histogram families, per-phase virtual-time accumulators and
// gauges. It implements trace.Observer, so attaching it to the run's sink
// (trace.NewSinkObs) feeds it from every instrumented emission site.
//
// A Registry is per-run, single-goroutine state — the same contract as
// *trace.Sink, enforced by the same mklint parshare analyzer: never a
// package-level variable, never captured across internal/par worker
// closures. Fan-outs create one registry per job inside the closure and
// Merge in index order after the join. The nil *Registry is the off switch:
// every method is nil-receiver safe and records nothing.
type Registry struct {
	hists  map[string]*Histogram
	ranked map[string][]*Histogram
	phases map[string]int64
	gauges map[string]int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		hists:  map[string]*Histogram{},
		ranked: map[string][]*Histogram{},
		phases: map[string]int64{},
		gauges: map[string]int64{},
	}
}

// Observe records one sample of the named distribution (trace.Observer).
func (r *Registry) Observe(name string, v int64) {
	if r == nil {
		return
	}
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	h.Record(v)
}

// ObserveRank records one sample of the named distribution attributed to a
// rank (trace.Observer). Ranks are dense small integers (MPI ranks, node
// cores); negative ranks are ignored.
func (r *Registry) ObserveRank(name string, rank int, v int64) {
	if r == nil || rank < 0 {
		return
	}
	hs := r.ranked[name]
	for len(hs) <= rank {
		hs = append(hs, &Histogram{})
	}
	r.ranked[name] = hs
	hs[rank].Record(v)
}

// AddPhase accumulates d virtual nanoseconds into the named phase
// (trace.Observer).
func (r *Registry) AddPhase(name string, d int64) {
	if r == nil {
		return
	}
	r.phases[name] += d
}

// SetGauge sets the named gauge to its latest value (trace.Observer).
func (r *Registry) SetGauge(name string, v int64) {
	if r == nil {
		return
	}
	r.gauges[name] = v
}

// Histogram returns the named distribution (nil when never observed).
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	return r.hists[name]
}

// Ranked returns the named per-rank family (nil when never observed).
// Index i is rank i's histogram; ranks that never recorded hold empty
// histograms, not nils.
func (r *Registry) Ranked(name string) []*Histogram {
	if r == nil {
		return nil
	}
	return r.ranked[name]
}

// Phase returns the accumulated virtual nanoseconds of the named phase.
func (r *Registry) Phase(name string) int64 {
	if r == nil {
		return 0
	}
	return r.phases[name]
}

// Gauge returns the named gauge's latest value.
func (r *Registry) Gauge(name string) int64 {
	if r == nil {
		return 0
	}
	return r.gauges[name]
}

// HistNames returns the distribution names, sorted.
func (r *Registry) HistNames() []string {
	if r == nil {
		return nil
	}
	return slices.Sorted(maps.Keys(r.hists))
}

// Merge folds every observation of o into r. Histograms and phases add
// (associative, order-free); per-rank families merge rank-wise, growing as
// needed; gauges are latest-value state, so o's value wins — merge in index
// order (par's result order) to keep the outcome schedule-independent.
func (r *Registry) Merge(o *Registry) {
	if r == nil || o == nil {
		return
	}
	for _, name := range slices.Sorted(maps.Keys(o.hists)) {
		h := r.hists[name]
		if h == nil {
			h = &Histogram{}
			r.hists[name] = h
		}
		h.Merge(o.hists[name])
	}
	for _, name := range slices.Sorted(maps.Keys(o.ranked)) {
		ohs := o.ranked[name]
		hs := r.ranked[name]
		for len(hs) < len(ohs) {
			hs = append(hs, &Histogram{})
		}
		r.ranked[name] = hs
		for i, oh := range ohs {
			hs[i].Merge(oh)
		}
	}
	for _, name := range slices.Sorted(maps.Keys(o.phases)) {
		r.phases[name] += o.phases[name]
	}
	for _, name := range slices.Sorted(maps.Keys(o.gauges)) {
		r.gauges[name] = o.gauges[name]
	}
}
