package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"mklite/internal/trace"
)

// TestBucketBoundsRoundTrip: every value must land in a bucket whose bounds
// contain it, across the exact region, the octave edges and the high range.
func TestBucketBoundsRoundTrip(t *testing.T) {
	values := []int64{0, 1, 2, 30, 31, 32, 33, 62, 63, 64, 65, 66,
		127, 128, 129, 1023, 1024, 1025, 1<<20 - 1, 1 << 20, 1<<20 + 1,
		1<<40 + 12345, 1<<62 + 99, math.MaxInt64}
	for _, v := range values {
		i := bucketIndex(v)
		lo, hi := bucketBounds(i)
		// The top octave's hi overflows to negative; treat it as +inf.
		if v < lo || (hi > lo && v >= hi) {
			t.Fatalf("value %d in bucket %d with bounds [%d, %d)", v, i, lo, hi)
		}
	}
	// Buckets tile the value axis: each bucket's hi is the next one's lo.
	for i := 0; i < 500; i++ {
		_, hi := bucketBounds(i)
		lo, _ := bucketBounds(i + 1)
		if hi != lo {
			t.Fatalf("gap between buckets %d and %d: hi %d, next lo %d", i, i+1, hi, lo)
		}
	}
	// Relative resolution: bucket width is at most ~1/32 of the value.
	for _, v := range values[5:] {
		lo, hi := bucketBounds(bucketIndex(v))
		if hi > lo && float64(hi-lo) > float64(lo)/float64(subBuckets)+1 {
			t.Fatalf("bucket [%d, %d) wider than the %d-sub-bucket resolution", lo, hi, subBuckets)
		}
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram reports non-zero aggregates")
	}
	if got := h.Percentile(50); got != 0 {
		t.Fatalf("empty Percentile(50) = %v, want 0", got)
	}
	// The nil histogram is the off switch: everything is a no-op.
	var nh *Histogram
	nh.Record(5)
	if nh.Count() != 0 || nh.Percentile(99) != 0 {
		t.Fatal("nil histogram recorded something")
	}
	h.Buckets(func(lo, hi, c int64) { t.Fatal("empty histogram has buckets") })
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Record(777)
	for _, p := range []float64{0, 50, 99.9, 100} {
		if got := h.Percentile(p); got != 777 {
			t.Fatalf("single-sample Percentile(%v) = %v, want 777", p, got)
		}
	}
	if h.Count() != 1 || h.Sum() != 777 || h.Min() != 777 || h.Max() != 777 {
		t.Fatalf("single-sample aggregates: count=%d sum=%d min=%d max=%d",
			h.Count(), h.Sum(), h.Min(), h.Max())
	}
}

func TestHistogramNegativeClampsToZero(t *testing.T) {
	var h Histogram
	h.Record(-5)
	if h.Count() != 1 || h.Min() != 0 || h.Max() != 0 || h.Sum() != 0 {
		t.Fatalf("negative sample not clamped: count=%d min=%d max=%d sum=%d",
			h.Count(), h.Min(), h.Max(), h.Sum())
	}
}

func TestHistogramPercentileAccuracy(t *testing.T) {
	// 1..1000 exactly once each: percentiles must match the exact sample
	// percentile to within the ~3% bucket resolution.
	var h Histogram
	for v := int64(1); v <= 1000; v++ {
		h.Record(v)
	}
	for _, p := range []float64{1, 25, 50, 90, 99, 99.9, 100} {
		got := h.Percentile(p)
		exact := 1 + p/100*999
		if rel := math.Abs(got-exact) / exact; rel > 1.0/subBuckets {
			t.Fatalf("Percentile(%v) = %v, exact %v, relative error %v", p, got, exact, rel)
		}
	}
	if h.Percentile(100) != 1000 {
		t.Fatalf("p100 = %v, want the exact max 1000", h.Percentile(100))
	}
	if h.Percentile(0) != 1 {
		t.Fatalf("p0 = %v, want the exact min 1", h.Percentile(0))
	}
}

func TestMergeAssociative(t *testing.T) {
	build := func(vals ...int64) *Histogram {
		h := &Histogram{}
		for _, v := range vals {
			h.Record(v)
		}
		return h
	}
	a := func() *Histogram { return build(1, 5, 1000) }
	b := func() *Histogram { return build(32, 33, 1<<20) }
	c := func() *Histogram { return build(7) }

	// (a+b)+c
	ab := a()
	ab.Merge(b())
	ab.Merge(c())
	// a+(b+c)
	bc := b()
	bc.Merge(c())
	abc := a()
	abc.Merge(bc)
	// c+(b+a) — commutativity too
	ba := b()
	ba.Merge(a())
	cba := c()
	cba.Merge(ba)

	for _, o := range []*Histogram{abc, cba} {
		if o.Count() != ab.Count() || o.Sum() != ab.Sum() || o.Min() != ab.Min() || o.Max() != ab.Max() {
			t.Fatal("merge order changed the aggregates")
		}
		for _, p := range []float64{0, 50, 99, 100} {
			if o.Percentile(p) != ab.Percentile(p) {
				t.Fatalf("merge order changed Percentile(%v)", p)
			}
		}
	}
	// Merging into an empty histogram preserves min.
	e := &Histogram{}
	e.Merge(build(9))
	if e.Min() != 9 || e.Max() != 9 || e.Count() != 1 {
		t.Fatal("merge into empty lost the sample")
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	r.Observe("x", 1)
	r.ObserveRank("x", 0, 1)
	r.AddPhase("x", 1)
	r.SetGauge("x", 1)
	r.Merge(NewRegistry())
	if r.Histogram("x") != nil || r.Ranked("x") != nil || r.Phase("x") != 0 || r.Gauge("x") != 0 {
		t.Fatal("nil registry returned state")
	}
	if rep := r.Report(); rep.Schema != Schema || len(rep.Hists) != 0 {
		t.Fatal("nil registry report not empty")
	}
}

func TestRegistryImplementsObserver(t *testing.T) {
	var _ trace.Observer = (*Registry)(nil)
	r := NewRegistry()
	s := trace.NewSinkObs(nil, nil, r)
	if !s.Observing() {
		t.Fatal("sink does not see the registry")
	}
	s.Observe("offload.latency_ns", 1500)
	s.ObserveRank("detour_ns", 2, 900)
	s.Phase("compute", 10_000)
	s.Gauge("heap.peak_bytes", 1<<20)
	if r.Histogram("offload.latency_ns").Count() != 1 {
		t.Fatal("Observe lost")
	}
	if hs := r.Ranked("detour_ns"); len(hs) != 3 || hs[2].Count() != 1 || hs[0].Count() != 0 {
		t.Fatal("ObserveRank family shape wrong")
	}
	if r.Phase("compute") != 10_000 || r.Gauge("heap.peak_bytes") != 1<<20 {
		t.Fatal("phase/gauge lost")
	}
}

func TestRegistryMergeRankedAndGauges(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.ObserveRank("d", 0, 10)
	b.ObserveRank("d", 3, 40)
	a.SetGauge("g", 1)
	b.SetGauge("g", 2)
	a.AddPhase("p", 5)
	b.AddPhase("p", 7)
	a.Merge(b)
	if hs := a.Ranked("d"); len(hs) != 4 || hs[0].Count() != 1 || hs[3].Count() != 1 {
		t.Fatal("rank-wise merge wrong")
	}
	if a.Gauge("g") != 2 {
		t.Fatal("gauge merge must take the merged-in (latest) value")
	}
	if a.Phase("p") != 12 {
		t.Fatal("phase merge must add")
	}
}

func TestReportRoundTripAndRender(t *testing.T) {
	r := NewRegistry()
	r.AddPhase("compute", 3_000_000_000)
	r.AddPhase("noise", 1_000_000_000)
	r.SetGauge("ranks", 64)
	for v := int64(100); v <= 100_000; v *= 10 {
		r.Observe("detour_ns", v)
	}
	r.ObserveRank("offload_ns", 1, 2_000)

	var buf bytes.Buffer
	rep := r.Report()
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if back.Hists["detour_ns"].Count != 4 || back.Hists["detour_ns"].Max != 100_000 {
		t.Fatalf("round trip lost the histogram: %+v", back.Hists["detour_ns"])
	}
	if back.Phases["compute"] != 3_000_000_000 || back.Gauges["ranks"] != 64 {
		t.Fatal("round trip lost phases/gauges")
	}
	if len(back.Ranked["offload_ns"]) != 2 {
		t.Fatal("round trip lost the ranked family")
	}
	// Rendering is deterministic and mentions every section.
	text := rep.Render()
	if text != rep.Render() {
		t.Fatal("Render is not deterministic")
	}
	for _, want := range []string{"phases", "compute", "75.0%", "distributions", "detour_ns", "per-rank: offload_ns", "gauges"} {
		if !strings.Contains(text, want) {
			t.Fatalf("render missing %q:\n%s", want, text)
		}
	}
	if _, err := ReadReport([]byte(`{"schema":"mklite-metrics/v0"}`)); err == nil {
		t.Fatal("wrong schema accepted")
	}
}

func TestDiff(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.AddPhase("compute", 100)
	b.AddPhase("compute", 150)
	a.Observe("d", 10)
	b.Observe("d", 10)
	b.Observe("d", 1000)
	out := Diff(a.Report(), b.Report())
	if !strings.Contains(out, "compute") || !strings.Contains(out, "+50.0%") {
		t.Fatalf("diff missing phase delta:\n%s", out)
	}
	if !strings.Contains(out, "1 -> 2") {
		t.Fatalf("diff missing count delta:\n%s", out)
	}
	if same := Diff(a.Report(), a.Report()); !strings.Contains(same, "no metric differences") {
		t.Fatalf("self-diff not empty:\n%s", same)
	}
}

func TestFolded(t *testing.T) {
	ev := func(ph byte, ts int64, tid int32, name string) trace.Event {
		return trace.Event{Name: name, Ph: ph, TS: ts, Tid: tid}
	}
	events := []trace.Event{
		ev(trace.PhBegin, 0, 0, "step"),
		ev(trace.PhBegin, 0, 0, "compute"),
		ev(trace.PhEnd, 600, 0, "compute"),
		ev(trace.PhBegin, 600, 0, "noise"),
		ev(trace.PhEnd, 1000, 0, "noise"),
		ev(trace.PhEnd, 1000, 0, "step"),
		// A second lane interleaved with the first.
		ev(trace.PhBegin, 100, 1, "compute"),
		ev(trace.PhEnd, 400, 1, "compute"),
	}
	got := Folded(events)
	want := "pid0/tid0;step;compute 600\n" +
		"pid0/tid0;step;noise 400\n" +
		"pid0/tid1;compute 300\n"
	if got != want {
		t.Fatalf("Folded:\n%s\nwant:\n%s", got, want)
	}
	// "step" has zero self time (fully covered by children) so it emits no
	// line of its own — flame viewers reconstruct it from the stack paths.
	if strings.Contains(got, "step 0") || strings.Contains(got, "step \n") {
		t.Fatal("zero-weight frame emitted")
	}
}

func TestFoldedLenient(t *testing.T) {
	events := []trace.Event{
		{Name: "orphan", Ph: trace.PhEnd, TS: 10},           // no open span
		{Name: "open", Ph: trace.PhBegin, TS: 20},           // never closed
		{Name: "point", Ph: trace.PhInstant, TS: 30},        // no duration
		{Name: "ctr", Ph: trace.PhCounter, TS: 30},          // no duration
		{Name: "ok", Ph: trace.PhBegin, TS: 40, Tid: 2},     //
		{Name: "mismatch", Ph: trace.PhEnd, TS: 50, Tid: 2}, // wrong name
		{Name: "ok", Ph: trace.PhEnd, TS: 60, Tid: 2},       //
	}
	got := Folded(events)
	if got != "pid0/tid2;ok 20\n" {
		t.Fatalf("lenient folding produced:\n%q", got)
	}
}

func TestFoldedFromJSON(t *testing.T) {
	e := trace.NewEvents(0)
	s := trace.NewSink(nil, e)
	s.Begin(0, 0, 0, "step", "cluster")
	s.Begin(1000, 0, 0, "compute", "cluster")
	s.End(251_000, 0, 0, "compute", "cluster")
	s.End(252_000, 0, 0, "step", "cluster")
	folded, err := FoldedFromJSON(e.JSON())
	if err != nil {
		t.Fatal(err)
	}
	want := "pid0/tid0;step 2000\npid0/tid0;step;compute 250000\n"
	if folded != want {
		t.Fatalf("FoldedFromJSON:\n%q\nwant:\n%q", folded, want)
	}
	if _, err := FoldedFromJSON([]byte(`{"traceEvents":[],"otherData":{"schema":"x"}}`)); err == nil {
		t.Fatal("wrong schema accepted")
	}
}
