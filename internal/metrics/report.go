package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"maps"
	"slices"
	"strings"

	"mklite/internal/stats"
)

// Schema versions the metrics report format and its key namespace. Bump when
// a field is renamed or its meaning changes; mkprof diff refuses to compare
// files with different schemas.
const Schema = "mklite-metrics/v1"

// BucketCount is one non-empty histogram bucket: count samples in [Lo, Hi).
type BucketCount struct {
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	Count int64 `json:"count"`
}

// HistReport is one distribution's export: exact count/sum/min/max, the
// headline percentiles under the shared stats.Rank rule, and the non-empty
// buckets for re-analysis.
type HistReport struct {
	Count int64         `json:"count"`
	Sum   int64         `json:"sum"`
	Min   int64         `json:"min"`
	Max   int64         `json:"max"`
	P50   float64       `json:"p50"`
	P90   float64       `json:"p90"`
	P99   float64       `json:"p99"`
	P999  float64       `json:"p99_9"`
	Bkts  []BucketCount `json:"buckets,omitempty"`
}

// Report is the schema-versioned export of one registry: the shape mkprof
// writes, reads, renders and diffs. encoding/json sorts map keys, so the
// bytes are deterministic.
type Report struct {
	Schema string                  `json:"schema"`
	Phases map[string]int64        `json:"phases,omitempty"`
	Gauges map[string]int64        `json:"gauges,omitempty"`
	Hists  map[string]HistReport   `json:"histograms,omitempty"`
	Ranked map[string][]HistReport `json:"ranked,omitempty"`
}

func histReport(h *Histogram) HistReport {
	rep := HistReport{
		Count: h.Count(),
		Sum:   h.Sum(),
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Percentile(50),
		P90:   h.Percentile(90),
		P99:   h.Percentile(99),
		P999:  h.Percentile(99.9),
	}
	h.Buckets(func(lo, hi, count int64) {
		rep.Bkts = append(rep.Bkts, BucketCount{Lo: lo, Hi: hi, Count: count})
	})
	return rep
}

// Report exports the registry. A nil registry exports an empty (but valid)
// report.
func (r *Registry) Report() *Report {
	rep := &Report{Schema: Schema}
	if r == nil {
		return rep
	}
	if len(r.phases) > 0 {
		rep.Phases = maps.Clone(r.phases)
	}
	if len(r.gauges) > 0 {
		rep.Gauges = maps.Clone(r.gauges)
	}
	for name, h := range r.hists {
		if rep.Hists == nil {
			rep.Hists = map[string]HistReport{}
		}
		rep.Hists[name] = histReport(h)
	}
	for name, hs := range r.ranked {
		if rep.Ranked == nil {
			rep.Ranked = map[string][]HistReport{}
		}
		rows := make([]HistReport, len(hs))
		for i, h := range hs {
			rows[i] = histReport(h)
		}
		rep.Ranked[name] = rows
	}
	return rep
}

// WriteJSON writes the schema-versioned report.
func (rep *Report) WriteJSON(w io.Writer) error {
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	_, err = w.Write(out)
	return err
}

// ReadReport parses a report produced by WriteJSON, checking the schema.
func ReadReport(data []byte) (*Report, error) {
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("metrics: parsing report: %w", err)
	}
	if rep.Schema != Schema {
		return nil, fmt.Errorf("metrics: report schema %q, want %q", rep.Schema, Schema)
	}
	return &rep, nil
}

// ns formats a nanosecond quantity for the text tables: microseconds with
// enough digits that sub-microsecond detours stay visible.
func ns(v float64) string { return fmt.Sprintf("%.3f", v/1e3) }

// tailRatio is the tables' distribution-shape column: p99.9 over p50, the
// paper's Linux-vs-LWK noise fingerprint (a near-1 ratio is a tight
// distribution, a large one a heavy tail).
func tailRatio(rep HistReport) string {
	if rep.P50 == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fx", rep.P999/rep.P50)
}

// histRow adds one table row for rep. The unit follows family, not label:
// durations (the "_ns" namespace) render in microseconds, everything else
// (message counts, page counts) renders raw. Per-rank tables label rows
// with the rank index but still carry their family's unit.
func histRow(tb *stats.Table, label, family string, rep HistReport) {
	val := func(v float64) string { return fmt.Sprintf("%.0f", v) }
	if strings.HasSuffix(family, "_ns") {
		val = ns
	}
	tb.AddRow(label,
		fmt.Sprintf("%d", rep.Count),
		val(float64(rep.Min)), val(rep.P50), val(rep.P90), val(rep.P99),
		val(rep.P999), val(float64(rep.Max)), tailRatio(rep))
}

// unitSuffix is the per-rank section-header unit tag for a family name.
func unitSuffix(family string) string {
	if strings.HasSuffix(family, "_ns") {
		return " (us)"
	}
	return ""
}

// Render formats the report as aligned text tables: the per-phase virtual-
// time breakdown, the latency distributions with their headline percentiles
// (in microseconds), the per-rank families and the gauges.
func (rep *Report) Render() string {
	var b strings.Builder
	if len(rep.Phases) > 0 {
		var total int64
		for _, v := range rep.Phases {
			total += v
		}
		b.WriteString("-- phases (virtual time) --\n")
		tb := stats.NewTable("phase", "seconds", "share")
		for _, name := range slices.Sorted(maps.Keys(rep.Phases)) {
			v := rep.Phases[name]
			share := "-"
			if total > 0 {
				share = fmt.Sprintf("%.1f%%", float64(v)/float64(total)*100)
			}
			tb.AddRow(name, fmt.Sprintf("%.6f", float64(v)/1e9), share)
		}
		tb.AddRow("total", fmt.Sprintf("%.6f", float64(total)/1e9), "100.0%")
		b.WriteString(tb.Render())
	}
	if len(rep.Hists) > 0 {
		b.WriteString("-- distributions (durations in us, counts raw) --\n")
		tb := stats.NewTable("distribution", "count", "min", "p50", "p90", "p99", "p99.9", "max", "p99.9/p50")
		for _, name := range slices.Sorted(maps.Keys(rep.Hists)) {
			histRow(tb, name, name, rep.Hists[name])
		}
		b.WriteString(tb.Render())
	}
	for _, name := range slices.Sorted(maps.Keys(rep.Ranked)) {
		fmt.Fprintf(&b, "-- per-rank: %s%s --\n", name, unitSuffix(name))
		tb := stats.NewTable("rank", "count", "min", "p50", "p90", "p99", "p99.9", "max", "p99.9/p50")
		for i, row := range rep.Ranked[name] {
			histRow(tb, fmt.Sprintf("%d", i), name, row)
		}
		b.WriteString(tb.Render())
	}
	if len(rep.Gauges) > 0 {
		b.WriteString("-- gauges --\n")
		tb := stats.NewTable("gauge", "value")
		for _, name := range slices.Sorted(maps.Keys(rep.Gauges)) {
			tb.AddRow(name, fmt.Sprintf("%d", rep.Gauges[name]))
		}
		b.WriteString(tb.Render())
	}
	if b.Len() == 0 {
		return "(empty metrics report)\n"
	}
	return b.String()
}

// Diff renders the comparison of two reports: phases whose accumulated time
// moved, and distributions whose count or tail percentiles moved. Rows are
// sorted by name; identical entries are omitted.
func Diff(oldR, newR *Report) string {
	var b strings.Builder
	phaseKeys := map[string]bool{}
	for k := range oldR.Phases {
		phaseKeys[k] = true
	}
	for k := range newR.Phases {
		phaseKeys[k] = true
	}
	var ptb *stats.Table
	for _, k := range slices.Sorted(maps.Keys(phaseKeys)) {
		o, n := oldR.Phases[k], newR.Phases[k]
		if o == n {
			continue
		}
		if ptb == nil {
			ptb = stats.NewTable("phase", "old s", "new s", "delta")
		}
		delta := "-"
		if o != 0 {
			delta = fmt.Sprintf("%+.1f%%", (float64(n)-float64(o))/float64(o)*100)
		}
		ptb.AddRow(k, fmt.Sprintf("%.6f", float64(o)/1e9), fmt.Sprintf("%.6f", float64(n)/1e9), delta)
	}
	if ptb != nil {
		b.WriteString("-- phase deltas --\n")
		b.WriteString(ptb.Render())
	}
	histKeys := map[string]bool{}
	for k := range oldR.Hists {
		histKeys[k] = true
	}
	for k := range newR.Hists {
		histKeys[k] = true
	}
	var htb *stats.Table
	for _, k := range slices.Sorted(maps.Keys(histKeys)) {
		o, n := oldR.Hists[k], newR.Hists[k]
		if o.Count == n.Count && o.P50 == n.P50 && o.P999 == n.P999 && o.Max == n.Max {
			continue
		}
		if htb == nil {
			htb = stats.NewTable("distribution", "count", "p50 (us)", "p99.9 (us)", "max (us)")
		}
		htb.AddRow(k,
			fmt.Sprintf("%d -> %d", o.Count, n.Count),
			fmt.Sprintf("%s -> %s", ns(o.P50), ns(n.P50)),
			fmt.Sprintf("%s -> %s", ns(o.P999), ns(n.P999)),
			fmt.Sprintf("%s -> %s", ns(float64(o.Max)), ns(float64(n.Max))))
	}
	if htb != nil {
		b.WriteString("-- distribution deltas --\n")
		b.WriteString(htb.Render())
	}
	if b.Len() == 0 {
		return "(no metric differences)\n"
	}
	return b.String()
}
