package metrics

import (
	"fmt"
	"maps"
	"slices"
	"strings"

	"mklite/internal/trace"
)

// Folded converts a run's balanced B/E trace spans into Brendan Gregg's
// collapsed-stack format — one line per unique span stack,
//
//	pid0/tid0;step;compute 123456
//
// weighted by virtual-nanosecond self time (a span's duration minus its
// children's), ready for speedscope, inferno or flamegraph.pl. Lines are
// emitted sorted, so the export is byte-deterministic.
//
// The conversion is lenient the same way trace.Validate is strict: an E
// with no matching open span (a ring-evicted partner) is skipped, and spans
// still open at the end contribute nothing. Run trace.Validate first when
// orphans should be an error. Instant and counter events carry no duration
// and are ignored.
func Folded(events []trace.Event) string {
	type lane struct{ pid, tid int32 }
	type frame struct {
		name      string
		start     int64
		childTime int64
	}
	stacks := map[lane][]frame{}
	weights := map[string]int64{}

	for _, ev := range events {
		l := lane{ev.Pid, ev.Tid}
		switch ev.Ph {
		case trace.PhBegin:
			stacks[l] = append(stacks[l], frame{name: ev.Name, start: ev.TS})
		case trace.PhEnd:
			st := stacks[l]
			if len(st) == 0 || st[len(st)-1].name != ev.Name {
				continue // orphaned by ring eviction
			}
			top := st[len(st)-1]
			stacks[l] = st[:len(st)-1]
			dur := ev.TS - top.start
			if dur < 0 {
				dur = 0
			}
			self := dur - top.childTime
			if self < 0 {
				self = 0
			}
			var key strings.Builder
			fmt.Fprintf(&key, "pid%d/tid%d", l.pid, l.tid)
			for _, f := range stacks[l] {
				key.WriteByte(';')
				key.WriteString(f.name)
			}
			key.WriteByte(';')
			key.WriteString(top.name)
			weights[key.String()] += self
			if n := len(stacks[l]); n > 0 {
				stacks[l][n-1].childTime += dur
			}
		}
	}

	var b strings.Builder
	for _, k := range slices.Sorted(maps.Keys(weights)) {
		if weights[k] == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s %d\n", k, weights[k])
	}
	return b.String()
}

// FoldedFromJSON parses a Chrome trace-event export (an mktrace/mkrun
// .trace.json artifact) and folds it. The schema check rides
// trace.ParseEvents.
func FoldedFromJSON(data []byte) (string, error) {
	events, _, err := trace.ParseEvents(data)
	if err != nil {
		return "", err
	}
	return Folded(events), nil
}
