package hw

import (
	"maps"
	"slices"
)

// TLBSpec models the translation lookaside buffer's reach per page size.
// The paper attributes part of the LWK advantage to "aggressive" large-page
// use; this model turns page-size choices made by the memory managers into a
// throughput factor, which is how that advantage reaches the workload
// models.
type TLBSpec struct {
	Entries4K int
	Entries2M int
	Entries1G int
	// MissCostNs is the average page-walk cost of a TLB miss in
	// nanoseconds.
	MissCostNs float64
	// AccessesPerByte approximates how many distinct memory accesses a
	// streaming workload issues per byte of working set traversal; with
	// 64-byte cache lines this is 1/64.
	AccessesPerByte float64
}

// Reach returns the bytes of address space the TLB covers for the given
// page size.
func (t TLBSpec) Reach(p PageSize) int64 {
	switch p {
	case Page4K:
		return int64(t.Entries4K) * int64(p)
	case Page2M:
		return int64(t.Entries2M) * int64(p)
	case Page1G:
		return int64(t.Entries1G) * int64(p)
	default:
		return 0
	}
}

// MissRate estimates the per-access TLB miss probability for a streaming
// traversal of workingSet bytes mapped with the given page size.
//
// The model: while the working set fits in TLB reach, misses are negligible
// (cold misses amortised). Beyond reach, each traversed page not resident
// costs a miss, i.e. one miss per page per pass scaled by the fraction of
// the set outside reach. This captures the qualitative cliff the paper's
// large-page discussion relies on without pretending to cycle accuracy.
func (t TLBSpec) MissRate(workingSet int64, p PageSize) float64 {
	if workingSet <= 0 || !p.Valid() {
		return 0
	}
	reach := t.Reach(p)
	if workingSet <= reach {
		return 0
	}
	// Fraction of accesses falling outside the resident reach.
	outside := float64(workingSet-reach) / float64(workingSet)
	// One miss per page of outside data per traversal; accesses per page
	// = pageSize * AccessesPerByte.
	accessesPerPage := float64(p) * t.AccessesPerByte
	if accessesPerPage < 1 {
		accessesPerPage = 1
	}
	return outside / accessesPerPage
}

// WalkOverhead returns the expected extra nanoseconds per memory access due
// to TLB misses for the given traversal.
func (t TLBSpec) WalkOverhead(workingSet int64, p PageSize) float64 {
	return t.MissRate(workingSet, p) * t.MissCostNs
}

// EffectiveBandwidth derates a device's stream bandwidth for TLB effects on
// a working set mapped with a mix of page sizes. frac maps page size to the
// fraction of the working set it covers (fractions should sum to ~1).
//
// The derating compares the ideal per-access cost (line transfer at stream
// bandwidth) with the cost including page-walk overhead.
func (t TLBSpec) EffectiveBandwidth(dev MemDeviceSpec, workingSet int64, frac map[PageSize]float64) float64 {
	if workingSet <= 0 {
		return dev.StreamBandwidth
	}
	const lineBytes = 64.0
	idealNsPerLine := lineBytes / (dev.StreamBandwidth * float64(GiB)) * 1e9
	total := 0.0
	weight := 0.0
	// Sorted iteration: the float accumulation below must not depend on
	// map order or the derated bandwidth would vary between runs.
	for _, p := range slices.Sorted(maps.Keys(frac)) {
		f := frac[p]
		if f <= 0 {
			continue
		}
		// The portion mapped with page size p behaves as a traversal
		// of that portion alone.
		part := int64(float64(workingSet) * f)
		over := t.WalkOverhead(part, p)
		total += f * (idealNsPerLine + over)
		weight += f
	}
	if weight == 0 {
		return dev.StreamBandwidth
	}
	avgNsPerLine := total / weight
	return dev.StreamBandwidth * idealNsPerLine / avgNsPerLine
}
