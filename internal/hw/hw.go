// Package hw models the compute-node hardware the paper evaluates on:
// Intel Xeon Phi 7250 "Knights Landing" (KNL) nodes with 68 cores, four
// hyperthreads per core, 16 GiB of on-package high-bandwidth MCDRAM and
// 96 GiB of DDR4, configured in SNC-4 flat mode (four DDR4 NUMA domains with
// cores plus four core-less MCDRAM domains).
//
// The model is deliberately parametric — every performance effect the paper
// explains (MCDRAM vs DDR4 bandwidth, TLB reach of 4 KiB/2 MiB/1 GiB pages,
// NUMA distance) is a function of the specs defined here, so other node
// types can be described without touching the kernels.
package hw

import "fmt"

// MemKind identifies a class of memory device.
type MemKind int

const (
	// DDR4 is conventional off-package DRAM.
	DDR4 MemKind = iota
	// MCDRAM is KNL's on-package high-bandwidth memory.
	MCDRAM
)

// String returns the conventional name of the memory kind.
func (k MemKind) String() string {
	switch k {
	case DDR4:
		return "DDR4"
	case MCDRAM:
		return "MCDRAM"
	default:
		return fmt.Sprintf("MemKind(%d)", int(k))
	}
}

// PageSize is a hardware page size in bytes.
type PageSize int64

// Page sizes supported by the modelled MMU. Both LWKs in the paper use
// large pages "whenever and wherever possible ... using 1 GB pages if the
// size of the mapping allows it".
const (
	Page4K PageSize = 4 << 10
	Page2M PageSize = 2 << 20
	Page1G PageSize = 1 << 30
)

// String formats the page size in conventional units.
func (p PageSize) String() string {
	switch p {
	case Page4K:
		return "4KiB"
	case Page2M:
		return "2MiB"
	case Page1G:
		return "1GiB"
	default:
		return fmt.Sprintf("%dB", int64(p))
	}
}

// Valid reports whether p is one of the supported page sizes.
func (p PageSize) Valid() bool {
	return p == Page4K || p == Page2M || p == Page1G
}

// Byte quantity helpers.
const (
	KiB int64 = 1 << 10
	MiB int64 = 1 << 20
	GiB int64 = 1 << 30
)

// MemDeviceSpec describes one memory device (the memory side of a NUMA
// domain).
type MemDeviceSpec struct {
	Kind MemKind
	// Capacity in bytes.
	Capacity int64
	// StreamBandwidth is the sustainable per-domain stream bandwidth in
	// GiB/s for well-behaved (large-page, contiguous) access.
	StreamBandwidth float64
	// LoadLatency is the idle load-to-use latency in nanoseconds. MCDRAM
	// on KNL is famously *higher* latency than DDR4 despite the
	// bandwidth advantage; the model keeps that inversion.
	LoadLatency float64
}

// ClusterMode is the KNL on-die mesh clustering mode. The paper runs
// SNC-4 flat; quadrant mode appears in the CCS-QCD discussion because Linux
// can only express "prefer MCDRAM" via numactl -p in quadrant mode.
type ClusterMode int

const (
	// SNC4 splits the chip into four sub-NUMA clusters: four DDR4
	// domains with cores, four core-less MCDRAM domains.
	SNC4 ClusterMode = iota
	// Quadrant exposes one DDR4 domain with all cores and one MCDRAM
	// domain.
	Quadrant
)

// String returns the mode name.
func (m ClusterMode) String() string {
	switch m {
	case SNC4:
		return "SNC-4"
	case Quadrant:
		return "Quadrant"
	default:
		return fmt.Sprintf("ClusterMode(%d)", int(m))
	}
}
