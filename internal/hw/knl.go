package hw

// Knights Landing (Xeon Phi 7250) presets matching the Oakforest-PACS
// compute-node configuration of the paper: 68 cores x 4 hyperthreads,
// 16 GiB MCDRAM + 96 GiB DDR4, flat memory mode.

// knlTLB approximates the KNL core's translation caches.
func knlTLB() TLBSpec {
	return TLBSpec{
		Entries4K:       256,
		Entries2M:       128,
		Entries1G:       16,
		MissCostNs:      100,
		AccessesPerByte: 1.0 / 64.0,
	}
}

const (
	knlCores          = 68
	knlThreadsPerCore = 4
	knlFreqGHz        = 1.4

	// Per-quadrant SNC-4 figures: 96 GiB DDR4 / ~90 GiB/s total,
	// 16 GiB MCDRAM / ~460 GiB/s total, split four ways.
	knlDDRPerQuad      = 24 * GiB
	knlMCDRAMPerQuad   = 4 * GiB
	knlDDRBWPerQuad    = 22.5
	knlMCDRAMBWPerQuad = 115.0

	knlDDRLatencyNs    = 130.0
	knlMCDRAMLatencyNs = 170.0 // MCDRAM trades latency for bandwidth
)

// KNL7250SNC4 returns the node model used throughout the paper's
// evaluation: SNC-4 flat mode, eight NUMA domains (0-3 DDR4 with cores,
// 4-7 core-less MCDRAM), 272 logical CPUs.
//
// Logical CPU numbering follows Linux on KNL: CPUs 0..67 are the first
// hyperthread of each core; siblings are at +68, +136, +204.
func KNL7250SNC4() *NodeSpec {
	n := &NodeSpec{
		Name:           "KNL-7250-SNC4",
		Mode:           SNC4,
		ThreadsPerCore: knlThreadsPerCore,
		TLB:            knlTLB(),
		CoreFreqGHz:    knlFreqGHz,
	}
	// 68 cores split into quadrants of 17.
	const perQuad = knlCores / 4
	for c := 0; c < knlCores; c++ {
		quad := c / perQuad
		core := CoreSpec{ID: c, Domain: quad}
		for t := 0; t < knlThreadsPerCore; t++ {
			core.CPUs = append(core.CPUs, c+t*knlCores)
		}
		n.Cores = append(n.Cores, core)
	}
	for q := 0; q < 4; q++ {
		dom := DomainSpec{
			ID: q,
			Mem: MemDeviceSpec{
				Kind:            DDR4,
				Capacity:        knlDDRPerQuad,
				StreamBandwidth: knlDDRBWPerQuad,
				LoadLatency:     knlDDRLatencyNs,
			},
		}
		for c := q * perQuad; c < (q+1)*perQuad; c++ {
			for t := 0; t < knlThreadsPerCore; t++ {
				dom.CPUs = append(dom.CPUs, c+t*knlCores)
			}
		}
		n.Domains = append(n.Domains, dom)
	}
	for q := 0; q < 4; q++ {
		n.Domains = append(n.Domains, DomainSpec{
			ID: 4 + q,
			Mem: MemDeviceSpec{
				Kind:            MCDRAM,
				Capacity:        knlMCDRAMPerQuad,
				StreamBandwidth: knlMCDRAMBWPerQuad,
				LoadLatency:     knlMCDRAMLatencyNs,
			},
		})
	}
	n.Distance = snc4Distance()
	return n
}

// snc4Distance builds the 8x8 SLIT-style matrix the OFP nodes report:
// local 10, remote DDR quadrant 21, own-quadrant MCDRAM 31, remote MCDRAM
// 41. The >=31 MCDRAM distances are what breaks numactl-based MCDRAM
// preference on Linux in SNC-4 mode (paper, section II-D3).
func snc4Distance() [][]int {
	d := make([][]int, 8)
	for i := range d {
		d[i] = make([]int, 8)
		for j := range d[i] {
			switch {
			case i == j:
				d[i][j] = 10
			case i < 4 && j < 4: // DDR to DDR
				d[i][j] = 21
			case i < 4 && j >= 4: // DDR quadrant to MCDRAM
				if j-4 == i {
					d[i][j] = 31
				} else {
					d[i][j] = 41
				}
			case i >= 4 && j < 4: // MCDRAM to DDR quadrant
				if i-4 == j {
					d[i][j] = 31
				} else {
					d[i][j] = 41
				}
			default: // MCDRAM to MCDRAM
				d[i][j] = 41
			}
		}
	}
	return d
}

// quadrantMeshPenalty derates aggregated bandwidth in quadrant mode:
// "SNC-4 mode offers the highest possible hardware performance" (section
// III-B), so the single-domain configuration pays a small mesh-traffic tax.
const quadrantMeshPenalty = 0.93

// KNL7250Quadrant returns the quadrant-mode variant: two NUMA domains, all
// cores on the DDR4 domain, MCDRAM exposed as one core-less domain. Used by
// the CCS-QCD discussion (numactl -p works here).
func KNL7250Quadrant() *NodeSpec {
	n := &NodeSpec{
		Name:           "KNL-7250-Quadrant",
		Mode:           Quadrant,
		ThreadsPerCore: knlThreadsPerCore,
		TLB:            knlTLB(),
		CoreFreqGHz:    knlFreqGHz,
	}
	ddr := DomainSpec{
		ID: 0,
		Mem: MemDeviceSpec{
			Kind:            DDR4,
			Capacity:        4 * knlDDRPerQuad,
			StreamBandwidth: 4 * knlDDRBWPerQuad * quadrantMeshPenalty,
			LoadLatency:     knlDDRLatencyNs,
		},
	}
	for c := 0; c < knlCores; c++ {
		core := CoreSpec{ID: c, Domain: 0}
		for t := 0; t < knlThreadsPerCore; t++ {
			cpu := c + t*knlCores
			core.CPUs = append(core.CPUs, cpu)
			ddr.CPUs = append(ddr.CPUs, cpu)
		}
		n.Cores = append(n.Cores, core)
	}
	n.Domains = append(n.Domains, ddr, DomainSpec{
		ID: 1,
		Mem: MemDeviceSpec{
			Kind:            MCDRAM,
			Capacity:        4 * knlMCDRAMPerQuad,
			StreamBandwidth: 4 * knlMCDRAMBWPerQuad * quadrantMeshPenalty,
			LoadLatency:     knlMCDRAMLatencyNs,
		},
	})
	n.Distance = [][]int{{10, 31}, {31, 10}}
	return n
}

// DualSocketXeon returns a conventional two-socket server node: two DDR4
// NUMA domains with their cores, no on-package memory. It exists to
// demonstrate that the node model is parametric — nothing in the kernels
// or the harness is KNL-specific — and serves as a contrast configuration
// in tests.
func DualSocketXeon(coresPerSocket int, memPerSocket int64) *NodeSpec {
	if coresPerSocket <= 0 {
		coresPerSocket = 24
	}
	if memPerSocket <= 0 {
		memPerSocket = 192 * GiB
	}
	n := &NodeSpec{
		Name:           "dual-xeon",
		Mode:           Quadrant, // single-level NUMA, no sub-clustering
		ThreadsPerCore: 2,
		TLB: TLBSpec{
			Entries4K:       1536,
			Entries2M:       1536,
			Entries1G:       16,
			MissCostNs:      60,
			AccessesPerByte: 1.0 / 64.0,
		},
		CoreFreqGHz: 2.4,
	}
	total := 2 * coresPerSocket
	for c := 0; c < total; c++ {
		socket := c / coresPerSocket
		core := CoreSpec{ID: c, Domain: socket}
		for t := 0; t < n.ThreadsPerCore; t++ {
			core.CPUs = append(core.CPUs, c+t*total)
		}
		n.Cores = append(n.Cores, core)
	}
	for s := 0; s < 2; s++ {
		dom := DomainSpec{
			ID: s,
			Mem: MemDeviceSpec{
				Kind:            DDR4,
				Capacity:        memPerSocket,
				StreamBandwidth: 110,
				LoadLatency:     90,
			},
		}
		for _, core := range n.Cores {
			if core.Domain == s {
				dom.CPUs = append(dom.CPUs, core.CPUs...)
			}
		}
		n.Domains = append(n.Domains, dom)
	}
	n.Distance = [][]int{{10, 21}, {21, 10}}
	return n
}
