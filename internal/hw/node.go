package hw

import (
	"fmt"
	"sort"
)

// DomainSpec is one NUMA domain: a memory device plus the logical CPUs
// attached to it (empty for memory-only domains such as SNC-4 MCDRAM).
type DomainSpec struct {
	ID   int
	Mem  MemDeviceSpec
	CPUs []int // logical CPU ids local to this domain
}

// CoreSpec describes one physical core.
type CoreSpec struct {
	ID     int
	Domain int   // NUMA domain the core belongs to
	CPUs   []int // logical CPUs (hyperthreads) on this core
}

// NodeSpec is the full static description of a compute node.
type NodeSpec struct {
	Name           string
	Mode           ClusterMode
	Cores          []CoreSpec
	Domains        []DomainSpec
	ThreadsPerCore int
	// Distance[i][j] is the relative NUMA distance from domain i to
	// domain j (10 = local, larger = further), mirroring the Linux
	// SLIT convention.
	Distance [][]int
	TLB      TLBSpec
	// CoreFreqGHz is the nominal core frequency; per-core flop rates in
	// the workload models scale with it.
	CoreFreqGHz float64
}

// NumLogicalCPUs returns the total number of logical CPUs on the node.
func (n *NodeSpec) NumLogicalCPUs() int {
	total := 0
	for _, c := range n.Cores {
		total += len(c.CPUs)
	}
	return total
}

// NumCores returns the number of physical cores.
func (n *NodeSpec) NumCores() int { return len(n.Cores) }

// Domain returns the domain with the given id.
func (n *NodeSpec) Domain(id int) (*DomainSpec, error) {
	for i := range n.Domains {
		if n.Domains[i].ID == id {
			return &n.Domains[i], nil
		}
	}
	return nil, fmt.Errorf("hw: node %s has no NUMA domain %d", n.Name, id)
}

// DomainsOfKind returns the ids of all domains backed by the given memory
// kind, in id order.
func (n *NodeSpec) DomainsOfKind(kind MemKind) []int {
	var out []int
	for _, d := range n.Domains {
		if d.Mem.Kind == kind {
			out = append(out, d.ID)
		}
	}
	sort.Ints(out)
	return out
}

// TotalCapacity returns the summed capacity in bytes of all domains of the
// given kind.
func (n *NodeSpec) TotalCapacity(kind MemKind) int64 {
	var total int64
	for _, d := range n.Domains {
		if d.Mem.Kind == kind {
			total += d.Mem.Capacity
		}
	}
	return total
}

// CoreOfCPU returns the physical core owning the given logical CPU.
func (n *NodeSpec) CoreOfCPU(cpu int) (*CoreSpec, error) {
	for i := range n.Cores {
		for _, c := range n.Cores[i].CPUs {
			if c == cpu {
				return &n.Cores[i], nil
			}
		}
	}
	return nil, fmt.Errorf("hw: node %s has no logical CPU %d", n.Name, cpu)
}

// DomainOfCPU returns the NUMA domain id of a logical CPU.
func (n *NodeSpec) DomainOfCPU(cpu int) (int, error) {
	core, err := n.CoreOfCPU(cpu)
	if err != nil {
		return 0, err
	}
	return core.Domain, nil
}

// NearestDomain returns, among candidate domain ids, the one with the
// smallest distance from the given domain (ties broken by lower id). It is
// the primitive behind NUMA-aware allocation and the NUMA-aware
// LWK-to-Linux core mapping both kernels perform.
func (n *NodeSpec) NearestDomain(from int, candidates []int) (int, error) {
	if len(candidates) == 0 {
		return 0, fmt.Errorf("hw: NearestDomain with no candidates")
	}
	if from < 0 || from >= len(n.Distance) {
		return 0, fmt.Errorf("hw: domain %d out of range", from)
	}
	best, bestDist := -1, int(^uint(0)>>1)
	for _, c := range candidates {
		if c < 0 || c >= len(n.Distance[from]) {
			return 0, fmt.Errorf("hw: candidate domain %d out of range", c)
		}
		if d := n.Distance[from][c]; d < bestDist || (d == bestDist && c < best) {
			best, bestDist = c, d
		}
	}
	return best, nil
}

// Validate checks internal consistency of the spec: every CPU belongs to
// exactly one core and one domain, domains reference existing CPUs, and the
// distance matrix is square with zero-free diagonal-local entries.
func (n *NodeSpec) Validate() error {
	if n.NumCores() == 0 {
		return fmt.Errorf("hw: node %s has no cores", n.Name)
	}
	if n.CoreFreqGHz <= 0 {
		return fmt.Errorf("hw: node %s has non-positive core frequency", n.Name)
	}
	cpuSeen := map[int]int{} // cpu -> core id
	for _, core := range n.Cores {
		if len(core.CPUs) == 0 {
			return fmt.Errorf("hw: core %d has no logical CPUs", core.ID)
		}
		for _, cpu := range core.CPUs {
			if prev, dup := cpuSeen[cpu]; dup {
				return fmt.Errorf("hw: logical CPU %d on both core %d and core %d", cpu, prev, core.ID)
			}
			cpuSeen[cpu] = core.ID
		}
		if _, err := n.Domain(core.Domain); err != nil {
			return fmt.Errorf("hw: core %d references missing domain %d", core.ID, core.Domain)
		}
	}
	domSeen := map[int]bool{}
	for _, d := range n.Domains {
		if domSeen[d.ID] {
			return fmt.Errorf("hw: duplicate domain id %d", d.ID)
		}
		domSeen[d.ID] = true
		if d.Mem.Capacity <= 0 {
			return fmt.Errorf("hw: domain %d has non-positive capacity", d.ID)
		}
		if d.Mem.StreamBandwidth <= 0 {
			return fmt.Errorf("hw: domain %d has non-positive bandwidth", d.ID)
		}
		for _, cpu := range d.CPUs {
			core, ok := cpuSeen[cpu]
			if !ok {
				return fmt.Errorf("hw: domain %d lists unknown CPU %d", d.ID, cpu)
			}
			_ = core
		}
	}
	if len(n.Distance) != len(n.Domains) {
		return fmt.Errorf("hw: distance matrix has %d rows for %d domains", len(n.Distance), len(n.Domains))
	}
	for i, row := range n.Distance {
		if len(row) != len(n.Domains) {
			return fmt.Errorf("hw: distance row %d has %d entries for %d domains", i, len(row), len(n.Domains))
		}
		for j, d := range row {
			if d <= 0 {
				return fmt.Errorf("hw: non-positive distance [%d][%d]=%d", i, j, d)
			}
		}
	}
	return nil
}
