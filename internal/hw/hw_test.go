package hw

import (
	"testing"
	"testing/quick"
)

func TestKNLSNC4Shape(t *testing.T) {
	n := KNL7250SNC4()
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if n.NumCores() != 68 {
		t.Fatalf("cores = %d, want 68", n.NumCores())
	}
	if n.NumLogicalCPUs() != 272 {
		t.Fatalf("logical CPUs = %d, want 272", n.NumLogicalCPUs())
	}
	if len(n.Domains) != 8 {
		t.Fatalf("domains = %d, want 8", len(n.Domains))
	}
	if n.Mode != SNC4 {
		t.Fatalf("mode = %v", n.Mode)
	}
}

func TestKNLSNC4Capacities(t *testing.T) {
	n := KNL7250SNC4()
	if got := n.TotalCapacity(MCDRAM); got != 16*GiB {
		t.Fatalf("MCDRAM capacity = %d, want 16 GiB", got)
	}
	if got := n.TotalCapacity(DDR4); got != 96*GiB {
		t.Fatalf("DDR4 capacity = %d, want 96 GiB", got)
	}
}

func TestKNLSNC4DomainKinds(t *testing.T) {
	n := KNL7250SNC4()
	ddr := n.DomainsOfKind(DDR4)
	mc := n.DomainsOfKind(MCDRAM)
	if len(ddr) != 4 || len(mc) != 4 {
		t.Fatalf("ddr=%v mcdram=%v", ddr, mc)
	}
	for i, id := range ddr {
		if id != i {
			t.Fatalf("DDR domains %v, want 0-3", ddr)
		}
	}
	for i, id := range mc {
		if id != 4+i {
			t.Fatalf("MCDRAM domains %v, want 4-7", mc)
		}
	}
	// MCDRAM domains are core-less in SNC-4.
	for _, id := range mc {
		d, err := n.Domain(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(d.CPUs) != 0 {
			t.Fatalf("MCDRAM domain %d has CPUs %v", id, d.CPUs)
		}
	}
}

func TestKNLSNC4MCDRAMFasterButSlower(t *testing.T) {
	// MCDRAM must have higher bandwidth and higher latency than DDR4 —
	// the KNL inversion.
	n := KNL7250SNC4()
	ddr, _ := n.Domain(0)
	mc, _ := n.Domain(4)
	if mc.Mem.StreamBandwidth <= ddr.Mem.StreamBandwidth {
		t.Fatal("MCDRAM bandwidth not higher than DDR4")
	}
	if mc.Mem.LoadLatency <= ddr.Mem.LoadLatency {
		t.Fatal("MCDRAM latency not higher than DDR4")
	}
}

func TestCPUNumbering(t *testing.T) {
	n := KNL7250SNC4()
	core, err := n.CoreOfCPU(0)
	if err != nil || core.ID != 0 {
		t.Fatalf("CoreOfCPU(0) = %v, %v", core, err)
	}
	// Hyperthread sibling of core 5 at 5+68.
	core, err = n.CoreOfCPU(73)
	if err != nil || core.ID != 5 {
		t.Fatalf("CoreOfCPU(73) = %v, %v", core, err)
	}
	if _, err := n.CoreOfCPU(272); err == nil {
		t.Fatal("CoreOfCPU(272) did not error")
	}
}

func TestDomainOfCPU(t *testing.T) {
	n := KNL7250SNC4()
	// Core 0 is in quadrant 0; core 17 in quadrant 1.
	if d, _ := n.DomainOfCPU(0); d != 0 {
		t.Fatalf("DomainOfCPU(0) = %d", d)
	}
	if d, _ := n.DomainOfCPU(17); d != 1 {
		t.Fatalf("DomainOfCPU(17) = %d", d)
	}
	if d, _ := n.DomainOfCPU(67); d != 3 {
		t.Fatalf("DomainOfCPU(67) = %d", d)
	}
}

func TestNearestDomainPrefersOwnQuadrantMCDRAM(t *testing.T) {
	n := KNL7250SNC4()
	// From DDR quadrant 2, the nearest MCDRAM domain must be 6.
	got, err := n.NearestDomain(2, n.DomainsOfKind(MCDRAM))
	if err != nil {
		t.Fatal(err)
	}
	if got != 6 {
		t.Fatalf("nearest MCDRAM to quadrant 2 = %d, want 6", got)
	}
}

func TestNearestDomainErrors(t *testing.T) {
	n := KNL7250SNC4()
	if _, err := n.NearestDomain(0, nil); err == nil {
		t.Fatal("no candidates: want error")
	}
	if _, err := n.NearestDomain(99, []int{0}); err == nil {
		t.Fatal("bad from domain: want error")
	}
	if _, err := n.NearestDomain(0, []int{99}); err == nil {
		t.Fatal("bad candidate: want error")
	}
}

func TestQuadrantPreset(t *testing.T) {
	n := KNL7250Quadrant()
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(n.Domains) != 2 {
		t.Fatalf("domains = %d, want 2", len(n.Domains))
	}
	if n.TotalCapacity(MCDRAM) != 16*GiB || n.TotalCapacity(DDR4) != 96*GiB {
		t.Fatal("quadrant capacities wrong")
	}
	if n.NumLogicalCPUs() != 272 {
		t.Fatalf("logical CPUs = %d", n.NumLogicalCPUs())
	}
}

func TestValidateCatchesDuplicateCPU(t *testing.T) {
	n := KNL7250SNC4()
	n.Cores[1].CPUs[0] = n.Cores[0].CPUs[0] // duplicate CPU id
	if err := n.Validate(); err == nil {
		t.Fatal("Validate accepted duplicate CPU")
	}
}

func TestValidateCatchesBadDistance(t *testing.T) {
	n := KNL7250SNC4()
	n.Distance = n.Distance[:3]
	if err := n.Validate(); err == nil {
		t.Fatal("Validate accepted truncated distance matrix")
	}
}

func TestValidateCatchesMissingDomain(t *testing.T) {
	n := KNL7250SNC4()
	n.Cores[0].Domain = 55
	if err := n.Validate(); err == nil {
		t.Fatal("Validate accepted dangling domain reference")
	}
}

func TestPageSizeStrings(t *testing.T) {
	if Page4K.String() != "4KiB" || Page2M.String() != "2MiB" || Page1G.String() != "1GiB" {
		t.Fatal("page size strings")
	}
	if !Page4K.Valid() || PageSize(12345).Valid() {
		t.Fatal("page size validity")
	}
}

func TestMemKindStrings(t *testing.T) {
	if DDR4.String() != "DDR4" || MCDRAM.String() != "MCDRAM" {
		t.Fatal("mem kind strings")
	}
	if SNC4.String() != "SNC-4" || Quadrant.String() != "Quadrant" {
		t.Fatal("cluster mode strings")
	}
}

func TestTLBReach(t *testing.T) {
	tlb := knlTLB()
	if tlb.Reach(Page4K) != int64(tlb.Entries4K)*4*KiB {
		t.Fatal("4K reach")
	}
	if tlb.Reach(Page2M) != int64(tlb.Entries2M)*2*MiB {
		t.Fatal("2M reach")
	}
	if tlb.Reach(PageSize(999)) != 0 {
		t.Fatal("invalid page size reach")
	}
}

func TestTLBMissRateZeroInsideReach(t *testing.T) {
	tlb := knlTLB()
	if r := tlb.MissRate(tlb.Reach(Page2M), Page2M); r != 0 {
		t.Fatalf("miss rate inside reach = %v", r)
	}
	if r := tlb.MissRate(0, Page2M); r != 0 {
		t.Fatal("miss rate for empty set")
	}
}

func TestTLBMissRateGrowsOutsideReach(t *testing.T) {
	tlb := knlTLB()
	small := tlb.MissRate(2*tlb.Reach(Page4K), Page4K)
	big := tlb.MissRate(100*tlb.Reach(Page4K), Page4K)
	if small <= 0 || big <= small {
		t.Fatalf("miss rates not monotone: %v then %v", small, big)
	}
}

func TestTLBLargePagesBeatSmallPages(t *testing.T) {
	// For a 4 GiB working set, 2 MiB pages must deliver strictly higher
	// effective bandwidth than 4 KiB pages, and 1 GiB at least as high
	// as 2 MiB. This is the mechanism behind the LWK large-page win.
	n := KNL7250SNC4()
	dev := n.Domains[0].Mem
	ws := int64(4 * GiB)
	bw4k := n.TLB.EffectiveBandwidth(dev, ws, map[PageSize]float64{Page4K: 1})
	bw2m := n.TLB.EffectiveBandwidth(dev, ws, map[PageSize]float64{Page2M: 1})
	bw1g := n.TLB.EffectiveBandwidth(dev, ws, map[PageSize]float64{Page1G: 1})
	if !(bw4k < bw2m && bw2m <= bw1g) {
		t.Fatalf("bandwidth ordering violated: 4K=%v 2M=%v 1G=%v", bw4k, bw2m, bw1g)
	}
	if bw1g > dev.StreamBandwidth {
		t.Fatalf("effective bandwidth %v exceeds stream peak %v", bw1g, dev.StreamBandwidth)
	}
}

func TestTLBEffectiveBandwidthEdges(t *testing.T) {
	n := KNL7250SNC4()
	dev := n.Domains[0].Mem
	if bw := n.TLB.EffectiveBandwidth(dev, 0, nil); bw != dev.StreamBandwidth {
		t.Fatal("zero working set should return peak bandwidth")
	}
	if bw := n.TLB.EffectiveBandwidth(dev, GiB, map[PageSize]float64{}); bw != dev.StreamBandwidth {
		t.Fatal("empty mix should return peak bandwidth")
	}
}

// Property: effective bandwidth never exceeds stream bandwidth and is
// always positive, for any working set and any pure page-size mix.
func TestEffectiveBandwidthBoundsProperty(t *testing.T) {
	n := KNL7250SNC4()
	dev := n.Domains[0].Mem
	sizes := []PageSize{Page4K, Page2M, Page1G}
	check := func(wsMiB uint16, pick uint8) bool {
		ws := int64(wsMiB) * MiB
		p := sizes[int(pick)%len(sizes)]
		bw := n.TLB.EffectiveBandwidth(dev, ws, map[PageSize]float64{p: 1})
		return bw > 0 && bw <= dev.StreamBandwidth+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDualSocketXeonPreset(t *testing.T) {
	n := DualSocketXeon(24, 192*GiB)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if n.NumCores() != 48 || n.NumLogicalCPUs() != 96 {
		t.Fatalf("cores %d, cpus %d", n.NumCores(), n.NumLogicalCPUs())
	}
	if len(n.DomainsOfKind(MCDRAM)) != 0 {
		t.Fatal("a Xeon has no MCDRAM")
	}
	if n.TotalCapacity(DDR4) != 384*GiB {
		t.Fatalf("capacity %d", n.TotalCapacity(DDR4))
	}
	// Defaults kick in for non-positive arguments.
	d := DualSocketXeon(0, 0)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestXeonWorksWithAllocator(t *testing.T) {
	// The memory substrate is node-agnostic: a Xeon node allocates and
	// maps exactly like a KNL one.
	n := DualSocketXeon(24, 192*GiB)
	if n.Distance[0][1] != 21 {
		t.Fatal("cross-socket distance")
	}
	nearest, err := n.NearestDomain(0, []int{0, 1})
	if err != nil || nearest != 0 {
		t.Fatalf("nearest: %d, %v", nearest, err)
	}
}
