package fleet

import (
	"fmt"

	"mklite/internal/fault"
	"mklite/internal/kernel"
	"mklite/internal/obs"
	"mklite/internal/sched"
	"mklite/internal/sim"
)

// launch is one job's immutable launch spec: everything a par worker closure
// needs to execute the job, decided sequentially by the scheduler before the
// fan-out. Worker closures capture the batch slice, never the Scheduler or
// Allocator that produced it.
type launch struct {
	job    *Job
	kernel kernel.Type
	// sched is the policy's scheduler choice; empty keeps the kernel's
	// boot-time default.
	sched      sched.Kind
	nodes      []int
	cotenancy  int
	plan       *fault.Plan
	backfilled bool
	// evidence is the reservation snapshot that admitted a backfill launch,
	// recorded for the decision log (nil unless Observe.Decisions is on and
	// backfilled is set). Carried here so the commit loop can attach it —
	// the worker closures never read it.
	evidence *obs.BackfillEvidence
}

// profile is the slot-availability timeline the backfill pass plans against:
// free slot counts over piecewise-constant segments, breakpoints ascending,
// the last segment extending to sim.Never. Capacity is counted in slots
// (nodes x share); with Share > 1 a slot fit is an optimistic upper bound on
// a distinct-node fit, so "start now" decisions additionally check the
// Allocator — the profile only sizes reservations, where optimism merely
// costs schedule quality, never correctness.
type profile struct {
	times []sim.Time
	free  []int
}

// newProfile builds the availability timeline at the given instant from the
// facility's running set: currently-free slots, rising at each running job's
// reservation end (launch time + walltime limit; a job already past its
// limit releases "any moment now", i.e. at now itself).
func newProfile(now sim.Time, freeNow int, releases []release) *profile {
	p := &profile{times: []sim.Time{now}, free: []int{freeNow}}
	for _, r := range releases {
		t := r.at
		if t.Before(now) {
			t = now
		}
		p.release(t, r.slots)
	}
	return p
}

// release is one future slot release in the profile's input.
type release struct {
	at    sim.Time
	slots int
}

// segment returns the index of the segment containing t (times[i] <= t).
func (p *profile) segment(t sim.Time) int {
	lo, hi := 0, len(p.times)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if p.times[mid].After(t) {
			hi = mid - 1
		} else {
			lo = mid
		}
	}
	return lo
}

// split ensures a breakpoint exists exactly at t (t >= times[0]) and returns
// its index.
func (p *profile) split(t sim.Time) int {
	i := p.segment(t)
	if p.times[i] == t {
		return i
	}
	p.times = append(p.times, 0)
	p.free = append(p.free, 0)
	copy(p.times[i+2:], p.times[i+1:])
	copy(p.free[i+2:], p.free[i+1:])
	p.times[i+1] = t
	p.free[i+1] = p.free[i]
	return i + 1
}

// release adds slots back to the timeline from t onward.
func (p *profile) release(t sim.Time, slots int) {
	for i := p.split(t); i < len(p.times); i++ {
		p.free[i] += slots
	}
}

// take reserves slots on [t, t+d).
func (p *profile) take(t sim.Time, d sim.Duration, slots int) {
	end := t.Add(d)
	lo := p.split(t)
	hi := p.split(end)
	for i := lo; i < hi; i++ {
		p.free[i] -= slots
		if p.free[i] < 0 {
			panic(fmt.Sprintf("fleet: profile overdrawn at %v (%d slots short)", p.times[i], -p.free[i]))
		}
	}
}

// fitsAt reports whether slots are free throughout [t, t+d).
func (p *profile) fitsAt(t sim.Time, d sim.Duration, slots int) bool {
	end := t.Add(d)
	for i := p.segment(t); i < len(p.times) && p.times[i].Before(end); i++ {
		if p.free[i] < slots {
			return false
		}
	}
	return true
}

// earliest returns the earliest time >= the profile start at which slots are
// free for d. Availability is piecewise constant, so only breakpoints need
// checking; the final segment always has room (every reservation is finite),
// so the scan terminates.
func (p *profile) earliest(d sim.Duration, slots int) sim.Time {
	for _, t := range p.times {
		if p.fitsAt(t, d, slots) {
			return t
		}
	}
	panic(fmt.Sprintf("fleet: no feasible start for %d slots (capacity exceeded?)", slots))
}

// schedulePass decides which queued jobs start at the current virtual
// instant: the FIFO prefix that fits, then — when the head blocks and
// Config.Backfill is set — conservative backfill over the remaining queue.
//
// The backfill plan is rebuilt from scratch every pass (no reservations
// persist between events): the head receives a reservation at its earliest
// feasible start on the slot-availability profile, and up to BackfillDepth
// queued jobs behind it are examined in arrival order. A candidate starts
// now only if it fits now (allocator and profile) for its full walltime
// limit with every earlier reservation intact — the conservative-backfill
// invariant: backfilled jobs never delay the reserved start of any job ahead
// of them in the queue. Candidates that cannot start receive reservations of
// their own, which later candidates must also respect. The invariant is
// re-verified after the pass by recomputing the head's earliest start over
// the launches actually made (checkHeadInvariant); a violation is a
// scheduler bug and panics.
func (s *Scheduler) schedulePass() []*launch {
	if len(s.queue) == 0 {
		return nil
	}
	var out []*launch
	snap := s.snapshot()
	prof := snap.profile()

	// When the decision log is on, mirror the reservation plan the pass
	// builds (head first, then each examined non-starting candidate) so a
	// backfill launch can carry the exact evidence that admitted it. Pure
	// bookkeeping — the plan itself is unchanged.
	recording := s.dlog != nil
	reservations := s.resScratch[:0]
	headJob := -1

	remaining := s.queue[:0:0]
	headBlocked := false
	headStart := sim.Never
	examined := 0
	for qi, j := range s.queue {
		if headBlocked && (!s.cfg.Backfill || examined >= s.cfg.BackfillDepth) {
			remaining = append(remaining, s.queue[qi:]...)
			break
		}
		if !headBlocked {
			if s.alloc.Fits(j.Nodes) {
				out = append(out, s.newLaunch(j, false))
				prof.take(s.clock, j.WallLimit, j.Nodes)
				continue
			}
			headBlocked = true
			headStart = prof.earliest(j.WallLimit, j.Nodes)
			prof.take(headStart, j.WallLimit, j.Nodes)
			remaining = append(remaining, j)
			examined++
			if recording {
				headJob = j.ID
				reservations = append(reservations, obs.Reservation{
					Job: j.ID, StartNs: int64(headStart), WallNs: int64(j.WallLimit), Slots: j.Nodes})
			}
			continue
		}
		examined++
		if s.alloc.Fits(j.Nodes) && prof.fitsAt(s.clock, j.WallLimit, j.Nodes) {
			l := s.newLaunch(j, true)
			if recording {
				l.evidence = &obs.BackfillEvidence{
					HeadJob:      headJob,
					HeadStartNs:  int64(headStart),
					Reservations: append([]obs.Reservation(nil), reservations...),
				}
			}
			out = append(out, l)
			prof.take(s.clock, j.WallLimit, j.Nodes)
			continue
		}
		t := prof.earliest(j.WallLimit, j.Nodes)
		prof.take(t, j.WallLimit, j.Nodes)
		remaining = append(remaining, j)
		if recording {
			reservations = append(reservations, obs.Reservation{
				Job: j.ID, StartNs: int64(t), WallNs: int64(j.WallLimit), Slots: j.Nodes})
		}
	}
	s.queue = remaining
	s.resScratch = reservations

	if headBlocked {
		s.checkHeadInvariant(snap, out, headStart)
	}
	return out
}

// checkHeadInvariant recomputes the blocked head's earliest start over the
// pass-start availability plus the launches this pass actually made — no
// reservations, just committed work — and panics if it moved past the
// reservation the backfill plan promised. This is the testable backfill
// invariant from docs/FLEET.md.
func (s *Scheduler) checkHeadInvariant(snap availSnapshot, out []*launch, headStart sim.Time) {
	head := s.queue[0]
	prof := snap.profile()
	for _, l := range out {
		prof.take(s.clock, l.job.WallLimit, l.job.Nodes)
	}
	if got := prof.earliest(head.WallLimit, head.Nodes); got.After(headStart) {
		panic(fmt.Sprintf("fleet: backfill delayed the queue head: reserved start %v, now %v",
			headStart, got))
	}
}

// availSnapshot is the facility's slot availability at a pass's start:
// capacity minus resident jobs, with each running job releasing its slots at
// its walltime-limit reservation end. Actual completions may come earlier
// (the scheduler learns exact end times at launch but plans against the
// limit, like a real conservative-backfill scheduler) — an early finish only
// makes reservations conservative, never wrong. The snapshot is taken before
// the pass allocates anything, so the invariant check can replay the pass's
// launches against unmutated availability.
type availSnapshot struct {
	now      sim.Time
	freeNow  int
	releases []release
}

// snapshot captures the current availability.
func (s *Scheduler) snapshot() availSnapshot {
	capacity := s.alloc.Nodes() * s.alloc.Share()
	releases := make([]release, 0, len(s.running))
	for _, r := range s.running {
		releases = append(releases, release{at: r.start.Add(r.job.WallLimit), slots: r.job.Nodes})
	}
	return availSnapshot{now: s.clock, freeNow: capacity - s.alloc.busy, releases: releases}
}

// profile builds a fresh planning timeline from the snapshot.
func (sn availSnapshot) profile() *profile {
	return newProfile(sn.now, sn.freeNow, sn.releases)
}

// newLaunch fixes a job's launch decisions: the policy's kernel and
// scheduler choice, the allocator's nodes and the co-tenancy-scaled
// interference plan.
func (s *Scheduler) newLaunch(j *Job, backfilled bool) *launch {
	ch := s.cfg.Policy.Select(j)
	nodes, cotenancy, err := s.alloc.Alloc(j.Nodes)
	if err != nil {
		// schedulePass only calls after Fits; reaching here is a bug.
		panic(err)
	}
	return &launch{
		job:        j,
		kernel:     ch.Kernel,
		sched:      ch.Sched,
		nodes:      nodes,
		cotenancy:  cotenancy,
		plan:       interferenceFor(s.cfg.Interference, cotenancy),
		backfilled: backfilled,
	}
}
