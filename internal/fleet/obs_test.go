package fleet

import (
	"bytes"
	"fmt"
	"maps"
	"slices"
	"strings"
	"testing"

	"mklite/internal/obs"
	"mklite/internal/trace"
)

// observedCfg is quickCfg with every obs backend attached.
func observedCfg() (Config, *obs.Options) {
	cfg := quickCfg()
	o := &obs.Options{
		Timeline:    obs.NewTimeline(cfg.Nodes, cfg.Share, 0),
		Decisions:   obs.NewDecisionLog(),
		JobCounters: true,
		JobEvents:   true,
	}
	cfg.Observe = o
	return cfg, o
}

// TestObsDisabledByteInvisible: a run with Observe nil and a run with an
// attached-but-empty Options must produce byte-identical Results, and none
// of the new JSON fields may appear — observability off is indistinguishable
// from observability not existing.
func TestObsDisabledByteInvisible(t *testing.T) {
	base := resultBytes(t, mustRun(t, quickCfg()))
	cfg := quickCfg()
	cfg.Observe = &obs.Options{}
	empty := resultBytes(t, mustRun(t, cfg))
	if !bytes.Equal(base, empty) {
		t.Fatal("empty Observe options changed the result bytes")
	}
	for _, field := range []string{"job_counters", "slo", "degraded_jobs"} {
		if bytes.Contains(base, []byte(`"`+field+`"`)) {
			t.Fatalf("disabled run leaked %q into the result JSON", field)
		}
	}
}

// TestJobCounterProvenance is the satellite's golden test: the flat merged
// counter map is unchanged by the namespaced view, and the namespaced view
// re-derives it — for every cluster-level counter x, the sum of
// job/<id>/x over all jobs equals flat x.
func TestJobCounterProvenance(t *testing.T) {
	flatOnly := mustRun(t, quickCfg())

	cfg, _ := observedCfg()
	res := mustRun(t, cfg)

	if !maps.Equal(flatOnly.Counters, res.Counters) {
		t.Fatal("enabling the namespaced view changed the flat merged counters")
	}
	if len(res.JobCounters) == 0 {
		t.Fatal("JobCounters empty with Observe.JobCounters set")
	}

	// Rebuild the per-job contributions from the namespaced view.
	sums := map[string]int64{}
	for _, k := range slices.Sorted(maps.Keys(res.JobCounters)) {
		rest, ok := strings.CutPrefix(k, "job/")
		if !ok {
			t.Fatalf("JobCounters key %q lacks the job/ prefix", k)
		}
		id, name, ok := strings.Cut(rest, "/")
		if !ok || id == "" || name == "" {
			t.Fatalf("JobCounters key %q is not job/<id>/<name>", k)
		}
		sums[name] += res.JobCounters[k]
	}
	// Every non-scheduler counter in the flat map must be exactly the sum of
	// its per-job parts (fleet.* counters are scheduler-side, never per-job).
	for _, name := range slices.Sorted(maps.Keys(res.Counters)) {
		if strings.HasPrefix(name, "fleet.") {
			if sums[name] != 0 {
				t.Fatalf("scheduler counter %s appeared in the per-job view", name)
			}
			continue
		}
		if sums[name] != res.Counters[name] {
			t.Fatalf("counter %s: flat %d != sum of per-job parts %d",
				name, res.Counters[name], sums[name])
		}
	}
	// Golden scheduler counters for quickCfg (pins the flat map's fleet.*
	// tier alongside the provenance identity above).
	for name, want := range map[string]int64{
		"fleet.jobs_launched":  120,
		"fleet.jobs_completed": 120,
	} {
		if got := res.Counters[name]; got != want {
			t.Fatalf("golden counter %s = %d, want %d", name, got, want)
		}
	}
}

// TestJobCountersWithoutFlat: the namespaced view works with the flat merge
// off — per-job counters are still collected, Result.Counters stays empty.
func TestJobCountersWithoutFlat(t *testing.T) {
	cfg := quickCfg()
	cfg.Counters = false
	cfg.Observe = &obs.Options{JobCounters: true}
	res := mustRun(t, cfg)
	if res.Counters != nil {
		t.Fatal("flat counters appeared with Config.Counters off")
	}
	if len(res.JobCounters) == 0 {
		t.Fatal("JobCounters empty with the flat merge off")
	}
}

// TestObsWidthEquivalence: every observability artifact — result (with
// namespaced counters and SLO report), timeline JSON, decision log JSON —
// is byte-identical between par widths 1 and GOMAXPROCS.
func TestObsWidthEquivalence(t *testing.T) {
	run := func(workers int) (resB, tlB, dlB []byte) {
		cfg, o := observedCfg()
		cfg.Workers = workers
		var err error
		cfg.SLO, err = obs.ParseSLO("wait_p99_sec<=1e9;utilization_pct>=0;degraded_jobs<=0")
		if err != nil {
			t.Fatal(err)
		}
		res := mustRun(t, cfg)
		dl, err := o.Decisions.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return resultBytes(t, res), o.Timeline.JSON(), dl
	}
	res1, tl1, dl1 := run(1)
	res0, tl0, dl0 := run(0)
	if !bytes.Equal(res1, res0) {
		t.Fatal("observed result differs between widths 1 and GOMAXPROCS")
	}
	if !bytes.Equal(tl1, tl0) {
		t.Fatal("timeline JSON differs between widths 1 and GOMAXPROCS")
	}
	if !bytes.Equal(dl1, dl0) {
		t.Fatal("decision log differs between widths 1 and GOMAXPROCS")
	}
}

// TestObsQuickRunArtifacts checks the artifact content on the quick
// facility: a valid, span-balanced timeline; counter series covering every
// clock event; decisions for every job with backfill evidence that matches
// Result.Backfilled.
func TestObsQuickRunArtifacts(t *testing.T) {
	cfg, o := observedCfg()
	res := mustRun(t, cfg)

	if o.Timeline.Open() != 0 {
		t.Fatalf("%d jobs still resident after the run drained", o.Timeline.Open())
	}
	out := o.Timeline.JSON()
	if err := trace.Validate(out); err != nil {
		t.Fatalf("timeline failed validation: %v", err)
	}
	if qs := o.Timeline.Events().CounterSeries(obs.SeriesQueueDepth); len(qs) == 0 {
		t.Fatal("no queue-depth samples")
	}

	ds := o.Decisions.Decisions()
	if len(ds) != cfg.Jobs {
		t.Fatalf("%d decisions for %d jobs", len(ds), cfg.Jobs)
	}
	backfills := 0
	for _, d := range ds {
		switch d.Kind {
		case obs.KindFIFO:
			if d.Backfill != nil {
				t.Fatalf("job %d: FIFO decision carries backfill evidence", d.Job)
			}
		case obs.KindBackfill:
			backfills++
			ev := d.Backfill
			if ev == nil || len(ev.Reservations) == 0 {
				t.Fatalf("job %d: backfill decision without evidence", d.Job)
			}
			// The head's reservation leads the snapshot, and the launch must
			// not start after the head's reserved start (conservative
			// invariant, re-checkable from the log alone).
			if ev.Reservations[0].Job != ev.HeadJob {
				t.Fatalf("job %d: evidence head %d not first in reservations", d.Job, ev.HeadJob)
			}
			if d.TimeNs > ev.HeadStartNs {
				t.Fatalf("job %d: backfilled at %d after head's reserved start %d",
					d.Job, d.TimeNs, ev.HeadStartNs)
			}
		default:
			t.Fatalf("job %d: unknown decision kind %q", d.Job, d.Kind)
		}
		if len(d.Nodes) == 0 || d.Kernel == "" {
			t.Fatalf("job %d: decision missing allocation or kernel", d.Job)
		}
	}
	if backfills != res.Backfilled {
		t.Fatalf("decision log has %d backfills, result reports %d", backfills, res.Backfilled)
	}
}

// TestObsFullScaleTimeline is the acceptance gate at issue scale: the
// facility timeline of a 256-node, 1,000-job run is valid Chrome trace JSON
// (monotone per-lane timestamps, balanced spans — what Perfetto needs), with
// every job decided and every node track inside the facility pid range.
func TestObsFullScaleTimeline(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale facility run (use TestObsQuickRunArtifacts)")
	}
	cfg := Config{
		Nodes:       256,
		Jobs:        1000,
		Seed:        1,
		Backfill:    true,
		Share:       2,
		ArrivalMean: DefaultArrivalMean / 4,
	}
	o := &obs.Options{
		Timeline:  obs.NewTimeline(cfg.Nodes, cfg.Share, 0),
		Decisions: obs.NewDecisionLog(),
	}
	cfg.Observe = o
	res := mustRun(t, cfg)
	if res.Jobs != 1000 {
		t.Fatalf("launched %d jobs, want 1000", res.Jobs)
	}
	out := o.Timeline.JSON()
	if err := trace.Validate(out); err != nil {
		t.Fatalf("full-scale timeline failed validation: %v", err)
	}
	if d := o.Timeline.Events().Dropped(); d != 0 {
		t.Fatalf("full-scale timeline evicted %d events; raise DefaultTimelineCap", d)
	}
	evs, _, err := trace.ParseEvents(out)
	if err != nil {
		t.Fatal(err)
	}
	spans := 0
	for _, ev := range evs {
		if ev.Ph == trace.PhBegin || ev.Ph == trace.PhEnd {
			spans++
			if int(ev.Pid) >= cfg.Nodes {
				t.Fatalf("occupancy span %q on pid %d, outside the %d node tracks", ev.Name, ev.Pid, cfg.Nodes)
			}
		}
	}
	if spans == 0 {
		t.Fatal("timeline has no occupancy spans")
	}
	if got := o.Decisions.Len(); got != 1000 {
		t.Fatalf("decision log has %d records, want 1000", got)
	}
}

// TestSLOWatchdog: the three issue-named SLO kinds evaluate deterministically
// in Result.SLO; an impossible rule fails the report without failing the
// run; an unknown metric fails the run itself.
func TestSLOWatchdog(t *testing.T) {
	cfg := quickCfg()
	var err error
	cfg.SLO, err = obs.ParseSLO("wait_p99_sec<=1e9;utilization_pct>=1;degraded_jobs<=0")
	if err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, cfg)
	if res.SLO == nil || !res.SLO.Passed || len(res.SLO.Results) != 3 {
		t.Fatalf("SLO report = %+v, want 3 passing rules", res.SLO)
	}

	cfg.SLO, err = obs.ParseSLO(fmt.Sprintf("utilization_pct>=%f", res.UtilizationPct+1))
	if err != nil {
		t.Fatal(err)
	}
	failRes := mustRun(t, cfg)
	if failRes.SLO == nil || failRes.SLO.Passed {
		t.Fatal("impossible utilization rule passed")
	}

	cfg.SLO = &obs.SLO{Rules: []obs.SLORule{{Metric: "no_such_metric", Op: obs.OpLE, Threshold: 1}}}
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown SLO metric did not fail the run")
	}
}

// TestTimelineDimensionMismatch: a timeline built for the wrong facility
// shape is a config error, not a latent panic.
func TestTimelineDimensionMismatch(t *testing.T) {
	cfg := quickCfg()
	cfg.Observe = &obs.Options{Timeline: obs.NewTimeline(cfg.Nodes/2, cfg.Share, 0)}
	if _, err := Run(cfg); err == nil {
		t.Fatal("mismatched timeline dimensions accepted")
	}
}
