package fleet

import (
	"fmt"

	"mklite/internal/apps"
	"mklite/internal/sim"
)

// Job is one generated unit of the facility's workload: an application at a
// node count with a timestep budget, an arrival time on the virtual facility
// clock, and a walltime limit for the scheduler's reservations. Jobs are
// immutable after generation — the scheduler passes them into par worker
// closures, so any mutable launch-time state (kernel choice, allocation,
// interference plan) lives in the scheduler's launch spec, never on the Job.
type Job struct {
	// ID is the job's position in the stream; per-job seeds derive from it.
	ID int
	// App is the job's application spec, cloned from the registry with the
	// job's own timestep budget.
	App *apps.Spec
	// Nodes is the requested node count (<= facility size by construction).
	Nodes int
	// Timesteps is the job's timestep budget (App.Timesteps == Timesteps).
	Timesteps int
	// Seed is the job's cluster-run seed, derived from (Config.Seed, ID)
	// only — never from scheduling state — so the simulated outcome is
	// independent of when the scheduler launches the job.
	Seed uint64
	// Arrival is the job's submission time on the facility clock.
	Arrival sim.Time
	// WallLimit is the job's walltime request: a deterministic runtime
	// estimate times a drawn safety factor. Reservations in the
	// conservative-backfill pass are sized by it; jobs are never killed
	// for exceeding it (the scheduler learns exact completion times at
	// launch, so an overrun only makes a reservation conservative).
	WallLimit sim.Duration
}

// GenerateStream produces the facility's job stream: Jobs arrivals from a
// Poisson process (exponential gaps, mean cfg.ArrivalMean), each job's
// application drawn uniformly from the registry, node count drawn from the
// application's evaluated sizes capped at cfg.MaxJobNodes, and timestep
// budget drawn uniformly in [MinTimesteps, MaxTimesteps]. Every draw comes
// from sim.StreamSeed sub-streams of cfg.Seed: the arrival process has its
// own stream, and each job's attributes come from the job's own stream, so
// the stream is reproducible job by job.
func GenerateStream(cfg Config) ([]*Job, error) {
	cfg = cfg.normalize()
	all := apps.All()
	arr := sim.NewRNG(sim.StreamSeed(cfg.Seed, StreamArrivals))
	attrSeedBase := sim.StreamSeed(cfg.Seed, StreamJobs)
	runSeedBase := sim.StreamSeed(cfg.Seed, StreamRuns)

	jobs := make([]*Job, cfg.Jobs)
	clock := sim.Time(0)
	for i := range jobs {
		gap := sim.Duration(arr.ExpFloat64() * float64(cfg.ArrivalMean))
		clock = clock.Add(gap)
		j, err := generateJob(cfg, all, attrSeedBase, runSeedBase, i, clock)
		if err != nil {
			return nil, err
		}
		jobs[i] = j
	}
	return jobs, nil
}

// generateJob draws job i's attributes from its own stream.
func generateJob(cfg Config, all []*apps.Spec, attrSeedBase, runSeedBase uint64, i int, arrival sim.Time) (*Job, error) {
	rng := sim.NewRNG(sim.StreamSeed(attrSeedBase, uint64(i)))
	base := all[rng.Intn(len(all))]

	counts := eligibleNodeCounts(base, cfg.MaxJobNodes)
	if len(counts) == 0 {
		return nil, fmt.Errorf("fleet: %s has no evaluated node count <= %d", base.Name, cfg.MaxJobNodes)
	}
	nodes := counts[rng.Intn(len(counts))]

	budget := cfg.MinTimesteps
	if cfg.MaxTimesteps > cfg.MinTimesteps {
		budget += rng.Intn(cfg.MaxTimesteps - cfg.MinTimesteps + 1)
	}
	spec := *base // shallow clone: workload closures are immutable shared data
	spec.Timesteps = budget
	if err := spec.Validate(); err != nil {
		return nil, err
	}

	// Walltime requests overestimate like real users do: estimate x [1.5, 3).
	safety := 1.5 + 1.5*rng.Float64()
	limit := sim.Duration(float64(estimateRuntime(&spec, nodes)) * safety)

	return &Job{
		ID:        i,
		App:       &spec,
		Nodes:     nodes,
		Timesteps: budget,
		Seed:      sim.StreamSeed(runSeedBase, uint64(i)),
		Arrival:   arrival,
		WallLimit: limit,
	}, nil
}

// eligibleNodeCounts filters an application's evaluated node counts to the
// facility's per-job cap.
func eligibleNodeCounts(s *apps.Spec, maxNodes int) []int {
	var out []int
	for _, n := range s.NodeCounts {
		if n <= maxNodes {
			out = append(out, n)
		}
	}
	return out
}

// estimateRuntime is the scheduler-side runtime estimate a user would put on
// a job script: per-step compute at the spec's achieved rate plus memory
// traffic at a nominal per-rank bandwidth share, plus a setup term for
// first-touching the working set. It is deliberately coarse — walltime
// requests only size reservations — but deterministic and monotone in the
// job's real cost, which is what backfill quality depends on.
func estimateRuntime(s *apps.Spec, nodes int) sim.Duration {
	const (
		nodeBandwidth  = 400e9 // MCDRAM-class stream bandwidth, bytes/s
		setupBandwidth = 30e9  // first-touch fault-and-zero bandwidth, bytes/s
	)
	perRankBW := nodeBandwidth / float64(s.RanksPerNode)
	compute := s.FlopsPerStep(nodes) / (s.EffGFlops * 1e9)
	memory := float64(s.MemTrafficPerStep(nodes)) / perRankBW
	step := (compute + memory) * 1.3 // slack for comm, heap and noise
	setup := float64(s.WorkingSetPerRank(nodes)) * float64(s.RanksPerNode) / setupBandwidth
	sec := float64(s.Timesteps)*step + setup
	d := sim.Duration(sec * float64(sim.Second))
	if d < sim.Millisecond {
		d = sim.Millisecond
	}
	return d
}
