package fleet

import (
	"encoding/json"
	"testing"

	"mklite/internal/apps"
	"mklite/internal/fault"
	"mklite/internal/kernel"
	"mklite/internal/sched"
	"mklite/internal/sim"
)

// quickCfg is the test-sized facility: big enough to exercise backfill,
// co-tenancy interference and same-instant batches, small enough to run
// under -race in CI.
func quickCfg() Config {
	return Config{
		Nodes:    64,
		Jobs:     120,
		Seed:     7,
		Backfill: true,
		Share:    2,
		Counters: true,
		PerJob:   true,
	}
}

func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func resultBytes(t *testing.T, res *Result) []byte {
	t.Helper()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestWidthEquivalence is the facility-level determinism gate: the full
// Result — per-job outcomes, merged counters, quantiles — must be
// byte-identical whether same-instant batches run sequentially or at
// GOMAXPROCS width.
func TestWidthEquivalence(t *testing.T) {
	cfg := quickCfg()
	cfg.Workers = 1
	seq := resultBytes(t, mustRun(t, cfg))
	cfg.Workers = 0
	par := resultBytes(t, mustRun(t, cfg))
	if string(seq) != string(par) {
		t.Fatalf("facility result differs between widths 1 and GOMAXPROCS:\nseq: %.200s\npar: %.200s", seq, par)
	}
}

// TestFullScaleWidthEquivalence is the PR's acceptance gate at the scale
// the issue names: 1,000 jobs over a 256-node facility with backfill,
// co-tenancy sharing, interference and per-job counters, byte-identical
// between par widths 1 and GOMAXPROCS. It runs under -race in CI (~3s per
// width), so it doubles as the race gate for the launch fan-out.
func TestFullScaleWidthEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale facility run (use the quick TestWidthEquivalence)")
	}
	cfg := Config{
		Nodes:       256,
		Jobs:        1000,
		Seed:        1,
		Backfill:    true,
		Share:       2,
		ArrivalMean: DefaultArrivalMean / 4, // the experiment's loaded rate: real queue, real backfill
		Counters:    true,
		PerJob:      true,
	}
	cfg.Workers = 1
	seq := resultBytes(t, mustRun(t, cfg))
	cfg.Workers = 0
	par := resultBytes(t, mustRun(t, cfg))
	if string(seq) != string(par) {
		t.Fatal("full-scale facility result differs between widths 1 and GOMAXPROCS")
	}
	var res Result
	if err := json.Unmarshal(seq, &res); err != nil {
		t.Fatal(err)
	}
	if res.Jobs != 1000 || res.FacilityNodes != 256 {
		t.Fatalf("acceptance scale: got %d jobs on %d nodes, want 1000 on 256", res.Jobs, res.FacilityNodes)
	}
}

// TestSeedReplayAndDivergence: same seed reproduces bytes; different seeds
// diverge (the digest is not vacuous).
func TestSeedReplayAndDivergence(t *testing.T) {
	a := resultBytes(t, mustRun(t, quickCfg()))
	b := resultBytes(t, mustRun(t, quickCfg()))
	if string(a) != string(b) {
		t.Fatal("same (Config, Seed) produced different result bytes")
	}
	cfg := quickCfg()
	cfg.Seed = 8
	c := resultBytes(t, mustRun(t, cfg))
	if string(a) == string(c) {
		t.Fatal("different seeds produced identical result bytes")
	}
}

// TestRunInvariants sanity-checks one quick facility run's aggregates.
func TestRunInvariants(t *testing.T) {
	cfg := quickCfg()
	res := mustRun(t, cfg)
	if res.Jobs != cfg.Jobs {
		t.Fatalf("launched %d of %d jobs", res.Jobs, cfg.Jobs)
	}
	if len(res.PerJob) != cfg.Jobs {
		t.Fatalf("PerJob has %d records, want %d", len(res.PerJob), cfg.Jobs)
	}
	if res.MakespanSec <= 0 || res.JobsPerHour <= 0 {
		t.Fatalf("degenerate makespan %v / throughput %v", res.MakespanSec, res.JobsPerHour)
	}
	if res.UtilizationPct <= 0 || res.UtilizationPct > 100 {
		t.Fatalf("utilization %v%% out of range", res.UtilizationPct)
	}
	if res.WaitP50Sec > res.WaitP99Sec || res.WaitP99Sec > res.WaitMaxSec {
		t.Fatalf("wait quantiles out of order: p50=%v p99=%v max=%v",
			res.WaitP50Sec, res.WaitP99Sec, res.WaitMaxSec)
	}
	total := 0
	for _, n := range res.KernelJobs {
		total += n
	}
	if total != cfg.Jobs {
		t.Fatalf("KernelJobs sums to %d, want %d", total, cfg.Jobs)
	}
	if res.Counters["fleet.jobs_launched"] != int64(cfg.Jobs) ||
		res.Counters["fleet.jobs_completed"] != int64(cfg.Jobs) {
		t.Fatalf("scheduler counters inconsistent: %v", res.Counters)
	}
	// Share=2 on a loaded facility must actually co-locate some jobs, and
	// co-located jobs must carry interference plans.
	if res.Interfered == 0 {
		t.Fatal("Share=2 run co-located no jobs")
	}
	// The default interference template injects storms and offload stalls;
	// at least one fault.* mechanism counter must have fired.
	faultKeys := 0
	for k := range res.Counters {
		if len(k) > 6 && k[:6] == "fault." {
			faultKeys++
		}
	}
	if faultKeys == 0 {
		t.Fatal("interfered jobs produced no fault.* counters")
	}
	for i, o := range res.PerJob {
		if o.ID != i {
			t.Fatalf("PerJob[%d] has ID %d", i, o.ID)
		}
		if o.StartSec < o.ArrivalSec {
			t.Fatalf("job %d started before it arrived", i)
		}
	}
}

// TestFIFOvsBackfill: strict FIFO backfills nothing; conservative backfill
// starts some jobs early and must not worsen the queue-head-blocking p99
// wait. (The in-pass invariant check panics on any head delay, so a passing
// run is itself evidence the invariant held on every pass.)
func TestFIFOvsBackfill(t *testing.T) {
	cfg := quickCfg()
	cfg.Backfill = false
	fifo := mustRun(t, cfg)
	if fifo.Backfilled != 0 {
		t.Fatalf("FIFO run reports %d backfilled jobs", fifo.Backfilled)
	}
	cfg.Backfill = true
	bf := mustRun(t, cfg)
	if bf.Backfilled == 0 {
		t.Fatal("backfill run backfilled nothing")
	}
	if bf.MakespanSec > fifo.MakespanSec*1.05 {
		t.Fatalf("backfill worsened makespan: %.3fs vs FIFO %.3fs", bf.MakespanSec, fifo.MakespanSec)
	}
}

// TestStreamDeterminism: the generated stream is reproducible and its
// attributes respect the configured bounds.
func TestStreamDeterminism(t *testing.T) {
	cfg := Config{Nodes: 64, Jobs: 200, Seed: 3}
	a, err := GenerateStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clock := sim.Time(0)
	for i := range a {
		// Job embeds a spec pointer; compare the spec by name and the rest
		// by value.
		aj, bj := *a[i], *b[i]
		aj.App, bj.App = nil, nil
		if aj != bj || a[i].App.Name != b[i].App.Name {
			t.Fatalf("job %d differs between replays: %+v vs %+v", i, aj, bj)
		}
		j := a[i]
		if j.Arrival.Before(clock) {
			t.Fatalf("job %d arrives before its predecessor", i)
		}
		clock = j.Arrival
		if j.Nodes < 1 || j.Nodes > DefaultMaxJobNodes {
			t.Fatalf("job %d node count %d out of range", i, j.Nodes)
		}
		if j.Timesteps < DefaultMinTimesteps || j.Timesteps > DefaultMaxTimesteps {
			t.Fatalf("job %d timestep budget %d out of range", i, j.Timesteps)
		}
		if j.App.Timesteps != j.Timesteps {
			t.Fatalf("job %d spec clone has %d timesteps, want %d", i, j.App.Timesteps, j.Timesteps)
		}
		if j.WallLimit < estimateRuntime(j.App, j.Nodes) {
			t.Fatalf("job %d walltime limit below its runtime estimate", i)
		}
	}
}

// TestAllocator covers placement, co-tenancy reporting and release.
func TestAllocator(t *testing.T) {
	a := NewAllocator(4, 2)
	n1, c1, err := a.Alloc(3)
	if err != nil || c1 != 0 {
		t.Fatalf("Alloc(3) = %v cotenancy %d, err %v", n1, c1, err)
	}
	if want := []int{0, 1, 2}; len(n1) != 3 || n1[0] != want[0] || n1[1] != want[1] || n1[2] != want[2] {
		t.Fatalf("Alloc(3) picked %v, want lowest indices %v", n1, want)
	}
	// Next job prefers the empty node 3, then doubles up from index 0.
	n2, c2, err := a.Alloc(2)
	if err != nil {
		t.Fatal(err)
	}
	if n2[0] != 3 || n2[1] != 0 || c2 != 1 {
		t.Fatalf("Alloc(2) = %v cotenancy %d, want [3 0] cotenancy 1", n2, c2)
	}
	if a.Occupied() != 4 {
		t.Fatalf("Occupied = %d, want 4", a.Occupied())
	}
	if a.Fits(4) {
		t.Fatal("Fits(4) should fail with only 3 single-occupancy nodes left")
	}
	a.Free(n1)
	if a.Occupied() != 2 || !a.Fits(4) {
		t.Fatalf("after free: occupied %d, Fits(4)=%v", a.Occupied(), a.Fits(4))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	a.Free(n1)
}

// TestProfile covers the backfill planning timeline.
func TestProfile(t *testing.T) {
	now := sim.Time(0)
	p := newProfile(now, 2, []release{
		{at: sim.Time(10 * sim.Second), slots: 4},
		{at: sim.Time(20 * sim.Second), slots: 2},
	})
	if got := p.earliest(sim.Duration(5*sim.Second), 2); got != now {
		t.Fatalf("earliest(2 slots) = %v, want now", got)
	}
	if got := p.earliest(sim.Duration(5*sim.Second), 4); got != sim.Time(10*sim.Second) {
		t.Fatalf("earliest(4 slots) = %v, want 10s", got)
	}
	if got := p.earliest(sim.Duration(5*sim.Second), 8); got != sim.Time(20*sim.Second) {
		t.Fatalf("earliest(8 slots) = %v, want 20s", got)
	}
	// Take the current 2 slots until 12s: free becomes 0 until 10s, then 4
	// (the release net of the held reservation), so a 4-slot request clears
	// at 10s and a 6-slot request only once the reservation ends at 12s.
	p.take(now, sim.Duration(12*sim.Second), 2)
	if got := p.earliest(sim.Duration(1*sim.Second), 4); got != sim.Time(10*sim.Second) {
		t.Fatalf("earliest(4 slots) after take = %v, want 10s", got)
	}
	if got := p.earliest(sim.Duration(1*sim.Second), 6); got != sim.Time(12*sim.Second) {
		t.Fatalf("earliest(6 slots) after take = %v, want 12s", got)
	}
	if p.fitsAt(now, sim.Duration(1*sim.Second), 1) {
		t.Fatal("fitsAt claims free slots during a full reservation")
	}
}

// TestPolicies pins each policy's kernel choices on the registry's profiles.
func TestPolicies(t *testing.T) {
	if got := Fixed(kernel.TypeMOS).Name(); got != "fixed-mos" {
		t.Fatalf("Fixed name = %q", got)
	}
	stream, err := GenerateStream(Config{Nodes: 64, Jobs: 400, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	h := Heuristic()
	counts := map[kernel.Type]int{}
	for _, j := range stream {
		ch := h.Select(j)
		if ch.Sched != "" {
			t.Fatalf("heuristic forced scheduler %q, want kernel default", ch.Sched)
		}
		k := ch.Kernel
		counts[k]++
		switch j.App.Name {
		case "lammps", "amg2013":
			// Device-syscall heavy / yield-storm apps stay on Linux.
			if k != kernel.TypeLinux {
				t.Fatalf("heuristic sent %s to %v", j.App.Name, k)
			}
		case "lulesh2.0":
			// The heap-trace app goes to mOS.
			if k != kernel.TypeMOS {
				t.Fatalf("heuristic sent lulesh to %v", k)
			}
		}
		if Fixed(kernel.TypeLinux).Select(j).Kernel != kernel.TypeLinux {
			t.Fatal("fixed policy deviated")
		}
	}
	if len(counts) < 3 {
		t.Fatalf("heuristic used %d kernels over the stream, want all 3 (%v)", len(counts), counts)
	}
}

// TestSpecializeCalibration: the calibration table is deterministic across
// widths, covers every registry app, and mostly prefers the LWKs (the
// paper's headline result at small scale with no interference is that LWKs
// win or tie).
func TestSpecializeCalibration(t *testing.T) {
	p1, err := Specialize(11, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	p0, err := Specialize(11, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	t1, t0 := p1.(*specializePolicy).Table(), p0.(*specializePolicy).Table()
	if len(t1) == 0 {
		t.Fatal("empty calibration table")
	}
	for i := range t1 {
		if t1[i] != t0[i] {
			t.Fatalf("calibration differs between widths: %v vs %v", t1, t0)
		}
	}
	lwk := 0
	for _, e := range t1 {
		if e[len(e)-5:] != "linux" {
			lwk++
		}
	}
	if lwk == 0 {
		t.Fatalf("calibration specialized nothing to an LWK: %v", t1)
	}
}

// TestParsePolicy covers the CLI surface.
func TestParsePolicy(t *testing.T) {
	for _, name := range []string{"fixed-linux", "fixed-mckernel", "fixed-mos", "heuristic"} {
		p, err := ParsePolicy(name, 1, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != name {
			t.Fatalf("ParsePolicy(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := ParsePolicy("round-robin", 1, 1, nil); err == nil {
		t.Fatal("unknown policy accepted")
	}

	// The ":<sched>" suffix forces a scheduler on every selection.
	p, err := ParsePolicy("heuristic:gang", 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "heuristic:gang" {
		t.Fatalf("ParsePolicy(heuristic:gang).Name() = %q", p.Name())
	}
	j := &Job{App: apps.MiniFE(), Nodes: 4}
	ch := p.Select(j)
	if ch.Sched != sched.Gang {
		t.Fatalf("heuristic:gang selected sched %q, want gang", ch.Sched)
	}
	if ch.Kernel != Heuristic().Select(j).Kernel {
		t.Fatal("sched suffix changed the kernel decision")
	}
	if _, err := ParsePolicy("fixed-linux:fifo", 1, 1, nil); err == nil {
		t.Fatal("unknown sched suffix accepted")
	}
}

// TestInterferenceScaling: the template's offload inflation and stall
// probability scale with co-tenancy; zero co-tenancy disables the plan.
func TestInterferenceScaling(t *testing.T) {
	tmpl := DefaultInterference()
	if p := interferenceFor(tmpl, 0); p != nil {
		t.Fatal("co-tenancy 0 should yield no plan")
	}
	if p := interferenceFor(nil, 3); p != nil {
		t.Fatal("nil template should yield no plan")
	}
	p1 := interferenceFor(tmpl, 1)
	p3 := interferenceFor(tmpl, 3)
	if p1.Storm.OffloadFactor != tmpl.Storm.OffloadFactor {
		t.Fatalf("co-tenancy 1 changed the template: %v", p1.Storm.OffloadFactor)
	}
	wantF := 1 + (tmpl.Storm.OffloadFactor-1)*3
	if p3.Storm.OffloadFactor != wantF {
		t.Fatalf("co-tenancy 3 offload factor %v, want %v", p3.Storm.OffloadFactor, wantF)
	}
	if p3.Offload.StallProb != tmpl.Offload.StallProb*3 {
		t.Fatalf("co-tenancy 3 stall prob %v, want %v", p3.Offload.StallProb, tmpl.Offload.StallProb*3)
	}
	if err := p3.Validate(); err != nil {
		t.Fatal(err)
	}
	// A huge co-tenancy saturates probabilities instead of leaving the
	// model's domain.
	if p := interferenceFor(tmpl, 1_000_000); p.Offload.StallProb > 1 {
		t.Fatalf("stall prob %v escaped [0,1]", p.Offload.StallProb)
	}
}

// TestInterferenceRejectsNodeFail: facility interference must not inject
// node failures (retries belong to per-job plans).
func TestInterferenceRejectsNodeFail(t *testing.T) {
	cfg := quickCfg()
	cfg.Interference = &fault.Plan{NodeFail: &fault.NodeFailure{Prob: 0.1}}
	if _, err := Run(cfg); err == nil {
		t.Fatal("node-failure interference accepted")
	}
}

// TestPolicySeparation is the facility-level policy comparison: running
// everything on Linux must measurably underperform the specialize policy on
// throughput — the MultiK argument, visible in facility metrics.
func TestPolicySeparation(t *testing.T) {
	cfg := quickCfg()
	cfg.PerJob = false
	cfg.Counters = false

	cfg.Policy = Fixed(kernel.TypeLinux)
	linux := mustRun(t, cfg)

	spec, err := Specialize(cfg.Seed, 0, cfg.Interference)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Policy = spec
	specRes := mustRun(t, cfg)

	if specRes.JobsPerHour < linux.JobsPerHour*1.05 {
		t.Fatalf("no measurable policy separation: specialize %.1f jobs/h vs fixed-linux %.1f jobs/h",
			specRes.JobsPerHour, linux.JobsPerHour)
	}
}

// TestSchedChoiceFlowsThrough: a ":<sched>" policy records its scheduler on
// every per-job outcome and still produces a deterministic, completed run —
// the fleet seam carries the Choice end to end, and forcing a default-charge
// policy (tickless) leaves the facility byte-identical to the plain policy
// on the LWKs' jobs only insofar as the cluster model says so (here we only
// pin the plumbing, not the physics).
func TestSchedChoiceFlowsThrough(t *testing.T) {
	cfg := quickCfg()
	cfg.Jobs = 40
	pol, err := ParsePolicy("heuristic:rr", cfg.Seed, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Policy = pol
	res := mustRun(t, cfg)
	if res.Policy != "heuristic:rr" {
		t.Fatalf("result policy = %q", res.Policy)
	}
	if len(res.PerJob) != cfg.Jobs {
		t.Fatalf("per-job records = %d, want %d", len(res.PerJob), cfg.Jobs)
	}
	for _, o := range res.PerJob {
		if o.Sched != "rr" {
			t.Fatalf("job %d recorded sched %q, want rr", o.ID, o.Sched)
		}
	}

	// And the default spelling records no scheduler at all.
	cfg.Policy = Heuristic()
	base := mustRun(t, cfg)
	for _, o := range base.PerJob {
		if o.Sched != "" {
			t.Fatalf("default policy recorded sched %q on job %d", o.Sched, o.ID)
		}
	}

	// rr charges real overhead, so the facility outcome must differ from the
	// default — the choice reaches the cluster model, not just the report.
	if res.MakespanSec == base.MakespanSec {
		t.Fatal("forcing rr left the makespan bit-identical — sched choice not reaching the runs")
	}
}
