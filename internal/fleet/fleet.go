// Package fleet is the facility layer above internal/cluster: a
// deterministic SLURM-like batch scheduler that generates a seeded stream of
// jobs (arrival process, application mix, per-job node count and timestep
// budget), queues them with FIFO or conservative-backfill policies, selects
// a kernel per job through a pluggable policy (the MultiK twist: the
// facility scheduler chooses Linux vs McKernel vs mOS per job), allocates
// nodes from a finite facility — optionally oversubscribed, with cross-job
// interference on shared nodes expressed as daemon-storm / offload-contention
// fault plans — and drives every launched job through cluster.Run.
//
// The determinism contract is the module's usual one, lifted one level up:
// a facility run is a pure function of (Config, seed).
//
//  1. Every stochastic draw (interarrival gaps, job mix, node counts,
//     timestep budgets, walltime safety factors) comes from sim.StreamSeed
//     sub-streams of Config.Seed; per-job cluster seeds are derived from the
//     job ID, never from scheduling state, so a job's simulated outcome does
//     not depend on when — or how wide — the fan-out ran it.
//  2. The facility clock is virtual (sim.Time). Scheduling decisions depend
//     only on queue state at clock events (arrivals and completions), and
//     jobs that start at the same virtual instant are executed as one
//     internal/par batch whose results are joined in job order — byte-
//     identical at any par width, enforced by determinism tests at widths 1
//     and GOMAXPROCS under -race.
//  3. Scheduler and Allocator are per-facility-run state, like a *sim.RNG
//     or a *trace.Sink: they must never be captured across internal/par
//     worker closures. mklint's parshare analyzer rejects the capture; the
//     worker closures receive immutable launch specs and return results
//     that are merged after the join.
//
// Facility metrics flow through the existing observability stack: queue
// waits feed an internal metrics.Registry histogram (p50/p99 via the same
// quantile rule as every other figure), fleet.* counters ride a trace
// sink, and per-job cluster counters are merged in job order when enabled.
// See docs/FLEET.md.
package fleet

import (
	"fmt"

	"mklite/internal/fault"
	"mklite/internal/kernel"
	"mklite/internal/obs"
	"mklite/internal/sim"
)

// Stream ids for sim.StreamSeed: the workload generator's draw families.
// Each family has its own sub-stream of Config.Seed so adding a draw to one
// never perturbs another.
const (
	// StreamArrivals seeds the interarrival-gap draws.
	StreamArrivals uint64 = 0xf1ee70
	// StreamJobs is the base of the per-job attribute streams: job i draws
	// from sim.StreamSeed(sim.StreamSeed(seed, StreamJobs), i).
	StreamJobs uint64 = 0xf1ee71
	// StreamCalibrate seeds the specialize policy's calibration runs.
	StreamCalibrate uint64 = 0xf1ee72
	// StreamRuns is the base of the per-job cluster-run seeds: job i runs
	// with sim.StreamSeed(sim.StreamSeed(seed, StreamRuns), i), a family
	// disjoint from the attribute streams.
	StreamRuns uint64 = 0xf1ee73
)

// Config describes one facility run.
type Config struct {
	// Nodes is the facility size (the finite node pool jobs are allocated
	// from).
	Nodes int
	// Jobs is the number of jobs in the generated stream.
	Jobs int
	// Seed drives every stochastic draw; same (Config, Seed) => identical
	// Result bytes.
	Seed uint64
	// Workers bounds the par fan-out width for same-instant launch
	// batches (0 = GOMAXPROCS, 1 = sequential). Results are byte-identical
	// at any width.
	Workers int
	// Policy selects the kernel for each launched job; nil selects
	// Heuristic().
	Policy KernelPolicy
	// Backfill enables conservative backfill; false is strict FIFO (the
	// queue head blocks everything behind it).
	Backfill bool
	// BackfillDepth bounds how many queued jobs receive reservations per
	// scheduling pass (SLURM's bf_max_job_test); 0 selects
	// DefaultBackfillDepth. Only meaningful with Backfill set.
	BackfillDepth int
	// Share is the node oversubscription factor: how many jobs may
	// co-occupy one node (1 = exclusive allocation, the default).
	Share int
	// Interference is the per-job fault-plan template applied to jobs
	// whose allocation lands on nodes already occupied by other jobs
	// (Share > 1). Storm offload inflation and offload stall probability
	// scale with the launch-time co-tenancy. Nil selects
	// DefaultInterference() when Share > 1; an explicitly empty plan
	// disables interference.
	Interference *fault.Plan
	// ArrivalMean is the mean of the exponential interarrival gap; 0
	// selects DefaultArrivalMean.
	ArrivalMean sim.Duration
	// MaxJobNodes caps the per-job node count draw; 0 selects
	// DefaultMaxJobNodes. Draws are further capped at Nodes so every job
	// fits the facility.
	MaxJobNodes int
	// MinTimesteps/MaxTimesteps bound the per-job timestep budget draw;
	// zero selects DefaultMinTimesteps/DefaultMaxTimesteps.
	MinTimesteps int
	MaxTimesteps int
	// Counters merges every job's cluster-level mechanism counters (one
	// trace.Counters per job, created inside the worker closure, merged in
	// job order after the join) into Result.Counters.
	Counters bool
	// PerJob records every job's outcome into Result.PerJob.
	PerJob bool
	// Observe attaches the facility observability backends (internal/obs):
	// the node-occupancy timeline, the backfill decision log, the namespaced
	// per-job counter view, and per-job event tracks. Nil disables
	// everything; a run with Observe nil is byte-identical to one made
	// before the field existed.
	Observe *obs.Options
	// SLO is the declarative watchdog evaluated on the finished run's
	// summary metrics (see Result.SLOValues for the metric names); the
	// report lands in Result.SLO. Nil skips evaluation.
	SLO *obs.SLO
}

// Defaults for the zero-valued Config knobs.
const (
	DefaultBackfillDepth = 32
	DefaultShare         = 1
	DefaultArrivalMean   = 40 * sim.Millisecond
	DefaultMaxJobNodes   = 32
	DefaultMinTimesteps  = 8
	DefaultMaxTimesteps  = 24
)

// normalize fills defaults.
func (c Config) normalize() Config {
	if c.Nodes <= 0 {
		c.Nodes = 256
	}
	if c.Jobs <= 0 {
		c.Jobs = 1000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Policy == nil {
		c.Policy = Heuristic()
	}
	if c.BackfillDepth <= 0 {
		c.BackfillDepth = DefaultBackfillDepth
	}
	if c.Share <= 0 {
		c.Share = DefaultShare
	}
	if c.Interference == nil && c.Share > 1 {
		c.Interference = DefaultInterference()
	}
	if c.ArrivalMean <= 0 {
		c.ArrivalMean = DefaultArrivalMean
	}
	if c.MaxJobNodes <= 0 {
		c.MaxJobNodes = DefaultMaxJobNodes
	}
	if c.MaxJobNodes > c.Nodes {
		c.MaxJobNodes = c.Nodes
	}
	if c.MinTimesteps <= 0 {
		c.MinTimesteps = DefaultMinTimesteps
	}
	if c.MaxTimesteps < c.MinTimesteps {
		c.MaxTimesteps = DefaultMaxTimesteps
	}
	if c.MaxTimesteps < c.MinTimesteps {
		c.MaxTimesteps = c.MinTimesteps
	}
	return c
}

// validate rejects configs outside the model's domain.
func (c Config) validate() error {
	if err := c.Interference.Validate(); err != nil {
		return fmt.Errorf("fleet: interference plan: %w", err)
	}
	if c.Interference != nil && c.Interference.NodeFail != nil {
		return fmt.Errorf("fleet: interference plan must not inject node failures (job retries belong to per-job plans)")
	}
	if c.Observe.TimelineOn() {
		tl := c.Observe.Timeline
		if tl.Nodes() != c.Nodes || tl.Share() != c.Share {
			return fmt.Errorf("fleet: timeline built for %d nodes x %d slots, facility is %d x %d",
				tl.Nodes(), tl.Share(), c.Nodes, c.Share)
		}
	}
	return nil
}

// DefaultInterference is the built-in co-tenancy fault-plan template: a
// daemon storm (the neighbour job's Linux-side services competing for the
// shared node's cores) plus offload-channel contention (its offloaded
// syscalls queueing against ours on the shared Linux cores). On Linux the
// storm lands on the application cores directly; on the LWKs the
// partitioned cores stay clean but every offloaded syscall pays the
// inflated round trip — the paper's isolation argument, at facility scale.
// Burst intensity and stall probability scale with launch-time co-tenancy.
func DefaultInterference() *fault.Plan {
	return &fault.Plan{
		Storm: &fault.DaemonStorm{
			Period:        2 * sim.Millisecond,
			Burst:         150 * sim.Microsecond,
			CV:            0.5,
			OffloadFactor: 2,
		},
		Offload: &fault.OffloadFault{
			StallProb: 0.002,
			Stall:     200 * sim.Microsecond,
		},
	}
}

// interferenceFor instantiates the template for a job with the given
// launch-time co-tenancy (the maximum number of other jobs already occupying
// any of its allocated nodes). Co-tenancy 0 (exclusive nodes) returns nil.
// The daemon-storm offload inflation and the offload stall probability scale
// linearly with co-tenancy; the storm's burst pattern itself does not (the
// shared Linux cores saturate, they do not multiply).
func interferenceFor(tmpl *fault.Plan, cotenancy int) *fault.Plan {
	if tmpl == nil || cotenancy <= 0 || tmpl.Empty() {
		return nil
	}
	c := float64(cotenancy)
	p := &fault.Plan{}
	if s := tmpl.Storm; s != nil {
		storm := *s
		if storm.OffloadFactor > 1 {
			storm.OffloadFactor = 1 + (storm.OffloadFactor-1)*c
		}
		p.Storm = &storm
	}
	if o := tmpl.Offload; o != nil {
		off := *o
		off.StallProb = min(off.StallProb*c, 1)
		p.Offload = &off
	}
	if l := tmpl.Link; l != nil {
		lnk := *l
		lnk.LossProb = min(lnk.LossProb*c, 0.999999)
		p.Link = &lnk
	}
	p.Stragglers = append(p.Stragglers, tmpl.Stragglers...)
	if p.Empty() {
		return nil
	}
	return p
}

// JobOutcome is one completed job's record in Result.PerJob.
type JobOutcome struct {
	ID     int    `json:"id"`
	App    string `json:"app"`
	Kernel string `json:"kernel"`
	// Sched is the policy's scheduler choice (empty = the kernel default,
	// omitted from JSON so default facilities stay byte-identical).
	Sched     string `json:"sched,omitempty"`
	Nodes     int    `json:"nodes"`
	Timesteps int    `json:"timesteps"`
	// Virtual facility-clock timeline, in seconds.
	ArrivalSec float64 `json:"arrival_sec"`
	StartSec   float64 `json:"start_sec"`
	WaitSec    float64 `json:"wait_sec"`
	ElapsedSec float64 `json:"elapsed_sec"`
	FOM        float64 `json:"fom"`
	// Backfilled reports the job started ahead of an earlier-arrived job
	// that was still waiting.
	Backfilled bool `json:"backfilled,omitempty"`
	// Cotenancy is the launch-time co-tenancy (0 = exclusive nodes).
	Cotenancy int `json:"cotenancy,omitempty"`
}

// Result is one facility run's outcome. All fields are deterministic
// functions of (Config, Seed); the JSON form is byte-stable (map keys are
// sorted by encoding/json), which CI exploits with a two-run diff.
type Result struct {
	Policy        string `json:"policy"`
	FacilityNodes int    `json:"facility_nodes"`
	Share         int    `json:"share"`
	Jobs          int    `json:"jobs"`
	Backfilled    int    `json:"backfilled"`
	// Interfered counts jobs launched with a non-nil co-tenancy plan.
	Interfered int `json:"interfered"`

	// MakespanSec is the virtual time from facility start to the last
	// completion.
	MakespanSec float64 `json:"makespan_sec"`
	// JobsPerHour is the facility throughput over the makespan, in jobs
	// per virtual hour.
	JobsPerHour float64 `json:"jobs_per_hour"`
	// UtilizationPct is the fraction of node-time with at least one job
	// resident, in percent of Nodes x makespan.
	UtilizationPct float64 `json:"utilization_pct"`

	// Queue-wait distribution over all jobs (virtual seconds), quantiles
	// from the internal metrics histogram (same Rank rule as every other
	// figure).
	WaitP50Sec  float64 `json:"wait_p50_sec"`
	WaitP99Sec  float64 `json:"wait_p99_sec"`
	WaitMaxSec  float64 `json:"wait_max_sec"`
	WaitMeanSec float64 `json:"wait_mean_sec"`

	// KernelJobs counts launched jobs per selected kernel.
	KernelJobs map[string]int `json:"kernel_jobs"`

	// DegradedJobs counts jobs whose cluster run completed degraded (on a
	// reduced node set). Fleet interference plans cannot inject node
	// failures, so this stays zero — and omitted — unless a custom policy
	// layer introduces them; the SLO watchdog still exposes it as the
	// degraded_jobs metric.
	DegradedJobs int `json:"degraded_jobs,omitempty"`

	// Counters is the job-order merge of every job's cluster-level
	// mechanism counters plus the fleet.* scheduler counters
	// (Config.Counters).
	Counters map[string]int64 `json:"counters,omitempty"`

	// JobCounters is the provenance-preserving per-job counter view,
	// namespaced job/<id>/<name> (Config.Observe.JobCounters). The flat
	// Counters merge is unchanged; this view is additional, so the sum of
	// job/<id>/x over all ids equals the per-job contribution to x.
	JobCounters map[string]int64 `json:"job_counters,omitempty"`

	// SLO is the watchdog report for Config.SLO, rule results in rule
	// order (nil when no SLO was configured).
	SLO *obs.SLOReport `json:"slo,omitempty"`

	// PerJob is the per-job record in job-ID order (Config.PerJob).
	PerJob []JobOutcome `json:"per_job,omitempty"`
}

// SLOValues publishes the run's summary metrics for obs.SLO evaluation.
// Every key here is a valid SLO rule metric; mkobs check evaluates specs
// against a loaded Result with the same map, so the CLI and the in-run
// watchdog can never disagree.
func (r *Result) SLOValues() map[string]float64 {
	return map[string]float64{
		"jobs":            float64(r.Jobs),
		"backfilled_jobs": float64(r.Backfilled),
		"interfered_jobs": float64(r.Interfered),
		"degraded_jobs":   float64(r.DegradedJobs),
		"makespan_sec":    r.MakespanSec,
		"jobs_per_hour":   r.JobsPerHour,
		"utilization_pct": r.UtilizationPct,
		"wait_p50_sec":    r.WaitP50Sec,
		"wait_p99_sec":    r.WaitP99Sec,
		"wait_max_sec":    r.WaitMaxSec,
		"wait_mean_sec":   r.WaitMeanSec,
	}
}

// Run executes one facility run: generate the stream, schedule it to
// completion, and report facility metrics. It is a pure function of cfg
// (including cfg.Seed).
func Run(cfg Config) (*Result, error) {
	cfg = cfg.normalize()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	stream, err := GenerateStream(cfg)
	if err != nil {
		return nil, err
	}
	s := newScheduler(cfg)
	return s.run(stream)
}

// kernelName is the display name used in KernelJobs and JobOutcome.
func kernelName(k kernel.Type) string { return k.String() }
