package fleet

import (
	"fmt"
	"maps"
	"slices"
	"strconv"

	"mklite/internal/cluster"
	"mklite/internal/metrics"
	"mklite/internal/obs"
	"mklite/internal/par"
	"mklite/internal/sim"
	"mklite/internal/trace"
)

// Scheduler is one facility run's mutable state: the virtual clock, the
// queue, the running set, the node allocator and the metrics being
// accumulated. Like *sim.RNG and *trace.Sink it is strictly per-run,
// single-goroutine state — the event loop is sequential, and the only
// concurrency is the internal/par fan-out over a launch batch, whose worker
// closures receive immutable launch specs and must never capture the
// Scheduler or its Allocator (mklint's parshare analyzer rejects the
// capture).
type Scheduler struct {
	cfg   Config
	alloc *Allocator

	clock   sim.Time
	queue   []*Job
	running []*runningJob

	// busyNodeNs accumulates occupied-nodes x virtual-time, the
	// utilization numerator (int64 node-nanoseconds).
	busyNodeNs int64
	lastEnd    sim.Time

	reg      *metrics.Registry
	counters *trace.Counters // fleet.* + merged per-job counters (cfg.Counters)

	// Observability backends (cfg.Observe) — passive, per-run, nil = off.
	// Like reg and counters they are scheduler-side state: the commit loop
	// feeds them after the par join, never the worker closures. The
	// job-counter view retains each job's own counter set and namespaces it
	// at result time — building the job/<id>/<name> map inline would put
	// ~10k map inserts' worth of allocation between launches, polluting the
	// simulator's caches (the same reason obs.Timeline defers its event
	// expansion).
	tl       *obs.Timeline
	dlog     *obs.DecisionLog
	jobSnaps []jobCounterSnap // per-job counters (Observe.JobCounters)
	// resScratch is the reservation-mirror buffer schedulePass fills when
	// the decision log is on — reused across passes (each backfill launch
	// copies its own evidence snapshot) so the mirror does not reallocate
	// on every clock event.
	resScratch []obs.Reservation

	backfilled int
	interfered int
	degraded   int
	kernelJobs map[string]int
	outcomes   []JobOutcome
	launched   int
}

// runningJob is one resident job: its launch decisions plus the completion
// time learned from the cluster run at launch.
type runningJob struct {
	job   *Job
	nodes []int
	start sim.Time
	end   sim.Time
}

// jobCounterSnap retains one job's own counter set (built inside the worker
// closure) until result time, when the job/<id>/<name> view is assembled.
type jobCounterSnap struct {
	id int
	c  *trace.Counters
}

// newScheduler builds the per-run state for cfg (already normalized).
func newScheduler(cfg Config) *Scheduler {
	s := &Scheduler{
		cfg:        cfg,
		alloc:      NewAllocator(cfg.Nodes, cfg.Share),
		reg:        metrics.NewRegistry(),
		kernelJobs: map[string]int{},
	}
	if cfg.Counters {
		s.counters = trace.NewCounters()
	}
	if cfg.PerJob {
		s.outcomes = make([]JobOutcome, cfg.Jobs)
	}
	if o := cfg.Observe; o.Enabled() {
		s.tl = o.Timeline
		s.dlog = o.Decisions
	}
	return s
}

// run drives the stream to completion. The loop advances the virtual clock
// to the next event (an arrival or a completion), processes completions then
// arrivals at that instant, and launches every job the scheduling pass
// admits as one par batch — so jobs that start at the same virtual instant
// execute concurrently, joined in batch order.
func (s *Scheduler) run(stream []*Job) (*Result, error) {
	next := 0
	for next < len(stream) || len(s.queue) > 0 || len(s.running) > 0 {
		t := sim.Never
		if next < len(stream) {
			t = stream[next].Arrival
		}
		for _, r := range s.running {
			if r.end.Before(t) {
				t = r.end
			}
		}
		if t == sim.Never {
			// Queue non-empty with nothing running and nothing arriving:
			// the head must fit an empty facility (normalize caps
			// MaxJobNodes at Nodes), so this is unreachable.
			return nil, fmt.Errorf("fleet: scheduler stuck with %d queued jobs", len(s.queue))
		}

		s.busyNodeNs += int64(s.alloc.Occupied()) * int64(t.Sub(s.clock))
		s.clock = t

		s.completeAt(t)
		for next < len(stream) && stream[next].Arrival == t {
			s.queue = append(s.queue, stream[next])
			next++
		}
		if s.counters != nil {
			s.counters.Add("fleet.sched_passes", 1)
		}
		if batch := s.schedulePass(); len(batch) > 0 {
			if err := s.launch(batch); err != nil {
				return nil, err
			}
		}
		// One facility-lane sample per clock event, after the pass's
		// launches commit: the queue depth and node occupancy the event
		// left behind.
		s.tl.Sample(int64(t), len(s.queue), s.alloc.Occupied())
	}
	return s.result()
}

// completeAt frees every job ending at t, in job-ID order so the allocator's
// occupancy history — and with it every later co-tenancy draw — is a pure
// function of the schedule, not of the running list's internal order.
func (s *Scheduler) completeAt(t sim.Time) {
	var done []*runningJob
	kept := s.running[:0]
	for _, r := range s.running {
		if r.end == t {
			done = append(done, r)
		} else {
			kept = append(kept, r)
		}
	}
	s.running = kept
	slices.SortFunc(done, func(a, b *runningJob) int { return a.job.ID - b.job.ID })
	for _, r := range done {
		s.alloc.Free(r.nodes)
		s.tl.JobEnd(int64(t), r.job.ID)
		if s.counters != nil {
			s.counters.Add("fleet.jobs_completed", 1)
		}
	}
}

// runOut is one worker's return: the cluster result plus the job's own
// counters and event ring (created inside the closure, merged in batch
// order after the join).
type runOut struct {
	res      cluster.Result
	counters *trace.Counters
	events   *trace.Events
}

// launch executes one same-instant batch through internal/par and commits
// the results to the facility state. The worker closure captures only the
// batch slice and plain locals — never the Scheduler, nor the obs backends
// (each job builds its own counters and event ring; the commit loop merges
// them in batch order) — and each job's outcome depends only on its launch
// spec and its own seed, so the batch is byte-identical at any fan-out
// width.
func (s *Scheduler) launch(batch []*launch) error {
	workers := s.cfg.Workers
	counting := s.cfg.Counters || s.cfg.Observe.JobCountersOn()
	eventing := s.cfg.Observe.JobEventsOn()
	ringCap := s.cfg.Observe.JobEventRingCap()
	outs, err := par.MapWidthErr(workers, len(batch), func(i int) (runOut, error) {
		l := batch[i]
		var c *trace.Counters
		if counting {
			c = trace.NewCounters()
		}
		var ev *trace.Events
		if eventing {
			ev = trace.NewEvents(ringCap)
		}
		res, err := cluster.Run(cluster.Job{
			App:    l.job.App,
			Kernel: l.kernel,
			Sched:  l.sched,
			Nodes:  l.job.Nodes,
			Seed:   l.job.Seed,
			Sink:   trace.NewSink(c, ev),
			Faults: l.plan,
		})
		if err != nil {
			return runOut{}, fmt.Errorf("fleet: job %d (%s on %s): %w",
				l.job.ID, l.job.App.Name, kernelName(l.kernel), err)
		}
		return runOut{res: res, counters: c, events: ev}, nil
	})
	if err != nil {
		return err
	}

	for i, l := range batch {
		out := outs[i]
		resident := out.res.Setup + out.res.Elapsed
		end := s.clock.Add(resident)
		s.running = append(s.running, &runningJob{job: l.job, nodes: l.nodes, start: s.clock, end: end})
		if end.After(s.lastEnd) {
			s.lastEnd = end
		}

		wait := s.clock.Sub(l.job.Arrival)
		s.reg.Observe("fleet.wait_ns", int64(wait))
		s.launched++
		s.kernelJobs[kernelName(l.kernel)]++
		if l.backfilled {
			s.backfilled++
		}
		if l.plan != nil {
			s.interfered++
		}
		if out.res.Degraded {
			s.degraded++
		}
		s.observeLaunch(l, out)
		if s.counters != nil {
			s.counters.Add("fleet.jobs_launched", 1)
			if l.backfilled {
				s.counters.Add("fleet.jobs_backfilled", 1)
			}
			if l.plan != nil {
				s.counters.Add("fleet.jobs_interfered", 1)
			}
			s.counters.Merge(out.counters)
		}
		if s.outcomes != nil {
			s.outcomes[l.job.ID] = JobOutcome{
				ID:         l.job.ID,
				App:        l.job.App.Name,
				Kernel:     kernelName(l.kernel),
				Sched:      string(l.sched),
				Nodes:      l.job.Nodes,
				Timesteps:  l.job.Timesteps,
				ArrivalSec: l.job.Arrival.Seconds(),
				StartSec:   s.clock.Seconds(),
				WaitSec:    wait.Seconds(),
				ElapsedSec: resident.Seconds(),
				FOM:        out.res.FOM,
				Backfilled: l.backfilled,
				Cotenancy:  l.cotenancy,
			}
		}
	}
	if s.counters != nil {
		s.counters.Add("fleet.launch_batches", 1)
		s.counters.Max("fleet.batch_max", int64(len(batch)))
	}
	return nil
}

// observeLaunch commits one launched job to the obs backends: the occupancy
// span on every allocated node, the job's own event track, the namespaced
// counter view, and the decision record. Runs in the sequential batch-order
// commit loop, so every artifact is a pure function of the schedule.
func (s *Scheduler) observeLaunch(l *launch, out runOut) {
	if s.tl != nil {
		name := fmt.Sprintf("job %d %s/%s", l.job.ID, l.job.App.Name, kernelName(l.kernel))
		s.tl.JobStart(int64(s.clock), l.job.ID, name, l.nodes, map[string]int64{
			"nodes":     int64(l.job.Nodes),
			"timesteps": int64(l.job.Timesteps),
			"cotenancy": int64(l.cotenancy),
		})
		if out.events != nil {
			s.tl.AddJobEvents(l.job.ID, int64(s.clock), out.events.Snapshot(), out.events.Dropped())
		}
	}
	if s.cfg.Observe.JobCountersOn() && out.counters != nil {
		s.jobSnaps = append(s.jobSnaps, jobCounterSnap{id: l.job.ID, c: out.counters})
	}
	if s.dlog != nil {
		d := obs.Decision{
			Job:       l.job.ID,
			TimeNs:    int64(s.clock),
			Kind:      obs.KindFIFO,
			Kernel:    kernelName(l.kernel),
			Nodes:     append([]int(nil), l.nodes...),
			Cotenancy: l.cotenancy,
		}
		if l.backfilled {
			d.Kind = obs.KindBackfill
			d.Backfill = l.evidence
		}
		s.dlog.Record(d)
	}
}

// result assembles the facility metrics once the stream has drained.
func (s *Scheduler) result() (*Result, error) {
	r := &Result{
		Policy:        s.cfg.Policy.Name(),
		FacilityNodes: s.cfg.Nodes,
		Share:         s.cfg.Share,
		Jobs:          s.launched,
		Backfilled:    s.backfilled,
		Interfered:    s.interfered,
		KernelJobs:    map[string]int{},
		PerJob:        s.outcomes,
	}
	maps.Copy(r.KernelJobs, s.kernelJobs)

	makespan := s.lastEnd
	r.MakespanSec = makespan.Seconds()
	if makespan > 0 {
		r.JobsPerHour = float64(s.launched) / (makespan.Seconds() / 3600)
		r.UtilizationPct = 100 * float64(s.busyNodeNs) /
			(float64(s.cfg.Nodes) * float64(makespan))
	}

	if h := s.reg.Histogram("fleet.wait_ns"); h != nil {
		r.WaitP50Sec = h.Percentile(50) / float64(sim.Second)
		r.WaitP99Sec = h.Percentile(99) / float64(sim.Second)
		r.WaitMaxSec = float64(h.Max()) / float64(sim.Second)
		r.WaitMeanSec = h.Mean() / float64(sim.Second)
	}

	if s.counters != nil {
		r.Counters = s.counters.Map()
	}
	r.DegradedJobs = s.degraded
	if len(s.jobSnaps) > 0 {
		total := 0
		for _, sn := range s.jobSnaps {
			total += sn.c.Len()
		}
		jc := make(map[string]int64, total)
		for _, sn := range s.jobSnaps {
			prefix := "job/" + strconv.Itoa(sn.id) + "/"
			sn.c.Each(func(name string, v int64) {
				jc[prefix+name] = v
			})
		}
		r.JobCounters = jc
	}
	if s.cfg.SLO != nil {
		rep, err := s.cfg.SLO.Eval(r.SLOValues())
		if err != nil {
			return nil, err
		}
		r.SLO = rep
	}
	return r, nil
}
