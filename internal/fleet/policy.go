package fleet

import (
	"fmt"
	"maps"
	"slices"
	"strings"

	"mklite/internal/apps"
	"mklite/internal/cluster"
	"mklite/internal/fault"
	"mklite/internal/kernel"
	"mklite/internal/par"
	"mklite/internal/sim"
)

// KernelPolicy chooses a kernel for each job the facility launches — the
// MultiK-style twist on batch scheduling: the facility can boot Linux,
// McKernel or mOS per job, and the policy decides which. Implementations
// must be deterministic pure functions of the job (plus any state computed
// deterministically at construction); Select is called from the scheduler's
// single-goroutine event loop, never concurrently.
type KernelPolicy interface {
	// Name identifies the policy in results and reports.
	Name() string
	// Select returns the kernel to boot for the job.
	Select(j *Job) kernel.Type
}

// fixedPolicy runs every job on one kernel — the facility everyone operates
// today, and the baseline the adaptive policies are measured against.
type fixedPolicy struct{ k kernel.Type }

// Fixed returns the policy that runs every job on k.
func Fixed(k kernel.Type) KernelPolicy { return fixedPolicy{k} }

func (p fixedPolicy) Name() string              { return "fixed-" + strings.ToLower(p.k.String()) }
func (p fixedPolicy) Select(j *Job) kernel.Type { return p.k }

// heuristicPolicy is the static profile heuristic: it reads the
// application's published syscall/noise profile off its Spec and picks the
// kernel the paper's mechanisms favour. No measurement, no state — the
// decision a site admin could make from the app's man page.
//
//   - Offload-bound apps — a device-heavy syscall path (DeviceSyscallFactor)
//     or intense sched_yield spinning — keep paying the proxy/migration
//     round trip on an LWK, and under co-tenant interference that round
//     trip inflates; they stay on Linux.
//   - Everything else is noise-bound at scale: frequent global collectives
//     amplify Linux's daemon detours, so the LWKs win. Heap-replay-heavy
//     apps (a non-trivial brk trace) go to mOS, whose heap optimisation is
//     the paper's section IV subject; the rest go to McKernel.
type heuristicPolicy struct{}

// Heuristic returns the static profile-based policy.
func Heuristic() KernelPolicy { return heuristicPolicy{} }

func (heuristicPolicy) Name() string { return "heuristic" }

// Offload-pressure thresholds of the heuristic, exported for the docs and
// tests: an app whose device syscall factor or per-step sched_yield count
// reaches these stays on Linux.
const (
	HeuristicSyscallFactor = 8.0
	HeuristicYieldsPerStep = 8000
)

func (heuristicPolicy) Select(j *Job) kernel.Type {
	s := j.App
	if s.DeviceSyscallFactor >= HeuristicSyscallFactor || s.SchedYieldsPerStep >= HeuristicYieldsPerStep {
		return kernel.TypeLinux
	}
	if s.HeapOpsPerStep != nil && len(s.HeapOpsPerStep(j.Nodes)) > 0 {
		return kernel.TypeMOS
	}
	return kernel.TypeMcKernel
}

// specializePolicy is the MultiK-style measured policy: at construction it
// calibrates every application on every kernel — one short cluster run per
// (app, kernel) cell, under the facility's interference template so the
// choice reflects the environment jobs will actually land in — and
// specializes each app to the kernel that won its cell. Selection is then a
// pure table lookup.
type specializePolicy struct {
	table map[string]kernel.Type
}

// calibrationTimesteps is the per-cell budget of the specialize
// calibration: long enough for the steady-state step cost to dominate boot
// and setup, short enough that the whole 8x3 grid costs less than a handful
// of facility jobs.
const calibrationTimesteps = 12

// Specialize calibrates and returns the per-app specialization policy. The
// calibration grid (every registry app x every kernel) fans out through
// internal/par at the given width; results are byte-identical at any
// width because each cell derives its seed from (seed, cell index) and the
// argmax is taken after the join, in cell order. interference is the
// facility's co-tenancy template (nil = calibrate on quiet nodes);
// calibration applies it at co-tenancy 1.
func Specialize(seed uint64, workers int, interference *fault.Plan) (KernelPolicy, error) {
	all := apps.All()
	kts := []kernel.Type{kernel.TypeLinux, kernel.TypeMcKernel, kernel.TypeMOS}
	plan := interferenceFor(interference, 1)
	calSeedBase := sim.StreamSeed(seed, StreamCalibrate)

	foms, err := par.MapWidthErr(workers, len(all)*len(kts), func(i int) (float64, error) {
		app, kt := all[i/len(kts)], kts[i%len(kts)]
		spec := *app
		spec.Timesteps = calibrationTimesteps
		counts := eligibleNodeCounts(&spec, calibrationNodes)
		if len(counts) == 0 {
			return 0, fmt.Errorf("fleet: calibration: %s has no node count <= %d", app.Name, calibrationNodes)
		}
		res, err := cluster.Run(cluster.Job{
			App:    &spec,
			Kernel: kt,
			Nodes:  counts[len(counts)-1],
			Seed:   sim.StreamSeed(calSeedBase, uint64(i)),
			Faults: plan,
		})
		if err != nil {
			return 0, fmt.Errorf("fleet: calibrating %s on %v: %w", app.Name, kt, err)
		}
		return res.FOM, nil
	})
	if err != nil {
		return nil, err
	}

	table := make(map[string]kernel.Type, len(all))
	for ai, app := range all {
		best, bestFOM := kts[0], foms[ai*len(kts)]
		for ki := 1; ki < len(kts); ki++ {
			if f := foms[ai*len(kts)+ki]; f > bestFOM {
				best, bestFOM = kts[ki], f
			}
		}
		table[app.Name] = best
	}
	return &specializePolicy{table: table}, nil
}

// calibrationNodes caps the calibration cell's node count: the largest
// evaluated size up to this, so the cell sees collective amplification
// without paying a full-scale run.
const calibrationNodes = 16

func (p *specializePolicy) Name() string { return "specialize" }

func (p *specializePolicy) Select(j *Job) kernel.Type {
	if k, ok := p.table[j.App.Name]; ok {
		return k
	}
	return kernel.TypeMcKernel
}

// Table returns the calibrated app -> kernel map in app-name order, for
// reports and tests.
func (p *specializePolicy) Table() []string {
	var out []string
	for _, name := range slices.Sorted(maps.Keys(p.table)) {
		out = append(out, name+"="+strings.ToLower(p.table[name].String()))
	}
	return out
}

// PolicyNames lists the selectable policy spellings of ParsePolicy.
func PolicyNames() []string {
	return []string{"fixed-linux", "fixed-mckernel", "fixed-mos", "heuristic", "specialize"}
}

// ParsePolicy resolves a policy name. "specialize" runs its calibration
// grid, so it needs the facility seed, fan-out width and interference
// template; the other policies ignore them.
func ParsePolicy(name string, seed uint64, workers int, interference *fault.Plan) (KernelPolicy, error) {
	switch name {
	case "fixed-linux":
		return Fixed(kernel.TypeLinux), nil
	case "fixed-mckernel":
		return Fixed(kernel.TypeMcKernel), nil
	case "fixed-mos":
		return Fixed(kernel.TypeMOS), nil
	case "heuristic":
		return Heuristic(), nil
	case "specialize":
		return Specialize(seed, workers, interference)
	default:
		return nil, fmt.Errorf("fleet: unknown kernel policy %q (known: %v)", name, PolicyNames())
	}
}
