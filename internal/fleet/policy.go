package fleet

import (
	"fmt"
	"maps"
	"slices"
	"strings"

	"mklite/internal/apps"
	"mklite/internal/cluster"
	"mklite/internal/fault"
	"mklite/internal/kernel"
	"mklite/internal/par"
	"mklite/internal/sched"
	"mklite/internal/sim"
)

// Choice is one job's full placement decision: which kernel the facility
// boots for it, and which scheduling policy that kernel runs. An empty Sched
// keeps the kernel's boot-time default (cfs on Linux, coop on the LWKs),
// which is byte-identical to selecting the kernel alone.
type Choice struct {
	Kernel kernel.Type
	Sched  sched.Kind
}

// KernelPolicy chooses a kernel — and optionally a scheduler — for each job
// the facility launches: the MultiK-style twist on batch scheduling. The
// facility can boot Linux, McKernel or mOS per job with any sched.Kind, and
// the policy decides both. Implementations must be deterministic pure
// functions of the job (plus any state computed deterministically at
// construction); Select is called from the scheduler's single-goroutine
// event loop, never concurrently.
type KernelPolicy interface {
	// Name identifies the policy in results and reports.
	Name() string
	// Select returns the kernel (and scheduler) to boot for the job.
	Select(j *Job) Choice
}

// fixedPolicy runs every job on one kernel — the facility everyone operates
// today, and the baseline the adaptive policies are measured against.
type fixedPolicy struct{ k kernel.Type }

// Fixed returns the policy that runs every job on k with its default
// scheduler.
func Fixed(k kernel.Type) KernelPolicy { return fixedPolicy{k} }

func (p fixedPolicy) Name() string         { return "fixed-" + strings.ToLower(p.k.String()) }
func (p fixedPolicy) Select(j *Job) Choice { return Choice{Kernel: p.k} }

// schedOverride pins every job of a base policy to one scheduling policy —
// the ParsePolicy "<policy>:<sched>" suffix. The kernel decision is the
// base's; only the scheduler is forced.
type schedOverride struct {
	base KernelPolicy
	kind sched.Kind
}

// WithSched wraps a policy so every selected kernel boots with the given
// scheduler instead of its default.
func WithSched(p KernelPolicy, kind sched.Kind) KernelPolicy {
	return schedOverride{base: p, kind: kind}
}

func (p schedOverride) Name() string { return p.base.Name() + ":" + string(p.kind) }
func (p schedOverride) Select(j *Job) Choice {
	ch := p.base.Select(j)
	ch.Sched = p.kind
	return ch
}

// heuristicPolicy is the static profile heuristic: it reads the
// application's published syscall/noise profile off its Spec and picks the
// kernel the paper's mechanisms favour. No measurement, no state — the
// decision a site admin could make from the app's man page.
//
//   - Offload-bound apps — a device-heavy syscall path (DeviceSyscallFactor)
//     or intense sched_yield spinning — keep paying the proxy/migration
//     round trip on an LWK, and under co-tenant interference that round
//     trip inflates; they stay on Linux.
//   - Everything else is noise-bound at scale: frequent global collectives
//     amplify Linux's daemon detours, so the LWKs win. Heap-replay-heavy
//     apps (a non-trivial brk trace) go to mOS, whose heap optimisation is
//     the paper's section IV subject; the rest go to McKernel.
type heuristicPolicy struct{}

// Heuristic returns the static profile-based policy.
func Heuristic() KernelPolicy { return heuristicPolicy{} }

func (heuristicPolicy) Name() string { return "heuristic" }

// Offload-pressure thresholds of the heuristic, exported for the docs and
// tests: an app whose device syscall factor or per-step sched_yield count
// reaches these stays on Linux.
const (
	HeuristicSyscallFactor = 8.0
	HeuristicYieldsPerStep = 8000
)

func (heuristicPolicy) Select(j *Job) Choice {
	s := j.App
	if s.DeviceSyscallFactor >= HeuristicSyscallFactor || s.SchedYieldsPerStep >= HeuristicYieldsPerStep {
		return Choice{Kernel: kernel.TypeLinux}
	}
	if s.HeapOpsPerStep != nil && len(s.HeapOpsPerStep(j.Nodes)) > 0 {
		return Choice{Kernel: kernel.TypeMOS}
	}
	return Choice{Kernel: kernel.TypeMcKernel}
}

// specializePolicy is the MultiK-style measured policy: at construction it
// calibrates every application on every kernel — one short cluster run per
// (app, kernel) cell, under the facility's interference template so the
// choice reflects the environment jobs will actually land in — and
// specializes each app to the kernel that won its cell. Selection is then a
// pure table lookup.
type specializePolicy struct {
	table map[string]kernel.Type
}

// calibrationTimesteps is the per-cell budget of the specialize
// calibration: long enough for the steady-state step cost to dominate boot
// and setup, short enough that the whole 8x3 grid costs less than a handful
// of facility jobs.
const calibrationTimesteps = 12

// Specialize calibrates and returns the per-app specialization policy. The
// calibration grid (every registry app x every kernel) fans out through
// internal/par at the given width; results are byte-identical at any
// width because each cell derives its seed from (seed, cell index) and the
// argmax is taken after the join, in cell order. interference is the
// facility's co-tenancy template (nil = calibrate on quiet nodes);
// calibration applies it at co-tenancy 1.
func Specialize(seed uint64, workers int, interference *fault.Plan) (KernelPolicy, error) {
	all := apps.All()
	kts := []kernel.Type{kernel.TypeLinux, kernel.TypeMcKernel, kernel.TypeMOS}
	plan := interferenceFor(interference, 1)
	calSeedBase := sim.StreamSeed(seed, StreamCalibrate)

	foms, err := par.MapWidthErr(workers, len(all)*len(kts), func(i int) (float64, error) {
		app, kt := all[i/len(kts)], kts[i%len(kts)]
		spec := *app
		spec.Timesteps = calibrationTimesteps
		counts := eligibleNodeCounts(&spec, calibrationNodes)
		if len(counts) == 0 {
			return 0, fmt.Errorf("fleet: calibration: %s has no node count <= %d", app.Name, calibrationNodes)
		}
		res, err := cluster.Run(cluster.Job{
			App:    &spec,
			Kernel: kt,
			Nodes:  counts[len(counts)-1],
			Seed:   sim.StreamSeed(calSeedBase, uint64(i)),
			Faults: plan,
		})
		if err != nil {
			return 0, fmt.Errorf("fleet: calibrating %s on %v: %w", app.Name, kt, err)
		}
		return res.FOM, nil
	})
	if err != nil {
		return nil, err
	}

	table := make(map[string]kernel.Type, len(all))
	for ai, app := range all {
		best, bestFOM := kts[0], foms[ai*len(kts)]
		for ki := 1; ki < len(kts); ki++ {
			if f := foms[ai*len(kts)+ki]; f > bestFOM {
				best, bestFOM = kts[ki], f
			}
		}
		table[app.Name] = best
	}
	return &specializePolicy{table: table}, nil
}

// calibrationNodes caps the calibration cell's node count: the largest
// evaluated size up to this, so the cell sees collective amplification
// without paying a full-scale run.
const calibrationNodes = 16

func (p *specializePolicy) Name() string { return "specialize" }

func (p *specializePolicy) Select(j *Job) Choice {
	if k, ok := p.table[j.App.Name]; ok {
		return Choice{Kernel: k}
	}
	return Choice{Kernel: kernel.TypeMcKernel}
}

// Table returns the calibrated app -> kernel map in app-name order, for
// reports and tests.
func (p *specializePolicy) Table() []string {
	var out []string
	for _, name := range slices.Sorted(maps.Keys(p.table)) {
		out = append(out, name+"="+strings.ToLower(p.table[name].String()))
	}
	return out
}

// PolicyNames lists the selectable policy spellings of ParsePolicy. Any of
// them takes an optional ":<sched>" suffix (e.g. "heuristic:gang") forcing
// that scheduling policy on every selected kernel.
func PolicyNames() []string {
	return []string{"fixed-linux", "fixed-mckernel", "fixed-mos", "heuristic", "specialize"}
}

// ParsePolicy resolves a policy name, optionally suffixed ":<sched>" to pin
// every job's scheduler (any sched.Kinds spelling). "specialize" runs its
// calibration grid, so it needs the facility seed, fan-out width and
// interference template; the other policies ignore them.
func ParsePolicy(name string, seed uint64, workers int, interference *fault.Plan) (KernelPolicy, error) {
	base, schedSuffix, hasSched := strings.Cut(name, ":")
	var kind sched.Kind
	if hasSched {
		var err error
		if kind, err = sched.Parse(schedSuffix); err != nil {
			return nil, fmt.Errorf("fleet: policy %q: %w", name, err)
		}
	}
	var pol KernelPolicy
	var err error
	switch base {
	case "fixed-linux":
		pol = Fixed(kernel.TypeLinux)
	case "fixed-mckernel":
		pol = Fixed(kernel.TypeMcKernel)
	case "fixed-mos":
		pol = Fixed(kernel.TypeMOS)
	case "heuristic":
		pol = Heuristic()
	case "specialize":
		pol, err = Specialize(seed, workers, interference)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("fleet: unknown kernel policy %q (known: %v, each with an optional :<sched> suffix)", name, PolicyNames())
	}
	if hasSched {
		pol = WithSched(pol, kind)
	}
	return pol, nil
}
