package fleet

import "fmt"

// Allocator tracks the facility's node pool: per-node occupancy counts with
// an oversubscription cap (share). Allocation is deterministic — a job
// receives the lowest-occupancy nodes, ties broken by node index — so the
// facility's placement (and hence the co-tenancy every interference plan is
// scaled by) is a pure function of the scheduling history.
//
// An *Allocator is per-facility-run state, like a *sim.RNG: it must never
// be captured across internal/par worker closures (mklint's parshare
// analyzer rejects the capture). The scheduler allocates before a launch
// batch and frees after the join; worker closures only ever see the
// resulting immutable launch specs.
type Allocator struct {
	share    int
	occ      []int
	occupied int // nodes with occ > 0
	busy     int // total resident jobs-on-nodes (sum of occ)
}

// NewAllocator returns an allocator over nodes nodes, each admitting up to
// share co-resident jobs (share < 1 is treated as exclusive).
func NewAllocator(nodes, share int) *Allocator {
	if share < 1 {
		share = 1
	}
	return &Allocator{share: share, occ: make([]int, nodes)}
}

// Nodes returns the facility size.
func (a *Allocator) Nodes() int { return len(a.occ) }

// Share returns the per-node job cap.
func (a *Allocator) Share() int { return a.share }

// Occupied returns the number of nodes with at least one resident job —
// the utilization numerator's instantaneous value.
func (a *Allocator) Occupied() int { return a.occupied }

// AvailableNodes returns how many nodes can admit one more job.
func (a *Allocator) AvailableNodes() int {
	free := 0
	for _, o := range a.occ {
		if o < a.share {
			free++
		}
	}
	return free
}

// Fits reports whether a job needing n distinct nodes can be placed now.
func (a *Allocator) Fits(n int) bool {
	if n <= 0 || n > len(a.occ) {
		return false
	}
	return a.AvailableNodes() >= n
}

// Alloc places a job on n distinct nodes, preferring empty nodes (lowest
// occupancy first, index order within a tier), and returns the chosen node
// indices together with the launch-time co-tenancy: the maximum number of
// jobs already resident on any chosen node (0 = fully exclusive placement).
func (a *Allocator) Alloc(n int) (nodes []int, cotenancy int, err error) {
	if !a.Fits(n) {
		return nil, 0, fmt.Errorf("fleet: allocation of %d nodes does not fit (%d of %d nodes available)",
			n, a.AvailableNodes(), len(a.occ))
	}
	nodes = make([]int, 0, n)
	for tier := 0; tier < a.share && len(nodes) < n; tier++ {
		for i, o := range a.occ {
			if o == tier {
				nodes = append(nodes, i)
				if o > cotenancy {
					cotenancy = o
				}
				if len(nodes) == n {
					break
				}
			}
		}
	}
	for _, i := range nodes {
		if a.occ[i] == 0 {
			a.occupied++
		}
		a.occ[i]++
		a.busy++
	}
	return nodes, cotenancy, nil
}

// Free releases a completed job's nodes.
func (a *Allocator) Free(nodes []int) {
	for _, i := range nodes {
		a.occ[i]--
		a.busy--
		if a.occ[i] == 0 {
			a.occupied--
		}
		if a.occ[i] < 0 {
			panic(fmt.Sprintf("fleet: double free of node %d", i))
		}
	}
}
