package experiments

import (
	"fmt"

	"mklite/internal/apps"
	"mklite/internal/cluster"
	"mklite/internal/kernel"
	"mklite/internal/par"
	"mklite/internal/sched"
	"mklite/internal/sim"
	"mklite/internal/stats"
)

// SchedSweepApps returns the applications the scheduler sweep exercises: one
// collective-bound code (MiniFE — allreduce every timestep, the paper's
// Linux-cliff workload) and one halo-bound code (LAMMPS — neighbourhood
// synchronisation only). The pair separates policies that reshape noise
// absorption at global sync points (gang) from ones that merely change local
// overhead (rr, adaptive).
func SchedSweepApps() []*apps.Spec {
	return []*apps.Spec{apps.MiniFE(), apps.LAMMPS()}
}

// measureNoiseGap runs the job Reps times and summarises the noise-gap
// metric: the FWQ-style percentage of elapsed time lost to interference plus
// explicit scheduler charges, 100·(Breakdown.Noise+Breakdown.Sched)/Elapsed.
// Unlike a FOM comparison this isolates exactly the time a scheduling policy
// can move — compute, memory and wire time are policy-invariant.
func measureNoiseGap(cfg Config, job cluster.Job) (stats.Summary, error) {
	gaps, err := par.MapWidthErr(cfg.Workers, cfg.Reps, func(rep int) (float64, error) {
		j := job // per-job copy; the closure shares nothing mutable
		j.Seed = sim.StreamSeed(cfg.Seed, uint64(rep))
		if j.Faults == nil {
			j.Faults = cfg.Faults
		}
		res, err := cluster.Run(j)
		if err != nil {
			return 0, err
		}
		if res.Elapsed <= 0 {
			return 0, nil
		}
		return 100 * float64(res.Breakdown.Noise+res.Breakdown.Sched) / float64(res.Elapsed), nil
	})
	if err != nil {
		return stats.Summary{}, err
	}
	return stats.Summarize(gaps), nil
}

// SchedSweep sweeps the full scheduler × kernel × node-count grid — every
// policy of sched.Kinds on all three kernels, up to the applications' 2,048
// node counts — and reports the noise-gap percentage per cell. One figure
// per application; series are named "<kernel>/<policy>".
//
// The sweep is the scheduler seam's headline experiment: on Linux at scale,
// gang scheduling's aligned windows absorb a collective's interference once
// instead of max-combining it across all ranks (slack is charged instead,
// and counted into the gap), tickless removes the tick-class sources
// outright, while rr pays for its naive quantum timer. On the LWKs the gap
// barely moves — there is almost no noise to reshape, which is the paper's
// isolation argument restated as a scheduling result.
func SchedSweep(cfg Config) ([]*stats.Figure, error) {
	cfg = cfg.normalize()
	kts := []kernel.Type{kernel.TypeLinux, kernel.TypeMcKernel, kernel.TypeMOS}
	kinds := sched.Kinds()
	sweepApps := SchedSweepApps()

	return par.MapWidthErr(cfg.Workers, len(sweepApps), func(ai int) (*stats.Figure, error) {
		app := sweepApps[ai]
		nodes := cfg.nodeCounts(app)
		type cell struct{ sum stats.Summary }
		cells, err := par.MapWidthErr(cfg.Workers, len(kts)*len(kinds)*len(nodes), func(i int) (cell, error) {
			kt := kts[i/(len(kinds)*len(nodes))]
			kind := kinds[(i/len(nodes))%len(kinds)]
			n := nodes[i%len(nodes)]
			sum, err := measureNoiseGap(cfg, cluster.Job{App: app, Kernel: kt, Nodes: n, Sched: kind})
			if err != nil {
				return cell{}, fmt.Errorf("experiments: schedsweep %s on %v/%s at %d nodes: %w",
					app.Name, kt, kind, n, err)
			}
			return cell{sum: sum}, nil
		})
		if err != nil {
			return nil, err
		}
		fig := &stats.Figure{
			ID:    "schedsweep-" + app.Name,
			Title: fmt.Sprintf("%s: noise-gap %% of elapsed (interference + scheduler charges) by policy", app.Name),
		}
		for ki, kt := range kts {
			for pi, kind := range kinds {
				s := &stats.Series{Name: kt.String() + "/" + string(kind), Unit: "% of elapsed"}
				for ni, n := range nodes {
					s.Add(n, cells[(ki*len(kinds)+pi)*len(nodes)+ni].sum)
				}
				fig.Series = append(fig.Series, s)
			}
		}
		return fig, nil
	})
}

// SchedSeparation reports how far apart the sweep's policies land on one
// kernel at one node count: the spread, in percentage points of noise gap,
// between the best and worst policy medians for the given application figure.
// The PR10 bench gate asserts the spread at the top node count on Linux stays
// well above zero — the seam must measurably separate policies, not just
// parse them.
func SchedSeparation(fig *stats.Figure, kt kernel.Type, nodes int) (spreadPP float64, ok bool) {
	lo, hi := 0.0, 0.0
	found := false
	prefix := kt.String() + "/"
	for _, s := range fig.Series {
		if len(s.Name) <= len(prefix) || s.Name[:len(prefix)] != prefix {
			continue
		}
		p, here := s.At(nodes)
		if !here {
			continue
		}
		if !found {
			lo, hi = p.Median, p.Median
			found = true
			continue
		}
		if p.Median < lo {
			lo = p.Median
		}
		if p.Median > hi {
			hi = p.Median
		}
	}
	return hi - lo, found
}
