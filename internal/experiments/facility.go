package experiments

import (
	"fmt"

	"mklite/internal/fleet"
	"mklite/internal/obs"
	"mklite/internal/stats"
)

// DefaultFacilitySLO is the facility experiment's stock service-level
// objective: every policy leg must keep the facility at least half
// utilized, drain the stream without degraded jobs, and hold the p99 queue
// wait under two simulated hours. The thresholds are deliberately loose —
// they describe a functioning facility, not a winning policy — so all five
// comparison legs pass and the watchdog flags harness regressions rather
// than policy differences.
const DefaultFacilitySLO = "utilization_pct>=50;degraded_jobs<=0;wait_p99_sec<=7200"

// FacilityPolicies are the kernel-selection policies the facility experiment
// compares, in report order: the three fixed single-kernel facilities
// everyone operates today, the static profile heuristic, and the MultiK-style
// measured specialization.
func FacilityPolicies() []string {
	return []string{"fixed-linux", "fixed-mckernel", "fixed-mos", "heuristic", "specialize"}
}

// FacilityComparison is the facility experiment's outcome: one fleet result
// per policy (FacilityPolicies order) plus the rendered comparison table.
type FacilityComparison struct {
	Results  []*fleet.Result
	Rendered string
}

// FacilityConfig maps the experiment knobs onto a fleet configuration: a
// 256-node facility absorbing a 1,000-job stream (64 nodes / 150 jobs under
// Quick), two-way node sharing with the default co-tenancy interference
// template, and conservative backfill. The arrival rate scales with facility
// capacity (the full facility has 4x the quick slot count, so arrivals come
// 4x as fast) to keep the offered load — and with it a real queue, so the
// wait quantiles and backfill counts measure something — comparable across
// the two scales. The policy is filled per comparison leg.
func FacilityConfig(cfg Config) fleet.Config {
	fc := fleet.Config{
		Nodes:       256,
		Jobs:        1000,
		Seed:        cfg.Seed,
		Workers:     cfg.Workers,
		Backfill:    true,
		Share:       2,
		ArrivalMean: fleet.DefaultArrivalMean / 4,
		Counters:    cfg.Counters,
	}
	if cfg.Quick {
		fc.Nodes = 64
		fc.Jobs = 150
		fc.ArrivalMean = fleet.DefaultArrivalMean
	}
	return fc
}

// Facility runs the facility-scale policy comparison: the same seeded
// job stream scheduled onto the same facility under every kernel-selection
// policy, reporting jobs-per-hour, utilization and queue-wait quantiles per
// policy. The job stream, arrival process and per-job seeds are identical
// across legs — only the kernel choice (and through it each job's runtime
// and the schedule it induces) differs, so the comparison isolates the
// policy itself.
func Facility(cfg Config) (*FacilityComparison, error) {
	cfg = cfg.normalize()
	base := FacilityConfig(cfg)

	// An SLO spec turns each leg's result into a watchdog verdict and adds
	// an "slo" column; the empty spec leaves the rendered table — and the
	// result JSON — byte-identical to the pre-observability experiment.
	var slo *obs.SLO
	if cfg.SLO != "" {
		var err error
		if slo, err = obs.ParseSLO(cfg.SLO); err != nil {
			return nil, fmt.Errorf("experiments: facility: %w", err)
		}
	}

	cmp := &FacilityComparison{}
	for _, name := range FacilityPolicies() {
		pol, err := fleet.ParsePolicy(name, base.Seed, base.Workers, base.Interference)
		if err != nil {
			return nil, err
		}
		fc := base
		fc.Policy = pol
		fc.SLO = slo
		res, err := fleet.Run(fc)
		if err != nil {
			return nil, fmt.Errorf("experiments: facility %s: %w", name, err)
		}
		cmp.Results = append(cmp.Results, res)
	}

	header := []string{"policy", "jobs/h", "util %", "wait p50 s", "wait p99 s", "backfilled", "interfered", "kernels"}
	if slo != nil {
		header = append(header, "slo")
	}
	tbl := stats.NewTable(header...)
	for _, r := range cmp.Results {
		format := "%s|%.1f|%.1f|%.3f|%.3f|%d|%d|%s"
		cells := []any{r.Policy, r.JobsPerHour, r.UtilizationPct, r.WaitP50Sec,
			r.WaitP99Sec, r.Backfilled, r.Interfered, kernelMix(r)}
		if slo != nil {
			verdict := "PASS"
			if r.SLO == nil || !r.SLO.Passed {
				verdict = "FAIL"
			}
			format += "|%s"
			cells = append(cells, verdict)
		}
		tbl.AddRowf(format, cells...)
	}
	cmp.Rendered = tbl.Render()
	return cmp, nil
}

// kernelMix formats a result's per-kernel job counts compactly,
// deterministically ordered.
func kernelMix(r *fleet.Result) string {
	out := ""
	for _, k := range []string{"Linux", "McKernel", "mOS"} {
		if n := r.KernelJobs[k]; n > 0 {
			if out != "" {
				out += " "
			}
			out += fmt.Sprintf("%s:%d", k, n)
		}
	}
	return out
}
