package experiments

import (
	"strings"
	"testing"
)

// quick is the test configuration: 3 reps, 3 node counts per app.
func quick() Config { return Config{Reps: 3, Seed: 1, Quick: true} }

func TestFigure4ShapesAndSummary(t *testing.T) {
	figs, err := Figure4(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 8 {
		t.Fatalf("Figure 4 covers %d apps, want 8", len(figs))
	}
	for _, fig := range figs {
		if len(fig.Series) != 3 {
			t.Fatalf("%s: %d series", fig.ID, len(fig.Series))
		}
		for _, s := range fig.Series {
			if len(s.Points) != 3 {
				t.Fatalf("%s/%s: %d points in quick mode", fig.ID, s.Name, len(s.Points))
			}
		}
	}
	sum := SummarizeFigure4(figs)
	// The paper reports "a median performance improvement of 9% with
	// some applications as high as 280%". Accept generous bands around
	// both: median in [0%, 40%], best in [2x, 12x].
	if sum.MedianImprovement < 1.0 || sum.MedianImprovement > 1.4 {
		t.Fatalf("median improvement %v outside band", sum.MedianImprovement)
	}
	if sum.BestImprovement < 2 || sum.BestImprovement > 12 {
		t.Fatalf("best improvement %v outside band", sum.BestImprovement)
	}
	if !strings.Contains(sum.BestApp, "minife") {
		t.Fatalf("best app should be minife (the 7x cliff), got %q", sum.BestApp)
	}
}

func TestFigure5aOrderingAndGrowth(t *testing.T) {
	fig, err := Figure5a(quick())
	if err != nil {
		t.Fatal(err)
	}
	mck, mos := fig.Get("McKernel"), fig.Get("mOS")
	if mck == nil || mos == nil {
		t.Fatal("missing series")
	}
	for _, s := range []struct {
		name   string
		lo, hi float64
	}{
		{"McKernel", 105, 160}, {"mOS", 100, 150},
	} {
		ser := fig.Get(s.name)
		first := ser.Points[0].Median
		last := ser.Points[len(ser.Points)-1].Median
		if first < s.lo || last > s.hi {
			t.Fatalf("%s: %% of Linux spans [%v, %v], outside [%v, %v]",
				s.name, first, last, s.lo, s.hi)
		}
		if last <= first {
			t.Fatalf("%s advantage should grow with scale: %v -> %v", s.name, first, last)
		}
	}
	// "up to 39% and 28% improvement on McKernel and mOS": McKernel
	// must lead mOS at the largest scale.
	lastN := mck.Points[len(mck.Points)-1]
	mosLast, _ := mos.At(lastN.Nodes)
	if lastN.Median <= mosLast.Median {
		t.Fatalf("McKernel (%v%%) should lead mOS (%v%%) at scale", lastN.Median, mosLast.Median)
	}
}

func TestFigure5bCliff(t *testing.T) {
	fig, err := Figure5b(quick())
	if err != nil {
		t.Fatal(err)
	}
	lin, mck := fig.Get("Linux"), fig.Get("McKernel")
	nodes := mck.NodeCounts()
	biggest := nodes[len(nodes)-1]
	lp, _ := lin.At(biggest)
	mp, _ := mck.At(biggest)
	ratio := mp.Median / lp.Median
	// "almost seven times faster" at 1,024 nodes; at the sweep's top
	// (2,048) the gap is at least that.
	if ratio < 4 {
		t.Fatalf("miniFE LWK/Linux at %d nodes = %v, want a cliff", biggest, ratio)
	}
	// LWK keeps scaling; Linux flattens: Linux's speedup from first to
	// last point must trail the LWK's.
	linGain := lp.Median / lin.Points[0].Median
	mckGain := mp.Median / mck.Points[0].Median
	if linGain >= mckGain {
		t.Fatalf("Linux scaled better than the LWK: %v vs %v", linGain, mckGain)
	}
}

func TestFigure6aLuleshLWKLead(t *testing.T) {
	fig, err := Figure6a(quick())
	if err != nil {
		t.Fatal(err)
	}
	lin, mck, mos := fig.Get("Linux"), fig.Get("McKernel"), fig.Get("mOS")
	for _, nodes := range mck.NodeCounts()[1:] { // beyond one node
		lp, _ := lin.At(nodes)
		mp, _ := mck.At(nodes)
		op, _ := mos.At(nodes)
		if mp.Median <= lp.Median || op.Median <= lp.Median {
			t.Fatalf("at %d nodes LWKs (%v, %v) should lead Linux (%v)",
				nodes, mp.Median, op.Median, lp.Median)
		}
		r := mp.Median / lp.Median
		if r < 1.05 || r > 1.8 {
			t.Fatalf("Lulesh advantage %v at %d nodes outside band", r, nodes)
		}
	}
}

func TestFigure6bLAMMPSCrossover(t *testing.T) {
	fig, err := Figure6b(quick())
	if err != nil {
		t.Fatal(err)
	}
	lin, mck := fig.Get("Linux"), fig.Get("McKernel")
	nodes := mck.NodeCounts()
	first, last := nodes[0], nodes[len(nodes)-1]
	lF, _ := lin.At(first)
	mF, _ := mck.At(first)
	lL, _ := lin.At(last)
	mL, _ := mck.At(last)
	if mF.Median < lF.Median*0.99 {
		t.Fatalf("single-node LAMMPS: LWK %v should not trail Linux %v", mF.Median, lF.Median)
	}
	if mL.Median >= lL.Median {
		t.Fatalf("at %d nodes Linux (%v) should beat McKernel (%v)", last, lL.Median, mL.Median)
	}
}

func TestTableI(t *testing.T) {
	rows, tb, err := TableI(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || tb.NumRows() != 3 {
		t.Fatalf("Table I rows: %d", len(rows))
	}
	if rows[0].Percent != 100 {
		t.Fatalf("Linux row not 100%%: %v", rows[0].Percent)
	}
	// Ordering: Linux < mOS-heap-off < mOS-heap-on, as in the paper
	// (100.0% < 106.6% < 121.0%).
	if !(rows[0].ZonesPS < rows[1].ZonesPS && rows[1].ZonesPS < rows[2].ZonesPS) {
		t.Fatalf("Table I ordering violated: %+v", rows)
	}
	// Bands around the paper's ratios.
	if rows[1].Percent <= 100 || rows[1].Percent > 115 {
		t.Fatalf("heap-disabled row %v%%, paper 106.6%%", rows[1].Percent)
	}
	if rows[2].Percent < 110 || rows[2].Percent > 135 {
		t.Fatalf("regular-heap row %v%%, paper 121.0%%", rows[2].Percent)
	}
}

func TestLTPResults(t *testing.T) {
	reports, tb, err := LTPResults()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 || tb.NumRows() != 3 {
		t.Fatal("LTP table shape")
	}
	want := map[string]int{"linux": 0, "mckernel": 32, "mos": 111}
	for _, rep := range reports {
		if rep.Failed != want[rep.Kernel] {
			t.Fatalf("%s failed %d, want %d", rep.Kernel, rep.Failed, want[rep.Kernel])
		}
	}
}

func TestBrkTrace(t *testing.T) {
	traces, err := BrkTrace(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 3 {
		t.Fatal("trace count")
	}
	for _, tr := range traces {
		// Per-step mix 15:6:3 over 40 steps = 600:240:120.
		if tr.Queries != 600 || tr.Grows != 240 || tr.Shrinks != 120 {
			t.Fatalf("%s: trace %d:%d:%d", tr.Kernel, tr.Queries, tr.Grows, tr.Shrinks)
		}
		if tr.Calls != 960 {
			t.Fatalf("calls = %d", tr.Calls)
		}
		// Cumulative growth dwarfs the peak (the 22 GB vs 87 MB
		// phenomenon).
		if tr.CumulativeBytes < 10*tr.PeakBytes {
			t.Fatalf("%s: cumulative %d vs peak %d", tr.Kernel, tr.CumulativeBytes, tr.PeakBytes)
		}
		if tr.Kernel == "Linux" && tr.HeapFaults == 0 {
			t.Fatal("Linux heap must fault")
		}
		if tr.Kernel != "Linux" && tr.HeapFaults != 0 {
			t.Fatalf("%s heap faulted %d times", tr.Kernel, tr.HeapFaults)
		}
	}
}

func TestProxyOptions(t *testing.T) {
	res, err := ProxyOptions(Config{Reps: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatal("two apps expected")
	}
	// Paper: +9% (AMG 2013) and +2% (MiniFE) on 16 nodes.
	amg, minife := res[0], res[1]
	if amg.App != "amg2013" || minife.App != "minife" {
		t.Fatalf("apps: %+v", res)
	}
	if amg.GainPercent < 3 || amg.GainPercent > 20 {
		t.Fatalf("AMG gain %v%%, paper 9%%", amg.GainPercent)
	}
	if minife.GainPercent < 0.3 || minife.GainPercent > 10 {
		t.Fatalf("MiniFE gain %v%%, paper 2%%", minife.GainPercent)
	}
	if amg.GainPercent <= minife.GainPercent {
		t.Fatal("AMG should benefit more than MiniFE")
	}
}

func TestCCSQCDDDROnly(t *testing.T) {
	res, err := CCSQCDDDROnly(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: ~5% slowdown. Accept 1-30%.
	if res.SlowdownPercent < 1 || res.SlowdownPercent > 30 {
		t.Fatalf("DDR-only slowdown %v%% outside band", res.SlowdownPercent)
	}
}

func TestAblations(t *testing.T) {
	a, err := Ablations(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Noise ordering: LWKs << tuned Linux << untuned Linux.
	if !(a.FWQNoisePercent["mckernel"] < a.FWQNoisePercent["linux-tuned"]) {
		t.Fatalf("FWQ: %v", a.FWQNoisePercent)
	}
	if !(a.FWQNoisePercent["linux-tuned"] < a.FWQNoisePercent["linux-untuned"]) {
		t.Fatalf("FWQ tuning: %v", a.FWQNoisePercent)
	}
	// Offload cost ordering: native < migration < proxy.
	if !(a.OffloadRoundTrip["linux-native"] < a.OffloadRoundTrip["mos-migration"] &&
		a.OffloadRoundTrip["mos-migration"] < a.OffloadRoundTrip["mckernel-proxy"]) {
		t.Fatalf("offload costs: %v", a.OffloadRoundTrip)
	}
	// Cooperative scheduling beats time sharing for the batch.
	if a.SchedulerMakespan["cooperative-lwk"] >= a.SchedulerMakespan["time-shared-linux"] {
		t.Fatalf("scheduler: %v", a.SchedulerMakespan)
	}
	// 64 simultaneous offloads into one proxy queue up.
	if a.IKCQueueingTail < 64*2000 { // 64 x 2us service minimum
		t.Fatalf("queueing tail %v implausibly low", a.IKCQueueingTail)
	}
	out := RenderAblations(a)
	if !strings.Contains(out, "FWQ") || !strings.Contains(out, "IKC") {
		t.Fatal("render")
	}
}

func TestRelativeFigureDropsBaseline(t *testing.T) {
	fig, err := Figure5b(quick())
	if err != nil {
		t.Fatal(err)
	}
	rel := RelativeFigure(fig)
	if rel.Get("Linux") != nil {
		t.Fatal("baseline kept")
	}
	if len(rel.Series) != 2 {
		t.Fatal("relative series count")
	}
}

func TestConfigNormalize(t *testing.T) {
	c := Config{}.normalize()
	if c.Reps != 5 || c.Seed != 1 {
		t.Fatalf("defaults: %+v", c)
	}
}

func TestQuadrantComparison(t *testing.T) {
	rows, err := QuadrantComparison(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatal("row count")
	}
	linSNC, linQuad, mck := rows[0], rows[1], rows[2]
	// Quadrant-mode Linux must recover a large share of the LWK
	// advantage over SNC-4 DDR-only Linux...
	if linQuad.FOM <= linSNC.FOM {
		t.Fatalf("quadrant Linux (%v) should beat SNC-4 DDR-only Linux (%v)", linQuad.FOM, linSNC.FOM)
	}
	// ...but the LWK on SNC-4 keeps the hardware headroom.
	if mck.FOM <= linQuad.FOM {
		t.Fatalf("McKernel SNC-4 (%v) should stay ahead of quadrant Linux (%v)", mck.FOM, linQuad.FOM)
	}
}

func TestCoreSpecialization(t *testing.T) {
	rows, err := CoreSpecialization(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatal("row count")
	}
	lin68, lin64, mos64 := rows[0], rows[1], rows[2]
	// Reserving OS cores helps Linux (core 0's services stop gating the
	// application)...
	if lin64.FOM <= lin68.FOM {
		t.Fatalf("core specialisation did not help Linux: %v vs %v", lin64.FOM, lin68.FOM)
	}
	// ...and "mOS using 64 ... cores beats Linux on 68 cores".
	if mos64.FOM <= lin68.FOM {
		t.Fatalf("mOS-64 (%v) should beat Linux-68 (%v)", mos64.FOM, lin68.FOM)
	}
}

func TestBrkTraceS30Replay(t *testing.T) {
	res, err := BrkTraceS30()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatal("kernel count")
	}
	var lin, mck BrkTraceS30Result
	for _, r := range res {
		if r.Calls != 12053 {
			t.Fatalf("%s saw %d calls, want 12053", r.Kernel, r.Calls)
		}
		if r.PeakBytes < 80<<20 || r.PeakBytes > 95<<20 {
			t.Fatalf("%s peak %d", r.Kernel, r.PeakBytes)
		}
		if r.CumulativeBytes < 20<<30 {
			t.Fatalf("%s cumulative %d", r.Kernel, r.CumulativeBytes)
		}
		switch r.Kernel {
		case "Linux":
			lin = r
		case "McKernel":
			mck = r
		}
	}
	// The headline asymmetry: Linux pays faults and ~22 GB of clearing;
	// the LWK heap pays neither.
	if lin.HeapFaults == 0 || mck.HeapFaults != 0 {
		t.Fatalf("fault asymmetry: linux %d, mckernel %d", lin.HeapFaults, mck.HeapFaults)
	}
	if lin.ZeroedBytes < 20<<30 {
		t.Fatalf("Linux zeroed only %d", lin.ZeroedBytes)
	}
	if mck.ZeroedBytes > 1<<30 {
		t.Fatalf("McKernel zeroed %d, should be first-4K only", mck.ZeroedBytes)
	}
	if lin.KernelTimeSecs < 10*mck.KernelTimeSecs {
		t.Fatalf("kernel time: linux %v vs mckernel %v", lin.KernelTimeSecs, mck.KernelTimeSecs)
	}
}
