package experiments

import (
	"fmt"

	"mklite/internal/hw"
	"mklite/internal/ihk"
	"mklite/internal/kernel"
	"mklite/internal/linuxos"
	"mklite/internal/noise"
	"mklite/internal/sim"
	"mklite/internal/stats"
)

// AblationResults quantifies the design-space claims of section II that the
// scaling figures build on: per-kernel noise signatures (FWQ), the cost gap
// between proxy offload and thread-migration offload, and the scheduler
// policy overheads.
type AblationResults struct {
	// FWQNoisePercent is the FWQ noise metric per kernel profile.
	FWQNoisePercent map[string]float64
	// OffloadRoundTrip is the measured cost of one offloaded syscall.
	OffloadRoundTrip map[string]sim.Duration
	// SchedulerMakespan compares cooperative vs time-shared scheduling
	// of an 8-task batch.
	SchedulerMakespan map[string]sim.Duration
	// IKCQueueingTail is the worst offload latency when all 64 LWK
	// cores offload into a single proxy at once.
	IKCQueueingTail sim.Duration
}

// Ablations runs the microbenchmark suite.
func Ablations(cfg Config) (AblationResults, error) {
	cfg = cfg.normalize()
	rng := sim.NewRNG(cfg.Seed)
	res := AblationResults{
		FWQNoisePercent:   map[string]float64{},
		OffloadRoundTrip:  map[string]sim.Duration{},
		SchedulerMakespan: map[string]sim.Duration{},
	}

	// FWQ: fixed work quanta on one application core per profile.
	profiles := map[string]*noise.Profile{
		"linux-tuned":   noise.LinuxTuned(),
		"linux-untuned": noise.LinuxUntuned(),
		"mckernel":      noise.McKernelProfile(),
		"mos":           noise.MOSProfile(),
	}
	for name, p := range profiles {
		fwq := noise.RunFWQ(rng.Split(), p, 1, sim.Millisecond, 5000)
		res.FWQNoisePercent[name] = fwq.NoisePercent()
	}

	// Offload cost per design (one open() syscall).
	res.OffloadRoundTrip["linux-native"] = kernel.LinuxCosts().SyscallTime(kernel.Native)
	res.OffloadRoundTrip["mckernel-proxy"] = kernel.McKernelCosts().SyscallTime(kernel.Offloaded)
	res.OffloadRoundTrip["mos-migration"] = kernel.MOSCosts().SyscallTime(kernel.Offloaded)

	// Scheduler policies on an 8-task batch of 50 ms tasks.
	tasks := make([]sim.Duration, 8)
	for i := range tasks {
		tasks[i] = 50 * sim.Millisecond
	}
	res.SchedulerMakespan["cooperative-lwk"] =
		kernel.RunSchedule(tasks, kernel.CooperativeLWK(kernel.McKernelCosts())).Makespan
	res.SchedulerMakespan["time-shared-linux"] =
		kernel.RunSchedule(tasks, kernel.TimeSharing(kernel.LinuxCosts(), 10*sim.Millisecond, 4*sim.Millisecond)).Makespan

	// IKC queueing: all 64 LWK cores offload simultaneously into one
	// proxy worker.
	lin, err := linuxos.Boot(hw.KNL7250SNC4(), linuxos.DefaultConfig())
	if err != nil {
		return res, err
	}
	eng := sim.NewEngine(cfg.Seed)
	srv := ihk.NewOffloadServer(eng, ihk.NewIKC(lin.Partition()), 1)
	var worst sim.Duration
	for core := 4; core < 68; core++ {
		core := core
		eng.Spawn("offloader", func(p *sim.Proc) {
			start := p.Now()
			if err := srv.Offload(p, core, 2*sim.Microsecond); err != nil {
				return
			}
			if d := sim.Duration(p.Now() - start); d > worst {
				worst = d
			}
		})
	}
	eng.RunUntil(sim.Time(sim.Second))
	res.IKCQueueingTail = worst
	return res, nil
}

// RenderAblations formats the ablation results.
func RenderAblations(a AblationResults) string {
	tb := stats.NewTable("ablation", "value")
	for _, k := range []string{"mckernel", "mos", "linux-tuned", "linux-untuned"} {
		tb.AddRow("FWQ noise "+k, fmt.Sprintf("%.4f%%", a.FWQNoisePercent[k]))
	}
	for _, k := range []string{"linux-native", "mos-migration", "mckernel-proxy"} {
		tb.AddRow("syscall cost "+k, a.OffloadRoundTrip[k].String())
	}
	tb.AddRow("sched makespan cooperative-lwk", a.SchedulerMakespan["cooperative-lwk"].String())
	tb.AddRow("sched makespan time-shared-linux", a.SchedulerMakespan["time-shared-linux"].String())
	tb.AddRow("IKC queueing tail (64 cores, 1 proxy)", a.IKCQueueingTail.String())
	return tb.Render()
}
