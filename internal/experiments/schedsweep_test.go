package experiments

import (
	"runtime"
	"testing"

	"mklite/internal/kernel"
	"mklite/internal/stats"
)

func sweepCfg(workers int) Config {
	return Config{Reps: 2, Seed: 1, Quick: true, Workers: workers}
}

func renderSweep(t *testing.T, workers int) string {
	t.Helper()
	figs, err := SchedSweep(sweepCfg(workers))
	if err != nil {
		t.Fatal(err)
	}
	out := ""
	for _, f := range figs {
		out += f.Render()
	}
	return out
}

// TestSchedSweepDeterminism: the sweep's rendered output is byte-identical
// at fan-out width 1 and GOMAXPROCS (run under -race in CI). Every cell and
// repetition derives its own RNG stream, and the adaptive policy's state is
// seeded per run, so scheduling order cannot leak into the figures.
func TestSchedSweepDeterminism(t *testing.T) {
	seq := renderSweep(t, 1)
	parl := renderSweep(t, runtime.GOMAXPROCS(0))
	if seq != parl {
		t.Fatalf("schedsweep output differs between widths 1 and %d:\n--- width 1 ---\n%s\n--- width N ---\n%s",
			runtime.GOMAXPROCS(0), seq, parl)
	}
	if seq == "" {
		t.Fatal("schedsweep rendered nothing")
	}
}

// TestSchedSweepSeparatesPolicies: the acceptance criterion — at the top
// node count (2,048 under Quick too: nodeCounts keeps the last entry) on
// Linux, at least two scheduling policies must land measurably apart on the
// noise-gap metric. Gang's aligned windows vs cfs's max-over-ranks
// absorption differ by tens of points there; require >= 2pp so the gate has
// slack without ever passing a vacuous seam.
func TestSchedSweepSeparatesPolicies(t *testing.T) {
	figs, err := SchedSweep(sweepCfg(0))
	if err != nil {
		t.Fatal(err)
	}
	var minife *stats.Figure
	for _, f := range figs {
		if f.ID == "schedsweep-minife" {
			minife = f
		}
	}
	if minife == nil {
		t.Fatal("no schedsweep-minife figure")
	}
	top := 0
	for _, s := range minife.Series {
		for _, p := range s.Points {
			if p.Nodes > top {
				top = p.Nodes
			}
		}
	}
	if top != 2048 {
		t.Fatalf("top node count = %d, want 2048 (quick sweeps must keep the full-scale point)", top)
	}
	spread, ok := SchedSeparation(minife, kernel.TypeLinux, top)
	if !ok {
		t.Fatalf("no Linux series at %d nodes", top)
	}
	if spread < 2 {
		t.Fatalf("policy separation on Linux at %d nodes = %.3fpp, want >= 2pp", top, spread)
	}

	// The specific mechanism: gang absorbs less interference than cfs at
	// scale (aligned windows vs max-over-ranks), even after its slack is
	// charged into the gap.
	cfs := minife.Get("Linux/cfs")
	gang := minife.Get("Linux/gang")
	if cfs == nil || gang == nil {
		t.Fatal("missing Linux/cfs or Linux/gang series")
	}
	pc, _ := cfs.At(top)
	pg, _ := gang.At(top)
	if pg.Median >= pc.Median {
		t.Fatalf("gang gap %.3f%% >= cfs gap %.3f%% at %d nodes — alignment should win at scale",
			pg.Median, pc.Median, top)
	}
}

// TestSchedSweepLWKsBarelyMove: on McKernel the default policies' noise gap
// is tiny (sub-1%) at every node count — the isolation argument. The
// explicitly charged policies may add overhead but the default gap must not
// silently grow.
func TestSchedSweepLWKsBarelyMove(t *testing.T) {
	figs, err := SchedSweep(sweepCfg(0))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range figs {
		s := f.Get("McKernel/coop")
		if s == nil {
			t.Fatalf("%s: no McKernel/coop series", f.ID)
		}
		for _, p := range s.Points {
			if p.Median >= 1 {
				t.Fatalf("%s: McKernel/coop noise gap %.3f%% at %d nodes, want < 1%%",
					f.ID, p.Median, p.Nodes)
			}
		}
	}
}
