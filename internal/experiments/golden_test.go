package experiments

// Golden mechanism-count tests: the paper's section IV narrative pinned as
// exact counter values through the trace subsystem — the same counting path
// every traced run uses, so the numbers here cannot drift from what the
// tables report.

import (
	"testing"

	"mklite/internal/apps"
	"mklite/internal/cluster"
	"mklite/internal/hw"
	"mklite/internal/kernel"
	"mklite/internal/mckernel"
	"mklite/internal/mos"
	"mklite/internal/nodesim"
	"mklite/internal/sim"
	"mklite/internal/trace"
)

// TestBrkTraceS30GoldenCounts pins the paper's brk numbers — "7,526 queries
// ... 3,028 expansion requests, and 1,499 requests for contraction for a
// total of about 12,000 calls to brk", ~87 MB peak, ~22 GB cumulative — on
// every kernel, and cross-checks the trace counters against the heap
// engine's own statistics so there is provably one counting path.
func TestBrkTraceS30GoldenCounts(t *testing.T) {
	for _, kt := range []kernel.Type{kernel.TypeLinux, kernel.TypeMcKernel, kernel.TypeMOS} {
		t.Run(kt.String(), func(t *testing.T) {
			ctrs := trace.NewCounters()
			p, _, _, err := replayBrkS30(kt, trace.NewSink(ctrs, nil))
			if err != nil {
				t.Fatal(err)
			}
			defer p.Exit()

			// The paper's exact call counts.
			for _, g := range []struct {
				name string
				want int64
			}{
				{"heap.queries", apps.BrkS30Queries},
				{"heap.grows", apps.BrkS30Grows},
				{"heap.shrinks", apps.BrkS30Shrinks},
			} {
				if got := ctrs.Get(g.name); got != g.want {
					t.Errorf("%s = %d, want %d", g.name, got, g.want)
				}
			}
			// Every brk lands in the syscall dispatch exactly once.
			totalCalls := int64(apps.BrkS30Queries + apps.BrkS30Grows + apps.BrkS30Shrinks)
			if got := ctrs.Get("syscall.brk"); got != totalCalls {
				t.Errorf("syscall.brk = %d, want %d", got, totalCalls)
			}

			// One counting path: the counters must equal the heap
			// engine's bespoke statistics field for field.
			st := p.Heap.Stats()
			for _, c := range []struct {
				name string
				stat int64
			}{
				{"heap.queries", st.Queries},
				{"heap.grows", st.Grows},
				{"heap.shrinks", st.Shrinks},
				{"heap.grown_bytes", st.GrownBytes},
				{"heap.peak_bytes", st.Peak},
				{"heap.faults", st.Faults},
				{"heap.zeroed_bytes", st.ZeroedBytes},
			} {
				if got := ctrs.Get(c.name); got != c.stat {
					t.Errorf("%s = %d, diverges from HeapStats value %d", c.name, got, c.stat)
				}
			}

			// Peak heap ~87 MB; cumulative growth ~22 GB (both ±10%).
			if peak := ctrs.Get("heap.peak_bytes"); peak < 78e6 || peak > 96e6 {
				t.Errorf("heap.peak_bytes = %d, want ~87 MB", peak)
			}
			if grown := ctrs.Get("heap.grown_bytes"); grown < 20e9 || grown > 24e9 {
				t.Errorf("heap.grown_bytes = %d, want ~22 GB", grown)
			}
		})
	}
}

// runCounters runs one cluster job with a fresh Counters sink attached.
func runCounters(t *testing.T, j cluster.Job) *trace.Counters {
	t.Helper()
	ctrs := trace.NewCounters()
	j.Sink = trace.NewSink(ctrs, nil)
	if _, err := cluster.Run(j); err != nil {
		t.Fatal(err)
	}
	return ctrs
}

// TestOffloadCountsGolden pins the offload mechanism behind Figure 6b at
// the cluster layer. On one node, Lulesh's communication never leaves the
// node, so no device-file syscalls — and therefore no offloads — happen on
// any kernel: the counter proves why single-node runs show none of the
// fabric-syscall effect. As soon as communication crosses nodes (LAMMPS, the
// paper's device-syscall-heavy case), McKernel and mOS offload exactly the
// same calls; only the per-call round trip differs, in the ratio of their
// IKC/migration costs.
func TestOffloadCountsGolden(t *testing.T) {
	kts := []kernel.Type{kernel.TypeLinux, kernel.TypeMcKernel, kernel.TypeMOS}

	// 1-node Lulesh: the comm path issues zero device syscalls.
	for _, kt := range kts {
		ctrs := runCounters(t, cluster.Job{App: apps.Lulesh(), Kernel: kt, Nodes: 1, Seed: 1})
		if got := ctrs.Get("offload.calls"); got != 0 {
			t.Errorf("1-node Lulesh on %v: offload.calls = %d, want 0", kt, got)
		}
		if got := ctrs.Get("fabric.dev_syscalls"); got != 0 {
			t.Errorf("1-node Lulesh on %v: fabric.dev_syscalls = %d, want 0", kt, got)
		}
	}

	// Multi-node LAMMPS: identical offload counts, kernel-specific cost.
	byKernel := map[kernel.Type]*trace.Counters{}
	for _, kt := range kts {
		byKernel[kt] = runCounters(t, cluster.Job{App: apps.LAMMPS(), Kernel: kt, Nodes: 2, Seed: 1})
	}
	mck, ms := byKernel[kernel.TypeMcKernel], byKernel[kernel.TypeMOS]
	if got := mck.Get("offload.calls"); got == 0 {
		t.Fatal("2-node LAMMPS on McKernel: offload.calls = 0, want > 0")
	}
	if a, b := mck.Get("offload.calls"), ms.Get("offload.calls"); a != b {
		t.Errorf("offload.calls differ: McKernel %d vs mOS %d", a, b)
	}
	// Every device syscall on the comm path is one ioctl and, on an LWK,
	// one offload.
	for kt, c := range map[kernel.Type]*trace.Counters{kernel.TypeMcKernel: mck, kernel.TypeMOS: ms} {
		if dev, off := c.Get("fabric.dev_syscalls"), c.Get("offload.calls"); dev != off {
			t.Errorf("%v: fabric.dev_syscalls %d != offload.calls %d", kt, dev, off)
		}
		if dev, io := c.Get("fabric.dev_syscalls"), c.Get("syscall.ioctl"); dev != io {
			t.Errorf("%v: fabric.dev_syscalls %d != syscall.ioctl %d", kt, dev, io)
		}
	}
	// Round-trip attribution follows the kernels' costs exactly.
	wantMck := mck.Get("offload.calls") * int64(kernel.McKernelCosts().OffloadRTT)
	wantMOS := ms.Get("offload.calls") * int64(kernel.MOSCosts().OffloadRTT)
	if got := mck.Get("offload.rtt_ns"); got != wantMck {
		t.Errorf("McKernel offload.rtt_ns = %d, want %d", got, wantMck)
	}
	if got := ms.Get("offload.rtt_ns"); got != wantMOS {
		t.Errorf("mOS offload.rtt_ns = %d, want %d", got, wantMOS)
	}
	// Linux executes device syscalls natively: no offload counters at all.
	if lin := byKernel[kernel.TypeLinux]; lin.Get("offload.calls") != 0 || lin.Get("offload.rtt_ns") != 0 {
		t.Errorf("Linux recorded offload counters: calls=%d rtt=%d",
			lin.Get("offload.calls"), lin.Get("offload.rtt_ns"))
	}
}

// TestNodesimOffloadCountsGolden pins the same parity one layer down, at the
// discrete-event IKC queue: a Lulesh-shaped single-node run issues exactly
// ranks x steps x syscalls offloads on both LWKs, every one of them is
// serviced, and McKernel's proxy round trip makes its worst-case offload
// latency strictly larger than mOS's migration under identical load.
func TestNodesimOffloadCountsGolden(t *testing.T) {
	const (
		ranks    = 8
		steps    = 10
		syscalls = 4
	)
	run := func(k kernel.Kernel) (*trace.Counters, nodesim.Result) {
		ctrs := trace.NewCounters()
		res, err := nodesim.Run(nodesim.Config{
			Kern:            k,
			Ranks:           ranks,
			Steps:           steps,
			ComputePerStep:  50 * sim.Microsecond,
			SyscallsPerStep: syscalls,
			SyscallService:  2 * sim.Microsecond,
			Barrier:         true,
			Seed:            1,
			Sink:            trace.NewSink(ctrs, nil),
		})
		if err != nil {
			t.Fatal(err)
		}
		return ctrs, res
	}

	mckKern, _, err := mckernel.Deploy(hw.KNL7250SNC4(), mckernel.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	mosKern, err := mos.Boot(hw.KNL7250SNC4(), mos.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	mck, mckRes := run(mckKern)
	ms, mosRes := run(mosKern)

	want := int64(ranks * steps * syscalls)
	for name, c := range map[string]*trace.Counters{"McKernel": mck, "mOS": ms} {
		if got := c.Get("ihk.offloads"); got != want {
			t.Errorf("%s: ihk.offloads = %d, want %d", name, got, want)
		}
		if off, srv := c.Get("ihk.offloads"), c.Get("ihk.serviced"); off != srv {
			t.Errorf("%s: %d offloads but %d serviced", name, off, srv)
		}
	}
	if mckRes.OffloadsServiced != int(want) || mosRes.OffloadsServiced != int(want) {
		t.Errorf("OffloadsServiced = %d / %d, want %d",
			mckRes.OffloadsServiced, mosRes.OffloadsServiced, want)
	}
	// Identical counts, different cost: the proxy's software overhead puts
	// McKernel's worst offload round trip above mOS's.
	mckMax := mck.Get("nodesim.max_offload_latency_ns")
	mosMax := ms.Get("nodesim.max_offload_latency_ns")
	if mckMax <= mosMax {
		t.Errorf("max offload latency: McKernel %d ns <= mOS %d ns; proxy overhead should dominate", mckMax, mosMax)
	}
	if int64(mckRes.MaxOffloadLatency) != mckMax || int64(mosRes.MaxOffloadLatency) != mosMax {
		t.Errorf("counter/Result max-latency divergence: %d/%d vs %d/%d",
			mckMax, int64(mckRes.MaxOffloadLatency), mosMax, int64(mosRes.MaxOffloadLatency))
	}
}
