package experiments

import (
	"fmt"

	"mklite/internal/apps"
	"mklite/internal/cluster"
	"mklite/internal/fault"
	"mklite/internal/kernel"
	"mklite/internal/par"
	"mklite/internal/sim"
	"mklite/internal/stats"
)

// ResilienceStragglerDetour is the resilience experiment's injected fault:
// one node losing a fixed 2 ms to a local affliction every timestep — a
// failing DIMM retraining, a runaway daemon, a thermally throttled socket.
// The detour is additive (not a slowdown factor) on purpose: as strong
// scaling shrinks the healthy per-step time, a fixed detour occupies a
// growing fraction of every step, which is exactly the amplification the
// experiment measures.
const ResilienceStragglerDetour = 2 * sim.Millisecond

// ResiliencePlan is the canonical single-straggler plan of the resilience
// experiment: node 0 absorbs ResilienceStragglerDetour extra per timestep
// for the whole run.
func ResiliencePlan() *fault.Plan {
	return &fault.Plan{Stragglers: []fault.Straggler{{Node: 0, Extra: ResilienceStragglerDetour}}}
}

// Resilience reproduces "one slow node poisons an allreduce at N nodes":
// MiniFE — an allreduce-per-timestep strong-scaling code — runs clean and
// with ResiliencePlan at every node count, on all three kernels. Each series
// point is the straggler's poisoning in percent: the median clean FOM over
// the median straggled FOM, minus one. Because MiniFE allreduces every
// step, the whole job absorbs the straggler's detour at every
// synchronisation, and because the healthy per-step time shrinks as the job
// scales out, the same 2 ms straggler costs a growing share of every step:
// the curve rises with node count.
func Resilience(cfg Config) (*stats.Figure, error) {
	cfg = cfg.normalize()
	app := apps.MiniFE()
	kts := []kernel.Type{kernel.TypeLinux, kernel.TypeMcKernel, kernel.TypeMOS}
	nodes := cfg.nodeCounts(app)
	plan := ResiliencePlan()

	type cell struct{ slowdownPct float64 }
	cells, err := par.MapWidthErr(cfg.Workers, len(kts)*len(nodes), func(i int) (cell, error) {
		kt, n := kts[i/len(nodes)], nodes[i%len(nodes)]
		clean, err := measure(cfg, cluster.Job{App: app, Kernel: kt, Nodes: n})
		if err != nil {
			return cell{}, fmt.Errorf("experiments: resilience clean %v at %d nodes: %w", kt, n, err)
		}
		slow, err := measure(cfg, cluster.Job{App: app, Kernel: kt, Nodes: n, Faults: plan})
		if err != nil {
			return cell{}, fmt.Errorf("experiments: resilience straggled %v at %d nodes: %w", kt, n, err)
		}
		if slow.Median <= 0 {
			return cell{}, fmt.Errorf("experiments: resilience %v at %d nodes: non-positive straggled FOM", kt, n)
		}
		return cell{slowdownPct: (clean.Median/slow.Median - 1) * 100}, nil
	})
	if err != nil {
		return nil, err
	}

	fig := &stats.Figure{
		ID:    "resilience",
		Title: fmt.Sprintf("MiniFE: one straggler (+%v/step) poisons the allreduce — slowdown vs node count", ResilienceStragglerDetour),
	}
	for ki, kt := range kts {
		s := &stats.Series{Name: kt.String(), Unit: "% slowdown"}
		for ni, n := range nodes {
			v := cells[ki*len(nodes)+ni].slowdownPct
			s.Add(n, stats.Summary{Median: v, Min: v, Max: v, Mean: v})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}
