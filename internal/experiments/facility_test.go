package experiments

import (
	"strings"
	"testing"
)

// facilityTestCfg is the quick facility comparison at sequential width —
// small enough for the test budget, big enough to exercise backfill and
// co-tenancy on every leg.
func facilityTestCfg() Config {
	return Config{Reps: 1, Seed: 1, Quick: true, Workers: 1}
}

// TestFacilitySLOColumn: an SLO spec adds a verdict per policy leg — in each
// Result and as an extra rendered column — while the empty spec leaves both
// untouched.
func TestFacilitySLOColumn(t *testing.T) {
	cfg := facilityTestCfg()
	plain, err := Facility(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.Rendered, "slo") {
		t.Fatalf("no-SLO table grew a verdict column:\n%s", plain.Rendered)
	}
	for _, r := range plain.Results {
		if r.SLO != nil {
			t.Fatalf("policy %s carries an SLO report without a spec", r.Policy)
		}
	}

	cfg.SLO = DefaultFacilitySLO
	checked, err := Facility(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(checked.Rendered, "slo") || !strings.Contains(checked.Rendered, "PASS") {
		t.Fatalf("SLO table missing the verdict column:\n%s", checked.Rendered)
	}
	if strings.Contains(checked.Rendered, "FAIL") {
		t.Fatalf("stock SLO must pass every policy leg:\n%s", checked.Rendered)
	}
	for i, r := range checked.Results {
		if r.SLO == nil || !r.SLO.Passed {
			t.Fatalf("policy %s: SLO report %+v, want passing", r.Policy, r.SLO)
		}
		// The watchdog only observes: every scheduling outcome is
		// byte-for-byte the no-SLO leg's.
		p := plain.Results[i]
		if r.Policy != p.Policy || r.JobsPerHour != p.JobsPerHour ||
			r.Backfilled != p.Backfilled || r.WaitP99Sec != p.WaitP99Sec {
			t.Fatalf("SLO evaluation perturbed the %s leg", r.Policy)
		}
	}
}

// TestFacilitySLOErrors: a malformed spec and a rule naming an unpublished
// metric both fail the experiment loudly, not silently.
func TestFacilitySLOErrors(t *testing.T) {
	cfg := facilityTestCfg()
	cfg.SLO = "utilization_pct=50"
	if _, err := Facility(cfg); err == nil {
		t.Fatal("malformed SLO spec accepted")
	}
	cfg.SLO = "no_such_metric<=1"
	if _, err := Facility(cfg); err == nil {
		t.Fatal("unknown SLO metric accepted")
	}
}
