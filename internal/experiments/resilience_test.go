package experiments

// Golden fault-injection tests: the straggler-allreduce amplification curve
// and the retry/recovery counter totals pinned as exact values through the
// same trace counting path the figures report.

import (
	"testing"

	"mklite/internal/apps"
	"mklite/internal/cluster"
	"mklite/internal/fault"
	"mklite/internal/kernel"
	"mklite/internal/sim"
	"mklite/internal/trace"
)

// TestResilienceAmplificationGrows pins the resilience experiment's shape:
// a single fixed-detour straggler's relative poisoning of MiniFE must grow
// strictly with node count on every kernel — strong scaling shrinks the
// healthy per-step time while the detour, absorbed at every allreduce,
// stays fixed.
func TestResilienceAmplificationGrows(t *testing.T) {
	fig, err := Resilience(Config{Reps: 2, Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("resilience figure has %d series, want 3", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) < 3 {
			t.Fatalf("%s: %d points, want >= 3 (quick sweep)", s.Name, len(s.Points))
		}
		for i := 1; i < len(s.Points); i++ {
			prev, cur := s.Points[i-1], s.Points[i]
			if cur.Median <= prev.Median {
				t.Errorf("%s: slowdown %.3f%% at %d nodes <= %.3f%% at %d nodes; straggler impact must grow with node count",
					s.Name, cur.Median, cur.Nodes, prev.Median, prev.Nodes)
			}
		}
		if first := s.Points[0].Median; first <= 0 {
			t.Errorf("%s: non-positive slowdown %.3f%% at %d nodes", s.Name, first, s.Points[0].Nodes)
		}
	}
}

// TestStragglerCounterGolden pins the straggler accounting exactly: MiniFE
// allreduces every timestep, so the whole job absorbs the straggler's Extra
// detour at every one of its 60 steps — fault.straggler_ns must equal
// Extra x Timesteps to the nanosecond, and the run must slow down by
// exactly that amount relative to a clean run.
func TestStragglerCounterGolden(t *testing.T) {
	const extra = 2 * sim.Millisecond
	app := apps.MiniFE()
	plan := &fault.Plan{Stragglers: []fault.Straggler{{Node: 0, Extra: extra}}}

	clean, err := cluster.Run(cluster.Job{App: app, Kernel: kernel.TypeMcKernel, Nodes: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctrs := trace.NewCounters()
	slow, err := cluster.Run(cluster.Job{App: app, Kernel: kernel.TypeMcKernel, Nodes: 16, Seed: 1,
		Faults: plan, Sink: trace.NewSink(ctrs, nil)})
	if err != nil {
		t.Fatal(err)
	}

	want := int64(extra) * int64(app.Timesteps)
	if got := ctrs.Get("fault.straggler_ns"); got != want {
		t.Errorf("fault.straggler_ns = %d, want %d (Extra x Timesteps)", got, want)
	}
	if d := slow.Elapsed - clean.Elapsed; int64(d) != want {
		t.Errorf("straggled run is %v slower than clean, want exactly %v", d, sim.Duration(want))
	}
	// The absorbed detour is attributed to the noise mechanism — the
	// breakdown's sync-absorption bucket — not invented elsewhere.
	if d := slow.Breakdown.Noise - clean.Breakdown.Noise; int64(d) != want {
		t.Errorf("noise breakdown grew by %v, want %v", d, sim.Duration(want))
	}
	if slow.Retries != 0 || slow.Degraded {
		t.Errorf("straggler-only run reports retries=%d degraded=%v", slow.Retries, slow.Degraded)
	}
}

// TestRetryCounterGolden pins the retry path: a plan that deterministically
// kills the first two attempts (NodeFail.FailFirst) must produce exactly
// two node failures, two retries, a recovery equal to the two partial
// attempts plus the two backoffs, and Elapsed = Breakdown.Total() +
// Recovery.
func TestRetryCounterGolden(t *testing.T) {
	plan := &fault.Plan{
		NodeFail: &fault.NodeFailure{FailFirst: 2},
		Retry:    fault.RetryPolicy{MaxRetries: 3, Base: 100 * sim.Millisecond, Max: sim.Second},
	}
	ctrs := trace.NewCounters()
	res, err := cluster.Run(cluster.Job{App: apps.MiniFE(), Kernel: kernel.TypeMOS, Nodes: 16, Seed: 1,
		Faults: plan, Sink: trace.NewSink(ctrs, nil)})
	if err != nil {
		t.Fatal(err)
	}

	for _, g := range []struct {
		name string
		want int64
	}{
		{"fault.node_failures", 2},
		{"fault.retries", 2},
		{"fault.degraded_nodes", 0},
	} {
		if got := ctrs.Get(g.name); got != g.want {
			t.Errorf("%s = %d, want %d", g.name, got, g.want)
		}
	}
	if res.Retries != 2 {
		t.Errorf("Result.Retries = %d, want 2", res.Retries)
	}
	if res.Degraded || res.LostNodes != 0 {
		t.Errorf("retry-only run reports degraded=%v lost=%d", res.Degraded, res.LostNodes)
	}
	// Recovery includes both backoffs (100 ms + 200 ms) plus the two
	// partial attempts' time-to-failure, which is strictly positive.
	backoffs := plan.Retry.Backoff(0) + plan.Retry.Backoff(1)
	if res.Recovery <= backoffs {
		t.Errorf("Recovery = %v, want > %v (backoffs plus partial attempts)", res.Recovery, backoffs)
	}
	if got := ctrs.Get("fault.recovery_ns"); got != int64(res.Recovery) {
		t.Errorf("fault.recovery_ns = %d, diverges from Result.Recovery %d", got, int64(res.Recovery))
	}
	if res.Elapsed != res.Breakdown.Total()+res.Recovery {
		t.Errorf("Elapsed %v != Breakdown.Total() %v + Recovery %v",
			res.Elapsed, res.Breakdown.Total(), res.Recovery)
	}
}

// TestDegradedCompletionGolden pins graceful degradation: retries exhausted
// with AllowDegraded set must finish on one node fewer, flag the result,
// and count the dropped node.
func TestDegradedCompletionGolden(t *testing.T) {
	plan := &fault.Plan{
		NodeFail:      &fault.NodeFailure{FailFirst: 3},
		Retry:         fault.RetryPolicy{MaxRetries: 1, Base: 100 * sim.Millisecond},
		AllowDegraded: true,
	}
	ctrs := trace.NewCounters()
	res, err := cluster.Run(cluster.Job{App: apps.MiniFE(), Kernel: kernel.TypeMcKernel, Nodes: 16, Seed: 1,
		Faults: plan, Sink: trace.NewSink(ctrs, nil)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.LostNodes != 1 {
		t.Fatalf("degraded=%v lost=%d, want degraded completion with 1 lost node", res.Degraded, res.LostNodes)
	}
	if res.Nodes != 15 {
		t.Errorf("Result.Nodes = %d, want 15 (one dropped)", res.Nodes)
	}
	if res.Retries != 1 {
		t.Errorf("Result.Retries = %d, want 1 (bounded by MaxRetries)", res.Retries)
	}
	for _, g := range []struct {
		name string
		want int64
	}{
		{"fault.node_failures", 2}, // attempt 0 and the single retry
		{"fault.retries", 1},
		{"fault.degraded_nodes", 1},
	} {
		if got := ctrs.Get(g.name); got != g.want {
			t.Errorf("%s = %d, want %d", g.name, got, g.want)
		}
	}

	// Without AllowDegraded the same plan must fail with retries exhausted.
	hard := &fault.Plan{
		NodeFail: &fault.NodeFailure{FailFirst: 3},
		Retry:    fault.RetryPolicy{MaxRetries: 1, Base: 100 * sim.Millisecond},
	}
	if _, err := cluster.Run(cluster.Job{App: apps.MiniFE(), Kernel: kernel.TypeMcKernel, Nodes: 16, Seed: 1,
		Faults: hard}); err == nil {
		t.Error("retries exhausted without AllowDegraded: want error, got success")
	}
}
