package experiments

import (
	"fmt"

	"mklite/internal/apps"
	"mklite/internal/cluster"
	"mklite/internal/hw"
	"mklite/internal/kernel"
	"mklite/internal/linuxos"
	"mklite/internal/ltp"
	"mklite/internal/mckernel"
	"mklite/internal/mem"
	"mklite/internal/mos"
	"mklite/internal/par"
	"mklite/internal/stats"
	"mklite/internal/trace"
)

// TableIRow is one row of the paper's Table I.
type TableIRow struct {
	Config  string
	ZonesPS float64
	Percent float64 // relative to the Linux row
}

// TableI reproduces "Lulesh performance in DDR4 RAM with and without brk
// optimizations": Linux, mOS with heap management disabled, and mOS with
// the regular HPC heap, all pinned to DDR4 on a single node.
//
// Paper values: Linux 8,959 zones/s (100.0%); mOS heap-disabled 9,551
// (106.6%); mOS regular 10,841 (121.0%).
func TableI(cfg Config) ([]TableIRow, *stats.Table, error) {
	cfg = cfg.normalize()
	app := apps.Lulesh()

	type variant struct {
		name string
		job  cluster.Job
	}
	heapOff := mos.DefaultConfig()
	heapOff.HeapManagement = false
	variants := []variant{
		{"Linux", cluster.Job{App: app, Kernel: kernel.TypeLinux, Nodes: 1, ForceDDROnly: true}},
		{"mOS, heap management disabled", cluster.Job{App: app, Kernel: kernel.TypeMOS, Nodes: 1, ForceDDROnly: true, MOS: &heapOff}},
		{"mOS, regular heap management", cluster.Job{App: app, Kernel: kernel.TypeMOS, Nodes: 1, ForceDDROnly: true}},
	}
	sums, err := par.MapWidthErr(cfg.Workers, len(variants), func(i int) (stats.Summary, error) {
		return measure(cfg, variants[i].job)
	})
	if err != nil {
		return nil, nil, err
	}
	linux := sums[0].Median
	var rows []TableIRow
	for i, v := range variants {
		rows = append(rows, TableIRow{
			Config:  v.name,
			ZonesPS: sums[i].Median,
			Percent: sums[i].Median / linux * 100,
		})
	}
	tb := stats.NewTable("configuration", "zones/s", "relative")
	for _, r := range rows {
		tb.AddRow(r.Config, fmt.Sprintf("%.0f", r.ZonesPS), fmt.Sprintf("%.1f%%", r.Percent))
	}
	return rows, tb, nil
}

// LTPResults runs the conformance suite against all three kernels and
// renders the section III-D comparison.
func LTPResults() ([]ltp.Report, *stats.Table, error) {
	return LTPResultsWorkers(0)
}

// LTPResultsWorkers is LTPResults with an explicit fan-out width (0 =
// GOMAXPROCS, 1 = sequential); each kernel boots and runs the 3,328-case
// catalogue on its own worker. The equivalence tests sweep the width.
func LTPResultsWorkers(workers int) ([]ltp.Report, *stats.Table, error) {
	kts := []kernel.Type{kernel.TypeLinux, kernel.TypeMcKernel, kernel.TypeMOS}
	reports, err := par.MapWidthErr(workers, len(kts), func(i int) (ltp.Report, error) {
		var k kernel.Kernel
		var err error
		switch kts[i] {
		case kernel.TypeLinux:
			k, err = linuxos.Boot(hw.KNL7250SNC4(), linuxos.DefaultConfig())
		case kernel.TypeMcKernel:
			k, _, err = mckernel.Deploy(hw.KNL7250SNC4(), mckernel.DefaultOptions())
		default:
			k, err = mos.Boot(hw.KNL7250SNC4(), mos.DefaultConfig())
		}
		if err != nil {
			return ltp.Report{}, err
		}
		return ltp.Run(k), nil
	})
	if err != nil {
		return nil, nil, err
	}
	tb := stats.NewTable("kernel", "total", "passed", "failed", "causes")
	for _, rep := range reports {
		tb.AddRow(rep.Kernel,
			fmt.Sprintf("%d", rep.Total),
			fmt.Sprintf("%d", rep.Passed),
			fmt.Sprintf("%d", rep.Failed),
			fmt.Sprintf("%v", rep.ByCause))
	}
	return reports, tb, nil
}

// BrkTraceResult reproduces section IV's Lulesh heap trace statistics
// ("7,526 queries ... 3,028 expansion requests, and 1,499 requests for
// contraction for a total of about 12,000 calls"; 87 MB peak; 22 GB
// cumulative) at this model's compressed timestep count.
type BrkTraceResult struct {
	Kernel          string
	Queries         int64
	Grows           int64
	Shrinks         int64
	Calls           int64
	PeakBytes       int64
	CumulativeBytes int64
	HeapFaults      int64
}

// BrkTrace replays the Lulesh heap trace on one node of each kernel.
func BrkTrace(cfg Config) ([]BrkTraceResult, error) {
	cfg = cfg.normalize()
	app := apps.Lulesh()
	kts := []kernel.Type{kernel.TypeLinux, kernel.TypeMcKernel, kernel.TypeMOS}
	return par.MapWidthErr(cfg.Workers, len(kts), func(i int) (BrkTraceResult, error) {
		res, err := cluster.Run(cluster.Job{App: app, Kernel: kts[i], Nodes: 1, Seed: cfg.Seed})
		if err != nil {
			return BrkTraceResult{}, err
		}
		hs := res.HeapStats
		return BrkTraceResult{
			Kernel:          res.Kernel,
			Queries:         hs.Queries,
			Grows:           hs.Grows,
			Shrinks:         hs.Shrinks,
			Calls:           hs.Calls(),
			PeakBytes:       hs.Peak,
			CumulativeBytes: hs.GrownBytes,
			HeapFaults:      hs.Faults,
		}, nil
	})
}

// ProxyOptionResult is one application's McKernel proxy-option gain.
type ProxyOptionResult struct {
	App          string
	Nodes        int
	BaselineFOM  float64
	OptimizedFOM float64
	GainPercent  float64
}

// ProxyOptions reproduces section IV's --mpol-shm-premap and
// --disable-sched-yield measurement: "we observed 9% and 2% improvements
// on 16 nodes for AMG 2013 and MiniFE, respectively."
func ProxyOptions(cfg Config) ([]ProxyOptionResult, error) {
	cfg = cfg.normalize()
	pApps := []*apps.Spec{apps.AMG2013(), apps.MiniFE()}
	return par.MapWidthErr(cfg.Workers, len(pApps), func(i int) (ProxyOptionResult, error) {
		app := pApps[i]
		nodes := 16
		base, err := measure(cfg, cluster.Job{App: app, Kernel: kernel.TypeMcKernel, Nodes: nodes})
		if err != nil {
			return ProxyOptionResult{}, err
		}
		opts := mckernel.DefaultOptions()
		opts.MpolShmPremap = true
		opts.DisableSchedYield = true
		tuned, err := measure(cfg, cluster.Job{App: app, Kernel: kernel.TypeMcKernel, Nodes: nodes, McK: &opts})
		if err != nil {
			return ProxyOptionResult{}, err
		}
		return ProxyOptionResult{
			App:          app.Name,
			Nodes:        nodes,
			BaselineFOM:  base.Median,
			OptimizedFOM: tuned.Median,
			GainPercent:  (tuned.Median/base.Median - 1) * 100,
		}, nil
	})
}

// CCSQCDDDROnlyResult compares McKernel's MCDRAM-spill run against a
// DDR4-only run ("approximately 5% slowdown when running on 2,048 nodes").
type CCSQCDDDROnlyResult struct {
	Nodes           int
	SpillFOM        float64
	DDROnlyFOM      float64
	SlowdownPercent float64
}

// CCSQCDDDROnly runs the section IV comparison.
func CCSQCDDDROnly(cfg Config) (CCSQCDDDROnlyResult, error) {
	cfg = cfg.normalize()
	app := apps.CCSQCD()
	nodes := 2048
	if cfg.Quick {
		nodes = 64
	}
	spill, err := measure(cfg, cluster.Job{App: app, Kernel: kernel.TypeMcKernel, Nodes: nodes})
	if err != nil {
		return CCSQCDDDROnlyResult{}, err
	}
	ddr, err := measure(cfg, cluster.Job{App: app, Kernel: kernel.TypeMcKernel, Nodes: nodes, ForceDDROnly: true})
	if err != nil {
		return CCSQCDDDROnlyResult{}, err
	}
	return CCSQCDDDROnlyResult{
		Nodes:           nodes,
		SpillFOM:        spill.Median,
		DDROnlyFOM:      ddr.Median,
		SlowdownPercent: (1 - ddr.Median/spill.Median) * 100,
	}, nil
}

// QuadrantRow is one configuration of the clustering-mode comparison.
type QuadrantRow struct {
	Config  string
	FOM     float64
	Percent float64 // relative to Linux in SNC-4
}

// QuadrantComparison quantifies the section III-B trade-off for CCS-QCD:
// "many KNL clusters are configured to run in quadrant mode because it
// allows exploitation of the higher bandwidth of MCDRAM with less tuning
// effort, SNC-4 mode offers the highest possible hardware performance."
// In quadrant mode Linux can finally express "prefer MCDRAM, spill to
// DDR4" (numactl -p), recovering most of the LWK advantage; the LWKs keep
// SNC-4's extra hardware headroom.
func QuadrantComparison(cfg Config) ([]QuadrantRow, error) {
	cfg = cfg.normalize()
	app := apps.CCSQCD()
	nodes := 64
	type variant struct {
		name string
		job  cluster.Job
	}
	variants := []variant{
		{"Linux SNC-4 (DDR4 only)", cluster.Job{App: app, Kernel: kernel.TypeLinux, Nodes: nodes}},
		{"Linux quadrant (numactl -p MCDRAM)", cluster.Job{App: app, Kernel: kernel.TypeLinux, Nodes: nodes, Quadrant: true}},
		{"McKernel SNC-4", cluster.Job{App: app, Kernel: kernel.TypeMcKernel, Nodes: nodes}},
		{"mOS SNC-4", cluster.Job{App: app, Kernel: kernel.TypeMOS, Nodes: nodes}},
	}
	sums, err := par.MapWidthErr(cfg.Workers, len(variants), func(i int) (stats.Summary, error) {
		return measure(cfg, variants[i].job)
	})
	if err != nil {
		return nil, err
	}
	base := sums[0].Median
	var rows []QuadrantRow
	for i, v := range variants {
		rows = append(rows, QuadrantRow{
			Config:  v.name,
			FOM:     sums[i].Median,
			Percent: sums[i].Median / base * 100,
		})
	}
	return rows, nil
}

// CoreSpecRow is one configuration of the core-specialisation comparison.
type CoreSpecRow struct {
	Config   string
	AppCores int
	FOM      float64
	Percent  float64 // relative to Linux with all 68 cores
}

// CoreSpecialization reproduces the section III-A observation: "Additional
// experiments have shown that mOS using 64 or 66 cores beats Linux on 68
// cores. This is often due to CPU 0 running services and introducing
// noise." Linux gets all 68 cores (no core specialisation: the rank on CPU
// 0 absorbs the system services); the comparisons reserve 4 cores.
func CoreSpecialization(cfg Config) ([]CoreSpecRow, error) {
	cfg = cfg.normalize()
	app := apps.Lulesh()
	// Single node: at scale the collective noise maximum dominates any
	// configuration; the per-core effect is isolated on one node.
	nodes := 1
	lin68 := linuxos.DefaultConfig()
	lin68.OSCores = 0 // no specialisation: daemons share the app cores
	type variant struct {
		name  string
		cores int
		job   cluster.Job
	}
	variants := []variant{
		{"Linux, 68 cores (no specialisation)", 68,
			cluster.Job{App: app, Kernel: kernel.TypeLinux, Nodes: nodes, Linux: &lin68}},
		{"Linux, 64 cores (+4 OS cores)", 64,
			cluster.Job{App: app, Kernel: kernel.TypeLinux, Nodes: nodes}},
		{"mOS, 64 cores (+4 Linux cores)", 64,
			cluster.Job{App: app, Kernel: kernel.TypeMOS, Nodes: nodes}},
	}
	sums, err := par.MapWidthErr(cfg.Workers, len(variants), func(i int) (stats.Summary, error) {
		return measure(cfg, variants[i].job)
	})
	if err != nil {
		return nil, err
	}
	base := sums[0].Median
	var rows []CoreSpecRow
	for i, v := range variants {
		rows = append(rows, CoreSpecRow{
			Config:   v.name,
			AppCores: v.cores,
			FOM:      sums[i].Median,
			Percent:  sums[i].Median / base * 100,
		})
	}
	return rows, nil
}

// BrkTraceS30Result is the full-fidelity section IV replay: the exact
// 12,053-call trace (7,526 queries / 3,028 grows / 1,499 shrinks, ~87 MB
// peak, ~22 GB cumulative) executed call-for-call through each kernel's
// process syscall layer.
type BrkTraceS30Result struct {
	Kernel          string
	Calls           int64
	PeakBytes       int64
	CumulativeBytes int64
	HeapFaults      int64
	ZeroedBytes     int64
	// KernelTimeSecs is the total kernel-side time the trace cost
	// (syscall traps + fault servicing + page clearing).
	KernelTimeSecs float64
}

// replayBrkS30 boots the given kernel and replays the exact section IV trace
// call-for-call through one process wired to sink. It is the single replay
// path shared by BrkTraceS30 and the golden mechanism-count tests, so the
// table and the trace counters can never disagree about what ran.
//
// The caller owns the returned process (and must Exit it); faultWork is the
// demand-fault work the application's first touches generated.
func replayBrkS30(kt kernel.Type, sink *trace.Sink) (*kernel.Process, kernel.Kernel, mem.Work, error) {
	var k kernel.Kernel
	var err error
	switch kt {
	case kernel.TypeLinux:
		k, err = linuxos.Boot(hw.KNL7250SNC4(), linuxos.DefaultConfig())
	case kernel.TypeMcKernel:
		k, _, err = mckernel.Deploy(hw.KNL7250SNC4(), mckernel.DefaultOptions())
	default:
		k, err = mos.Boot(hw.KNL7250SNC4(), mos.DefaultConfig())
	}
	if err != nil {
		return nil, nil, mem.Work{}, err
	}
	p, err := kernel.NewProcessWith(k, 1, hw.GiB, sink)
	if err != nil {
		return nil, nil, mem.Work{}, err
	}
	var faultWork mem.Work
	for _, delta := range apps.LuleshBrkTraceS30() {
		if _, err := p.Sbrk(delta); err != nil {
			p.Exit()
			return nil, nil, mem.Work{}, fmt.Errorf("experiments: brk trace on %s: %w", k.Name(), err)
		}
		if delta > 0 {
			faultWork.Accumulate(p.Heap.TouchUpTo(p.Heap.Size()))
		}
	}
	return p, k, faultWork, nil
}

// BrkTraceS30 replays the exact trace on one process per kernel. The row
// values are read from the run's mechanism counters — the same counting path
// every traced run uses — rather than from a parallel set of bespoke
// accumulators.
func BrkTraceS30() ([]BrkTraceS30Result, error) {
	var out []BrkTraceS30Result
	for _, kt := range []kernel.Type{kernel.TypeLinux, kernel.TypeMcKernel, kernel.TypeMOS} {
		ctrs := trace.NewCounters()
		p, k, faultWork, err := replayBrkS30(kt, trace.NewSink(ctrs, nil))
		if err != nil {
			return nil, err
		}
		total := p.SyscallTime + k.Costs().WorkTime(faultWork)
		out = append(out, BrkTraceS30Result{
			Kernel:          k.Type().String(),
			Calls:           ctrs.Get("heap.queries") + ctrs.Get("heap.grows") + ctrs.Get("heap.shrinks"),
			PeakBytes:       ctrs.Get("heap.peak_bytes"),
			CumulativeBytes: ctrs.Get("heap.grown_bytes"),
			HeapFaults:      ctrs.Get("heap.faults"),
			ZeroedBytes:     ctrs.Get("heap.zeroed_bytes"),
			KernelTimeSecs:  total.Seconds(),
		})
		p.Exit()
	}
	return out, nil
}
