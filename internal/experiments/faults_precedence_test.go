package experiments

// Fault-plan precedence: a job-level cluster.Job.Faults plan must win over
// the grid-level Config.Faults plan; the grid plan only fills in when the
// job carries none. measureCounted implements this with a nil check on the
// per-rep job copy, and docs/FAULTS.md documents the same rule — this test
// pins the behaviour through the exact straggler accounting
// (fault.straggler_ns == Extra x Timesteps per repetition on MiniFE, which
// allreduces every step).

import (
	"testing"

	"mklite/internal/apps"
	"mklite/internal/cluster"
	"mklite/internal/fault"
	"mklite/internal/kernel"
	"mklite/internal/sim"
)

func TestJobFaultsWinOverConfigFaults(t *testing.T) {
	const (
		jobExtra  = 2 * sim.Millisecond
		gridExtra = 7 * sim.Millisecond
	)
	app := apps.MiniFE()
	cfg := Config{
		Reps:     2,
		Seed:     1,
		Counters: true,
		Faults:   &fault.Plan{Stragglers: []fault.Straggler{{Node: 0, Extra: gridExtra}}},
	}
	base := cluster.Job{App: app, Kernel: kernel.TypeMcKernel, Nodes: 16}
	steps := int64(app.Timesteps)

	// Job-level plan set: the grid plan must be ignored entirely.
	withJobPlan := base
	withJobPlan.Faults = &fault.Plan{Stragglers: []fault.Straggler{{Node: 0, Extra: jobExtra}}}
	_, ctrs, _, err := measureCounted(cfg, withJobPlan)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(jobExtra) * steps * int64(cfg.Reps)
	if got := ctrs.Get("fault.straggler_ns"); got != want {
		t.Errorf("job-level plan: fault.straggler_ns = %d, want %d (Extra %v x %d steps x %d reps); grid plan must not apply",
			got, want, jobExtra, steps, cfg.Reps)
	}

	// No job-level plan: the grid plan fills in.
	_, ctrs, _, err = measureCounted(cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	want = int64(gridExtra) * steps * int64(cfg.Reps)
	if got := ctrs.Get("fault.straggler_ns"); got != want {
		t.Errorf("grid-level plan: fault.straggler_ns = %d, want %d (Extra %v x %d steps x %d reps)",
			got, want, gridExtra, steps, cfg.Reps)
	}
}
