// Package experiments regenerates every table and figure of the paper's
// evaluation section from the simulation harness: Figure 4 (relative
// medians across all eight applications), Figures 5a/5b (CCS-QCD and
// MiniFE scaling), Figures 6a/6b (Lulesh 2.0 and LAMMPS scaling), Table I
// (Lulesh brk optimisations in DDR4), the LTP conformance counts of
// section III-D, the Lulesh brk trace and the McKernel proxy-option
// results of section IV, plus the design-choice ablations.
package experiments

import (
	"fmt"

	"mklite/internal/apps"
	"mklite/internal/cluster"
	"mklite/internal/fault"
	"mklite/internal/kernel"
	"mklite/internal/metrics"
	"mklite/internal/par"
	"mklite/internal/sched"
	"mklite/internal/sim"
	"mklite/internal/stats"
	"mklite/internal/trace"
)

// Config controls an experiment run.
type Config struct {
	// Reps is the number of repetitions per point; the paper runs
	// most applications five times and plots median with min/max.
	Reps int
	// Seed is the base seed; repetition i runs with the independent
	// stream seed sim.StreamSeed(Seed, i).
	Seed uint64
	// Quick restricts sweeps to three node counts per application so
	// the full suite stays test-budget friendly.
	Quick bool
	// Workers bounds the experiment fan-out's worker pool (par.Map):
	// 0 selects GOMAXPROCS, 1 forces sequential execution. Results are
	// byte-identical at any width — every job derives its own RNG
	// stream from (Seed, index), enforced by determinism_test.go.
	Workers int
	// Counters attaches a per-repetition trace.Counters sink to every
	// run and merges the aggregates into the produced figures
	// (Figure.Counters). Each repetition owns its sink — created inside
	// the par closure, merged in index order after the join — so the
	// fan-out stays race-free and rendered figure bytes are unchanged.
	Counters bool
	// Metrics attaches a per-repetition metrics.Registry the same way:
	// one registry per repetition, created inside the worker closure,
	// merged in index order after the join. The merged report's rendered
	// tables land in Figure.MetricsText. Rendered figure bytes and run
	// digests are unchanged — metrics only observe.
	Metrics bool
	// SLO is an optional declarative service-level objective spec (the
	// internal/obs ParseSLO grammar, e.g. DefaultFacilitySLO) evaluated
	// against every facility-comparison leg; each leg's verdict lands in
	// its fleet.Result.SLO and an extra "slo" column of the rendered
	// table. The empty spec leaves all output byte-identical — the SLO
	// only observes, it never alters scheduling.
	SLO string
	// Sched forces a scheduling policy (see internal/sched) onto every run
	// whose job does not select one of its own — a job-level Sched wins, so
	// the schedsweep grid is unaffected. Empty keeps each kernel's default,
	// leaving every output byte-identical.
	Sched sched.Kind
	// Faults schedules deterministic fault injection (see internal/fault)
	// for every run behind a figure that does not carry a job-level plan
	// of its own: a non-nil cluster.Job.Faults wins outright and the two
	// plans are never merged (docs/FAULTS.md, "Precedence";
	// faults_precedence_test.go pins it). A nil or empty plan leaves all
	// output byte-identical to a faultless run — determinism_test.go
	// enforces it across fan-out widths.
	Faults *fault.Plan
}

// DefaultConfig mirrors the paper's methodology.
func DefaultConfig() Config { return Config{Reps: 5, Seed: 1} }

// normalize fills defaults.
func (c Config) normalize() Config {
	if c.Reps <= 0 {
		c.Reps = 5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// nodeCounts selects the sweep points for an application.
func (c Config) nodeCounts(app *apps.Spec) []int {
	all := app.NodeCounts
	if !c.Quick || len(all) <= 3 {
		return all
	}
	return []int{all[0], all[len(all)/2], all[len(all)-1]}
}

// measure runs one configuration Reps times — in parallel, each repetition
// on its own stream seed — and summarises the FOMs.
//
// Rep seeds are SplitMix64 stream splits of (Seed, rep), not Seed+rep:
// additive derivation made two experiments with consecutive base seeds
// share all but one rep seed, so their "independent" repetitions were
// almost entirely correlated.
func measure(cfg Config, job cluster.Job) (stats.Summary, error) {
	sum, _, _, err := measureCounted(cfg, job)
	return sum, err
}

// repResult carries one repetition's observables through the fan-out join.
type repResult struct {
	fom      float64
	counters *trace.Counters
	metrics  *metrics.Registry
}

// measureCounted is measure plus optional mechanism counters: with
// cfg.Counters set, every repetition runs with its own trace sink (created
// inside the worker closure — sinks must never cross par workers) and the
// per-rep counter sets are merged in index order after the join, keeping the
// aggregate independent of scheduling.
func measureCounted(cfg Config, job cluster.Job) (stats.Summary, *trace.Counters, *metrics.Registry, error) {
	reps, err := par.MapWidthErr(cfg.Workers, cfg.Reps, func(rep int) (repResult, error) {
		j := job // per-job copy; the closure shares nothing mutable
		j.Seed = sim.StreamSeed(cfg.Seed, uint64(rep))
		if j.Faults == nil {
			j.Faults = cfg.Faults
		}
		if j.Sched == "" {
			j.Sched = cfg.Sched
		}
		var ctrs *trace.Counters
		var reg *metrics.Registry
		if cfg.Counters || cfg.Metrics {
			if cfg.Counters {
				ctrs = trace.NewCounters()
			}
			var obs trace.Observer
			if cfg.Metrics {
				reg = metrics.NewRegistry()
				obs = reg
			}
			j.Sink = trace.NewSinkObs(ctrs, nil, obs)
		}
		res, err := cluster.Run(j)
		if err != nil {
			return repResult{}, err
		}
		return repResult{fom: res.FOM, counters: ctrs, metrics: reg}, nil
	})
	if err != nil {
		return stats.Summary{}, nil, nil, err
	}
	foms := make([]float64, len(reps))
	var merged *trace.Counters
	if cfg.Counters {
		merged = trace.NewCounters()
	}
	var mergedReg *metrics.Registry
	if cfg.Metrics {
		mergedReg = metrics.NewRegistry()
	}
	for i, r := range reps {
		foms[i] = r.fom
		if merged != nil {
			merged.Merge(r.counters)
		}
		mergedReg.Merge(r.metrics)
	}
	return stats.Summarize(foms), merged, mergedReg, nil
}

// appFigure builds the three-kernel figure for one application by fanning
// the whole (kernel x node-count) grid out through one par.Map: every cell
// is an independent job, so the grid parallelises without any coordination
// and the series are assembled from the index-ordered results.
func appFigure(cfg Config, app *apps.Spec, id string) (*stats.Figure, error) {
	kts := []kernel.Type{kernel.TypeLinux, kernel.TypeMcKernel, kernel.TypeMOS}
	nodes := cfg.nodeCounts(app)
	type cell struct {
		sum      stats.Summary
		counters *trace.Counters
		metrics  *metrics.Registry
	}
	cells, err := par.MapWidthErr(cfg.Workers, len(kts)*len(nodes), func(i int) (cell, error) {
		kt, n := kts[i/len(nodes)], nodes[i%len(nodes)]
		sum, ctrs, reg, err := measureCounted(cfg, cluster.Job{App: app, Kernel: kt, Nodes: n})
		if err != nil {
			return cell{}, fmt.Errorf("experiments: %s on %v at %d nodes: %w", app.Name, kt, n, err)
		}
		return cell{sum: sum, counters: ctrs, metrics: reg}, nil
	})
	if err != nil {
		return nil, err
	}
	fig := &stats.Figure{ID: id, Title: fmt.Sprintf("%s (%s)", app.Name, app.Desc)}
	for ki, kt := range kts {
		s := &stats.Series{Name: kt.String(), Unit: app.Unit}
		for ni, n := range nodes {
			s.Add(n, cells[ki*len(nodes)+ni].sum)
		}
		fig.Series = append(fig.Series, s)
	}
	if cfg.Counters {
		merged := trace.NewCounters()
		for _, c := range cells {
			merged.Merge(c.counters)
		}
		fig.Counters = merged.Map()
	}
	if cfg.Metrics {
		merged := metrics.NewRegistry()
		for _, c := range cells {
			merged.Merge(c.metrics)
		}
		fig.MetricsText = merged.Report().Render()
	}
	return fig, nil
}

// RelativeFigure converts an absolute three-kernel figure into the paper's
// normalised form: McKernel and mOS medians relative to the Linux median at
// the same node count (Figure 4 / Figure 5a presentation).
func RelativeFigure(fig *stats.Figure) *stats.Figure {
	base := fig.Get("Linux")
	out := &stats.Figure{ID: fig.ID + "-rel", Title: fig.Title + " (relative to Linux)"}
	for _, s := range fig.Series {
		if s == base {
			continue
		}
		rel := s.RelativeTo(base)
		rel.Name = s.Name
		out.Series = append(out.Series, rel)
	}
	return out
}

// Figure4 reproduces the headline comparison: every application swept over
// its node counts on all three kernels. The returned figures are absolute;
// apply RelativeFigure for the paper's normalised presentation.
func Figure4(cfg Config) ([]*stats.Figure, error) {
	cfg = cfg.normalize()
	all := apps.All()
	return par.MapWidthErr(cfg.Workers, len(all), func(i int) (*stats.Figure, error) {
		return appFigure(cfg, all[i], "fig4-"+all[i].Name)
	})
}

// Figure4Medians summarises Figure 4 the way the paper's abstract does:
// the median relative improvement across all applications and node counts,
// and the best observed point.
type Figure4Summary struct {
	MedianImprovement float64 // e.g. 1.09 for +9%
	BestImprovement   float64 // e.g. 3.8 for +280%
	BestApp           string
	BestNodes         int
	BestKernel        string
}

// SummarizeFigure4 computes the cross-application summary.
func SummarizeFigure4(figs []*stats.Figure) Figure4Summary {
	var ratios []float64
	best := Figure4Summary{}
	for _, fig := range figs {
		base := fig.Get("Linux")
		if base == nil {
			continue
		}
		for _, s := range fig.Series {
			if s == base {
				continue
			}
			for _, p := range s.Points {
				bp, ok := base.At(p.Nodes)
				if !ok || bp.Median == 0 {
					continue
				}
				r := p.Median / bp.Median
				ratios = append(ratios, r)
				if r > best.BestImprovement {
					best.BestImprovement = r
					best.BestApp = fig.ID
					best.BestNodes = p.Nodes
					best.BestKernel = s.Name
				}
			}
		}
	}
	if len(ratios) > 0 {
		best.MedianImprovement = stats.Median(ratios)
	}
	return best
}

// Figure5a reproduces the CCS-QCD scaling comparison as a percentage of the
// Linux median ("% of Linux median" on the paper's y axis).
func Figure5a(cfg Config) (*stats.Figure, error) {
	cfg = cfg.normalize()
	abs, err := appFigure(cfg, apps.CCSQCD(), "fig5a")
	if err != nil {
		return nil, err
	}
	rel := RelativeFigure(abs)
	rel.ID = "fig5a"
	rel.Title = "CCS-QCD, clover fermion: % of Linux median (4 ranks/node, 32 threads)"
	for _, s := range rel.Series {
		s.Unit = "% of Linux"
		for i := range s.Points {
			s.Points[i].Median *= 100
			s.Points[i].Min *= 100
			s.Points[i].Max *= 100
			s.Points[i].Mean *= 100
		}
	}
	return rel, nil
}

// Figure5b reproduces the MiniFE strong-scaling plot (absolute Mflops).
func Figure5b(cfg Config) (*stats.Figure, error) {
	cfg = cfg.normalize()
	fig, err := appFigure(cfg, apps.MiniFE(), "fig5b")
	if err != nil {
		return nil, err
	}
	fig.Title = "miniFE 660x660x660: total Mflops (64 ranks/node, 4 threads)"
	return fig, nil
}

// Figure6a reproduces the Lulesh 2.0 scaling plot (zones/s).
func Figure6a(cfg Config) (*stats.Figure, error) {
	cfg = cfg.normalize()
	fig, err := appFigure(cfg, apps.Lulesh(), "fig6a")
	if err != nil {
		return nil, err
	}
	fig.Title = "LULESH 2.0 s50: zones/s (64 ranks/node, 2 threads)"
	return fig, nil
}

// Figure6b reproduces the LAMMPS scaling plot (timesteps/s).
func Figure6b(cfg Config) (*stats.Figure, error) {
	cfg = cfg.normalize()
	fig, err := appFigure(cfg, apps.LAMMPS(), "fig6b")
	if err != nil {
		return nil, err
	}
	fig.Title = "LAMMPS lj weak scaling: timesteps/s (64 ranks/node, 2 threads)"
	return fig, nil
}
