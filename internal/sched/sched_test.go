package sched

import (
	"testing"

	"mklite/internal/sim"
)

func mustNew(t *testing.T, k Kind, p Params) Policy {
	t.Helper()
	pol, err := New(k, p)
	if err != nil {
		t.Fatalf("New(%s): %v", k, err)
	}
	return pol
}

func TestParse(t *testing.T) {
	for _, k := range Kinds() {
		got, err := Parse(string(k))
		if err != nil || got != k {
			t.Fatalf("Parse(%s) = %s, %v", k, got, err)
		}
	}
	if got, err := Parse(" CFS "); err != nil || got != CFS {
		t.Fatalf("Parse mixed case = %s, %v", got, err)
	}
	if _, err := Parse("fifo"); err == nil {
		t.Fatal("Parse(fifo) should fail")
	}
	if _, err := Parse(""); err == nil {
		t.Fatal("Parse(empty) should fail")
	}
}

func TestNewDefaults(t *testing.T) {
	pol := mustNew(t, CFS, Params{})
	p := pol.Params()
	if p.Quantum != DefaultQuantum || p.TickPeriod != DefaultTickPeriod {
		t.Fatalf("cfs defaults: %+v", p)
	}
	if p.TickOverhead != 0 {
		t.Fatalf("cfs must not invent a tick cost: %+v", p)
	}
	if g := mustNew(t, Gang, Params{}).Params(); g.Quantum != DefaultGangWindow {
		t.Fatalf("gang window default: %+v", g)
	}
	for _, k := range []Kind{RR, Adaptive} {
		if q := mustNew(t, k, Params{}).Params(); q.TickOverhead != DefaultTimerCost {
			t.Fatalf("%s must arm the quantum timer: %+v", k, q)
		}
	}
	if _, err := New("fifo", Params{}); err == nil {
		t.Fatal("New(fifo) should fail")
	}
	if mustNew(t, Coop, Params{}).Preemptive() {
		t.Fatal("coop is not preemptive")
	}
	if !mustNew(t, CFS, Params{}).Preemptive() {
		t.Fatal("cfs is preemptive")
	}
}

// The default disciplines — and tickless, whose effect is profile shaping —
// must charge nothing per step: a run under them is bit-identical to the
// pre-policy simulator.
func TestStepDefaultPoliciesChargeNothing(t *testing.T) {
	for _, k := range []Kind{CFS, Coop, Tickless} {
		st := mustNew(t, k, Params{ContextSwitch: 2 * sim.Microsecond,
			TickOverhead: 3 * sim.Microsecond}).NewState(1)
		for _, base := range []sim.Duration{0, sim.Microsecond, 25 * sim.Millisecond, sim.Second} {
			if c := st.Step(base); c != (StepCost{}) {
				t.Fatalf("%s.Step(%v) = %+v, want zero", k, base, c)
			}
		}
	}
}

func TestStepRR(t *testing.T) {
	st := mustNew(t, RR, Params{Quantum: 10 * sim.Millisecond,
		ContextSwitch: 2 * sim.Microsecond, TickOverhead: 3 * sim.Microsecond}).NewState(1)
	c := st.Step(25 * sim.Millisecond)
	if c.Switches != 2 || c.Ticks != 2 {
		t.Fatalf("rr expiries: %+v", c)
	}
	if want := 2 * (5 * sim.Microsecond); c.Overhead != want {
		t.Fatalf("rr overhead %v, want %v", c.Overhead, want)
	}
	if c := st.Step(9 * sim.Millisecond); c != (StepCost{}) {
		t.Fatalf("sub-quantum step should be free: %+v", c)
	}
}

func TestStepGang(t *testing.T) {
	st := mustNew(t, Gang, Params{Quantum: sim.Millisecond}).NewState(1)
	c := st.Step(2500 * sim.Microsecond)
	if want := 500 * sim.Microsecond; c.GangSlack != want || c.Overhead != want {
		t.Fatalf("gang slack %+v, want %v", c, want)
	}
	if c := st.Step(3 * sim.Millisecond); c.GangSlack != 0 {
		t.Fatalf("aligned step should have no slack: %+v", c)
	}
}

func TestStepAdaptive(t *testing.T) {
	pol := mustNew(t, Adaptive, Params{Quantum: 10 * sim.Millisecond,
		ContextSwitch: 2 * sim.Microsecond, TickOverhead: 3 * sim.Microsecond})
	// Long steady phases must widen the quantum, decaying the charge.
	st := pol.NewState(42)
	var adjust int64
	first := st.Step(200 * sim.Millisecond)
	adjust += first.Adjusted
	for i := 0; i < 20; i++ {
		adjust += st.Step(200 * sim.Millisecond).Adjusted
	}
	last := st.Step(200 * sim.Millisecond)
	if adjust == 0 {
		t.Fatal("adaptive never widened its quantum")
	}
	if st.Quantum() <= 10*sim.Millisecond {
		t.Fatalf("quantum did not widen: %v", st.Quantum())
	}
	if last.Overhead >= first.Overhead {
		t.Fatalf("charge did not decay: first %v, last %v", first.Overhead, last.Overhead)
	}
	// Same seed, same trajectory — the state is a pure function of it.
	a, b := pol.NewState(7), pol.NewState(7)
	for i := 0; i < 50; i++ {
		base := sim.Duration(1+i%17) * sim.Millisecond * 3
		if ca, cb := a.Step(base), b.Step(base); ca != cb {
			t.Fatalf("step %d diverged: %+v vs %+v", i, ca, cb)
		}
	}
}

func TestScheduleCoop(t *testing.T) {
	cs := sim.Microsecond
	st := mustNew(t, Coop, Params{ContextSwitch: cs}).NewState(1)
	tasks := []sim.Duration{10 * sim.Millisecond, 20 * sim.Millisecond, 30 * sim.Millisecond}
	res := st.Schedule(tasks)
	if want := 60*sim.Millisecond + 2*cs; res.Makespan != want {
		t.Fatalf("makespan %v, want %v", res.Makespan, want)
	}
	if res.Switches != 2 || res.Overhead != 2*cs || res.TickTime != 0 {
		t.Fatalf("coop result: %+v", res)
	}
	if res.Completion[0] != 10*sim.Millisecond {
		t.Fatalf("first completion %v", res.Completion[0])
	}
}

// Overhead must decompose exactly into its parts — the contract callers use
// to attribute scheduler time.
func TestScheduleDecomposition(t *testing.T) {
	cs := 2 * sim.Microsecond
	for _, k := range []Kind{CFS, RR, Gang, Tickless, Adaptive} {
		st := mustNew(t, k, Params{Quantum: 10 * sim.Millisecond, ContextSwitch: cs,
			TickPeriod: 4 * sim.Millisecond, TickOverhead: 3 * sim.Microsecond}).NewState(3)
		res := st.Schedule([]sim.Duration{25 * sim.Millisecond, 10 * sim.Millisecond, 7 * sim.Millisecond})
		if got := sim.Duration(res.Switches)*cs + res.TickTime + res.Slack; res.Overhead != got {
			t.Fatalf("%s: Overhead %v != Switches·CS + TickTime + Slack = %v", k, res.Overhead, got)
		}
		if k != Gang && res.Slack != 0 {
			t.Fatalf("%s recorded gang slack: %+v", k, res)
		}
	}
}

// Tick accounting covers context-switch time too: with tick-free params the
// makespan is smaller by exactly the tick charge.
func TestScheduleTickCoversSwitches(t *testing.T) {
	p := Params{Quantum: 10 * sim.Millisecond, ContextSwitch: 2 * sim.Millisecond,
		TickPeriod: 4 * sim.Millisecond, TickOverhead: 1 * sim.Millisecond}
	tasks := []sim.Duration{25 * sim.Millisecond, 25 * sim.Millisecond}
	ticked := Run(tasks, CFS, p, 1)
	bare := p
	bare.TickOverhead = 0
	flat := Run(tasks, CFS, bare, 1)
	if ticked.TickTime == 0 {
		t.Fatal("no tick charged")
	}
	if ticked.Makespan != flat.Makespan+ticked.TickTime {
		t.Fatalf("makespan %v != tick-free %v + tick %v",
			ticked.Makespan, flat.Makespan, ticked.TickTime)
	}
	// The charge must exceed a compute-only stretch: switch time ticks too.
	rate := float64(p.TickOverhead) / float64(p.TickPeriod)
	computeOnly := (tasks[0] + tasks[1]).Scale(rate)
	if ticked.TickTime <= computeOnly {
		t.Fatalf("tick %v does not cover switch time (compute-only stretch %v)",
			ticked.TickTime, computeOnly)
	}
}

func TestScheduleTicklessSingleTask(t *testing.T) {
	p := Params{Quantum: 10 * sim.Millisecond, ContextSwitch: 2 * sim.Microsecond,
		TickPeriod: 4 * sim.Millisecond, TickOverhead: 3 * sim.Microsecond}
	task := []sim.Duration{25 * sim.Millisecond}
	if res := Run(task, Tickless, p, 1); res.Makespan != task[0] || res.Overhead != 0 {
		t.Fatalf("tickless solo run must be free: %+v", res)
	}
	if res := Run(task, CFS, p, 1); res.Makespan <= task[0] {
		t.Fatalf("cfs solo run must pay the tick: %+v", res)
	}
}

func TestScheduleGangPads(t *testing.T) {
	p := Params{Quantum: sim.Millisecond}
	res := Run([]sim.Duration{2500 * sim.Microsecond}, Gang, p, 1)
	if want := 3 * sim.Millisecond; res.Makespan != want {
		t.Fatalf("gang makespan %v, want %v", res.Makespan, want)
	}
	if res.Slack != 500*sim.Microsecond || res.Overhead != res.Slack {
		t.Fatalf("gang slack: %+v", res)
	}
}

func TestScheduleEdgeCases(t *testing.T) {
	p := Params{Quantum: 0, ContextSwitch: sim.Microsecond,
		TickPeriod: 4 * sim.Millisecond, TickOverhead: 3 * sim.Microsecond}
	// Zero quantum: every task runs to completion per slice.
	res := Run([]sim.Duration{10 * sim.Millisecond, 20 * sim.Millisecond}, CFS, p, 1)
	if res.Switches != 1 {
		t.Fatalf("zero quantum switches: %+v", res)
	}
	p.Quantum = -5 * sim.Millisecond
	if res := Run([]sim.Duration{10 * sim.Millisecond, 20 * sim.Millisecond}, CFS, p, 1); res.Switches != 1 {
		t.Fatalf("negative quantum switches: %+v", res)
	}
	// Empty task list.
	if res := Run(nil, CFS, p, 1); res.Makespan != 0 || len(res.Completion) != 0 {
		t.Fatalf("empty schedule: %+v", res)
	}
	if res := Run(nil, Coop, p, 1); res.Makespan != 0 {
		t.Fatalf("empty coop schedule: %+v", res)
	}
}
