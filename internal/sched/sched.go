// Package sched models the per-kernel CPU scheduling policy as a pluggable
// seam. The paper attributes much of the Linux-vs-LWK performance gap to
// scheduling discipline — tick-driven time sharing versus cooperative
// run-to-completion — and this package turns that discipline from a constant
// of each kernel model into an axis of the experiment matrix.
//
// Two views of a policy exist, matching the two places scheduling enters the
// simulator:
//
//   - Step: the cluster hot loop asks the policy, once per bulk-synchronous
//     application step, what explicit scheduling overhead the step incurs on
//     an application core (quantum-timer expiries, context switches,
//     gang-window padding). The default policies — cfs on Linux, coop on the
//     LWKs — charge nothing here: their cost is already embedded in the
//     calibrated model (the residual/periodic tick lives in the kernel's
//     noise profile, see internal/noise), so a default run is byte-identical
//     to the pre-policy simulator. Non-default policies charge explicit
//     deltas on top.
//
//   - Schedule: the ablation microbenchmarks run an explicit task list
//     through the policy on one core (internal/kernel.RunSchedule delegates
//     here), with full tick and context-switch accounting.
//
// Determinism: a Policy is immutable and safe to share. All per-run mutable
// state — the adaptive policy's quantum and its seeded hysteresis draws —
// lives in State, created per run via NewState(sim.StreamSeed(seed,
// StreamState)). State must never be captured across internal/par worker
// closures (enforced by mklint's parshare analyzer).
package sched

import (
	"fmt"
	"strings"

	"mklite/internal/sim"
)

// Kind names a scheduling policy.
type Kind string

// The built-in policies.
const (
	// CFS is tick-driven time sharing — the Linux default. In the hot
	// loop it is the identity policy: the tick's cost is part of the
	// kernel's calibrated noise profile, not an explicit charge.
	CFS Kind = "cfs"
	// RR is fixed-quantum round robin with a naive quantum timer: every
	// expiry takes the timer interrupt and requeues the task (one context
	// switch) even when nothing else is runnable.
	RR Kind = "rr"
	// Coop is the LWKs' cooperative run-to-completion discipline: no
	// timer, no preemption, switches only at task boundaries.
	Coop Kind = "coop"
	// Gang is synchronized-slice gang scheduling: cores run in aligned
	// windows, so every step is padded to a window boundary (internal
	// fragmentation) but noise detours land in the same window on every
	// rank and are absorbed once instead of max-combined across ranks.
	Gang Kind = "gang"
	// Tickless is dyntick: while a single task runs on a core the tick is
	// switched off entirely, so the tick-class noise sources disappear
	// from the kernel's profile (see noise.Profile.WithoutTicks).
	Tickless Kind = "tickless"
	// Adaptive is predictive round robin: the quantum widens and narrows
	// toward the observed application phase length (an EMA of step
	// durations), with a seeded random hysteresis band so adjustments are
	// deterministic per run stream.
	Adaptive Kind = "adaptive"
)

// StreamState is the sim.StreamSeed stream constant for deriving a run's
// scheduler State seed from the job seed.
const StreamState uint64 = 0x5c4ed57a7e

// Default parameters filled in by New when the caller leaves them zero.
const (
	// DefaultQuantum is the preemption quantum of the time-sharing
	// policies (Linux's ~10ms CFS targeted latency scale).
	DefaultQuantum = 10 * sim.Millisecond
	// DefaultGangWindow is the gang policy's co-scheduling window. It is
	// deliberately finer than the RR quantum: the window bounds per-step
	// fragmentation (up to one window of padding per step), and gang
	// trades that padding for aligned noise absorption.
	DefaultGangWindow = 1 * sim.Millisecond
	// DefaultTickPeriod is the scheduler tick period (250Hz).
	DefaultTickPeriod = 4 * sim.Millisecond
	// DefaultTimerCost is the quantum-timer expiry cost used when the
	// kernel's calibrated TickOverhead is zero (the tickless LWKs): a
	// preemptive policy must arm the timer the LWK normally leaves off.
	DefaultTimerCost = 1 * sim.Microsecond
)

// Kinds returns the built-in policy kinds in canonical order.
func Kinds() []Kind {
	return []Kind{CFS, RR, Coop, Gang, Tickless, Adaptive}
}

// Parse validates a policy name.
func Parse(s string) (Kind, error) {
	k := Kind(strings.ToLower(strings.TrimSpace(s)))
	for _, known := range Kinds() {
		if k == known {
			return k, nil
		}
	}
	return "", fmt.Errorf("sched: unknown policy %q (known: %s)", s, kindList())
}

func kindList() string {
	names := make([]string, 0, len(Kinds()))
	for _, k := range Kinds() {
		names = append(names, string(k))
	}
	return strings.Join(names, ", ")
}

// Params holds a policy's cost and period constants, taken from the owning
// kernel's calibrated Costs at construction.
type Params struct {
	// Quantum is the preemption quantum (rr, cfs, tickless, adaptive) or
	// the co-scheduling window (gang).
	Quantum sim.Duration
	// ContextSwitch is charged at every task switch and quantum requeue.
	ContextSwitch sim.Duration
	// TickPeriod/TickOverhead model the scheduler tick: every TickPeriod
	// of busy time costs TickOverhead on tick-driven policies.
	TickPeriod   sim.Duration
	TickOverhead sim.Duration
}

// Policy is an immutable scheduling policy bound to one kernel's cost
// constants. Implementations must be safe for concurrent use; all mutable
// per-run state lives in the State returned by NewState.
type Policy interface {
	// Kind names the policy.
	Kind() Kind
	// Params returns the policy's constants (defaults filled in).
	Params() Params
	// Preemptive reports whether the policy preempts running tasks.
	Preemptive() bool
	// NewState derives one run's mutable scheduler state from a seed
	// (pass sim.StreamSeed(jobSeed, StreamState)).
	NewState(seed uint64) *State
	// String renders the policy for diagnostics.
	String() string
}

// New builds a built-in policy, filling zero Params with the package
// defaults (per-kind quantum, 250Hz tick period, and — for the policies that
// must arm a quantum timer — a nonzero expiry cost).
func New(kind Kind, p Params) (Policy, error) {
	k, err := Parse(string(kind))
	if err != nil {
		return nil, err
	}
	if p.Quantum <= 0 {
		if k == Gang {
			p.Quantum = DefaultGangWindow
		} else {
			p.Quantum = DefaultQuantum
		}
	}
	if p.TickPeriod <= 0 {
		p.TickPeriod = DefaultTickPeriod
	}
	if (k == RR || k == Adaptive) && p.TickOverhead <= 0 {
		p.TickOverhead = DefaultTimerCost
	}
	return policy{kind: k, p: p}, nil
}

// policy is the built-in Policy implementation: a kind plus its constants.
type policy struct {
	kind Kind
	p    Params
}

func (pl policy) Kind() Kind       { return pl.kind }
func (pl policy) Params() Params   { return pl.p }
func (pl policy) Preemptive() bool { return pl.kind != Coop }
func (pl policy) String() string   { return string(pl.kind) }

// NewState derives the run's scheduler state. The RNG drives only the
// adaptive policy's hysteresis draws, but every kind gets one so state
// construction costs the same on every path.
func (pl policy) NewState(seed uint64) *State {
	return &State{
		kind: pl.kind,
		p:    pl.p,
		q:    pl.p.Quantum,
		rng:  sim.NewRNG(seed),
	}
}

// State is one run's mutable scheduler state: the current (possibly
// adapted) quantum, the phase-length estimate, and the seeded RNG behind the
// adaptive policy's hysteresis. One State belongs to exactly one run — never
// capture it across par worker closures.
type State struct {
	kind Kind
	p    Params
	// q is the live quantum; equals p.Quantum except under adaptive.
	q sim.Duration
	// ema estimates the application phase length (adaptive only).
	ema sim.Duration
	rng *sim.RNG
}

// Kind names the state's policy.
func (s *State) Kind() Kind { return s.kind }

// Quantum returns the live quantum (adapted under the adaptive policy).
func (s *State) Quantum() sim.Duration { return s.q }

// StepCost is the explicit scheduling overhead one application step incurs
// on an application core.
type StepCost struct {
	// Overhead is the total charge, including GangSlack.
	Overhead sim.Duration
	// GangSlack is the window-alignment padding portion (gang only).
	GangSlack sim.Duration
	// Switches counts context switches (quantum requeues included).
	Switches int64
	// Ticks counts charged quantum-timer expiries. The cfs/tickless tick
	// is not counted here: it lives in the kernel's noise profile.
	Ticks int64
	// Adjusted counts quantum adjustments (adaptive only).
	Adjusted int64
}

// Step charges one bulk-synchronous application step of the given busy time
// (compute + memory + heap + syscall) on a dedicated application core. The
// default disciplines charge nothing — their cost is embedded in the
// calibrated model — so a run under them is bit-identical to the pre-policy
// simulator. See the package comment.
func (s *State) Step(base sim.Duration) StepCost {
	switch s.kind {
	case RR:
		return s.quantumTimer(base)
	case Gang:
		slack := s.gangSlack(base)
		return StepCost{Overhead: slack, GangSlack: slack}
	case Adaptive:
		c := s.quantumTimer(base)
		c.Adjusted = s.adapt(base)
		return c
	default: // cfs, coop, tickless: no explicit per-step charge.
		return StepCost{}
	}
}

// quantumTimer charges the naive quantum timer: one expiry every quantum of
// busy time, each taking the timer interrupt plus a requeue context switch
// even when nothing else is runnable.
func (s *State) quantumTimer(base sim.Duration) StepCost {
	if s.q <= 0 || base < s.q {
		return StepCost{}
	}
	e := int64(base / s.q)
	per := s.p.TickOverhead + s.p.ContextSwitch
	return StepCost{
		Overhead: sim.Duration(e) * per,
		Switches: e,
		Ticks:    e,
	}
}

// gangSlack pads the step to the next co-scheduling window boundary.
func (s *State) gangSlack(base sim.Duration) sim.Duration {
	w := s.q
	if w <= 0 {
		return 0
	}
	return (w - base%w) % w
}

// adapt moves the quantum toward the EMA of observed step lengths by powers
// of two, inside [Quantum/4, Quantum*64]. The hysteresis band is drawn from
// the run's seeded RNG each step (whether or not an adjustment fires), so
// the draw sequence — and therefore the run — is a pure function of the
// seed.
func (s *State) adapt(base sim.Duration) int64 {
	if s.ema == 0 {
		s.ema = base
	} else {
		s.ema = (3*s.ema + base) / 4
	}
	h := 1.5 + s.rng.Float64() // hysteresis in [1.5, 2.5)
	switch {
	case s.ema > s.q.Scale(h) && s.q < s.p.Quantum.Scale(64):
		s.q *= 2
		return 1
	case s.ema.Scale(h) < s.q && s.q > s.p.Quantum/4:
		s.q /= 2
		return 1
	}
	return 0
}

// Run schedules tasks under kind with the given raw parameters — no default
// filling — for callers that model an explicitly-configured scheduler
// (kernel.RunSchedule maps its legacy SchedConfig through here).
func Run(tasks []sim.Duration, kind Kind, p Params, seed uint64) Result {
	st := &State{kind: kind, p: p, q: p.Quantum, rng: sim.NewRNG(seed)}
	return st.Schedule(tasks)
}

// Result reports a batch schedule simulation (see Schedule).
type Result struct {
	// Completion[i] is the virtual time task i finished.
	Completion []sim.Duration
	// Makespan is the completion time of the last task.
	Makespan sim.Duration
	// Switches is the number of context switches taken.
	Switches int
	// Overhead is the total non-application time. It decomposes exactly:
	// Overhead == Switches·ContextSwitch + TickTime + Slack.
	Overhead sim.Duration
	// TickTime is the tick-charge portion of Overhead.
	TickTime sim.Duration
	// Slack is the gang window-padding portion of Overhead.
	Slack sim.Duration
}

// Schedule simulates running the given tasks (pure compute demands) on one
// core under the state's policy and returns per-task completion times.
// Deterministic for the non-adaptive kinds; the adaptive kind is a pure
// function of the state's seed.
//
// Tick accounting: on tick-driven kinds every TickPeriod of busy wall time —
// compute slices and context switches alike — costs TickOverhead. The tick
// fires during a context switch exactly as it does during application work,
// so switch time is stretched by the same tick rate (this is the fix for the
// historical model that stretched only compute slices). Under tickless the
// tick is off while a single task remains. A zero or negative quantum runs
// each task to completion per slice. Gang pads every slice to a full window.
func (s *State) Schedule(tasks []sim.Duration) Result {
	res := Result{Completion: make([]sim.Duration, len(tasks))}
	if len(tasks) == 0 {
		return res
	}

	if s.kind == Coop {
		var now sim.Duration
		for i, w := range tasks {
			if i > 0 {
				now += s.p.ContextSwitch
				res.Switches++
				res.Overhead += s.p.ContextSwitch
			}
			now += w
			res.Completion[i] = now
		}
		res.Makespan = now
		return res
	}

	// Preemptive round robin over the live tasks with per-slice tick
	// accounting; the quantum may adapt between slices.
	tickRate := 0.0
	if s.p.TickPeriod > 0 && s.p.TickOverhead > 0 {
		tickRate = float64(s.p.TickOverhead) / float64(s.p.TickPeriod)
	}
	remaining := make([]sim.Duration, len(tasks))
	copy(remaining, tasks)
	live := len(tasks)
	var now sim.Duration
	cur := -1
	for live > 0 {
		progressed := false
		for i := range remaining {
			if remaining[i] <= 0 {
				continue
			}
			var cs sim.Duration
			if cur != i && cur != -1 {
				cs = s.p.ContextSwitch
				res.Switches++
				res.Overhead += cs
			}
			cur = i
			slice := s.q
			if slice <= 0 || slice > remaining[i] {
				slice = remaining[i]
			}
			var tick sim.Duration
			if tickRate > 0 && !(s.kind == Tickless && live == 1) {
				tick = (slice + cs).Scale(tickRate)
			}
			now += cs + slice + tick
			res.Overhead += tick
			res.TickTime += tick
			if s.kind == Gang && slice < s.q {
				pad := s.q - slice
				now += pad
				res.Overhead += pad
				res.Slack += pad
			}
			remaining[i] -= slice
			if remaining[i] <= 0 {
				res.Completion[i] = now
				live--
			}
			if s.kind == Adaptive {
				s.adapt(slice)
			}
			progressed = true
		}
		if !progressed {
			break
		}
	}
	res.Makespan = now
	return res
}
