package mos

import (
	"fmt"

	"mklite/internal/hw"
	"mklite/internal/kernel"
	"mklite/internal/mem"
)

// Job is an mOS launch: "mOS allows LWK resources to be divided at the
// time of application launch. This division respects NUMA boundaries and
// binds threads to CPU cores accordingly." Unlike McKernel's proxy-per-
// process model, the division here is rigid: each rank receives a fixed
// slice of every NUMA domain's memory and keeps it for the run.
type Job struct {
	kern  *Kernel
	ranks []*Rank
}

// Rank is one launched process with its core binding and memory budget.
type Rank struct {
	ID   int
	Core int
	Proc *kernel.Process
	// Budget is the rank's per-domain memory slice in bytes.
	Budget map[int]int64
}

// Launch divides the LWK's cores and memory over nRanks processes.
func (k *Kernel) Launch(nRanks int, heapLimit int64) (*Job, error) {
	part := k.Partition()
	if nRanks <= 0 || nRanks > len(part.AppCores) {
		return nil, fmt.Errorf("mos: %d ranks for %d LWK cores", nRanks, len(part.AppCores))
	}
	job := &Job{kern: k}
	stride := len(part.AppCores) / nRanks
	if stride < 1 {
		stride = 1
	}
	for r := 0; r < nRanks; r++ {
		p, err := kernel.NewProcess(k, 2000+r, heapLimit)
		if err != nil {
			return nil, fmt.Errorf("mos: rank %d: %w", r, err)
		}
		budget := map[int]int64{}
		for _, d := range part.Node.Domains {
			budget[d.ID] = k.Phys().Capacity(d.ID) / int64(nRanks)
		}
		job.ranks = append(job.ranks, &Rank{
			ID:     r,
			Core:   part.AppCores[r*stride],
			Proc:   p,
			Budget: budget,
		})
	}
	return job, nil
}

// Ranks returns the launched ranks.
func (j *Job) Ranks() []*Rank { return j.ranks }

// MapWithinBudget maps memory for a rank, enforcing the launch-time
// division: the request fails if it would exceed the rank's remaining
// slice of the preferred domains ("Only physically available memory can be
// allocated" — and on mOS, available means available *to this rank*).
func (j *Job) MapWithinBudget(r *Rank, size int64, kind mem.VMAKind) (*mem.VMA, error) {
	var remaining int64
	pol := j.kern.MapPolicy(kind)
	used := r.Proc.AS.BytesByKind()
	node := j.kern.Partition().Node
	for _, d := range pol.Domains {
		dom, err := node.Domain(d)
		if err != nil {
			continue
		}
		remaining += r.Budget[d] - usedOfKind(used, dom.Mem.Kind, r, node)
	}
	if size > remaining {
		return nil, fmt.Errorf("mos: rank %d budget exhausted: %d requested, %d remaining", r.ID, size, remaining)
	}
	return r.Proc.Mmap(size, kind)
}

// usedOfKind apportions a rank's per-kind usage back to domains; the
// division is per kind because the budget slices every domain equally.
func usedOfKind(used map[hw.MemKind]int64, kind hw.MemKind, r *Rank, node *hw.NodeSpec) int64 {
	doms := node.DomainsOfKind(kind)
	if len(doms) == 0 {
		return 0
	}
	return used[kind] / int64(len(doms))
}

// Exit terminates every rank and releases its memory.
func (j *Job) Exit() {
	for _, r := range j.ranks {
		r.Proc.Exit()
	}
	j.ranks = nil
}
