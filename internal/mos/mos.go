// Package mos models Intel's mOS: an LWK compiled directly into the Linux
// kernel. Offloading works by migrating the issuing thread into Linux
// (mOS "retains Linux kernel compatibility at the level of its internal
// kernel data structures; e.g., the task_struct"), which makes the offload
// path cheaper than a proxy round trip and lets tools, ptrace and the
// pseudo filesystems reuse Linux wholesale. The trade-offs the paper
// reports are modelled faithfully: early-boot contiguous memory grabbing,
// rigid upfront physical allocation (no demand-paging fallback), a
// partially implemented fork, and a runtime-toggleable HPC heap.
package mos

import (
	"fmt"

	"mklite/internal/hw"
	"mklite/internal/kernel"
	"mklite/internal/linuxos"
	"mklite/internal/mem"
	"mklite/internal/noise"
	"mklite/internal/sched"
)

// Config tunes an mOS boot.
type Config struct {
	// OSCores stay with the Linux side (paper: 4).
	OSCores int
	// MemFraction of each NUMA domain is grabbed for the LWK at early
	// boot, before Linux places unmovable structures.
	MemFraction float64
	// HeapManagement enables the HPC heap optimisations ("in mOS this
	// feature can be toggled by a runtime option") — Table I's subject.
	HeapManagement bool
	// LinuxReservation is the Linux side's own footprint, reserved
	// *after* the LWK grab.
	LinuxReservation int64
	// Sched selects the scheduling policy of LWK cores; empty means the
	// mOS default (sched.Coop, cooperative run-to-completion).
	Sched sched.Kind
}

// DefaultConfig is the paper's deployment configuration.
func DefaultConfig() Config {
	return Config{
		OSCores:          4,
		MemFraction:      0.95,
		HeapManagement:   true,
		LinuxReservation: 2 * hw.GiB,
	}
}

// Kernel is the mOS model.
type Kernel struct {
	kernel.Base
	cfg    Config
	procfs *linuxos.ProcFS
}

// Boot constructs an mOS node. Unlike McKernel, the LWK memory is taken
// from pristine domains before the (modelled) Linux reservation fragments
// them — "mOS can grab large contiguous physical memory blocks early
// during the boot sequence".
func Boot(node *hw.NodeSpec, cfg Config) (*Kernel, error) {
	if err := node.Validate(); err != nil {
		return nil, fmt.Errorf("mos: %w", err)
	}
	if cfg.MemFraction <= 0 || cfg.MemFraction > 1 {
		return nil, fmt.Errorf("mos: bad MemFraction %v", cfg.MemFraction)
	}
	part, err := kernel.DefaultPartition(node, cfg.OSCores)
	if err != nil {
		return nil, fmt.Errorf("mos: %w", err)
	}
	// Early grab: carve the LWK share out of each untouched domain in
	// the largest extents possible (1 GiB aligned).
	whole := mem.NewPhys(node)
	var grants []mem.Extent
	for _, d := range node.Domains {
		want := int64(float64(d.Mem.Capacity)*cfg.MemFraction) / int64(hw.Page2M) * int64(hw.Page2M)
		if want == 0 {
			continue
		}
		// Largest blocks first (1 GiB aligned for gigabyte pages),
		// then 2 MiB granules for the remainder of the share.
		exts, got := whole.AllocUpTo(d.ID, want/int64(hw.Page1G)*int64(hw.Page1G), int64(hw.Page1G))
		if rest := want - got; rest > 0 {
			more, _ := whole.AllocUpTo(d.ID, rest, int64(hw.Page2M))
			exts = append(exts, more...)
		}
		if len(exts) == 0 {
			return nil, fmt.Errorf("mos: domain %d yielded no early-boot memory", d.ID)
		}
		grants = append(grants, exts...)
	}
	// Linux's own footprint lands in whatever remains (it cannot
	// fragment the LWK's blocks).
	if cfg.LinuxReservation > 0 {
		ddr := node.DomainsOfKind(hw.DDR4)
		per := cfg.LinuxReservation / int64(len(ddr))
		for _, d := range ddr {
			whole.AllocUpTo(d, per, int64(hw.Page4K))
		}
	}
	kind := cfg.Sched
	if kind == "" {
		kind = sched.Coop
	}
	pol, err := kernel.NewPolicy(kind, kernel.MOSCosts())
	if err != nil {
		return nil, fmt.Errorf("mos: %w", err)
	}
	k := &Kernel{
		Base: kernel.Base{
			KName:  "mos",
			KType:  kernel.TypeMOS,
			KCaps:  caps(),
			KTable: table(),
			KCosts: kernel.MOSCosts(),
			KNoise: noise.MOSProfile(),
			KPart:  part,
			KPhys:  mem.NewPhysView(node, grants),
			KSched: pol,
		},
		cfg: cfg,
		// mOS "mostly reuses the Linux implementation" of /proc and
		// /sys: the full surface is visible.
		procfs: linuxos.NewProcFS(node),
	}
	return k, nil
}

// table: the LWK implements memory management and scheduling natively; the
// tight Linux integration lets everything else migrate into Linux — even
// move_pages and the misc facilities McKernel rejects.
func table() *kernel.Table {
	t := kernel.NewTable(kernel.Offloaded)
	t.SetClass(kernel.ClassMemory, kernel.Native)
	t.SetClass(kernel.ClassThread, kernel.Native)
	t.SetClass(kernel.ClassSched, kernel.Native)
	t.SetClass(kernel.ClassSignal, kernel.Native)
	t.SetAll([]kernel.Sysno{
		kernel.SysGetpid, kernel.SysGettid, kernel.SysClone,
		kernel.SysExit, kernel.SysExitGroup,
		kernel.SysClockGettime, kernel.SysGettimeofday,
	}, kernel.Native)
	// move_pages migrates to Linux and works — unlike McKernel's WIP.
	t.Set(kernel.SysMovePages, kernel.Offloaded)
	// fork is "not fully implemented yet": the call exists but its
	// semantics are incomplete (captured by the missing CapFullFork).
	t.Set(kernel.SysFork, kernel.Offloaded)
	return t
}

func caps() kernel.CapSet {
	return kernel.CapSet{}.With(
		kernel.CapMovePages,
		kernel.CapLinuxMisc,        // perf/userfaultfd/... reuse Linux
		kernel.CapProcSysFull,      // pseudo filesystems reused
		kernel.CapToolsOnLinuxSide, // debuggers stay on Linux cores
		kernel.CapEarlyBootMemory,
	)
	// Absent: CapFullFork (incomplete), CapPtraceFull (4 of 5 LTP
	// ptrace variants fail), CapBrkShrinkReleases (HPC heap),
	// CapExoticCloneFlags, CapDemandPagingFallback (rigid allocation),
	// CapTimeSharing.
}

// Config returns the boot configuration.
func (k *Kernel) Config() Config { return k.cfg }

// ProcFS returns the (reused) Linux pseudo-filesystem surface.
func (k *Kernel) ProcFS() *linuxos.ProcFS { return k.procfs }

// MapPolicy implements kernel.Kernel: MCDRAM first with transparent DDR4
// spill and the largest pages available, strictly upfront — "The current
// version of mOS is more rigid: Only physically available memory can be
// allocated."
func (k *Kernel) MapPolicy(kind mem.VMAKind) mem.Policy {
	node := k.Partition().Node
	domains := append(node.DomainsOfKind(hw.MCDRAM), node.DomainsOfKind(hw.DDR4)...)
	return mem.Policy{
		Domains: domains,
		MaxPage: hw.Page1G,
	}
}

// NewHeap implements kernel.Kernel, honouring the heap-management toggle.
func (k *Kernel) NewHeap(as *mem.AddrSpace, limit int64, domains []int) (mem.Heap, error) {
	node := k.Partition().Node
	if domains == nil {
		domains = append(node.DomainsOfKind(hw.MCDRAM), node.DomainsOfKind(hw.DDR4)...)
	}
	if k.cfg.HeapManagement {
		return mem.NewHPCHeap(as, limit, mem.DefaultHPCHeapConfig(domains))
	}
	// Heap management disabled: mOS shares the Linux kernel, so the
	// fallback is the stock Linux heap (demand paged, THP eligible).
	return mem.NewLinuxHeap(as, limit, domains, true)
}

var _ kernel.Kernel = (*Kernel)(nil)
