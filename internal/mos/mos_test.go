package mos

import (
	"testing"

	"mklite/internal/hw"
	"mklite/internal/kernel"
	"mklite/internal/mem"
)

func boot(t *testing.T, cfg Config) *Kernel {
	t.Helper()
	k, err := Boot(hw.KNL7250SNC4(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestBootIdentity(t *testing.T) {
	k := boot(t, DefaultConfig())
	if k.Type() != kernel.TypeMOS || k.Name() != "mos" {
		t.Fatal("identity")
	}
	if k.Sched().Preemptive() {
		t.Fatal("mOS scheduler must be cooperative")
	}
}

func TestBootValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemFraction = 0
	if _, err := Boot(hw.KNL7250SNC4(), cfg); err == nil {
		t.Fatal("bad fraction accepted")
	}
	cfg = DefaultConfig()
	cfg.OSCores = 100
	if _, err := Boot(hw.KNL7250SNC4(), cfg); err == nil {
		t.Fatal("bad cores accepted")
	}
}

func TestEarlyBootGetsContiguousBlocks(t *testing.T) {
	// mOS grabs memory before fragmentation: 1 GiB pages must be
	// allocatable from its DDR grant.
	k := boot(t, DefaultConfig())
	if _, err := k.Phys().Alloc(0, int64(hw.Page1G), int64(hw.Page1G)); err != nil {
		t.Fatalf("no 1GiB-contiguous block in mOS grant: %v", err)
	}
	if k.Phys().LargestFree(0) < 8*hw.GiB {
		t.Fatalf("early-boot largest block only %d", k.Phys().LargestFree(0))
	}
}

func TestMapPolicyRigidUpfront(t *testing.T) {
	k := boot(t, DefaultConfig())
	pol := k.MapPolicy(mem.VMAAnon)
	if pol.Demand || pol.FallbackDemand {
		t.Fatal("mOS allocation must be rigid upfront")
	}
	node := k.Partition().Node
	d0, _ := node.Domain(pol.Domains[0])
	if d0.Mem.Kind != hw.MCDRAM {
		t.Fatal("MCDRAM must be preferred")
	}
}

func TestMCDRAMSpillToDDR(t *testing.T) {
	// "Both kernels can also silently fall back to DDR4 RAM once they
	// run out of MCDRAM."
	k := boot(t, DefaultConfig())
	as := mem.NewAddrSpace(k.Phys())
	v, err := as.Map(20*hw.GiB, mem.VMAAnon, k.MapPolicy(mem.VMAAnon))
	if err != nil {
		t.Fatal(err)
	}
	if v.Populated != 20*hw.GiB {
		t.Fatal("mapping not fully backed")
	}
	kinds := as.BytesByKind()
	if kinds[hw.MCDRAM] == 0 || kinds[hw.DDR4] == 0 {
		t.Fatalf("no spill: %v", kinds)
	}
}

func TestSyscallDispositions(t *testing.T) {
	k := boot(t, DefaultConfig())
	if k.Table().Get(kernel.SysMovePages) != kernel.Offloaded {
		t.Fatal("move_pages should work via Linux")
	}
	if k.Table().Get(kernel.SysBrk) != kernel.Native {
		t.Fatal("brk should be native")
	}
	if k.Table().Get(kernel.SysOpen) != kernel.Offloaded {
		t.Fatal("open should migrate to Linux")
	}
}

func TestMigrationCheaperThanProxy(t *testing.T) {
	k := boot(t, DefaultConfig())
	if k.Costs().OffloadRTT >= kernel.McKernelCosts().OffloadRTT {
		t.Fatal("thread migration should be cheaper than proxy offload")
	}
}

func TestCaps(t *testing.T) {
	k := boot(t, DefaultConfig())
	for _, c := range []kernel.Capability{
		kernel.CapMovePages, kernel.CapLinuxMisc, kernel.CapProcSysFull,
		kernel.CapToolsOnLinuxSide, kernel.CapEarlyBootMemory,
	} {
		if !k.Caps().Has(c) {
			t.Fatalf("mOS should have %v", c)
		}
	}
	for _, c := range []kernel.Capability{
		kernel.CapFullFork, kernel.CapPtraceFull,
		kernel.CapBrkShrinkReleases, kernel.CapDemandPagingFallback,
	} {
		if k.Caps().Has(c) {
			t.Fatalf("mOS should lack %v", c)
		}
	}
}

func TestHeapToggle(t *testing.T) {
	withOpt := boot(t, DefaultConfig())
	as := mem.NewAddrSpace(withOpt.Phys())
	h, err := withOpt.NewHeap(as, hw.GiB, nil)
	if err != nil {
		t.Fatal(err)
	}
	h.Sbrk(4 * hw.MiB)
	if w := h.TouchUpTo(4 * hw.MiB); w.Faults != 0 {
		t.Fatal("HPC heap faulted")
	}

	cfg := DefaultConfig()
	cfg.HeapManagement = false
	without := boot(t, cfg)
	as2 := mem.NewAddrSpace(without.Phys())
	h2, err := without.NewHeap(as2, hw.GiB, nil)
	if err != nil {
		t.Fatal(err)
	}
	h2.Sbrk(4 * hw.MiB)
	if w := h2.TouchUpTo(4 * hw.MiB); w.Faults == 0 {
		t.Fatal("heap-management-disabled run should fault")
	}
}

func TestProcFSIsFullLinuxSurface(t *testing.T) {
	k := boot(t, DefaultConfig())
	online, err := k.ProcFS().Read("/sys/devices/system/cpu/online")
	if err != nil {
		t.Fatal(err)
	}
	if online != "0-271" {
		t.Fatalf("mOS reuses the Linux procfs; cpu online = %q", online)
	}
}

func TestMOSSlightlyNoisierThanMcKernel(t *testing.T) {
	k := boot(t, DefaultConfig())
	// Stray Linux tasks give mOS a marginally higher noise floor —
	// "McKernel is better isolated in that regard".
	mosRate := k.Noise().ExpectedRate(1)
	if mosRate == 0 {
		t.Fatal("mOS noise floor should be nonzero")
	}
}

func TestLaunchDividesResources(t *testing.T) {
	k := boot(t, DefaultConfig())
	job, err := k.Launch(4, hw.GiB)
	if err != nil {
		t.Fatal(err)
	}
	defer job.Exit()
	if len(job.Ranks()) != 4 {
		t.Fatalf("%d ranks", len(job.Ranks()))
	}
	// Each rank's MCDRAM slice is a quarter of the grant.
	for _, r := range job.Ranks() {
		if r.Budget[4] != k.Phys().Capacity(4)/4 {
			t.Fatalf("rank %d MCDRAM budget %d", r.ID, r.Budget[4])
		}
	}
	// Cores spread across quadrants, no double booking.
	seen := map[int]bool{}
	for _, r := range job.Ranks() {
		if seen[r.Core] {
			t.Fatal("core double-booked")
		}
		seen[r.Core] = true
	}
}

func TestLaunchBudgetEnforced(t *testing.T) {
	k := boot(t, DefaultConfig())
	job, err := k.Launch(4, hw.GiB)
	if err != nil {
		t.Fatal(err)
	}
	defer job.Exit()
	r := job.Ranks()[0]
	// Within budget: fine.
	if _, err := job.MapWithinBudget(r, 1*hw.GiB, mem.VMAAnon); err != nil {
		t.Fatal(err)
	}
	// The whole node's memory is far beyond one rank's quarter slice.
	if _, err := job.MapWithinBudget(r, 60*hw.GiB, mem.VMAAnon); err == nil {
		t.Fatal("budget not enforced")
	}
}

func TestLaunchValidationMOS(t *testing.T) {
	k := boot(t, DefaultConfig())
	if _, err := k.Launch(0, hw.GiB); err == nil {
		t.Fatal("zero ranks accepted")
	}
	if _, err := k.Launch(500, hw.GiB); err == nil {
		t.Fatal("oversubscription accepted")
	}
}
