// Package fault is the deterministic fault-injection subsystem: a
// declarative Plan of what should go wrong during a run (straggler nodes,
// offload-channel stalls, fabric link loss, transient node failures, a
// Linux-side daemon storm) and the Injector that draws those faults — and
// nothing else — from seed-derived sim.StreamSeed streams.
//
// The design contract mirrors internal/trace, with the direction reversed:
//
//  1. Faults are deterministic. Every draw comes from the injector's own
//     SplitMix64 stream, derived from (job seed, stream id) with
//     sim.StreamSeed. The run's main RNG streams are never touched, so a
//     nil or empty Plan leaves every simulated output byte-identical to a
//     build without the fault subsystem — determinism_test.go enforces this
//     at fan-out widths 1 and GOMAXPROCS.
//  2. Injectors are per-run state. Like a *trace.Sink, an *Injector is
//     created next to the run's seed and must never be shared across
//     internal/par worker closures — mklint's parshare analyzer rejects the
//     capture.
//  3. Recovery is part of the model. Retries, backoff and degraded
//     completion happen in *virtual* time and are recorded through the
//     trace counters and metrics histograms like any other mechanism.
//
// See docs/FAULTS.md for the full fault model and its recovery semantics.
package fault

import (
	"fmt"

	"mklite/internal/sim"
)

// Stream ids for sim.StreamSeed: each harness derives its injector stream
// from (job seed, stream id), so fault draws never collide with the model's
// own streams and the two harnesses' draws are independent of each other.
const (
	// StreamCluster seeds the analytic cluster harness's injector.
	StreamCluster uint64 = 0xfa171
	// StreamNode seeds the discrete-event node simulation's injector.
	StreamNode uint64 = 0xfa172
)

// Straggler pins one slow node: for a window of timesteps its local phase
// (compute + memory + heap) runs Factor times slower and absorbs an Extra
// detour per step — a failing DIMM, a thermally throttled socket, or a
// runaway local daemon. Because bulk-synchronous applications absorb the
// maximum over ranks at every collective, one straggler gates the whole
// job; the resilience experiment measures how that poisoning grows with
// node count.
type Straggler struct {
	// Node is the straggling node's index. A straggler whose index is
	// outside the job's node count is inactive, so one plan can sweep
	// node counts.
	Node int
	// Factor multiplies the node's local phase while active (1 = none).
	Factor float64
	// Extra is an additive per-step detour on the node while active.
	Extra sim.Duration
	// StartStep is the first affected timestep.
	StartStep int
	// Steps is the window length; <= 0 means until the end of the run.
	Steps int
}

// activeAt reports whether the straggler affects the given step of a job
// with the given node count.
func (s Straggler) activeAt(step, nodes int) bool {
	if s.Node < 0 || s.Node >= nodes || step < s.StartStep {
		return false
	}
	return s.Steps <= 0 || step < s.StartStep+s.Steps
}

// OffloadFault models a flaky syscall-offload channel (the McKernel proxy
// process or the mOS migration path): each offloaded call stalls with
// probability StallProb; a stalled call hangs until the LWK-side timeout
// fires after Stall, then is re-issued. Kernels that execute syscalls
// natively (Linux) never cross the channel and are immune.
type OffloadFault struct {
	// StallProb is the per-call stall probability.
	StallProb float64
	// Stall is the virtual time lost per stall before the re-issue
	// timeout fires.
	Stall sim.Duration
	// MaxRetries bounds re-issues per call in the discrete-event node
	// model; 0 selects DefaultMaxRetries. The analytic cluster harness
	// charges one re-issue per stall (re-stalls of a re-issue are a
	// second-order effect at realistic probabilities).
	MaxRetries int
}

// DefaultMaxRetries is the per-call re-issue bound when a policy leaves it
// zero.
const DefaultMaxRetries = 3

// retries returns the effective per-call re-issue bound.
func (o *OffloadFault) retries() int {
	if o.MaxRetries <= 0 {
		return DefaultMaxRetries
	}
	return o.MaxRetries
}

// LinkFault degrades the fabric: each inter-node message is lost with
// probability LossProb and retransmitted after a timeout — the
// retransmitted payload pays the wire again. Collectives amplify the
// damage the same way they amplify noise: a lost message in a reduction
// stalls every rank waiting on it.
type LinkFault struct {
	// LossProb is the per-message loss probability.
	LossProb float64
	// Timeout is the retransmit timer: virtual time between the loss and
	// the resend hitting the wire.
	Timeout sim.Duration
	// MessageBytes is the payload size charged per retransmit; 0 selects
	// DefaultRetransmitBytes (a typical collective fragment).
	MessageBytes int64
}

// DefaultRetransmitBytes is the resent payload size when a plan leaves it
// zero.
const DefaultRetransmitBytes = 4096

// bytes returns the effective retransmit payload.
func (l *LinkFault) bytes() int64 {
	if l.MessageBytes <= 0 {
		return DefaultRetransmitBytes
	}
	return l.MessageBytes
}

// NodeFailure injects transient whole-node failures: during an attempt,
// each node fails independently with probability Prob, killing the job at
// a uniformly drawn timestep. The job-level RetryPolicy decides what
// happens next (re-execution with backoff, then degraded completion or a
// hard error).
type NodeFailure struct {
	// Prob is the per-node, per-attempt transient failure probability.
	Prob float64
	// FailFirst deterministically fails the first N attempts regardless
	// of Prob — the reproducible form the golden tests pin.
	FailFirst int
}

// DaemonStorm models the Linux side misbehaving: a monitoring or logging
// daemon going rogue. On Linux the storm runs on the application cores
// themselves (no core specialisation protects them) as an extra noise
// source; on the LWKs strong partitioning keeps application cores clean,
// but every offloaded syscall is serviced by the now-busy Linux cores and
// pays OffloadFactor on its round trip — the paper's isolation argument,
// exercised under stress.
type DaemonStorm struct {
	// Period is the mean interval between storm bursts.
	Period sim.Duration
	// Burst is the mean burst length.
	Burst sim.Duration
	// CV is the burst-length coefficient of variation (log-normal).
	CV float64
	// OffloadFactor multiplies offloaded syscall service on the LWKs
	// while the storm rages; values <= 1 leave offloads untouched.
	OffloadFactor float64
}

// RetryPolicy bounds job-level re-execution after transient node failures.
// Backoff is exponential in virtual time: attempt k waits
// min(Base << k, Max) before re-launching.
type RetryPolicy struct {
	// MaxRetries is the number of re-executions after the first failed
	// attempt; 0 selects DefaultMaxRetries.
	MaxRetries int
	// Base is the first backoff; 0 selects DefaultBackoffBase.
	Base sim.Duration
	// Max caps a single backoff; 0 selects DefaultBackoffMax.
	Max sim.Duration
}

// Default retry-policy values.
const (
	DefaultBackoffBase = 500 * sim.Millisecond
	DefaultBackoffMax  = 8 * sim.Second
)

// Backoff returns the bounded exponential backoff before retry attempt k
// (k = 0 for the first retry).
func (r RetryPolicy) Backoff(k int) sim.Duration {
	base := r.Base
	if base <= 0 {
		base = DefaultBackoffBase
	}
	maxB := r.Max
	if maxB <= 0 {
		maxB = DefaultBackoffMax
	}
	b := base
	for i := 0; i < k; i++ {
		b *= 2
		if b >= maxB {
			return maxB
		}
	}
	if b > maxB {
		b = maxB
	}
	return b
}

// maxRetries returns the effective job-level retry bound.
func (r RetryPolicy) maxRetries() int {
	if r.MaxRetries <= 0 {
		return DefaultMaxRetries
	}
	return r.MaxRetries
}

// Plan is one run's declarative fault schedule. The zero value (and nil)
// injects nothing and costs nothing: the harnesses skip every fault branch
// when NewInjector returns nil.
type Plan struct {
	// Stragglers are the scheduled slow nodes.
	Stragglers []Straggler
	// Offload, when non-nil, makes the syscall-offload channel flaky.
	Offload *OffloadFault
	// Link, when non-nil, degrades the fabric.
	Link *LinkFault
	// NodeFail, when non-nil, injects transient node failures.
	NodeFail *NodeFailure
	// Storm, when non-nil, runs the Linux-side daemon storm.
	Storm *DaemonStorm
	// Retry bounds re-execution after node failures.
	Retry RetryPolicy
	// AllowDegraded completes the job on the surviving nodes once
	// retries are exhausted (a partial result, flagged as degraded)
	// instead of failing the run.
	AllowDegraded bool
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool {
	if p == nil {
		return true
	}
	active := false
	for _, s := range p.Stragglers {
		if (s.Factor > 1 || s.Extra > 0) && s.Node >= 0 {
			active = true
		}
	}
	if p.Offload != nil && p.Offload.StallProb > 0 {
		active = true
	}
	if p.Link != nil && p.Link.LossProb > 0 {
		active = true
	}
	if p.NodeFail != nil && (p.NodeFail.Prob > 0 || p.NodeFail.FailFirst > 0) {
		active = true
	}
	if p.Storm != nil && p.Storm.Period > 0 && p.Storm.Burst > 0 {
		active = true
	}
	return !active
}

// Validate rejects plans whose parameters are outside the model's domain.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for i, s := range p.Stragglers {
		if s.Node < 0 {
			return fmt.Errorf("fault: straggler %d: negative node %d", i, s.Node)
		}
		if s.Factor < 0 || (s.Factor != 0 && s.Factor < 1) {
			return fmt.Errorf("fault: straggler %d: factor %g must be 0 (unset) or >= 1", i, s.Factor)
		}
		if s.Extra < 0 {
			return fmt.Errorf("fault: straggler %d: negative extra detour %v", i, s.Extra)
		}
		if s.StartStep < 0 {
			return fmt.Errorf("fault: straggler %d: negative start step %d", i, s.StartStep)
		}
	}
	if o := p.Offload; o != nil {
		if o.StallProb < 0 || o.StallProb > 1 {
			return fmt.Errorf("fault: offload stall probability %g outside [0, 1]", o.StallProb)
		}
		if o.Stall < 0 {
			return fmt.Errorf("fault: negative offload stall %v", o.Stall)
		}
		if o.MaxRetries < 0 {
			return fmt.Errorf("fault: negative offload retry bound %d", o.MaxRetries)
		}
	}
	if l := p.Link; l != nil {
		if l.LossProb < 0 || l.LossProb >= 1 {
			return fmt.Errorf("fault: link loss probability %g outside [0, 1)", l.LossProb)
		}
		if l.Timeout < 0 {
			return fmt.Errorf("fault: negative link retransmit timeout %v", l.Timeout)
		}
		if l.MessageBytes < 0 {
			return fmt.Errorf("fault: negative link retransmit payload %d", l.MessageBytes)
		}
	}
	if n := p.NodeFail; n != nil {
		if n.Prob < 0 || n.Prob > 1 {
			return fmt.Errorf("fault: node failure probability %g outside [0, 1]", n.Prob)
		}
		if n.FailFirst < 0 {
			return fmt.Errorf("fault: negative node FailFirst %d", n.FailFirst)
		}
	}
	if s := p.Storm; s != nil {
		if s.Period < 0 || s.Burst < 0 {
			return fmt.Errorf("fault: daemon storm with negative period or burst")
		}
		if s.CV < 0 {
			return fmt.Errorf("fault: daemon storm with negative CV %g", s.CV)
		}
		if s.OffloadFactor < 0 {
			return fmt.Errorf("fault: daemon storm with negative offload factor %g", s.OffloadFactor)
		}
	}
	if p.Retry.MaxRetries < 0 {
		return fmt.Errorf("fault: negative retry bound %d", p.Retry.MaxRetries)
	}
	if p.Retry.Base < 0 || p.Retry.Max < 0 {
		return fmt.Errorf("fault: negative retry backoff")
	}
	return nil
}

// MaxRetries returns the job-level retry bound (with defaults applied); 0
// when the plan injects no node failures.
func (p *Plan) MaxRetries() int {
	if p == nil || p.NodeFail == nil {
		return 0
	}
	return p.Retry.maxRetries()
}
