package fault

import (
	"strings"
	"testing"

	"mklite/internal/sim"
)

func TestEmptyPlan(t *testing.T) {
	var nilPlan *Plan
	if !nilPlan.Empty() {
		t.Fatal("nil plan must be empty")
	}
	if !(&Plan{}).Empty() {
		t.Fatal("zero plan must be empty")
	}
	// Inert clauses (zero probabilities/factors) stay empty.
	inert := &Plan{
		Stragglers: []Straggler{{Node: 0, Factor: 1}},
		Offload:    &OffloadFault{StallProb: 0},
		Link:       &LinkFault{LossProb: 0},
		NodeFail:   &NodeFailure{},
		Storm:      &DaemonStorm{},
	}
	if !inert.Empty() {
		t.Fatal("inert plan must be empty")
	}
	if (&Plan{Stragglers: []Straggler{{Factor: 2}}}).Empty() {
		t.Fatal("straggler plan must not be empty")
	}
	if (&Plan{NodeFail: &NodeFailure{FailFirst: 1}}).Empty() {
		t.Fatal("fail-first plan must not be empty")
	}
}

func TestNewInjectorNilForEmpty(t *testing.T) {
	if in := NewInjector(nil, 1); in != nil {
		t.Fatal("nil plan must yield nil injector")
	}
	if in := NewInjector(&Plan{}, 1); in != nil {
		t.Fatal("empty plan must yield nil injector")
	}
	if in := NewInjector(&Plan{Stragglers: []Straggler{{Factor: 2}}}, 1); in == nil {
		t.Fatal("active plan must yield an injector")
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Active() {
		t.Fatal("nil injector active")
	}
	if d := in.StragglerExcess(0, 8, sim.Millisecond); d != 0 {
		t.Fatalf("nil injector straggler excess %v", d)
	}
	if n, d := in.OffloadStalls(100); n != 0 || d != 0 {
		t.Fatalf("nil injector offload stalls %d %v", n, d)
	}
	if d, ok := in.OffloadStall(); ok || d != 0 {
		t.Fatal("nil injector per-call stall")
	}
	if n, d := in.LinkRetransmits(100, sim.Microsecond); n != 0 || d != 0 {
		t.Fatalf("nil injector retransmits %d %v", n, d)
	}
	if _, _, failed := in.NodeFailure(0, 8, 100); failed {
		t.Fatal("nil injector node failure")
	}
	if in.MaxRetries() != 0 || in.AllowDegraded() || in.Storm() != nil {
		t.Fatal("nil injector policy leak")
	}
	if s := in.StormOffloadScale(); s != 1 {
		t.Fatalf("nil injector storm scale %g", s)
	}
	in.DisableNodeFailures() // must not panic
}

func TestStragglerExcess(t *testing.T) {
	p := &Plan{Stragglers: []Straggler{
		{Node: 2, Factor: 3, StartStep: 10, Steps: 5},
		{Node: 2, Extra: 100 * sim.Microsecond, StartStep: 10, Steps: 5},
		{Node: 5, Extra: 250 * sim.Microsecond},
	}}
	in := NewInjector(p, 42)
	local := sim.Millisecond

	// Before the window only node 5's open-ended straggler is active.
	if got := in.StragglerExcess(0, 8, local); got != 250*sim.Microsecond {
		t.Fatalf("step 0 excess %v", got)
	}
	// Inside the window node 2's two afflictions add: 2*local + 100us =
	// 2.1ms, beating node 5's 250us.
	want := 2*local + 100*sim.Microsecond
	if got := in.StragglerExcess(12, 8, local); got != want {
		t.Fatalf("step 12 excess %v, want %v", got, want)
	}
	// After the window node 5 wins again.
	if got := in.StragglerExcess(15, 8, local); got != 250*sim.Microsecond {
		t.Fatalf("step 15 excess %v", got)
	}
	// A 4-node job doesn't include node 5; only node 2's window counts.
	if got := in.StragglerExcess(0, 4, local); got != 0 {
		t.Fatalf("4-node step 0 excess %v", got)
	}
}

func TestOffloadStallsDeterministic(t *testing.T) {
	p := &Plan{Offload: &OffloadFault{StallProb: 0.05, Stall: 2 * sim.Millisecond}}
	a, b := NewInjector(p, 7), NewInjector(p, 7)
	for i := 0; i < 50; i++ {
		an, ad := a.OffloadStalls(200)
		bn, bd := b.OffloadStalls(200)
		if an != bn || ad != bd {
			t.Fatalf("draw %d diverged: %d/%v vs %d/%v", i, an, ad, bn, bd)
		}
		if an < 0 || an > 200 {
			t.Fatalf("stall count %d out of range", an)
		}
		if ad != sim.Duration(an)*2*sim.Millisecond {
			t.Fatalf("stall cost %v for %d stalls", ad, an)
		}
	}
	// Mean sanity: ~10 stalls per 200 calls at 5%.
	in := NewInjector(p, 99)
	total := 0
	for i := 0; i < 200; i++ {
		n, _ := in.OffloadStalls(200)
		total += n
	}
	if mean := float64(total) / 200; mean < 7 || mean > 13 {
		t.Fatalf("stall mean %.2f, want ~10", mean)
	}
}

func TestLinkRetransmits(t *testing.T) {
	p := &Plan{Link: &LinkFault{LossProb: 0.01, Timeout: 3 * sim.Millisecond}}
	in := NewInjector(p, 11)
	resend := 50 * sim.Microsecond
	total := 0
	for i := 0; i < 500; i++ {
		n, d := in.LinkRetransmits(100, resend)
		if d != sim.Duration(n)*(3*sim.Millisecond+resend) {
			t.Fatalf("delay %v for %d retransmits", d, n)
		}
		total += n
	}
	if mean := float64(total) / 500; mean < 0.6 || mean > 1.4 {
		t.Fatalf("retransmit mean %.2f, want ~1", mean)
	}
	if in.LinkBytes() != DefaultRetransmitBytes {
		t.Fatalf("default retransmit bytes %d", in.LinkBytes())
	}
}

func TestNodeFailureFailFirst(t *testing.T) {
	p := &Plan{NodeFail: &NodeFailure{FailFirst: 2}, Retry: RetryPolicy{MaxRetries: 3}}
	in := NewInjector(p, 5)
	node, step, failed := in.NodeFailure(0, 8, 100)
	if !failed || node != 0 || step != 50 {
		t.Fatalf("attempt 0: %d %d %v", node, step, failed)
	}
	node, _, failed = in.NodeFailure(1, 8, 100)
	if !failed || node != 1 {
		t.Fatalf("attempt 1: node %d failed=%v", node, failed)
	}
	if _, _, failed = in.NodeFailure(2, 8, 100); failed {
		t.Fatal("attempt 2 must succeed (prob 0)")
	}
	in.DisableNodeFailures()
	if _, _, failed = in.NodeFailure(0, 8, 100); failed {
		t.Fatal("disabled injector still failing")
	}
	if in.MaxRetries() != 3 {
		t.Fatalf("max retries %d", in.MaxRetries())
	}
}

func TestBackoff(t *testing.T) {
	r := RetryPolicy{Base: sim.Second, Max: 5 * sim.Second}
	for k, want := range []sim.Duration{sim.Second, 2 * sim.Second, 4 * sim.Second, 5 * sim.Second, 5 * sim.Second} {
		if got := r.Backoff(k); got != want {
			t.Fatalf("backoff(%d) = %v, want %v", k, got, want)
		}
	}
	if got := (RetryPolicy{}).Backoff(0); got != DefaultBackoffBase {
		t.Fatalf("default backoff %v", got)
	}
}

func TestStormScales(t *testing.T) {
	p := &Plan{Storm: &DaemonStorm{Period: 300 * sim.Millisecond, Burst: 100 * sim.Millisecond, OffloadFactor: 5}}
	in := NewInjector(p, 1)
	if duty := in.StormDuty(); duty < 0.249 || duty > 0.251 {
		t.Fatalf("duty %g, want 0.25", duty)
	}
	if s := in.StormOffloadScale(); s < 1.99 || s > 2.01 {
		t.Fatalf("offload scale %g, want 2", s)
	}
	// A harmless storm (factor <= 1) leaves offloads untouched.
	p2 := &Plan{Storm: &DaemonStorm{Period: sim.Second, Burst: 100 * sim.Millisecond, OffloadFactor: 1}}
	if s := NewInjector(p2, 1).StormOffloadScale(); s != 1 {
		t.Fatalf("harmless storm scale %g", s)
	}
}

func TestValidate(t *testing.T) {
	bad := []*Plan{
		{Stragglers: []Straggler{{Node: -1, Factor: 2}}},
		{Stragglers: []Straggler{{Factor: 0.5}}},
		{Offload: &OffloadFault{StallProb: 1.5}},
		{Offload: &OffloadFault{StallProb: 0.1, Stall: -sim.Second}},
		{Link: &LinkFault{LossProb: 1}},
		{NodeFail: &NodeFailure{Prob: -0.1}},
		{Storm: &DaemonStorm{Period: -sim.Second}},
		{Retry: RetryPolicy{MaxRetries: -1}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("plan %d validated", i)
		}
	}
	ok := &Plan{
		Stragglers: []Straggler{{Node: 0, Factor: 2, Extra: sim.Microsecond}},
		Offload:    &OffloadFault{StallProb: 0.01, Stall: sim.Millisecond},
		Link:       &LinkFault{LossProb: 0.001, Timeout: sim.Millisecond},
		NodeFail:   &NodeFailure{Prob: 0.05},
		Storm:      &DaemonStorm{Period: sim.Second, Burst: sim.Millisecond, OffloadFactor: 2},
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("good plan rejected: %v", err)
	}
}

func TestParsePlan(t *testing.T) {
	if p, err := ParsePlan(""); err != nil || p != nil {
		t.Fatalf("empty spec: %v %v", p, err)
	}
	p, err := ParsePlan("straggler:node=3,factor=2.5,extra=200us,start=5,steps=40; " +
		"offload:prob=0.01,stall=5ms,retries=4; link:loss=0.001,timeout=2ms,bytes=8192; " +
		"nodefail:prob=0.02,failfirst=1; storm:period=250ms,burst=30ms,cv=0.5,offload=4; " +
		"retry:max=2,base=1s,cap=10s; degraded")
	if err != nil {
		t.Fatal(err)
	}
	s := p.Stragglers[0]
	if s.Node != 3 || s.Factor != 2.5 || s.Extra != 200*sim.Microsecond || s.StartStep != 5 || s.Steps != 40 {
		t.Fatalf("straggler %+v", s)
	}
	if p.Offload.StallProb != 0.01 || p.Offload.Stall != 5*sim.Millisecond || p.Offload.MaxRetries != 4 {
		t.Fatalf("offload %+v", p.Offload)
	}
	if p.Link.LossProb != 0.001 || p.Link.Timeout != 2*sim.Millisecond || p.Link.MessageBytes != 8192 {
		t.Fatalf("link %+v", p.Link)
	}
	if p.NodeFail.Prob != 0.02 || p.NodeFail.FailFirst != 1 {
		t.Fatalf("nodefail %+v", p.NodeFail)
	}
	if p.Storm.Period != 250*sim.Millisecond || p.Storm.Burst != 30*sim.Millisecond ||
		p.Storm.CV != 0.5 || p.Storm.OffloadFactor != 4 {
		t.Fatalf("storm %+v", p.Storm)
	}
	if p.Retry.MaxRetries != 2 || p.Retry.Base != sim.Second || p.Retry.Max != 10*sim.Second {
		t.Fatalf("retry %+v", p.Retry)
	}
	if !p.AllowDegraded {
		t.Fatal("degraded not set")
	}
}

func TestParsePlanErrors(t *testing.T) {
	cases := []struct{ spec, want string }{
		{"bogus:x=1", "unknown fault kind"},
		{"straggler:node=0", "factor or extra"},
		{"straggler:factor=2,typo=1", "unknown argument"},
		{"straggler:factor=abc", "bad number"},
		{"straggler:extra=xyz", "bad duration"},
		{"straggler:node=1.5,factor=2", "bad integer"},
		{"offload:prob=0.1;offload:prob=0.2", "duplicate offload"},
		{"offload:prob=2", "outside [0, 1]"},
		{"straggler factor=2", "unknown fault kind"},
	}
	for _, c := range cases {
		_, err := ParsePlan(c.spec)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("spec %q: error %v, want %q", c.spec, err, c.want)
		}
	}
}
