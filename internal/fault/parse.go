package fault

import (
	"fmt"
	"maps"
	"slices"
	"strconv"
	"strings"
	"time"

	"mklite/internal/sim"
)

// ParsePlan parses the mkrun -faults spec syntax: semicolon-separated fault
// clauses, each `kind:key=value,key=value,...`. An empty spec returns a nil
// plan (no faults).
//
//	straggler:node=0,factor=2,extra=200us,start=0,steps=50
//	offload:prob=0.01,stall=5ms,retries=3
//	link:loss=0.001,timeout=2ms,bytes=8192
//	nodefail:prob=0.02,failfirst=1
//	storm:period=250ms,burst=30ms,cv=0.5,offload=4
//	retry:max=2,base=1s,cap=10s
//	degraded
//
// Durations use time.ParseDuration notation ("200us", "5ms"). Multiple
// straggler clauses accumulate; other kinds may appear once.
func ParsePlan(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	p := &Plan{}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		kind, argstr, _ := strings.Cut(clause, ":")
		kind = strings.TrimSpace(kind)
		args, err := parseArgs(argstr)
		if err != nil {
			return nil, fmt.Errorf("fault: clause %q: %w", clause, err)
		}
		if err := applyClause(p, kind, args); err != nil {
			return nil, fmt.Errorf("fault: clause %q: %w", clause, err)
		}
		if err := args.unused(); err != nil {
			return nil, fmt.Errorf("fault: clause %q: %w", clause, err)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// applyClause folds one parsed clause into the plan.
func applyClause(p *Plan, kind string, args *argSet) error {
	switch kind {
	case "straggler":
		s := Straggler{Factor: args.float("factor", 0)}
		s.Node = args.int("node", 0)
		s.Extra = args.duration("extra", 0)
		s.StartStep = args.int("start", 0)
		s.Steps = args.int("steps", 0)
		if args.err == nil && s.Factor == 0 && s.Extra == 0 {
			return fmt.Errorf("straggler needs factor or extra")
		}
		p.Stragglers = append(p.Stragglers, s)
	case "offload":
		if p.Offload != nil {
			return fmt.Errorf("duplicate offload clause")
		}
		p.Offload = &OffloadFault{
			StallProb:  args.float("prob", 0),
			Stall:      args.duration("stall", 5*sim.Millisecond),
			MaxRetries: args.int("retries", 0),
		}
	case "link":
		if p.Link != nil {
			return fmt.Errorf("duplicate link clause")
		}
		p.Link = &LinkFault{
			LossProb:     args.float("loss", 0),
			Timeout:      args.duration("timeout", 1*sim.Millisecond),
			MessageBytes: int64(args.int("bytes", 0)),
		}
	case "nodefail":
		if p.NodeFail != nil {
			return fmt.Errorf("duplicate nodefail clause")
		}
		p.NodeFail = &NodeFailure{
			Prob:      args.float("prob", 0),
			FailFirst: args.int("failfirst", 0),
		}
	case "storm":
		if p.Storm != nil {
			return fmt.Errorf("duplicate storm clause")
		}
		p.Storm = &DaemonStorm{
			Period:        args.duration("period", 250*sim.Millisecond),
			Burst:         args.duration("burst", 20*sim.Millisecond),
			CV:            args.float("cv", 0.5),
			OffloadFactor: args.float("offload", 1),
		}
	case "retry":
		p.Retry = RetryPolicy{
			MaxRetries: args.int("max", 0),
			Base:       args.duration("base", 0),
			Max:        args.duration("cap", 0),
		}
	case "degraded":
		p.AllowDegraded = true
	default:
		return fmt.Errorf("unknown fault kind %q", kind)
	}
	return args.err
}

// argSet is one clause's key=value pairs with typed, error-accumulating
// accessors; keys left unread are reported as unknown.
type argSet struct {
	vals map[string]string
	used map[string]bool
	err  error
}

func parseArgs(s string) (*argSet, error) {
	a := &argSet{vals: map[string]string{}, used: map[string]bool{}}
	s = strings.TrimSpace(s)
	if s == "" {
		return a, nil
	}
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("argument %q is not key=value", kv)
		}
		a.vals[strings.TrimSpace(k)] = strings.TrimSpace(v)
	}
	return a, nil
}

// fail records the first accessor error.
func (a *argSet) fail(err error) {
	if a.err == nil {
		a.err = err
	}
}

func (a *argSet) lookup(key string) (string, bool) {
	v, ok := a.vals[key]
	if ok {
		a.used[key] = true
	}
	return v, ok
}

func (a *argSet) int(key string, def int) int {
	v, ok := a.lookup(key)
	if !ok {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		a.fail(fmt.Errorf("bad integer %s=%q", key, v))
		return def
	}
	return n
}

func (a *argSet) float(key string, def float64) float64 {
	v, ok := a.lookup(key)
	if !ok {
		return def
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		a.fail(fmt.Errorf("bad number %s=%q", key, v))
		return def
	}
	return f
}

func (a *argSet) duration(key string, def sim.Duration) sim.Duration {
	v, ok := a.lookup(key)
	if !ok {
		return def
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		a.fail(fmt.Errorf("bad duration %s=%q", key, v))
		return def
	}
	return sim.Duration(d.Nanoseconds())
}

// unused reports the first (alphabetically) key the clause handler never
// consumed.
func (a *argSet) unused() error {
	for _, k := range slices.Sorted(maps.Keys(a.vals)) {
		if !a.used[k] {
			return fmt.Errorf("unknown argument %q", k)
		}
	}
	return nil
}
