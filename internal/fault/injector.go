package fault

import (
	"math"

	"mklite/internal/sim"
)

// Injector is one run's live fault state: the plan plus the dedicated RNG
// stream the faults are drawn from. A nil *Injector is the fast path — every
// method is nil-receiver safe and returns "no fault" — so harnesses hold one
// unconditionally and the faults-off run never branches into fault code.
//
// Like a *trace.Sink, an Injector is per-run state: it must be created
// inside the par closure that owns the run and never captured from an
// enclosing scope (the parshare analyzer enforces this). Draws happen in
// simulation order on the run's single goroutine, so the fault sequence is a
// pure function of (plan, seed).
type Injector struct {
	plan *Plan
	rng  *sim.RNG

	// nodeFailOff is set once a degraded run drops its failed node:
	// re-failing the survivors could livelock the retry loop, and a lost
	// node's replacement hardware is assumed healthy for the remainder.
	nodeFailOff bool
}

// NewInjector builds the injector for a plan, seeded from its own
// sim.StreamSeed-derived stream (StreamCluster or StreamNode). An empty or
// nil plan returns nil: no injector, no draws, no cost — the byte-identity
// guarantee for faults-off runs.
func NewInjector(p *Plan, seed uint64) *Injector {
	if p.Empty() {
		return nil
	}
	return &Injector{plan: p, rng: sim.NewRNG(seed)}
}

// Active reports whether any faults will be injected.
func (in *Injector) Active() bool { return in != nil }

// Plan returns the injector's plan (nil for a nil injector).
func (in *Injector) Plan() *Plan {
	if in == nil {
		return nil
	}
	return in.plan
}

// --------------------------------------------------------------------------
// Stragglers

// stragglerDelay is one straggler's excess over the healthy local phase.
func stragglerDelay(s Straggler, local sim.Duration) sim.Duration {
	var d sim.Duration
	if s.Factor > 1 {
		d += local.Scale(s.Factor - 1)
	}
	return d + s.Extra
}

// StragglerExcess returns the step's worst per-node straggler excess: the
// extra time the slowest scheduled straggler needs beyond the healthy local
// phase `local`. Stragglers on the same node add (they are concurrent
// afflictions of one node); across nodes the bulk-synchronous sync absorbs
// only the maximum. Deterministic — no draws.
func (in *Injector) StragglerExcess(step, nodes int, local sim.Duration) sim.Duration {
	if in == nil || len(in.plan.Stragglers) == 0 {
		return 0
	}
	ss := in.plan.Stragglers
	var worst sim.Duration
	for i, s := range ss {
		if !s.activeAt(step, nodes) {
			continue
		}
		// Process each afflicted node once, at its first active entry.
		dup := false
		for j := 0; j < i; j++ {
			if ss[j].Node == s.Node && ss[j].activeAt(step, nodes) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		var total sim.Duration
		for j := i; j < len(ss); j++ {
			if ss[j].Node == s.Node && ss[j].activeAt(step, nodes) {
				total += stragglerDelay(ss[j], local)
			}
		}
		if total > worst {
			worst = total
		}
	}
	return worst
}

// --------------------------------------------------------------------------
// Offload-channel stalls

// OffloadStalls draws how many of `calls` offloaded syscalls stall this
// step (Poisson-approximated binomial — stalls are rare and independent)
// and returns the total timeout cost: each stall hangs for the plan's Stall
// before the re-issue succeeds. The analytic harness charges one re-issue
// per stall; re-stalling a re-issue is a StallProb² effect the discrete
// model covers.
func (in *Injector) OffloadStalls(calls int) (int, sim.Duration) {
	if in == nil {
		return 0, 0
	}
	o := in.plan.Offload
	if o == nil || o.StallProb <= 0 || calls <= 0 {
		return 0, 0
	}
	n := in.rng.Poisson(float64(calls) * o.StallProb)
	if n > calls {
		n = calls
	}
	return n, sim.Duration(n) * o.Stall
}

// OffloadStall draws one offloaded call's fate for the discrete-event node
// model: whether this issue stalls, and the timeout paid before re-issue.
func (in *Injector) OffloadStall() (sim.Duration, bool) {
	if in == nil {
		return 0, false
	}
	o := in.plan.Offload
	if o == nil || o.StallProb <= 0 {
		return 0, false
	}
	if !in.rng.Bool(o.StallProb) {
		return 0, false
	}
	return o.Stall, true
}

// OffloadRetries returns the per-call re-issue bound (0 when offload faults
// are off).
func (in *Injector) OffloadRetries() int {
	if in == nil || in.plan.Offload == nil {
		return 0
	}
	return in.plan.Offload.retries()
}

// --------------------------------------------------------------------------
// Link degradation

// LinkRetransmits draws how many of `msgs` fabric messages are lost this
// step and returns the total recovery delay: each loss waits out the
// retransmit timer and then pays `resend` (the wire time of the resent
// payload, from mpi.Comm.Retransmit) again.
func (in *Injector) LinkRetransmits(msgs float64, resend sim.Duration) (int, sim.Duration) {
	if in == nil {
		return 0, 0
	}
	l := in.plan.Link
	if l == nil || l.LossProb <= 0 || msgs <= 0 {
		return 0, 0
	}
	n := in.rng.Poisson(msgs * l.LossProb)
	if cap := int(msgs + 0.5); n > cap {
		n = cap
	}
	return n, sim.Duration(n) * (l.Timeout + resend)
}

// LinkBytes returns the retransmitted payload size (0 when link faults are
// off).
func (in *Injector) LinkBytes() int64 {
	if in == nil || in.plan.Link == nil {
		return 0
	}
	return in.plan.Link.bytes()
}

// --------------------------------------------------------------------------
// Transient node failures

// NodeFailure draws whether this attempt suffers a transient node failure,
// and if so which node dies at which step. The first FailFirst attempts
// fail deterministically (node and step rotate with the attempt) — the
// reproducible form the golden retry tests pin; beyond that each node fails
// independently with the plan's probability.
func (in *Injector) NodeFailure(attempt, nodes, steps int) (node, step int, failed bool) {
	if in == nil || in.nodeFailOff {
		return 0, 0, false
	}
	nf := in.plan.NodeFail
	if nf == nil || nodes <= 0 || steps <= 0 {
		return 0, 0, false
	}
	if attempt < nf.FailFirst {
		return attempt % nodes, steps / 2, true
	}
	if nf.Prob <= 0 {
		return 0, 0, false
	}
	// P(any of `nodes` independent nodes fails this attempt).
	pJob := 1 - math.Pow(1-nf.Prob, float64(nodes))
	if !in.rng.Bool(pJob) {
		return 0, 0, false
	}
	return in.rng.Intn(nodes), in.rng.Intn(steps), true
}

// DisableNodeFailures turns off further node-failure draws — called when a
// degraded run drops its failed node, so the surviving partition is
// guaranteed to terminate.
func (in *Injector) DisableNodeFailures() {
	if in != nil {
		in.nodeFailOff = true
	}
}

// MaxRetries returns the job-level re-execution bound (0 when node
// failures are off).
func (in *Injector) MaxRetries() int {
	if in == nil {
		return 0
	}
	return in.plan.MaxRetries()
}

// Backoff returns the virtual-time backoff before retry k.
func (in *Injector) Backoff(k int) sim.Duration {
	if in == nil {
		return 0
	}
	return in.plan.Retry.Backoff(k)
}

// AllowDegraded reports whether the plan permits completing on the
// surviving nodes after retries are exhausted.
func (in *Injector) AllowDegraded() bool {
	return in != nil && in.plan.AllowDegraded
}

// --------------------------------------------------------------------------
// Daemon storm

// Storm returns the plan's daemon storm (nil when off).
func (in *Injector) Storm() *DaemonStorm {
	if in == nil {
		return nil
	}
	return in.plan.Storm
}

// StormDuty returns the storm's duty cycle: the fraction of time a burst is
// in progress.
func (in *Injector) StormDuty() float64 {
	s := in.Storm()
	if s == nil || s.Period <= 0 || s.Burst <= 0 {
		return 0
	}
	return float64(s.Burst) / float64(s.Period+s.Burst)
}

// StormOffloadScale returns the LWK-side offload inflation under the storm:
// offloaded syscalls serviced by the busy Linux cores stretch by
// OffloadFactor for the storm's duty fraction of the time, averaging to
// 1 + duty*(factor-1). Returns 1 when the storm is off or harmless.
func (in *Injector) StormOffloadScale() float64 {
	s := in.Storm()
	if s == nil || s.OffloadFactor <= 1 {
		return 1
	}
	return 1 + in.StormDuty()*(s.OffloadFactor-1)
}
