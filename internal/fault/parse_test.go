package fault

import (
	"strings"
	"testing"

	"mklite/internal/sim"
)

// The clause grammar is shared surface: mkrun/mkexperiments -faults and
// mkfleet -interference all go through ParsePlan, so its error paths are the
// user's first line of defence against a silently-wrong fault plan. This
// file pins them exhaustively: malformed clause syntax, out-of-domain
// values (negative probabilities, durations, counts), unknown keys and
// kinds, and duplicate clauses.

func TestParsePlanMalformedClauses(t *testing.T) {
	cases := []struct{ spec, want string }{
		{"offload:prob", "not key=value"},
		{"link:loss 0.1", "not key=value"},
		{":", `unknown fault kind ""`},
		{"straggler factor=2", "unknown fault kind"},
		{"storm:period==1ms", "bad duration"}, // value "=1ms"
	}
	for _, c := range cases {
		if _, err := ParsePlan(c.spec); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("spec %q: error %v, want %q", c.spec, err, c.want)
		}
	}
}

func TestParsePlanNegativeAndOutOfDomain(t *testing.T) {
	cases := []struct{ spec, want string }{
		// Probabilities outside their domain, both signs.
		{"offload:prob=-0.1", "outside [0, 1]"},
		{"offload:prob=1.01", "outside [0, 1]"},
		{"nodefail:prob=-1", "outside [0, 1]"},
		{"nodefail:prob=1.5", "outside [0, 1]"},
		{"link:loss=-0.5", "outside [0, 1)"},
		{"link:loss=1", "outside [0, 1)"}, // loss=1 would retransmit forever
		// Negative durations and counts.
		{"offload:prob=0.1,stall=-5ms", "negative offload stall"},
		{"offload:prob=0.1,retries=-1", "negative offload retry bound"},
		{"link:loss=0.1,timeout=-1ms", "negative link retransmit timeout"},
		{"link:loss=0.1,bytes=-5", "negative link retransmit payload"},
		{"storm:period=-1ms", "negative period or burst"},
		{"storm:burst=-1us", "negative period or burst"},
		{"storm:cv=-0.5", "negative CV"},
		{"storm:offload=-2", "negative offload factor"},
		{"retry:max=-1", "negative retry bound"},
		{"nodefail:failfirst=-2", "negative node FailFirst"},
		// Straggler domain: factor 0 means unset, else >= 1.
		{"straggler:factor=0.5", "must be 0 (unset) or >= 1"},
		{"straggler:factor=-2", "must be 0 (unset) or >= 1"},
		{"straggler:node=-1,factor=2", "negative node"},
		{"straggler:extra=-5ms", "negative extra detour"},
		{"straggler:factor=2,start=-3", "negative start step"},
	}
	for _, c := range cases {
		if _, err := ParsePlan(c.spec); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("spec %q: error %v, want %q", c.spec, err, c.want)
		}
	}
}

func TestParsePlanUnknownKeysAndKinds(t *testing.T) {
	cases := []struct{ spec, want string }{
		{"offload:prob=0.1,frequency=2", `unknown argument "frequency"`},
		{"link:loss=0.1,mtu=9000", `unknown argument "mtu"`},
		{"retry:max=1,jitter=2", `unknown argument "jitter"`},
		{"degraded:foo=1", `unknown argument "foo"`},
		{"straggler:factor=2,nodes=3", `unknown argument "nodes"`}, // singular "node"
		{"stragler:factor=2", "unknown fault kind"},
		{"interference:prob=0.1", "unknown fault kind"},
	}
	for _, c := range cases {
		if _, err := ParsePlan(c.spec); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("spec %q: error %v, want %q", c.spec, err, c.want)
		}
	}
}

func TestParsePlanDuplicatesAndBadScalars(t *testing.T) {
	cases := []struct{ spec, want string }{
		{"link:loss=0.1;link:loss=0.2", "duplicate link"},
		{"storm:period=1ms;storm:burst=2ms", "duplicate storm"},
		{"nodefail:prob=0.1;nodefail:prob=0.1", "duplicate nodefail"},
		{"nodefail:prob=maybe", "bad number"},
		{"storm:period=fast", "bad duration"},
		{"link:loss=0.1,bytes=4k", "bad integer"},
		{"offload:prob=0.1,retries=two", "bad integer"},
	}
	for _, c := range cases {
		if _, err := ParsePlan(c.spec); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("spec %q: error %v, want %q", c.spec, err, c.want)
		}
	}
}

// TestParsePlanAccumulatesStragglers: straggler clauses accumulate while
// every other kind is single-occurrence; whitespace and empty clauses are
// tolerated.
func TestParsePlanAccumulatesStragglers(t *testing.T) {
	p, err := ParsePlan(" straggler:factor=2 ;; straggler:node=1,extra=1ms ; ")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Stragglers) != 2 {
		t.Fatalf("got %d stragglers, want 2", len(p.Stragglers))
	}
	if p.Stragglers[0].Factor != 2 || p.Stragglers[1].Extra != sim.Millisecond {
		t.Fatalf("stragglers %+v", p.Stragglers)
	}
}
