package trace

import (
	"encoding/json"
	"fmt"
	"maps"
	"math"
	"slices"
)

// rawEvent mirrors the JSON shape for validation.
type rawEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"`
	Pid  int64   `json:"pid"`
	Tid  int64   `json:"tid"`
}

// ParseEvents parses a Chrome trace-event export produced by Events.JSON
// back into Event records — timestamps converted from the format's
// microsecond floats back to virtual nanoseconds — plus the ring's
// dropped-event count. It checks the schema but not span balance; run
// Validate first when that matters (the flame exporter does).
func ParseEvents(data []byte) ([]Event, int64, error) {
	var tr rawTrace
	if err := json.Unmarshal(data, &tr); err != nil {
		return nil, 0, fmt.Errorf("trace: invalid JSON: %w", err)
	}
	if tr.OtherData.Schema != EventsSchema {
		return nil, 0, fmt.Errorf("trace: schema %q, want %q", tr.OtherData.Schema, EventsSchema)
	}
	out := make([]Event, 0, len(tr.TraceEvents))
	for i, ev := range tr.TraceEvents {
		if len(ev.Ph) != 1 {
			return nil, 0, fmt.Errorf("trace: event %d: phase %q", i, ev.Ph)
		}
		out = append(out, Event{
			Name: ev.Name,
			Cat:  ev.Cat,
			Ph:   ev.Ph[0],
			TS:   int64(math.Round(ev.TS * 1000)),
			Pid:  int32(ev.Pid),
			Tid:  int32(ev.Tid),
		})
	}
	return out, tr.OtherData.Dropped, nil
}

type rawTrace struct {
	TraceEvents []rawEvent `json:"traceEvents"`
	OtherData   struct {
		Schema  string `json:"schema"`
		Dropped int64  `json:"dropped"`
	} `json:"otherData"`
}

// Validate checks that data is a well-formed Chrome trace-event JSON dump as
// this package emits it: parseable, known phases, per-(pid,tid) monotone
// timestamps, and balanced B/E spans with matching names. When the ring
// dropped events the balance check is skipped (eviction can orphan spans)
// but monotonicity still must hold. CI's trace-smoke step runs this on the
// mktrace artifact.
func Validate(data []byte) error {
	var tr rawTrace
	if err := json.Unmarshal(data, &tr); err != nil {
		return fmt.Errorf("trace: invalid JSON: %w", err)
	}
	if tr.OtherData.Schema != EventsSchema {
		return fmt.Errorf("trace: schema %q, want %q", tr.OtherData.Schema, EventsSchema)
	}
	type lane struct{ pid, tid int64 }
	lastTS := map[lane]float64{}
	stacks := map[lane][]string{}
	for i, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "B", "E", "i", "C":
		default:
			return fmt.Errorf("trace: event %d: unknown phase %q", i, ev.Ph)
		}
		if ev.Name == "" {
			return fmt.Errorf("trace: event %d: empty name", i)
		}
		l := lane{ev.Pid, ev.Tid}
		if prev, ok := lastTS[l]; ok && ev.TS < prev {
			return fmt.Errorf("trace: event %d (%s): non-monotonic ts %.3f after %.3f on pid %d tid %d",
				i, ev.Name, ev.TS, prev, ev.Pid, ev.Tid)
		}
		lastTS[l] = ev.TS
		if tr.OtherData.Dropped > 0 {
			continue // eviction can orphan B/E pairs
		}
		switch ev.Ph {
		case "B":
			stacks[l] = append(stacks[l], ev.Name)
		case "E":
			st := stacks[l]
			if len(st) == 0 {
				return fmt.Errorf("trace: event %d: E %q with no open span on pid %d tid %d",
					i, ev.Name, ev.Pid, ev.Tid)
			}
			if top := st[len(st)-1]; top != ev.Name {
				return fmt.Errorf("trace: event %d: E %q closes open span %q on pid %d tid %d",
					i, ev.Name, top, ev.Pid, ev.Tid)
			}
			stacks[l] = st[:len(st)-1]
		}
	}
	if tr.OtherData.Dropped == 0 {
		lanes := slices.SortedFunc(maps.Keys(stacks), func(a, b lane) int {
			if a.pid != b.pid {
				return int(a.pid - b.pid)
			}
			return int(a.tid - b.tid)
		})
		for _, l := range lanes {
			if st := stacks[l]; len(st) > 0 {
				return fmt.Errorf("trace: %d unclosed span(s) on pid %d tid %d (first: %q)",
					len(st), l.pid, l.tid, st[0])
			}
		}
	}
	return nil
}
