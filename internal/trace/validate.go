package trace

import (
	"encoding/json"
	"fmt"
	"maps"
	"slices"
)

// rawEvent mirrors the JSON shape for validation.
type rawEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"`
	Pid  int64   `json:"pid"`
	Tid  int64   `json:"tid"`
}

type rawTrace struct {
	TraceEvents []rawEvent `json:"traceEvents"`
	OtherData   struct {
		Schema  string `json:"schema"`
		Dropped int64  `json:"dropped"`
	} `json:"otherData"`
}

// Validate checks that data is a well-formed Chrome trace-event JSON dump as
// this package emits it: parseable, known phases, per-(pid,tid) monotone
// timestamps, and balanced B/E spans with matching names. When the ring
// dropped events the balance check is skipped (eviction can orphan spans)
// but monotonicity still must hold. CI's trace-smoke step runs this on the
// mktrace artifact.
func Validate(data []byte) error {
	var tr rawTrace
	if err := json.Unmarshal(data, &tr); err != nil {
		return fmt.Errorf("trace: invalid JSON: %w", err)
	}
	if tr.OtherData.Schema != EventsSchema {
		return fmt.Errorf("trace: schema %q, want %q", tr.OtherData.Schema, EventsSchema)
	}
	type lane struct{ pid, tid int64 }
	lastTS := map[lane]float64{}
	stacks := map[lane][]string{}
	for i, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "B", "E", "i", "C":
		default:
			return fmt.Errorf("trace: event %d: unknown phase %q", i, ev.Ph)
		}
		if ev.Name == "" {
			return fmt.Errorf("trace: event %d: empty name", i)
		}
		l := lane{ev.Pid, ev.Tid}
		if prev, ok := lastTS[l]; ok && ev.TS < prev {
			return fmt.Errorf("trace: event %d (%s): non-monotonic ts %.3f after %.3f on pid %d tid %d",
				i, ev.Name, ev.TS, prev, ev.Pid, ev.Tid)
		}
		lastTS[l] = ev.TS
		if tr.OtherData.Dropped > 0 {
			continue // eviction can orphan B/E pairs
		}
		switch ev.Ph {
		case "B":
			stacks[l] = append(stacks[l], ev.Name)
		case "E":
			st := stacks[l]
			if len(st) == 0 {
				return fmt.Errorf("trace: event %d: E %q with no open span on pid %d tid %d",
					i, ev.Name, ev.Pid, ev.Tid)
			}
			if top := st[len(st)-1]; top != ev.Name {
				return fmt.Errorf("trace: event %d: E %q closes open span %q on pid %d tid %d",
					i, ev.Name, top, ev.Pid, ev.Tid)
			}
			stacks[l] = st[:len(st)-1]
		}
	}
	if tr.OtherData.Dropped == 0 {
		lanes := slices.SortedFunc(maps.Keys(stacks), func(a, b lane) int {
			if a.pid != b.pid {
				return int(a.pid - b.pid)
			}
			return int(a.tid - b.tid)
		})
		for _, l := range lanes {
			if st := stacks[l]; len(st) > 0 {
				return fmt.Errorf("trace: %d unclosed span(s) on pid %d tid %d (first: %q)",
					len(st), l.pid, l.tid, st[0])
			}
		}
	}
	return nil
}
