package trace

import "testing"

// BenchmarkSinkDisabled pins the tracing-off fast path at the emission
// site: a Count on a nil *Sink must reduce to a nil test and return —
// single-digit nanoseconds, which is what makes always-on instrumentation
// of the hot loops affordable (<=2% on the Figure 4 smoke).
func BenchmarkSinkDisabled(b *testing.B) {
	var s *Sink
	for i := 0; i < b.N; i++ {
		s.Count("heap.queries", 1)
		s.CounterEvent(int64(i), 0, "offload.queue_depth", 1)
	}
}

// BenchmarkSinkCounting is the paid-when-asked cost: one map update per
// Count with the aggregating backend attached.
func BenchmarkSinkCounting(b *testing.B) {
	s := NewSink(NewCounters(), nil)
	for i := 0; i < b.N; i++ {
		s.Count("heap.queries", 1)
	}
}

// BenchmarkSinkEventing measures ring emission with the bounded Events
// backend attached (steady state: the ring is full and evicting).
func BenchmarkSinkEventing(b *testing.B) {
	s := NewSink(nil, NewEvents(1024))
	for i := 0; i < b.N; i++ {
		s.CounterEvent(int64(i), 0, "offload.queue_depth", int64(i&7))
	}
}

// BenchmarkSinkCountingKeyed is the interned fast path: one array index per
// CountKey. The gap between this and BenchmarkSinkCounting is what the key
// interning buys at every hot emission site (BENCH_PR4.json's counters
// budget rides on it).
func BenchmarkSinkCountingKeyed(b *testing.B) {
	s := NewSink(NewCounters(), nil)
	for i := 0; i < b.N; i++ {
		s.CountKey(KeyHeapQueries, 1)
	}
}
