package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestNilSinkIsSafeAndOff(t *testing.T) {
	var s *Sink
	s.Count("x", 1)
	s.CountMax("x", 5)
	s.Begin(0, 0, 0, "a", "b")
	s.End(1, 0, 0, "a", "b")
	s.Instant(2, 0, 0, "a", "b", nil)
	s.CounterEvent(3, 0, "a", 1)
	if s.Counting() || s.Eventing() {
		t.Fatal("nil sink claims to be on")
	}
	if s.Counters() != nil || s.Events() != nil {
		t.Fatal("nil sink exposes backends")
	}
	if NewSink(nil, nil) != nil {
		t.Fatal("NewSink(nil, nil) must be nil so off stays on the fast path")
	}
}

func TestCountersAddMaxMerge(t *testing.T) {
	a := NewCounters()
	a.Add("heap.grows", 2)
	a.Add("heap.grows", 3)
	a.Max("heap.peak_bytes", 100)
	a.Max("heap.peak_bytes", 50) // lower: no-op
	b := NewCounters()
	b.Add("heap.grows", 10)
	b.Add("heap.shrinks", 1)
	a.Merge(b)
	if got := a.Get("heap.grows"); got != 15 {
		t.Fatalf("heap.grows = %d, want 15", got)
	}
	if got := a.Get("heap.peak_bytes"); got != 100 {
		t.Fatalf("heap.peak_bytes = %d, want 100", got)
	}
	if got := a.Names(); len(got) != 3 || got[0] != "heap.grows" || got[2] != "heap.shrinks" {
		t.Fatalf("Names() = %v, want sorted 3 keys", got)
	}
}

func TestCountersRoundTripAndDiff(t *testing.T) {
	c := NewCounters()
	c.Add("syscall.brk", 7526)
	c.Add("mem.fault.4KiB", 12)
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := ReadCounters(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if m["syscall.brk"] != 7526 || m["mem.fault.4KiB"] != 12 {
		t.Fatalf("round trip lost values: %v", m)
	}
	if _, err := ReadCounters([]byte(`{"schema":"bogus","counters":{}}`)); err == nil {
		t.Fatal("wrong schema accepted")
	}
	rows := DiffCounters(map[string]int64{"a": 1, "b": 2}, map[string]int64{"b": 5, "c": 3})
	if len(rows) != 3 || rows[0].Name != "a" || rows[0].Delta() != -1 ||
		rows[1].Name != "b" || rows[1].Delta() != 3 || rows[2].Name != "c" || rows[2].Delta() != 3 {
		t.Fatalf("DiffCounters = %+v", rows)
	}
}

func TestEventsRingEviction(t *testing.T) {
	e := NewEvents(3)
	for i := 0; i < 5; i++ {
		e.Emit(Event{Name: "n", Cat: "c", Ph: PhInstant, TS: int64(i)})
	}
	if e.Len() != 3 || e.Dropped() != 2 {
		t.Fatalf("len=%d dropped=%d, want 3/2", e.Len(), e.Dropped())
	}
	snap := e.Snapshot()
	if snap[0].TS != 2 || snap[2].TS != 4 {
		t.Fatalf("snapshot order wrong: %+v", snap)
	}
}

func TestJSONExportAndValidate(t *testing.T) {
	e := NewEvents(0)
	s := NewSink(nil, e)
	s.Begin(1000, 0, 0, "step", "cluster")
	s.Begin(1000, 0, 0, "compute", "cluster")
	s.End(2500, 0, 0, "compute", "cluster")
	s.Instant(2500, 0, 0, "collective", "mpi", map[string]int64{"max_rank": 3, "detour_ns": 120})
	s.CounterEvent(3000, 0, "offload.queue_depth", 2)
	s.End(3000, 0, 0, "step", "cluster")
	out := e.JSON()
	if err := Validate(out); err != nil {
		t.Fatalf("Validate: %v\n%s", err, out)
	}
	txt := string(out)
	for _, want := range []string{`"ts":1.000`, `"ts":2.500`, `"displayTimeUnit":"ns"`,
		`"args":{"detour_ns":120,"max_rank":3}`, `"schema":"mklite-trace/v1"`} {
		if !strings.Contains(txt, want) {
			t.Fatalf("JSON missing %q:\n%s", want, txt)
		}
	}
	series := e.CounterSeries("offload.queue_depth")
	if len(series) != 1 || series[0].TS != 3000 || series[0].Value != 2 {
		t.Fatalf("CounterSeries = %+v", series)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad json":      `{`,
		"bad schema":    `{"traceEvents":[],"otherData":{"schema":"x","dropped":0}}`,
		"bad phase":     `{"traceEvents":[{"name":"a","ph":"X","ts":0,"pid":0,"tid":0}],"otherData":{"schema":"mklite-trace/v1","dropped":0}}`,
		"non-monotone":  `{"traceEvents":[{"name":"a","ph":"i","ts":5,"pid":0,"tid":0},{"name":"b","ph":"i","ts":1,"pid":0,"tid":0}],"otherData":{"schema":"mklite-trace/v1","dropped":0}}`,
		"orphan E":      `{"traceEvents":[{"name":"a","ph":"E","ts":0,"pid":0,"tid":0}],"otherData":{"schema":"mklite-trace/v1","dropped":0}}`,
		"unclosed B":    `{"traceEvents":[{"name":"a","ph":"B","ts":0,"pid":0,"tid":0}],"otherData":{"schema":"mklite-trace/v1","dropped":0}}`,
		"mismatched BE": `{"traceEvents":[{"name":"a","ph":"B","ts":0,"pid":0,"tid":0},{"name":"b","ph":"E","ts":1,"pid":0,"tid":0}],"otherData":{"schema":"mklite-trace/v1","dropped":0}}`,
	}
	for name, data := range cases {
		if err := Validate([]byte(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// With drops, unbalanced spans are tolerated but monotonicity still holds.
	dropped := `{"traceEvents":[{"name":"a","ph":"E","ts":0,"pid":0,"tid":0}],"otherData":{"schema":"mklite-trace/v1","dropped":4}}`
	if err := Validate([]byte(dropped)); err != nil {
		t.Errorf("dropped trace rejected: %v", err)
	}
}
