package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"maps"
	"slices"
	"strings"
)

// CountersSchema versions the counter file format and the key namespace.
// Bump when a key is renamed or its meaning changes; mktrace -diff refuses
// to compare files with different schemas.
const CountersSchema = "mklite-counters/v1"

// Counters is the aggregating backend: monotonic mechanism counts keyed by
// dotted names ("heap.grows", "syscall.brk", "mem.fault.4KiB",
// "offload.rtt_ns"). Exports are always sorted by key so counter output is
// byte-stable. Not safe for concurrent use: one Counters per run, merged
// after the par fan-out joins.
//
// Storage is two-tier: the interned hot names (trace.Key) live in a dense
// slice indexed directly — no hashing on the emission path — while dynamic
// names fall back to a map. Add routes a string that names a Key to the
// dense slot, so the two APIs can never split one counter in two; the
// touched bitmap preserves the map semantics that an Add-ed counter exists
// (and exports) even at value zero.
type Counters struct {
	m       map[string]int64
	keys    [numKeys]int64
	touched [numKeys]bool
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{m: map[string]int64{}}
}

// AddKey accumulates delta into an interned counter: one array index, no
// string hashing. The hot emission sites (heap engine, fault path, step
// loop) use this form.
func (c *Counters) AddKey(k Key, delta int64) {
	c.keys[k] += delta
	c.touched[k] = true
}

// MaxKey raises an interned counter to v if v exceeds the current value.
func (c *Counters) MaxKey(k Key, v int64) {
	if v > c.keys[k] {
		c.keys[k] = v
		c.touched[k] = true
	}
}

// Add accumulates delta into the named counter.
func (c *Counters) Add(name string, delta int64) {
	if k, ok := keyByName[name]; ok {
		c.AddKey(k, delta)
		return
	}
	c.m[name] += delta
}

// Max raises the named counter to v if v exceeds the current value. Used for
// peak-style counters ("heap.peak_bytes") that are maxima, not sums.
func (c *Counters) Max(name string, v int64) {
	if k, ok := keyByName[name]; ok {
		c.MaxKey(k, v)
		return
	}
	if v > c.m[name] {
		c.m[name] = v
	}
}

// Get returns the named counter (0 when absent).
func (c *Counters) Get(name string) int64 {
	if k, ok := keyByName[name]; ok {
		return c.keys[k]
	}
	return c.m[name]
}

// GetKey returns an interned counter's value.
func (c *Counters) GetKey(k Key) int64 { return c.keys[k] }

// Len returns the number of distinct counters.
func (c *Counters) Len() int {
	n := len(c.m)
	for _, t := range c.touched {
		if t {
			n++
		}
	}
	return n
}

// Names returns the counter names sorted.
func (c *Counters) Names() []string {
	names := make([]string, 0, c.Len())
	for k, t := range c.touched {
		if t {
			names = append(names, keyNames[k])
		}
	}
	names = append(names, slices.Sorted(maps.Keys(c.m))...)
	slices.Sort(names)
	return names
}

// Each calls fn for every counter without building an intermediate map:
// the dense tier in interning order, then the dynamic tier sorted by name.
// The order is deterministic, so Each is safe to fold into keyed artifacts
// (the fleet scheduler's job/<id>/<name> counter view builds this way —
// per-job Map copies were measurable at facility scale).
func (c *Counters) Each(fn func(name string, v int64)) {
	for k, t := range c.touched {
		if t {
			fn(keyNames[k], c.keys[k])
		}
	}
	for _, k := range slices.Sorted(maps.Keys(c.m)) {
		fn(k, c.m[k])
	}
}

// Map returns a copy of the counters (dense and dynamic tiers united).
func (c *Counters) Map() map[string]int64 {
	if c.Len() == 0 {
		return nil
	}
	out := make(map[string]int64, c.Len())
	maps.Copy(out, c.m)
	for k, t := range c.touched {
		if t {
			out[keyNames[k]] = c.keys[k]
		}
	}
	return out
}

// Merge adds every counter of o into c. Merging is commutative for Add-style
// counters; callers that mix in Max-style counters should merge in a fixed
// (index) order anyway, which par's ordered results provide for free.
func (c *Counters) Merge(o *Counters) {
	if o == nil {
		return
	}
	for k, t := range o.touched {
		if t {
			c.keys[k] += o.keys[k]
			c.touched[k] = true
		}
	}
	for _, k := range slices.Sorted(maps.Keys(o.m)) {
		c.m[k] += o.m[k]
	}
}

// MergeMap adds a plain counter map (e.g. a facade Result.Counters) into c.
func (c *Counters) MergeMap(m map[string]int64) {
	for _, k := range slices.Sorted(maps.Keys(m)) {
		c.Add(k, m[k])
	}
}

// counterFile is the on-disk shape of a counter dump.
type counterFile struct {
	Schema   string           `json:"schema"`
	Counters map[string]int64 `json:"counters"`
}

// WriteJSON writes the schema-versioned counter dump. encoding/json sorts
// map keys, so the bytes are deterministic.
func (c *Counters) WriteJSON(w io.Writer) error {
	m := c.Map()
	if m == nil {
		m = map[string]int64{} // keep `"counters": {}` for an empty set
	}
	out, err := json.MarshalIndent(counterFile{Schema: CountersSchema, Counters: m}, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	_, err = w.Write(out)
	return err
}

// ReadCounters parses a dump produced by WriteJSON, checking the schema.
func ReadCounters(data []byte) (map[string]int64, error) {
	var f counterFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("trace: parsing counter file: %w", err)
	}
	if f.Schema != CountersSchema {
		return nil, fmt.Errorf("trace: counter schema %q, want %q", f.Schema, CountersSchema)
	}
	return f.Counters, nil
}

// CounterDiff is one row of a counter comparison.
type CounterDiff struct {
	Name     string
	Old, New int64
}

// Delta returns New - Old.
func (d CounterDiff) Delta() int64 { return d.New - d.Old }

// DiffCounters returns the rows whose values differ between old and new,
// sorted by name. Keys present on only one side diff against zero.
func DiffCounters(oldC, newC map[string]int64) []CounterDiff {
	keys := map[string]struct{}{}
	for _, k := range slices.Sorted(maps.Keys(oldC)) {
		keys[k] = struct{}{}
	}
	for _, k := range slices.Sorted(maps.Keys(newC)) {
		keys[k] = struct{}{}
	}
	var rows []CounterDiff
	for _, k := range slices.Sorted(maps.Keys(keys)) {
		if oldC[k] != newC[k] {
			rows = append(rows, CounterDiff{Name: k, Old: oldC[k], New: newC[k]})
		}
	}
	return rows
}

// FormatCounters renders a counter map as aligned "name value" lines sorted
// by name — the human-readable summary mktrace and the -counters flags
// print.
func FormatCounters(m map[string]int64) string {
	var b strings.Builder
	width := 0
	names := slices.Sorted(maps.Keys(m))
	for _, k := range names {
		if len(k) > width {
			width = len(k)
		}
	}
	for _, k := range names {
		fmt.Fprintf(&b, "%-*s %d\n", width, k, m[k])
	}
	return b.String()
}
