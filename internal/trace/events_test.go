package trace

import (
	"strings"
	"testing"
)

// TestRingDroppedAccounting: eviction counts are exact across multiple full
// wraparounds, NoteDropped folds external losses in, and the exported JSON
// reports the total.
func TestRingDroppedAccounting(t *testing.T) {
	e := NewEvents(4)
	if e.Cap() != 4 {
		t.Fatalf("Cap() = %d, want 4", e.Cap())
	}
	for i := range 4 {
		e.Emit(Event{Name: "n", Cat: "c", Ph: PhInstant, TS: int64(i)})
	}
	if e.Dropped() != 0 {
		t.Fatalf("Dropped() = %d before the ring filled", e.Dropped())
	}
	// 2.5 more laps: 10 evictions.
	for i := 4; i < 14; i++ {
		e.Emit(Event{Name: "n", Cat: "c", Ph: PhInstant, TS: int64(i)})
	}
	if e.Len() != 4 || e.Dropped() != 10 {
		t.Fatalf("len=%d dropped=%d, want 4/10", e.Len(), e.Dropped())
	}
	e.NoteDropped(3)
	e.NoteDropped(0)
	e.NoteDropped(-5) // negative folds are ignored, never uncount
	if e.Dropped() != 13 {
		t.Fatalf("Dropped() = %d after NoteDropped, want 13", e.Dropped())
	}
	if out := string(e.JSON()); !strings.Contains(out, `"dropped":13`) {
		t.Fatalf("JSON does not report the eviction count:\n%s", out)
	}
}

// TestSnapshotOrderAfterWraparound: Snapshot returns emission order however
// far the start index has rotated, including the exact-boundary lap.
func TestSnapshotOrderAfterWraparound(t *testing.T) {
	for emitted := 3; emitted <= 13; emitted++ {
		e := NewEvents(5)
		for i := range emitted {
			e.Emit(Event{Name: "n", Cat: "c", Ph: PhInstant, TS: int64(i)})
		}
		snap := e.Snapshot()
		want := min(emitted, 5)
		if len(snap) != want {
			t.Fatalf("emitted %d: snapshot has %d events, want %d", emitted, len(snap), want)
		}
		first := int64(max(emitted-5, 0))
		for i, ev := range snap {
			if ev.TS != first+int64(i) {
				t.Fatalf("emitted %d: snapshot[%d].TS = %d, want %d (oldest-first emission order)",
					emitted, i, ev.TS, first+int64(i))
			}
		}
	}
}

// TestCounterSeriesOnWrappedRing: a series extracted from a wrapped ring
// keeps emission order and contains exactly the retained samples — the
// oldest points fall off with the eviction, the survivors stay monotone.
func TestCounterSeriesOnWrappedRing(t *testing.T) {
	e := NewEvents(6)
	// Interleave two series plus noise so the retained window holds a mix.
	for i := range 12 {
		e.Emit(Event{Name: "queue-depth", Cat: "counter", Ph: PhCounter,
			TS: int64(i * 10), Args: map[string]int64{"value": int64(i)}})
		e.Emit(Event{Name: "noise", Cat: "c", Ph: PhInstant, TS: int64(i*10 + 1)})
	}
	if e.Dropped() != 18 {
		t.Fatalf("dropped = %d, want 18", e.Dropped())
	}
	series := e.CounterSeries("queue-depth")
	// 6 retained events alternate queue-depth / noise: 3 samples, the newest
	// ones (i = 9, 10, 11).
	if len(series) != 3 {
		t.Fatalf("series has %d samples, want 3: %+v", len(series), series)
	}
	for i, s := range series {
		wantV := int64(9 + i)
		if s.Value != wantV || s.TS != wantV*10 {
			t.Fatalf("series[%d] = %+v, want value %d at ts %d", i, s, wantV, wantV*10)
		}
		if i > 0 && s.TS <= series[i-1].TS {
			t.Fatalf("series not monotone after wraparound: %+v", series)
		}
	}
	if got := e.CounterSeries("evicted-entirely"); got != nil {
		t.Fatalf("unknown series = %+v, want nil", got)
	}
}

// TestRescoped: the job-scoping primitive re-homes pid and shifts time
// uniformly, preserves tids and args, and leaves the input untouched.
func TestRescoped(t *testing.T) {
	in := []Event{
		{Name: "step", Cat: "phase", Ph: PhBegin, TS: 0, Pid: 0, Tid: 1},
		{Name: "step", Cat: "phase", Ph: PhEnd, TS: 40, Pid: 0, Tid: 1,
			Args: map[string]int64{"k": 7}},
	}
	out := Rescoped(in, 9, 100)
	if in[0].Pid != 0 || in[1].TS != 40 {
		t.Fatal("Rescoped mutated its input")
	}
	if out[0].Pid != 9 || out[1].Pid != 9 {
		t.Fatalf("pids not re-homed: %+v", out)
	}
	if out[0].TS != 100 || out[1].TS != 140 {
		t.Fatalf("timestamps not shifted: %+v", out)
	}
	if out[0].Tid != 1 || out[1].Args["k"] != 7 {
		t.Fatalf("tid or args lost: %+v", out)
	}
	if got := Rescoped(nil, 1, 1); len(got) != 0 {
		t.Fatalf("Rescoped(nil) = %+v", got)
	}
}

// TestValidateToleratesEvictionOrphans: a wrapped ring whose eviction
// orphaned a B/E pair still validates (the dropped count licenses the
// imbalance) while the same shape with dropped=0 is rejected.
func TestValidateToleratesEvictionOrphans(t *testing.T) {
	e := NewEvents(2)
	e.Emit(Event{Name: "a", Cat: "c", Ph: PhBegin, TS: 0})
	e.Emit(Event{Name: "b", Cat: "c", Ph: PhBegin, TS: 1})
	e.Emit(Event{Name: "b", Cat: "c", Ph: PhEnd, TS: 2})
	e.Emit(Event{Name: "a", Cat: "c", Ph: PhEnd, TS: 3})
	if e.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", e.Dropped())
	}
	// Retained window: E b, E a — orphans, but eviction-licensed.
	if err := Validate(e.JSON()); err != nil {
		t.Fatalf("eviction orphans rejected: %v", err)
	}
	clean := NewEvents(0)
	clean.Emit(Event{Name: "b", Cat: "c", Ph: PhEnd, TS: 2})
	if err := Validate(clean.JSON()); err == nil {
		t.Fatal("orphan E accepted with dropped=0")
	}
}
