// Package trace is the simulator's deterministic observability layer:
// mechanism counters and virtual-time event spans threaded through the whole
// stack (mem, kernel, noise, ihk, cluster, nodesim).
//
// The design contract, in order of importance:
//
//  1. Tracing is passive. A sink never draws from a sim.RNG, never feeds
//     anything back into the model, and never influences control flow.
//     Run digests are byte-identical with tracing off, counters on, or full
//     event tracing on — determinism_test.go enforces this.
//  2. Sinks are per-run state. A *Sink is created next to the run's seed and
//     carried through the run context (cluster.Job.Sink, nodesim.Config.Sink,
//     sim.Engine.SetSink). It is never a package-level variable and never
//     shared across internal/par worker closures — mklint's parshare
//     analyzer rejects both.
//  3. Off is free. The nil *Sink is the off switch: every method is
//     nil-receiver safe and compiles to a branch, so instrumented hot paths
//     cost ≤2% when tracing is disabled (BENCH_PR3.json tracks this on the
//     Figure 4 smoke).
//
// All timestamps are virtual nanoseconds (the same int64 unit as
// sim.Time); the package deliberately does not import sim so that sim can
// carry a sink itself.
package trace

// Observer receives distribution-grade observations — latency samples,
// per-rank samples, phase time, gauges — alongside the flat counters. It is
// how internal/metrics hooks into the emission sites without trace importing
// metrics. Implementations follow the same contract as the sink itself:
// per-run, single-goroutine, purely passive.
type Observer interface {
	// Observe records one sample of the named distribution (values are
	// virtual nanoseconds unless the name says otherwise).
	Observe(name string, v int64)
	// ObserveRank records one sample of the named per-rank distribution.
	ObserveRank(name string, rank int, v int64)
	// AddPhase accumulates d virtual nanoseconds into the named phase.
	AddPhase(name string, d int64)
	// SetGauge sets the named gauge to its latest value.
	SetGauge(name string, v int64)
}

// Sink is one run's tracing destination. All backends are optional: a nil
// *Sink (or a sink with no backend) records nothing. Sinks are not safe
// for concurrent use — one sink per run, created inside the par closure that
// owns the run.
type Sink struct {
	counters *Counters
	events   *Events
	obs      Observer
}

// NewSink bundles the given backends. Either may be nil; if both are nil the
// result is nil so that downstream nil-checks stay on the fast path.
func NewSink(c *Counters, e *Events) *Sink {
	return NewSinkObs(c, e, nil)
}

// NewSinkObs is NewSink with a metrics observer attached as a third backend.
// Pass a concrete non-nil observer or the untyped nil — a typed-nil
// interface would defeat the all-nil fast-path collapse.
func NewSinkObs(c *Counters, e *Events, obs Observer) *Sink {
	if c == nil && e == nil && obs == nil {
		return nil
	}
	return &Sink{counters: c, events: e, obs: obs}
}

// Counting reports whether a counters backend is attached. Hot loops may
// hoist this into a local to skip per-iteration work.
func (s *Sink) Counting() bool { return s != nil && s.counters != nil }

// Eventing reports whether an events backend is attached.
func (s *Sink) Eventing() bool { return s != nil && s.events != nil }

// Counters returns the counters backend (nil when absent).
func (s *Sink) Counters() *Counters {
	if s == nil {
		return nil
	}
	return s.counters
}

// Events returns the events backend (nil when absent).
func (s *Sink) Events() *Events {
	if s == nil {
		return nil
	}
	return s.events
}

// Observing reports whether a metrics observer is attached. Hot loops may
// hoist this into a local to skip per-iteration work.
func (s *Sink) Observing() bool { return s != nil && s.obs != nil }

// Observer returns the attached observer (nil when absent).
func (s *Sink) Observer() Observer {
	if s == nil {
		return nil
	}
	return s.obs
}

// Count adds delta to the named counter.
func (s *Sink) Count(name string, delta int64) {
	if s == nil || s.counters == nil {
		return
	}
	s.counters.Add(name, delta)
}

// CountMax raises the named counter to v if v is larger (peak accounting).
func (s *Sink) CountMax(name string, v int64) {
	if s == nil || s.counters == nil {
		return
	}
	s.counters.Max(name, v)
}

// CountKey adds delta to an interned counter — the hot-path form of Count:
// one pointer test plus one array index, no string hashing.
func (s *Sink) CountKey(k Key, delta int64) {
	if s == nil || s.counters == nil {
		return
	}
	s.counters.AddKey(k, delta)
}

// CountMaxKey raises an interned counter to v if v is larger.
func (s *Sink) CountMaxKey(k Key, v int64) {
	if s == nil || s.counters == nil {
		return
	}
	s.counters.MaxKey(k, v)
}

// Observe forwards one distribution sample to the observer.
func (s *Sink) Observe(name string, v int64) {
	if s == nil || s.obs == nil {
		return
	}
	s.obs.Observe(name, v)
}

// ObserveRank forwards one per-rank distribution sample to the observer.
func (s *Sink) ObserveRank(name string, rank int, v int64) {
	if s == nil || s.obs == nil {
		return
	}
	s.obs.ObserveRank(name, rank, v)
}

// Phase accumulates d virtual nanoseconds of the named phase into the
// observer's per-phase breakdown.
func (s *Sink) Phase(name string, d int64) {
	if s == nil || s.obs == nil {
		return
	}
	s.obs.AddPhase(name, d)
}

// Gauge forwards the named gauge's latest value to the observer.
func (s *Sink) Gauge(name string, v int64) {
	if s == nil || s.obs == nil {
		return
	}
	s.obs.SetGauge(name, v)
}

// Begin opens a duration span at virtual time ts (nanoseconds).
func (s *Sink) Begin(ts int64, pid, tid int32, name, cat string) {
	if s == nil || s.events == nil {
		return
	}
	s.events.Emit(Event{Name: name, Cat: cat, Ph: PhBegin, TS: ts, Pid: pid, Tid: tid})
}

// End closes the most recent open span with the same name on (pid, tid).
func (s *Sink) End(ts int64, pid, tid int32, name, cat string) {
	if s == nil || s.events == nil {
		return
	}
	s.events.Emit(Event{Name: name, Cat: cat, Ph: PhEnd, TS: ts, Pid: pid, Tid: tid})
}

// Instant records a point event with optional integer arguments.
func (s *Sink) Instant(ts int64, pid, tid int32, name, cat string, args map[string]int64) {
	if s == nil || s.events == nil {
		return
	}
	s.events.Emit(Event{Name: name, Cat: cat, Ph: PhInstant, TS: ts, Pid: pid, Tid: tid, Args: args})
}

// CounterEvent records a Chrome 'C' sample: the named series has the given
// value at virtual time ts. Perfetto renders these as a stepped timeline.
func (s *Sink) CounterEvent(ts int64, pid int32, name string, value int64) {
	if s == nil || s.events == nil {
		return
	}
	s.events.Emit(Event{Name: name, Cat: "counter", Ph: PhCounter, TS: ts, Pid: pid,
		Args: map[string]int64{"value": value}})
}
