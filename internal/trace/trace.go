// Package trace is the simulator's deterministic observability layer:
// mechanism counters and virtual-time event spans threaded through the whole
// stack (mem, kernel, noise, ihk, cluster, nodesim).
//
// The design contract, in order of importance:
//
//  1. Tracing is passive. A sink never draws from a sim.RNG, never feeds
//     anything back into the model, and never influences control flow.
//     Run digests are byte-identical with tracing off, counters on, or full
//     event tracing on — determinism_test.go enforces this.
//  2. Sinks are per-run state. A *Sink is created next to the run's seed and
//     carried through the run context (cluster.Job.Sink, nodesim.Config.Sink,
//     sim.Engine.SetSink). It is never a package-level variable and never
//     shared across internal/par worker closures — mklint's parshare
//     analyzer rejects both.
//  3. Off is free. The nil *Sink is the off switch: every method is
//     nil-receiver safe and compiles to a branch, so instrumented hot paths
//     cost ≤2% when tracing is disabled (BENCH_PR3.json tracks this on the
//     Figure 4 smoke).
//
// All timestamps are virtual nanoseconds (the same int64 unit as
// sim.Time); the package deliberately does not import sim so that sim can
// carry a sink itself.
package trace

// Sink is one run's tracing destination. Both backends are optional: a nil
// *Sink (or a sink with neither backend) records nothing. Sinks are not safe
// for concurrent use — one sink per run, created inside the par closure that
// owns the run.
type Sink struct {
	counters *Counters
	events   *Events
}

// NewSink bundles the given backends. Either may be nil; if both are nil the
// result is nil so that downstream nil-checks stay on the fast path.
func NewSink(c *Counters, e *Events) *Sink {
	if c == nil && e == nil {
		return nil
	}
	return &Sink{counters: c, events: e}
}

// Counting reports whether a counters backend is attached. Hot loops may
// hoist this into a local to skip per-iteration work.
func (s *Sink) Counting() bool { return s != nil && s.counters != nil }

// Eventing reports whether an events backend is attached.
func (s *Sink) Eventing() bool { return s != nil && s.events != nil }

// Counters returns the counters backend (nil when absent).
func (s *Sink) Counters() *Counters {
	if s == nil {
		return nil
	}
	return s.counters
}

// Events returns the events backend (nil when absent).
func (s *Sink) Events() *Events {
	if s == nil {
		return nil
	}
	return s.events
}

// Count adds delta to the named counter.
func (s *Sink) Count(name string, delta int64) {
	if s == nil || s.counters == nil {
		return
	}
	s.counters.Add(name, delta)
}

// CountMax raises the named counter to v if v is larger (peak accounting).
func (s *Sink) CountMax(name string, v int64) {
	if s == nil || s.counters == nil {
		return
	}
	s.counters.Max(name, v)
}

// Begin opens a duration span at virtual time ts (nanoseconds).
func (s *Sink) Begin(ts int64, pid, tid int32, name, cat string) {
	if s == nil || s.events == nil {
		return
	}
	s.events.Emit(Event{Name: name, Cat: cat, Ph: PhBegin, TS: ts, Pid: pid, Tid: tid})
}

// End closes the most recent open span with the same name on (pid, tid).
func (s *Sink) End(ts int64, pid, tid int32, name, cat string) {
	if s == nil || s.events == nil {
		return
	}
	s.events.Emit(Event{Name: name, Cat: cat, Ph: PhEnd, TS: ts, Pid: pid, Tid: tid})
}

// Instant records a point event with optional integer arguments.
func (s *Sink) Instant(ts int64, pid, tid int32, name, cat string, args map[string]int64) {
	if s == nil || s.events == nil {
		return
	}
	s.events.Emit(Event{Name: name, Cat: cat, Ph: PhInstant, TS: ts, Pid: pid, Tid: tid, Args: args})
}

// CounterEvent records a Chrome 'C' sample: the named series has the given
// value at virtual time ts. Perfetto renders these as a stepped timeline.
func (s *Sink) CounterEvent(ts int64, pid int32, name string, value int64) {
	if s == nil || s.events == nil {
		return
	}
	s.events.Emit(Event{Name: name, Cat: "counter", Ph: PhCounter, TS: ts, Pid: pid,
		Args: map[string]int64{"value": value}})
}
