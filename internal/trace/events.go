package trace

import (
	"bytes"
	"fmt"
	"maps"
	"slices"
)

// Event phases, a subset of the Chrome trace-event format.
const (
	PhBegin   = 'B' // duration span open
	PhEnd     = 'E' // duration span close
	PhInstant = 'i' // point event
	PhCounter = 'C' // counter sample
)

// EventsSchema versions the exported trace JSON.
const EventsSchema = "mklite-trace/v1"

// DefaultEventCap bounds the ring when the caller does not choose a size.
const DefaultEventCap = 1 << 17

// Event is one trace record. TS is virtual nanoseconds (sim.Time's unit);
// export converts to the microsecond floats Chrome/Perfetto expect.
type Event struct {
	Name string
	Cat  string
	Ph   byte
	TS   int64
	Pid  int32
	Tid  int32
	Args map[string]int64
}

// Events is the bounded-ring backend: it retains the most recent cap events
// and counts what it evicted. Like Sink it is per-run, single-goroutine
// state.
type Events struct {
	cap     int
	buf     []Event
	start   int // index of the oldest retained event
	dropped int64
}

// NewEvents returns a ring holding at most cap events (DefaultEventCap when
// cap <= 0).
func NewEvents(cap int) *Events {
	if cap <= 0 {
		cap = DefaultEventCap
	}
	return &Events{cap: cap}
}

// Emit appends an event, evicting the oldest when full.
func (e *Events) Emit(ev Event) {
	if len(e.buf) < e.cap {
		e.buf = append(e.buf, ev)
		return
	}
	e.buf[e.start] = ev
	e.start = (e.start + 1) % e.cap
	e.dropped++
}

// Len returns the number of retained events.
func (e *Events) Len() int { return len(e.buf) }

// Cap returns the ring's capacity.
func (e *Events) Cap() int { return e.cap }

// Dropped returns the number of evicted events.
func (e *Events) Dropped() int64 { return e.dropped }

// NoteDropped folds n externally-dropped events into the ring's eviction
// count. The facility timeline uses this when merging a job-local ring that
// itself evicted: the merged document must report the loss so Validate knows
// orphaned B/E pairs are eviction damage, not corruption.
func (e *Events) NoteDropped(n int64) {
	if n > 0 {
		e.dropped += n
	}
}

// Snapshot returns the retained events in emission order.
func (e *Events) Snapshot() []Event {
	out := make([]Event, 0, len(e.buf))
	out = append(out, e.buf[e.start:]...)
	out = append(out, e.buf[:e.start]...)
	return out
}

// Rescoped returns a copy of evs re-homed onto another track: every event's
// Pid becomes pid and every timestamp shifts by dt. This is the job-scoping
// primitive of internal/obs: a job's run-local events (pid 0, virtual time
// starting at the job's own zero) become a facility-timeline track keyed by
// the job's pid and the facility clock. Tids are preserved — they are lanes
// within the job (phase spans vs collective instants), and per-lane timestamp
// monotonicity survives a uniform shift.
func Rescoped(evs []Event, pid int32, dt int64) []Event {
	out := make([]Event, len(evs))
	for i, ev := range evs {
		ev.Pid = pid
		ev.TS += dt
		out[i] = ev
	}
	return out
}

// CounterSample is one point of a counter-event series.
type CounterSample struct {
	TS    int64 // virtual nanoseconds
	Value int64
}

// CounterSeries extracts the samples of one 'C' series in emission order —
// e.g. the offload queue-depth timeline the offloadstorm example prints.
func (e *Events) CounterSeries(name string) []CounterSample {
	var out []CounterSample
	for _, ev := range e.Snapshot() {
		if ev.Ph == PhCounter && ev.Name == name {
			out = append(out, CounterSample{TS: ev.TS, Value: ev.Args["value"]})
		}
	}
	return out
}

// JSON renders the ring as Chrome trace-event JSON ("JSON object format").
// Timestamps become microsecond floats with nanosecond precision; args keys
// are emitted sorted so the bytes are deterministic. The otherData block
// carries the schema id and the eviction count that Validate uses to decide
// whether unbalanced spans are tolerable.
func (e *Events) JSON() []byte {
	var b bytes.Buffer
	b.WriteString(`{"traceEvents":[`)
	for i, ev := range e.Snapshot() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"name":%q,"cat":%q,"ph":%q,"ts":%d.%03d,"pid":%d,"tid":%d`,
			ev.Name, ev.Cat, string(ev.Ph), ev.TS/1000, ev.TS%1000, ev.Pid, ev.Tid)
		if len(ev.Args) > 0 {
			b.WriteString(`,"args":{`)
			for j, k := range slices.Sorted(maps.Keys(ev.Args)) {
				if j > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, `%q:%d`, k, ev.Args[k])
			}
			b.WriteByte('}')
		}
		b.WriteByte('}')
	}
	fmt.Fprintf(&b, `],"displayTimeUnit":"ns","otherData":{"schema":%q,"dropped":%d}}`,
		EventsSchema, e.dropped)
	b.WriteByte('\n')
	return b.Bytes()
}
