package trace

// Key is an interned counter name: a dense index into a fixed table of the
// counter names the simulation's hot paths emit. Sink.CountKey /
// Sink.CountMaxKey resolve a Key with one array index instead of hashing a
// string per emission — the difference between the string-map counting path
// (+25% on figure4-quick, BENCH_PR3.json) and the ≤5% budget BENCH_PR4.json
// tracks. Dynamic names (per-noise-source attribution, rare syscalls) keep
// using the string API; Counters.Add routes a string that happens to name a
// Key to the dense slot, so both APIs always agree on the same counter.
type Key int32

// The interned counter keys, one per hot emission site. The String values —
// keyNames below — are the exact dotted names the map-keyed API used, so
// exports, golden tests and mktrace -diff see identical bytes.
const (
	KeyHeapQueries Key = iota
	KeyHeapGrows
	KeyHeapGrownBytes
	KeyHeapPeakBytes
	KeyHeapShrinks
	KeyHeapShrunkBytes
	KeyHeapFaults
	KeyHeapZeroedBytes

	KeyMemBytesMCDRAM
	KeyMemBytesDDR4
	KeyMemSpillDDR4Bytes
	KeyMemVMAMap
	KeyMemVMAUnmap
	KeyMemVMADemandFallback
	KeyMemFault4K
	KeyMemFault2M
	KeyMemFault1G

	KeySyscallBrk
	KeySyscallIoctl
	KeySyscallSchedYield
	KeySyscallEnosys

	KeyFabricMessages
	KeyFabricDevSyscalls

	KeyOffloadCalls
	KeyOffloadRTTNs

	KeyMPICollectives
	KeyMPIHaloExchanges

	KeyNoiseCollectiveMaxNs
	KeyNoiseHaloMaxNs
	KeyNoiseDetourNs
	KeyNoiseDetouredIters

	KeyNodesimNoiseNs
	KeyNodesimMaxOffloadLatencyNs

	KeyIHKOffloads
	KeyIHKRTTNs
	KeyIHKServiced

	KeyFaultStragglerNs
	KeyFaultOffloadStalls
	KeyFaultOffloadStallNs
	KeyFaultLinkRetransmits
	KeyFaultLinkDelayNs
	KeyFaultStormOffloadNs
	KeyFaultNodeFailures
	KeyFaultRetries
	KeyFaultRecoveryNs
	KeyFaultDegradedNodes

	KeySchedSwitches
	KeySchedTicks
	KeySchedQuantumAdjust
	KeySchedGangSlackNs

	numKeys // sentinel: the dense-slice length
)

// keyNames maps each Key to its canonical dotted name. Order must match the
// constant block above; TestKeyNamesComplete enforces the pairing.
var keyNames = [numKeys]string{
	KeyHeapQueries:     "heap.queries",
	KeyHeapGrows:       "heap.grows",
	KeyHeapGrownBytes:  "heap.grown_bytes",
	KeyHeapPeakBytes:   "heap.peak_bytes",
	KeyHeapShrinks:     "heap.shrinks",
	KeyHeapShrunkBytes: "heap.shrunk_bytes",
	KeyHeapFaults:      "heap.faults",
	KeyHeapZeroedBytes: "heap.zeroed_bytes",

	KeyMemBytesMCDRAM:       "mem.bytes.mcdram",
	KeyMemBytesDDR4:         "mem.bytes.ddr4",
	KeyMemSpillDDR4Bytes:    "mem.spill_ddr4_bytes",
	KeyMemVMAMap:            "mem.vma.map",
	KeyMemVMAUnmap:          "mem.vma.unmap",
	KeyMemVMADemandFallback: "mem.vma.demand_fallback",
	KeyMemFault4K:           "mem.fault.4KiB",
	KeyMemFault2M:           "mem.fault.2MiB",
	KeyMemFault1G:           "mem.fault.1GiB",

	KeySyscallBrk:        "syscall.brk",
	KeySyscallIoctl:      "syscall.ioctl",
	KeySyscallSchedYield: "syscall.sched_yield",
	KeySyscallEnosys:     "syscall.enosys",

	KeyFabricMessages:    "fabric.messages",
	KeyFabricDevSyscalls: "fabric.dev_syscalls",

	KeyOffloadCalls: "offload.calls",
	KeyOffloadRTTNs: "offload.rtt_ns",

	KeyMPICollectives:   "mpi.collectives",
	KeyMPIHaloExchanges: "mpi.halo_exchanges",

	KeyNoiseCollectiveMaxNs: "noise.collective_max_ns",
	KeyNoiseHaloMaxNs:       "noise.halo_max_ns",
	KeyNoiseDetourNs:        "noise.detour_ns",
	KeyNoiseDetouredIters:   "noise.detoured_iters",

	KeyNodesimNoiseNs:             "nodesim.noise_ns",
	KeyNodesimMaxOffloadLatencyNs: "nodesim.max_offload_latency_ns",

	KeyIHKOffloads: "ihk.offloads",
	KeyIHKRTTNs:    "ihk.rtt_ns",
	KeyIHKServiced: "ihk.serviced",

	KeyFaultStragglerNs:     "fault.straggler_ns",
	KeyFaultOffloadStalls:   "fault.offload.stalls",
	KeyFaultOffloadStallNs:  "fault.offload.stall_ns",
	KeyFaultLinkRetransmits: "fault.link.retransmits",
	KeyFaultLinkDelayNs:     "fault.link.delay_ns",
	KeyFaultStormOffloadNs:  "fault.storm.offload_ns",
	KeyFaultNodeFailures:    "fault.node_failures",
	KeyFaultRetries:         "fault.retries",
	KeyFaultRecoveryNs:      "fault.recovery_ns",
	KeyFaultDegradedNodes:   "fault.degraded_nodes",

	KeySchedSwitches:      "sched.switches",
	KeySchedTicks:         "sched.ticks",
	KeySchedQuantumAdjust: "sched.quantum_adjust",
	KeySchedGangSlackNs:   "sched.gang_slack_ns",
}

// keyByName is the reverse index, built once at package init. It is
// immutable after init, so reading it from many runs concurrently is safe.
var keyByName = func() map[string]Key {
	m := make(map[string]Key, numKeys)
	for k, name := range keyNames {
		if name == "" {
			panic("trace: Key without a name — keyNames out of sync with the Key constants")
		}
		m[name] = Key(k)
	}
	return m
}()

// String returns the canonical dotted counter name.
func (k Key) String() string {
	if k < 0 || k >= numKeys {
		return "trace.Key(invalid)"
	}
	return keyNames[k]
}

// LookupKey returns the interned key for a counter name, if one exists.
func LookupKey(name string) (Key, bool) {
	k, ok := keyByName[name]
	return k, ok
}
