package trace

import (
	"bytes"
	"testing"
)

func TestKeyNamesComplete(t *testing.T) {
	seen := map[string]Key{}
	for k := Key(0); k < numKeys; k++ {
		name := k.String()
		if name == "" || name == "trace.Key(invalid)" {
			t.Fatalf("key %d has no name", k)
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("keys %d and %d share the name %q", prev, k, name)
		}
		seen[name] = k
		if got, ok := LookupKey(name); !ok || got != k {
			t.Fatalf("LookupKey(%q) = %v, %v; want %v, true", name, got, ok, k)
		}
	}
	if _, ok := LookupKey("no.such.counter"); ok {
		t.Fatal("LookupKey invented a key for an unknown name")
	}
	if Key(-1).String() != "trace.Key(invalid)" {
		t.Fatal("out-of-range Key.String")
	}
}

// TestKeyedAndNamedPathsAgree: the dense AddKey/MaxKey fast path and the
// string Add/Max path must land on the same counter — a string that names a
// Key is routed to the dense slot, never split into a shadow map entry.
func TestKeyedAndNamedPathsAgree(t *testing.T) {
	c := NewCounters()
	c.AddKey(KeyHeapGrows, 2)
	c.Add("heap.grows", 3)
	if got := c.Get("heap.grows"); got != 5 {
		t.Fatalf("heap.grows = %d, want 5", got)
	}
	if got := c.GetKey(KeyHeapGrows); got != 5 {
		t.Fatalf("GetKey(KeyHeapGrows) = %d, want 5", got)
	}
	c.Max("heap.peak_bytes", 10)
	c.MaxKey(KeyHeapPeakBytes, 7)
	if got := c.Get("heap.peak_bytes"); got != 10 {
		t.Fatalf("heap.peak_bytes = %d, want 10", got)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

// TestKeyedExportMatchesNamed: a counter set built through the keyed API and
// one built through the string API must export byte-identical JSON, and the
// dense tier must keep the map tier's existence semantics — Add at zero
// creates an exported entry, Max at zero does not.
func TestKeyedExportMatchesNamed(t *testing.T) {
	keyed := NewCounters()
	keyed.AddKey(KeySyscallBrk, 7526)
	keyed.AddKey(KeyHeapQueries, 0) // exists at zero
	keyed.MaxKey(KeyHeapPeakBytes, 0)
	keyed.Add("noise.src.daemon_ns", 42) // dynamic tier

	named := NewCounters()
	named.Add("syscall.brk", 7526)
	named.Add("heap.queries", 0)
	named.Max("heap.peak_bytes", 0)
	named.Add("noise.src.daemon_ns", 42)

	var a, b bytes.Buffer
	if err := keyed.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := named.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("keyed and named exports differ:\n%s\nvs\n%s", a.String(), b.String())
	}
	m := keyed.Map()
	if _, ok := m["heap.queries"]; !ok {
		t.Fatal("Add at zero must create the counter")
	}
	if _, ok := m["heap.peak_bytes"]; ok {
		t.Fatal("Max at zero must not create the counter")
	}
	want := []string{"heap.queries", "noise.src.daemon_ns", "syscall.brk"}
	names := keyed.Names()
	if len(names) != len(want) {
		t.Fatalf("Names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}
}

func TestMergeCrossesTiers(t *testing.T) {
	a := NewCounters()
	a.AddKey(KeyOffloadCalls, 3)
	a.Add("custom.counter", 1)
	b := NewCounters()
	b.AddKey(KeyOffloadCalls, 4)
	b.Add("custom.counter", 2)
	a.Merge(b)
	if got := a.GetKey(KeyOffloadCalls); got != 7 {
		t.Fatalf("merged offload.calls = %d, want 7", got)
	}
	if got := a.Get("custom.counter"); got != 3 {
		t.Fatalf("merged custom.counter = %d, want 3", got)
	}
	// MergeMap routes interned names through the dense tier too.
	a.MergeMap(map[string]int64{"offload.calls": 1, "custom.counter": 1})
	if a.GetKey(KeyOffloadCalls) != 8 || a.Get("custom.counter") != 4 {
		t.Fatalf("MergeMap mismatch: %v", a.Map())
	}
}

func TestSinkCountKeyNilSafe(t *testing.T) {
	var s *Sink
	s.CountKey(KeyHeapGrows, 1) // must not panic
	s.CountMaxKey(KeyHeapPeakBytes, 1)
	s.Observe("x", 1)
	s.ObserveRank("x", 0, 1)
	s.Phase("x", 1)
	s.Gauge("x", 1)
	if s.Observing() || s.Observer() != nil {
		t.Fatal("nil sink claims an observer")
	}
	c := NewCounters()
	ws := NewSink(c, nil)
	ws.CountKey(KeyHeapGrows, 2)
	ws.CountMaxKey(KeyHeapPeakBytes, 9)
	if c.GetKey(KeyHeapGrows) != 2 || c.GetKey(KeyHeapPeakBytes) != 9 {
		t.Fatalf("sink keyed counting lost updates: %v", c.Map())
	}
}
