package nodesim

import (
	"testing"

	"mklite/internal/hw"
	"mklite/internal/kernel"
	"mklite/internal/linuxos"
	"mklite/internal/mckernel"
	"mklite/internal/mos"
	"mklite/internal/sim"
)

func kernels(t *testing.T) (lin, mck, mosk kernel.Kernel) {
	t.Helper()
	l, err := linuxos.Boot(hw.KNL7250SNC4(), linuxos.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := mckernel.Deploy(hw.KNL7250SNC4(), mckernel.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	o, err := mos.Boot(hw.KNL7250SNC4(), mos.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return l, m, o
}

func base(k kernel.Kernel) Config {
	return Config{
		Kern:           k,
		Ranks:          16,
		Steps:          20,
		ComputePerStep: 2 * sim.Millisecond,
		Seed:           1,
	}
}

func TestRunValidation(t *testing.T) {
	_, mck, _ := kernels(t)
	if _, err := Run(Config{}); err == nil {
		t.Fatal("nil kernel accepted")
	}
	cfg := base(mck)
	cfg.Ranks = 1000
	if _, err := Run(cfg); err == nil {
		t.Fatal("oversubscription accepted")
	}
	cfg = base(mck)
	cfg.Steps = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("zero steps accepted")
	}
}

func TestDeterministic(t *testing.T) {
	_, mck, _ := kernels(t)
	a, err := Run(base(mck))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(base(mck))
	if err != nil {
		t.Fatal(err)
	}
	if a.Elapsed != b.Elapsed || a.NoiseTotal != b.NoiseTotal {
		t.Fatalf("non-deterministic: %v vs %v", a.Elapsed, b.Elapsed)
	}
}

func TestLWKMatchesAnalyticWithoutContention(t *testing.T) {
	// With no syscalls and a quiet kernel, the DES must land on the
	// analytic estimate almost exactly.
	_, mck, _ := kernels(t)
	cfg := base(mck)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	est := AnalyticEstimate(cfg)
	ratio := float64(res.Elapsed) / float64(est)
	if ratio < 0.99 || ratio > 1.02 {
		t.Fatalf("DES %v vs analytic %v (ratio %v)", res.Elapsed, est, ratio)
	}
}

func TestOffloadsAreServicedAndCounted(t *testing.T) {
	_, mck, _ := kernels(t)
	cfg := base(mck)
	cfg.SyscallsPerStep = 3
	cfg.SyscallService = 2 * sim.Microsecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.Ranks * cfg.Steps * cfg.SyscallsPerStep
	if res.OffloadsServiced != want {
		t.Fatalf("serviced %d, want %d", res.OffloadsServiced, want)
	}
	if res.MaxOffloadLatency <= 0 {
		t.Fatal("no offload latency recorded")
	}
}

func TestLinuxServicesSyscallsLocally(t *testing.T) {
	lin, _, _ := kernels(t)
	cfg := base(lin)
	cfg.SyscallsPerStep = 3
	cfg.SyscallService = 2 * sim.Microsecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.OffloadsServiced != 0 {
		t.Fatal("Linux should not offload")
	}
	// Local service: worst latency is just trap + service.
	if res.MaxOffloadLatency > 4*sim.Microsecond {
		t.Fatalf("native syscall latency %v", res.MaxOffloadLatency)
	}
}

func TestOffloadBurstsQueue(t *testing.T) {
	// All 64 ranks firing syscalls at once must queue on the 4 OS
	// cores: worst-case latency far above the uncontended round trip.
	_, mck, _ := kernels(t)
	cfg := base(mck)
	cfg.Ranks = 64
	cfg.Steps = 5
	cfg.SyscallsPerStep = 2
	cfg.SyscallService = 5 * sim.Microsecond
	cfg.Barrier = true // synchronised steps align the bursts
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	uncontended := mck.Costs().Trap + 5*sim.Microsecond + 3*sim.Microsecond
	if res.MaxOffloadLatency < 3*uncontended {
		t.Fatalf("no queueing visible: worst %v vs uncontended %v",
			res.MaxOffloadLatency, uncontended)
	}
}

func TestNoiseSeparatesKernels(t *testing.T) {
	lin, mck, _ := kernels(t)
	cl, cm := base(lin), base(mck)
	cl.Steps, cm.Steps = 100, 100
	rl, err := Run(cl)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := Run(cm)
	if err != nil {
		t.Fatal(err)
	}
	if rl.NoiseTotal <= rm.NoiseTotal {
		t.Fatalf("Linux noise %v not above LWK %v", rl.NoiseTotal, rm.NoiseTotal)
	}
	if rl.Elapsed <= rm.Elapsed {
		t.Fatalf("Linux elapsed %v not above LWK %v", rl.Elapsed, rm.Elapsed)
	}
}

func TestBarrierCouplesRanks(t *testing.T) {
	// With a per-step barrier, the noisy kernel's steps are gated by
	// the slowest rank: per-step ends must be monotone and count Steps.
	lin, _, _ := kernels(t)
	cfg := base(lin)
	cfg.Barrier = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.StepEnds) != cfg.Steps {
		t.Fatalf("%d step ends, want %d", len(res.StepEnds), cfg.Steps)
	}
	for i := 1; i < len(res.StepEnds); i++ {
		if res.StepEnds[i] <= res.StepEnds[i-1] {
			t.Fatal("step ends not monotone")
		}
	}
}

func TestBarrierAmplifiesNoise(t *testing.T) {
	// The DES version of the amplification law: synchronised Linux runs
	// slower than unsynchronised, because every step absorbs the max
	// detour; on the LWK the barrier costs almost nothing.
	lin, mck, _ := kernels(t)
	elapsed := func(k kernel.Kernel, barrier bool) sim.Duration {
		cfg := base(k)
		cfg.Ranks = 32
		cfg.Steps = 200
		cfg.Barrier = barrier
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	linGap := float64(elapsed(lin, true)) / float64(elapsed(lin, false))
	lwkGap := float64(elapsed(mck, true)) / float64(elapsed(mck, false))
	if linGap <= lwkGap {
		t.Fatalf("barrier should hurt Linux (%v) more than the LWK (%v)", linGap, lwkGap)
	}
}

func TestMOSOffloadsThroughMigration(t *testing.T) {
	_, _, mosk := kernels(t)
	cfg := base(mosk)
	cfg.SyscallsPerStep = 2
	cfg.SyscallService = 2 * sim.Microsecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.OffloadsServiced != cfg.Ranks*cfg.Steps*cfg.SyscallsPerStep {
		t.Fatal("mOS offloads not serviced")
	}
}

func TestAnalyticEstimateOffloadTerm(t *testing.T) {
	lin, mck, _ := kernels(t)
	cfg := base(mck)
	cfg.SyscallsPerStep = 10
	cfgLin := base(lin)
	cfgLin.SyscallsPerStep = 10
	if AnalyticEstimate(cfg) <= AnalyticEstimate(cfgLin) {
		t.Fatal("offloaded estimate should exceed native")
	}
}
