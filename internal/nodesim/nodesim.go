// Package nodesim is a discrete-event simulation of a single node: every
// rank is a cooperative process on its own core, OS noise stretches its
// compute phases, offloaded system calls travel through the IKC to a
// finite pool of Linux-side servicing cores (where they queue), and ranks
// synchronise through an intra-node barrier.
//
// The cluster harness (internal/cluster) composes the same mechanisms
// analytically for speed; nodesim executes them event by event, which
// captures what the analytic model folds away — offload queueing under
// bursts and barrier-edge effects — and serves as its validation harness
// (see the cross-check tests).
package nodesim

import (
	"fmt"

	"mklite/internal/fault"
	"mklite/internal/ihk"
	"mklite/internal/kernel"
	"mklite/internal/sim"
	"mklite/internal/trace"
)

// Config describes one node-level run.
type Config struct {
	// Kern supplies scheduling, costs, noise and the partition.
	Kern kernel.Kernel
	// Ranks is the number of application processes (each pinned to its
	// own application core; must not exceed the partition).
	Ranks int
	// Steps is the number of timesteps.
	Steps int
	// ComputePerStep is the pure per-rank compute time per step.
	ComputePerStep sim.Duration
	// SyscallsPerStep is the number of offload-class syscalls each rank
	// issues per step (device-file operations).
	SyscallsPerStep int
	// SyscallService is the Linux-side service time per call.
	SyscallService sim.Duration
	// Barrier synchronises all ranks at the end of every step.
	Barrier bool
	// Seed drives the noise sampling.
	Seed uint64
	// Sink receives mechanism counters and virtual-time events (per-rank
	// compute spans, step marks, the offload queue-depth timeline). Nil
	// turns tracing off; results are identical either way.
	Sink *trace.Sink
	// Faults, when non-nil and non-empty, makes the offload channel
	// flaky: issues stall with the plan's probability and are re-issued
	// after the timeout, bounded by the plan's retry count (see
	// internal/fault). The injector draws from its own stream, so a nil
	// or empty plan leaves the run byte-identical.
	Faults *fault.Plan
}

// Result is a node-level run's outcome.
type Result struct {
	// Elapsed is the virtual time from start to the last rank's finish.
	Elapsed sim.Duration
	// StepEnds records when each step's barrier completed (empty when
	// Barrier is false).
	StepEnds []sim.Time
	// OffloadsServiced counts completed offloaded syscalls.
	OffloadsServiced int
	// MaxOffloadLatency is the worst single offload round trip
	// (queueing included).
	MaxOffloadLatency sim.Duration
	// NoiseTotal is the summed noise detour across ranks.
	NoiseTotal sim.Duration
	// OffloadStalls counts offload issues that stalled and were
	// re-issued after the fault plan's timeout.
	OffloadStalls int
}

// barrier is a reusable all-ranks rendezvous.
type barrier struct {
	n       int
	arrived int
	sig     *sim.Signal
}

func newBarrier(n int) *barrier { return &barrier{n: n, sig: &sim.Signal{}} }

// wait blocks until all n participants have arrived.
func (b *barrier) wait(p *sim.Proc) {
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		old := b.sig
		b.sig = &sim.Signal{}
		old.Fire(p.Engine())
		// The releasing rank does not wait; it continues once the
		// others are scheduled to wake.
		return
	}
	p.WaitSignal(b.sig)
}

// Run executes the node simulation.
func Run(cfg Config) (Result, error) {
	if cfg.Kern == nil {
		return Result{}, fmt.Errorf("nodesim: nil kernel")
	}
	part := cfg.Kern.Partition()
	if cfg.Ranks <= 0 || cfg.Ranks > len(part.AppCores) {
		return Result{}, fmt.Errorf("nodesim: %d ranks for %d application cores", cfg.Ranks, len(part.AppCores))
	}
	if cfg.Steps <= 0 {
		return Result{}, fmt.Errorf("nodesim: non-positive step count")
	}

	if err := cfg.Faults.Validate(); err != nil {
		return Result{}, err
	}

	eng := sim.NewEngine(cfg.Seed)
	eng.SetSink(cfg.Sink)
	rootRNG := eng.RNG().Split()
	costs := cfg.Kern.Costs()
	prof := cfg.Kern.Noise()
	sink := cfg.Sink
	// The injector draws from its own stream, never the engine's, so an
	// empty plan (nil injector) leaves the event timeline untouched.
	inj := fault.NewInjector(cfg.Faults, sim.StreamSeed(cfg.Seed, fault.StreamNode))

	// Offloads are serviced by the partition's OS cores. Native-syscall
	// kernels (Linux) execute locally instead.
	offloaded := cfg.Kern.Table().Get(kernel.SysIoctl) == kernel.Offloaded
	var srv *ihk.OffloadServer
	var softOverhead sim.Duration
	if offloaded {
		ikcChan := ihk.NewIKC(part)
		srv = ihk.NewOffloadServer(eng, ikcChan, len(part.OSCores))
		// The design-specific software cost on top of the IKC wire
		// time: proxy wakeup and argument marshalling for McKernel,
		// the cheaper task_struct hand-off for mOS.
		if softOverhead = costs.OffloadRTT - 2*ikcChan.LocalLatency; softOverhead < 0 {
			softOverhead = 0
		}
	}

	service := cfg.SyscallService
	if s := inj.StormOffloadScale(); offloaded && s > 1 {
		// A daemon storm keeps the Linux service cores busy; every
		// offloaded call's service time stretches accordingly.
		service = service.Scale(s)
	}

	res := Result{}
	bar := newBarrier(cfg.Ranks)
	var finished int
	var last sim.Time

	for r := 0; r < cfg.Ranks; r++ {
		core := part.AppCores[r]
		rng := rootRNG.Split()
		eng.Spawn(fmt.Sprintf("rank-%d", r), func(p *sim.Proc) {
			tid := int32(r)
			for step := 0; step < cfg.Steps; step++ {
				// Compute, stretched by this core's noise.
				detour := prof.DetourInTo(rng, core, cfg.ComputePerStep, sink)
				res.NoiseTotal += detour
				sink.CountKey(trace.KeyNodesimNoiseNs, int64(detour))
				sink.ObserveRank("nodesim.detour_ns", r, int64(detour))
				sink.Begin(int64(p.Now()), 0, tid, "compute", "nodesim")
				p.Sleep(cfg.ComputePerStep + detour)
				sink.End(int64(p.Now()), 0, tid, "compute", "nodesim")

				// Device syscalls.
				if cfg.SyscallsPerStep > 0 {
					sink.Begin(int64(p.Now()), 0, tid, "syscalls", "nodesim")
				}
				for s := 0; s < cfg.SyscallsPerStep; s++ {
					start := p.Now()
					if offloaded {
						p.Sleep(costs.Trap + softOverhead)
						for try := 0; ; try++ {
							if stall, stalled := inj.OffloadStall(); stalled && try < inj.OffloadRetries() {
								// The issue vanished into the flaky
								// channel: wait out the timeout,
								// then re-issue.
								p.Sleep(stall)
								res.OffloadStalls++
								sink.CountKey(trace.KeyFaultOffloadStalls, 1)
								sink.CountKey(trace.KeyFaultOffloadStallNs, int64(stall))
								continue
							}
							if err := srv.Offload(p, core, service); err != nil {
								return
							}
							break
						}
					} else {
						p.Sleep(costs.Trap + cfg.SyscallService)
					}
					d := sim.Duration(p.Now() - start)
					if d > res.MaxOffloadLatency {
						res.MaxOffloadLatency = d
						sink.CountMaxKey(trace.KeyNodesimMaxOffloadLatencyNs, int64(d))
					}
					sink.ObserveRank("nodesim.offload_latency_ns", r, int64(d))
				}
				if cfg.SyscallsPerStep > 0 {
					sink.End(int64(p.Now()), 0, tid, "syscalls", "nodesim")
				}

				if cfg.Barrier {
					bar.wait(p)
					if r == 0 {
						res.StepEnds = append(res.StepEnds, p.Now())
						sink.Instant(int64(p.Now()), 0, tid, "step-barrier", "nodesim",
							map[string]int64{"step": int64(step)})
					}
				}
			}
			finished++
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	eng.RunUntil(sim.Time(sim.Hour))
	if finished != cfg.Ranks {
		return Result{}, fmt.Errorf("nodesim: only %d of %d ranks finished (deadlock?)", finished, cfg.Ranks)
	}
	if offloaded {
		res.OffloadsServiced = srv.Serviced
	}
	res.Elapsed = sim.Duration(last)
	return res, nil
}

// AnalyticEstimate is the closed-form per-step cost the cluster harness
// uses: compute plus syscall costs, without queueing or barrier effects.
// Comparing it with Run quantifies what the analytic model omits.
func AnalyticEstimate(cfg Config) sim.Duration {
	costs := cfg.Kern.Costs()
	per := cfg.ComputePerStep
	perCall := costs.Trap + cfg.SyscallService
	if cfg.Kern.Table().Get(kernel.SysIoctl) == kernel.Offloaded {
		perCall += costs.OffloadRTT
	}
	per += sim.Duration(cfg.SyscallsPerStep) * perCall
	return sim.Duration(cfg.Steps) * per
}
