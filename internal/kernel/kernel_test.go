package kernel

import (
	"testing"

	"mklite/internal/hw"
	"mklite/internal/mem"
	"mklite/internal/sim"
)

func TestSysnoInventory(t *testing.T) {
	all := All()
	if len(all) != NumSyscalls {
		t.Fatalf("All() returned %d, want %d", len(all), NumSyscalls)
	}
	if NumSyscalls < 120 {
		t.Fatalf("inventory only %d syscalls; expected a broad ABI surface", NumSyscalls)
	}
	for i, n := range all {
		if int(n) != i || !n.Valid() {
			t.Fatalf("inventory broken at %d", i)
		}
	}
	if Sysno(-1).Valid() || Sysno(NumSyscalls).Valid() {
		t.Fatal("out-of-range sysno validated")
	}
}

func TestSysnoStrings(t *testing.T) {
	if SysBrk.String() != "brk" || SysMovePages.String() != "move_pages" {
		t.Fatal("named syscalls")
	}
	if Sysno(-5).String() != "sys_-5?" {
		t.Fatalf("invalid sysno string: %q", Sysno(-5).String())
	}
}

func TestClassOf(t *testing.T) {
	cases := map[Sysno]Class{
		SysFork:          ClassProcess,
		SysSchedYield:    ClassSched,
		SysClockGettime:  ClassTime,
		SysRtSigaction:   ClassSignal,
		SysBrk:           ClassMemory,
		SysMovePages:     ClassMemory,
		SysFutex:         ClassThread,
		SysOpen:          ClassFile,
		SysSocket:        ClassNet,
		SysUname:         ClassInfo,
		SysPerfEventOpen: ClassInfo,
	}
	for n, want := range cases {
		if got := ClassOf(n); got != want {
			t.Fatalf("ClassOf(%v) = %v, want %v", n, got, want)
		}
	}
}

func TestEverySyscallHasClass(t *testing.T) {
	for _, n := range All() {
		c := ClassOf(n)
		if c < ClassProcess || c > ClassInfo {
			t.Fatalf("syscall %v has bad class %v", n, c)
		}
		if c.String() == "" {
			t.Fatalf("class %v has no name", c)
		}
	}
}

func TestTableDefaultAndOverride(t *testing.T) {
	tb := NewTable(Offloaded)
	tb.Set(SysBrk, Native)
	if tb.Get(SysBrk) != Native {
		t.Fatal("override lost")
	}
	if tb.Get(SysOpen) != Offloaded {
		t.Fatal("default lost")
	}
}

func TestTableSetClass(t *testing.T) {
	tb := NewTable(Offloaded)
	tb.SetClass(ClassMemory, Native)
	if tb.Get(SysMmap) != Native || tb.Get(SysMbind) != Native {
		t.Fatal("SetClass(memory) incomplete")
	}
	if tb.Get(SysOpen) != Offloaded {
		t.Fatal("SetClass leaked outside class")
	}
}

func TestTableCount(t *testing.T) {
	tb := NewTable(Native)
	tb.SetAll([]Sysno{SysOpen, SysClose}, Unsupported)
	if c := tb.Count(Unsupported); c != 2 {
		t.Fatalf("Count = %d", c)
	}
	if c := tb.Count(Native); c != NumSyscalls-2 {
		t.Fatalf("native count = %d", c)
	}
}

func TestDispositionStrings(t *testing.T) {
	if Native.String() != "native" || Offloaded.String() != "offloaded" || Unsupported.String() != "unsupported" {
		t.Fatal("disposition strings")
	}
}

func TestCapSet(t *testing.T) {
	s := CapSet{}.With(CapFullFork, CapMovePages)
	if !s.Has(CapFullFork) || !s.Has(CapMovePages) || s.Has(CapPtraceFull) {
		t.Fatal("With/Has broken")
	}
	s2 := s.Without(CapFullFork)
	if s2.Has(CapFullFork) || !s.Has(CapFullFork) {
		t.Fatal("Without must not mutate the original")
	}
}

func TestCostsSyscallTime(t *testing.T) {
	c := McKernelCosts()
	if c.SyscallTime(Native) != c.Trap {
		t.Fatal("native time")
	}
	if c.SyscallTime(Offloaded) != c.Trap+c.OffloadRTT {
		t.Fatal("offload time")
	}
	if c.SyscallTime(Unsupported) != c.Trap {
		t.Fatal("unsupported time")
	}
}

func TestCostRelationships(t *testing.T) {
	lin, mck, mos := LinuxCosts(), McKernelCosts(), MOSCosts()
	if !(mck.Trap < lin.Trap) {
		t.Fatal("LWK trap should be cheaper than Linux")
	}
	// mOS offload (thread migration) is cheaper than McKernel's proxy
	// round trip — section II-C.
	if !(mos.OffloadRTT < mck.OffloadRTT) {
		t.Fatal("mOS offload should undercut McKernel proxy")
	}
	if lin.TickOverhead == 0 || mck.TickOverhead != 0 || mos.TickOverhead != 0 {
		t.Fatal("tick configuration wrong")
	}
}

func TestWorkTime(t *testing.T) {
	c := LinuxCosts()
	w := mem.Work{Faults: 10, PagesMapped: 10, ZeroedBytes: 8 << 30}
	d := c.WorkTime(w)
	want := 10*c.FaultBase + 10*c.PTESetup + sim.Second // 8 GiB at 8 GiB/s
	if d < want-sim.Millisecond || d > want+sim.Millisecond {
		t.Fatalf("WorkTime = %v, want ~%v", d, want)
	}
	if c.WorkTime(mem.Work{}) != 0 {
		t.Fatal("empty work should be free")
	}
}

func TestDefaultPartition(t *testing.T) {
	node := hw.KNL7250SNC4()
	p, err := DefaultPartition(node, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.OSCores) != 4 || len(p.AppCores) != 64 {
		t.Fatalf("partition %d/%d", len(p.OSCores), len(p.AppCores))
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.OSCores[0] != 0 {
		t.Fatal("core 0 must be an OS core")
	}
}

func TestDefaultPartitionErrors(t *testing.T) {
	node := hw.KNL7250SNC4()
	if _, err := DefaultPartition(node, 68); err == nil {
		t.Fatal("all-OS partition accepted")
	}
	if _, err := DefaultPartition(node, -1); err == nil {
		t.Fatal("negative OS cores accepted")
	}
}

func TestPartitionValidateCatchesOverlap(t *testing.T) {
	node := hw.KNL7250SNC4()
	p, _ := DefaultPartition(node, 4)
	p.AppCores[0] = 0 // overlap with OS core 0
	if err := p.Validate(); err == nil {
		t.Fatal("overlap accepted")
	}
}

func TestAppDomains(t *testing.T) {
	node := hw.KNL7250SNC4()
	p, _ := DefaultPartition(node, 4)
	doms := p.AppDomains()
	// 64 app cores spread over all four DDR quadrants.
	if len(doms) != 4 {
		t.Fatalf("app domains = %v", doms)
	}
}

func TestNearestOSCore(t *testing.T) {
	node := hw.KNL7250SNC4()
	p, _ := DefaultPartition(node, 4)
	// All OS cores are in quadrant 0 (cores 0-3); any app core maps to
	// one of them.
	c, err := p.NearestOSCore(40)
	if err != nil {
		t.Fatal(err)
	}
	if c < 0 || c > 3 {
		t.Fatalf("nearest OS core = %d", c)
	}
	empty := Partition{Node: node}
	if _, err := empty.NearestOSCore(10); err == nil {
		t.Fatal("no OS cores: want error")
	}
}

func TestCooperativeSchedule(t *testing.T) {
	cfg := CooperativeLWK(McKernelCosts())
	tasks := []sim.Duration{10 * sim.Millisecond, 20 * sim.Millisecond, 30 * sim.Millisecond}
	res := RunSchedule(tasks, cfg)
	if res.Switches != 2 {
		t.Fatalf("switches = %d", res.Switches)
	}
	if res.Completion[0] != 10*sim.Millisecond {
		t.Fatalf("first completion %v", res.Completion[0])
	}
	want := 60*sim.Millisecond + 2*cfg.ContextSwitch
	if res.Makespan != want {
		t.Fatalf("makespan %v, want %v", res.Makespan, want)
	}
}

func TestTimeSharedSchedule(t *testing.T) {
	cfg := TimeSharing(LinuxCosts(), 10*sim.Millisecond, 4*sim.Millisecond)
	tasks := []sim.Duration{20 * sim.Millisecond, 20 * sim.Millisecond}
	res := RunSchedule(tasks, cfg)
	if res.Switches < 3 {
		t.Fatalf("time sharing switched only %d times", res.Switches)
	}
	// Makespan exceeds pure work due to switches and tick overhead.
	if res.Makespan <= 40*sim.Millisecond {
		t.Fatalf("makespan %v did not include overhead", res.Makespan)
	}
	if res.Overhead <= 0 {
		t.Fatal("no overhead recorded")
	}
}

func TestScheduleOverheadComparison(t *testing.T) {
	// The design rationale: for batch HPC tasks, cooperative scheduling
	// wastes less time than time sharing.
	tasks := make([]sim.Duration, 8)
	for i := range tasks {
		tasks[i] = 50 * sim.Millisecond
	}
	coop := RunSchedule(tasks, CooperativeLWK(McKernelCosts()))
	ts := RunSchedule(tasks, TimeSharing(LinuxCosts(), 10*sim.Millisecond, 4*sim.Millisecond))
	if coop.Makespan >= ts.Makespan {
		t.Fatalf("cooperative %v not faster than time-shared %v", coop.Makespan, ts.Makespan)
	}
}

func TestScheduleEmpty(t *testing.T) {
	res := RunSchedule(nil, CooperativeLWK(McKernelCosts()))
	if res.Makespan != 0 || len(res.Completion) != 0 {
		t.Fatal("empty schedule")
	}
}

func TestTimeSharedFairness(t *testing.T) {
	// With equal work and preemption, completions are clustered at the
	// end rather than strictly serial: the shorter first-completion gap
	// distinguishes RR from FCFS.
	cfg := TimeSharing(LinuxCosts(), sim.Millisecond, 0)
	tasks := []sim.Duration{10 * sim.Millisecond, 10 * sim.Millisecond}
	res := RunSchedule(tasks, cfg)
	gap := res.Makespan - res.Completion[0]
	if gap > 5*sim.Millisecond {
		t.Fatalf("completion gap %v too large for RR", gap)
	}
}

// Regression for the historical tick model that stretched only compute
// slices: virtual time spent in context switches is tick-charged too, so a
// ticked run is slower than a tick-free one by exactly its TickTime, and
// that TickTime exceeds a compute-only stretch.
func TestRunScheduleTickChargesSwitchTime(t *testing.T) {
	cfg := SchedConfig{
		Preemptive:    true,
		Timeslice:     10 * sim.Millisecond,
		ContextSwitch: 2 * sim.Millisecond,
		TickPeriod:    4 * sim.Millisecond,
		TickOverhead:  sim.Millisecond,
	}
	tasks := []sim.Duration{25 * sim.Millisecond, 25 * sim.Millisecond}
	res := RunSchedule(tasks, cfg)
	flat := cfg
	flat.TickOverhead = 0
	base := RunSchedule(tasks, flat)
	if res.TickTime <= 0 {
		t.Fatal("no tick charged")
	}
	if res.Makespan != base.Makespan+res.TickTime {
		t.Fatalf("makespan %v != tick-free %v + tick %v", res.Makespan, base.Makespan, res.TickTime)
	}
	rate := float64(cfg.TickOverhead) / float64(cfg.TickPeriod)
	if computeOnly := (tasks[0] + tasks[1]).Scale(rate); res.TickTime <= computeOnly {
		t.Fatalf("tick %v exempts switch time (compute-only stretch %v)", res.TickTime, computeOnly)
	}
}

func TestRunScheduleDecomposition(t *testing.T) {
	cfg := TimeSharing(LinuxCosts(), 10*sim.Millisecond, 4*sim.Millisecond)
	res := RunSchedule([]sim.Duration{25 * sim.Millisecond, 10 * sim.Millisecond, 7 * sim.Millisecond}, cfg)
	if res.TickTime <= 0 || res.Switches == 0 {
		t.Fatalf("degenerate schedule: %+v", res)
	}
	if want := sim.Duration(res.Switches)*cfg.ContextSwitch + res.TickTime; res.Overhead != want {
		t.Fatalf("Overhead %v != Switches·ContextSwitch + tick = %v", res.Overhead, want)
	}
}

func TestRunScheduleSingleTaskPreemptive(t *testing.T) {
	cfg := TimeSharing(LinuxCosts(), 10*sim.Millisecond, 4*sim.Millisecond)
	task := 25 * sim.Millisecond
	res := RunSchedule([]sim.Duration{task}, cfg)
	if res.Switches != 0 {
		t.Fatalf("solo task switched %d times", res.Switches)
	}
	if res.Overhead != res.TickTime {
		t.Fatalf("solo overhead %v is not pure tick %v", res.Overhead, res.TickTime)
	}
	if res.Makespan != task+res.TickTime {
		t.Fatalf("solo makespan %v, want %v", res.Makespan, task+res.TickTime)
	}
}

func TestRunScheduleDegenerateTimeslices(t *testing.T) {
	tasks := []sim.Duration{10 * sim.Millisecond, 20 * sim.Millisecond}
	for _, slice := range []sim.Duration{0, -5 * sim.Millisecond} {
		cfg := SchedConfig{Preemptive: true, Timeslice: slice, ContextSwitch: sim.Microsecond}
		res := RunSchedule(tasks, cfg)
		// A non-positive quantum degrades to run-to-completion slices.
		if res.Switches != 1 {
			t.Fatalf("timeslice %v: %d switches", slice, res.Switches)
		}
		if want := 30*sim.Millisecond + cfg.ContextSwitch; res.Makespan != want {
			t.Fatalf("timeslice %v: makespan %v, want %v", slice, res.Makespan, want)
		}
	}
	if res := RunSchedule(nil, TimeSharing(LinuxCosts(), 10*sim.Millisecond, 4*sim.Millisecond)); res.Makespan != 0 || len(res.Completion) != 0 {
		t.Fatal("empty preemptive schedule")
	}
}

func TestBaseKernelPlumbing(t *testing.T) {
	node := hw.KNL7250SNC4()
	part, _ := DefaultPartition(node, 4)
	b := &Base{
		KName:  "test",
		KType:  TypeMcKernel,
		KCaps:  CapSet{}.With(CapFullFork),
		KTable: NewTable(Offloaded).Set(SysBrk, Native),
		KCosts: McKernelCosts(),
		KPart:  part,
		KPhys:  mem.NewPhys(node),
	}
	if b.Name() != "test" || b.Type() != TypeMcKernel {
		t.Fatal("base getters")
	}
	if b.SyscallTime(SysBrk) != b.Costs().Trap {
		t.Fatal("native syscall time")
	}
	if b.SyscallTime(SysOpen) != b.Costs().Trap+b.Costs().OffloadRTT {
		t.Fatal("offloaded syscall time")
	}
	if !b.Caps().Has(CapFullFork) {
		t.Fatal("caps")
	}
	if b.Phys() == nil || b.Partition().Node != node {
		t.Fatal("phys/partition")
	}
}

func TestTypeStrings(t *testing.T) {
	if TypeLinux.String() != "Linux" || TypeMcKernel.String() != "McKernel" || TypeMOS.String() != "mOS" {
		t.Fatal("type strings")
	}
	if Type(9).String() != "unknown" {
		t.Fatal("unknown type string")
	}
}
