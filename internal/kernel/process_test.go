package kernel

import (
	"testing"

	"mklite/internal/hw"
	"mklite/internal/mem"
	"mklite/internal/noise"
	"mklite/internal/sched"
)

// testKernel builds a minimal concrete kernel for process tests.
type testKernel struct {
	Base
	demand bool
}

func (k *testKernel) MapPolicy(kind mem.VMAKind) mem.Policy {
	return mem.Policy{Domains: []int{0, 1, 2, 3}, MaxPage: hw.Page2M, Demand: k.demand}
}

func (k *testKernel) NewHeap(as *mem.AddrSpace, limit int64, domains []int) (mem.Heap, error) {
	if domains == nil {
		domains = []int{0, 1, 2, 3}
	}
	return mem.NewHPCHeap(as, limit, mem.DefaultHPCHeapConfig(domains))
}

func newTestKernel(t *testing.T, offloadFiles bool) *testKernel {
	t.Helper()
	node := hw.KNL7250SNC4()
	part, err := DefaultPartition(node, 4)
	if err != nil {
		t.Fatal(err)
	}
	def := Native
	if offloadFiles {
		def = Offloaded
	}
	tb := NewTable(def)
	tb.SetClass(ClassMemory, Native)
	tb.Set(SysMovePages, Unsupported)
	return &testKernel{Base: Base{
		KName:  "testk",
		KType:  TypeMcKernel,
		KCaps:  CapSet{},
		KTable: tb,
		KCosts: McKernelCosts(),
		KNoise: noise.McKernelProfile(),
		KPart:  part,
		KPhys:  mem.NewPhys(node),
		KSched: mustPolicy(t, sched.Coop, McKernelCosts()),
	}}
}

func mustPolicy(t *testing.T, kind sched.Kind, costs Costs) sched.Policy {
	t.Helper()
	pol, err := NewPolicy(kind, costs)
	if err != nil {
		t.Fatal(err)
	}
	return pol
}

func TestFDTableBasics(t *testing.T) {
	ft := NewFDTable()
	if ft.Count() != 3 {
		t.Fatalf("fresh table has %d fds, want stdio 3", ft.Count())
	}
	fd := ft.Open("/tmp/x", 0)
	if fd != 3 {
		t.Fatalf("first open fd = %d", fd)
	}
	if err := ft.Close(fd); err != nil {
		t.Fatal(err)
	}
	if err := ft.Close(fd); err == nil {
		t.Fatal("double close accepted")
	}
	// Lowest-free reuse.
	if got := ft.Open("/tmp/y", 0); got != 3 {
		t.Fatalf("reused fd = %d", got)
	}
}

func TestFDTableDupSharesPosition(t *testing.T) {
	ft := NewFDTable()
	fd := ft.Open("/tmp/x", 0)
	dup, err := ft.Dup(fd)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := ft.Get(fd)
	f.Pos = 42
	g, _ := ft.Get(dup)
	if g.Pos != 42 {
		t.Fatal("dup does not share the file description")
	}
	if _, err := ft.Dup(99); err == nil {
		t.Fatal("dup of bad fd accepted")
	}
}

func TestFDTableDup2(t *testing.T) {
	ft := NewFDTable()
	fd := ft.Open("/tmp/x", 0)
	if got, err := ft.Dup2(fd, 7); err != nil || got != 7 {
		t.Fatalf("dup2: %v %v", got, err)
	}
	if got, _ := ft.Dup2(fd, fd); got != fd {
		t.Fatal("self dup2")
	}
	if _, err := ft.Dup2(55, 7); err == nil {
		t.Fatal("dup2 of bad fd accepted")
	}
}

func TestProcessProxyFDPlacement(t *testing.T) {
	// File-offloading kernels hold the fd table in the proxy.
	k := newTestKernel(t, true)
	p, err := NewProcess(k, 1, hw.GiB)
	if err != nil {
		t.Fatal(err)
	}
	if p.Proxy == nil {
		t.Fatal("offloading kernel without proxy")
	}
	fd, err := p.Open("/data", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Proxy.FDs.Get(fd); err != nil {
		t.Fatal("descriptor not held by the proxy")
	}

	// Native kernels keep the table local.
	kn := newTestKernel(t, false)
	pn, err := NewProcess(kn, 2, hw.GiB)
	if err != nil {
		t.Fatal(err)
	}
	if pn.Proxy != nil {
		t.Fatal("native kernel with a proxy")
	}
}

func TestProcessFileOpsChargeOffload(t *testing.T) {
	k := newTestKernel(t, true)
	p, _ := NewProcess(k, 1, hw.GiB)
	fd, _ := p.Open("/data", 0)
	p.Read(fd, 4096)
	p.Write(fd, 4096)
	p.Close(fd)
	wantPer := k.Costs().Trap + k.Costs().OffloadRTT
	if p.SyscallTime != 4*wantPer {
		t.Fatalf("4 offloaded calls cost %v, want %v", p.SyscallTime, 4*wantPer)
	}
	if p.Calls[SysOpen] != 1 || p.Calls[SysRead] != 1 {
		t.Fatalf("call counts %v", p.Calls)
	}
}

func TestProcessReadWriteAdvancePosition(t *testing.T) {
	k := newTestKernel(t, true)
	p, _ := NewProcess(k, 1, hw.GiB)
	fd, _ := p.Open("/data", 0)
	p.Read(fd, 100)
	p.Write(fd, 50)
	f, _ := p.Proxy.FDs.Get(fd)
	if f.Pos != 150 {
		t.Fatalf("pos %d", f.Pos)
	}
	if _, err := p.Read(99, 10); err == nil {
		t.Fatal("read of bad fd accepted")
	}
}

func TestProcessMmapChargesWork(t *testing.T) {
	k := newTestKernel(t, false)
	p, _ := NewProcess(k, 1, hw.GiB)
	before := p.SyscallTime
	v, err := p.Mmap(64*hw.MiB, mem.VMAAnon)
	if err != nil {
		t.Fatal(err)
	}
	if v.Populated != 64*hw.MiB {
		t.Fatal("upfront mapping not populated")
	}
	// The charge includes zeroing 64 MiB: far more than a bare trap.
	if p.SyscallTime-before < 100*k.Costs().Trap {
		t.Fatalf("mmap cost %v implausibly low", p.SyscallTime-before)
	}
}

func TestProcessMunmapAndMprotect(t *testing.T) {
	k := newTestKernel(t, false)
	p, _ := NewProcess(k, 1, hw.GiB)
	v, _ := p.Mmap(8*hw.MiB, mem.VMAAnon)
	if _, err := p.Mprotect(v, 2*hw.MiB, 2*hw.MiB, mem.ProtRead); err != nil {
		t.Fatal(err)
	}
	if len(p.AS.VMAs()) < 3 {
		t.Fatal("mprotect did not split")
	}
	if err := p.Munmap(v, 0, 2*hw.MiB); err != nil {
		t.Fatal(err)
	}
}

func TestProcessSbrk(t *testing.T) {
	k := newTestKernel(t, false)
	p, _ := NewProcess(k, 1, hw.GiB)
	size, err := p.Sbrk(4 * hw.MiB)
	if err != nil || size != 4*hw.MiB {
		t.Fatalf("sbrk: %d, %v", size, err)
	}
	if p.Calls[SysBrk] != 1 {
		t.Fatal("brk not counted")
	}
}

func TestProcessMovePagesUnsupported(t *testing.T) {
	k := newTestKernel(t, false) // table marks move_pages unsupported
	p, _ := NewProcess(k, 1, hw.GiB)
	v, _ := p.Mmap(8*hw.MiB, mem.VMAAnon)
	if _, err := p.MovePages(v, []int{4}); err == nil {
		t.Fatal("unsupported move_pages succeeded")
	}
	if p.Calls[SysMovePages] != 1 {
		t.Fatal("refused call not counted")
	}
}

func TestProcessMovePagesSupported(t *testing.T) {
	k := newTestKernel(t, false)
	k.KTable.Set(SysMovePages, Native)
	p, _ := NewProcess(k, 1, hw.GiB)
	v, _ := p.Mmap(8*hw.MiB, mem.VMAAnon)
	w, err := p.MovePages(v, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if w.CopiedBytes != 8*hw.MiB {
		t.Fatalf("copied %d", w.CopiedBytes)
	}
	if v.DomainsOf()[4] != 8*hw.MiB {
		t.Fatal("pages not in MCDRAM")
	}
}

func TestProcessSetMempolicy(t *testing.T) {
	k := newTestKernel(t, false)
	p, _ := NewProcess(k, 1, hw.GiB)
	if _, err := p.SetMempolicy(nil, []int{4}); err != nil {
		t.Fatal(err)
	}
	v, _ := p.Mmap(4*hw.MiB, mem.VMAAnon)
	w, err := p.SetMempolicy(v, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if w.CopiedBytes == 0 {
		t.Fatal("mbind-style migration did nothing")
	}
}

func TestProcessExitReleasesMemory(t *testing.T) {
	k := newTestKernel(t, false)
	p, _ := NewProcess(k, 1, hw.GiB)
	p.Mmap(32*hw.MiB, mem.VMAAnon)
	p.Exit()
	for d := 0; d < 8; d++ {
		if k.Phys().UsedBytes(d) != 0 {
			t.Fatalf("domain %d leaked after exit", d)
		}
	}
}

func TestProcessGetpidAndYield(t *testing.T) {
	k := newTestKernel(t, false)
	p, _ := NewProcess(k, 7, hw.GiB)
	if p.Getpid() != 7 {
		t.Fatal("pid")
	}
	p.SchedYield()
	if p.Calls[SysSchedYield] != 1 || p.Calls[SysGetpid] != 1 {
		t.Fatal("counts")
	}
}

func TestProcessMremap(t *testing.T) {
	k := newTestKernel(t, false)
	p, _ := NewProcess(k, 1, hw.GiB)
	v, _ := p.Mmap(4*hw.MiB, mem.VMAAnon)
	if err := p.Mremap(v, 8*hw.MiB); err != nil {
		t.Fatal(err)
	}
	if v.Size != 8*hw.MiB {
		t.Fatalf("size %d", v.Size)
	}
	if p.Calls[SysMremap] != 1 {
		t.Fatal("mremap not counted")
	}
}
