package kernel

import (
	"mklite/internal/mem"
	"mklite/internal/sim"
)

// Costs holds a kernel's service-time constants. They are calibrated to the
// magnitudes the paper's discussion implies (syscall traps in the hundreds
// of nanoseconds, offload round trips in the microseconds, page faults with
// zeroing in the microsecond range) — the shapes of the results depend on
// the ratios, not the absolute values.
type Costs struct {
	// Trap is the user->kernel->user crossing cost of a native syscall.
	Trap sim.Duration
	// OffloadRTT is the extra round-trip cost of an offloaded syscall:
	// IKC message + proxy wakeup for McKernel, thread migration for
	// mOS.
	OffloadRTT sim.Duration
	// FaultBase is the page-fault service cost excluding zeroing.
	FaultBase sim.Duration
	// ZeroGiBps is the memset bandwidth used for page clearing.
	ZeroGiBps float64
	// PTESetup is the cost to install one page-table entry during
	// kernel-driven population (mmap/brk time).
	PTESetup sim.Duration
	// ContextSwitch is the scheduler's task-switch cost.
	ContextSwitch sim.Duration
	// TickOverhead is the per-timer-tick cost on tick-driven kernels.
	TickOverhead sim.Duration
}

// WorkTime converts mechanical memory work (from the mem package) into
// kernel service time: fault servicing, zeroing and page-table population.
// The syscall trap itself is charged by SyscallTime, not here.
func (c Costs) WorkTime(w mem.Work) sim.Duration {
	t := sim.Duration(w.Faults) * c.FaultBase
	t += sim.Duration(w.PagesMapped) * c.PTESetup
	if c.ZeroGiBps > 0 && w.ZeroedBytes > 0 {
		t += sim.DurationOf(float64(w.ZeroedBytes) / (c.ZeroGiBps * float64(1<<30)))
	}
	if c.ZeroGiBps > 0 && w.CopiedBytes > 0 {
		// Page migration copies at memset-like bandwidth.
		t += sim.DurationOf(float64(w.CopiedBytes) / (c.ZeroGiBps * float64(1<<30)))
	}
	return t
}

// SyscallTime returns the expected service time of one invocation given
// its disposition: a trap, plus the offload round trip when the call leaves
// the local kernel. Unsupported calls cost a trap (to fail).
func (c Costs) SyscallTime(d Disposition) sim.Duration {
	switch d {
	case Offloaded:
		return c.Trap + c.OffloadRTT
	default:
		return c.Trap
	}
}

// LinuxCosts are the Linux kernel model's constants: heavier trap path
// (full context tracking), no offload, tick-driven scheduling.
func LinuxCosts() Costs {
	return Costs{
		Trap:          400 * sim.Nanosecond,
		OffloadRTT:    0,
		FaultBase:     1200 * sim.Nanosecond,
		ZeroGiBps:     8,
		PTESetup:      150 * sim.Nanosecond,
		ContextSwitch: 2 * sim.Microsecond,
		TickOverhead:  3 * sim.Microsecond,
	}
}

// McKernelCosts: thin LWK trap, proxy-based offload over IKC (two message
// hops plus proxy wakeup — the more expensive of the two offload designs).
func McKernelCosts() Costs {
	return Costs{
		Trap:          180 * sim.Nanosecond,
		OffloadRTT:    3500 * sim.Nanosecond,
		FaultBase:     900 * sim.Nanosecond,
		ZeroGiBps:     8,
		PTESetup:      120 * sim.Nanosecond,
		ContextSwitch: 1 * sim.Microsecond,
		TickOverhead:  0, // tickless
	}
}

// MOSCosts: thin LWK trap; offload by migrating the issuing thread into
// Linux — cheaper than a proxy round trip because the thread's
// task_struct is directly usable on the Linux side.
func MOSCosts() Costs {
	return Costs{
		Trap:          180 * sim.Nanosecond,
		OffloadRTT:    2200 * sim.Nanosecond,
		FaultBase:     900 * sim.Nanosecond,
		ZeroGiBps:     8,
		PTESetup:      120 * sim.Nanosecond,
		ContextSwitch: 1 * sim.Microsecond,
		TickOverhead:  0, // tickless
	}
}
