package kernel

import (
	"fmt"
	"maps"
	"slices"

	"mklite/internal/hw"
)

// Partition is the division of a node's cores between the OS (Linux) side
// and the application (LWK) side. "For all experiments, we dedicated 64 CPU
// cores to the application and reserved 4 CPU cores for OS activities" —
// DefaultPartition reproduces that split.
type Partition struct {
	Node *hw.NodeSpec
	// OSCores are physical core ids retained by Linux for daemons and
	// offloaded work.
	OSCores []int
	// AppCores are physical core ids running application ranks (the
	// LWK's cores on a multi-kernel; nohz_full cores on plain Linux).
	AppCores []int
}

// DefaultPartition reserves the first osCores cores (where system services
// live — including the notoriously noisy core 0) for the OS and gives the
// rest to the application.
func DefaultPartition(node *hw.NodeSpec, osCores int) (Partition, error) {
	total := node.NumCores()
	if osCores < 0 || osCores >= total {
		return Partition{}, fmt.Errorf("kernel: cannot reserve %d of %d cores for the OS", osCores, total)
	}
	p := Partition{Node: node}
	for c := 0; c < total; c++ {
		if c < osCores {
			p.OSCores = append(p.OSCores, c)
		} else {
			p.AppCores = append(p.AppCores, c)
		}
	}
	return p, nil
}

// Validate checks that the partition is a disjoint cover of existing cores.
func (p Partition) Validate() error {
	if p.Node == nil {
		return fmt.Errorf("kernel: partition without node")
	}
	if len(p.AppCores) == 0 {
		return fmt.Errorf("kernel: partition with no application cores")
	}
	seen := map[int]bool{}
	for _, set := range [][]int{p.OSCores, p.AppCores} {
		for _, c := range set {
			if c < 0 || c >= p.Node.NumCores() {
				return fmt.Errorf("kernel: core %d out of range", c)
			}
			if seen[c] {
				return fmt.Errorf("kernel: core %d in both partitions", c)
			}
			seen[c] = true
		}
	}
	return nil
}

// AppDomains returns the NUMA domains that own at least one application
// core, in id order.
func (p Partition) AppDomains() []int {
	set := map[int]bool{}
	for _, c := range p.AppCores {
		set[p.Node.Cores[c].Domain] = true
	}
	return slices.Sorted(maps.Keys(set))
}

// NearestOSCore returns the OS core whose NUMA domain is closest to the
// given application core — the NUMA-aware LWK-to-Linux mapping both
// kernels use for offload targets (section II-D1).
func (p Partition) NearestOSCore(appCore int) (int, error) {
	if len(p.OSCores) == 0 {
		return 0, fmt.Errorf("kernel: no OS cores in partition")
	}
	appDom := p.Node.Cores[appCore].Domain
	best, bestDist := -1, int(^uint(0)>>1)
	for _, c := range p.OSCores {
		d := p.Node.Distance[appDom][p.Node.Cores[c].Domain]
		if d < bestDist || (d == bestDist && c < best) {
			best, bestDist = c, d
		}
	}
	return best, nil
}
