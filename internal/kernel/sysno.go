// Package kernel holds the framework shared by the three kernel models:
// the system-call inventory and per-kernel dispositions (native, offloaded,
// unsupported), capability flags, service-cost models, CPU/memory
// partitioning, and the scheduler models (cooperative LWK round-robin vs
// tick-driven time sharing).
package kernel

import "fmt"

// Sysno identifies a system call in the modelled ABI (a Linux-x86-64-like
// surface; the numbers are internal, not Linux's).
type Sysno int

// The system-call inventory. It covers everything the LTP-style
// conformance catalogue and the application models exercise.
const (
	// Process management
	SysFork Sysno = iota
	SysVfork
	SysClone
	SysExecve
	SysExit
	SysExitGroup
	SysWait4
	SysWaitid
	SysKill
	SysTgkill
	SysGetpid
	SysGettid
	SysGetppid
	SysSetpgid
	SysGetpgid
	SysSetsid
	SysGetuid
	SysGeteuid
	SysGetgid
	SysGetegid
	SysSetuid
	SysSetgid
	SysPtrace
	SysPrctl
	SysArchPrctl
	SysPersonality

	// Scheduling
	SysSchedYield
	SysSchedSetaffinity
	SysSchedGetaffinity
	SysSchedSetscheduler
	SysSchedGetscheduler
	SysSchedSetparam
	SysSchedGetparam
	SysNanosleep
	SysClockNanosleep
	SysSetpriority
	SysGetpriority

	// Time
	SysClockGettime
	SysClockGetres
	SysGettimeofday
	SysTimes
	SysGetrusage
	SysTimerCreate
	SysTimerSettime
	SysTimerDelete
	SysSetitimer
	SysGetitimer
	SysAlarm

	// Signals
	SysRtSigaction
	SysRtSigprocmask
	SysRtSigreturn
	SysRtSigsuspend
	SysRtSigpending
	SysRtSigtimedwait
	SysRtSigqueueinfo
	SysSigaltstack
	SysPause

	// Memory management
	SysBrk
	SysMmap
	SysMunmap
	SysMprotect
	SysMremap
	SysMadvise
	SysMlock
	SysMunlock
	SysMlockall
	SysMunlockall
	SysMsync
	SysMincore
	SysSetMempolicy
	SysGetMempolicy
	SysMbind
	SysMovePages
	SysMigratePages
	SysShmget
	SysShmat
	SysShmdt
	SysShmctl
	SysMemfdCreate
	SysUserfaultfd

	// Threads & synchronisation
	SysFutex
	SysSetTidAddress
	SysSetRobustList
	SysGetRobustList

	// File I/O
	SysOpen
	SysOpenat
	SysClose
	SysRead
	SysWrite
	SysPread64
	SysPwrite64
	SysReadv
	SysWritev
	SysLseek
	SysStat
	SysFstat
	SysLstat
	SysAccess
	SysDup
	SysDup2
	SysPipe
	SysPipe2
	SysFcntl
	SysIoctl
	SysSelect
	SysPoll
	SysEpollCreate
	SysEpollCtl
	SysEpollWait
	SysEventfd2
	SysGetdents64
	SysGetcwd
	SysChdir
	SysMkdir
	SysRmdir
	SysUnlink
	SysRename
	SysReadlink
	SysChmod
	SysChown
	SysUmask
	SysTruncate
	SysFtruncate
	SysFsync
	SysStatfs
	SysFlock

	// Networking
	SysSocket
	SysBind
	SysConnect
	SysListen
	SysAccept
	SysSendto
	SysRecvfrom
	SysSendmsg
	SysRecvmsg
	SysShutdown
	SysGetsockname
	SysGetpeername
	SysSetsockopt
	SysGetsockopt

	// System information & misc
	SysUname
	SysSysinfo
	SysGetrlimit
	SysSetrlimit
	SysCapget
	SysCapset
	SysSeccomp
	SysGetrandom
	SysPerfEventOpen

	numSysno // sentinel; keep last
)

// NumSyscalls is the size of the inventory.
const NumSyscalls = int(numSysno)

// All returns every syscall number in the inventory, in order.
func All() []Sysno {
	out := make([]Sysno, NumSyscalls)
	for i := range out {
		out[i] = Sysno(i)
	}
	return out
}

// Class groups syscalls by subsystem; kernels make offload decisions per
// class ("implement performance sensitive kernel services in the LWK ...
// rely on Linux for the rest").
type Class int

const (
	ClassProcess Class = iota
	ClassSched
	ClassTime
	ClassSignal
	ClassMemory
	ClassThread
	ClassFile
	ClassNet
	ClassInfo
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassProcess:
		return "process"
	case ClassSched:
		return "sched"
	case ClassTime:
		return "time"
	case ClassSignal:
		return "signal"
	case ClassMemory:
		return "memory"
	case ClassThread:
		return "thread"
	case ClassFile:
		return "file"
	case ClassNet:
		return "net"
	case ClassInfo:
		return "info"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// ClassOf returns the subsystem a syscall belongs to.
func ClassOf(n Sysno) Class {
	switch {
	case n >= SysFork && n <= SysPersonality:
		return ClassProcess
	case n >= SysSchedYield && n <= SysGetpriority:
		return ClassSched
	case n >= SysClockGettime && n <= SysAlarm:
		return ClassTime
	case n >= SysRtSigaction && n <= SysPause:
		return ClassSignal
	case n >= SysBrk && n <= SysUserfaultfd:
		return ClassMemory
	case n >= SysFutex && n <= SysGetRobustList:
		return ClassThread
	case n >= SysOpen && n <= SysFlock:
		return ClassFile
	case n >= SysSocket && n <= SysGetsockopt:
		return ClassNet
	default:
		return ClassInfo
	}
}

// sysnoNames maps a few syscalls that need precise names in output; the
// rest are derived from the constant spelling at String() time.
var sysnoNames = map[Sysno]string{
	SysBrk: "brk", SysMmap: "mmap", SysMunmap: "munmap",
	SysMprotect: "mprotect", SysMremap: "mremap", SysMadvise: "madvise",
	SysFork: "fork", SysVfork: "vfork", SysClone: "clone",
	SysFutex: "futex", SysSchedYield: "sched_yield",
	SysMovePages: "move_pages", SysSetMempolicy: "set_mempolicy",
	SysPtrace: "ptrace", SysPrctl: "prctl", SysIoctl: "ioctl",
	SysRead: "read", SysWrite: "write", SysOpen: "open", SysClose: "close",
}

// String returns a human-readable syscall name.
func (n Sysno) String() string {
	if s, ok := sysnoNames[n]; ok {
		return s
	}
	if n < 0 || n >= numSysno {
		return fmt.Sprintf("sys_%d?", int(n))
	}
	return fmt.Sprintf("sys_%d", int(n))
}

// Valid reports whether n is in the inventory.
func (n Sysno) Valid() bool { return n >= 0 && n < numSysno }
