package kernel

import (
	"mklite/internal/mem"
	"mklite/internal/noise"
	"mklite/internal/sched"
	"mklite/internal/sim"
)

// Type identifies a kernel model.
type Type int

const (
	TypeLinux Type = iota
	TypeMcKernel
	TypeMOS
)

// String names the kernel type as the paper's figures do.
func (t Type) String() string {
	switch t {
	case TypeLinux:
		return "Linux"
	case TypeMcKernel:
		return "McKernel"
	case TypeMOS:
		return "mOS"
	default:
		return "unknown"
	}
}

// Kernel is the behaviour surface the harness, the conformance suite and
// the application models program against. Concrete implementations live in
// internal/linuxos, internal/mckernel and internal/mos.
type Kernel interface {
	Name() string
	Type() Type
	// Caps reports semantic capabilities (conformance-level features).
	Caps() CapSet
	// Table reports per-syscall dispositions.
	Table() *Table
	// Costs reports the service-cost constants.
	Costs() Costs
	// Noise reports the interference profile of application cores.
	Noise() *noise.Profile
	// Partition reports the node's core split.
	Partition() Partition
	// Phys is the physical memory pool this kernel manages for
	// applications.
	Phys() *mem.Phys
	// MapPolicy returns the default placement policy for an
	// application mapping of the given kind.
	MapPolicy(kind mem.VMAKind) mem.Policy
	// NewHeap builds this kernel's heap engine for a process. A
	// non-nil domains list overrides the kernel's placement preference
	// (set_mempolicy on the heap area).
	NewHeap(as *mem.AddrSpace, limit int64, domains []int) (mem.Heap, error)
	// SyscallTime returns the expected service time of one invocation.
	SyscallTime(n Sysno) sim.Duration
	// Sched returns the scheduling policy of application cores.
	Sched() sched.Policy
}

// Base supplies the boilerplate part of a Kernel; concrete kernels embed
// it and add their memory behaviour.
type Base struct {
	KName  string
	KType  Type
	KCaps  CapSet
	KTable *Table
	KCosts Costs
	KNoise *noise.Profile
	KPart  Partition
	KPhys  *mem.Phys
	KSched sched.Policy
}

// Name implements Kernel.
func (b *Base) Name() string { return b.KName }

// Type implements Kernel.
func (b *Base) Type() Type { return b.KType }

// Caps implements Kernel.
func (b *Base) Caps() CapSet { return b.KCaps }

// Table implements Kernel.
func (b *Base) Table() *Table { return b.KTable }

// Costs implements Kernel.
func (b *Base) Costs() Costs { return b.KCosts }

// Noise implements Kernel.
func (b *Base) Noise() *noise.Profile { return b.KNoise }

// Partition implements Kernel.
func (b *Base) Partition() Partition { return b.KPart }

// Phys implements Kernel.
func (b *Base) Phys() *mem.Phys { return b.KPhys }

// Sched implements Kernel.
func (b *Base) Sched() sched.Policy { return b.KSched }

// SyscallTime implements Kernel: trap plus offload round trip per the
// disposition table.
func (b *Base) SyscallTime(n Sysno) sim.Duration {
	return b.KCosts.SyscallTime(b.KTable.Get(n))
}
