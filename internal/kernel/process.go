package kernel

import (
	"fmt"

	"mklite/internal/mem"
	"mklite/internal/sim"
	"mklite/internal/trace"
)

// Process is a simulated application process: an address space, a heap,
// a file-descriptor table (local or proxy-held) and an accumulated
// system-call time. Its methods execute syscalls against the owning
// kernel's dispatch surface, charging the appropriate trap/offload and
// memory-work costs — this is the layer a workload trace drives when it
// wants per-call fidelity rather than the cluster harness's aggregates.
type Process struct {
	PID  int
	Kern Kernel
	AS   *mem.AddrSpace
	Heap mem.Heap

	// fds is nil when the descriptor table is proxy-held.
	fds *FDTable
	// Proxy is the Linux-side proxy process (McKernel model):
	// descriptor state lives there and every file operation pays the
	// offload round trip. "For every single process running on McKernel
	// there is a process spawned on Linux, called the proxy process."
	Proxy *ProxyProcess

	// SyscallTime accumulates the kernel-side time of every call made
	// through this process.
	SyscallTime sim.Duration
	// Calls counts syscall invocations by number.
	Calls map[Sysno]int

	// sink observes dispatch: per-syscall counts plus offload round-trip
	// attribution. Nil when tracing is off.
	sink *trace.Sink
}

// ProxyProcess is the Linux-side agent of an LWK process.
type ProxyProcess struct {
	PID int
	FDs *FDTable
}

// NewProcess builds a process on the given kernel. Kernels whose file
// class is offloaded get a proxy-held descriptor table.
func NewProcess(k Kernel, pid int, heapLimit int64) (*Process, error) {
	return NewProcessWith(k, pid, heapLimit, nil)
}

// NewProcessWith is NewProcess with a trace sink attached before the heap is
// created, so heap-engine and address-space counters cover the process's
// whole lifetime. A nil sink gives exactly NewProcess's behaviour.
func NewProcessWith(k Kernel, pid int, heapLimit int64, sink *trace.Sink) (*Process, error) {
	as := mem.NewAddrSpace(k.Phys())
	as.SetSink(sink)
	h, err := k.NewHeap(as, heapLimit, nil)
	if err != nil {
		return nil, fmt.Errorf("kernel: process %d heap: %w", pid, err)
	}
	p := &Process{PID: pid, Kern: k, AS: as, Heap: h, Calls: map[Sysno]int{}, sink: sink}
	if k.Table().Get(SysOpen) == Offloaded {
		p.Proxy = &ProxyProcess{PID: pid + 100000, FDs: NewFDTable()}
	} else {
		p.fds = NewFDTable()
	}
	return p, nil
}

// table returns the descriptor table wherever it lives.
func (p *Process) table() *FDTable {
	if p.Proxy != nil {
		return p.Proxy.FDs
	}
	return p.fds
}

// sysCounterName interns the "syscall.<name>" counter names once per
// process image, so dispatch accounting never concatenates strings. The
// table is built at init and read-only afterwards, which keeps it safe to
// share across par worker closures (unlike any mutable trace state).
var sysCounterName = func() [numSysno]string {
	var names [numSysno]string
	for n := Sysno(0); n < numSysno; n++ {
		names[n] = "syscall." + n.String()
	}
	return names
}()

// charge accounts one syscall invocation plus extra kernel work. With a
// counting sink attached it also records the dispatch — per-syscall counts
// and, for offloaded calls, the IKC/migration round trip the dispatch paid —
// so the trace's view can never drift from SyscallTime.
func (p *Process) charge(n Sysno, extra sim.Duration) {
	p.SyscallTime += p.Kern.SyscallTime(n) + extra
	p.Calls[n]++
	if p.sink.Counting() {
		p.sink.Count(sysCounterName[n], 1)
		switch p.Kern.Table().Get(n) {
		case Offloaded:
			p.sink.CountKey(trace.KeyOffloadCalls, 1)
			p.sink.CountKey(trace.KeyOffloadRTTNs, int64(p.Kern.Costs().OffloadRTT))
		case Unsupported:
			p.sink.CountKey(trace.KeySyscallEnosys, 1)
		}
	}
	if p.sink.Observing() {
		p.sink.Observe("syscall.cost_ns", int64(p.Kern.SyscallTime(n)+extra))
	}
}

// errUnsupported builds the ENOSYS-style error for a refused call.
func (p *Process) errUnsupported(n Sysno) error {
	return fmt.Errorf("kernel: ENOSYS: %v unsupported on %s", n, p.Kern.Name())
}

// dispatchable charges the trap and reports whether the call proceeds.
func (p *Process) dispatchable(n Sysno) error {
	if p.Kern.Table().Get(n) == Unsupported {
		p.charge(n, 0)
		return p.errUnsupported(n)
	}
	return nil
}

// Open opens a path. In the proxy model the descriptor is allocated on the
// Linux side and merely returned to the LWK.
func (p *Process) Open(path string, flags int) (int, error) {
	if err := p.dispatchable(SysOpen); err != nil {
		return -1, err
	}
	p.charge(SysOpen, 0)
	return p.table().Open(path, flags), nil
}

// Close closes a descriptor.
func (p *Process) Close(fd int) error {
	if err := p.dispatchable(SysClose); err != nil {
		return err
	}
	p.charge(SysClose, 0)
	return p.table().Close(fd)
}

// Dup duplicates a descriptor.
func (p *Process) Dup(fd int) (int, error) {
	if err := p.dispatchable(SysDup); err != nil {
		return -1, err
	}
	p.charge(SysDup, 0)
	return p.table().Dup(fd)
}

// Read advances the file position by n bytes and charges the call.
func (p *Process) Read(fd int, n int64) (int64, error) {
	if err := p.dispatchable(SysRead); err != nil {
		return 0, err
	}
	p.charge(SysRead, 0)
	f, err := p.table().Get(fd)
	if err != nil {
		return 0, err
	}
	f.Pos += n
	return n, nil
}

// Write advances the file position by n bytes and charges the call.
func (p *Process) Write(fd int, n int64) (int64, error) {
	if err := p.dispatchable(SysWrite); err != nil {
		return 0, err
	}
	p.charge(SysWrite, 0)
	f, err := p.table().Get(fd)
	if err != nil {
		return 0, err
	}
	f.Pos += n
	return n, nil
}

// Mmap maps anonymous memory with the kernel's default policy, charging
// the trap plus page-table population work.
func (p *Process) Mmap(size int64, kind mem.VMAKind) (*mem.VMA, error) {
	if err := p.dispatchable(SysMmap); err != nil {
		return nil, err
	}
	v, err := p.AS.Map(size, kind, p.Kern.MapPolicy(kind))
	if err != nil {
		p.charge(SysMmap, 0)
		return nil, err
	}
	w := mem.Work{PagesMapped: int64(len(v.Backings)), ZeroedBytes: v.Populated}
	p.charge(SysMmap, p.Kern.Costs().WorkTime(w))
	return v, nil
}

// Munmap unmaps a range of an area.
func (p *Process) Munmap(v *mem.VMA, offset, length int64) error {
	if err := p.dispatchable(SysMunmap); err != nil {
		return err
	}
	p.charge(SysMunmap, 0)
	return p.AS.UnmapRange(v, offset, length)
}

// Mprotect changes a range's protection (splitting the VMA as needed).
func (p *Process) Mprotect(v *mem.VMA, offset, length int64, prot mem.Prot) (*mem.VMA, error) {
	if err := p.dispatchable(SysMprotect); err != nil {
		return nil, err
	}
	p.charge(SysMprotect, 0)
	return p.AS.Protect(v, offset, length, prot)
}

// Sbrk adjusts the heap, charging the kernel work the heap engine did.
func (p *Process) Sbrk(delta int64) (int64, error) {
	if err := p.dispatchable(SysBrk); err != nil {
		return 0, err
	}
	size, w, err := p.Heap.Sbrk(delta)
	p.charge(SysBrk, p.Kern.Costs().WorkTime(w))
	return size, err
}

// MovePages migrates an area's pages to the given NUMA domains
// (move_pages / mbind semantics). Kernels without the capability refuse.
func (p *Process) MovePages(v *mem.VMA, domains []int) (mem.Work, error) {
	if err := p.dispatchable(SysMovePages); err != nil {
		return mem.Work{}, err
	}
	w, err := p.AS.Migrate(v, domains)
	p.charge(SysMovePages, p.Kern.Costs().WorkTime(w))
	return w, err
}

// SetMempolicy re-targets the default placement for future mappings; the
// model applies it by migrating an existing area when one is given
// (matching how the applications use it at startup).
func (p *Process) SetMempolicy(v *mem.VMA, domains []int) (mem.Work, error) {
	if err := p.dispatchable(SysSetMempolicy); err != nil {
		return mem.Work{}, err
	}
	if v == nil {
		p.charge(SysSetMempolicy, 0)
		return mem.Work{}, nil
	}
	w, err := p.AS.Migrate(v, domains)
	p.charge(SysSetMempolicy, p.Kern.Costs().WorkTime(w))
	return w, err
}

// SchedYield yields the CPU (possibly hijacked into a no-op by McKernel's
// --disable-sched-yield, in which case it costs nothing).
func (p *Process) SchedYield() {
	p.charge(SysSchedYield, 0)
}

// Getpid returns the process id.
func (p *Process) Getpid() int {
	p.charge(SysGetpid, 0)
	return p.PID
}

// OpenFiles returns the number of open descriptors, wherever the table
// lives.
func (p *Process) OpenFiles() int { return p.table().Count() }

// Exit releases the process's memory.
func (p *Process) Exit() {
	p.charge(SysExitGroup, 0)
	p.AS.ReleaseAll()
}

// Mremap resizes an existing mapping (grow in place or shrink), charging
// the population/release work.
func (p *Process) Mremap(v *mem.VMA, newSize int64) error {
	if err := p.dispatchable(SysMremap); err != nil {
		return err
	}
	w, err := p.AS.Remap(v, newSize)
	p.charge(SysMremap, p.Kern.Costs().WorkTime(w))
	return err
}
