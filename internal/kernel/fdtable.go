package kernel

import "fmt"

// File is one open file description.
type File struct {
	Path  string
	Pos   int64
	Flags int
}

// FDTable is a process's file-descriptor table. On Linux and mOS it lives
// with the process; in McKernel's proxy model it lives in the Linux-side
// proxy process — "The actual set of open files; i.e., file descriptor
// table, file positions, etc., are tracked by the Linux kernel" — and the
// LWK merely forwards the integer.
type FDTable struct {
	next int
	open map[int]*File
}

// NewFDTable returns a table with stdin/stdout/stderr pre-opened.
func NewFDTable() *FDTable {
	t := &FDTable{next: 3, open: map[int]*File{
		0: {Path: "/dev/stdin"},
		1: {Path: "/dev/stdout"},
		2: {Path: "/dev/stderr"},
	}}
	return t
}

// Open allocates the lowest free descriptor for path.
func (t *FDTable) Open(path string, flags int) int {
	fd := t.lowestFree()
	t.open[fd] = &File{Path: path, Flags: flags}
	return fd
}

func (t *FDTable) lowestFree() int {
	for fd := 0; ; fd++ {
		if _, used := t.open[fd]; !used {
			return fd
		}
	}
}

// Get returns the file behind a descriptor.
func (t *FDTable) Get(fd int) (*File, error) {
	f, ok := t.open[fd]
	if !ok {
		return nil, fmt.Errorf("kernel: EBADF: fd %d not open", fd)
	}
	return f, nil
}

// Close releases the descriptor.
func (t *FDTable) Close(fd int) error {
	if _, ok := t.open[fd]; !ok {
		return fmt.Errorf("kernel: EBADF: fd %d not open", fd)
	}
	delete(t.open, fd)
	return nil
}

// Dup duplicates fd to the lowest free descriptor, sharing the file
// description (POSIX dup semantics: shared position).
func (t *FDTable) Dup(fd int) (int, error) {
	f, err := t.Get(fd)
	if err != nil {
		return -1, err
	}
	nfd := t.lowestFree()
	t.open[nfd] = f
	return nfd, nil
}

// Dup2 duplicates fd onto target, closing target first if open.
func (t *FDTable) Dup2(fd, target int) (int, error) {
	f, err := t.Get(fd)
	if err != nil {
		return -1, err
	}
	if fd == target {
		return target, nil
	}
	t.open[target] = f
	return target, nil
}

// Count returns the number of open descriptors.
func (t *FDTable) Count() int { return len(t.open) }
