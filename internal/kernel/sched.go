package kernel

import (
	"mklite/internal/sched"
	"mklite/internal/sim"
)

// NewPolicy builds a scheduling policy of the given kind over this kernel's
// cost constants, with the standard quantum and tick period filled in by the
// sched package (per-kind defaults). Kernel boots call this to turn a
// configured sched.Kind into the policy behind Kernel.Sched().
func NewPolicy(kind sched.Kind, costs Costs) (sched.Policy, error) {
	return sched.New(kind, sched.Params{
		ContextSwitch: costs.ContextSwitch,
		TickOverhead:  costs.TickOverhead,
	})
}

// SchedConfig describes an explicitly-configured single-core scheduler for
// the batch schedule microbenchmarks (RunSchedule). Both the paper's LWKs
// "employ a round-robin, non-preemptive, co-operative scheduler"; Linux
// time-shares with a periodic tick; McKernel optionally enables time sharing
// "only on specific CPU cores". Kernel models themselves carry a pluggable
// sched.Policy instead (see NewPolicy and internal/sched).
type SchedConfig struct {
	// Preemptive enables timeslice-driven round robin; otherwise tasks
	// run to completion in arrival order.
	Preemptive bool
	// Timeslice is the preemption quantum (preemptive only).
	Timeslice sim.Duration
	// ContextSwitch is charged at every task switch.
	ContextSwitch sim.Duration
	// TickPeriod/TickOverhead model the scheduler tick: on tick-driven
	// kernels every TickPeriod of busy time costs TickOverhead.
	TickPeriod   sim.Duration
	TickOverhead sim.Duration
}

// CooperativeLWK returns the LWK scheduler configuration.
func CooperativeLWK(costs Costs) SchedConfig {
	return SchedConfig{
		Preemptive:    false,
		ContextSwitch: costs.ContextSwitch,
	}
}

// TimeSharing returns a tick-driven preemptive configuration (Linux, or
// McKernel's optional time-sharing cores).
func TimeSharing(costs Costs, timeslice, tickPeriod sim.Duration) SchedConfig {
	return SchedConfig{
		Preemptive:    true,
		Timeslice:     timeslice,
		ContextSwitch: costs.ContextSwitch,
		TickPeriod:    tickPeriod,
		TickOverhead:  costs.TickOverhead,
	}
}

// SchedResult reports a schedule simulation.
type SchedResult struct {
	// Completion[i] is the virtual time task i finished.
	Completion []sim.Duration
	// Makespan is the completion time of the last task.
	Makespan sim.Duration
	// Switches is the number of context switches taken.
	Switches int
	// Overhead is the total non-application time. It decomposes exactly:
	// Overhead == Switches·ContextSwitch + TickTime.
	Overhead sim.Duration
	// TickTime is the tick-charge portion of Overhead.
	TickTime sim.Duration
}

// RunSchedule simulates running the given tasks (pure compute demands) on
// one core under the configuration and returns per-task completion times.
// Deterministic: no randomness is involved.
//
// Tick accounting covers all busy wall time: the tick fires during a context
// switch exactly as it does during a compute slice, so switch time is
// stretched by the same TickOverhead/TickPeriod rate. (The model once
// stretched only compute slices, silently exempting switch time from the
// tick; see the regression test TestRunScheduleTickChargesSwitchTime.)
func RunSchedule(tasks []sim.Duration, cfg SchedConfig) SchedResult {
	kind := sched.Coop
	if cfg.Preemptive {
		kind = sched.CFS
	}
	r := sched.Run(tasks, kind, sched.Params{
		Quantum:       cfg.Timeslice,
		ContextSwitch: cfg.ContextSwitch,
		TickPeriod:    cfg.TickPeriod,
		TickOverhead:  cfg.TickOverhead,
	}, 0)
	return SchedResult{
		Completion: r.Completion,
		Makespan:   r.Makespan,
		Switches:   r.Switches,
		Overhead:   r.Overhead,
		TickTime:   r.TickTime,
	}
}
