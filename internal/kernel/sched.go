package kernel

import "mklite/internal/sim"

// SchedConfig describes a single-core scheduler model. Both the paper's
// LWKs "employ a round-robin, non-preemptive, co-operative scheduler";
// Linux time-shares with a periodic tick; McKernel optionally enables time
// sharing "only on specific CPU cores".
type SchedConfig struct {
	// Preemptive enables timeslice-driven round robin; otherwise tasks
	// run to completion in arrival order.
	Preemptive bool
	// Timeslice is the preemption quantum (preemptive only).
	Timeslice sim.Duration
	// ContextSwitch is charged at every task switch.
	ContextSwitch sim.Duration
	// TickPeriod/TickOverhead model the scheduler tick: on tick-driven
	// kernels every running task loses TickOverhead every TickPeriod.
	TickPeriod   sim.Duration
	TickOverhead sim.Duration
}

// CooperativeLWK returns the LWK scheduler configuration.
func CooperativeLWK(costs Costs) SchedConfig {
	return SchedConfig{
		Preemptive:    false,
		ContextSwitch: costs.ContextSwitch,
	}
}

// TimeSharing returns a tick-driven preemptive configuration (Linux, or
// McKernel's optional time-sharing cores).
func TimeSharing(costs Costs, timeslice, tickPeriod sim.Duration) SchedConfig {
	return SchedConfig{
		Preemptive:    true,
		Timeslice:     timeslice,
		ContextSwitch: costs.ContextSwitch,
		TickPeriod:    tickPeriod,
		TickOverhead:  costs.TickOverhead,
	}
}

// SchedResult reports a schedule simulation.
type SchedResult struct {
	// Completion[i] is the virtual time task i finished.
	Completion []sim.Duration
	// Makespan is the completion time of the last task.
	Makespan sim.Duration
	// Switches is the number of context switches taken.
	Switches int
	// Overhead is the total non-application time (switches + ticks).
	Overhead sim.Duration
}

// RunSchedule simulates running the given tasks (pure compute demands) on
// one core under the configuration and returns per-task completion times.
// Deterministic: no randomness is involved.
func RunSchedule(tasks []sim.Duration, cfg SchedConfig) SchedResult {
	res := SchedResult{Completion: make([]sim.Duration, len(tasks))}
	if len(tasks) == 0 {
		return res
	}

	if !cfg.Preemptive {
		var now sim.Duration
		for i, w := range tasks {
			if i > 0 {
				now += cfg.ContextSwitch
				res.Switches++
				res.Overhead += cfg.ContextSwitch
			}
			now += w
			res.Completion[i] = now
		}
		res.Makespan = now
		return res
	}

	// Preemptive round robin with tick accounting. Tick overhead is
	// folded in as a rate: every TickPeriod of wall time costs
	// TickOverhead, stretching compute proportionally.
	stretch := 1.0
	if cfg.TickPeriod > 0 && cfg.TickOverhead > 0 {
		stretch = 1 + float64(cfg.TickOverhead)/float64(cfg.TickPeriod)
	}
	remaining := make([]sim.Duration, len(tasks))
	copy(remaining, tasks)
	live := len(tasks)
	var now sim.Duration
	cur := -1
	for live > 0 {
		progressed := false
		for i := range remaining {
			if remaining[i] <= 0 {
				continue
			}
			if cur != i && cur != -1 {
				now += cfg.ContextSwitch
				res.Switches++
				res.Overhead += cfg.ContextSwitch
			}
			cur = i
			slice := cfg.Timeslice
			if slice <= 0 || slice > remaining[i] {
				slice = remaining[i]
			}
			wall := slice.Scale(stretch)
			res.Overhead += wall - slice
			now += wall
			remaining[i] -= slice
			if remaining[i] <= 0 {
				res.Completion[i] = now
				live--
			}
			progressed = true
		}
		if !progressed {
			break
		}
	}
	res.Makespan = now
	return res
}
