package kernel

import "fmt"

// Disposition says how a kernel handles a system call.
type Disposition int

const (
	// Native: serviced in the local kernel.
	Native Disposition = iota
	// Offloaded: forwarded to the Linux side of the multi-kernel (proxy
	// IKC round trip for McKernel, thread migration for mOS). The call
	// works; it just costs a kernel crossing.
	Offloaded
	// Unsupported: the kernel refuses the call.
	Unsupported
)

// String names the disposition.
func (d Disposition) String() string {
	switch d {
	case Native:
		return "native"
	case Offloaded:
		return "offloaded"
	case Unsupported:
		return "unsupported"
	default:
		return fmt.Sprintf("Disposition(%d)", int(d))
	}
}

// Table maps every syscall to its disposition for one kernel.
type Table struct {
	def Disposition
	d   map[Sysno]Disposition
}

// NewTable creates a table whose unlisted syscalls get the given default.
func NewTable(def Disposition) *Table {
	return &Table{def: def, d: make(map[Sysno]Disposition)}
}

// Set records the disposition of one syscall.
func (t *Table) Set(n Sysno, d Disposition) *Table {
	t.d[n] = d
	return t
}

// SetAll records the disposition for a list of syscalls.
func (t *Table) SetAll(ns []Sysno, d Disposition) *Table {
	for _, n := range ns {
		t.d[n] = d
	}
	return t
}

// SetClass records the disposition for every syscall in a class.
func (t *Table) SetClass(c Class, d Disposition) *Table {
	for _, n := range All() {
		if ClassOf(n) == c {
			t.d[n] = d
		}
	}
	return t
}

// Get returns the disposition of a syscall.
func (t *Table) Get(n Sysno) Disposition {
	if d, ok := t.d[n]; ok {
		return d
	}
	return t.def
}

// Count returns how many syscalls in the inventory have the given
// disposition.
func (t *Table) Count(d Disposition) int {
	c := 0
	for _, n := range All() {
		if t.Get(n) == d {
			c++
		}
	}
	return c
}

// Capability is a feature flag the conformance suite and the harness query.
// Capabilities capture the semantic differences the paper reports that are
// finer-grained than per-syscall dispositions.
type Capability int

const (
	// CapFullFork: fork() fully implemented. "In mOS, fork() is not
	// fully implemented yet which results in many failures before the
	// tests of the targeted system calls even begin."
	CapFullFork Capability = iota
	// CapPtraceFull: all ptrace request variants work. mOS reuses the
	// Linux implementation but "four of the five ptrace experiments
	// fail" in its current state.
	CapPtraceFull
	// CapBrkShrinkReleases: shrinking the heap returns memory and
	// subsequent access faults. LWK HPC heaps retain memory, so the LTP
	// test expecting a fault fails.
	CapBrkShrinkReleases
	// CapMovePages: move_pages() implemented (work in progress in
	// McKernel: eleven LTP variants fail).
	CapMovePages
	// CapExoticCloneFlags: error semantics for unusual clone() flag
	// combinations "which actual applications never seem to use".
	CapExoticCloneFlags
	// CapLinuxMisc: the long tail of Linux-specific facilities
	// (perf_event_open, userfaultfd, seccomp, memfd_create,
	// migrate_pages, mlockall edge cases) that McKernel intentionally
	// does not support for HPC workloads.
	CapLinuxMisc
	// CapDemandPagingFallback: automatic fallback to demand paging for
	// best-effort NUMA allocation (McKernel; section II-D3).
	CapDemandPagingFallback
	// CapTimeSharing: optional time-sharing on designated cores
	// (McKernel).
	CapTimeSharing
	// CapToolsOnLinuxSide: debuggers/profilers can run on Linux cores
	// against LWK processes (mOS; McKernel needs them on LWK cores).
	CapToolsOnLinuxSide
	// CapEarlyBootMemory: the kernel can grab large contiguous physical
	// blocks before Linux places unmovable structures (mOS yes,
	// McKernel no).
	CapEarlyBootMemory
	// CapProcSysFull: complete /proc and /sys surface (Linux and —
	// mostly reusing Linux — mOS; McKernel reimplements a subset).
	CapProcSysFull
)

// CapSet is a set of capabilities.
type CapSet map[Capability]bool

// Has reports membership; missing entries are false.
func (s CapSet) Has(c Capability) bool { return s[c] }

// With returns a copy with the given capabilities added.
func (s CapSet) With(caps ...Capability) CapSet {
	out := make(CapSet, len(s)+len(caps))
	for k, v := range s {
		out[k] = v
	}
	for _, c := range caps {
		out[c] = true
	}
	return out
}

// Without returns a copy with the given capabilities removed.
func (s CapSet) Without(caps ...Capability) CapSet {
	out := make(CapSet, len(s))
	for k, v := range s {
		out[k] = v
	}
	for _, c := range caps {
		delete(out, c)
	}
	return out
}
