package noise

import (
	"mklite/internal/sim"
	"mklite/internal/stats"
	"mklite/internal/trace"
)

// FWQResult holds the samples of a fixed-work-quantum run: the virtual time
// each iteration of a constant-work loop took on a noisy core.
type FWQResult struct {
	Quantum sim.Duration
	Samples []float64 // iteration times in microseconds
}

// RunFWQ executes the Fixed Work Quanta benchmark: iters iterations of a
// loop whose pure compute time is quantum, on the given core under the
// given noise profile. Interference stretches individual iterations.
func RunFWQ(rng *sim.RNG, p *Profile, core int, quantum sim.Duration, iters int) FWQResult {
	return RunFWQTo(rng, p, core, quantum, iters, nil)
}

// RunFWQTo is RunFWQ with per-source detour attribution into a trace sink
// (nil sink = exactly RunFWQ, same draws, same samples).
func RunFWQTo(rng *sim.RNG, p *Profile, core int, quantum sim.Duration, iters int, sink *trace.Sink) FWQResult {
	res := FWQResult{Quantum: quantum, Samples: make([]float64, iters)}
	for i := 0; i < iters; i++ {
		detour := p.DetourInTo(rng, core, quantum, sink)
		if detour > 0 {
			sink.CountKey(trace.KeyNoiseDetouredIters, 1)
			// The detour distribution only has entries for iterations
			// that were actually detoured — an undisturbed iteration
			// has no detour event, and padding the histogram with
			// zeros would hide the tail shape the paper plots.
			sink.Observe("fwq.detour_ns", int64(detour))
		}
		sink.CountKey(trace.KeyNoiseDetourNs, int64(detour))
		sink.Observe("fwq.iteration_ns", int64(quantum+detour))
		res.Samples[i] = (quantum + detour).Micros()
	}
	return res
}

// Summary returns the sample summary in microseconds.
func (r FWQResult) Summary() stats.Summary { return stats.Summarize(r.Samples) }

// NoisePercent is the classic FWQ metric: mean slowdown over the minimum
// observed iteration, in percent. A perfectly quiet system scores 0.
func (r FWQResult) NoisePercent() float64 {
	s := r.Summary()
	if s.Min == 0 {
		return 0
	}
	return (s.Mean - s.Min) / s.Min * 100
}

// MaxStretchPercent reports the worst single iteration relative to the
// minimum — the quantity collectives amplify.
func (r FWQResult) MaxStretchPercent() float64 {
	s := r.Summary()
	if s.Min == 0 {
		return 0
	}
	return (s.Max - s.Min) / s.Min * 100
}

// FTQResult holds fixed-time-quantum samples: work completed per fixed
// window, normalised to the ideal.
type FTQResult struct {
	Window  sim.Duration
	Samples []float64 // fraction of the window spent on application work
}

// RunFTQ executes the Fixed Time Quanta benchmark: for iters windows of the
// given length, measure the fraction of each window available to the
// application after interference.
func RunFTQ(rng *sim.RNG, p *Profile, core int, window sim.Duration, iters int) FTQResult {
	res := FTQResult{Window: window, Samples: make([]float64, iters)}
	for i := 0; i < iters; i++ {
		stolen := p.DetourIn(rng, core, window)
		if stolen > window {
			stolen = window
		}
		res.Samples[i] = float64(window-stolen) / float64(window)
	}
	return res
}

// Summary returns the per-window utilisation summary (1.0 = noiseless).
func (r FTQResult) Summary() stats.Summary { return stats.Summarize(r.Samples) }
