package noise

import (
	"math"
	"testing"

	"mklite/internal/sim"
	"mklite/internal/stats"
)

func TestNormInvRoundTrip(t *testing.T) {
	// normInv must invert the empirical normal CDF: check known
	// quantiles.
	cases := []struct{ p, z float64 }{
		{0.5, 0}, {0.8413, 1.0}, {0.1587, -1.0}, {0.9772, 2.0}, {0.99865, 3.0},
	}
	for _, c := range cases {
		if got := normInv(c.p); math.Abs(got-c.z) > 0.01 {
			t.Fatalf("normInv(%v) = %v, want %v", c.p, got, c.z)
		}
	}
	if !math.IsInf(normInv(0), -1) || !math.IsInf(normInv(1), 1) {
		t.Fatal("edge values")
	}
}

func TestNormInvAgainstSampler(t *testing.T) {
	rng := sim.NewRNG(17)
	var xs []float64
	for i := 0; i < 100000; i++ {
		xs = append(xs, rng.NormFloat64())
	}
	for _, p := range []float64{10, 50, 90, 99} {
		want := normInv(p / 100)
		got := stats.Percentile(xs, p)
		if math.Abs(got-want) > 0.05 {
			t.Fatalf("P%v: sampler %v vs normInv %v", p, got, want)
		}
	}
}

func TestMaxDetourZeroCases(t *testing.T) {
	p := LinuxTuned()
	rng := sim.NewRNG(1)
	if MaxDetour(rng, p, 0, sim.Millisecond) != 0 {
		t.Fatal("zero ranks")
	}
	if MaxDetour(rng, p, 64, 0) != 0 {
		t.Fatal("zero window")
	}
	quiet := &Profile{Name: "quiet"}
	if MaxDetour(rng, quiet, 1<<20, sim.Second) != 0 {
		t.Fatal("quiet profile")
	}
}

func TestMaxDetourGrowsWithRanks(t *testing.T) {
	// The amplification law: median max detour must grow as rank count
	// grows — this is the paper's scaling cliff in miniature.
	p := LinuxTuned()
	rng := sim.NewRNG(2)
	window := 10 * sim.Millisecond
	med := func(ranks int) float64 {
		var xs []float64
		for i := 0; i < 200; i++ {
			xs = append(xs, float64(MaxDetour(rng, p, ranks, window)))
		}
		return stats.Median(xs)
	}
	m64, m4k, m128k := med(64), med(4096), med(131072)
	if !(m64 < m4k && m4k < m128k) {
		t.Fatalf("max detour not growing: %v %v %v", m64, m4k, m128k)
	}
}

func TestMaxDetourLWKStaysTiny(t *testing.T) {
	p := McKernelProfile()
	rng := sim.NewRNG(3)
	window := 10 * sim.Millisecond
	var worst sim.Duration
	for i := 0; i < 100; i++ {
		if d := MaxDetour(rng, p, 131072, window); d > worst {
			worst = d
		}
	}
	// Even over 128k LWK ranks the worst detour stays below 50us —
	// no tail to amplify.
	if worst > 50*sim.Microsecond {
		t.Fatalf("LWK max detour %v too large", worst)
	}
}

func TestMaxDetourApproxConsistentWithExact(t *testing.T) {
	// At the exact/approx boundary the two paths must agree in order of
	// magnitude (medians within 4x).
	p := LinuxTuned()
	window := 20 * sim.Millisecond
	medFor := func(ranks int, seed uint64) float64 {
		rng := sim.NewRNG(seed)
		var xs []float64
		for i := 0; i < 300; i++ {
			xs = append(xs, float64(MaxDetour(rng, p, ranks, window)))
		}
		return stats.Median(xs)
	}
	exact := medFor(1024, 4)  // exact path
	approx := medFor(1025, 5) // approximation path
	ratio := approx / exact
	if ratio < 0.25 || ratio > 4 {
		t.Fatalf("exact %v vs approx %v: ratio %v", exact, approx, ratio)
	}
}

func TestMaxDetourCoreFilteredSourceExcluded(t *testing.T) {
	// A core-0-only source must not contribute to application-core
	// maxima on the approximation path.
	p := &Profile{Sources: []Source{{
		Name:       "core0-only",
		Period:     sim.Millisecond,
		Mean:       sim.Millisecond,
		CoreFilter: func(core int) bool { return core == 0 },
	}}}
	rng := sim.NewRNG(6)
	if d := MaxDetour(rng, p, 1<<20, 10*sim.Millisecond); d != 0 {
		t.Fatalf("filtered source leaked %v", d)
	}
}

func TestMaxDetourAtLeastSingleRankDetour(t *testing.T) {
	// Statistically, max over many ranks dominates a single rank's
	// detour: compare means.
	p := LinuxTuned()
	rng := sim.NewRNG(7)
	window := 10 * sim.Millisecond
	var one, many float64
	const n = 300
	for i := 0; i < n; i++ {
		one += float64(p.DetourIn(rng, 1, window))
		many += float64(MaxDetour(rng, p, 65536, window))
	}
	if many <= one {
		t.Fatalf("max over 64k ranks (%v) not above single rank (%v)", many/n, one/n)
	}
}
