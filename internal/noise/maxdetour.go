package noise

import (
	"math"

	"mklite/internal/sim"
)

// exactMaxRanks bounds the per-rank exact sampling path; beyond it the
// order-statistic approximation is used (sampling 131,072 ranks per
// timestep would dominate the harness's own runtime).
const exactMaxRanks = 1024

// MaxDetour samples the worst per-rank interference over `ranks` ranks
// during a window — the quantity a globally synchronising collective
// (MPI_Allreduce, barrier) absorbs every round. This is the mechanism of
// the paper's Linux cliffs: each rank's detour distribution is unchanged as
// the system grows, but the *maximum* over 131,072 ranks climbs into the
// heavy tail.
//
// For small rank counts the maximum is sampled exactly (per-rank). For
// large counts it uses the order-statistic identity max(X_1..X_K) ~
// F^{-1}(U^{1/K}): one inverse-CDF draw per source component instead of K
// samples. Per-source maxima are summed, a slight over-estimate of the true
// max-of-sums that is conservative in the same direction for every kernel.
func MaxDetour(rng *sim.RNG, p *Profile, ranks int, window sim.Duration) sim.Duration {
	d, _ := MaxDetourRank(rng, p, ranks, window)
	return d
}

// MaxDetourRank is MaxDetour that also reports which rank contributed the
// maximum — the straggler a collective waited for. On the exact per-rank
// path the argmax is known; on the order-statistic path individual ranks are
// never materialised, so the rank is -1 (source-level attribution only).
// The sampling sequence is identical to MaxDetour's, so callers may switch
// between them without perturbing the run.
func MaxDetourRank(rng *sim.RNG, p *Profile, ranks int, window sim.Duration) (sim.Duration, int) {
	if ranks <= 0 || window <= 0 {
		return 0, -1
	}
	if ranks <= exactMaxRanks {
		var max sim.Duration
		argmax := -1
		for r := 0; r < ranks; r++ {
			// Core index 1: a generic application core (core 0 is
			// partitioned away from applications in all three
			// kernels' deployments).
			if d := p.DetourIn(rng, 1, window); d > max {
				max = d
				argmax = r
			}
		}
		return max, argmax
	}
	var total sim.Duration
	for i := range p.Sources {
		//mklint:ignore seedflow the exact branch above returns first, so only one of the two loops ever draws in a given call
		total += sourceMax(rng, &p.Sources[i], ranks, window)
	}
	return total, -1
}

// sourceMax approximates the maximum single-rank detour from one source
// across `ranks` ranks.
func sourceMax(rng *sim.RNG, s *Source, ranks int, window sim.Duration) sim.Duration {
	if s.Period <= 0 || s.Mean <= 0 {
		return 0
	}
	if s.CoreFilter != nil && !s.CoreFilter(1) {
		// Core-restricted sources (core 0 services) do not hit
		// application cores.
		return 0
	}
	lambda := float64(window) / float64(s.Period)
	// Total occurrences across the whole job.
	k := float64(poisson(rng, float64(ranks)*lambda))
	if k < 1 {
		return 0
	}
	// Base (log-normal) component maximum via inverse CDF.
	var max sim.Duration
	if s.CV > 0 {
		mu, sigma := s.lnParams()
		u := math.Pow(rng.Float64(), 1/k)
		max = sim.DurationOf(math.Exp(mu + sigma*normInv(u)))
	} else {
		max = s.Mean
	}
	// Heavy-tail component maximum.
	if s.TailProb > 0 {
		kt := float64(poisson(rng, k*s.TailProb))
		if kt >= 1 {
			u := math.Pow(rng.Float64(), 1/kt)
			tail := sim.DurationOf(s.TailScale.Seconds() / math.Pow(1-u, 1/s.TailAlpha))
			if s.TailCap > 0 && tail > s.TailCap {
				tail = s.TailCap
			}
			if tail > max {
				max = tail
			}
		}
	}
	return max
}

// normInv is the inverse of the standard normal CDF (Acklam's rational
// approximation, relative error < 1.15e-9 over (0,1)).
func normInv(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}

	const plow = 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-plow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}
