// Package noise models operating-system interference ("OS jitter"): the
// timer ticks, kernel worker threads and daemons that steal cycles from
// application cores. Strong partitioning of cores between Linux and the LWK
// is, per the paper, "a key property for preventing OS jitter from Linux to
// be propagated to the LWK"; this package supplies the per-kernel noise
// profiles and the FWQ/FTQ microbenchmarks that measure them.
//
// Noise matters at scale because bulk-synchronous applications absorb the
// *maximum* detour over all ranks in every collective round. A rare
// millisecond-scale daemon that is invisible on one node is hit almost
// surely somewhere among 131,072 ranks — the mechanism behind the paper's
// MiniFE and Lulesh Linux cliffs.
package noise

import (
	"math"
	"strings"

	"mklite/internal/sim"
	"mklite/internal/trace"
)

// Source is one recurring interference source on a set of cores.
type Source struct {
	Name string
	// Period is the mean interval between occurrences.
	Period sim.Duration
	// Mean is the mean detour duration per occurrence.
	Mean sim.Duration
	// CV is the coefficient of variation of the detour duration
	// (log-normal model).
	CV float64
	// TailProb is the per-occurrence probability of a heavy-tail event
	// (e.g. a monitoring daemon waking up and doing real work).
	TailProb float64
	// TailScale and TailAlpha parameterise the Pareto tail duration.
	TailScale sim.Duration
	TailAlpha float64
	// TailCap bounds a single tail detour (a daemon runs for a bounded
	// time); 0 means uncapped.
	TailCap sim.Duration
	// CoreFilter restricts the source to specific cores; nil means all
	// cores. Core 0 on the paper's systems carries extra services —
	// "this is often due to CPU 0 running services and introducing
	// noise".
	CoreFilter func(core int) bool

	// ctr caches the per-source counter name so the hot sampling loop
	// never concatenates strings. Lazily filled under the profile's
	// per-run single-goroutine contract (profiles travel with the run's
	// RNG, never shared across par closures).
	ctr string

	// lnMu/lnSigma cache the log-normal parameters derived from Mean and
	// CV (two math.Log and a math.Sqrt per detour otherwise — a
	// measurable share of the whole harness, since every source draws
	// every timestep). Same lazy single-goroutine contract as ctr; the
	// cached values come from the exact expressions the uncached code
	// evaluated, so draws are bit-identical.
	lnOK          bool
	lnMu, lnSigma float64

	// lamWindow/lamVal/lamExp cache the Poisson occurrence-count
	// parameters for the last window seen. The detour window is constant
	// across the timesteps of a run whenever the per-step base time is
	// (the common case), so the cache turns a math.Exp per source per
	// step into one per run.
	lamWindow sim.Duration
	lamVal    float64
	lamExp    float64 // exp(-lamVal); consulted only when lamVal <= 30
}

// lnParams returns the (mu, sigma) of the log-normal detour model, cached.
func (s *Source) lnParams() (mu, sigma float64) {
	if !s.lnOK {
		sigma2 := math.Log(1 + s.CV*s.CV)
		s.lnMu = math.Log(s.Mean.Seconds()) - sigma2/2
		s.lnSigma = math.Sqrt(sigma2)
		s.lnOK = true
	}
	return s.lnMu, s.lnSigma
}

// counterName returns the cached "noise.src.<name>_ns" counter name.
func (s *Source) counterName() string {
	if s.ctr == "" {
		s.ctr = "noise.src." + s.Name + "_ns"
	}
	return s.ctr
}

// appliesTo reports whether the source fires on the given core.
func (s *Source) appliesTo(core int) bool {
	return s.CoreFilter == nil || s.CoreFilter(core)
}

// sampleCount draws the number of occurrences in a window (Poisson with
// mean window/period).
func (s *Source) sampleCount(rng *sim.RNG, window sim.Duration) int {
	if s.Period <= 0 || window <= 0 {
		return 0
	}
	if window != s.lamWindow {
		s.lamWindow = window
		s.lamVal = float64(window) / float64(s.Period)
		if s.lamVal <= 30 {
			s.lamExp = math.Exp(-s.lamVal)
		} else {
			s.lamExp = 0
		}
	}
	return rng.PoissonExp(s.lamVal, s.lamExp)
}

// sampleDetour draws one detour duration.
func (s *Source) sampleDetour(rng *sim.RNG) sim.Duration {
	d := s.Mean
	if s.CV > 0 && s.Mean > 0 {
		// Log-normal with the requested mean and CV.
		mu, sigma := s.lnParams()
		d = sim.DurationOf(rng.LogNormal(mu, sigma))
	}
	if s.TailProb > 0 && rng.Bool(s.TailProb) {
		tail := sim.DurationOf(rng.Pareto(s.TailScale.Seconds(), s.TailAlpha))
		if s.TailCap > 0 && tail > s.TailCap {
			tail = s.TailCap
		}
		d += tail
	}
	return d
}

// SampleWindow returns the total detour the source inflicts on the given
// core during a window of the given length.
func (s *Source) SampleWindow(rng *sim.RNG, core int, window sim.Duration) sim.Duration {
	if !s.appliesTo(core) {
		return 0
	}
	n := s.sampleCount(rng, window)
	var total sim.Duration
	for i := 0; i < n; i++ {
		total += s.sampleDetour(rng)
	}
	return total
}

// ExpectedRate returns the source's mean stolen-time fraction (not counting
// the tail component) on cores it applies to.
func (s *Source) ExpectedRate() float64 {
	if s.Period <= 0 {
		return 0
	}
	return float64(s.Mean) / float64(s.Period)
}

// poisson draws a Poisson variate. The algorithm lives on sim.RNG so the
// fault injector draws occurrence counts from the identical distribution
// code; the draw sequence is unchanged by the delegation.
func poisson(rng *sim.RNG, lambda float64) int {
	return rng.Poisson(lambda)
}

// Profile is a named set of noise sources — the interference signature of
// one kernel configuration.
type Profile struct {
	Name    string
	Sources []Source
}

// DetourIn samples the total interference on one core during a window.
func (p *Profile) DetourIn(rng *sim.RNG, core int, window sim.Duration) sim.Duration {
	return p.DetourInTo(rng, core, window, nil)
}

// DetourInTo is DetourIn with per-source attribution into a trace sink: each
// source that fires contributes to "noise.src.<name>_ns". The sampling
// sequence is identical with and without a sink — the sink only observes —
// so attaching one cannot perturb the run.
func (p *Profile) DetourInTo(rng *sim.RNG, core int, window sim.Duration, sink *trace.Sink) sim.Duration {
	counting := sink.Counting()
	var total sim.Duration
	for i := range p.Sources {
		d := p.Sources[i].SampleWindow(rng, core, window)
		if counting && d > 0 {
			sink.Count(p.Sources[i].counterName(), int64(d))
		}
		total += d
	}
	return total
}

// ExpectedRate returns the summed mean stolen-time fraction for a core.
func (p *Profile) ExpectedRate(core int) float64 {
	rate := 0.0
	for i := range p.Sources {
		if p.Sources[i].appliesTo(core) {
			rate += p.Sources[i].ExpectedRate()
		}
	}
	return rate
}

// WithSource returns a copy of the profile with an extra source appended —
// used by the fault layer to add a daemon storm without mutating the
// kernel's shared canonical profile.
func (p *Profile) WithSource(s Source) *Profile {
	out := &Profile{Name: p.Name, Sources: make([]Source, 0, len(p.Sources)+1)}
	out.Sources = append(out.Sources, p.Sources...)
	out.Sources = append(out.Sources, s)
	return out
}

// WithoutTicks returns a copy of the profile with the tick-class sources
// (names containing "tick") removed — the dyntick scheduling policy switches
// the timer tick off entirely while a single task runs on a core, so neither
// the residual nohz_full housekeeping tick nor a full periodic tick fires.
// Profiles without tick sources (the LWKs) come back unchanged in content.
func (p *Profile) WithoutTicks() *Profile {
	out := &Profile{Name: p.Name, Sources: make([]Source, 0, len(p.Sources))}
	for _, s := range p.Sources {
		if strings.Contains(s.Name, "tick") {
			continue
		}
		out.Sources = append(out.Sources, s)
	}
	return out
}

// Storm builds the daemon-storm interference source the fault layer injects
// on Linux application cores: a rogue daemon bursting for `burst` every
// `period` on average, with log-normal burst lengths. On the LWKs core
// partitioning keeps this source off application cores entirely; the storm
// reaches them only through inflated offload round trips.
func Storm(period, burst sim.Duration, cv float64) Source {
	return Source{
		Name:   "daemon-storm",
		Period: period,
		Mean:   burst,
		CV:     cv,
	}
}

// --------------------------------------------------------------------------
// Canonical profiles

// LinuxTuned models the paper's production Linux environment: XPPSL with
// nohz_full on application cores. The periodic tick is suppressed but not
// gone (residual 1 Hz housekeeping), kworkers still run, and rare daemon
// activity has a millisecond-scale tail. Core 0 carries system services.
func LinuxTuned() *Profile {
	return &Profile{
		Name: "linux-tuned",
		Sources: []Source{
			{
				Name:   "residual-tick",
				Period: 1 * sim.Second / 10, // 10 Hz residual housekeeping
				Mean:   4 * sim.Microsecond,
				CV:     0.3,
			},
			{
				Name:   "kworker",
				Period: 100 * sim.Millisecond,
				Mean:   25 * sim.Microsecond,
				CV:     0.8,
			},
			{
				Name:      "daemon",
				Period:    1 * sim.Second,
				Mean:      120 * sim.Microsecond,
				CV:        1.0,
				TailProb:  0.05,
				TailScale: 800 * sim.Microsecond,
				TailAlpha: 1.6,
				TailCap:   5 * sim.Millisecond,
			},
			{
				// IRQ steering, RPC daemons and housekeeping all
				// pin to CPU 0; a rank scheduled there loses a
				// few percent — why everyone reserves it.
				Name:       "core0-services",
				Period:     5 * sim.Millisecond,
				Mean:       200 * sim.Microsecond,
				CV:         1.0,
				CoreFilter: func(core int) bool { return core == 0 },
			},
		},
	}
}

// LinuxUntuned models a stock distribution kernel without nohz_full: a full
// 250 Hz tick on every core plus everything in the tuned profile. Used by
// the noise ablation.
func LinuxUntuned() *Profile {
	p := LinuxTuned()
	p.Name = "linux-untuned"
	p.Sources = append(p.Sources, Source{
		Name:   "timer-tick",
		Period: 4 * sim.Millisecond, // 250 Hz
		Mean:   3 * sim.Microsecond,
		CV:     0.2,
	})
	return p
}

// LWK returns the lightweight-kernel profile: no timer tick (cooperative,
// non-preemptive scheduling), no daemons, only a vanishing residual from
// rare inter-kernel housekeeping. McKernel's stricter isolation ("the Linux
// kernel cannot interact with the McKernel scheduler") yields a marginally
// cleaner profile than mOS, where stray Linux tasks must be actively chased
// off LWK cores.
func LWK(residual sim.Duration) *Profile {
	return &Profile{
		Name: "lwk",
		Sources: []Source{
			{
				Name:   "ikc-housekeeping",
				Period: 1 * sim.Second,
				Mean:   residual,
				CV:     0.5,
			},
		},
	}
}

// McKernelProfile is the default McKernel noise signature.
func McKernelProfile() *Profile {
	p := LWK(500 * sim.Nanosecond)
	p.Name = "mckernel"
	return p
}

// MOSProfile is the default mOS noise signature: slightly above McKernel
// because of the tighter Linux integration (stray kernel tasks occasionally
// land on LWK cores before being evicted).
func MOSProfile() *Profile {
	p := LWK(500 * sim.Nanosecond)
	p.Name = "mos"
	p.Sources = append(p.Sources, Source{
		Name:   "stray-linux-task",
		Period: 5 * sim.Second,
		Mean:   3 * sim.Microsecond,
		CV:     1.0,
	})
	return p
}
