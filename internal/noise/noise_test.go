package noise

import (
	"math"
	"testing"

	"mklite/internal/sim"
)

func TestSourceSampleWindowZeroForEmptyWindow(t *testing.T) {
	s := Source{Period: sim.Millisecond, Mean: sim.Microsecond}
	rng := sim.NewRNG(1)
	if d := s.SampleWindow(rng, 0, 0); d != 0 {
		t.Fatalf("detour in empty window: %v", d)
	}
}

func TestSourceCoreFilter(t *testing.T) {
	s := Source{
		Period:     sim.Millisecond,
		Mean:       10 * sim.Microsecond,
		CoreFilter: func(core int) bool { return core == 0 },
	}
	rng := sim.NewRNG(2)
	if d := s.SampleWindow(rng, 3, sim.Second); d != 0 {
		t.Fatalf("filtered core got detour %v", d)
	}
	if d := s.SampleWindow(rng, 0, sim.Second); d == 0 {
		t.Fatal("core 0 got no detour over a full second")
	}
}

func TestSourceMeanRate(t *testing.T) {
	// Over many windows, the sampled stolen fraction must approximate
	// Mean/Period.
	s := Source{Period: sim.Millisecond, Mean: 10 * sim.Microsecond, CV: 0.5}
	rng := sim.NewRNG(3)
	var total sim.Duration
	const windows = 2000
	window := 10 * sim.Millisecond
	for i := 0; i < windows; i++ {
		total += s.SampleWindow(rng, 0, window)
	}
	got := float64(total) / float64(windows*int(window))
	want := s.ExpectedRate()
	if math.Abs(got-want)/want > 0.1 {
		t.Fatalf("stolen fraction %v, want ~%v", got, want)
	}
}

func TestExpectedRate(t *testing.T) {
	s := Source{Period: sim.Millisecond, Mean: 10 * sim.Microsecond}
	if r := s.ExpectedRate(); math.Abs(r-0.01) > 1e-12 {
		t.Fatalf("rate = %v", r)
	}
	if (&Source{}).ExpectedRate() != 0 {
		t.Fatal("zero-period source rate")
	}
}

func TestPoissonMean(t *testing.T) {
	rng := sim.NewRNG(4)
	for _, lambda := range []float64{0.5, 5, 50} {
		sum := 0
		const n = 20000
		for i := 0; i < n; i++ {
			sum += poisson(rng, lambda)
		}
		mean := float64(sum) / n
		if math.Abs(mean-lambda)/lambda > 0.05 {
			t.Fatalf("poisson(%v) mean = %v", lambda, mean)
		}
	}
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Fatal("poisson of non-positive lambda")
	}
}

func TestProfilesOrdering(t *testing.T) {
	// The whole point: LWK noise << tuned Linux noise << untuned Linux.
	rng := sim.NewRNG(5)
	window := 100 * sim.Millisecond
	const reps = 200
	sample := func(p *Profile) float64 {
		var total sim.Duration
		r := rng.Split()
		for i := 0; i < reps; i++ {
			total += p.DetourIn(r, 1, window)
		}
		return float64(total) / float64(reps*int(window))
	}
	lwk := sample(McKernelProfile())
	mos := sample(MOSProfile())
	tuned := sample(LinuxTuned())
	untuned := sample(LinuxUntuned())
	if !(lwk < tuned && mos < tuned) {
		t.Fatalf("LWK noise not below Linux: lwk=%v mos=%v linux=%v", lwk, mos, tuned)
	}
	if !(tuned < untuned) {
		t.Fatalf("tuned %v not below untuned %v", tuned, untuned)
	}
	if lwk > 1e-4 {
		t.Fatalf("LWK stolen fraction %v implausibly high", lwk)
	}
}

func TestCore0Noisier(t *testing.T) {
	p := LinuxTuned()
	if p.ExpectedRate(0) <= p.ExpectedRate(1) {
		t.Fatal("core 0 not noisier than core 1")
	}
}

func TestLinuxTailEventsExist(t *testing.T) {
	// Over enough windows, the tuned Linux profile must produce at least
	// one detour far above its mean — the heavy tail that causes the
	// collective cliffs.
	p := LinuxTuned()
	rng := sim.NewRNG(6)
	window := 50 * sim.Millisecond
	maxD := sim.Duration(0)
	for i := 0; i < 5000; i++ {
		if d := p.DetourIn(rng, 1, window); d > maxD {
			maxD = d
		}
	}
	if maxD < 500*sim.Microsecond {
		t.Fatalf("no tail event observed; max detour %v", maxD)
	}
}

func TestDeterministicSampling(t *testing.T) {
	p := LinuxTuned()
	a := p.DetourIn(sim.NewRNG(7), 1, sim.Second)
	b := p.DetourIn(sim.NewRNG(7), 1, sim.Second)
	if a != b {
		t.Fatalf("same seed, different detours: %v vs %v", a, b)
	}
}

func TestFWQSeparatesKernels(t *testing.T) {
	rng := sim.NewRNG(8)
	q := 1 * sim.Millisecond
	lwk := RunFWQ(rng.Split(), McKernelProfile(), 1, q, 2000)
	lin := RunFWQ(rng.Split(), LinuxTuned(), 1, q, 2000)
	if lwk.NoisePercent() >= lin.NoisePercent() {
		t.Fatalf("FWQ: lwk %.4f%% >= linux %.4f%%", lwk.NoisePercent(), lin.NoisePercent())
	}
	if lin.MaxStretchPercent() <= lin.NoisePercent() {
		t.Fatal("max stretch should exceed mean noise")
	}
}

func TestFWQSampleCountAndQuantum(t *testing.T) {
	r := RunFWQ(sim.NewRNG(9), McKernelProfile(), 0, sim.Millisecond, 100)
	if len(r.Samples) != 100 {
		t.Fatalf("samples = %d", len(r.Samples))
	}
	if r.Quantum != sim.Millisecond {
		t.Fatal("quantum not recorded")
	}
	// No sample can be shorter than the pure work quantum.
	for _, s := range r.Samples {
		if s < r.Quantum.Micros() {
			t.Fatalf("sample %v below quantum", s)
		}
	}
}

func TestFTQUtilisationBounds(t *testing.T) {
	r := RunFTQ(sim.NewRNG(10), LinuxTuned(), 1, sim.Millisecond, 1000)
	for _, s := range r.Samples {
		if s < 0 || s > 1 {
			t.Fatalf("utilisation %v out of [0,1]", s)
		}
	}
	if r.Summary().Mean > 1 {
		t.Fatal("mean utilisation above 1")
	}
}

func TestFTQLWKNearIdeal(t *testing.T) {
	r := RunFTQ(sim.NewRNG(11), McKernelProfile(), 1, sim.Millisecond, 1000)
	if r.Summary().Mean < 0.999 {
		t.Fatalf("LWK FTQ utilisation %v, want ~1", r.Summary().Mean)
	}
}

func TestNoisePercentZeroOnQuiet(t *testing.T) {
	quiet := &Profile{Name: "none"}
	r := RunFWQ(sim.NewRNG(12), quiet, 0, sim.Millisecond, 50)
	if r.NoisePercent() != 0 {
		t.Fatalf("quiet profile noise %v", r.NoisePercent())
	}
}
