// Package cliflags declares the command-line flags shared by the mklite
// commands (mkrun, mkexperiments, mknoise, mkfleet). Each shared flag is
// defined exactly once here — name, default and help text — so the commands
// cannot drift apart and a new cross-cutting flag (such as -sched) is added
// in one place. Flags unique to a single command stay in that command.
package cliflags

import (
	"flag"
	"strings"

	"mklite/internal/fault"
	"mklite/internal/sched"
)

// Seed registers the -seed flag: the base seed every stochastic draw of the
// run derives from.
func Seed(fs *flag.FlagSet) *uint64 {
	return fs.Uint64("seed", 1, "base seed (vary for repetitions; all stochastic draws derive from it)")
}

// Workers registers the -workers flag controlling the internal/par fan-out
// width. The help text carries the determinism contract.
func Workers(fs *flag.FlagSet) *int {
	return fs.Int("workers", 0, "parallel fan-out width over independent runs (0 = GOMAXPROCS, 1 = sequential); output is identical at any width")
}

// Counters registers the -counters observability flag.
func Counters(fs *flag.FlagSet) *bool {
	return fs.Bool("counters", false, "collect and print mechanism counters")
}

// Metrics registers the -metrics observability flag.
func Metrics(fs *flag.FlagSet) *bool {
	return fs.Bool("metrics", false, "collect and print the metrics profile (phases, latency histograms, gauges)")
}

// Faults registers the -faults fault-injection flag; parse the value with
// ParseFaults after flag.Parse.
func Faults(fs *flag.FlagSet) *string {
	return fs.String("faults", "", "fault plan, e.g. 'straggler:node=3,factor=2;retry:max=2' (see docs/FAULTS.md)")
}

// ParseFaults parses a -faults value into a fault plan; an empty spec
// returns a nil plan (no faults).
func ParseFaults(spec string) (*fault.Plan, error) {
	return fault.ParsePlan(spec)
}

// SLO registers the -slo flag; the literal value "default" is resolved by
// the command (the stock facility SLO lives in the public API).
func SLO(fs *flag.FlagSet) *string {
	return fs.String("slo", "", "SLO spec, e.g. 'utilization_pct>=50;wait_p99_sec<=7200'; 'default' selects the stock facility SLO (see docs/OBSERVABILITY.md)")
}

// Sched registers the -sched scheduling-policy flag; parse the value with
// ParseSched after flag.Parse.
func Sched(fs *flag.FlagSet) *string {
	return fs.String("sched", "", "scheduling policy: "+kindList()+" (empty = each kernel's default; see docs/SCHED.md)")
}

// ParseSched parses a -sched value; the empty string (the default: keep each
// kernel's own policy) parses to the empty Kind.
func ParseSched(s string) (sched.Kind, error) {
	if s == "" {
		return "", nil
	}
	return sched.Parse(s)
}

func kindList() string {
	names := make([]string, 0, len(sched.Kinds()))
	for _, k := range sched.Kinds() {
		names = append(names, string(k))
	}
	return strings.Join(names, ", ")
}
