package cliflags

import (
	"flag"
	"testing"

	"mklite/internal/sched"
)

// TestRegistration parses a representative command line through every shared
// flag and checks the values land.
func TestRegistration(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	seed := Seed(fs)
	workers := Workers(fs)
	counters := Counters(fs)
	metricsF := Metrics(fs)
	faults := Faults(fs)
	slo := SLO(fs)
	schedF := Sched(fs)
	err := fs.Parse([]string{
		"-seed", "7", "-workers", "2", "-counters", "-metrics",
		"-faults", "straggler:node=3,factor=2", "-slo", "utilization_pct>=50",
		"-sched", "gang",
	})
	if err != nil {
		t.Fatal(err)
	}
	if *seed != 7 || *workers != 2 || !*counters || !*metricsF {
		t.Fatalf("scalar flags: seed=%d workers=%d counters=%v metrics=%v",
			*seed, *workers, *counters, *metricsF)
	}
	if *slo != "utilization_pct>=50" {
		t.Fatalf("slo = %q", *slo)
	}
	plan, err := ParseFaults(*faults)
	if err != nil || plan == nil {
		t.Fatalf("ParseFaults: %v %v", plan, err)
	}
	kind, err := ParseSched(*schedF)
	if err != nil || kind != sched.Gang {
		t.Fatalf("ParseSched: %q %v", kind, err)
	}
}

// TestParseSchedEmpty: the empty default must mean "kernel default", not an
// error.
func TestParseSchedEmpty(t *testing.T) {
	kind, err := ParseSched("")
	if err != nil || kind != "" {
		t.Fatalf("ParseSched(\"\") = %q, %v", kind, err)
	}
	if _, err := ParseSched("nope"); err == nil {
		t.Fatal("ParseSched(nope) should fail")
	}
}

// TestParseFaultsEmpty: empty spec is a nil plan.
func TestParseFaultsEmpty(t *testing.T) {
	plan, err := ParseFaults("")
	if err != nil || plan != nil {
		t.Fatalf("ParseFaults(\"\") = %v, %v", plan, err)
	}
}
