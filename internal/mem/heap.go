package mem

import (
	"fmt"

	"mklite/internal/hw"
	"mklite/internal/trace"
)

// Work quantifies the mechanical cost of a memory operation in hardware
// events. The kernels convert Work into time with their own service-cost
// constants; keeping mem time-free avoids circular dependencies.
type Work struct {
	Faults         int64 // demand page faults serviced
	PagesMapped    int64 // page-table entries installed
	ZeroedBytes    int64 // bytes cleared
	AllocatedBytes int64 // physical bytes newly allocated
	FreedBytes     int64 // physical bytes returned
	CopiedBytes    int64 // bytes copied during page migration
	FailedBytes    int64 // bytes a migration could not move
	SyscallIssued  bool  // a kernel crossing happened
}

// PureSyscall reports whether the work consists of kernel crossings only —
// every physical component (faults, mappings, zeroing, allocation, freeing,
// migration) is zero. A brk-trace replay whose per-step work is pure
// syscall and whose size returned to its starting point left the heap and
// the physical allocator in exactly the state they started the step in, so
// every subsequent replay of the same trace is identical — the condition
// the cluster hot loop's steady-state memoization keys on.
func (w Work) PureSyscall() bool {
	return w.Faults == 0 && w.PagesMapped == 0 && w.ZeroedBytes == 0 &&
		w.AllocatedBytes == 0 && w.FreedBytes == 0 && w.CopiedBytes == 0 &&
		w.FailedBytes == 0
}

// Accumulate adds w2 into w.
func (w *Work) Accumulate(w2 Work) {
	w.Faults += w2.Faults
	w.PagesMapped += w2.PagesMapped
	w.ZeroedBytes += w2.ZeroedBytes
	w.AllocatedBytes += w2.AllocatedBytes
	w.FreedBytes += w2.FreedBytes
	w.CopiedBytes += w2.CopiedBytes
	w.FailedBytes += w2.FailedBytes
	w.SyscallIssued = w.SyscallIssued || w2.SyscallIssued
}

// HeapStats is the accounting the paper's brk trace reports (section IV):
// query/grow/shrink counts, peak size and cumulative growth.
type HeapStats struct {
	Queries     int64
	Grows       int64
	Shrinks     int64
	GrownBytes  int64 // cumulative bytes of growth requests honoured
	ShrunkBytes int64 // cumulative bytes actually released
	Peak        int64
	Faults      int64
	ZeroedBytes int64
}

// Calls returns the total number of brk/sbrk invocations observed.
func (s HeapStats) Calls() int64 { return s.Queries + s.Grows + s.Shrinks }

// Heap is the interface shared by the Linux and HPC heap engines.
type Heap interface {
	// Sbrk adjusts the program break by delta bytes (0 queries). It
	// returns the new heap size and the mechanical work done inside the
	// kernel during the call.
	Sbrk(delta int64) (int64, Work, error)
	// TouchUpTo simulates the application touching the heap up to
	// limit bytes from its base, returning fault work (zero for
	// upfront-mapped heaps).
	TouchUpTo(limit int64) Work
	// Size returns the current heap size in bytes.
	Size() int64
	// Stats returns the accumulated accounting.
	Stats() HeapStats
}

// --------------------------------------------------------------------------
// Linux heap

// LinuxHeap models the stock Linux heap: brk only moves the boundary,
// physical pages arrive via demand faults on first touch, every faulted
// page is zeroed, shrink requests release memory immediately, and
// transparent huge pages apply only when the populated frontier happens to
// be 2 MiB aligned with at least 2 MiB to go.
type LinuxHeap struct {
	as   *AddrSpace
	vma  *VMA
	size int64 // current program break offset
	thp  bool
	st   HeapStats
	// segs records growth segments [start,end) so that first-touch can
	// honour THP's alignment rule per segment; touchIdx is the first
	// segment that may still need population.
	segs     []heapSeg
	touchIdx int
}

type heapSeg struct{ start, end int64 }

// NewLinuxHeap reserves maxSize of virtual space for the heap, demand
// paged, preferring the given domains on first touch.
func NewLinuxHeap(as *AddrSpace, maxSize int64, domains []int, thp bool) (*LinuxHeap, error) {
	maxPage := hw.Page4K
	if thp {
		maxPage = hw.Page2M
	}
	v, err := as.Map(maxSize, VMAHeap, Policy{Domains: domains, MaxPage: maxPage, Demand: true})
	if err != nil {
		return nil, fmt.Errorf("mem: linux heap reserve: %w", err)
	}
	return &LinuxHeap{as: as, vma: v, thp: thp}, nil
}

// Sbrk implements Heap.
func (h *LinuxHeap) Sbrk(delta int64) (int64, Work, error) {
	w := Work{SyscallIssued: true}
	sink := h.as.Sink()
	switch {
	case delta == 0:
		h.st.Queries++
		sink.CountKey(trace.KeyHeapQueries, 1)
	case delta > 0:
		if h.size+delta > h.vma.Size {
			return h.size, w, fmt.Errorf("mem: heap limit exceeded (%d + %d > %d)", h.size, delta, h.vma.Size)
		}
		// Each growth request is its own segment: Linux decides THP
		// eligibility per request, so merging would overstate
		// large-page coverage.
		h.segs = append(h.segs, heapSeg{start: h.size, end: h.size + delta})
		h.size += delta
		h.st.Grows++
		h.st.GrownBytes += delta
		sink.CountKey(trace.KeyHeapGrows, 1)
		sink.CountKey(trace.KeyHeapGrownBytes, delta)
		if h.size > h.st.Peak {
			h.st.Peak = h.size
			sink.CountMaxKey(trace.KeyHeapPeakBytes, h.size)
		}
		// No physical work: population is deferred to first touch.
	default:
		shrink := -delta
		if shrink > h.size {
			shrink = h.size
		}
		h.size -= shrink
		h.st.Shrinks++
		// Linux releases the physical pages beyond the new break.
		freed := h.as.Trim(h.vma, h.size)
		h.st.ShrunkBytes += freed
		w.FreedBytes += freed
		sink.CountKey(trace.KeyHeapShrinks, 1)
		sink.CountKey(trace.KeyHeapShrunkBytes, freed)
		// Truncate growth segments to the new break; regrowth will
		// start a fresh (likely unaligned) segment.
		for len(h.segs) > 0 {
			last := &h.segs[len(h.segs)-1]
			if last.end <= h.size {
				break
			}
			if last.start >= h.size {
				h.segs = h.segs[:len(h.segs)-1]
				continue
			}
			last.end = h.size
		}
		if h.touchIdx > len(h.segs) {
			h.touchIdx = len(h.segs)
		}
		// The trimmed tail may need repopulation after regrowth.
		for h.touchIdx > 0 && h.segs[h.touchIdx-1].end > h.vma.Populated {
			h.touchIdx--
		}
	}
	return h.size, w, nil
}

// TouchUpTo implements Heap: first-touch faulting with per-page zeroing.
// THP applies per growth segment, and only when the segment begins on a
// 2 MiB boundary and spans at least 2 MiB — "Linux ... can only allocate
// large pages when the heap boundary happens to be properly aligned and the
// request is large enough" (section IV).
func (h *LinuxHeap) TouchUpTo(limit int64) Work {
	if limit > h.size {
		limit = h.size
	}
	var w Work
	// Advance the cursor past segments that are already fully populated
	// so long brk traces stay O(calls), not O(calls x segments).
	for h.touchIdx < len(h.segs) && h.segs[h.touchIdx].end <= h.vma.Populated {
		h.touchIdx++
	}
	for _, seg := range h.segs[h.touchIdx:] {
		if seg.start >= limit {
			break
		}
		end := seg.end
		if end > limit {
			end = limit
		}
		page := hw.Page4K
		if h.thp && seg.start%int64(hw.Page2M) == 0 && end-seg.start >= int64(hw.Page2M) {
			page = hw.Page2M
		}
		res := h.as.TouchWithPage(h.vma, seg.start, end-seg.start, page)
		w.Faults += res.Faults
		w.PagesMapped += res.Faults
		// Linux maps the zero page then clears on first write: the
		// full page is cleared once per fault.
		w.ZeroedBytes += res.BytesPopulated
		w.AllocatedBytes += res.BytesPopulated
	}
	h.st.Faults += w.Faults
	h.st.ZeroedBytes += w.ZeroedBytes
	if sink := h.as.Sink(); sink.Counting() && (w.Faults > 0 || w.ZeroedBytes > 0) {
		sink.CountKey(trace.KeyHeapFaults, w.Faults)
		sink.CountKey(trace.KeyHeapZeroedBytes, w.ZeroedBytes)
	}
	return w
}

// Size implements Heap.
func (h *LinuxHeap) Size() int64 { return h.size }

// Stats implements Heap.
func (h *LinuxHeap) Stats() HeapStats { return h.st }

// --------------------------------------------------------------------------
// HPC heap (LWK)

// HPCHeapConfig tunes the LWK heap engine.
type HPCHeapConfig struct {
	// Domains is the NUMA preference order for heap pages.
	Domains []int
	// ChunkAlign is the growth granularity; the paper's kernels use
	// 2 MiB.
	ChunkAlign int64
	// Aggressive enables the "aggressively extend the heap" behaviour:
	// each expansion reserves at least half the current heap size, so
	// runs of small brk calls hit pre-extended memory.
	Aggressive bool
	// ZeroFirst4K clears only the first 4 KiB of each fresh 2 MiB
	// chunk — the AMG 2013 bug workaround described in section IV.
	ZeroFirst4K bool
	// IgnoreShrink drops negative brk requests (LWK behaviour: "many
	// high-end HPC applications allocate memory at the beginning and
	// retain it"). When false the engine releases memory like Linux,
	// which exists so tests can isolate the effect.
	IgnoreShrink bool
}

// DefaultHPCHeapConfig returns the paper's LWK heap behaviour.
func DefaultHPCHeapConfig(domains []int) HPCHeapConfig {
	return HPCHeapConfig{
		Domains:      domains,
		ChunkAlign:   int64(hw.Page2M),
		Aggressive:   true,
		ZeroFirst4K:  true,
		IgnoreShrink: true,
	}
}

// HPCHeap models the LWK heap: 2 MiB aligned growth, physical pages
// allocated at brk time (so the application never faults on the heap),
// shrink requests ignored, and only the first 4 KiB of fresh memory zeroed.
type HPCHeap struct {
	as       *AddrSpace
	vma      *VMA
	cfg      HPCHeapConfig
	size     int64 // program break as seen by the application
	reserved int64 // physically backed bytes (>= size)
	st       HeapStats
}

// NewHPCHeap reserves maxSize of virtual space managed by the HPC engine.
func NewHPCHeap(as *AddrSpace, maxSize int64, cfg HPCHeapConfig) (*HPCHeap, error) {
	if cfg.ChunkAlign <= 0 {
		cfg.ChunkAlign = int64(hw.Page2M)
	}
	v, err := as.Map(maxSize, VMAHeap, Policy{
		Domains: cfg.Domains,
		MaxPage: hw.Page2M,
		Demand:  true, // population is driven explicitly at brk time
	})
	if err != nil {
		return nil, fmt.Errorf("mem: hpc heap reserve: %w", err)
	}
	return &HPCHeap{as: as, vma: v, cfg: cfg}, nil
}

// Sbrk implements Heap.
func (h *HPCHeap) Sbrk(delta int64) (int64, Work, error) {
	w := Work{SyscallIssued: true}
	sink := h.as.Sink()
	switch {
	case delta == 0:
		h.st.Queries++
		sink.CountKey(trace.KeyHeapQueries, 1)
	case delta > 0:
		h.st.Grows++
		h.st.GrownBytes += delta
		sink.CountKey(trace.KeyHeapGrows, 1)
		sink.CountKey(trace.KeyHeapGrownBytes, delta)
		newSize := h.size + delta
		if newSize > h.vma.Size {
			return h.size, w, fmt.Errorf("mem: heap limit exceeded (%d > %d)", newSize, h.vma.Size)
		}
		if newSize > h.reserved {
			// Extend physical backing in aligned chunks; the
			// aggressive mode over-reserves to absorb future
			// growth without further kernel work.
			target := roundUp(newSize, h.cfg.ChunkAlign)
			if h.cfg.Aggressive {
				// Over-reserve by half the new size so runs of
				// small brk calls are absorbed without further
				// allocation ("aggressively extend the heap to
				// avoid contention ... in subsequent brk
				// calls").
				target = roundUp(newSize+newSize/2, h.cfg.ChunkAlign)
			}
			if target > h.vma.Size {
				target = h.vma.Size
			}
			res := h.as.PopulateTo(h.vma, target)
			grown := res.BytesPopulated
			if h.reserved+grown < newSize {
				return h.size, w, fmt.Errorf("mem: out of physical memory extending heap to %d (backed %d)",
					newSize, h.reserved+grown)
			}
			h.reserved += grown
			w.AllocatedBytes += grown
			w.PagesMapped += grown / h.cfg.ChunkAlign
			if h.cfg.ZeroFirst4K {
				w.ZeroedBytes += (grown / h.cfg.ChunkAlign) * int64(hw.Page4K)
			} else {
				w.ZeroedBytes += grown
			}
			h.st.ZeroedBytes += w.ZeroedBytes
			sink.CountKey(trace.KeyHeapZeroedBytes, w.ZeroedBytes)
		}
		h.size = newSize
		if h.size > h.st.Peak {
			h.st.Peak = h.size
			sink.CountMaxKey(trace.KeyHeapPeakBytes, h.size)
		}
	default:
		h.st.Shrinks++
		sink.CountKey(trace.KeyHeapShrinks, 1)
		shrink := -delta
		if shrink > h.size {
			shrink = h.size
		}
		// The break always moves (glibc's view of the heap stays
		// consistent — the trace's 87 MB peak vs 22 GB cumulative
		// growth requires it), but with IgnoreShrink the physical
		// memory is retained: "mOS does not return memory to the
		// system when the heap shrinks".
		h.size -= shrink
		if !h.cfg.IgnoreShrink {
			freed := h.as.Trim(h.vma, h.size)
			h.reserved -= freed
			h.st.ShrunkBytes += freed
			w.FreedBytes += freed
			sink.CountKey(trace.KeyHeapShrunkBytes, freed)
		}
	}
	return h.size, w, nil
}

// TouchUpTo implements Heap. The HPC heap never faults: everything up to
// the break was backed at brk time.
func (h *HPCHeap) TouchUpTo(limit int64) Work { return Work{} }

// Size implements Heap.
func (h *HPCHeap) Size() int64 { return h.size }

// Reserved returns the physically backed bytes (>= Size when aggressive
// extension is active).
func (h *HPCHeap) Reserved() int64 { return h.reserved }

// Stats implements Heap.
func (h *HPCHeap) Stats() HeapStats { return h.st }
