package mem

import (
	"testing"
	"testing/quick"

	"mklite/internal/hw"
	"mklite/internal/sim"
)

func newKNLPhys() *Phys { return NewPhys(hw.KNL7250SNC4()) }

func TestPhysInitialState(t *testing.T) {
	p := newKNLPhys()
	if got := p.FreeBytes(0); got != 24*hw.GiB {
		t.Fatalf("domain 0 free = %d", got)
	}
	if got := p.FreeBytes(4); got != 4*hw.GiB {
		t.Fatalf("domain 4 free = %d", got)
	}
	if p.FreeBytes(99) != 0 || p.Capacity(99) != 0 {
		t.Fatal("unknown domain should report zero")
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPhysAllocFree(t *testing.T) {
	p := newKNLPhys()
	e, err := p.Alloc(0, 1*hw.GiB, int64(hw.Page1G))
	if err != nil {
		t.Fatal(err)
	}
	if e.Size != 1*hw.GiB || e.Start%int64(hw.Page1G) != 0 {
		t.Fatalf("bad extent %+v", e)
	}
	if p.UsedBytes(0) != 1*hw.GiB {
		t.Fatalf("used = %d", p.UsedBytes(0))
	}
	p.Free(e)
	if p.UsedBytes(0) != 0 {
		t.Fatalf("used after free = %d", p.UsedBytes(0))
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPhysAllocAlignment(t *testing.T) {
	p := newKNLPhys()
	// Force misalignment: grab 4 KiB first, then ask for a 2 MiB aligned
	// extent.
	if _, err := p.Alloc(0, 4096, 4096); err != nil {
		t.Fatal(err)
	}
	e, err := p.Alloc(0, int64(hw.Page2M), int64(hw.Page2M))
	if err != nil {
		t.Fatal(err)
	}
	if e.Start%int64(hw.Page2M) != 0 {
		t.Fatalf("unaligned extent at %#x", e.Start)
	}
}

func TestPhysAllocErrors(t *testing.T) {
	p := newKNLPhys()
	if _, err := p.Alloc(0, 0, 4096); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := p.Alloc(0, 4096, 3); err == nil {
		t.Fatal("non-power-of-two alignment accepted")
	}
	if _, err := p.Alloc(42, 4096, 4096); err == nil {
		t.Fatal("unknown domain accepted")
	}
	if _, err := p.Alloc(4, 5*hw.GiB, 4096); err == nil {
		t.Fatal("oversize alloc accepted")
	}
}

func TestPhysExhaustion(t *testing.T) {
	p := newKNLPhys()
	// MCDRAM domain 4 holds exactly 4 GiB.
	var got []Extent
	for i := 0; i < 4; i++ {
		e, err := p.Alloc(4, 1*hw.GiB, int64(hw.Page1G))
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		got = append(got, e)
	}
	if _, err := p.Alloc(4, 4096, 4096); err == nil {
		t.Fatal("allocation from exhausted domain succeeded")
	}
	p.FreeAll(got)
	if p.FreeBytes(4) != 4*hw.GiB {
		t.Fatal("free bytes not restored")
	}
}

func TestPhysCoalescing(t *testing.T) {
	p := newKNLPhys()
	a, _ := p.Alloc(0, 1*hw.GiB, int64(hw.Page1G))
	b, _ := p.Alloc(0, 1*hw.GiB, int64(hw.Page1G))
	c, _ := p.Alloc(0, 1*hw.GiB, int64(hw.Page1G))
	// Free in an order that requires both-side coalescing.
	p.Free(a)
	p.Free(c)
	p.Free(b)
	if got := p.LargestFree(0); got != 24*hw.GiB {
		t.Fatalf("largest free after coalesce = %d, want full domain", got)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPhysDoubleFreePanics(t *testing.T) {
	p := newKNLPhys()
	e, _ := p.Alloc(0, 4096, 4096)
	p.Free(e)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	p.Free(e)
}

func TestPhysAllocUpToSplits(t *testing.T) {
	p := newKNLPhys()
	// Fragment domain 4 so no single 4 GiB extent exists, then ask for
	// more than the largest chunk.
	pins, err := p.Fragment(4, 4096, 1*hw.GiB)
	if err != nil {
		t.Fatal(err)
	}
	if len(pins) == 0 {
		t.Fatal("Fragment pinned nothing")
	}
	if p.LargestFree(4) >= 4*hw.GiB {
		t.Fatal("fragmentation did not reduce largest free block")
	}
	exts, got := p.AllocUpTo(4, 3*hw.GiB, int64(hw.Page2M))
	if got < 2*hw.GiB {
		t.Fatalf("AllocUpTo got only %d", got)
	}
	if len(exts) < 2 {
		t.Fatalf("AllocUpTo returned %d extents, expected a split", len(exts))
	}
	for _, e := range exts {
		if e.Start%int64(hw.Page2M) != 0 || e.Size%int64(hw.Page2M) != 0 {
			t.Fatalf("extent %+v not 2MiB granular", e)
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPhysAllocUpToPartial(t *testing.T) {
	p := newKNLPhys()
	_, got := p.AllocUpTo(4, 100*hw.GiB, int64(hw.Page2M))
	if got != 4*hw.GiB {
		t.Fatalf("AllocUpTo from 4GiB domain got %d", got)
	}
}

func TestFragmentRejectsBadArgs(t *testing.T) {
	p := newKNLPhys()
	if _, err := p.Fragment(0, 0, 100); err == nil {
		t.Fatal("holeSize 0 accepted")
	}
	if _, err := p.Fragment(0, 100, 50); err == nil {
		t.Fatal("stride < holeSize accepted")
	}
	if _, err := p.Fragment(77, 4096, 1*hw.GiB); err == nil {
		t.Fatal("unknown domain accepted")
	}
}

func TestFragmentCapsLargePages(t *testing.T) {
	// The McKernel late-boot story: after fragmentation, 1 GiB pages are
	// no longer obtainable even though most memory is free.
	p := newKNLPhys()
	if _, err := p.Fragment(0, int64(hw.Page4K), 512*hw.MiB); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Alloc(0, int64(hw.Page1G), int64(hw.Page1G)); err == nil {
		t.Fatal("1GiB page allocated from fragmented domain")
	}
	// 2 MiB pages still work.
	if _, err := p.Alloc(0, int64(hw.Page2M), int64(hw.Page2M)); err != nil {
		t.Fatalf("2MiB alloc failed on fragmented domain: %v", err)
	}
}

// Property test: random alloc/free sequences keep the allocator invariants
// and conserve bytes.
func TestPhysRandomOpsInvariant(t *testing.T) {
	check := func(seed uint64, steps uint8) bool {
		p := newKNLPhys()
		rng := sim.NewRNG(seed)
		var live []Extent
		var liveSum int64
		for i := 0; i < int(steps); i++ {
			if len(live) == 0 || rng.Bool(0.6) {
				dom := rng.Intn(8)
				size := int64(1+rng.Intn(1024)) * int64(hw.Page4K)
				e, err := p.Alloc(dom, size, int64(hw.Page4K))
				if err == nil {
					live = append(live, e)
					liveSum += e.Size
				}
			} else {
				i := rng.Intn(len(live))
				e := live[i]
				live = append(live[:i], live[i+1:]...)
				liveSum -= e.Size
				p.Free(e)
			}
			if p.CheckInvariants() != nil {
				return false
			}
		}
		var used int64
		for d := 0; d < 8; d++ {
			used += p.UsedBytes(d)
		}
		return used == liveSum
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLargestFreeUnknownDomain(t *testing.T) {
	p := newKNLPhys()
	if p.LargestFree(99) != 0 {
		t.Fatal("unknown domain largest free != 0")
	}
}

func TestExtentEnd(t *testing.T) {
	e := Extent{Domain: 0, Start: 100, Size: 50}
	if e.End() != 150 {
		t.Fatalf("End = %d", e.End())
	}
}
