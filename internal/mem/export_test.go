package mem

// CheckInvariants exposes the allocator's internal consistency check to
// tests.
func (p *Phys) CheckInvariants() error { return p.checkInvariants() }
