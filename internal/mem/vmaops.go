package mem

import (
	"fmt"

	"mklite/internal/hw"
)

// This file implements the VMA manipulation operations behind mprotect,
// partial munmap, move_pages and mbind: protection tracking, area
// splitting, and physical page migration between NUMA domains.

// Prot is a VMA's protection, mmap-style.
type Prot int

const (
	ProtRead Prot = 1 << iota
	ProtWrite
	ProtExec
)

// Has reports whether all bits of q are set.
func (p Prot) Has(q Prot) bool { return p&q == q }

// String renders the protection as "rwx" notation.
func (p Prot) String() string {
	b := []byte("---")
	if p.Has(ProtRead) {
		b[0] = 'r'
	}
	if p.Has(ProtWrite) {
		b[1] = 'w'
	}
	if p.Has(ProtExec) {
		b[2] = 'x'
	}
	return string(b)
}

// Protect changes the protection of [offset, offset+length) within v.
// When the range covers the whole area the VMA is updated in place;
// otherwise the area is split so each resulting VMA has uniform
// protection, exactly as mprotect splits Linux VMAs. It returns the VMA
// covering the protected range.
func (as *AddrSpace) Protect(v *VMA, offset, length int64, prot Prot) (*VMA, error) {
	if offset < 0 || length <= 0 || offset+length > v.Size {
		return nil, fmt.Errorf("mem: Protect range [%d,%d) outside area of %d bytes", offset, offset+length, v.Size)
	}
	offset = offset / int64(hw.Page4K) * int64(hw.Page4K)
	length = roundUp(length, int64(hw.Page4K))
	if offset+length > v.Size {
		length = v.Size - offset
	}
	if offset == 0 && length == v.Size {
		v.Prot = prot
		return v, nil
	}
	mid, err := as.splitRange(v, offset, length)
	if err != nil {
		return nil, err
	}
	mid.Prot = prot
	return mid, nil
}

// UnmapRange removes [offset, offset+length) from v, returning its
// physical memory and splitting the area if the range is interior.
func (as *AddrSpace) UnmapRange(v *VMA, offset, length int64) error {
	if offset < 0 || length <= 0 || offset+length > v.Size {
		return fmt.Errorf("mem: UnmapRange [%d,%d) outside area of %d bytes", offset, offset+length, v.Size)
	}
	offset = offset / int64(hw.Page4K) * int64(hw.Page4K)
	length = roundUp(length, int64(hw.Page4K))
	if offset+length > v.Size {
		length = v.Size - offset
	}
	if offset == 0 && length == v.Size {
		return as.Unmap(v)
	}
	mid, err := as.splitRange(v, offset, length)
	if err != nil {
		return err
	}
	return as.Unmap(mid)
}

// splitRange splits v so that [offset, offset+length) becomes its own VMA,
// and returns that middle VMA. Backings are divided by their cumulative
// position (population is sequential from the area base).
func (as *AddrSpace) splitRange(v *VMA, offset, length int64) (*VMA, error) {
	if offset%int64(hw.Page4K) != 0 || length%int64(hw.Page4K) != 0 {
		return nil, fmt.Errorf("mem: split at non-page boundary")
	}
	// Right split first (if the range does not reach the end).
	if end := offset + length; end < v.Size {
		if _, err := as.splitAt(v, end); err != nil {
			return nil, err
		}
	}
	if offset == 0 {
		return v, nil
	}
	right, err := as.splitAt(v, offset)
	if err != nil {
		return nil, err
	}
	return right, nil
}

// splitAt splits v at the given offset, returning the new right-hand VMA.
func (as *AddrSpace) splitAt(v *VMA, offset int64) (*VMA, error) {
	if offset <= 0 || offset >= v.Size {
		return nil, fmt.Errorf("mem: splitAt(%d) outside area of %d bytes", offset, v.Size)
	}
	right := &VMA{
		Start:        v.Start + offset,
		Size:         v.Size - offset,
		Kind:         v.Kind,
		Pol:          v.Pol,
		Prot:         v.Prot,
		DemandActive: v.DemandActive,
	}
	// Divide backings at the offset; backings are ordered by population
	// sequence, which proceeds from the base of the area.
	var cum int64
	var leftBackings, rightBackings []Backing
	for _, b := range v.Backings {
		switch {
		case cum+b.Ext.Size <= offset:
			leftBackings = append(leftBackings, b)
		case cum >= offset:
			rightBackings = append(rightBackings, b)
		default:
			// The boundary falls inside this extent: split it at
			// page granularity of the extent's page size if
			// possible, else at 4 KiB.
			cut := offset - cum
			granule := int64(b.Page)
			if cut%granule != 0 {
				granule = int64(hw.Page4K)
			}
			cut = cut / granule * granule
			if cut > 0 {
				leftBackings = append(leftBackings, Backing{
					Ext:  Extent{Domain: b.Ext.Domain, Start: b.Ext.Start, Size: cut},
					Page: pageFor(granule),
				})
			}
			if rest := b.Ext.Size - cut; rest > 0 {
				rightBackings = append(rightBackings, Backing{
					Ext:  Extent{Domain: b.Ext.Domain, Start: b.Ext.Start + cut, Size: rest},
					Page: pageFor(granule),
				})
			}
		}
		cum += b.Ext.Size
	}
	v.Size = offset
	v.Backings = leftBackings
	right.Backings = rightBackings
	var leftPop, rightPop int64
	for _, b := range leftBackings {
		leftPop += b.Ext.Size
	}
	for _, b := range rightBackings {
		rightPop += b.Ext.Size
	}
	v.Populated = leftPop
	right.Populated = rightPop
	as.insert(right)
	return right, nil
}

func pageFor(granule int64) hw.PageSize {
	switch {
	case granule >= int64(hw.Page1G):
		return hw.Page1G
	case granule >= int64(hw.Page2M):
		return hw.Page2M
	default:
		return hw.Page4K
	}
}

// Migrate moves v's physical backing into the given domain preference
// order (move_pages / mbind with MPOL_MF_MOVE semantics): pages already in
// an acceptable domain stay, the rest are copied to newly allocated pages
// and the old ones freed. It returns the mechanical work (bytes copied
// appear as ZeroedBytes-equivalent copy traffic in Work.CopiedBytes).
func (as *AddrSpace) Migrate(v *VMA, domains []int) (Work, error) {
	if len(domains) == 0 {
		return Work{}, fmt.Errorf("mem: Migrate with no target domains")
	}
	accept := map[int]bool{}
	for _, d := range domains {
		accept[d] = true
	}
	var w Work
	var kept []Backing
	for _, b := range v.Backings {
		if accept[b.Ext.Domain] {
			kept = append(kept, b)
			continue
		}
		// Allocate replacement pages in preference order, preserving
		// the page granularity where the targets allow it.
		moved := false
		for _, d := range domains {
			exts, got := as.phys.AllocUpTo(d, b.Ext.Size, int64(b.Page))
			if got < b.Ext.Size {
				// Partial: roll back this attempt and try the
				// next domain at the same granularity.
				as.phys.FreeAll(exts)
				continue
			}
			for _, e := range exts {
				kept = append(kept, Backing{Ext: e, Page: b.Page})
			}
			as.phys.Free(b.Ext)
			w.CopiedBytes += b.Ext.Size
			w.PagesMapped += b.Ext.Size / int64(b.Page)
			moved = true
			break
		}
		if !moved {
			// No room anywhere acceptable: keep the page where it
			// is (move_pages reports per-page status; we fold it
			// into the failed-bytes count).
			kept = append(kept, b)
			w.FailedBytes += b.Ext.Size
		}
	}
	v.Backings = kept
	return w, nil
}

// DomainsOf returns the set of NUMA domains currently backing v, sorted by
// resident bytes (descending).
func (v *VMA) DomainsOf() map[int]int64 {
	out := map[int]int64{}
	for _, b := range v.Backings {
		out[b.Ext.Domain] += b.Ext.Size
	}
	return out
}

// Remap grows or shrinks a VMA in place (mremap semantics). Growth extends
// the virtual area; for upfront-mapped areas the extension is physically
// backed immediately (LWK behaviour), for demand areas it faults later.
// Shrinking releases the physical tail. Returns the mechanical work.
func (as *AddrSpace) Remap(v *VMA, newSize int64) (Work, error) {
	if newSize <= 0 {
		return Work{}, fmt.Errorf("mem: Remap to non-positive size %d", newSize)
	}
	newSize = roundUp(newSize, int64(hw.Page4K))
	var w Work
	switch {
	case newSize == v.Size:
		return w, nil
	case newSize < v.Size:
		freed := as.Trim(v, newSize)
		v.Size = newSize
		w.FreedBytes = freed
	default:
		// The bump allocator leaves 1 GiB-aligned gaps between areas,
		// so in-place growth is available up to the next area.
		grow := newSize - v.Size
		if next := as.nextAreaStart(v); v.End()+grow > next {
			return w, fmt.Errorf("mem: Remap collision: area at %#x cannot grow %d bytes", v.Start, grow)
		}
		v.Size = newSize
		if !v.DemandActive {
			got := as.populate(v, grow)
			if got < grow {
				if !v.Pol.FallbackDemand {
					// Roll back the growth.
					as.Trim(v, newSize-grow)
					v.Size = newSize - grow
					return w, fmt.Errorf("mem: Remap cannot back %d bytes", grow)
				}
				v.DemandActive = true
			}
			w.AllocatedBytes = got
			w.ZeroedBytes = got
			w.PagesMapped = got / int64(hw.Page4K)
		}
	}
	return w, nil
}

// nextAreaStart returns the start of the area following v, or the maximum
// address when v is the last.
func (as *AddrSpace) nextAreaStart(v *VMA) int64 {
	next := int64(1) << 62
	for _, w := range as.vmas {
		if w.Start > v.Start && w.Start < next {
			next = w.Start
		}
	}
	return next
}
