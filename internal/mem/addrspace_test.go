package mem

import (
	"testing"

	"mklite/internal/hw"
)

// lwkPolicy mimics an LWK mapping: MCDRAM first, spill to DDR, large pages,
// upfront.
func lwkPolicy() Policy {
	return Policy{
		Domains: []int{4, 5, 6, 7, 0, 1, 2, 3},
		MaxPage: hw.Page1G,
	}
}

func TestMapUpfrontBacksImmediately(t *testing.T) {
	as := NewAddrSpace(newKNLPhys())
	v, err := as.Map(8*hw.GiB, VMAAnon, lwkPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if v.Populated != 8*hw.GiB {
		t.Fatalf("populated = %d", v.Populated)
	}
	if v.DemandActive {
		t.Fatal("upfront mapping marked demand-active")
	}
	// Touching an upfront mapping is free.
	res := as.Touch(v, 0, 8*hw.GiB)
	if res.Faults != 0 {
		t.Fatalf("faults on upfront mapping: %d", res.Faults)
	}
}

func TestMapMCDRAMFirstThenSpill(t *testing.T) {
	as := NewAddrSpace(newKNLPhys())
	// 20 GiB > 16 GiB MCDRAM: must spill into DDR4.
	v, err := as.Map(20*hw.GiB, VMAAnon, lwkPolicy())
	if err != nil {
		t.Fatal(err)
	}
	kinds := as.BytesByKind()
	if kinds[hw.MCDRAM] != 16*hw.GiB {
		t.Fatalf("MCDRAM bytes = %d, want all 16 GiB", kinds[hw.MCDRAM])
	}
	if kinds[hw.DDR4] != 4*hw.GiB {
		t.Fatalf("DDR4 bytes = %d, want 4 GiB spill", kinds[hw.DDR4])
	}
	_ = v
}

func TestMapUsesLargePages(t *testing.T) {
	as := NewAddrSpace(newKNLPhys())
	if _, err := as.Map(4*hw.GiB, VMAAnon, lwkPolicy()); err != nil {
		t.Fatal(err)
	}
	mix := as.PageMix()
	if mix[MixKey{Kind: hw.MCDRAM, Page: hw.Page1G}] < 0.99 {
		t.Fatalf("expected 1GiB MCDRAM pages to dominate, mix=%v", mix)
	}
}

func TestMapSmallUsesSmallPages(t *testing.T) {
	as := NewAddrSpace(newKNLPhys())
	v, err := as.Map(64*hw.KiB, VMAAnon, Policy{Domains: []int{0}, MaxPage: hw.Page1G})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range v.Backings {
		if b.Page != hw.Page4K {
			t.Fatalf("64KiB mapping got %v pages", b.Page)
		}
	}
}

func TestMapRoundsToPageSize(t *testing.T) {
	as := NewAddrSpace(newKNLPhys())
	v, err := as.Map(100, VMAAnon, Policy{Domains: []int{0}, MaxPage: hw.Page4K})
	if err != nil {
		t.Fatal(err)
	}
	if v.Size != int64(hw.Page4K) {
		t.Fatalf("size = %d, want one page", v.Size)
	}
}

func TestMapErrors(t *testing.T) {
	as := NewAddrSpace(newKNLPhys())
	if _, err := as.Map(0, VMAAnon, lwkPolicy()); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := as.Map(4096, VMAAnon, Policy{}); err == nil {
		t.Fatal("empty domains accepted")
	}
	if _, err := as.Map(4096, VMAAnon, Policy{Domains: []int{0}, MaxPage: 12345}); err == nil {
		t.Fatal("bad MaxPage accepted")
	}
}

func TestMapRigidFailsWhenShort(t *testing.T) {
	// mOS-style rigid mapping: no fallback, so mapping more than the
	// allowed domains hold must fail and leak nothing.
	phys := newKNLPhys()
	as := NewAddrSpace(phys)
	_, err := as.Map(5*hw.GiB, VMAAnon, Policy{Domains: []int{4}, MaxPage: hw.Page1G})
	if err == nil {
		t.Fatal("rigid over-map succeeded")
	}
	if phys.UsedBytes(4) != 0 {
		t.Fatalf("failed map leaked %d bytes", phys.UsedBytes(4))
	}
}

func TestMapFallbackDemand(t *testing.T) {
	// McKernel-style: upfront if possible, degrade to demand paging when
	// the preferred domain cannot back everything.
	as := NewAddrSpace(newKNLPhys())
	v, err := as.Map(5*hw.GiB, VMAAnon, Policy{
		Domains:        []int{4},
		MaxPage:        hw.Page1G,
		FallbackDemand: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !v.DemandActive {
		t.Fatal("fallback mapping not demand-active")
	}
	if v.Populated != 4*hw.GiB {
		t.Fatalf("populated = %d, want the 4 GiB that fit", v.Populated)
	}
	// Touching past the populated region faults, but domain 4 is full:
	// no further domains in policy, so the touch populates nothing.
	res := as.Touch(v, 0, 5*hw.GiB)
	if res.BytesPopulated != 0 {
		t.Fatalf("touch populated %d from exhausted domain", res.BytesPopulated)
	}
}

func TestDemandMappingFaultsOnTouch(t *testing.T) {
	as := NewAddrSpace(newKNLPhys())
	v, err := as.Map(16*hw.MiB, VMAAnon, Policy{Domains: []int{0}, MaxPage: hw.Page4K, Demand: true})
	if err != nil {
		t.Fatal(err)
	}
	if v.Populated != 0 {
		t.Fatal("demand mapping populated at map time")
	}
	res := as.Touch(v, 0, 8*hw.MiB)
	wantFaults := 8 * hw.MiB / int64(hw.Page4K)
	if res.Faults != wantFaults {
		t.Fatalf("faults = %d, want %d", res.Faults, wantFaults)
	}
	if v.Populated != 8*hw.MiB {
		t.Fatalf("populated = %d", v.Populated)
	}
	// Touching the same range again is free.
	res = as.Touch(v, 0, 8*hw.MiB)
	if res.Faults != 0 {
		t.Fatalf("re-touch faulted %d times", res.Faults)
	}
	if as.TotalFaults != wantFaults {
		t.Fatalf("TotalFaults = %d", as.TotalFaults)
	}
}

func TestTouchWithPageOverride(t *testing.T) {
	as := NewAddrSpace(newKNLPhys())
	v, _ := as.Map(8*hw.MiB, VMAAnon, Policy{Domains: []int{0}, MaxPage: hw.Page2M, Demand: true})
	// Override down to 4K: fault count must reflect 4K granularity.
	res := as.TouchWithPage(v, 0, 2*hw.MiB, hw.Page4K)
	if res.Faults != 512 {
		t.Fatalf("faults = %d, want 512", res.Faults)
	}
	// Remaining region at policy page size: 2MiB granules.
	res = as.Touch(v, 0, 4*hw.MiB)
	if res.Faults != 1 {
		t.Fatalf("faults = %d, want 1 2MiB fault", res.Faults)
	}
}

func TestUnmapReturnsMemory(t *testing.T) {
	phys := newKNLPhys()
	as := NewAddrSpace(phys)
	v, err := as.Map(2*hw.GiB, VMAAnon, lwkPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if err := as.Unmap(v); err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 8; d++ {
		if phys.UsedBytes(d) != 0 {
			t.Fatalf("domain %d still has %d used", d, phys.UsedBytes(d))
		}
	}
	if err := as.Unmap(v); err == nil {
		t.Fatal("double unmap succeeded")
	}
}

func TestReleaseAll(t *testing.T) {
	phys := newKNLPhys()
	as := NewAddrSpace(phys)
	for i := 0; i < 4; i++ {
		if _, err := as.Map(1*hw.GiB, VMAAnon, lwkPolicy()); err != nil {
			t.Fatal(err)
		}
	}
	as.ReleaseAll()
	if as.MappedBytes() != 0 || as.PopulatedBytes() != 0 {
		t.Fatal("ReleaseAll left mappings")
	}
	for d := 0; d < 8; d++ {
		if phys.UsedBytes(d) != 0 {
			t.Fatalf("domain %d leaked", d)
		}
	}
}

func TestTwoSpacesCompeteForMCDRAM(t *testing.T) {
	// Two "ranks" on one node: the first grabs MCDRAM, the second is
	// pushed to DDR4 — upfront division of memory, the mOS default.
	phys := newKNLPhys()
	a := NewAddrSpace(phys)
	b := NewAddrSpace(phys)
	if _, err := a.Map(16*hw.GiB, VMAAnon, lwkPolicy()); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Map(8*hw.GiB, VMAAnon, lwkPolicy()); err != nil {
		t.Fatal(err)
	}
	if a.BytesByKind()[hw.MCDRAM] != 16*hw.GiB {
		t.Fatal("first space did not get all MCDRAM")
	}
	if b.BytesByKind()[hw.MCDRAM] != 0 {
		t.Fatal("second space got MCDRAM that should be exhausted")
	}
}

func TestDemandSharesMCDRAMBetweenSpaces(t *testing.T) {
	// With demand paging and interleaved touching, both ranks end up
	// with a share of MCDRAM — the McKernel CCS-QCD advantage.
	phys := newKNLPhys()
	a := NewAddrSpace(phys)
	b := NewAddrSpace(phys)
	pol := Policy{Domains: []int{4, 5, 6, 7, 0, 1, 2, 3}, MaxPage: hw.Page2M, Demand: true}
	va, _ := a.Map(12*hw.GiB, VMAAnon, pol)
	vb, _ := b.Map(12*hw.GiB, VMAAnon, pol)
	// Interleave touches in 1 GiB strides.
	for off := int64(0); off < 12*hw.GiB; off += hw.GiB {
		a.Touch(va, 0, off+hw.GiB)
		b.Touch(vb, 0, off+hw.GiB)
	}
	am := a.BytesByKind()[hw.MCDRAM]
	bm := b.BytesByKind()[hw.MCDRAM]
	if am == 0 || bm == 0 {
		t.Fatalf("demand paging did not share MCDRAM: a=%d b=%d", am, bm)
	}
	if am+bm != 16*hw.GiB {
		t.Fatalf("MCDRAM not fully used: %d", am+bm)
	}
}

func TestPageMixFractionsSumToOne(t *testing.T) {
	as := NewAddrSpace(newKNLPhys())
	if _, err := as.Map(3*hw.GiB+512*hw.MiB, VMAAnon, lwkPolicy()); err != nil {
		t.Fatal(err)
	}
	mix := as.PageMix()
	sum := 0.0
	for _, f := range mix {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("mix fractions sum to %v: %v", sum, mix)
	}
}

func TestPageMixEmpty(t *testing.T) {
	as := NewAddrSpace(newKNLPhys())
	if len(as.PageMix()) != 0 {
		t.Fatal("empty space has non-empty mix")
	}
}

func TestTrimPartialExtent(t *testing.T) {
	phys := newKNLPhys()
	as := NewAddrSpace(phys)
	v, _ := as.Map(8*hw.MiB, VMAAnon, Policy{Domains: []int{0}, MaxPage: hw.Page2M, Demand: true})
	as.Touch(v, 0, 8*hw.MiB)
	freed := as.Trim(v, 3*hw.MiB)
	// Must free down to the next 2MiB boundary above 3MiB => keep 4MiB.
	if v.Populated != 4*hw.MiB {
		t.Fatalf("populated after trim = %d", v.Populated)
	}
	if freed != 4*hw.MiB {
		t.Fatalf("freed = %d", freed)
	}
	if err := phys.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Re-touch refaults the trimmed region.
	res := as.Touch(v, 0, 8*hw.MiB)
	if res.Faults == 0 {
		t.Fatal("no refaults after trim")
	}
}

func TestVMAKindStrings(t *testing.T) {
	kinds := []VMAKind{VMAAnon, VMAHeap, VMAStack, VMABSS, VMAText, VMAShared, VMADevice}
	want := []string{"anon", "heap", "stack", "bss", "text", "shared", "device"}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Fatalf("kind %d = %q", i, k.String())
		}
	}
}

func TestMappedAndPopulatedBytes(t *testing.T) {
	as := NewAddrSpace(newKNLPhys())
	v, _ := as.Map(4*hw.MiB, VMAAnon, Policy{Domains: []int{0}, MaxPage: hw.Page4K, Demand: true})
	if as.MappedBytes() != 4*hw.MiB {
		t.Fatalf("mapped = %d", as.MappedBytes())
	}
	as.Touch(v, 0, 1*hw.MiB)
	if as.PopulatedBytes() != 1*hw.MiB {
		t.Fatalf("populated = %d", as.PopulatedBytes())
	}
}
