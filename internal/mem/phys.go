// Package mem implements the memory-management substrate shared by the
// three kernel models: a per-NUMA-domain physical extent allocator, virtual
// address spaces with VMAs, placement policies (NUMA preference, MCDRAM
// spill, upfront vs demand paging), and the two heap engines whose contrast
// drives the paper's Lulesh results — the Linux demand-paged heap and the
// LWKs' HPC-optimised heap.
package mem

import (
	"fmt"
	"sort"

	"mklite/internal/hw"
)

// Extent is a contiguous physical memory range inside one NUMA domain.
type Extent struct {
	Domain int
	Start  int64
	Size   int64
}

// End returns the first byte after the extent.
func (e Extent) End() int64 { return e.Start + e.Size }

// freeRange is an entry of a domain's free list.
type freeRange struct {
	start, size int64
}

// physDomain tracks one NUMA domain's physical memory.
type physDomain struct {
	id       int
	kind     hw.MemKind
	capacity int64       // bytes this allocator owns in the domain
	bound    int64       // end of the domain's address range (>= capacity)
	free     []freeRange // sorted by start, coalesced
	freeSum  int64
}

// Phys is a node's physical memory allocator: one extent allocator per NUMA
// domain. It is the single authority on physical occupancy — every kernel
// and every process address space on a node allocates through it.
type Phys struct {
	node    *hw.NodeSpec
	domains map[int]*physDomain
}

// NewPhys returns an allocator with every domain of the node entirely free.
func NewPhys(node *hw.NodeSpec) *Phys {
	p := &Phys{node: node, domains: make(map[int]*physDomain)}
	for _, d := range node.Domains {
		p.domains[d.ID] = &physDomain{
			id:       d.ID,
			kind:     d.Mem.Kind,
			capacity: d.Mem.Capacity,
			bound:    d.Mem.Capacity,
			free:     []freeRange{{start: 0, size: d.Mem.Capacity}},
			freeSum:  d.Mem.Capacity,
		}
	}
	return p
}

// NewPhysView builds an allocator over a set of granted extents — the
// LWK's view of the memory IHK carved out of a running Linux. The extents
// keep their node-level offsets, so contiguity (and therefore large-page
// eligibility) is exactly what the donor could provide: an LWK booted late
// inherits Linux's fragmentation, one booted early gets pristine ranges
// (section II-D5).
func NewPhysView(node *hw.NodeSpec, grants []Extent) *Phys {
	p := &Phys{node: node, domains: make(map[int]*physDomain)}
	for _, d := range node.Domains {
		p.domains[d.ID] = &physDomain{
			id:    d.ID,
			kind:  d.Mem.Kind,
			bound: d.Mem.Capacity,
		}
	}
	for _, g := range grants {
		d, ok := p.domains[g.Domain]
		if !ok {
			panic(fmt.Sprintf("mem: grant in unknown domain %d", g.Domain))
		}
		d.capacity += g.Size
		d.freeSum += g.Size
		// Insert sorted; grants from a single donor never overlap.
		idx := sort.Search(len(d.free), func(i int) bool { return d.free[i].start >= g.Start })
		d.free = append(d.free, freeRange{})
		copy(d.free[idx+1:], d.free[idx:])
		d.free[idx] = freeRange{start: g.Start, size: g.Size}
	}
	// Coalesce adjacent grants.
	for _, d := range p.domains {
		var out []freeRange
		for _, f := range d.free {
			if n := len(out); n > 0 && out[n-1].start+out[n-1].size == f.start {
				out[n-1].size += f.size
				continue
			}
			out = append(out, f)
		}
		d.free = out
	}
	return p
}

// Node returns the hardware spec the allocator was built for.
func (p *Phys) Node() *hw.NodeSpec { return p.node }

func (p *Phys) domain(id int) (*physDomain, error) {
	d, ok := p.domains[id]
	if !ok {
		return nil, fmt.Errorf("mem: no NUMA domain %d", id)
	}
	return d, nil
}

// FreeBytes returns the total free bytes in a domain (0 for unknown ids).
func (p *Phys) FreeBytes(domain int) int64 {
	if d, ok := p.domains[domain]; ok {
		return d.freeSum
	}
	return 0
}

// Capacity returns the domain capacity in bytes (0 for unknown ids).
func (p *Phys) Capacity(domain int) int64 {
	if d, ok := p.domains[domain]; ok {
		return d.capacity
	}
	return 0
}

// UsedBytes returns allocated bytes in a domain.
func (p *Phys) UsedBytes(domain int) int64 {
	if d, ok := p.domains[domain]; ok {
		return d.capacity - d.freeSum
	}
	return 0
}

// LargestFree returns the size of the largest free contiguous range in the
// domain. Large-page eligibility depends on this, which is how early-boot
// reservation (mOS) beats late requests (McKernel) for 1 GiB pages.
func (p *Phys) LargestFree(domain int) int64 {
	d, ok := p.domains[domain]
	if !ok {
		return 0
	}
	var max int64
	for _, f := range d.free {
		if f.size > max {
			max = f.size
		}
	}
	return max
}

// Alloc carves a contiguous extent of exactly size bytes, aligned to align,
// from the given domain using first fit. size must be positive and align a
// positive power of two.
func (p *Phys) Alloc(domain int, size, align int64) (Extent, error) {
	if size <= 0 {
		return Extent{}, fmt.Errorf("mem: Alloc of non-positive size %d", size)
	}
	if align <= 0 || align&(align-1) != 0 {
		return Extent{}, fmt.Errorf("mem: Alloc with bad alignment %d", align)
	}
	d, err := p.domain(domain)
	if err != nil {
		return Extent{}, err
	}
	for i, f := range d.free {
		start := (f.start + align - 1) &^ (align - 1)
		pad := start - f.start
		if f.size < pad+size {
			continue
		}
		// Split the free range into [pre][allocated][post].
		var repl []freeRange
		if pad > 0 {
			repl = append(repl, freeRange{start: f.start, size: pad})
		}
		if rest := f.size - pad - size; rest > 0 {
			repl = append(repl, freeRange{start: start + size, size: rest})
		}
		d.free = append(d.free[:i], append(repl, d.free[i+1:]...)...)
		d.freeSum -= size
		return Extent{Domain: domain, Start: start, Size: size}, nil
	}
	return Extent{}, fmt.Errorf("mem: domain %d cannot satisfy %d bytes contiguous (free %d, largest %d)",
		domain, size, d.freeSum, p.LargestFree(domain))
}

// AllocUpTo allocates as much of size as the domain can provide, possibly
// as multiple extents, each aligned to align and a multiple of align. It
// returns the extents and the total bytes obtained (<= size). Used for
// best-effort spill allocation.
func (p *Phys) AllocUpTo(domain int, size, align int64) ([]Extent, int64) {
	var out []Extent
	var got int64
	for got < size {
		want := size - got
		// Try the largest aligned chunk that fits somewhere.
		chunk := p.largestAlignedChunk(domain, align)
		if chunk == 0 {
			break
		}
		if chunk > want {
			chunk = want &^ (align - 1)
			if chunk == 0 {
				break
			}
		}
		e, err := p.Alloc(domain, chunk, align)
		if err != nil {
			break
		}
		out = append(out, e)
		got += e.Size
	}
	return out, got
}

// largestAlignedChunk returns the largest multiple of align obtainable as a
// single extent from the domain.
func (p *Phys) largestAlignedChunk(domain int, align int64) int64 {
	d, ok := p.domains[domain]
	if !ok {
		return 0
	}
	var best int64
	for _, f := range d.free {
		start := (f.start + align - 1) &^ (align - 1)
		avail := f.size - (start - f.start)
		if avail < align {
			continue
		}
		if c := avail &^ (align - 1); c > best {
			best = c
		}
	}
	return best
}

// Free returns an extent to its domain, coalescing adjacent free ranges.
// Freeing overlapping or never-allocated ranges panics: physical
// double-free is always a kernel-model bug.
func (p *Phys) Free(e Extent) {
	d, err := p.domain(e.Domain)
	if err != nil {
		panic(err)
	}
	if e.Size <= 0 || e.Start < 0 || e.End() > d.bound {
		panic(fmt.Sprintf("mem: Free of bad extent %+v", e))
	}
	idx := sort.Search(len(d.free), func(i int) bool { return d.free[i].start >= e.Start })
	// Overlap checks against neighbours.
	if idx > 0 && d.free[idx-1].start+d.free[idx-1].size > e.Start {
		panic(fmt.Sprintf("mem: double free of %+v", e))
	}
	if idx < len(d.free) && d.free[idx].start < e.End() {
		panic(fmt.Sprintf("mem: double free of %+v", e))
	}
	d.free = append(d.free, freeRange{})
	copy(d.free[idx+1:], d.free[idx:])
	d.free[idx] = freeRange{start: e.Start, size: e.Size}
	d.freeSum += e.Size
	// Coalesce with the right neighbour, then the left.
	if idx+1 < len(d.free) && d.free[idx].start+d.free[idx].size == d.free[idx+1].start {
		d.free[idx].size += d.free[idx+1].size
		d.free = append(d.free[:idx+1], d.free[idx+2:]...)
	}
	if idx > 0 && d.free[idx-1].start+d.free[idx-1].size == d.free[idx].start {
		d.free[idx-1].size += d.free[idx].size
		d.free = append(d.free[:idx], d.free[idx+1:]...)
	}
}

// FreeAll returns a batch of extents.
func (p *Phys) FreeAll(es []Extent) {
	for _, e := range es {
		p.Free(e)
	}
}

// Fragment artificially splits the domain's free space by pinning holes of
// holeSize every strideBytes, returning the pinned extents. It models
// unmovable Linux data structures landing in memory before a late-booting
// LWK (McKernel) can reserve it, which caps the contiguity available for
// 1 GiB pages (paper, section II-D5).
func (p *Phys) Fragment(domain int, holeSize, stride int64) ([]Extent, error) {
	if holeSize <= 0 || stride <= holeSize {
		return nil, fmt.Errorf("mem: Fragment with holeSize %d, stride %d", holeSize, stride)
	}
	d, err := p.domain(domain)
	if err != nil {
		return nil, err
	}
	var pins []Extent
	for at := stride - holeSize; at+holeSize <= d.bound; at += stride {
		e, err := p.allocAt(domain, at, holeSize)
		if err != nil {
			continue // already-allocated region; skip
		}
		pins = append(pins, e)
	}
	return pins, nil
}

// allocAt allocates the specific range [start, start+size) if free.
func (p *Phys) allocAt(domain int, start, size int64) (Extent, error) {
	d, err := p.domain(domain)
	if err != nil {
		return Extent{}, err
	}
	for i, f := range d.free {
		if f.start <= start && start+size <= f.start+f.size {
			var repl []freeRange
			if pre := start - f.start; pre > 0 {
				repl = append(repl, freeRange{start: f.start, size: pre})
			}
			if post := f.start + f.size - (start + size); post > 0 {
				repl = append(repl, freeRange{start: start + size, size: post})
			}
			d.free = append(d.free[:i], append(repl, d.free[i+1:]...)...)
			d.freeSum -= size
			return Extent{Domain: domain, Start: start, Size: size}, nil
		}
	}
	return Extent{}, fmt.Errorf("mem: range [%d,%d) not free in domain %d", start, start+size, domain)
}

// checkInvariants verifies the free list is sorted, coalesced, in-bounds
// and consistent with freeSum. Exposed to tests via export_test.go.
func (p *Phys) checkInvariants() error {
	for id, d := range p.domains {
		var sum int64
		var prevEnd int64 = -1
		for i, f := range d.free {
			if f.size <= 0 {
				return fmt.Errorf("domain %d: empty free range at %d", id, i)
			}
			if f.start < 0 || f.start+f.size > d.bound {
				return fmt.Errorf("domain %d: free range out of bounds", id)
			}
			if prevEnd >= 0 && f.start <= prevEnd {
				return fmt.Errorf("domain %d: free list unsorted or uncoalesced at %d", id, i)
			}
			prevEnd = f.start + f.size
			sum += f.size
		}
		if sum != d.freeSum {
			return fmt.Errorf("domain %d: freeSum %d != computed %d", id, d.freeSum, sum)
		}
	}
	return nil
}
