package mem

import (
	"testing"

	"mklite/internal/hw"
)

func newLinuxHeap(t *testing.T, thp bool) *LinuxHeap {
	t.Helper()
	as := NewAddrSpace(newKNLPhys())
	h, err := NewLinuxHeap(as, 1*hw.GiB, []int{0, 1, 2, 3}, thp)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func newHPCHeap(t *testing.T, cfg HPCHeapConfig) *HPCHeap {
	t.Helper()
	as := NewAddrSpace(newKNLPhys())
	if cfg.Domains == nil {
		cfg.Domains = []int{4, 5, 6, 7, 0, 1, 2, 3}
	}
	h, err := NewHPCHeap(as, 1*hw.GiB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestLinuxHeapGrowDefersPhysical(t *testing.T) {
	h := newLinuxHeap(t, false)
	size, w, err := h.Sbrk(10 * hw.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if size != 10*hw.MiB {
		t.Fatalf("size = %d", size)
	}
	if w.AllocatedBytes != 0 || w.Faults != 0 {
		t.Fatalf("grow did physical work: %+v", w)
	}
	if !w.SyscallIssued {
		t.Fatal("brk not marked as a syscall")
	}
}

func TestLinuxHeapTouchFaults4K(t *testing.T) {
	h := newLinuxHeap(t, false)
	h.Sbrk(4 * hw.MiB)
	w := h.TouchUpTo(4 * hw.MiB)
	if w.Faults != 1024 {
		t.Fatalf("faults = %d, want 1024 (4KiB pages)", w.Faults)
	}
	if w.ZeroedBytes != 4*hw.MiB {
		t.Fatalf("zeroed = %d, Linux clears every faulted page", w.ZeroedBytes)
	}
	// Second touch is free.
	if w := h.TouchUpTo(4 * hw.MiB); w.Faults != 0 {
		t.Fatalf("re-touch faulted %d", w.Faults)
	}
}

func TestLinuxHeapTHPOnlyWhenAligned(t *testing.T) {
	h := newLinuxHeap(t, true)
	// Aligned 4 MiB growth from an aligned (zero) break: THP applies.
	h.Sbrk(4 * hw.MiB)
	w := h.TouchUpTo(4 * hw.MiB)
	if w.Faults != 2 {
		t.Fatalf("aligned THP faults = %d, want 2 2MiB faults", w.Faults)
	}
	// Misaligned growth: starts at 4MiB+12KiB after a small grow.
	h.Sbrk(12 * 1024)
	h.TouchUpTo(h.Size())
	h.Sbrk(4 * hw.MiB)
	w = h.TouchUpTo(h.Size())
	if w.Faults < 1024 {
		t.Fatalf("misaligned growth took %d faults, expected 4KiB faulting", w.Faults)
	}
}

func TestLinuxHeapShrinkReleasesAndRefaults(t *testing.T) {
	h := newLinuxHeap(t, false)
	h.Sbrk(8 * hw.MiB)
	h.TouchUpTo(8 * hw.MiB)
	size, w, err := h.Sbrk(-4 * hw.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if size != 4*hw.MiB {
		t.Fatalf("size after shrink = %d", size)
	}
	if w.FreedBytes != 4*hw.MiB {
		t.Fatalf("freed = %d, Linux returns memory on shrink", w.FreedBytes)
	}
	// Regrow and re-touch: the released range must fault again.
	h.Sbrk(4 * hw.MiB)
	w2 := h.TouchUpTo(8 * hw.MiB)
	if w2.Faults != 1024 {
		t.Fatalf("refaults = %d, want 1024", w2.Faults)
	}
}

func TestLinuxHeapShrinkBelowZeroClamps(t *testing.T) {
	h := newLinuxHeap(t, false)
	h.Sbrk(1 * hw.MiB)
	size, _, err := h.Sbrk(-10 * hw.MiB)
	if err != nil || size != 0 {
		t.Fatalf("size = %d, err = %v", size, err)
	}
}

func TestLinuxHeapQuery(t *testing.T) {
	h := newLinuxHeap(t, false)
	h.Sbrk(1024)
	size, _, _ := h.Sbrk(0)
	if size != 1024 {
		t.Fatalf("query = %d", size)
	}
	if h.Stats().Queries != 1 {
		t.Fatalf("queries = %d", h.Stats().Queries)
	}
}

func TestLinuxHeapLimit(t *testing.T) {
	h := newLinuxHeap(t, false)
	if _, _, err := h.Sbrk(2 * hw.GiB); err == nil {
		t.Fatal("over-limit grow accepted")
	}
}

func TestHPCHeapBacksAtBrkTime(t *testing.T) {
	h := newHPCHeap(t, DefaultHPCHeapConfig(nil))
	_, w, err := h.Sbrk(3 * hw.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if w.AllocatedBytes < 3*hw.MiB {
		t.Fatalf("allocated %d at brk time, want >= request", w.AllocatedBytes)
	}
	if w.AllocatedBytes%int64(hw.Page2M) != 0 {
		t.Fatalf("allocation %d not 2MiB granular", w.AllocatedBytes)
	}
	// No faults ever.
	if tw := h.TouchUpTo(3 * hw.MiB); tw.Faults != 0 {
		t.Fatalf("HPC heap faulted %d times", tw.Faults)
	}
}

func TestHPCHeapZeroFirst4KOnly(t *testing.T) {
	cfg := DefaultHPCHeapConfig(nil)
	cfg.Aggressive = false
	h := newHPCHeap(t, cfg)
	_, w, _ := h.Sbrk(4 * hw.MiB)
	// Two 2MiB chunks, 4KiB zeroed each.
	if w.ZeroedBytes != 2*int64(hw.Page4K) {
		t.Fatalf("zeroed = %d, want 8KiB", w.ZeroedBytes)
	}
}

func TestHPCHeapIgnoresShrink(t *testing.T) {
	h := newHPCHeap(t, DefaultHPCHeapConfig(nil))
	h.Sbrk(8 * hw.MiB)
	reserved := h.Reserved()
	size, w, err := h.Sbrk(-4 * hw.MiB)
	if err != nil {
		t.Fatal(err)
	}
	// The break moves (the application's view shrinks) ...
	if size != 4*hw.MiB {
		t.Fatalf("size after shrink = %d", size)
	}
	// ... but no physical memory is returned.
	if w.FreedBytes != 0 {
		t.Fatalf("ignored shrink freed %d", w.FreedBytes)
	}
	if h.Reserved() != reserved {
		t.Fatalf("reserved changed: %d -> %d", reserved, h.Reserved())
	}
	if h.Stats().Shrinks != 1 {
		t.Fatal("shrink not counted")
	}
}

func TestHPCHeapShrinkHonouredWhenConfigured(t *testing.T) {
	cfg := DefaultHPCHeapConfig(nil)
	cfg.IgnoreShrink = false
	cfg.Aggressive = false
	h := newHPCHeap(t, cfg)
	h.Sbrk(8 * hw.MiB)
	size, w, _ := h.Sbrk(-4 * hw.MiB)
	if size != 4*hw.MiB {
		t.Fatalf("size = %d", size)
	}
	if w.FreedBytes != 4*hw.MiB {
		t.Fatalf("freed = %d", w.FreedBytes)
	}
}

func TestHPCHeapAggressiveOverReserves(t *testing.T) {
	cfg := DefaultHPCHeapConfig(nil)
	cfg.Aggressive = true
	h := newHPCHeap(t, cfg)
	h.Sbrk(16 * hw.MiB)
	// A small subsequent grow should be absorbed by the over-reserve
	// with no new allocation.
	_, w, _ := h.Sbrk(1 * hw.MiB)
	if w.AllocatedBytes != 0 {
		t.Fatalf("aggressive heap allocated %d on small regrow", w.AllocatedBytes)
	}
	if h.Reserved() < h.Size() {
		t.Fatal("reserved below size")
	}
}

func TestHPCHeapGrowReusesRetainedMemory(t *testing.T) {
	// Shrink then regrow: the retained pages are reused with no new
	// allocation — the LWK pattern that kills the LTP page-fault test.
	cfg := DefaultHPCHeapConfig(nil)
	cfg.Aggressive = false
	h := newHPCHeap(t, cfg)
	h.Sbrk(8 * hw.MiB)
	h.Sbrk(-8 * hw.MiB) // break moves to 0; physical memory retained
	size, w, _ := h.Sbrk(2 * hw.MiB)
	if size != 2*hw.MiB {
		t.Fatalf("size = %d", size)
	}
	if w.AllocatedBytes != 0 {
		t.Fatalf("regrow allocated %d, want reuse of retained pages", w.AllocatedBytes)
	}
}

func TestHPCHeapPreferredDomainsMCDRAM(t *testing.T) {
	h := newHPCHeap(t, DefaultHPCHeapConfig(nil))
	h.Sbrk(64 * hw.MiB)
	kinds := h.as.BytesByKind()
	if kinds[hw.MCDRAM] == 0 {
		t.Fatal("HPC heap did not allocate from MCDRAM first")
	}
}

func TestHPCHeapQueryAndStats(t *testing.T) {
	h := newHPCHeap(t, DefaultHPCHeapConfig(nil))
	h.Sbrk(0)
	h.Sbrk(1 * hw.MiB)
	h.Sbrk(-512 * 1024)
	st := h.Stats()
	if st.Queries != 1 || st.Grows != 1 || st.Shrinks != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Calls() != 3 {
		t.Fatalf("calls = %d", st.Calls())
	}
	if st.Peak != 1*hw.MiB {
		t.Fatalf("peak = %d", st.Peak)
	}
}

func TestHPCHeapLimit(t *testing.T) {
	h := newHPCHeap(t, DefaultHPCHeapConfig(nil))
	if _, _, err := h.Sbrk(2 * hw.GiB); err == nil {
		t.Fatal("over-limit grow accepted")
	}
}

// TestLuleshBrkTraceShape replays the paper's Lulesh -s30 brk trace
// statistics (section IV): ~7.5k queries, ~3k growth requests, ~1.5k
// shrinks; cumulative growth orders of magnitude beyond the peak. The HPC
// heap must service it with zero faults; the Linux heap must fault heavily.
func TestLuleshBrkTraceShape(t *testing.T) {
	run := func(h Heap) (faults int64, calls int64) {
		// A compact synthetic trace with the paper's ratio
		// (queries : grows : shrinks ~ 7526 : 3028 : 1499) and
		// shrink-then-regrow churn.
		for i := 0; i < 750; i++ {
			h.Sbrk(0)
			if i%2 == 0 {
				if _, _, err := h.Sbrk(256 * 1024); err != nil {
					t.Fatal(err)
				}
				w := h.TouchUpTo(h.Size())
				faults += w.Faults
			}
			if i%5 == 4 {
				h.Sbrk(-128 * 1024)
			}
			w := h.TouchUpTo(h.Size())
			faults += w.Faults
		}
		st := h.Stats()
		return faults, st.Calls()
	}

	lin := newLinuxHeap(t, false)
	linFaults, linCalls := run(lin)
	hpc := newHPCHeap(t, DefaultHPCHeapConfig(nil))
	hpcFaults, hpcCalls := run(hpc)

	if linCalls != hpcCalls {
		t.Fatalf("call counts differ: %d vs %d", linCalls, hpcCalls)
	}
	if hpcFaults != 0 {
		t.Fatalf("HPC heap faulted %d times", hpcFaults)
	}
	if linFaults < 1000 {
		t.Fatalf("Linux heap faulted only %d times; churn should refault", linFaults)
	}
	// Cumulative growth far exceeds peak on the Linux side (the 22 GB vs
	// 87 MB phenomenon, scaled down).
	st := lin.Stats()
	if st.GrownBytes <= st.Peak {
		t.Fatalf("grown %d <= peak %d; trace should churn", st.GrownBytes, st.Peak)
	}
}
