package mem

import (
	"fmt"
	"sort"

	"mklite/internal/hw"
	"mklite/internal/trace"
)

// VMAKind classifies a virtual memory area. The paper's kernels expose
// per-area placement controls ("fine-grain options to regulate the
// placement of certain process memory areas; e.g., the stack, heap or the
// BSS"), so the kind is part of the model.
type VMAKind int

const (
	VMAAnon VMAKind = iota
	VMAHeap
	VMAStack
	VMABSS
	VMAText
	VMAShared // inter-process shared mapping (MPI intra-node comm)
	VMADevice // device mapping (fabric MMIO)
)

// String names the VMA kind.
func (k VMAKind) String() string {
	switch k {
	case VMAAnon:
		return "anon"
	case VMAHeap:
		return "heap"
	case VMAStack:
		return "stack"
	case VMABSS:
		return "bss"
	case VMAText:
		return "text"
	case VMAShared:
		return "shared"
	case VMADevice:
		return "device"
	default:
		return fmt.Sprintf("VMAKind(%d)", int(k))
	}
}

// Policy governs how a mapping is backed by physical memory.
type Policy struct {
	// Domains is the NUMA preference order; allocation spills down the
	// list as domains fill. Empty means "any domain" is an error — the
	// kernel must always decide.
	Domains []int
	// MaxPage is the largest page size the mapping may use. Both LWKs
	// use 1 GiB "if the size of the mapping allows it"; Linux
	// anonymous memory gets 2 MiB at most (THP).
	MaxPage hw.PageSize
	// Demand defers physical allocation to first touch (Linux default;
	// McKernel fallback mode). When false, the full mapping is
	// physically backed at map time (LWK default).
	Demand bool
	// FallbackDemand makes an upfront mapping degrade to demand paging
	// instead of failing when the preferred domains cannot back it
	// entirely — McKernel's distinctive feature (section II-D3). The
	// current mOS "is more rigid: only physically available memory can
	// be allocated".
	FallbackDemand bool
}

// Backing records one physical extent backing part of a VMA, mapped with a
// specific page size.
type Backing struct {
	Ext  Extent
	Page hw.PageSize
}

// VMA is one virtual memory area of an address space.
type VMA struct {
	Start int64
	Size  int64
	Kind  VMAKind
	Pol   Policy
	// Prot is the area's protection (mprotect).
	Prot Prot

	Backings  []Backing
	Populated int64 // bytes physically backed so far
	Faults    int64 // demand faults taken on this area
	// DemandActive reports that the area is being demand-paged (either
	// by policy or after a fallback).
	DemandActive bool
}

// End returns the first address after the area.
func (v *VMA) End() int64 { return v.Start + v.Size }

// MixKey identifies a (memory kind, page size) class for page-mix
// accounting.
type MixKey struct {
	Kind hw.MemKind
	Page hw.PageSize
}

// TouchResult reports what servicing a first-touch traversal did. Where
// the placed bytes landed is not repeated here: per-domain residency is a
// property of the VMA (VMA.DomainsOf), and keeping a map on this result —
// returned once per Touch on the cluster hot path — was the largest
// allocation site in the whole harness.
type TouchResult struct {
	Faults         int64
	BytesPopulated int64
}

// AddrSpace is a process virtual address space. All physical backing comes
// from the node's shared Phys allocator, so address spaces on the same node
// compete for MCDRAM exactly as the paper describes.
type AddrSpace struct {
	phys *Phys
	vmas []*VMA // sorted by Start
	next int64  // bump pointer for new mappings
	sink *trace.Sink

	// TotalFaults counts demand faults across the whole space.
	TotalFaults int64
}

// mapBase is where the bump allocator starts; 1 GiB aligned so any page
// size can be used without extra alignment work.
const mapBase = int64(1) << 40

// NewAddrSpace returns an empty address space drawing from phys.
func NewAddrSpace(phys *Phys) *AddrSpace {
	return &AddrSpace{phys: phys, next: mapBase}
}

// Phys returns the node allocator the space draws from.
func (as *AddrSpace) Phys() *Phys { return as.phys }

// SetSink attaches a run's trace sink. The sink only observes — placement,
// fault and VMA counters — and never alters behaviour, so a nil sink and an
// attached sink produce byte-identical simulation results.
func (as *AddrSpace) SetSink(s *trace.Sink) { as.sink = s }

// Sink returns the attached trace sink (nil when tracing is off).
func (as *AddrSpace) Sink() *trace.Sink { return as.sink }

// notePlacement records where freshly allocated extents landed: bytes per
// memory kind, plus the paper's "silent spill" — bytes that ended up in DDR4
// while the policy's first preference was an MCDRAM domain.
func (as *AddrSpace) notePlacement(pol Policy, dom int, bytes int64) {
	if bytes <= 0 {
		return
	}
	if as.kindOfDomain(dom) == hw.MCDRAM {
		as.sink.CountKey(trace.KeyMemBytesMCDRAM, bytes)
		return
	}
	as.sink.CountKey(trace.KeyMemBytesDDR4, bytes)
	if len(pol.Domains) > 0 && as.kindOfDomain(pol.Domains[0]) == hw.MCDRAM {
		as.sink.CountKey(trace.KeyMemSpillDDR4Bytes, bytes)
	}
}

// faultKey maps a page size to its interned demand-fault counter key.
func faultKey(p hw.PageSize) trace.Key {
	switch p {
	case hw.Page2M:
		return trace.KeyMemFault2M
	case hw.Page1G:
		return trace.KeyMemFault1G
	default:
		return trace.KeyMemFault4K
	}
}

// VMAs returns the areas sorted by start address.
func (as *AddrSpace) VMAs() []*VMA { return as.vmas }

// MappedBytes returns the total virtual bytes mapped.
func (as *AddrSpace) MappedBytes() int64 {
	var t int64
	for _, v := range as.vmas {
		t += v.Size
	}
	return t
}

// PopulatedBytes returns the total physically backed bytes.
func (as *AddrSpace) PopulatedBytes() int64 {
	var t int64
	for _, v := range as.vmas {
		t += v.Populated
	}
	return t
}

// Map creates a new VMA of the given size. Size is rounded up to 4 KiB.
// Upfront policies back the area immediately; demand policies leave it
// unpopulated. An upfront mapping that cannot be fully backed fails unless
// FallbackDemand is set, in which case whatever was obtained upfront is
// kept and the rest is demand-paged.
func (as *AddrSpace) Map(size int64, kind VMAKind, pol Policy) (*VMA, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mem: Map of non-positive size %d", size)
	}
	if len(pol.Domains) == 0 {
		return nil, fmt.Errorf("mem: Map with empty domain preference")
	}
	if pol.MaxPage == 0 {
		pol.MaxPage = hw.Page4K
	}
	if !pol.MaxPage.Valid() {
		return nil, fmt.Errorf("mem: Map with invalid MaxPage %d", pol.MaxPage)
	}
	size = roundUp(size, int64(hw.Page4K))
	v := &VMA{Start: as.next, Size: size, Kind: kind, Pol: pol, Prot: ProtRead | ProtWrite}
	as.next = roundUp(as.next+size, int64(hw.Page1G))

	if pol.Demand {
		v.DemandActive = true
	} else {
		got := as.populate(v, size)
		if got < size {
			if !pol.FallbackDemand {
				// Roll back: free what we grabbed.
				as.releaseBackings(v)
				return nil, fmt.Errorf("mem: cannot back %d bytes upfront (got %d) in domains %v",
					size, got, pol.Domains)
			}
			v.DemandActive = true
			as.sink.CountKey(trace.KeyMemVMADemandFallback, 1)
		}
	}
	as.insert(v)
	as.sink.CountKey(trace.KeyMemVMAMap, 1)
	return v, nil
}

// insert keeps vmas sorted by start.
func (as *AddrSpace) insert(v *VMA) {
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].Start >= v.Start })
	as.vmas = append(as.vmas, nil)
	copy(as.vmas[i+1:], as.vmas[i:])
	as.vmas[i] = v
}

// Unmap removes the area and returns its physical memory.
func (as *AddrSpace) Unmap(v *VMA) error {
	for i, w := range as.vmas {
		if w == v {
			as.releaseBackings(v)
			as.vmas = append(as.vmas[:i], as.vmas[i+1:]...)
			as.sink.CountKey(trace.KeyMemVMAUnmap, 1)
			return nil
		}
	}
	return fmt.Errorf("mem: Unmap of unknown VMA at %#x", v.Start)
}

func (as *AddrSpace) releaseBackings(v *VMA) {
	for _, b := range v.Backings {
		as.phys.Free(b.Ext)
	}
	v.Backings = nil
	v.Populated = 0
}

// populate backs up to want more bytes of v, using the policy's domain
// preference order and the largest page sizes available, returning the
// bytes actually backed.
//
// The traversal order — domains outer, page sizes inner descending —
// produces exactly the behaviour the paper describes: fill MCDRAM with the
// largest pages its contiguity allows, then spill to DDR4, "silently".
func (as *AddrSpace) populate(v *VMA, want int64) int64 {
	counting := as.sink.Counting()
	var got int64
	for _, dom := range v.Pol.Domains {
		if got >= want {
			break
		}
		for _, p := range pageSizesDescending(v.Pol.MaxPage) {
			if got >= want {
				break
			}
			need := (want - got) / int64(p) * int64(p)
			if need == 0 {
				// Tail smaller than this page size: only the
				// smallest page size may map it.
				if p == hw.Page4K {
					need = roundUp(want-got, int64(p))
				} else {
					continue
				}
			}
			exts, n := as.phys.AllocUpTo(dom, need, int64(p))
			for _, e := range exts {
				v.Backings = append(v.Backings, Backing{Ext: e, Page: p})
			}
			if counting {
				as.notePlacement(v.Pol, dom, n)
			}
			got += n
		}
	}
	v.Populated += got
	return got
}

// Touch services a first-touch traversal of [offset, offset+length) of v.
// For populated (upfront) ranges it is free of faults. For demand-paged
// areas it allocates pages (at the policy's page size, falling back to
// smaller sizes and further domains as memory runs out) and counts one
// fault per newly mapped page.
//
// The model treats population as cumulative rather than address-precise:
// the area keeps a high-water mark of populated bytes, which matches the
// streaming first-touch patterns of the HPC workloads being modelled.
func (as *AddrSpace) Touch(v *VMA, offset, length int64) TouchResult {
	return as.TouchWithPage(v, offset, length, v.Pol.MaxPage)
}

// TouchWithPage is Touch with an explicit upper bound on the page size used
// for this traversal. The Linux heap model uses it to express THP's
// alignment sensitivity: an unaligned growth segment faults in 4 KiB pages
// even when the policy would otherwise allow 2 MiB.
func (as *AddrSpace) TouchWithPage(v *VMA, offset, length int64, maxPage hw.PageSize) TouchResult {
	if length <= 0 {
		return TouchResult{}
	}
	end := offset + length
	res := as.demandPopulate(v, end, maxPage, true)
	v.Faults += res.Faults
	as.TotalFaults += res.Faults
	return res
}

// PopulateTo backs v up to end bytes from its base without fault
// accounting: this is kernel-driven population at map/brk time (the LWK
// path), not application-driven faulting.
func (as *AddrSpace) PopulateTo(v *VMA, end int64) TouchResult {
	res := as.demandPopulate(v, end, v.Pol.MaxPage, false)
	res.Faults = 0
	return res
}

// Trim releases physical backing so that at most newEnd bytes stay
// populated, freeing whole extents from the most recently added backwards
// and splitting the boundary extent if needed. It returns the bytes freed.
func (as *AddrSpace) Trim(v *VMA, newEnd int64) int64 {
	if newEnd < 0 {
		newEnd = 0
	}
	var freed int64
	for v.Populated > newEnd && len(v.Backings) > 0 {
		last := &v.Backings[len(v.Backings)-1]
		excess := v.Populated - newEnd
		if last.Ext.Size <= excess {
			as.phys.Free(last.Ext)
			v.Populated -= last.Ext.Size
			freed += last.Ext.Size
			v.Backings = v.Backings[:len(v.Backings)-1]
			continue
		}
		// Partial release: keep the front of the extent, aligned to
		// its page size so the mapping stays well formed.
		granule := int64(last.Page)
		release := excess / granule * granule
		if release == 0 {
			break // sub-page tail: keep the page
		}
		keep := last.Ext.Size - release
		as.phys.Free(Extent{Domain: last.Ext.Domain, Start: last.Ext.Start + keep, Size: release})
		last.Ext.Size = keep
		v.Populated -= release
		freed += release
	}
	return freed
}

// demandPopulate extends v's populated watermark to end (clamped to the
// area size), allocating pages per the policy — capped at maxPage for this
// call — and reporting one fault per page in the result. faulting marks
// application-driven first touch (counted as demand faults in the sink);
// kernel-driven population (PopulateTo) passes false.
func (as *AddrSpace) demandPopulate(v *VMA, end int64, maxPage hw.PageSize, faulting bool) TouchResult {
	res := TouchResult{}
	if maxPage == 0 || !maxPage.Valid() {
		maxPage = v.Pol.MaxPage
	}
	if maxPage > v.Pol.MaxPage {
		maxPage = v.Pol.MaxPage
	}
	if end > v.Size {
		end = v.Size
	}
	if end <= v.Populated {
		return res // already backed
	}
	if !v.DemandActive {
		return res // fully backed upfront
	}
	need := end - v.Populated
	counting := as.sink.Counting()

	// Demand paging allocates at most page-size granules on each fault;
	// page size choice follows the policy but degrades as domains fill.
	for _, dom := range v.Pol.Domains {
		if need <= 0 {
			break
		}
		for _, p := range pageSizesDescending(maxPage) {
			if need <= 0 {
				break
			}
			granule := int64(p)
			pages := need / granule
			if pages == 0 {
				if p != hw.Page4K {
					continue
				}
				pages = 1 // final partial page
			}
			exts, n := as.phys.AllocUpTo(dom, pages*granule, granule)
			var faults int64
			for _, e := range exts {
				v.Backings = append(v.Backings, Backing{Ext: e, Page: p})
				faults += e.Size / granule
			}
			res.Faults += faults
			if counting {
				as.notePlacement(v.Pol, dom, n)
				if faulting && faults > 0 {
					as.sink.CountKey(faultKey(p), faults)
				}
			}
			if faulting && faults > 0 {
				as.sink.Observe("mem.fault_pages", faults)
			}
			v.Populated += n
			res.BytesPopulated += n
			need -= n
		}
	}
	return res
}

// PageMix returns the fraction of populated bytes per (memory kind, page
// size) class across the whole address space. The compute-phase model feeds
// this into the TLB and bandwidth models.
func (as *AddrSpace) PageMix() map[MixKey]float64 {
	byClass := map[MixKey]int64{}
	var total int64
	for _, v := range as.vmas {
		for _, b := range v.Backings {
			kind := as.kindOfDomain(b.Ext.Domain)
			byClass[MixKey{Kind: kind, Page: b.Page}] += b.Ext.Size
			total += b.Ext.Size
		}
	}
	out := make(map[MixKey]float64, len(byClass))
	if total == 0 {
		return out
	}
	for k, b := range byClass {
		out[k] = float64(b) / float64(total)
	}
	return out
}

// BytesByKind returns populated bytes per memory kind.
func (as *AddrSpace) BytesByKind() map[hw.MemKind]int64 {
	out := map[hw.MemKind]int64{}
	for _, v := range as.vmas {
		for _, b := range v.Backings {
			out[as.kindOfDomain(b.Ext.Domain)] += b.Ext.Size
		}
	}
	return out
}

func (as *AddrSpace) kindOfDomain(id int) hw.MemKind {
	if d, ok := as.phys.domains[id]; ok {
		return d.kind
	}
	return hw.DDR4
}

// ReleaseAll unmaps every area (process exit).
func (as *AddrSpace) ReleaseAll() {
	for _, v := range as.vmas {
		as.releaseBackings(v)
	}
	as.vmas = nil
}

// pageSizesDescending lists supported page sizes from max down to 4 KiB.
func pageSizesDescending(max hw.PageSize) []hw.PageSize {
	switch max {
	case hw.Page1G:
		return []hw.PageSize{hw.Page1G, hw.Page2M, hw.Page4K}
	case hw.Page2M:
		return []hw.PageSize{hw.Page2M, hw.Page4K}
	default:
		return []hw.PageSize{hw.Page4K}
	}
}

func roundUp(x, to int64) int64 {
	return (x + to - 1) / to * to
}
