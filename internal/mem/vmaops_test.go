package mem

import (
	"testing"
	"testing/quick"

	"mklite/internal/hw"
	"mklite/internal/sim"
)

func TestProtString(t *testing.T) {
	if (ProtRead | ProtWrite).String() != "rw-" {
		t.Fatalf("rw = %q", (ProtRead | ProtWrite).String())
	}
	if (ProtRead | ProtExec).String() != "r-x" {
		t.Fatal("rx")
	}
	if Prot(0).String() != "---" {
		t.Fatal("none")
	}
}

func TestMapDefaultsToReadWrite(t *testing.T) {
	as := NewAddrSpace(newKNLPhys())
	kind, pol := mem4kPolicy()
	v, _ := as.Map(1*hw.MiB, kind, pol)
	if !v.Prot.Has(ProtRead|ProtWrite) || v.Prot.Has(ProtExec) {
		t.Fatalf("default prot %v", v.Prot)
	}
}

// mem4kPolicy is a small helper for this file.
func mem4kPolicy() (VMAKind, Policy) {
	return VMAAnon, Policy{Domains: []int{0}, MaxPage: hw.Page4K}
}

func TestProtectWholeArea(t *testing.T) {
	as := NewAddrSpace(newKNLPhys())
	kind, pol := mem4kPolicy()
	v, _ := as.Map(1*hw.MiB, kind, pol)
	got, err := as.Protect(v, 0, 1*hw.MiB, ProtRead)
	if err != nil {
		t.Fatal(err)
	}
	if got != v || v.Prot != ProtRead {
		t.Fatal("whole-area protect should update in place")
	}
	if len(as.VMAs()) != 1 {
		t.Fatal("no split expected")
	}
}

func TestProtectInteriorSplitsThreeWays(t *testing.T) {
	as := NewAddrSpace(newKNLPhys())
	kind, pol := mem4kPolicy()
	v, _ := as.Map(1*hw.MiB, kind, pol)
	mid, err := as.Protect(v, 256*hw.KiB, 512*hw.KiB, ProtRead)
	if err != nil {
		t.Fatal(err)
	}
	if len(as.VMAs()) != 3 {
		t.Fatalf("%d areas after interior protect, want 3", len(as.VMAs()))
	}
	if mid.Prot != ProtRead || mid.Size != 512*hw.KiB {
		t.Fatalf("middle area: prot %v size %d", mid.Prot, mid.Size)
	}
	// Neighbours keep the original protection.
	for _, w := range as.VMAs() {
		if w != mid && w.Prot != (ProtRead|ProtWrite) {
			t.Fatalf("neighbour prot %v", w.Prot)
		}
	}
	// Sizes sum to the original.
	var total int64
	for _, w := range as.VMAs() {
		total += w.Size
	}
	if total != 1*hw.MiB {
		t.Fatalf("sizes sum to %d", total)
	}
}

func TestProtectBadRange(t *testing.T) {
	as := NewAddrSpace(newKNLPhys())
	kind, pol := mem4kPolicy()
	v, _ := as.Map(1*hw.MiB, kind, pol)
	if _, err := as.Protect(v, -1, 100, ProtRead); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, err := as.Protect(v, 0, 2*hw.MiB, ProtRead); err == nil {
		t.Fatal("oversized range accepted")
	}
}

func TestSplitPreservesPhysicalAccounting(t *testing.T) {
	phys := newKNLPhys()
	as := NewAddrSpace(phys)
	kind, pol := mem4kPolicy()
	v, _ := as.Map(8*hw.MiB, kind, pol)
	used := phys.UsedBytes(0)
	if _, err := as.Protect(v, 2*hw.MiB, 4*hw.MiB, ProtRead); err != nil {
		t.Fatal(err)
	}
	if phys.UsedBytes(0) != used {
		t.Fatal("split changed physical occupancy")
	}
	var pop int64
	for _, w := range as.VMAs() {
		pop += w.Populated
	}
	if pop != 8*hw.MiB {
		t.Fatalf("populated sums to %d", pop)
	}
	if err := phys.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUnmapRangeInterior(t *testing.T) {
	phys := newKNLPhys()
	as := NewAddrSpace(phys)
	kind, pol := mem4kPolicy()
	v, _ := as.Map(8*hw.MiB, kind, pol)
	if err := as.UnmapRange(v, 2*hw.MiB, 4*hw.MiB); err != nil {
		t.Fatal(err)
	}
	if len(as.VMAs()) != 2 {
		t.Fatalf("%d areas after punch-hole, want 2", len(as.VMAs()))
	}
	if got := phys.UsedBytes(0); got != 4*hw.MiB {
		t.Fatalf("used %d after hole, want 4 MiB", got)
	}
	if err := phys.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUnmapRangeWhole(t *testing.T) {
	phys := newKNLPhys()
	as := NewAddrSpace(phys)
	kind, pol := mem4kPolicy()
	v, _ := as.Map(2*hw.MiB, kind, pol)
	if err := as.UnmapRange(v, 0, 2*hw.MiB); err != nil {
		t.Fatal(err)
	}
	if len(as.VMAs()) != 0 || phys.UsedBytes(0) != 0 {
		t.Fatal("whole-range unmap incomplete")
	}
}

func TestSplitDemandArea(t *testing.T) {
	as := NewAddrSpace(newKNLPhys())
	v, _ := as.Map(8*hw.MiB, VMAAnon, Policy{Domains: []int{0}, MaxPage: hw.Page4K, Demand: true})
	as.Touch(v, 0, 3*hw.MiB) // partial population
	mid, err := as.Protect(v, 2*hw.MiB, 2*hw.MiB, ProtRead)
	if err != nil {
		t.Fatal(err)
	}
	// Left has 2 MiB populated, middle 1 MiB, right 0.
	if v.Populated != 2*hw.MiB {
		t.Fatalf("left populated %d", v.Populated)
	}
	if mid.Populated != 1*hw.MiB {
		t.Fatalf("middle populated %d", mid.Populated)
	}
	if !mid.DemandActive {
		t.Fatal("split lost demand flag")
	}
}

func TestMigrateMovesBacking(t *testing.T) {
	phys := newKNLPhys()
	as := NewAddrSpace(phys)
	v, _ := as.Map(64*hw.MiB, VMAAnon, Policy{Domains: []int{0}, MaxPage: hw.Page2M})
	if v.DomainsOf()[0] != 64*hw.MiB {
		t.Fatal("initial placement")
	}
	w, err := as.Migrate(v, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if w.CopiedBytes != 64*hw.MiB {
		t.Fatalf("copied %d", w.CopiedBytes)
	}
	doms := v.DomainsOf()
	if doms[4] != 64*hw.MiB || doms[0] != 0 {
		t.Fatalf("after migrate: %v", doms)
	}
	if phys.UsedBytes(0) != 0 || phys.UsedBytes(4) != 64*hw.MiB {
		t.Fatal("physical accounting after migrate")
	}
	if err := phys.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMigrateIdempotent(t *testing.T) {
	as := NewAddrSpace(newKNLPhys())
	v, _ := as.Map(8*hw.MiB, VMAAnon, Policy{Domains: []int{0}, MaxPage: hw.Page2M})
	w, err := as.Migrate(v, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if w.CopiedBytes != 0 {
		t.Fatal("migrating to the current domain should copy nothing")
	}
}

func TestMigrateFullTargetReportsFailure(t *testing.T) {
	phys := newKNLPhys()
	as := NewAddrSpace(phys)
	// Fill MCDRAM domain 4 completely.
	blocker, _ := as.Map(4*hw.GiB, VMAAnon, Policy{Domains: []int{4}, MaxPage: hw.Page1G})
	_ = blocker
	v, _ := as.Map(8*hw.MiB, VMAAnon, Policy{Domains: []int{0}, MaxPage: hw.Page2M})
	w, err := as.Migrate(v, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if w.FailedBytes != 8*hw.MiB || w.CopiedBytes != 0 {
		t.Fatalf("expected full failure: %+v", w)
	}
	// Pages stayed where they were.
	if v.DomainsOf()[0] != 8*hw.MiB {
		t.Fatal("failed migration moved pages")
	}
}

func TestMigrateRejectsEmptyTargets(t *testing.T) {
	as := NewAddrSpace(newKNLPhys())
	kind, pol := mem4kPolicy()
	v, _ := as.Map(1*hw.MiB, kind, pol)
	if _, err := as.Migrate(v, nil); err == nil {
		t.Fatal("empty target list accepted")
	}
}

// Property: splitting at random offsets conserves total size, populated
// bytes and physical occupancy.
func TestSplitConservationProperty(t *testing.T) {
	check := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		phys := newKNLPhys()
		as := NewAddrSpace(phys)
		size := int64(1+rng.Intn(16)) * hw.MiB
		v, err := as.Map(size, VMAAnon, Policy{Domains: []int{0}, MaxPage: hw.Page4K})
		if err != nil {
			return false
		}
		used := phys.UsedBytes(0)
		for i := 0; i < 4 && len(as.VMAs()) > 0; i++ {
			areas := as.VMAs()
			w := areas[rng.Intn(len(areas))]
			if w.Size <= int64(hw.Page4K) {
				continue
			}
			off := int64(rng.Intn(int(w.Size/int64(hw.Page4K)))) * int64(hw.Page4K)
			ln := w.Size - off
			if off == 0 && ln == w.Size {
				continue
			}
			if _, err := as.Protect(w, off, ln, ProtRead); err != nil {
				return false
			}
		}
		var total, pop int64
		for _, w := range as.VMAs() {
			total += w.Size
			pop += w.Populated
		}
		_ = v
		return total == size && pop == size && phys.UsedBytes(0) == used &&
			phys.CheckInvariants() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRemapGrowUpfront(t *testing.T) {
	as := NewAddrSpace(newKNLPhys())
	v, _ := as.Map(4*hw.MiB, VMAAnon, Policy{Domains: []int{0}, MaxPage: hw.Page2M})
	w, err := as.Remap(v, 8*hw.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if v.Size != 8*hw.MiB || v.Populated != 8*hw.MiB {
		t.Fatalf("size %d populated %d", v.Size, v.Populated)
	}
	if w.AllocatedBytes != 4*hw.MiB {
		t.Fatalf("allocated %d", w.AllocatedBytes)
	}
}

func TestRemapShrinkReleases(t *testing.T) {
	phys := newKNLPhys()
	as := NewAddrSpace(phys)
	v, _ := as.Map(8*hw.MiB, VMAAnon, Policy{Domains: []int{0}, MaxPage: hw.Page2M})
	w, err := as.Remap(v, 2*hw.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if w.FreedBytes != 6*hw.MiB || phys.UsedBytes(0) != 2*hw.MiB {
		t.Fatalf("freed %d, used %d", w.FreedBytes, phys.UsedBytes(0))
	}
}

func TestRemapNoop(t *testing.T) {
	as := NewAddrSpace(newKNLPhys())
	v, _ := as.Map(4*hw.MiB, VMAAnon, Policy{Domains: []int{0}, MaxPage: hw.Page2M})
	if w, err := as.Remap(v, 4*hw.MiB); err != nil || w != (Work{}) {
		t.Fatalf("no-op remap: %+v, %v", w, err)
	}
	if _, err := as.Remap(v, 0); err == nil {
		t.Fatal("zero size accepted")
	}
}

func TestRemapDemandGrowthFaultsLater(t *testing.T) {
	as := NewAddrSpace(newKNLPhys())
	v, _ := as.Map(4*hw.MiB, VMAAnon, Policy{Domains: []int{0}, MaxPage: hw.Page2M, Demand: true})
	as.Touch(v, 0, 4*hw.MiB)
	w, err := as.Remap(v, 8*hw.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if w.AllocatedBytes != 0 {
		t.Fatal("demand growth should not allocate eagerly")
	}
	res := as.Touch(v, 0, 8*hw.MiB)
	if res.Faults == 0 {
		t.Fatal("grown region did not fault")
	}
}

func TestRemapCollision(t *testing.T) {
	as := NewAddrSpace(newKNLPhys())
	v, _ := as.Map(4*hw.MiB, VMAAnon, Policy{Domains: []int{0}, MaxPage: hw.Page2M})
	as.Map(4*hw.MiB, VMAAnon, Policy{Domains: []int{0}, MaxPage: hw.Page2M})
	// The gap to the next area is under 2 GiB; growing past it must fail.
	if _, err := as.Remap(v, 4*hw.GiB); err == nil {
		t.Fatal("collision not detected")
	}
	if v.Size != 4*hw.MiB {
		t.Fatal("failed remap changed the size")
	}
}
