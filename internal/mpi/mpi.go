// Package mpi models the message-passing runtime the applications use:
// intra-node exchanges over shared memory, inter-node exchanges over the
// fabric, and the standard collectives (barrier, broadcast, reduce,
// allreduce, allgather, alltoall) plus nearest-neighbour halo exchange.
//
// The model returns *wire* times — what a collective costs on a perfectly
// quiet machine. Noise amplification (the max-over-ranks arrival skew that
// produces the paper's Linux cliffs) is composed on top by the cluster
// harness, which samples per-rank detours and charges the collective the
// worst one; keeping the two concerns separate makes the ablations clean.
package mpi

import (
	"fmt"
	"math"

	"mklite/internal/fabric"
	"mklite/internal/sim"
)

// Comm is a communicator over a concrete job layout.
type Comm struct {
	Fabric       *fabric.Spec
	Nodes        int
	RanksPerNode int
	// IntraLatency is the shared-memory message latency within a node.
	IntraLatency sim.Duration
	// IntraBandwidth is the shared-memory copy bandwidth in GiB/s.
	IntraBandwidth float64
}

// New builds a communicator. RanksPerNode and Nodes must be positive.
func New(fab *fabric.Spec, nodes, ranksPerNode int) (*Comm, error) {
	if nodes <= 0 || ranksPerNode <= 0 {
		return nil, fmt.Errorf("mpi: bad layout %d nodes x %d ranks", nodes, ranksPerNode)
	}
	if fab == nil {
		return nil, fmt.Errorf("mpi: nil fabric")
	}
	return &Comm{
		Fabric:         fab,
		Nodes:          nodes,
		RanksPerNode:   ranksPerNode,
		IntraLatency:   400 * sim.Nanosecond,
		IntraBandwidth: 6, // GiB/s effective single-pair shm copy on KNL
	}, nil
}

// Ranks returns the total rank count.
func (c *Comm) Ranks() int { return c.Nodes * c.RanksPerNode }

// CollResult reports a collective's wire time and per-rank message count
// (the count drives syscall-offload penalties on kernel-involved fabrics).
type CollResult struct {
	Time sim.Duration
	// Messages is the fabric (inter-node) message count per rank,
	// averaged over ranks.
	Messages float64
	// IntraMessages is the shared-memory message count per rank.
	IntraMessages float64
}

// interHops is the hop count used for collective stages: the diameter at
// this node count (collectives at scale are dominated by the far pairs of
// recursive doubling).
func (c *Comm) interHops() int { return c.Fabric.MaxHops(c.Nodes) }

// interStep is one inter-node exchange of the given payload.
func (c *Comm) interStep(bytes int64) sim.Duration {
	return c.Fabric.PointToPoint(bytes, c.interHops())
}

// intraStep is one shared-memory exchange of the given payload.
func (c *Comm) intraStep(bytes int64) sim.Duration {
	if bytes <= 0 {
		return c.IntraLatency
	}
	return c.IntraLatency + sim.DurationOf(float64(bytes)/(c.IntraBandwidth*math.Exp2(30)))
}

func log2ceil(n int) int {
	if n <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

// Allreduce models the hierarchical implementation production MPIs use on
// many-core nodes: a shared-memory tree reduction to a node leader,
// recursive doubling among leaders, then an intra-node broadcast.
func (c *Comm) Allreduce(bytes int64) CollResult {
	if bytes < 0 {
		panic(fmt.Sprintf("mpi: negative allreduce size %d", bytes))
	}
	intraSteps := log2ceil(c.RanksPerNode)
	interSteps := log2ceil(c.Nodes)
	t := sim.Duration(0)
	// Reduce to leader and broadcast back: two intra sweeps.
	t += sim.Duration(2*intraSteps) * c.intraStep(bytes)
	// Leaders run recursive doubling.
	t += sim.Duration(interSteps) * c.interStep(bytes)
	return CollResult{
		Time: t,
		// Only leaders (1/RanksPerNode of ranks) touch the fabric;
		// average per rank.
		Messages:      float64(interSteps) / float64(c.RanksPerNode),
		IntraMessages: float64(2 * intraSteps),
	}
}

// Barrier is an 8-byte allreduce.
func (c *Comm) Barrier() CollResult { return c.Allreduce(8) }

// Bcast models a binomial broadcast: intra-node fan-out after a leader
// tree over the fabric.
func (c *Comm) Bcast(bytes int64) CollResult {
	interSteps := log2ceil(c.Nodes)
	intraSteps := log2ceil(c.RanksPerNode)
	return CollResult{
		Time:          sim.Duration(interSteps)*c.interStep(bytes) + sim.Duration(intraSteps)*c.intraStep(bytes),
		Messages:      float64(interSteps) / float64(c.RanksPerNode),
		IntraMessages: float64(intraSteps),
	}
}

// Reduce costs the same wire time as Bcast with the flow reversed.
func (c *Comm) Reduce(bytes int64) CollResult { return c.Bcast(bytes) }

// Allgather models recursive doubling with doubling payloads: total traffic
// per rank is bytes*(ranks-1), latency log2(ranks).
func (c *Comm) Allgather(bytesPerRank int64) CollResult {
	steps := log2ceil(c.Ranks())
	total := bytesPerRank * int64(c.Ranks()-1)
	// The payload-dominated cost: total bytes over the injection
	// bandwidth, plus a latency term per step.
	bw := sim.DurationOf(float64(total) / (c.Fabric.InjectionBandwidth * math.Exp2(30)))
	return CollResult{
		Time:     sim.Duration(steps)*c.interStep(0) + bw,
		Messages: float64(steps),
	}
}

// Alltoall models the pairwise-exchange algorithm: bandwidth dominated at
// scale, with one message per peer.
func (c *Comm) Alltoall(bytesPerPeer int64) CollResult {
	peers := c.Ranks() - 1
	if peers <= 0 {
		return CollResult{}
	}
	// Per-node injected volume: every local rank sends to every
	// off-node rank.
	offNodePeers := peers - (c.RanksPerNode - 1)
	volume := int64(c.RanksPerNode) * bytesPerPeer * int64(offNodePeers)
	bwTime := sim.DurationOf(float64(volume) / (c.Fabric.InjectionBandwidth * math.Exp2(30)))
	alpha := c.interStep(0)
	// Messages pipeline; charge one alpha per doubling stage rather
	// than per peer.
	return CollResult{
		Time:          sim.Duration(log2ceil(c.Ranks()))*alpha + bwTime,
		Messages:      float64(offNodePeers),
		IntraMessages: float64(c.RanksPerNode - 1),
	}
}

// HaloExchange models nearest-neighbour boundary exchange: `neighbors`
// simultaneous sends of `bytes` each; off-node links serialise on the
// injection bandwidth.
func (c *Comm) HaloExchange(bytes int64, neighbors int) CollResult {
	if neighbors <= 0 {
		return CollResult{}
	}
	// With RanksPerNode ranks per node, a fraction of neighbours are
	// intra-node. For a 3D node grid the off-node fraction follows the
	// subdomain surface: it is zero on one node and ramps towards one
	// half as the node grid grows (interior rank pairs stay on-node).
	offNode := 0
	if c.Nodes > 1 {
		offFrac := 0.5 * (1 - math.Pow(float64(c.Nodes), -1.0/3.0))
		if c.RanksPerNode == 1 {
			offFrac = 1 // every neighbour is on another node
		}
		offNode = int(float64(neighbors)*offFrac + 0.5)
		if offNode < 1 {
			offNode = 1
		}
		if offNode > neighbors {
			offNode = neighbors
		}
	}
	intra := neighbors - offNode
	t := sim.Duration(0)
	if intra > 0 {
		t += c.intraStep(bytes) // intra exchanges proceed in parallel pairs
	}
	if offNode > 0 {
		volume := bytes * int64(offNode)
		t += c.interStep(0) + sim.DurationOf(float64(volume)/(c.Fabric.InjectionBandwidth*math.Exp2(30)))
	}
	return CollResult{
		Time:          t,
		Messages:      float64(offNode),
		IntraMessages: float64(intra),
	}
}

// PointToPoint exposes a single inter-node message send for app models
// that need raw sends.
func (c *Comm) PointToPoint(bytes int64) CollResult {
	if c.Nodes == 1 {
		return CollResult{Time: c.intraStep(bytes), IntraMessages: 1}
	}
	return CollResult{Time: c.interStep(bytes), Messages: 1}
}

// Retransmit is the wire time of one retransmitted fabric message of the
// given payload: the resent bytes cross the job's diameter once more (a
// shared-memory copy on a single node). The fault layer charges this — plus
// the retransmit timeout — for every message the degraded link drops; a
// loss inside a collective stalls every rank waiting on the reduction, so
// the harness charges the delay to the whole step.
func (c *Comm) Retransmit(bytes int64) sim.Duration {
	if c.Nodes <= 1 {
		return c.intraStep(bytes)
	}
	return c.interStep(bytes)
}

// ReduceScatter models the reduce_scatter used by ring allreduces: every
// rank ends with 1/ranks of the reduced vector; traffic per rank is
// bytes*(ranks-1)/ranks both ways.
func (c *Comm) ReduceScatter(bytes int64) CollResult {
	r := c.Ranks()
	if r <= 1 {
		return CollResult{}
	}
	steps := log2ceil(r)
	vol := bytes * int64(r-1) / int64(r)
	bw := sim.DurationOf(float64(vol) / (c.Fabric.InjectionBandwidth * math.Exp2(30)))
	return CollResult{
		Time:     sim.Duration(steps)*c.interStep(0) + bw,
		Messages: float64(steps) / float64(c.RanksPerNode),
	}
}

// Gather models a binomial gather to rank 0.
func (c *Comm) Gather(bytesPerRank int64) CollResult {
	r := c.Ranks()
	if r <= 1 {
		return CollResult{}
	}
	steps := log2ceil(r)
	// The root receives everything; its link is the bottleneck.
	vol := bytesPerRank * int64(r-1)
	bw := sim.DurationOf(float64(vol) / (c.Fabric.InjectionBandwidth * math.Exp2(30)))
	return CollResult{
		Time:     sim.Duration(steps)*c.interStep(0) + bw,
		Messages: float64(steps) / float64(c.RanksPerNode),
	}
}

// Scan models an inclusive prefix reduction (binomial, latency bound for
// the small payloads HPC codes use it with).
func (c *Comm) Scan(bytes int64) CollResult {
	steps := log2ceil(c.Ranks())
	return CollResult{
		Time:          sim.Duration(steps) * c.interStep(bytes),
		Messages:      float64(steps) / float64(c.RanksPerNode),
		IntraMessages: float64(log2ceil(c.RanksPerNode)),
	}
}
