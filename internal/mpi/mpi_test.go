package mpi

import (
	"testing"
	"testing/quick"

	"mklite/internal/fabric"
	"mklite/internal/sim"
)

func newComm(t *testing.T, nodes, rpn int) *Comm {
	t.Helper()
	c, err := New(fabric.OmniPath(), nodes, rpn)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(fabric.OmniPath(), 0, 1); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := New(fabric.OmniPath(), 1, 0); err == nil {
		t.Fatal("zero rpn accepted")
	}
	if _, err := New(nil, 1, 1); err == nil {
		t.Fatal("nil fabric accepted")
	}
}

func TestRanks(t *testing.T) {
	if newComm(t, 16, 64).Ranks() != 1024 {
		t.Fatal("ranks")
	}
}

func TestAllreduceScalesLogarithmically(t *testing.T) {
	const bytes = 1024
	t64 := newComm(t, 64, 64).Allreduce(bytes).Time
	t1024 := newComm(t, 1024, 64).Allreduce(bytes).Time
	t2048 := newComm(t, 2048, 64).Allreduce(bytes).Time
	if !(t64 < t1024 && t1024 < t2048) {
		t.Fatalf("allreduce not growing: %v %v %v", t64, t1024, t2048)
	}
	// Log scaling: doubling nodes from 1024 to 2048 adds one round, so
	// the increase must be far below 2x.
	if float64(t2048) > 1.3*float64(t1024) {
		t.Fatalf("allreduce growth super-linear: %v -> %v", t1024, t2048)
	}
}

func TestAllreduceSingleNodeUsesNoFabric(t *testing.T) {
	r := newComm(t, 1, 64).Allreduce(8)
	if r.Messages != 0 {
		t.Fatalf("single-node allreduce used %v fabric messages", r.Messages)
	}
	if r.IntraMessages == 0 {
		t.Fatal("no intra-node traffic")
	}
}

func TestBarrierIsSmallAllreduce(t *testing.T) {
	c := newComm(t, 64, 64)
	if c.Barrier().Time != c.Allreduce(8).Time {
		t.Fatal("barrier should equal 8-byte allreduce")
	}
}

func TestAllreduceMessageAccounting(t *testing.T) {
	c := newComm(t, 1024, 64)
	r := c.Allreduce(64)
	// 10 leader rounds spread over 64 ranks/node.
	want := 10.0 / 64.0
	if r.Messages < want*0.99 || r.Messages > want*1.01 {
		t.Fatalf("messages/rank = %v, want ~%v", r.Messages, want)
	}
}

func TestBcastCheaperThanAllreduce(t *testing.T) {
	c := newComm(t, 256, 64)
	if c.Bcast(4096).Time >= c.Allreduce(4096).Time {
		t.Fatal("bcast should cost less than allreduce")
	}
	if c.Reduce(4096).Time != c.Bcast(4096).Time {
		t.Fatal("reduce should mirror bcast")
	}
}

func TestAllgatherVolumeDominates(t *testing.T) {
	c := newComm(t, 16, 4)
	small := c.Allgather(64).Time
	big := c.Allgather(64 << 10).Time
	if big <= small {
		t.Fatal("allgather insensitive to payload")
	}
}

func TestAlltoallScalesWithPeers(t *testing.T) {
	t16 := newComm(t, 16, 16).Alltoall(1024).Time
	t64 := newComm(t, 64, 16).Alltoall(1024).Time
	if t64 <= t16 {
		t.Fatal("alltoall not scaling with peers")
	}
	if r := newComm(t, 1, 1).Alltoall(1024); r.Time != 0 {
		t.Fatal("1-rank alltoall should be free")
	}
}

func TestHaloExchange(t *testing.T) {
	c := newComm(t, 64, 64)
	r := c.HaloExchange(64<<10, 6)
	if r.Time <= 0 {
		t.Fatal("halo exchange free")
	}
	if r.Messages <= 0 || r.IntraMessages <= 0 {
		t.Fatalf("halo message split: %+v", r)
	}
	if int(r.Messages)+int(r.IntraMessages) != 6 {
		t.Fatalf("halo neighbors %v+%v != 6", r.Messages, r.IntraMessages)
	}
}

func TestHaloExchangeSingleNodeStaysLocal(t *testing.T) {
	r := newComm(t, 1, 64).HaloExchange(64<<10, 6)
	if r.Messages != 0 {
		t.Fatal("single-node halo used the fabric")
	}
}

func TestHaloExchangeZeroNeighbors(t *testing.T) {
	if r := newComm(t, 4, 4).HaloExchange(1024, 0); r.Time != 0 {
		t.Fatal("no neighbors should cost nothing")
	}
}

func TestPointToPoint(t *testing.T) {
	multi := newComm(t, 8, 2).PointToPoint(4096)
	if multi.Messages != 1 {
		t.Fatal("p2p message count")
	}
	single := newComm(t, 1, 2).PointToPoint(4096)
	if single.Messages != 0 || single.IntraMessages != 1 {
		t.Fatal("single-node p2p should stay in shared memory")
	}
	if single.Time >= multi.Time {
		t.Fatal("shm p2p should beat fabric p2p")
	}
}

func TestAllreducePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	newComm(t, 2, 2).Allreduce(-1)
}

// Property: all collective times are non-negative and monotone in payload.
func TestCollectiveMonotoneProperty(t *testing.T) {
	c := newComm(t, 128, 64)
	check := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return c.Allreduce(x).Time <= c.Allreduce(y).Time &&
			c.Bcast(x).Time <= c.Bcast(y).Time &&
			c.HaloExchange(x, 6).Time <= c.HaloExchange(y, 6).Time
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyMagnitudes(t *testing.T) {
	// Sanity-check against real-machine magnitudes: an 8-byte allreduce
	// over 2048 KNL nodes takes tens to hundreds of microseconds.
	c := newComm(t, 2048, 64)
	d := c.Allreduce(8).Time
	if d < 5*sim.Microsecond || d > sim.Millisecond {
		t.Fatalf("2048-node allreduce = %v, implausible", d)
	}
}

func TestReduceScatter(t *testing.T) {
	c := newComm(t, 64, 16)
	if r := c.ReduceScatter(1 << 20); r.Time <= 0 || r.Messages <= 0 {
		t.Fatalf("reduce_scatter: %+v", r)
	}
	if r := newComm(t, 1, 1).ReduceScatter(1 << 20); r.Time != 0 {
		t.Fatal("single rank should be free")
	}
	// Cheaper than a full allreduce of the same vector.
	if c.ReduceScatter(1<<20).Time >= c.Allreduce(1<<20).Time {
		t.Fatal("reduce_scatter should undercut allreduce")
	}
}

func TestGather(t *testing.T) {
	c := newComm(t, 64, 16)
	small := c.Gather(1 << 10)
	big := c.Gather(1 << 20)
	if big.Time <= small.Time {
		t.Fatal("gather insensitive to payload")
	}
	if r := newComm(t, 1, 1).Gather(1 << 10); r.Time != 0 {
		t.Fatal("single rank gather should be free")
	}
}

func TestScan(t *testing.T) {
	c16 := newComm(t, 16, 16)
	c1024 := newComm(t, 1024, 16)
	if c1024.Scan(64).Time <= c16.Scan(64).Time {
		t.Fatal("scan should grow with rank count")
	}
}
