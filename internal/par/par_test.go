package par

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"mklite/internal/sim"
)

func TestMapIndexOrder(t *testing.T) {
	for _, width := range []int{0, 1, 2, 7, 64} {
		got := MapWidth(width, 20, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("width %d: out[%d] = %d, want %d", width, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if got := Map(0, func(i int) int { return i }); got != nil {
		t.Fatalf("Map(0) = %v, want nil", got)
	}
	if got, err := MapErr(-3, func(i int) (int, error) { return i, nil }); got != nil || err != nil {
		t.Fatalf("MapErr(-3) = %v, %v", got, err)
	}
}

func TestMapWidthBounded(t *testing.T) {
	// Track the peak number of simultaneously running jobs; it must not
	// exceed the requested width.
	const width, n = 3, 64
	var cur, peak atomic.Int64
	barrier := make(chan struct{})
	go func() { close(barrier) }()
	MapWidth(width, n, func(i int) int {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		<-barrier // give other workers a chance to overlap
		cur.Add(-1)
		return i
	})
	if p := peak.Load(); p > width {
		t.Fatalf("observed %d concurrent jobs, width %d", p, width)
	}
}

func TestMapErrReturnsLowestIndexError(t *testing.T) {
	wantErr := errors.New("job 3")
	for _, width := range []int{1, 4} {
		var ran atomic.Int64
		got, err := MapWidthErr(width, 10, func(i int) (int, error) {
			ran.Add(1)
			switch i {
			case 7:
				return 0, errors.New("job 7")
			case 3:
				return 0, wantErr
			}
			return i, nil
		})
		if err == nil || err.Error() != "job 3" {
			t.Fatalf("width %d: err = %v, want lowest-index error %v", width, err, wantErr)
		}
		// No cancellation: every job ran, and the successful results
		// are intact.
		if ran.Load() != 10 {
			t.Fatalf("width %d: ran %d of 10 jobs", width, ran.Load())
		}
		if got[5] != 5 {
			t.Fatalf("width %d: successful results lost: %v", width, got)
		}
	}
}

func TestPanicCarriesJobIndex(t *testing.T) {
	for _, width := range []int{2, 8} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("width %d: panic swallowed", width)
				}
				msg := fmt.Sprint(r)
				// The lowest panicking index must be reported,
				// regardless of completion order.
				if !strings.Contains(msg, "par: job 2 panicked") || !strings.Contains(msg, "boom-2") {
					t.Fatalf("width %d: panic message %q lacks job index/value", width, msg)
				}
			}()
			MapWidth(width, 16, func(i int) int {
				if i >= 2 && i%2 == 0 {
					panic(fmt.Sprintf("boom-%d", i))
				}
				return i
			})
		}()
	}
}

func TestDefaultWidthIsGOMAXPROCS(t *testing.T) {
	// Indirect check: Map must complete with more jobs than GOMAXPROCS
	// and produce ordered output (the pool drains the surplus).
	n := runtime.GOMAXPROCS(0)*4 + 1
	got := Map(n, func(i int) int { return i })
	if len(got) != n || got[n-1] != n-1 {
		t.Fatalf("Map over %d jobs: %v", n, got)
	}
}

// TestSeedIsolationReproducible is the usage pattern the package exists
// for: each job derives its own RNG stream from (base seed, index), so the
// result is identical at any width.
func TestSeedIsolationReproducible(t *testing.T) {
	draw := func(width int) []uint64 {
		return MapWidth(width, 32, func(i int) uint64 {
			rng := sim.NewRNG(sim.StreamSeed(99, uint64(i)))
			var sum uint64
			for k := 0; k < 100; k++ {
				sum += rng.Uint64()
			}
			return sum
		})
	}
	ref := draw(1)
	for _, width := range []int{2, runtime.GOMAXPROCS(0), 16} {
		got := draw(width)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("width %d: job %d diverged from sequential reference", width, i)
			}
		}
	}
}

func TestNestedMap(t *testing.T) {
	// The grid/reps wiring nests Map inside Map; both levels must stay
	// index-ordered.
	got := MapWidth(4, 6, func(i int) []int {
		return MapWidth(4, 5, func(j int) int { return i*10 + j })
	})
	for i, row := range got {
		for j, v := range row {
			if v != i*10+j {
				t.Fatalf("nested out[%d][%d] = %d", i, j, v)
			}
		}
	}
}
