// Package par is mklite's sanctioned concurrency primitive: a bounded
// worker-pool fan-out over independent, index-addressed jobs.
//
// The simulation core promises that a run is a pure function of
// (model, seed); the mklint analyzers forbid bare goroutines in model code
// because Go's scheduler interleaving differs run to run. Parallelism is
// nevertheless the cheap speedup for the experiment harness — the paper's
// figures are sweeps of seed-isolated runs (8 apps x 3 kernels x node
// counts x repetitions) with no shared state at all. par confines the
// concurrency to exactly that shape:
//
//   - results are collected into a slice in job-index order, so the output
//     is independent of worker scheduling;
//   - every job must derive its own sim.RNG stream from the job seed
//     (sim.StreamSeed / RNG.Split) — sharing one RNG across jobs would both
//     race and make draw order scheduling-dependent. The mklint `parshare`
//     analyzer rejects closures that capture an outer RNG;
//   - a panic inside a job is captured and re-raised on the caller's
//     goroutine, annotated with the job index (the lowest panicking index,
//     deterministically, if several jobs fail);
//   - concurrency defaults to GOMAXPROCS and is overridable per call,
//     which the determinism tests use to compare widths 1, 2 and N.
//
// par is the one package in the module allowed to spawn goroutines
// (enforced by the mklint `nogoroutine` analyzer); everything else funnels
// through it.
package par

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// jobPanic carries a captured panic out of a worker.
type jobPanic struct {
	index int
	value any
	stack []byte
}

// Map runs fn(i) for every i in [0, n) on a worker pool of GOMAXPROCS
// goroutines and returns the results in index order. fn must be
// self-contained per index: any randomness must come from a sim.RNG derived
// inside the closure from the job's own seed, never from a captured
// generator.
func Map[T any](n int, fn func(i int) T) []T {
	return MapWidth(0, n, fn)
}

// MapWidth is Map with an explicit pool width. A width of zero (or less)
// selects GOMAXPROCS; width 1 degenerates to a plain sequential loop, which
// the equivalence tests use as the reference execution.
func MapWidth[T any](width, n int, fn func(i int) T) []T {
	//mklint:ignore errdrop the adapter closure never returns a non-nil error
	out, _ := mapImpl(width, n, func(i int) (T, error) { return fn(i), nil })
	return out
}

// MapErr is the errgroup-style variant: fn may fail, and the first error —
// first by job index, not by completion time, so the result is
// deterministic — is returned after all jobs have run. Unlike errgroup
// there is no cancellation: jobs are independent by contract, and letting
// the remainder finish keeps the work performed identical run to run.
func MapErr[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	return MapWidthErr(0, n, fn)
}

// MapWidthErr is MapErr with an explicit pool width (zero = GOMAXPROCS).
func MapWidthErr[T any](width, n int, fn func(i int) (T, error)) ([]T, error) {
	return mapImpl(width, n, fn)
}

func mapImpl[T any](width, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if width <= 0 {
		width = runtime.GOMAXPROCS(0)
	}
	if width > n {
		width = n
	}
	out := make([]T, n)
	errs := make([]error, n)
	if width == 1 {
		// Sequential reference path: no goroutines at all, so a panic
		// propagates natively and `go test -race` has nothing to watch.
		for i := 0; i < n; i++ {
			out[i], errs[i] = fn(i)
		}
		return out, firstErr(errs)
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	var mu sync.Mutex // guards pan
	var pan *jobPanic
	for w := 0; w < width; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				runJob(i, fn, out, errs, &mu, &pan)
			}
		}()
	}
	wg.Wait()
	if pan != nil {
		panic(fmt.Sprintf("par: job %d panicked: %v\n%s", pan.index, pan.value, pan.stack))
	}
	return out, firstErr(errs)
}

// runJob executes one job, capturing a panic rather than letting it kill
// the worker (which would deadlock the pool and lose the job index).
func runJob[T any](i int, fn func(i int) (T, error), out []T, errs []error, mu *sync.Mutex, pan **jobPanic) {
	defer func() {
		if r := recover(); r != nil {
			mu.Lock()
			if *pan == nil || i < (*pan).index {
				*pan = &jobPanic{index: i, value: r, stack: debug.Stack()}
			}
			mu.Unlock()
		}
	}()
	out[i], errs[i] = fn(i)
}

// firstErr returns the lowest-index error.
func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
