// Package obs is the facility-level observability layer on top of
// internal/trace and internal/metrics: it links what the fleet scheduler
// decides (queueing, backfill, allocation, kernel choice) to what each job's
// cluster- and kernel-level mechanisms then cost, with the job ID as the
// causal key. Three artifacts come out of one observed fleet run:
//
//   - a facility Timeline in the existing Chrome trace-event/Perfetto schema
//     ("mklite-trace/v1"): one track per node showing occupancy/co-tenancy
//     Gantt spans keyed by virtual facility time, facility-wide queue-depth
//     and occupied-node counter series, and (opt-in) every job's own
//     cluster/kernel trace events re-homed onto a per-job track via
//     trace.Rescoped — the job-scoped span linkage;
//   - a structured backfill DecisionLog ("mklite-decisions/v1") recording
//     why each job launched — FIFO head, or backfill slot together with the
//     reservation snapshot the conservative pass planned against, plus the
//     allocator's node choice — replayable and diffable like counters;
//   - a declarative SLO report evaluated deterministically from the run's
//     metrics (queue-wait quantiles, utilization, degraded jobs, ...),
//     surfaced in fleet.Result and as `mkobs check` exit status.
//
// The design contract is internal/trace's, lifted one level up:
//
//  1. Observation is passive. Nothing in this package draws from a sim.RNG
//     or feeds back into scheduling; a fleet run with observability fully
//     disabled is byte-identical to one built before this package existed,
//     and an observed run's artifacts are byte-identical at any par width.
//  2. Timeline, DecisionLog and the per-job event rings are per-run,
//     single-goroutine state — never package globals, never captured across
//     internal/par worker closures (mklint's parshare analyzer rejects the
//     capture). Worker closures build their own job-local rings; the
//     scheduler merges them in job order after the join.
//  3. Off is free. The nil *Timeline, *DecisionLog and *Options are the off
//     switches: every method is nil-receiver safe and records nothing.
//
// All timestamps are virtual nanoseconds (the same int64 unit as sim.Time);
// like internal/trace the package does not import sim. See
// docs/OBSERVABILITY.md.
package obs

// Options bundles a fleet run's observability destinations and switches.
// The zero value (and the nil pointer) disables everything. The caller owns
// Timeline and Decisions: construct them next to the run's config, pass them
// in, and read the artifacts out after the run returns — per-run state,
// exactly like a *trace.Sink.
type Options struct {
	// Timeline receives the facility occupancy/co-tenancy spans and the
	// queue-depth/occupied-node counter series (nil = off).
	Timeline *Timeline
	// Decisions receives one record per launched job explaining why it
	// started when it did (nil = off).
	Decisions *DecisionLog
	// JobCounters namespaces every job's cluster-level mechanism counters
	// as job/<id>/<name> into fleet.Result.JobCounters, preserving per-job
	// provenance through the merge. The flat job-order merge into
	// Result.Counters is unchanged — the namespaced view is additional.
	JobCounters bool
	// JobEvents collects every job's own cluster/kernel trace events into
	// a job-local ring inside the worker closure and merges them into
	// Timeline as a per-job track (trace.Rescoped with the job's pid and
	// launch time). Requires Timeline. Meant for small runs: at facility
	// scale the per-job detail dwarfs the occupancy spans.
	JobEvents bool
	// JobEventCap bounds each job-local ring (0 selects DefaultJobEventCap).
	// A job ring that evicts merges with its loss folded into the
	// timeline's dropped count, so the exported document stays honest.
	JobEventCap int
}

// DefaultJobEventCap bounds a job-local event ring when Options.JobEventCap
// is zero: generous enough that a facility-sized job (a few dozen timesteps,
// six phase spans each, plus collective instants) never evicts.
const DefaultJobEventCap = 1 << 14

// TimelineOn reports whether a facility timeline is attached.
func (o *Options) TimelineOn() bool { return o != nil && o.Timeline != nil }

// DecisionsOn reports whether a decision log is attached.
func (o *Options) DecisionsOn() bool { return o != nil && o.Decisions != nil }

// JobCountersOn reports whether per-job counter namespacing is requested.
func (o *Options) JobCountersOn() bool { return o != nil && o.JobCounters }

// JobEventsOn reports whether per-job event collection is requested (it
// needs a timeline to merge into).
func (o *Options) JobEventsOn() bool { return o != nil && o.JobEvents && o.Timeline != nil }

// JobEventRingCap returns the per-job ring capacity to use.
func (o *Options) JobEventRingCap() int {
	if o == nil || o.JobEventCap <= 0 {
		return DefaultJobEventCap
	}
	return o.JobEventCap
}

// Enabled reports whether any observability backend is on — the scheduler's
// single fast-path test.
func (o *Options) Enabled() bool {
	return o != nil && (o.Timeline != nil || o.Decisions != nil || o.JobCounters)
}
