package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// SLO grammar
//
// An SLO is a semicolon-separated list of rules, each `metric OP threshold`
// with OP one of `<=` or `>=`:
//
//	wait_p99_sec<=2.5;utilization_pct>=60;degraded_jobs<=0
//
// Metric names come from the run's metric-value map (fleet publishes its
// summary metrics there — see fleet.Result.SLO); thresholds are float64
// literals. Evaluation is strict: a rule naming a metric the run did not
// publish is an error, not a silent pass, so a typo cannot masquerade as a
// green watchdog.

// Op values for SLORule.
const (
	OpLE = "<=" // observed value must be at most the threshold
	OpGE = ">=" // observed value must be at least the threshold
)

// SLORule is one declarative objective: Metric OP Threshold.
type SLORule struct {
	Metric    string  `json:"metric"`
	Op        string  `json:"op"`
	Threshold float64 `json:"threshold"`
}

// SLO is an ordered rule list. The nil *SLO evaluates to no report.
type SLO struct {
	Rules []SLORule `json:"rules"`
}

// ParseSLO parses the `metric<=value;metric>=value` grammar. Empty segments
// (doubled or trailing semicolons) are ignored; an empty spec is an error.
func ParseSLO(spec string) (*SLO, error) {
	s := &SLO{}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var op string
		switch {
		case strings.Contains(part, OpLE):
			op = OpLE
		case strings.Contains(part, OpGE):
			op = OpGE
		default:
			return nil, fmt.Errorf("obs: SLO rule %q: want metric<=value or metric>=value", part)
		}
		metric, raw, _ := strings.Cut(part, op)
		metric = strings.TrimSpace(metric)
		if metric == "" {
			return nil, fmt.Errorf("obs: SLO rule %q: empty metric name", part)
		}
		threshold, err := strconv.ParseFloat(strings.TrimSpace(raw), 64)
		if err != nil {
			return nil, fmt.Errorf("obs: SLO rule %q: bad threshold: %w", part, err)
		}
		s.Rules = append(s.Rules, SLORule{Metric: metric, Op: op, Threshold: threshold})
	}
	if len(s.Rules) == 0 {
		return nil, fmt.Errorf("obs: empty SLO spec %q", spec)
	}
	return s, nil
}

// String renders the SLO back into the ParseSLO grammar.
func (s *SLO) String() string {
	if s == nil {
		return ""
	}
	parts := make([]string, len(s.Rules))
	for i, r := range s.Rules {
		parts[i] = fmt.Sprintf("%s%s%g", r.Metric, r.Op, r.Threshold)
	}
	return strings.Join(parts, ";")
}

// SLOResult is one evaluated rule: the rule, the observed value, and the
// verdict.
type SLOResult struct {
	Metric    string  `json:"metric"`
	Op        string  `json:"op"`
	Threshold float64 `json:"threshold"`
	Value     float64 `json:"value"`
	Pass      bool    `json:"pass"`
}

// SLOReport is a full evaluation: one result per rule, in rule order, plus
// the conjunction.
type SLOReport struct {
	Results []SLOResult `json:"results"`
	Passed  bool        `json:"passed"`
}

// Eval checks every rule against the published metric values. Rule order is
// the report order, so the report is deterministic. An unknown metric or an
// unknown operator fails the evaluation itself (error), not the rule.
func (s *SLO) Eval(values map[string]float64) (*SLOReport, error) {
	if s == nil || len(s.Rules) == 0 {
		return nil, nil
	}
	rep := &SLOReport{Passed: true}
	for _, r := range s.Rules {
		v, ok := values[r.Metric]
		if !ok {
			return nil, fmt.Errorf("obs: SLO metric %q not published by this run", r.Metric)
		}
		var pass bool
		switch r.Op {
		case OpLE:
			pass = v <= r.Threshold
		case OpGE:
			pass = v >= r.Threshold
		default:
			return nil, fmt.Errorf("obs: SLO rule %s: unknown op %q", r.Metric, r.Op)
		}
		rep.Results = append(rep.Results, SLOResult{
			Metric: r.Metric, Op: r.Op, Threshold: r.Threshold, Value: v, Pass: pass,
		})
		if !pass {
			rep.Passed = false
		}
	}
	return rep, nil
}
