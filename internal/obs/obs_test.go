package obs

import (
	"bytes"
	"strings"
	"testing"

	"mklite/internal/trace"
)

func TestTimelineSpansBalanceAndValidate(t *testing.T) {
	tl := NewTimeline(4, 2, 0)
	tl.Sample(0, 3, 0)
	tl.JobStart(10, 0, "job 0 a/linux", []int{0, 1}, map[string]int64{"nodes": 2})
	tl.JobStart(20, 1, "job 1 b/mos", []int{1, 2}, nil)
	tl.Sample(20, 1, 3)
	tl.JobEnd(50, 0)
	tl.JobEnd(70, 1)
	tl.Sample(70, 0, 0)
	if got := tl.Open(); got != 0 {
		t.Fatalf("Open() = %d after all jobs ended, want 0", got)
	}
	out := tl.JSON()
	if err := trace.Validate(out); err != nil {
		t.Fatalf("timeline JSON failed trace.Validate: %v\n%s", err, out)
	}
}

func TestTimelineSlotAssignment(t *testing.T) {
	tl := NewTimeline(2, 2, 0)
	tl.JobStart(0, 0, "j0", []int{0}, nil)
	tl.JobStart(0, 1, "j1", []int{0}, nil) // co-tenant: next slot on node 0
	tl.JobEnd(5, 0)
	tl.JobStart(6, 2, "j2", []int{0}, nil) // slot 0 freed; lowest free slot wins
	evs := tl.Events().Snapshot()
	var begins []trace.Event
	for _, ev := range evs {
		if ev.Ph == trace.PhBegin {
			begins = append(begins, ev)
		}
	}
	wantTid := []int32{0, 1, 0}
	if len(begins) != len(wantTid) {
		t.Fatalf("got %d begin events, want %d", len(begins), len(wantTid))
	}
	for i, ev := range begins {
		if ev.Tid != wantTid[i] {
			t.Errorf("begin %d (%s): tid = %d, want %d", i, ev.Name, ev.Tid, wantTid[i])
		}
	}
}

func TestTimelineOversubscribedNodePanics(t *testing.T) {
	tl := NewTimeline(1, 1, 0)
	tl.JobStart(0, 0, "j0", []int{0}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("starting a second job on a full share=1 node did not panic")
		}
	}()
	tl.JobStart(1, 1, "j1", []int{0}, nil)
}

func TestTimelineCounterSeries(t *testing.T) {
	tl := NewTimeline(2, 1, 0)
	tl.Sample(0, 5, 0)
	tl.Sample(10, 3, 2)
	tl.Sample(20, 0, 1)
	qs := tl.Events().CounterSeries(SeriesQueueDepth)
	if len(qs) != 3 || qs[0].Value != 5 || qs[1].Value != 3 || qs[2].Value != 0 {
		t.Fatalf("queue-depth series = %+v, want values 5,3,0", qs)
	}
	os := tl.Events().CounterSeries(SeriesOccupiedNodes)
	if len(os) != 3 || os[2].TS != 20 || os[2].Value != 1 {
		t.Fatalf("occupied-nodes series = %+v, want last sample {20 1}", os)
	}
}

func TestTimelineAddJobEvents(t *testing.T) {
	tl := NewTimeline(2, 1, 0)
	jobRing := trace.NewEvents(16)
	jobRing.Emit(trace.Event{Name: "step", Cat: "phase", Ph: trace.PhBegin, TS: 0, Pid: 0, Tid: 0})
	jobRing.Emit(trace.Event{Name: "step", Cat: "phase", Ph: trace.PhEnd, TS: 40, Pid: 0, Tid: 0})
	tl.JobStart(100, 3, "j3", []int{1}, nil)
	tl.AddJobEvents(3, 100, jobRing.Snapshot(), jobRing.Dropped())
	tl.JobEnd(150, 3)

	var onJobTrack int
	for _, ev := range tl.Events().Snapshot() {
		if ev.Pid == tl.JobPid(3) {
			onJobTrack++
			if ev.TS < 100 {
				t.Errorf("job-track event %q at ts %d, want shifted to >= 100", ev.Name, ev.TS)
			}
		}
	}
	if onJobTrack != 2 {
		t.Fatalf("got %d events on job 3's track, want 2", onJobTrack)
	}
	if err := trace.Validate(tl.JSON()); err != nil {
		t.Fatalf("timeline with merged job events failed validation: %v", err)
	}
}

func TestTimelineAddJobEventsFoldsDropped(t *testing.T) {
	tl := NewTimeline(1, 1, 0)
	tl.AddJobEvents(0, 0, nil, 7)
	if got := tl.Events().Dropped(); got != 7 {
		t.Fatalf("Dropped() = %d after folding a lossy job ring, want 7", got)
	}
}

func TestTimelineNilSafe(t *testing.T) {
	var tl *Timeline
	tl.JobStart(0, 0, "j", []int{0}, nil)
	tl.JobEnd(1, 0)
	tl.Sample(2, 1, 1)
	tl.AddJobEvents(0, 0, nil, 3)
	if tl.Open() != 0 || tl.Events() != nil || tl.JSON() != nil {
		t.Fatal("nil Timeline should observe nothing")
	}
	if tl.FacilityPid() != 0 || tl.JobPid(5) != 0 {
		t.Fatal("nil Timeline pids should be zero")
	}
}

func TestDecisionLogRoundTrip(t *testing.T) {
	l := NewDecisionLog()
	l.Record(Decision{Job: 0, TimeNs: 0, Kind: KindFIFO, Kernel: "mos", Nodes: []int{0, 1}})
	l.Record(Decision{
		Job: 2, TimeNs: 50, Kind: KindBackfill, Kernel: "linux", Nodes: []int{3}, Cotenancy: 2,
		Backfill: &BackfillEvidence{
			HeadJob: 1, HeadStartNs: 200,
			Reservations: []Reservation{{Job: 1, StartNs: 200, WallNs: 1000, Slots: 4}},
		},
	})
	if l.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", l.Len())
	}
	out, err := l.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	back, err := ReadDecisions(out)
	if err != nil {
		t.Fatalf("ReadDecisions: %v", err)
	}
	if rows := DiffDecisions(l.Decisions(), back); len(rows) != 0 {
		t.Fatalf("round trip changed the log: %v", rows)
	}
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), out) {
		t.Fatal("WriteJSON and JSON disagree")
	}
}

func TestDecisionLogRejectsWrongSchema(t *testing.T) {
	if _, err := ReadDecisions([]byte(`{"schema":"bogus/v9","decisions":[]}`)); err == nil {
		t.Fatal("ReadDecisions accepted a wrong schema")
	}
}

func TestDiffDecisions(t *testing.T) {
	a := []Decision{{Job: 0, Kind: KindFIFO}, {Job: 1, Kind: KindFIFO}}
	b := []Decision{{Job: 0, Kind: KindFIFO}, {Job: 1, Kind: KindBackfill}, {Job: 2, Kind: KindFIFO}}
	rows := DiffDecisions(a, b)
	if len(rows) != 2 {
		t.Fatalf("DiffDecisions rows = %v, want a kind change and a length change", rows)
	}
	if !strings.HasPrefix(rows[0], "decision 1:") || !strings.HasPrefix(rows[1], "length:") {
		t.Fatalf("unexpected diff rows: %v", rows)
	}
	if rows := DiffDecisions(a, a); rows != nil {
		t.Fatalf("identical logs should not diff: %v", rows)
	}
}

func TestDecisionLogNilSafe(t *testing.T) {
	var l *DecisionLog
	l.Record(Decision{Job: 1})
	if l.Len() != 0 || l.Decisions() != nil {
		t.Fatal("nil DecisionLog should record nothing")
	}
	out, err := l.JSON()
	if err != nil {
		t.Fatalf("nil DecisionLog JSON: %v", err)
	}
	if _, err := ReadDecisions(out); err != nil {
		t.Fatalf("nil DecisionLog JSON should still parse: %v", err)
	}
}

func TestParseSLO(t *testing.T) {
	s, err := ParseSLO("wait_p99_sec<=2.5; utilization_pct>=60;degraded_jobs<=0;")
	if err != nil {
		t.Fatalf("ParseSLO: %v", err)
	}
	want := []SLORule{
		{Metric: "wait_p99_sec", Op: OpLE, Threshold: 2.5},
		{Metric: "utilization_pct", Op: OpGE, Threshold: 60},
		{Metric: "degraded_jobs", Op: OpLE, Threshold: 0},
	}
	if len(s.Rules) != len(want) {
		t.Fatalf("got %d rules, want %d", len(s.Rules), len(want))
	}
	for i, r := range s.Rules {
		if r != want[i] {
			t.Errorf("rule %d = %+v, want %+v", i, r, want[i])
		}
	}
	if got := s.String(); got != "wait_p99_sec<=2.5;utilization_pct>=60;degraded_jobs<=0" {
		t.Errorf("String() = %q", got)
	}
}

func TestParseSLOErrors(t *testing.T) {
	for _, spec := range []string{"", ";;", "wait_p99_sec=2", "<=5", "x<=notanumber"} {
		if _, err := ParseSLO(spec); err == nil {
			t.Errorf("ParseSLO(%q) accepted a bad spec", spec)
		}
	}
}

func TestSLOEval(t *testing.T) {
	s, err := ParseSLO("wait_p99_sec<=2;utilization_pct>=60;degraded_jobs<=0")
	if err != nil {
		t.Fatalf("ParseSLO: %v", err)
	}
	values := map[string]float64{"wait_p99_sec": 1.5, "utilization_pct": 55, "degraded_jobs": 0}
	rep, err := s.Eval(values)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if rep.Passed {
		t.Fatal("report passed despite utilization_pct 55 < 60")
	}
	if len(rep.Results) != 3 || !rep.Results[0].Pass || rep.Results[1].Pass || !rep.Results[2].Pass {
		t.Fatalf("unexpected results: %+v", rep.Results)
	}

	values["utilization_pct"] = 60 // boundary is inclusive on both ops
	rep, err = s.Eval(values)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if !rep.Passed {
		t.Fatalf("boundary values should pass: %+v", rep.Results)
	}

	if _, err := s.Eval(map[string]float64{"wait_p99_sec": 1}); err == nil {
		t.Fatal("Eval accepted a run missing a rule's metric")
	}

	var nilSLO *SLO
	rep, err = nilSLO.Eval(values)
	if err != nil || rep != nil {
		t.Fatalf("nil SLO should evaluate to no report, got %+v, %v", rep, err)
	}
}

func TestOptionsNilSafe(t *testing.T) {
	var o *Options
	if o.TimelineOn() || o.DecisionsOn() || o.JobCountersOn() || o.JobEventsOn() || o.Enabled() {
		t.Fatal("nil Options should disable everything")
	}
	if got := o.JobEventRingCap(); got != DefaultJobEventCap {
		t.Fatalf("nil Options ring cap = %d, want default %d", got, DefaultJobEventCap)
	}
	on := &Options{Timeline: NewTimeline(1, 1, 0), JobEvents: true, JobEventCap: 64}
	if !on.TimelineOn() || !on.JobEventsOn() || !on.Enabled() || on.JobEventRingCap() != 64 {
		t.Fatal("populated Options misreported its switches")
	}
	if (&Options{JobEvents: true}).JobEventsOn() {
		t.Fatal("JobEvents without a Timeline should be off")
	}
}
