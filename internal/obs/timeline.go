package obs

import (
	"fmt"

	"mklite/internal/trace"
)

// Track layout of the facility timeline, in Chrome trace-event (pid, tid)
// coordinates. Node tracks come first so Perfetto sorts them on top:
//
//   - pid n in [0, nodes): node n's occupancy track. Each tid in [0, share)
//     is one co-tenancy slot; a job resident on the node holds one slot for
//     its whole residency, so every lane carries at most one open span and
//     B/E pairs balance by construction.
//   - pid nodes: the facility lane, carrying the "queue-depth" and
//     "occupied-nodes" counter series ('C' events, rendered by Perfetto as
//     stepped timelines, extractable with trace.Events.CounterSeries).
//   - pid nodes+1+j: job j's own track when Options.JobEvents is set — the
//     job's cluster/kernel events re-homed via trace.Rescoped, tids
//     preserved as the job's internal lanes.
//
// The layout is a pure function of (nodes, share, job IDs), so two runs of
// the same config produce byte-identical timeline JSON.

// Counter series names on the facility lane.
const (
	SeriesQueueDepth    = "queue-depth"
	SeriesOccupiedNodes = "occupied-nodes"
)

// DefaultTimelineCap bounds the timeline ring when the caller does not
// choose a size: room for a 1,000-job facility run's occupancy spans and
// counter samples several times over.
const DefaultTimelineCap = 1 << 17

// Timeline is the facility-level event collector: occupancy Gantt spans per
// node, counter series on the facility lane, and optional per-job tracks.
// Like trace.Events it is per-run, single-goroutine state; the nil *Timeline
// is the off switch (every method is nil-receiver safe and records nothing).
//
// Recording is deliberately two-phase. During the run the timeline appends
// only compact op records (a few dozen bytes per scheduler event) — the
// full trace.Event stream, with its per-event strings and counter args
// maps, is materialized by Events/JSON after the run. Keeping the
// recording-side footprint small keeps the simulator's caches clean:
// emitting the expanded events inline measurably slowed the surrounding
// simulation even though the timeline's own functions never showed in a
// CPU profile (BENCH_PR9's obs_on_overhead_percent guards the budget).
type Timeline struct {
	capacity int
	nodes    int
	share    int

	// slots[n][s] holds the open span name on node n, slot s ("" = free).
	slots [][]string
	// resident maps a resident job ID to its jobs index. Keyed lookups
	// only — never iterated — so map order cannot leak.
	resident map[int]int32

	ops  []tlOp
	jobs []jobSpan
	// merged holds the job-local event batches AddJobEvents received
	// (Options.JobEvents), rescoped lazily at materialization.
	merged  []jobEvents
	dropped int64
}

// Op kinds of the compact recording log.
const (
	opStart  = iota // open a job's occupancy spans (idx → jobs)
	opEnd           // close them (idx → jobs)
	opSample        // facility counter sample (a, b)
	opMerge         // merge a job-local ring (idx → merged)
)

// tlOp is one recorded scheduler event, replayed at materialization.
type tlOp struct {
	kind int8
	idx  int32
	ts   int64
	a, b int64
}

// jobSpan remembers one launched job's span identity: the label, the Begin
// args, and the (node, slot) pairs its residency occupies.
type jobSpan struct {
	name  string
	args  map[string]int64
	nodes []int
	slot  []int
}

// jobEvents is one AddJobEvents batch, kept in the job's run-local frame.
type jobEvents struct {
	job     int
	startTS int64
	evs     []trace.Event
}

// NewTimeline returns a timeline for a facility of the given size. share is
// the node oversubscription factor (slots per node track; values < 1 are
// treated as 1); cap bounds the event ring (0 selects DefaultTimelineCap).
func NewTimeline(nodes, share, cap int) *Timeline {
	if share < 1 {
		share = 1
	}
	if cap <= 0 {
		cap = DefaultTimelineCap
	}
	slots := make([][]string, nodes)
	for i := range slots {
		slots[i] = make([]string, share)
	}
	return &Timeline{
		capacity: cap,
		nodes:    nodes,
		share:    share,
		slots:    slots,
		resident: map[int]int32{},
	}
}

// Nodes returns the facility size the timeline was built for.
func (t *Timeline) Nodes() int {
	if t == nil {
		return 0
	}
	return t.nodes
}

// Share returns the co-tenancy slot count per node track.
func (t *Timeline) Share() int {
	if t == nil {
		return 0
	}
	return t.share
}

// FacilityPid returns the pid of the facility counter lane.
func (t *Timeline) FacilityPid() int32 {
	if t == nil {
		return 0
	}
	return int32(t.nodes)
}

// JobPid returns the pid of job's own track (Options.JobEvents).
func (t *Timeline) JobPid(job int) int32 {
	if t == nil {
		return 0
	}
	return int32(t.nodes + 1 + job)
}

// JobStart opens the job's occupancy span on every allocated node at virtual
// facility time ts. Each node assigns the job its lowest free co-tenancy
// slot — deterministic because launches and completions reach the timeline
// in the scheduler's (job-ID-ordered) commit order. name labels the span
// ("job 17 minife/mOS"); args ride on the Begin event of every node.
func (t *Timeline) JobStart(ts int64, job int, name string, nodes []int, args map[string]int64) {
	if t == nil {
		return
	}
	if _, ok := t.resident[job]; ok {
		panic(fmt.Sprintf("obs: job %d started twice on the timeline", job))
	}
	r := jobSpan{name: name, args: args, nodes: append([]int(nil), nodes...)}
	for _, n := range nodes {
		slot := -1
		for s, open := range t.slots[n] {
			if open == "" {
				slot = s
				break
			}
		}
		if slot < 0 {
			panic(fmt.Sprintf("obs: node %d has no free co-tenancy slot for job %d (share %d)", n, job, t.share))
		}
		t.slots[n][slot] = name
		r.slot = append(r.slot, slot)
	}
	idx := int32(len(t.jobs))
	t.jobs = append(t.jobs, r)
	t.resident[job] = idx
	t.ops = append(t.ops, tlOp{kind: opStart, idx: idx, ts: ts})
}

// JobEnd closes the job's occupancy spans at virtual facility time ts and
// frees its slots.
func (t *Timeline) JobEnd(ts int64, job int) {
	if t == nil {
		return
	}
	idx, ok := t.resident[job]
	if !ok {
		panic(fmt.Sprintf("obs: job %d ended without starting on the timeline", job))
	}
	r := &t.jobs[idx]
	for i, n := range r.nodes {
		t.slots[n][r.slot[i]] = ""
	}
	delete(t.resident, job)
	t.ops = append(t.ops, tlOp{kind: opEnd, idx: idx, ts: ts})
}

// Sample records the facility lane's counter series at virtual time ts:
// the queue depth and the number of occupied nodes.
func (t *Timeline) Sample(ts int64, queueDepth, occupiedNodes int) {
	if t == nil {
		return
	}
	t.ops = append(t.ops, tlOp{kind: opSample, ts: ts, a: int64(queueDepth), b: int64(occupiedNodes)})
}

// AddJobEvents merges a job-local event ring onto the job's own track: every
// event re-homed to JobPid(job) and shifted from the job's run-local clock
// onto the facility clock by startTS (the job's launch time). dropped is the
// job ring's own eviction count, folded into the timeline's so the exported
// document reports the loss. Call in job (batch) order after the par join —
// the rings themselves are built inside the worker closures.
func (t *Timeline) AddJobEvents(job int, startTS int64, evs []trace.Event, dropped int64) {
	if t == nil {
		return
	}
	if dropped > 0 {
		t.dropped += dropped
	}
	idx := int32(len(t.merged))
	t.merged = append(t.merged, jobEvents{job: job, startTS: startTS, evs: evs})
	t.ops = append(t.ops, tlOp{kind: opMerge, idx: idx})
}

// materialize replays the op log into a trace ring: the expanded event
// stream in recording order, with the same capacity-eviction behaviour as
// if every event had been emitted inline.
func (t *Timeline) materialize() *trace.Events {
	e := trace.NewEvents(t.capacity)
	for _, op := range t.ops {
		switch op.kind {
		case opStart:
			r := &t.jobs[op.idx]
			for i, n := range r.nodes {
				e.Emit(trace.Event{
					Name: r.name, Cat: "occupancy", Ph: trace.PhBegin,
					TS: op.ts, Pid: int32(n), Tid: int32(r.slot[i]), Args: r.args,
				})
			}
		case opEnd:
			r := &t.jobs[op.idx]
			for i, n := range r.nodes {
				e.Emit(trace.Event{
					Name: r.name, Cat: "occupancy", Ph: trace.PhEnd,
					TS: op.ts, Pid: int32(n), Tid: int32(r.slot[i]),
				})
			}
		case opSample:
			pid := t.FacilityPid()
			e.Emit(trace.Event{Name: SeriesQueueDepth, Cat: "counter", Ph: trace.PhCounter,
				TS: op.ts, Pid: pid, Args: map[string]int64{"value": op.a}})
			e.Emit(trace.Event{Name: SeriesOccupiedNodes, Cat: "counter", Ph: trace.PhCounter,
				TS: op.ts, Pid: pid, Args: map[string]int64{"value": op.b}})
		case opMerge:
			m := t.merged[op.idx]
			for _, ev := range trace.Rescoped(m.evs, t.JobPid(m.job), m.startTS) {
				e.Emit(ev)
			}
		}
	}
	e.NoteDropped(t.dropped)
	return e
}

// Events materializes the timeline as a trace ring, e.g. for CounterSeries
// extraction (nil when the timeline is off). Each call replays the op log
// afresh; read the artifact after the run, not per scheduler event.
func (t *Timeline) Events() *trace.Events {
	if t == nil {
		return nil
	}
	return t.materialize()
}

// Open returns the number of jobs still resident on the timeline — zero
// after a drained facility run, which is what makes every node track's
// B/E spans balance.
func (t *Timeline) Open() int {
	if t == nil {
		return 0
	}
	return len(t.resident)
}

// JSON renders the timeline as Chrome trace-event JSON ("mklite-trace/v1"),
// loadable in Perfetto and checkable with trace.Validate.
func (t *Timeline) JSON() []byte {
	if t == nil {
		return nil
	}
	return t.materialize().JSON()
}
