package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// DecisionsSchema versions the decision-log file format. Bump when a field
// is renamed or its meaning changes; DiffDecisions refuses to compare files
// with different schemas.
const DecisionsSchema = "mklite-decisions/v1"

// Decision kinds.
const (
	// KindFIFO marks a job that started as part of the FIFO prefix: the
	// facility had room when its turn came.
	KindFIFO = "fifo"
	// KindBackfill marks a job that started ahead of an earlier-arrived
	// job, admitted by the conservative backfill pass.
	KindBackfill = "backfill"
)

// Reservation is one walltime-limit reservation the backfill pass planned
// against: a queued job's promised slots from StartNs for WallNs.
type Reservation struct {
	Job     int   `json:"job"`
	StartNs int64 `json:"start_ns"`
	WallNs  int64 `json:"wall_ns"`
	Slots   int   `json:"slots"`
}

// BackfillEvidence is why a backfill launch was legal: the blocked head's
// reserved start and every reservation (head first, then the examined
// non-starting candidates in arrival order) that the candidate's immediate
// start was checked against. Replaying the launch against this snapshot —
// the candidate fits now for its full walltime limit with every reservation
// intact — re-derives the conservative-backfill invariant that admitted it.
type BackfillEvidence struct {
	HeadJob      int           `json:"head_job"`
	HeadStartNs  int64         `json:"head_start_ns"`
	Reservations []Reservation `json:"reservations"`
}

// Decision is one launched job's record: when and why it started, which
// kernel the policy chose, and which nodes the allocator placed it on.
type Decision struct {
	// Job is the launched job's ID.
	Job int `json:"job"`
	// TimeNs is the launch instant on the virtual facility clock.
	TimeNs int64 `json:"t_ns"`
	// Kind is KindFIFO or KindBackfill.
	Kind string `json:"kind"`
	// Kernel is the policy's choice for this job.
	Kernel string `json:"kernel"`
	// Nodes is the allocator's placement (lowest-occupancy-first order).
	Nodes []int `json:"nodes"`
	// Cotenancy is the launch-time co-tenancy the allocator reported.
	Cotenancy int `json:"cotenancy,omitempty"`
	// Backfill carries the reservation snapshot for KindBackfill records.
	Backfill *BackfillEvidence `json:"backfill,omitempty"`
}

// DecisionLog accumulates one observed fleet run's launch decisions in
// commit order (launch batches are committed in queue order, so the log is
// a deterministic function of the schedule). Per-run, single-goroutine
// state; the nil *DecisionLog records nothing.
type DecisionLog struct {
	decisions []Decision
}

// NewDecisionLog returns an empty log.
func NewDecisionLog() *DecisionLog { return &DecisionLog{} }

// Record appends one decision.
func (l *DecisionLog) Record(d Decision) {
	if l == nil {
		return
	}
	l.decisions = append(l.decisions, d)
}

// Len returns the number of recorded decisions.
func (l *DecisionLog) Len() int {
	if l == nil {
		return 0
	}
	return len(l.decisions)
}

// Decisions returns the recorded decisions in commit order.
func (l *DecisionLog) Decisions() []Decision {
	if l == nil {
		return nil
	}
	return l.decisions
}

// decisionFile is the on-disk shape of a decision-log dump.
type decisionFile struct {
	Schema    string     `json:"schema"`
	Decisions []Decision `json:"decisions"`
}

// JSON renders the log as a schema-versioned document. encoding/json emits
// struct fields in declaration order and the log itself is in commit order,
// so the bytes are deterministic.
func (l *DecisionLog) JSON() ([]byte, error) {
	ds := l.Decisions()
	if ds == nil {
		ds = []Decision{} // keep `"decisions": []` for an empty log
	}
	out, err := json.MarshalIndent(decisionFile{Schema: DecisionsSchema, Decisions: ds}, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// WriteJSON writes the schema-versioned decision log.
func (l *DecisionLog) WriteJSON(w io.Writer) error {
	out, err := l.JSON()
	if err != nil {
		return err
	}
	_, err = w.Write(out)
	return err
}

// ReadDecisions parses a dump produced by WriteJSON, checking the schema.
func ReadDecisions(data []byte) ([]Decision, error) {
	var f decisionFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("obs: parsing decision log: %w", err)
	}
	if f.Schema != DecisionsSchema {
		return nil, fmt.Errorf("obs: decision schema %q, want %q", f.Schema, DecisionsSchema)
	}
	return f.Decisions, nil
}

// DiffDecisions compares two decision logs record by record and returns one
// human-readable row per difference (empty = identical). Logs are compared
// positionally — they are commit-ordered, so position is identity — with
// length mismatches reported after the common prefix.
func DiffDecisions(a, b []Decision) []string {
	var rows []string
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		da, _ := json.Marshal(a[i])
		db, _ := json.Marshal(b[i])
		if !bytes.Equal(da, db) {
			rows = append(rows, fmt.Sprintf("decision %d: %s -> %s", i, da, db))
		}
	}
	if len(a) != len(b) {
		rows = append(rows, fmt.Sprintf("length: %d -> %d decisions", len(a), len(b)))
	}
	return rows
}
