package benchfmt

import (
	"strings"
	"testing"
)

const legacyJSON = `{
  "figure": "figure4-quick",
  "gomaxprocs": 1,
  "wall_clock_seconds": {
    "parallel": 0.35,
    "sequential": 0.41
  },
  "speedup": 1.17
}`

func TestReadLenientLegacy(t *testing.T) {
	f, err := ReadLenient([]byte(legacyJSON))
	if err != nil {
		t.Fatal(err)
	}
	if f.Figure != "figure4-quick" || f.Maxprocs != 1 {
		t.Fatalf("legacy header parsed as %q / %d", f.Figure, f.Maxprocs)
	}
	if m := f.Modes["sequential"]; m.Seconds != 0.41 || m.Reps != 0 || m.SpreadPercent != 0 {
		t.Fatalf("legacy mode = %+v, want bare seconds with zero reps/spread", m)
	}
	if f.Derived["speedup"] != 1.17 {
		t.Fatalf("legacy derived = %v, want loose top-level scalars collected", f.Derived)
	}
}

func TestReadLenientCurrentSchema(t *testing.T) {
	f := New("facility-quick", 4)
	f.Modes["quick"] = Mode{Reps: 5, Seconds: 1.2, SpreadPercent: 3}
	data, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadLenient(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != Schema || back.Modes["quick"] != f.Modes["quick"] {
		t.Fatalf("current-schema round trip mangled the file: %+v", back)
	}
}

func TestReadLenientRejectsNonBench(t *testing.T) {
	if _, err := ReadLenient([]byte(`{"hello": "world"}`)); err == nil {
		t.Fatal("accepted a JSON file with neither schema nor wall_clock_seconds")
	}
	if _, err := ReadLenient([]byte(`not json`)); err == nil {
		t.Fatal("accepted non-JSON input")
	}
}

func trendFile(figure string, secs map[string]float64, spread float64, derived map[string]float64) *File {
	f := New(figure, 1)
	for k, v := range secs {
		f.Modes[k] = Mode{Reps: 5, Seconds: v, SpreadPercent: spread}
	}
	f.Derived = derived
	return f
}

func TestTrendFlagsRegression(t *testing.T) {
	entries := []TrendEntry{
		{Label: "PR2", File: trendFile("q", map[string]float64{"m": 1.0}, 2, nil)},
		{Label: "PR3", File: trendFile("q", map[string]float64{"m": 1.05}, 2, nil)}, // +5% within band
		{Label: "PR4", File: trendFile("q", map[string]float64{"m": 1.60}, 2, nil)}, // +52% beyond band
	}
	res := Trend(entries, 10, 5)
	if len(res.Regressions) != 1 {
		t.Fatalf("regressions = %v, want exactly the PR3->PR4 step", res.Regressions)
	}
	if !strings.Contains(res.Regressions[0], "PR3") || !strings.Contains(res.Regressions[0], "PR4") {
		t.Fatalf("regression row does not name the step: %s", res.Regressions[0])
	}
	if !strings.Contains(res.Report, "REGRESSION") {
		t.Fatalf("report does not flag the step:\n%s", res.Report)
	}
}

func TestTrendSpreadWidensBand(t *testing.T) {
	// +30% step: beyond a bare 10% tolerance, inside 10% + 2x12% spread.
	noisy := []TrendEntry{
		{Label: "a", File: trendFile("q", map[string]float64{"m": 1.0}, 12, nil)},
		{Label: "b", File: trendFile("q", map[string]float64{"m": 1.3}, 12, nil)},
	}
	if res := Trend(noisy, 10, 5); len(res.Regressions) != 0 {
		t.Fatalf("spread-widened band should absorb the step: %v", res.Regressions)
	}
	quiet := []TrendEntry{
		{Label: "a", File: trendFile("q", map[string]float64{"m": 1.0}, 0, nil)},
		{Label: "b", File: trendFile("q", map[string]float64{"m": 1.3}, 0, nil)},
	}
	if res := Trend(quiet, 10, 5); len(res.Regressions) != 1 {
		t.Fatalf("zero-spread step should regress: %v", res.Regressions)
	}
}

func TestTrendSkipsMissingAndJudgesDerived(t *testing.T) {
	entries := []TrendEntry{
		{Label: "PR2", File: trendFile("q", map[string]float64{"m": 1.0}, 0, map[string]float64{"x_overhead_percent": 1, "speedup": 2.0})},
		{Label: "PR3", File: trendFile("q", nil, 0, nil)}, // metric absent: no step judged
		{Label: "PR4", File: trendFile("q", map[string]float64{"m": 1.01}, 0, map[string]float64{"x_overhead_percent": 9, "speedup": 0.5})},
	}
	res := Trend(entries, 25, 5)
	// The mode step PR2->PR4 is +1%: fine. Derived: overhead +8pp > 5pp and
	// speedup -75% > 25% both regress.
	if len(res.Regressions) != 2 {
		t.Fatalf("regressions = %v, want the two derived steps", res.Regressions)
	}
	for _, r := range res.Regressions {
		if !strings.Contains(r, "PR2") || !strings.Contains(r, "PR4") {
			t.Fatalf("derived step should bridge the gap over PR3: %s", r)
		}
	}
}

func TestTrendEmpty(t *testing.T) {
	if res := Trend(nil, 10, 5); !res.OK() || res.Report == "" {
		t.Fatal("empty history should render a note and pass")
	}
}
