package benchfmt

import (
	"strings"
	"testing"
)

func sample() *File {
	f := New("figure4-quick", 4)
	f.Modes["sequential"] = Mode{Reps: 5, Seconds: 0.40, SpreadPercent: 2.0}
	f.Modes["trace-counters"] = Mode{Reps: 5, Seconds: 0.41, SpreadPercent: 2.5}
	f.Derived = map[string]float64{
		"counters_overhead_percent": 2.5,
		"parallel_speedup":          2.1,
	}
	return f
}

func TestRoundTrip(t *testing.T) {
	f := sample()
	out, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Read(out)
	if err != nil {
		t.Fatal(err)
	}
	if got.Figure != f.Figure || got.Maxprocs != f.Maxprocs {
		t.Fatalf("roundtrip header mismatch: %+v", got)
	}
	if got.Modes["sequential"] != f.Modes["sequential"] {
		t.Fatalf("roundtrip mode mismatch: %+v", got.Modes["sequential"])
	}
	out2, err := got.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != string(out2) {
		t.Fatal("marshal not deterministic across a roundtrip")
	}
}

func TestReadRejectsWrongSchema(t *testing.T) {
	if _, err := Read([]byte(`{"schema":"mklite-bench/v0"}`)); err == nil {
		t.Fatal("want schema error")
	}
	if _, err := Read([]byte(`not json`)); err == nil {
		t.Fatal("want parse error")
	}
}

func TestCompareWithinBand(t *testing.T) {
	old, new := sample(), sample()
	// 3% slower with 2+2.5% recorded spread and 5% tolerance: inside the band.
	m := new.Modes["sequential"]
	m.Seconds = 0.412
	new.Modes["sequential"] = m
	res := Compare(old, new, 5, 2)
	if !res.OK() {
		t.Fatalf("want clean comparison, got regressions %v\nreport:\n%s", res.Regressions, res.Report)
	}
	if !strings.Contains(res.Report, "sequential") || !strings.Contains(res.Report, "counters_overhead_percent") {
		t.Fatalf("report missing rows:\n%s", res.Report)
	}
}

func TestCompareModeRegression(t *testing.T) {
	old, new := sample(), sample()
	m := new.Modes["sequential"]
	m.Seconds = 0.60 // +50%: far outside any band
	new.Modes["sequential"] = m
	res := Compare(old, new, 5, 2)
	if res.OK() {
		t.Fatalf("want regression, report:\n%s", res.Report)
	}
	if !strings.Contains(res.Report, "REGRESSION") {
		t.Fatalf("report does not flag the regression:\n%s", res.Report)
	}
}

func TestCompareDerivedRegression(t *testing.T) {
	old, new := sample(), sample()
	new.Derived["counters_overhead_percent"] = 9 // +6.5pp > 2pp tolerance
	res := Compare(old, new, 5, 2)
	if res.OK() {
		t.Fatalf("want derived regression, report:\n%s", res.Report)
	}
	// Speedup direction: shrinking is the regression.
	old, new = sample(), sample()
	new.Derived["parallel_speedup"] = 1.0 // -52%
	if res := Compare(old, new, 5, 2); res.OK() {
		t.Fatalf("want speedup regression, report:\n%s", res.Report)
	}
	// A speedup that improves is fine.
	old, new = sample(), sample()
	new.Derived["parallel_speedup"] = 3.0
	if res := Compare(old, new, 5, 2); !res.OK() {
		t.Fatalf("improvement flagged as regression: %v", res.Regressions)
	}
}

func TestCompareOneSidedMetrics(t *testing.T) {
	old, new := sample(), sample()
	delete(old.Modes, "trace-counters")
	new.Derived["metrics_overhead_percent"] = 3
	res := Compare(old, new, 5, 2)
	if !res.OK() {
		t.Fatalf("one-sided entries must not fail the gate: %v", res.Regressions)
	}
	if !strings.Contains(res.Report, "new") {
		t.Fatalf("report does not mark new-only entries:\n%s", res.Report)
	}
}

func TestCheckBudget(t *testing.T) {
	f := sample()
	if msg := f.CheckBudget("counters_overhead_percent", 5); msg != "" {
		t.Fatalf("budget should hold: %s", msg)
	}
	if msg := f.CheckBudget("counters_overhead_percent", 2); msg == "" {
		t.Fatal("budget 2 should fail at 2.5")
	}
	if msg := f.CheckBudget("no_such_metric", 5); msg == "" {
		t.Fatal("missing metric should fail the budget")
	}
}
