package benchfmt

import (
	"encoding/json"
	"fmt"
	"maps"
	"slices"
	"strings"
)

// ReadLenient parses a benchmark artifact in either the current
// "mklite-bench/v1" schema or the pre-schema legacy layout the first bench
// PRs emitted (no "schema" field, a flat "wall_clock_seconds" map, and
// derived scalars as loose top-level keys). Legacy modes carry no rep count
// or spread — their spread reads as zero, so trend bands over them reduce to
// the base tolerance. New code should emit via New/Marshal and read via
// Read; this reader exists so `mkbench trend` can walk the whole checked-in
// BENCH_*.json history.
func ReadLenient(data []byte) (*File, error) {
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("benchfmt: parsing: %w", err)
	}
	if probe.Schema != "" {
		return Read(data)
	}

	var legacy struct {
		Figure   string             `json:"figure"`
		Maxprocs int                `json:"gomaxprocs"`
		Seconds  map[string]float64 `json:"wall_clock_seconds"`
	}
	if err := json.Unmarshal(data, &legacy); err != nil {
		return nil, fmt.Errorf("benchfmt: parsing legacy file: %w", err)
	}
	if len(legacy.Seconds) == 0 {
		return nil, fmt.Errorf("benchfmt: no schema and no wall_clock_seconds: not a benchmark file")
	}
	f := New(legacy.Figure, legacy.Maxprocs)
	for _, k := range slices.Sorted(maps.Keys(legacy.Seconds)) {
		f.Modes[k] = Mode{Seconds: legacy.Seconds[k]}
	}
	// Legacy derived metrics are loose top-level numbers; collect every
	// scalar that is not one of the structural keys.
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("benchfmt: parsing legacy file: %w", err)
	}
	for _, k := range slices.Sorted(maps.Keys(raw)) {
		switch k {
		case "figure", "gomaxprocs", "wall_clock_seconds":
			continue
		}
		var v float64
		if err := json.Unmarshal(raw[k], &v); err != nil {
			continue // non-numeric extras are not derived metrics
		}
		if f.Derived == nil {
			f.Derived = map[string]float64{}
		}
		f.Derived[k] = v
	}
	return f, nil
}

// TrendEntry is one point of a benchmark trajectory: a label (typically the
// artifact's filename) and its parsed file.
type TrendEntry struct {
	Label string
	File  *File
}

// Trend renders the per-mode and per-derived-metric trajectory across an
// ordered artifact history (oldest first) and flags every step that
// regresses beyond its spread-aware tolerance band — the same judgment rule
// as Compare, applied between each metric's consecutive appearances. Modes
// measured under different GOMAXPROCS are annotated but still compared:
// the history is what it is.
func Trend(entries []TrendEntry, tolPercent, tolPoints float64) *Result {
	res := &Result{}
	var b strings.Builder
	if len(entries) == 0 {
		res.Report = "no benchmark files\n"
		return res
	}

	procs := map[int]bool{}
	for _, e := range entries {
		procs[e.File.Maxprocs] = true
	}
	if len(procs) > 1 {
		fmt.Fprintf(&b, "note: GOMAXPROCS varies across the history (%v); wall clocks are not comparable in general\n",
			slices.Sorted(maps.Keys(procs)))
	}

	labelW := len("mode")
	for _, e := range entries {
		if len(e.Label) > labelW {
			labelW = len(e.Label)
		}
	}

	modeKeys := map[string]bool{}
	derivedKeys := map[string]bool{}
	for _, e := range entries {
		for k := range e.File.Modes {
			modeKeys[k] = true
		}
		for k := range e.File.Derived {
			derivedKeys[k] = true
		}
	}

	for _, k := range slices.Sorted(maps.Keys(modeKeys)) {
		fmt.Fprintf(&b, "mode %s:\n", k)
		prev := Mode{}
		havePrev := false
		prevLabel := ""
		for _, e := range entries {
			m, ok := e.File.Modes[k]
			if !ok {
				continue
			}
			line := fmt.Sprintf("  %-*s %10.4fs", labelW, e.Label, m.Seconds)
			if m.SpreadPercent > 0 {
				line += fmt.Sprintf(" (±%.1f%%)", m.SpreadPercent)
			}
			if havePrev {
				delta := (m.Seconds - prev.Seconds) / prev.Seconds * 100
				band := tolPercent + prev.SpreadPercent + m.SpreadPercent
				line += fmt.Sprintf("  %+.1f%%", delta)
				if delta > band {
					line += fmt.Sprintf("  REGRESSION (band %.1f%%)", band)
					res.Regressions = append(res.Regressions,
						fmt.Sprintf("mode %s: %s %.4fs -> %s %.4fs (%+.1f%% > band %.1f%%)",
							k, prevLabel, prev.Seconds, e.Label, m.Seconds, delta, band))
				}
			}
			b.WriteString(line + "\n")
			prev, havePrev, prevLabel = m, true, e.Label
		}
	}

	for _, k := range slices.Sorted(maps.Keys(derivedKeys)) {
		fmt.Fprintf(&b, "derived %s:\n", k)
		prev := 0.0
		havePrev := false
		prevLabel := ""
		for _, e := range entries {
			v, ok := e.File.Derived[k]
			if !ok {
				continue
			}
			line := fmt.Sprintf("  %-*s %12.3f", labelW, e.Label, v)
			if havePrev {
				if strings.HasSuffix(k, "_percent") {
					if v-prev > tolPoints {
						line += fmt.Sprintf("  REGRESSION (+%.1fpp > %.1fpp)", v-prev, tolPoints)
						res.Regressions = append(res.Regressions,
							fmt.Sprintf("derived %s: %s %.3f -> %s %.3f (+%.1fpp > %.1fpp)",
								k, prevLabel, prev, e.Label, v, v-prev, tolPoints))
					}
				} else if prev > 0 && (prev-v)/prev*100 > tolPercent {
					line += fmt.Sprintf("  REGRESSION (-%.1f%% > %.1f%%)", (prev-v)/prev*100, tolPercent)
					res.Regressions = append(res.Regressions,
						fmt.Sprintf("derived %s: %s %.3f -> %s %.3f (-%.1f%% > %.1f%%)",
							k, prevLabel, prev, e.Label, v, (prev-v)/prev*100, tolPercent))
				}
			}
			b.WriteString(line + "\n")
			prev, havePrev, prevLabel = v, true, e.Label
		}
	}

	res.Report = b.String()
	return res
}
