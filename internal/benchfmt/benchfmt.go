// Package benchfmt defines the schema-versioned wall-clock benchmark
// artifact ("mklite-bench/v1") that the repo's bench smoke tests emit
// (BENCH_PR4.json) and that cmd/mkbench compares against a checked-in
// baseline. Wall-clock numbers are the one non-deterministic output the
// repo produces, so every mode records the best-of-N seconds together
// with the rep count and the spread across reps — a comparator that
// ignores the spread cannot tell a regression from scheduler noise.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"maps"
	"math"
	"slices"
	"strings"
)

// Schema versions the benchmark file format. Compare refuses to mix
// schemas: a tolerance judgment across formats is meaningless.
const Schema = "mklite-bench/v1"

// Mode is one measured configuration (e.g. "sequential", "trace-counters").
type Mode struct {
	// Reps is how many back-to-back repetitions were timed.
	Reps int `json:"reps"`
	// Seconds is the best (minimum) wall clock across the reps — the
	// least-interfered-with estimate of the true cost.
	Seconds float64 `json:"seconds"`
	// SpreadPercent is (worst-best)/best*100 across the reps: the
	// noise floor below which deltas are not evidence.
	SpreadPercent float64 `json:"spread_percent"`
}

// File is one benchmark artifact: the measured modes plus derived scalar
// metrics (speedups, overhead percentages) computed from them.
type File struct {
	Schema   string             `json:"schema"`
	Figure   string             `json:"figure"`
	Maxprocs int                `json:"gomaxprocs"`
	Modes    map[string]Mode    `json:"modes"`
	Derived  map[string]float64 `json:"derived,omitempty"`
}

// New returns an empty file for the given figure.
func New(figure string, maxprocs int) *File {
	return &File{Schema: Schema, Figure: figure, Maxprocs: maxprocs, Modes: map[string]Mode{}}
}

// Marshal renders the file as indented JSON with a trailing newline.
// encoding/json sorts map keys, so the bytes are deterministic for a
// given set of measurements.
func (f *File) Marshal() ([]byte, error) {
	out, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Read parses a benchmark file, checking the schema.
func Read(data []byte) (*File, error) {
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("benchfmt: parsing: %w", err)
	}
	if f.Schema != Schema {
		return nil, fmt.Errorf("benchfmt: schema %q, want %q", f.Schema, Schema)
	}
	return &f, nil
}

// Result is the outcome of a comparison: a rendered report plus the list
// of regressions that exceeded their tolerance band.
type Result struct {
	Report      string
	Regressions []string
}

// OK reports whether the comparison found no out-of-band regressions.
func (r *Result) OK() bool { return len(r.Regressions) == 0 }

// Compare judges new against old, benchstat-style. A mode regresses when
// its best-of-N seconds grew by more than the tolerance band, where the
// band is tolPercent widened by both runs' recorded spreads (noise cannot
// prove a regression). A derived "*_percent" metric regresses when it
// grew by more than tolPoints percentage points; other derived metrics
// (speedups) regress when they shrank by more than tolPercent percent.
// Metrics present on only one side are reported but never fail the gate.
func Compare(old, new *File, tolPercent, tolPoints float64) *Result {
	res := &Result{}
	var b strings.Builder
	if old.Figure != new.Figure {
		fmt.Fprintf(&b, "note: comparing different figures: %q vs %q\n", old.Figure, new.Figure)
	}
	if old.Maxprocs != new.Maxprocs {
		fmt.Fprintf(&b, "note: GOMAXPROCS differs: %d vs %d (wall clocks are not comparable in general)\n",
			old.Maxprocs, new.Maxprocs)
	}

	modeKeys := map[string]bool{}
	for k := range old.Modes {
		modeKeys[k] = true
	}
	for k := range new.Modes {
		modeKeys[k] = true
	}
	if len(modeKeys) > 0 {
		fmt.Fprintf(&b, "%-16s %12s %12s %10s %10s\n", "mode", "old s", "new s", "delta", "band")
		for _, k := range slices.Sorted(maps.Keys(modeKeys)) {
			o, haveOld := old.Modes[k]
			n, haveNew := new.Modes[k]
			switch {
			case !haveOld:
				fmt.Fprintf(&b, "%-16s %12s %12.4f %10s %10s\n", k, "-", n.Seconds, "new", "-")
			case !haveNew:
				fmt.Fprintf(&b, "%-16s %12.4f %12s %10s %10s\n", k, o.Seconds, "-", "gone", "-")
			default:
				delta := (n.Seconds - o.Seconds) / o.Seconds * 100
				band := tolPercent + o.SpreadPercent + n.SpreadPercent
				verdict := ""
				if delta > band {
					verdict = "  REGRESSION"
					res.Regressions = append(res.Regressions,
						fmt.Sprintf("mode %s: %.4fs -> %.4fs (%+.1f%% > band %.1f%%)",
							k, o.Seconds, n.Seconds, delta, band))
				}
				fmt.Fprintf(&b, "%-16s %12.4f %12.4f %+9.1f%% %9.1f%%%s\n",
					k, o.Seconds, n.Seconds, delta, band, verdict)
			}
		}
	}

	derivedKeys := map[string]bool{}
	for k := range old.Derived {
		derivedKeys[k] = true
	}
	for k := range new.Derived {
		derivedKeys[k] = true
	}
	if len(derivedKeys) > 0 {
		fmt.Fprintf(&b, "%-32s %12s %12s %10s\n", "derived", "old", "new", "delta")
		for _, k := range slices.Sorted(maps.Keys(derivedKeys)) {
			o, haveOld := old.Derived[k]
			n, haveNew := new.Derived[k]
			switch {
			case !haveOld:
				fmt.Fprintf(&b, "%-32s %12s %12.3f %10s\n", k, "-", n, "new")
			case !haveNew:
				fmt.Fprintf(&b, "%-32s %12.3f %12s %10s\n", k, o, "-", "gone")
			default:
				verdict := ""
				if strings.HasSuffix(k, "_percent") {
					// Overhead percentages: higher is worse; judge the
					// move in percentage points.
					if n-o > tolPoints {
						verdict = "  REGRESSION"
						res.Regressions = append(res.Regressions,
							fmt.Sprintf("derived %s: %.3f -> %.3f (+%.1fpp > %.1fpp)",
								k, o, n, n-o, tolPoints))
					}
				} else if o > 0 && (o-n)/o*100 > tolPercent {
					// Speedup-style metrics: lower is worse.
					verdict = "  REGRESSION"
					res.Regressions = append(res.Regressions,
						fmt.Sprintf("derived %s: %.3f -> %.3f (-%.1f%% > %.1f%%)",
							k, o, n, (o-n)/o*100, tolPercent))
				}
				fmt.Fprintf(&b, "%-32s %12.3f %12.3f %+10.3f%s\n", k, o, n, n-o, verdict)
			}
		}
	}
	res.Report = b.String()
	return res
}

// CheckBudget asserts an absolute ceiling on one derived metric of a
// file, e.g. counters_overhead_percent <= 5. Returns "" when the budget
// holds (or a descriptive failure otherwise). A missing metric fails: a
// budget on a metric the file does not record is a stale gate.
func (f *File) CheckBudget(name string, max float64) string {
	v, ok := f.Derived[name]
	if !ok {
		return fmt.Sprintf("budget %s<=%.3g: metric not present in file", name, max)
	}
	if math.IsNaN(v) || v > max {
		return fmt.Sprintf("budget %s<=%.3g: measured %.3f", name, max, v)
	}
	return ""
}
