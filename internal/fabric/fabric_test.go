package fabric

import (
	"testing"
	"testing/quick"

	"mklite/internal/sim"
)

func TestHopsSelf(t *testing.T) {
	s := OmniPath()
	if s.Hops(5, 5, 2048) != 0 {
		t.Fatal("self hops != 0")
	}
}

func TestHopsSameEdgeSwitch(t *testing.T) {
	s := OmniPath()
	// Radix 48 -> 24 nodes per edge switch.
	if h := s.Hops(0, 23, 2048); h != 1 {
		t.Fatalf("same-switch hops = %d", h)
	}
	if h := s.Hops(0, 24, 2048); h <= 1 {
		t.Fatalf("cross-switch hops = %d", h)
	}
}

func TestHopsMonotoneWithDistance(t *testing.T) {
	s := OmniPath()
	near := s.Hops(0, 1, 2048)
	mid := s.Hops(0, 100, 2048)
	far := s.Hops(0, 2000, 2048)
	if !(near <= mid && mid <= far) {
		t.Fatalf("hops not monotone: %d %d %d", near, mid, far)
	}
	if far != 5 {
		t.Fatalf("cross-pod hops = %d, want 5", far)
	}
}

func TestMaxHops(t *testing.T) {
	s := OmniPath()
	cases := []struct {
		nodes, want int
	}{{1, 0}, {24, 1}, {500, 3}, {2048, 5}}
	for _, c := range cases {
		if got := s.MaxHops(c.nodes); got != c.want {
			t.Fatalf("MaxHops(%d) = %d, want %d", c.nodes, got, c.want)
		}
	}
}

func TestPointToPointAlphaBeta(t *testing.T) {
	s := OmniPath()
	small := s.PointToPoint(8, 1)
	if small < s.BaseLatency {
		t.Fatalf("small message %v below base latency", small)
	}
	// 1 GiB over ~11.6 GiB/s should take ~86 ms.
	big := s.PointToPoint(1<<30, 1)
	if big < 80*sim.Millisecond || big > 95*sim.Millisecond {
		t.Fatalf("1 GiB transfer = %v", big)
	}
}

func TestPointToPointHopsAddLatency(t *testing.T) {
	s := OmniPath()
	if s.PointToPoint(8, 5) <= s.PointToPoint(8, 1) {
		t.Fatal("extra hops did not add latency")
	}
}

func TestPointToPointIntraNode(t *testing.T) {
	s := OmniPath()
	if d := s.PointToPoint(1<<20, 0); d >= s.BaseLatency {
		t.Fatalf("intra-node transfer %v not cheaper than fabric alpha", d)
	}
}

func TestPointToPointNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative size did not panic")
		}
	}()
	OmniPath().PointToPoint(-1, 1)
}

func TestSyscallsFor(t *testing.T) {
	op := OmniPath()
	if op.SyscallsFor(0) != 0 || op.SyscallsFor(-3) != 0 {
		t.Fatal("non-positive message count")
	}
	if op.SyscallsFor(100) != 100*op.SyscallsPerMessage {
		t.Fatal("syscall count")
	}
	us := UserSpaceFabric()
	if us.SyscallsFor(1000) != 0 {
		t.Fatal("user-space fabric should not require syscalls")
	}
}

func TestUserSpaceFabricOtherwiseIdentical(t *testing.T) {
	op, us := OmniPath(), UserSpaceFabric()
	if op.PointToPoint(4096, 3) != us.PointToPoint(4096, 3) {
		t.Fatal("wire model should be identical")
	}
}

// Property: transfer time is monotone non-decreasing in message size.
func TestPointToPointMonotoneProperty(t *testing.T) {
	s := OmniPath()
	check := func(a, b uint32, hops uint8) bool {
		h := int(hops%5) + 1
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return s.PointToPoint(x, h) <= s.PointToPoint(y, h)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
