// Package fabric models the cluster interconnect: an Intel Omni-Path-like
// fat-tree with alpha-beta link costs. One property is load-bearing for the
// paper's LAMMPS result (Fig. 6b): the first-generation Omni-Path host
// interface "involves system calls for certain operations", so communication
// on the critical path crosses into the kernel — and on a multi-kernel,
// those crossings are offloaded, adding latency. Fabrics driven entirely
// from user space (the norm for high-performance networks) do not pay this.
package fabric

import (
	"fmt"
	"math"

	"mklite/internal/sim"
)

// Spec describes an interconnect.
type Spec struct {
	Name string
	// InjectionBandwidth is the per-node injection bandwidth in GiB/s.
	InjectionBandwidth float64
	// BaseLatency is the end-to-end latency of a minimal message
	// between adjacent nodes (one switch hop).
	BaseLatency sim.Duration
	// PerHopLatency is the additional latency per extra switch hop.
	PerHopLatency sim.Duration
	// SwitchRadix is the port count of the fat-tree switches; it
	// determines hop counts at a given system size.
	SwitchRadix int
	// SyscallsPerMessage is the expected number of kernel crossings a
	// message send/receive pair requires on the host (0 for pure
	// user-space fabrics, >0 for the paper's Omni-Path generation).
	SyscallsPerMessage float64
}

// OmniPath returns the Oakforest-PACS interconnect model: 100 Gbit/s
// (12.5 GB/s) injection, ~1 us nearest latency, 48-port switches, and the
// kernel-involvement property discussed in section IV.
func OmniPath() *Spec {
	return &Spec{
		Name:               "omni-path",
		InjectionBandwidth: 11.6, // GiB/s (12.5 GB/s)
		BaseLatency:        1 * sim.Microsecond,
		PerHopLatency:      150 * sim.Nanosecond,
		SwitchRadix:        48,
		SyscallsPerMessage: 0.25,
	}
}

// UserSpaceFabric returns an otherwise identical fabric whose host
// interface is driven entirely from user space — the ablation baseline for
// the LAMMPS anomaly.
func UserSpaceFabric() *Spec {
	s := OmniPath()
	s.Name = "userspace-fabric"
	s.SyscallsPerMessage = 0
	return s
}

// Hops estimates the switch hops between two distinct nodes of a
// totalNodes-node fat tree: nodes under the same edge switch are 1 hop
// apart; within the same pod 3; across pods 5. A node talking to itself is
// 0 hops (intra-node transport is the MPI layer's business).
func (s *Spec) Hops(a, b, totalNodes int) int {
	if a == b {
		return 0
	}
	perEdge := s.SwitchRadix / 2
	if perEdge < 1 {
		perEdge = 1
	}
	if a/perEdge == b/perEdge {
		return 1
	}
	perPod := perEdge * s.SwitchRadix / 2
	if perPod < 1 {
		perPod = 1
	}
	if a/perPod == b/perPod || totalNodes <= perPod {
		return 3
	}
	return 5
}

// MaxHops returns the hop count diameter at a given system size.
func (s *Spec) MaxHops(totalNodes int) int {
	perEdge := s.SwitchRadix / 2
	switch {
	case totalNodes <= 1:
		return 0
	case totalNodes <= perEdge:
		return 1
	case totalNodes <= perEdge*s.SwitchRadix/2:
		return 3
	default:
		return 5
	}
}

// PointToPoint returns the wire time for a message of the given size over
// the given hop count: alpha (base + per-hop) + bytes/bandwidth.
func (s *Spec) PointToPoint(bytes int64, hops int) sim.Duration {
	if bytes < 0 {
		panic(fmt.Sprintf("fabric: negative message size %d", bytes))
	}
	if hops <= 0 {
		// Intra-node: modelled as memory-speed copy by the MPI
		// layer; here only a minimal software latency applies.
		return 200 * sim.Nanosecond
	}
	alpha := s.BaseLatency + sim.Duration(hops-1)*s.PerHopLatency
	beta := sim.DurationOf(float64(bytes) / (s.InjectionBandwidth * math.Exp2(30)))
	return alpha + beta
}

// SyscallsFor returns the expected kernel crossings for sending the given
// number of messages.
func (s *Spec) SyscallsFor(messages int) float64 {
	if messages <= 0 {
		return 0
	}
	return float64(messages) * s.SyscallsPerMessage
}
