// Package mckernel models IHK/McKernel: a lightweight kernel developed from
// scratch that boots from IHK, retains a Linux-binary-compatible ABI, and
// natively implements only the performance-sensitive system calls — memory
// management, multi-processing/threading, a simple cooperative scheduler
// and signals. Everything else is offloaded to Linux through the
// per-process proxy: "For every single process running on McKernel there is
// a process spawned on Linux, called the proxy process."
package mckernel

import (
	"fmt"

	"mklite/internal/hw"
	"mklite/internal/ihk"
	"mklite/internal/kernel"
	"mklite/internal/linuxos"
	"mklite/internal/mem"
	"mklite/internal/noise"
	"mklite/internal/sched"
	"mklite/internal/sim"
)

// Options are the per-job tunables the paper exercises, mirroring the
// mcexec/proxy command line.
type Options struct {
	// HPCBrk selects the HPC-optimised heap ("in McKernel it is
	// currently implemented in a separate branch, but IHK allows
	// booting different kernel images per application").
	HPCBrk bool
	// MpolShmPremap pre-maps shared-memory sections used by MPI for
	// intra-node communication ("--mpol-shm-premap ... helps avoiding
	// contention in the page fault handler").
	MpolShmPremap bool
	// DisableSchedYield hijacks glibc's sched_yield via an injected
	// shared library and turns it into a no-op, eliminating user/kernel
	// mode switches ("--disable-sched-yield").
	DisableSchedYield bool
	// TimeSharingCores optionally enables time sharing, "but ... only
	// on specific CPU cores".
	TimeSharingCores []int
	// Sched selects the scheduling policy of LWK cores; empty means the
	// McKernel default (sched.Coop, the cooperative run-to-completion
	// scheduler the paper describes).
	Sched sched.Kind
}

// DefaultOptions is the configuration used for the paper's headline runs.
func DefaultOptions() Options {
	return Options{HPCBrk: true}
}

// Kernel is the McKernel model.
type Kernel struct {
	kernel.Base
	opts   Options
	grant  *ihk.Grant
	procfs *linuxos.ProcFS
}

// Boot starts McKernel on an IHK grant carved from the given Linux.
func Boot(lin *linuxos.Kernel, g *ihk.Grant, opts Options) (*Kernel, error) {
	if g == nil || g.Phys == nil {
		return nil, fmt.Errorf("mckernel: boot without an IHK grant")
	}
	kind := opts.Sched
	if kind == "" {
		kind = sched.Coop
	}
	pol, err := kernel.NewPolicy(kind, kernel.McKernelCosts())
	if err != nil {
		return nil, fmt.Errorf("mckernel: %w", err)
	}
	k := &Kernel{
		Base: kernel.Base{
			KName:  "mckernel",
			KType:  kernel.TypeMcKernel,
			KCaps:  caps(),
			KTable: table(),
			KCosts: kernel.McKernelCosts(),
			KNoise: noise.McKernelProfile(),
			KPart:  g.Part,
			KPhys:  g.Phys,
			KSched: pol,
		},
		opts:  opts,
		grant: g,
		// McKernel re-implements the /proc and /sys subset that
		// reflects its own resource partition (section II-D4).
		procfs: linuxos.NewPartitionProcFS(g.Part.Node, g.Part),
	}
	return k, nil
}

// Deploy is the one-call path used by the harness: boot Linux, reserve
// resources through IHK, boot McKernel.
func Deploy(node *hw.NodeSpec, opts Options) (*Kernel, *linuxos.Kernel, error) {
	lin, err := linuxos.Boot(node, linuxos.DefaultConfig())
	if err != nil {
		return nil, nil, fmt.Errorf("mckernel: booting host linux: %w", err)
	}
	g, err := ihk.Reserve(lin, ihk.DefaultReserveOptions())
	if err != nil {
		return nil, nil, fmt.Errorf("mckernel: ihk reservation: %w", err)
	}
	k, err := Boot(lin, g, opts)
	if err != nil {
		return nil, nil, err
	}
	return k, lin, nil
}

// table builds the syscall dispositions: the small performance-sensitive
// set is native, move_pages is work-in-progress (unsupported), a tail of
// Linux-specific facilities is intentionally unsupported for HPC, and
// everything else offloads to the proxy.
func table() *kernel.Table {
	t := kernel.NewTable(kernel.Offloaded)
	t.SetClass(kernel.ClassMemory, kernel.Native)
	t.SetClass(kernel.ClassThread, kernel.Native)
	t.SetClass(kernel.ClassSched, kernel.Native)
	t.SetClass(kernel.ClassSignal, kernel.Native)
	t.SetAll([]kernel.Sysno{
		kernel.SysGetpid, kernel.SysGettid, kernel.SysClone,
		kernel.SysExit, kernel.SysExitGroup,
		kernel.SysClockGettime, kernel.SysGettimeofday,
	}, kernel.Native)
	// Work in progress (section III-D: "Eleven of the 32 failing
	// experiments attempt to test various combinations of the
	// move_pages() system call, which is work in progress").
	t.Set(kernel.SysMovePages, kernel.Unsupported)
	// Intentionally unsupported, "mainly because of the nature of HPC
	// workloads".
	t.SetAll([]kernel.Sysno{
		kernel.SysPerfEventOpen, kernel.SysUserfaultfd, kernel.SysSeccomp,
		kernel.SysMemfdCreate, kernel.SysMigratePages, kernel.SysPersonality,
	}, kernel.Unsupported)
	return t
}

func caps() kernel.CapSet {
	return kernel.CapSet{}.With(
		kernel.CapFullFork, // multiprocessing is supported (via proxy)
		kernel.CapPtraceFull,
		kernel.CapDemandPagingFallback,
		kernel.CapTimeSharing,
	)
	// Absent: CapBrkShrinkReleases (HPC heap retains memory),
	// CapMovePages (WIP), CapExoticCloneFlags, CapLinuxMisc,
	// CapProcSysFull (subset only), CapToolsOnLinuxSide (tools must run
	// on LWK cores in the proxy model), CapEarlyBootMemory (boots after
	// Linux).
}

// Options returns the job options the kernel was booted with.
func (k *Kernel) Options() Options { return k.opts }

// Grant returns the IHK resource grant backing this kernel.
func (k *Kernel) Grant() *ihk.Grant { return k.grant }

// ProcFS returns McKernel's partial /proc and /sys surface.
func (k *Kernel) ProcFS() *linuxos.ProcFS { return k.procfs }

// MapPolicy implements kernel.Kernel: MCDRAM first with transparent DDR4
// spill, the largest pages the grant's contiguity allows, physical backing
// at map time — with McKernel's distinctive automatic fallback to demand
// paging "to allow best effort allocation from the specific NUMA domain
// when enough physical memory is not available".
func (k *Kernel) MapPolicy(kind mem.VMAKind) mem.Policy {
	node := k.Partition().Node
	domains := append(node.DomainsOfKind(hw.MCDRAM), node.DomainsOfKind(hw.DDR4)...)
	pol := mem.Policy{
		Domains:        domains,
		MaxPage:        hw.Page1G,
		FallbackDemand: true,
	}
	if kind == mem.VMAShared && !k.opts.MpolShmPremap {
		// Without --mpol-shm-premap the MPI shared-memory windows
		// are demand paged and fault under contention.
		pol.Demand = true
	}
	return pol
}

// NewHeap implements kernel.Kernel.
func (k *Kernel) NewHeap(as *mem.AddrSpace, limit int64, domains []int) (mem.Heap, error) {
	node := k.Partition().Node
	if domains == nil {
		domains = append(node.DomainsOfKind(hw.MCDRAM), node.DomainsOfKind(hw.DDR4)...)
	}
	if k.opts.HPCBrk {
		return mem.NewHPCHeap(as, limit, mem.DefaultHPCHeapConfig(domains))
	}
	// The non-optimised branch behaves like a plain demand-paged heap
	// (Linux-equivalent semantics, huge pages where alignment allows).
	return mem.NewLinuxHeap(as, limit, domains, true)
}

// SyscallTime implements kernel.Kernel, honouring --disable-sched-yield:
// the hijacked call never enters the kernel.
func (k *Kernel) SyscallTime(n kernel.Sysno) sim.Duration {
	if n == kernel.SysSchedYield && k.opts.DisableSchedYield {
		return 0
	}
	return k.Base.SyscallTime(n)
}

var _ kernel.Kernel = (*Kernel)(nil)
