package mckernel

import (
	"testing"

	"mklite/internal/hw"
	"mklite/internal/kernel"
	"mklite/internal/mem"
)

func deploy(t *testing.T, opts Options) *Kernel {
	t.Helper()
	k, _, err := Deploy(hw.KNL7250SNC4(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestDeployIdentity(t *testing.T) {
	k := deploy(t, DefaultOptions())
	if k.Type() != kernel.TypeMcKernel {
		t.Fatal("type")
	}
	if k.Sched().Preemptive() {
		t.Fatal("McKernel default scheduler must be cooperative")
	}
	if len(k.Partition().AppCores) != 64 {
		t.Fatalf("app cores = %d", len(k.Partition().AppCores))
	}
}

func TestBootRequiresGrant(t *testing.T) {
	_, lin, err := Deploy(hw.KNL7250SNC4(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Boot(lin, nil, DefaultOptions()); err == nil {
		t.Fatal("boot without grant accepted")
	}
}

func TestSyscallDispositions(t *testing.T) {
	k := deploy(t, DefaultOptions())
	tb := k.Table()
	native := []kernel.Sysno{
		kernel.SysBrk, kernel.SysMmap, kernel.SysMunmap, kernel.SysFutex,
		kernel.SysSchedYield, kernel.SysClone, kernel.SysGetpid,
		kernel.SysRtSigaction, kernel.SysSetMempolicy,
	}
	for _, n := range native {
		if tb.Get(n) != kernel.Native {
			t.Fatalf("%v should be native", n)
		}
	}
	offloaded := []kernel.Sysno{
		kernel.SysOpen, kernel.SysRead, kernel.SysWrite, kernel.SysIoctl,
		kernel.SysSocket, kernel.SysFork, kernel.SysExecve, kernel.SysUname,
	}
	for _, n := range offloaded {
		if tb.Get(n) != kernel.Offloaded {
			t.Fatalf("%v should be offloaded, got %v", n, tb.Get(n))
		}
	}
	if tb.Get(kernel.SysMovePages) != kernel.Unsupported {
		t.Fatal("move_pages should be unsupported (work in progress)")
	}
}

func TestOnlySmallNativeSet(t *testing.T) {
	// "It implements only a small set of performance sensitive system
	// calls. The rest are offloaded to Linux."
	k := deploy(t, DefaultOptions())
	native := k.Table().Count(kernel.Native)
	off := k.Table().Count(kernel.Offloaded)
	if native >= off {
		t.Fatalf("native %d >= offloaded %d; the native set must be small", native, off)
	}
}

func TestOffloadCostsMoreThanNative(t *testing.T) {
	k := deploy(t, DefaultOptions())
	if k.SyscallTime(kernel.SysOpen) <= k.SyscallTime(kernel.SysBrk) {
		t.Fatal("offloaded call should cost more than native")
	}
}

func TestMapPolicyMCDRAMFirstWithFallback(t *testing.T) {
	k := deploy(t, DefaultOptions())
	pol := k.MapPolicy(mem.VMAAnon)
	node := k.Partition().Node
	d0, _ := node.Domain(pol.Domains[0])
	if d0.Mem.Kind != hw.MCDRAM {
		t.Fatalf("first preference %v, want MCDRAM", pol.Domains)
	}
	if !pol.FallbackDemand {
		t.Fatal("McKernel must fall back to demand paging")
	}
	if pol.Demand {
		t.Fatal("default mappings are upfront")
	}
	if pol.MaxPage != hw.Page1G {
		t.Fatal("LWKs use up to 1GiB pages")
	}
}

func TestShmPolicyHonoursPremapOption(t *testing.T) {
	plain := deploy(t, DefaultOptions())
	if !plain.MapPolicy(mem.VMAShared).Demand {
		t.Fatal("without premap, shm should be demand paged")
	}
	opts := DefaultOptions()
	opts.MpolShmPremap = true
	premap := deploy(t, opts)
	if premap.MapPolicy(mem.VMAShared).Demand {
		t.Fatal("premap option should map shm upfront")
	}
}

func TestHeapSelection(t *testing.T) {
	hpc := deploy(t, DefaultOptions())
	as := mem.NewAddrSpace(hpc.Phys())
	h, err := hpc.NewHeap(as, hw.GiB, nil)
	if err != nil {
		t.Fatal(err)
	}
	h.Sbrk(4 * hw.MiB)
	if w := h.TouchUpTo(4 * hw.MiB); w.Faults != 0 {
		t.Fatal("HPC heap faulted")
	}

	opts := DefaultOptions()
	opts.HPCBrk = false
	plain := deploy(t, opts)
	as2 := mem.NewAddrSpace(plain.Phys())
	h2, err := plain.NewHeap(as2, hw.GiB, nil)
	if err != nil {
		t.Fatal(err)
	}
	h2.Sbrk(4 * hw.MiB)
	if w := h2.TouchUpTo(4 * hw.MiB); w.Faults == 0 {
		t.Fatal("non-optimised heap did not fault")
	}
}

func TestDisableSchedYield(t *testing.T) {
	opts := DefaultOptions()
	opts.DisableSchedYield = true
	k := deploy(t, opts)
	if k.SyscallTime(kernel.SysSchedYield) != 0 {
		t.Fatal("hijacked sched_yield should be free")
	}
	plain := deploy(t, DefaultOptions())
	if plain.SyscallTime(kernel.SysSchedYield) == 0 {
		t.Fatal("plain sched_yield should cost a trap")
	}
}

func TestCaps(t *testing.T) {
	k := deploy(t, DefaultOptions())
	if !k.Caps().Has(kernel.CapFullFork) || !k.Caps().Has(kernel.CapDemandPagingFallback) {
		t.Fatal("missing capabilities")
	}
	for _, c := range []kernel.Capability{
		kernel.CapBrkShrinkReleases, kernel.CapMovePages,
		kernel.CapExoticCloneFlags, kernel.CapLinuxMisc,
		kernel.CapEarlyBootMemory, kernel.CapToolsOnLinuxSide,
	} {
		if k.Caps().Has(c) {
			t.Fatalf("McKernel should lack %v", c)
		}
	}
}

func TestProcFSIsPartitionView(t *testing.T) {
	k := deploy(t, DefaultOptions())
	// McKernel's procfs shows only the LWK partition: fewer pseudo
	// files / CPUs than full Linux would expose.
	online, err := k.ProcFS().Read("/sys/devices/system/cpu/online")
	if err != nil {
		t.Fatal(err)
	}
	if online == "0-271" {
		t.Fatal("McKernel procfs should not show all 272 CPUs")
	}
}

func TestLWKMemoryComesFromGrant(t *testing.T) {
	k := deploy(t, DefaultOptions())
	// The LWK's MCDRAM capacity is large but below the raw 4 GiB per
	// domain (Linux kept a share).
	for d := 4; d < 8; d++ {
		c := k.Phys().Capacity(d)
		if c == 0 || c >= 4*hw.GiB {
			t.Fatalf("domain %d grant capacity %d", d, c)
		}
	}
}

func TestNoiseIsQuiet(t *testing.T) {
	k := deploy(t, DefaultOptions())
	if k.Noise().ExpectedRate(1) > 1e-5 {
		t.Fatalf("McKernel noise rate %v too high", k.Noise().ExpectedRate(1))
	}
}

func TestLaunchBindsRanksNUMAAware(t *testing.T) {
	k := deploy(t, DefaultOptions())
	job, err := k.Launch(16, hw.GiB)
	if err != nil {
		t.Fatal(err)
	}
	defer job.Exit()
	if len(job.Ranks()) != 16 {
		t.Fatalf("%d ranks", len(job.Ranks()))
	}
	seen := map[int]bool{}
	quads := map[int]int{}
	node := k.Partition().Node
	for _, r := range job.Ranks() {
		if seen[r.Core] {
			t.Fatalf("core %d double-booked", r.Core)
		}
		seen[r.Core] = true
		if r.Proc.Proxy == nil {
			t.Fatalf("rank %d has no proxy", r.ID)
		}
		// The offload target is NUMA-nearest: same-quadrant when an
		// OS core is local, else the closest.
		if r.OSCore < 0 || r.OSCore > 3 {
			t.Fatalf("rank %d offloads to core %d", r.ID, r.OSCore)
		}
		quads[node.Cores[r.Core].Domain]++
	}
	// Block distribution spreads over all four quadrants.
	if len(quads) != 4 {
		t.Fatalf("ranks concentrated: %v", quads)
	}
}

func TestLaunchValidation(t *testing.T) {
	k := deploy(t, DefaultOptions())
	if _, err := k.Launch(0, hw.GiB); err == nil {
		t.Fatal("zero ranks accepted")
	}
	if _, err := k.Launch(1000, hw.GiB); err == nil {
		t.Fatal("oversubscription accepted")
	}
}

func TestLaunchExitReleasesEverything(t *testing.T) {
	k := deploy(t, DefaultOptions())
	before := k.Phys().FreeBytes(4)
	job, err := k.Launch(8, hw.GiB)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range job.Ranks() {
		if _, err := r.Proc.Mmap(64*hw.MiB, mem.VMAAnon); err != nil {
			t.Fatal(err)
		}
	}
	if job.MCDRAMResident() == 0 {
		t.Fatal("launched ranks did not use MCDRAM")
	}
	job.Exit()
	if k.Phys().FreeBytes(4) != before {
		t.Fatal("exit leaked MCDRAM")
	}
	if job.TotalSyscallTime() != 0 {
		t.Fatal("exited job still reports ranks")
	}
}
