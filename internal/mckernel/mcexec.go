package mckernel

import (
	"fmt"

	"mklite/internal/hw"
	"mklite/internal/kernel"
)

// Job is an mcexec-style launch: N ranks on the LWK partition, each with
// its Linux-side proxy process and a NUMA-aware core binding. "mOS allows
// LWK resources to be divided at the time of application launch ...
// McKernel provides a similar feature for dealing with CPU cores ...
// McKernel's philosophy is to follow a Linux compatible interface — even at
// the level of MPI process binding related environment variables."
type Job struct {
	kern  *Kernel
	ranks []*Rank
}

// Rank is one launched process: its core binding and process state.
type Rank struct {
	ID   int
	Core int
	// OSCore is the NUMA-nearest Linux core servicing this rank's
	// offloads.
	OSCore int
	Proc   *kernel.Process
}

// Launch starts nRanks processes distributed block-wise over the LWK
// cores (the I_MPI_PIN-compatible default), each with heapLimit of heap.
func (k *Kernel) Launch(nRanks int, heapLimit int64) (*Job, error) {
	part := k.Partition()
	if nRanks <= 0 || nRanks > len(part.AppCores) {
		return nil, fmt.Errorf("mckernel: %d ranks for %d LWK cores", nRanks, len(part.AppCores))
	}
	job := &Job{kern: k}
	// Block distribution spreads ranks evenly over the cores (and hence
	// over the NUMA quadrants).
	stride := len(part.AppCores) / nRanks
	if stride < 1 {
		stride = 1
	}
	for r := 0; r < nRanks; r++ {
		core := part.AppCores[r*stride]
		osCore, err := part.NearestOSCore(core)
		if err != nil {
			return nil, fmt.Errorf("mckernel: rank %d: %w", r, err)
		}
		p, err := kernel.NewProcess(k, 1000+r, heapLimit)
		if err != nil {
			return nil, fmt.Errorf("mckernel: rank %d: %w", r, err)
		}
		if p.Proxy == nil {
			return nil, fmt.Errorf("mckernel: rank %d has no proxy process", r)
		}
		job.ranks = append(job.ranks, &Rank{ID: r, Core: core, OSCore: osCore, Proc: p})
	}
	return job, nil
}

// Ranks returns the launched ranks.
func (j *Job) Ranks() []*Rank { return j.ranks }

// TotalSyscallTime sums the ranks' accumulated kernel time.
func (j *Job) TotalSyscallTime() float64 {
	var t float64
	for _, r := range j.ranks {
		t += r.Proc.SyscallTime.Seconds()
	}
	return t
}

// MCDRAMResident sums the ranks' MCDRAM residency in bytes.
func (j *Job) MCDRAMResident() int64 {
	var total int64
	for _, r := range j.ranks {
		total += r.Proc.AS.BytesByKind()[hw.MCDRAM]
	}
	return total
}

// Exit terminates every rank and releases its memory.
func (j *Job) Exit() {
	for _, r := range j.ranks {
		r.Proc.Exit()
	}
	j.ranks = nil
}
