package stats

import (
	"fmt"
	"strings"
)

// Table is a minimal fixed-width text table used by the experiment harness
// to print paper tables and figure data.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row. Short rows are padded with empty cells; long rows
// panic, since a mismatched row is always a caller bug.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.headers) {
		panic(fmt.Sprintf("stats: row has %d cells, table has %d columns", len(cells), len(t.headers)))
	}
	row := make([]string, len(t.headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values.
func (t *Table) AddRowf(format string, cells ...any) {
	strs := make([]string, len(cells))
	for i, c := range cells {
		strs[i] = fmt.Sprintf(strings.Split(format, "|")[i], c)
	}
	t.AddRow(strs...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render returns the table as aligned text with a header separator.
func (t *Table) Render() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteString("\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
