package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestMedianOdd(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("Median = %v, want 2", m)
	}
}

func TestMedianEven(t *testing.T) {
	if m := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Fatalf("Median = %v, want 2.5", m)
	}
}

func TestMedianSingleton(t *testing.T) {
	if m := Median([]float64{7}); m != 7 {
		t.Fatalf("Median = %v, want 7", m)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Median(xs)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestMedianEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty input")
		}
	}()
	Median(nil)
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 6, 8, 10})
	if s.N != 5 || s.Min != 2 || s.Max != 10 || s.Median != 6 || s.Mean != 6 {
		t.Fatalf("bad summary: %+v", s)
	}
	// Sample stddev of {2,4,6,8,10} is sqrt(10).
	if math.Abs(s.Stddev-math.Sqrt(10)) > 1e-12 {
		t.Fatalf("stddev = %v", s.Stddev)
	}
}

func TestSummarizeSingleValueStddevZero(t *testing.T) {
	s := Summarize([]float64{3})
	if s.Stddev != 0 {
		t.Fatalf("stddev = %v for single value", s.Stddev)
	}
}

// Property: the median lies within [min, max] and summarize agrees with a
// direct sort-based computation.
func TestMedianBoundsProperty(t *testing.T) {
	check := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return s.Median >= sorted[0] && s.Median <= sorted[len(sorted)-1] &&
			s.Min == sorted[0] && s.Max == sorted[len(sorted)-1]
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {75, 40}, {12.5, 15},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileClamps(t *testing.T) {
	xs := []float64{1, 2}
	if Percentile(xs, -5) != 1 || Percentile(xs, 200) != 2 {
		t.Fatal("out-of-range percentile not clamped")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 100}); math.Abs(g-10) > 1e-9 {
		t.Fatalf("GeoMean = %v, want 10", g)
	}
}

func TestGeoMeanRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on non-positive input")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestRatio(t *testing.T) {
	if Ratio(10, 4) != 2.5 {
		t.Fatal("Ratio(10,4)")
	}
	if !math.IsInf(Ratio(1, 0), 1) {
		t.Fatal("Ratio(1,0) not +Inf")
	}
	if !math.IsInf(Ratio(-1, 0), -1) {
		t.Fatal("Ratio(-1,0) not -Inf")
	}
	if !math.IsNaN(Ratio(0, 0)) {
		t.Fatal("Ratio(0,0) not NaN")
	}
}

func TestSeriesAddKeepsOrder(t *testing.T) {
	s := &Series{Name: "x"}
	s.Add(64, Summarize([]float64{1}))
	s.Add(1, Summarize([]float64{2}))
	s.Add(8, Summarize([]float64{3}))
	got := s.NodeCounts()
	want := []int{1, 8, 64}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("node counts %v", got)
		}
	}
}

func TestSeriesAt(t *testing.T) {
	s := &Series{Name: "x"}
	s.Add(4, Summarize([]float64{9}))
	if p, ok := s.At(4); !ok || p.Median != 9 {
		t.Fatalf("At(4) = %+v, %v", p, ok)
	}
	if _, ok := s.At(5); ok {
		t.Fatal("At(5) found a phantom point")
	}
}

func TestSeriesRelativeTo(t *testing.T) {
	base := &Series{Name: "Linux"}
	base.Add(1, Summarize([]float64{100}))
	base.Add(2, Summarize([]float64{200}))
	lwk := &Series{Name: "McKernel"}
	lwk.Add(1, Summarize([]float64{110}))
	lwk.Add(2, Summarize([]float64{300}))
	lwk.Add(4, Summarize([]float64{999})) // no baseline point: dropped

	rel := lwk.RelativeTo(base)
	if len(rel.Points) != 2 {
		t.Fatalf("relative series has %d points, want 2", len(rel.Points))
	}
	if p, _ := rel.At(1); math.Abs(p.Median-1.1) > 1e-9 {
		t.Fatalf("relative at 1 node = %v", p.Median)
	}
	if p, _ := rel.At(2); math.Abs(p.Median-1.5) > 1e-9 {
		t.Fatalf("relative at 2 nodes = %v", p.Median)
	}
}

func TestSeriesMedians(t *testing.T) {
	s := &Series{Name: "x"}
	s.Add(1, Summarize([]float64{5}))
	s.Add(2, Summarize([]float64{7}))
	m := s.Medians()
	if len(m) != 2 || m[0] != 5 || m[1] != 7 {
		t.Fatalf("Medians = %v", m)
	}
}

func TestFigureGetAndRender(t *testing.T) {
	f := &Figure{ID: "fig0", Title: "test figure"}
	s := &Series{Name: "Linux", Unit: "zones/s"}
	s.Add(1, Summarize([]float64{10, 12, 11}))
	f.Series = append(f.Series, s)

	if f.Get("Linux") != s {
		t.Fatal("Get failed")
	}
	if f.Get("nope") != nil {
		t.Fatal("Get returned phantom series")
	}
	out := f.Render()
	if !strings.Contains(out, "fig0") || !strings.Contains(out, "Linux") {
		t.Fatalf("render missing content:\n%s", out)
	}
	if !strings.Contains(out, "11") {
		t.Fatalf("render missing median:\n%s", out)
	}
}

func TestFigureRenderEmpty(t *testing.T) {
	f := &Figure{ID: "e", Title: "empty"}
	if !strings.Contains(f.Render(), "no series") {
		t.Fatal("empty figure render")
	}
}

func TestFigureRenderMissingPoints(t *testing.T) {
	f := &Figure{ID: "m", Title: "gaps"}
	a := &Series{Name: "A"}
	a.Add(1, Summarize([]float64{1}))
	b := &Series{Name: "B"}
	b.Add(2, Summarize([]float64{2}))
	f.Series = []*Series{a, b}
	out := f.Render()
	if !strings.Contains(out, "-") {
		t.Fatalf("expected gap markers:\n%s", out)
	}
}

func TestTableRenderAlignment(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("a", "1")
	tb.AddRow("longer", "22")
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("render lines = %d:\n%s", len(lines), out)
	}
	if len(lines[2]) != len(lines[3]) {
		t.Fatalf("rows not aligned:\n%s", out)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := NewTable("a", "b", "c")
	tb.AddRow("x")
	if !strings.Contains(tb.Render(), "x") {
		t.Fatal("short row lost")
	}
}

func TestTableLongRowPanics(t *testing.T) {
	tb := NewTable("a")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on long row")
		}
	}()
	tb.AddRow("1", "2")
}

func TestTableAddRowf(t *testing.T) {
	tb := NewTable("n", "v")
	tb.AddRowf("%d|%.2f", 3, 1.5)
	if !strings.Contains(tb.Render(), "1.50") {
		t.Fatalf("AddRowf formatting:\n%s", tb.Render())
	}
}

func TestHistogramBinning(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	h := NewHistogram(xs, 5)
	if h.Total != 10 || len(h.Counts) != 5 {
		t.Fatalf("histogram: %+v", h)
	}
	sum := 0
	for _, c := range h.Counts {
		sum += c
	}
	if sum != 10 {
		t.Fatalf("counts sum to %d", sum)
	}
	// Uniform data: every bucket gets 2.
	for i, c := range h.Counts {
		if c != 2 {
			t.Fatalf("bucket %d = %d", i, c)
		}
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h := NewHistogram([]float64{5, 5, 5}, 4)
	sum := 0
	for _, c := range h.Counts {
		sum += c
	}
	if sum != 3 {
		t.Fatalf("degenerate counts: %v", h.Counts)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewHistogram(nil, 3)
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram([]float64{1, 1, 1, 1, 2, 3}, 3)
	out := h.Render("us")
	if !strings.Contains(out, "#") || !strings.Contains(out, "us") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestRankMatchesPercentile(t *testing.T) {
	// Rank is the canonical definition; Percentile must be exactly its
	// application to a sorted sample.
	xs := []float64{9, 1, 4, 7, 2, 8, 3}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for _, p := range []float64{0, 10, 25, 50, 75, 90, 99, 99.9, 100} {
		lo, hi, frac := Rank(len(xs), p)
		want := sorted[lo]*(1-frac) + sorted[hi]*frac
		if got := Percentile(xs, p); got != want {
			t.Fatalf("Percentile(%v) = %v, Rank rule gives %v", p, got, want)
		}
	}
}

func TestRankBounds(t *testing.T) {
	lo, hi, frac := Rank(5, 0)
	if lo != 0 || hi != 0 || frac != 0 {
		t.Fatalf("Rank(5, 0) = %d,%d,%v", lo, hi, frac)
	}
	lo, hi, frac = Rank(5, 100)
	if lo != 4 || hi != 4 || frac != 0 {
		t.Fatalf("Rank(5, 100) = %d,%d,%v", lo, hi, frac)
	}
	// Out-of-range percentiles clamp rather than index out of bounds.
	if lo, hi, _ = Rank(3, 250); lo != 2 || hi != 2 {
		t.Fatalf("Rank(3, 250) = %d,%d", lo, hi)
	}
	if lo, hi, _ = Rank(3, -5); lo != 0 || hi != 0 {
		t.Fatalf("Rank(3, -5) = %d,%d", lo, hi)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Rank(0, 50) did not panic")
		}
	}()
	Rank(0, 50)
}

func TestBucketPercentileUniform(t *testing.T) {
	// 10 buckets of width 1, one sample each at the bucket's lower bound:
	// the binned percentile must equal the exact sample percentile.
	xs := make([]float64, 10)
	for i := range xs {
		xs[i] = float64(i)
	}
	counts := func(i int) int64 { return 1 }
	bounds := func(i int) (float64, float64) { return float64(i), float64(i + 1) }
	for _, p := range []float64{0, 25, 50, 90, 99, 100} {
		got := BucketPercentile(10, p, 10, counts, bounds)
		want := Percentile(xs, p)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("BucketPercentile(%v) = %v, want %v", p, got, want)
		}
	}
}

func TestHistogramPercentileAgreesWithSamples(t *testing.T) {
	// Binning quantizes values to the bucket grid, so the binned
	// percentile under the shared Rank rule must track the raw-sample
	// percentile to within one bucket width (and stay inside [Min, Max]).
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7}
	h := NewHistogram(xs, 8)
	width := (h.Max - h.Min) / float64(len(h.Counts))
	for _, p := range []float64{0, 50, 75, 100} {
		got := h.Percentile(p)
		want := Percentile(xs, p)
		if math.Abs(got-want) > width {
			t.Fatalf("Histogram.Percentile(%v) = %v, want %v within %v", p, got, want, width)
		}
		if got < h.Min || got > h.Max {
			t.Fatalf("Histogram.Percentile(%v) = %v outside [%v, %v]", p, got, h.Min, h.Max)
		}
	}
}

func TestHistogramPercentileDegenerate(t *testing.T) {
	h := NewHistogram([]float64{42, 42, 42}, 4)
	for _, p := range []float64{0, 50, 100} {
		if got := h.Percentile(p); got != 42 {
			t.Fatalf("degenerate Percentile(%v) = %v, want 42", p, got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("empty-histogram Percentile did not panic")
		}
	}()
	(&Histogram{Counts: make([]int, 4)}).Percentile(50)
}
