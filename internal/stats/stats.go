// Package stats provides the small statistical and tabulation toolkit shared
// by the experiment harness and the benchmark suite: medians with min/max
// error bars (matching the paper's plotting methodology), scaling series
// keyed by node count, and fixed-width text tables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary condenses a set of repeated measurements the way the paper's plots
// do: median with min/max error bars across (typically five) repetitions.
type Summary struct {
	N      int
	Median float64
	Min    float64
	Max    float64
	Mean   float64
	Stddev float64
}

// Summarize computes a Summary over xs. It panics on an empty input: a
// summary of nothing is always a harness bug.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: Summarize of empty sample")
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	varSum := 0.0
	for _, x := range xs {
		d := x - s.Mean
		varSum += d * d
	}
	if len(xs) > 1 {
		s.Stddev = math.Sqrt(varSum / float64(len(xs)-1))
	}
	s.Median = Median(xs)
	return s
}

// Median returns the median of xs without modifying it.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Median of empty sample")
	}
	tmp := make([]float64, len(xs))
	copy(tmp, xs)
	sort.Float64s(tmp)
	n := len(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	// Average the two central elements without overflowing for values
	// near the float64 range limits.
	return tmp[n/2-1]/2 + tmp[n/2]/2
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between order statistics.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty sample")
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	tmp := make([]float64, len(xs))
	copy(tmp, xs)
	sort.Float64s(tmp)
	if len(tmp) == 1 {
		return tmp[0]
	}
	rank := p / 100 * float64(len(tmp)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return tmp[lo]
	}
	frac := rank - float64(lo)
	return tmp[lo]*(1-frac) + tmp[hi]*frac
}

// GeoMean returns the geometric mean of xs. All inputs must be positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: GeoMean of empty sample")
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive value %v", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Ratio returns a/b, guarding against division by zero (returns +Inf/-Inf
// with the sign of a, or NaN for 0/0, mirroring IEEE semantics explicitly).
func Ratio(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return math.NaN()
		}
		return math.Inf(int(math.Copysign(1, a)))
	}
	return a / b
}

// Histogram bins samples into equal-width buckets for text rendering.
type Histogram struct {
	Min, Max float64
	Counts   []int
	Total    int
}

// NewHistogram bins xs into n equal-width buckets spanning [min(xs),
// max(xs)]. It panics on empty input or non-positive n.
func NewHistogram(xs []float64, n int) *Histogram {
	if len(xs) == 0 {
		panic("stats: NewHistogram of empty sample")
	}
	if n <= 0 {
		panic("stats: NewHistogram with non-positive bucket count")
	}
	s := Summarize(xs)
	h := &Histogram{Min: s.Min, Max: s.Max, Counts: make([]int, n), Total: len(xs)}
	width := (s.Max - s.Min) / float64(n)
	for _, x := range xs {
		i := n - 1
		if width > 0 {
			i = int((x - s.Min) / width)
			if i >= n {
				i = n - 1
			}
			if i < 0 {
				i = 0
			}
		}
		h.Counts[i]++
	}
	return h
}

// Render draws the histogram as rows of hash bars (log-ish scaling keeps
// heavy-tailed distributions readable).
func (h *Histogram) Render(unit string) string {
	var b strings.Builder
	width := (h.Max - h.Min) / float64(len(h.Counts))
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, c := range h.Counts {
		lo := h.Min + float64(i)*width
		bar := 0
		if c > 0 && maxCount > 0 {
			bar = 1 + int(39*math.Log1p(float64(c))/math.Log1p(float64(maxCount)))
		}
		fmt.Fprintf(&b, "%12.4g %-6s |%-40s %d\n", lo, unit, strings.Repeat("#", bar), c)
	}
	return b.String()
}
