// Package stats provides the small statistical and tabulation toolkit shared
// by the experiment harness and the benchmark suite: medians with min/max
// error bars (matching the paper's plotting methodology), scaling series
// keyed by node count, and fixed-width text tables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary condenses a set of repeated measurements the way the paper's plots
// do: median with min/max error bars across (typically five) repetitions.
type Summary struct {
	N      int
	Median float64
	Min    float64
	Max    float64
	Mean   float64
	Stddev float64
}

// Summarize computes a Summary over xs. It panics on an empty input: a
// summary of nothing is always a harness bug.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: Summarize of empty sample")
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	varSum := 0.0
	for _, x := range xs {
		d := x - s.Mean
		varSum += d * d
	}
	if len(xs) > 1 {
		s.Stddev = math.Sqrt(varSum / float64(len(xs)-1))
	}
	s.Median = Median(xs)
	return s
}

// Median returns the median of xs without modifying it.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Median of empty sample")
	}
	tmp := make([]float64, len(xs))
	copy(tmp, xs)
	sort.Float64s(tmp)
	n := len(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	// Average the two central elements without overflowing for values
	// near the float64 range limits.
	return tmp[n/2-1]/2 + tmp[n/2]/2
}

// Rank is the package's single quantile definition: the p-th percentile
// (0..100) of a sorted n-element sample lies at fractional order-statistic
// position p/100*(n-1), linearly interpolated between the samples at
// positions lo and hi with weight frac on hi. Every percentile in the module
// — Percentile, Histogram.Percentile and the metrics histograms — derives
// from this one rule, so a figure table and an mkprof report can never
// disagree on the same data. It panics on n <= 0.
func Rank(n int, p float64) (lo, hi int, frac float64) {
	if n <= 0 {
		panic("stats: Rank of empty sample")
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := p / 100 * float64(n-1)
	lo = int(math.Floor(rank))
	hi = int(math.Ceil(rank))
	if hi >= n {
		hi = n - 1
	}
	return lo, hi, rank - float64(lo)
}

// Percentile returns the p-th percentile (0..100) of xs under the Rank rule.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty sample")
	}
	tmp := make([]float64, len(xs))
	copy(tmp, xs)
	sort.Float64s(tmp)
	lo, hi, frac := Rank(len(tmp), p)
	return tmp[lo]*(1-frac) + tmp[hi]*frac
}

// BucketPercentile computes the p-th percentile of a binned sample under the
// same Rank rule as Percentile: the count(i) samples of bucket i are treated
// as evenly spaced from the bucket's lower bound, so the j-th of them sits at
// lo + (hi-lo)*j/count. Binning loses within-bucket detail, so the result is
// exact only up to the bucket resolution; callers that track the true sample
// min/max should clamp into that range. Panics when total <= 0.
func BucketPercentile(total int64, p float64, buckets int, count func(int) int64, bounds func(int) (lo, hi float64)) float64 {
	if total <= 0 {
		panic("stats: BucketPercentile of empty sample")
	}
	rlo, rhi, frac := Rank(int(total), p)
	valueAt := func(k int) float64 {
		seen := int64(0)
		for i := 0; i < buckets; i++ {
			c := count(i)
			if c == 0 {
				continue
			}
			if int64(k) < seen+c {
				lo, hi := bounds(i)
				return lo + (hi-lo)*float64(int64(k)-seen)/float64(c)
			}
			seen += c
		}
		// k beyond the recorded samples: the last bucket's upper edge.
		for i := buckets - 1; i >= 0; i-- {
			if count(i) > 0 {
				_, hi := bounds(i)
				return hi
			}
		}
		return 0
	}
	a := valueAt(rlo)
	if rlo == rhi {
		return a
	}
	return a*(1-frac) + valueAt(rhi)*frac
}

// GeoMean returns the geometric mean of xs. All inputs must be positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: GeoMean of empty sample")
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive value %v", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Ratio returns a/b, guarding against division by zero (returns +Inf/-Inf
// with the sign of a, or NaN for 0/0, mirroring IEEE semantics explicitly).
func Ratio(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return math.NaN()
		}
		return math.Inf(int(math.Copysign(1, a)))
	}
	return a / b
}

// Histogram bins samples into equal-width buckets for text rendering.
type Histogram struct {
	Min, Max float64
	Counts   []int
	Total    int
}

// NewHistogram bins xs into n equal-width buckets spanning [min(xs),
// max(xs)]. It panics on empty input or non-positive n.
func NewHistogram(xs []float64, n int) *Histogram {
	if len(xs) == 0 {
		panic("stats: NewHistogram of empty sample")
	}
	if n <= 0 {
		panic("stats: NewHistogram with non-positive bucket count")
	}
	s := Summarize(xs)
	h := &Histogram{Min: s.Min, Max: s.Max, Counts: make([]int, n), Total: len(xs)}
	width := (s.Max - s.Min) / float64(n)
	for _, x := range xs {
		i := n - 1
		if width > 0 {
			i = int((x - s.Min) / width)
			if i >= n {
				i = n - 1
			}
			if i < 0 {
				i = 0
			}
		}
		h.Counts[i]++
	}
	return h
}

// Percentile returns the p-th percentile of the binned sample under the
// shared Rank rule (see BucketPercentile), clamped into the histogram's
// observed [Min, Max] range.
func (h *Histogram) Percentile(p float64) float64 {
	if h.Total <= 0 {
		panic("stats: Percentile of empty histogram")
	}
	width := (h.Max - h.Min) / float64(len(h.Counts))
	v := BucketPercentile(int64(h.Total), p, len(h.Counts),
		func(i int) int64 { return int64(h.Counts[i]) },
		func(i int) (float64, float64) {
			lo := h.Min + float64(i)*width
			return lo, lo + width
		})
	return math.Min(math.Max(v, h.Min), h.Max)
}

// Render draws the histogram as rows of hash bars (log-ish scaling keeps
// heavy-tailed distributions readable).
func (h *Histogram) Render(unit string) string {
	var b strings.Builder
	width := (h.Max - h.Min) / float64(len(h.Counts))
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, c := range h.Counts {
		lo := h.Min + float64(i)*width
		bar := 0
		if c > 0 && maxCount > 0 {
			bar = 1 + int(39*math.Log1p(float64(c))/math.Log1p(float64(maxCount)))
		}
		fmt.Fprintf(&b, "%12.4g %-6s |%-40s %d\n", lo, unit, strings.Repeat("#", bar), c)
	}
	return b.String()
}
