package stats

import (
	"fmt"
	"maps"
	"slices"
	"sort"
	"strings"
)

// Point is one entry of a scaling series: a node count with the summary of
// repeated measurements at that scale.
type Point struct {
	Nodes int
	Summary
}

// Series is a named scaling curve (one line on a paper figure), e.g.
// "McKernel" on Figure 5b.
type Series struct {
	Name   string
	Unit   string // unit of the Y values, e.g. "Mflops", "zones/s"
	Points []Point
}

// Add appends a measurement summary at the given node count, keeping points
// ordered by node count.
func (s *Series) Add(nodes int, sum Summary) {
	s.Points = append(s.Points, Point{Nodes: nodes, Summary: sum})
	sort.Slice(s.Points, func(i, j int) bool { return s.Points[i].Nodes < s.Points[j].Nodes })
}

// At returns the point at the given node count and whether it exists.
func (s *Series) At(nodes int) (Point, bool) {
	for _, p := range s.Points {
		if p.Nodes == nodes {
			return p, true
		}
	}
	return Point{}, false
}

// NodeCounts returns the sorted node counts present in the series.
func (s *Series) NodeCounts() []int {
	out := make([]int, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Nodes
	}
	return out
}

// RelativeTo returns a new series whose medians (and min/max) are expressed
// as ratios to the baseline's median at the same node count. Node counts
// absent from the baseline are dropped. This is exactly the normalisation of
// the paper's Figure 4 and Figure 5a.
func (s *Series) RelativeTo(base *Series) *Series {
	out := &Series{Name: s.Name + "/" + base.Name, Unit: "x"}
	for _, p := range s.Points {
		bp, ok := base.At(p.Nodes)
		if !ok || bp.Median == 0 {
			continue
		}
		out.Points = append(out.Points, Point{
			Nodes: p.Nodes,
			Summary: Summary{
				N:      p.N,
				Median: p.Median / bp.Median,
				Min:    p.Min / bp.Median,
				Max:    p.Max / bp.Median,
				Mean:   p.Mean / bp.Median,
			},
		})
	}
	return out
}

// Medians returns the median values in node-count order.
func (s *Series) Medians() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Median
	}
	return out
}

// Figure is a set of series sharing an X axis, i.e. one plot of the paper.
type Figure struct {
	ID     string // e.g. "fig4", "fig5a"
	Title  string
	Series []*Series

	// Counters carries the merged mechanism counters of the runs behind
	// the figure (counter provenance; set when the experiment ran with
	// counters enabled). Render deliberately ignores it so figure bytes
	// — and therefore the determinism digests — are identical with and
	// without counting.
	Counters map[string]int64

	// MetricsText carries the rendered metrics report (per-phase time
	// breakdown, latency percentile tables) of the runs behind the figure
	// when the experiment ran with metrics enabled. Like Counters it is
	// provenance, not plot data: Render ignores it, so figure bytes — and
	// the determinism digests — are identical with and without metrics.
	// It is a rendered string rather than a registry to keep stats free of
	// a metrics dependency (metrics imports stats for its quantile rule).
	MetricsText string
}

// Get returns the series with the given name, or nil.
func (f *Figure) Get(name string) *Series {
	for _, s := range f.Series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Render formats the figure as an aligned text table: one row per node
// count, one column group per series (median [min..max]).
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Title)
	if len(f.Series) == 0 {
		b.WriteString("(no series)\n")
		return b.String()
	}
	// Union of node counts across series.
	nodeSet := map[int]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			nodeSet[p.Nodes] = true
		}
	}
	nodes := slices.Sorted(maps.Keys(nodeSet))

	tb := NewTable(append([]string{"nodes"}, seriesHeaders(f.Series)...)...)
	for _, n := range nodes {
		row := []string{fmt.Sprintf("%d", n)}
		for _, s := range f.Series {
			if p, ok := s.At(n); ok {
				row = append(row, fmt.Sprintf("%.4g", p.Median),
					fmt.Sprintf("[%.4g..%.4g]", p.Min, p.Max))
			} else {
				row = append(row, "-", "-")
			}
		}
		tb.AddRow(row...)
	}
	b.WriteString(tb.Render())
	return b.String()
}

func seriesHeaders(ss []*Series) []string {
	var hs []string
	for _, s := range ss {
		unit := s.Unit
		if unit == "" {
			unit = "value"
		}
		hs = append(hs, fmt.Sprintf("%s (%s)", s.Name, unit), "range")
	}
	return hs
}
