package analysis

import (
	"go/ast"
	"go/types"
)

// modulePathPrefix identifies module-internal packages: errdrop guards the
// module's own APIs, whose error returns all carry determinism- or
// contract-relevant information (par.MapErr propagates job failures in
// lowest-index order, fault.ParsePlan rejects malformed plans,
// trace.Validate rejects corrupt event streams, benchfmt.Read rejects
// schema drift). Discarding one silently turns a hard contract violation
// into an unexplained wrong number.
const modulePathPrefix = "mklite"

// ErrDrop forbids discarding the error result of a module-internal call:
// calling it as a bare statement, deferring it, or assigning the error to
// the blank identifier. Handle it or return it; if a site provably cannot
// fail, say why with //mklint:ignore errdrop <reason>.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc: "forbid discarding error results of module-internal APIs " +
		"(par.MapErr, fault.ParsePlan, trace.Validate, benchfmt.Read, …): " +
		"handle the error or annotate why the site cannot fail",
	Run: runErrDrop,
}

func runErrDrop(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDroppedCall(pass, call, "the call discards it")
				}
			case *ast.DeferStmt:
				checkDroppedCall(pass, n.Call, "defer discards it")
			case *ast.GoStmt:
				checkDroppedCall(pass, n.Call, "the goroutine discards it")
			case *ast.AssignStmt:
				checkBlankAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

// moduleErrFunc resolves call to a module-internal function or method whose
// last result is error, or nil.
func moduleErrFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	if fn.Pkg().Path() != modulePathPrefix &&
		!pathMatches(fn.Pkg().Path(), modulePathPrefix) {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return nil
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	named, ok := last.(*types.Named)
	if !ok || named.Obj().Pkg() != nil || named.Obj().Name() != "error" {
		return nil
	}
	return fn
}

// checkDroppedCall reports a statement-position call whose error result is
// thrown away entirely.
func checkDroppedCall(pass *Pass, call *ast.CallExpr, how string) {
	fn := moduleErrFunc(pass, call)
	if fn == nil {
		return
	}
	pass.Reportf(call.Pos(),
		"%s returns an error and %s: module-internal errors carry contract violations (bad plan, corrupt trace, failed job) — handle it, return it, or annotate //mklint:ignore errdrop <reason> (see docs/LINTING.md)",
		qualifiedName(fn), how)
}

// checkBlankAssign reports `x, _ := pkg.F()` where the blank identifier
// swallows the error result.
func checkBlankAssign(pass *Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	fn := moduleErrFunc(pass, call)
	if fn == nil {
		return
	}
	sig := fn.Type().(*types.Signature)
	errIndex := sig.Results().Len() - 1
	if errIndex >= len(as.Lhs) {
		return
	}
	// Single-result error assigned to a named variable is handled
	// elsewhere; only the blank identifier is a drop.
	if id, ok := as.Lhs[errIndex].(*ast.Ident); ok && id.Name == "_" {
		pass.Reportf(as.Pos(),
			"%s returns an error and the blank identifier discards it: module-internal errors carry contract violations — handle it, return it, or annotate //mklint:ignore errdrop <reason> (see docs/LINTING.md)",
			qualifiedName(fn))
	}
}

// qualifiedName renders pkg.Func or pkg.Type.Method for diagnostics.
func qualifiedName(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	return fn.Pkg().Name() + "." + name
}
