package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatOrder flags order-sensitive floating-point accumulation: a compound
// float assignment (+=, -=, *=, /=) whose target outlives an iteration
// context that does not have a deterministic order. Float arithmetic is not
// associative, so the total depends on visit order — the hw/tlb.go bug
// class PR 1 found by hand, enforced permanently. Three contexts are
// nondeterministically ordered:
//
//   - the body of a `range` over a map: Go randomizes map order per run;
//   - the body of a `range` over a channel: receive order is producer
//     scheduling;
//   - a closure passed to par.Map / par.MapErr / par.MapWidth /
//     par.MapWidthErr accumulating into a captured variable: workers run
//     concurrently, so beyond the data race the sum's grouping follows
//     worker completion order.
//
// Accumulating into a variable declared inside the context is fine (it dies
// with the iteration), as is indexed accumulation (m[k] += v touches each
// key once; s[i] += v is per-job). The fix is to accumulate per-iteration
// values into an index-ordered slice (par results are index-ordered by
// contract) or to iterate sorted keys, then reduce sequentially.
var FloatOrder = &Analyzer{
	Name: "floatorder",
	Doc: "flag compound float accumulation whose iteration source has no " +
		"deterministic order (map range, channel range, par closure); " +
		"reduce index-ordered results sequentially instead",
	Run: runFloatOrder,
}

func runFloatOrder(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				tv, ok := pass.TypesInfo.Types[n.X]
				if !ok || tv.Type == nil {
					return true
				}
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					reportFloatAccum(pass, n.Body, n, "a map range: iteration order is randomized per run")
				case *types.Chan:
					reportFloatAccum(pass, n.Body, n, "a channel range: receive order follows producer scheduling")
				}
			case *ast.CallExpr:
				if !isParCall(pass, n) {
					return true
				}
				for _, arg := range n.Args {
					if lit, ok := arg.(*ast.FuncLit); ok {
						reportFloatAccum(pass, lit.Body, lit, "a par closure: worker completion order groups the sum nondeterministically (and the write races)")
					}
				}
			}
			return true
		})
	}
	return nil
}

// reportFloatAccum flags every compound float assignment inside body whose
// target is declared outside the context node.
func reportFloatAccum(pass *Pass, body *ast.BlockStmt, context ast.Node, why string) {
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		default:
			return true
		}
		lhs := as.Lhs[0]
		if _, indexed := lhs.(*ast.IndexExpr); indexed {
			return true // per-key / per-index update: each element touched once
		}
		tv, ok := pass.TypesInfo.Types[lhs]
		if !ok || tv.Type == nil {
			return true
		}
		basic, ok := tv.Type.Underlying().(*types.Basic)
		if !ok || basic.Info()&types.IsFloat == 0 {
			return true
		}
		if !declaredOutsideNode(pass, context, lhs) {
			return true
		}
		pass.Reportf(as.Pos(),
			"float accumulation into %s inside %s; float addition is not associative, so the total depends on visit order — collect per-iteration values index-ordered and reduce sequentially (determinism contract, see docs/LINTING.md)",
			exprString(lhs), why)
		return true
	})
}

// declaredOutsideNode reports whether the base identifier of expr refers to
// an object declared outside the context node.
func declaredOutsideNode(pass *Pass, context ast.Node, expr ast.Expr) bool {
	id := baseIdent(expr)
	if id == nil {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() < context.Pos() || obj.Pos() >= context.End()
}
