// Fixture for the errdrop analyzer: module-internal errors carry contract
// violations and must not be discarded — as a bare statement, via defer or
// go, or through the blank identifier. Handling, returning, and stdlib
// calls are clean.
package errdrop

import (
	"fmt"

	"mklite/internal/fault"
	"mklite/internal/par"
	"mklite/internal/trace"
)

func badStatement(data []byte) {
	trace.Validate(data) // want `trace\.Validate returns an error and the call discards it`
}

func badBlank(spec string) *fault.Plan {
	p, _ := fault.ParsePlan(spec) // want `fault\.ParsePlan returns an error and the blank identifier discards it`
	return p
}

func badMapErr(n int) []int {
	out, _ := par.MapErr(n, func(i int) (int, error) { return i, nil }) // want `par\.MapErr returns an error and the blank identifier discards it`
	return out
}

func badDefer(p *fault.Plan) {
	defer p.Validate() // want `fault\.Plan\.Validate returns an error and defer discards it`
}

func badGo(data []byte) {
	go trace.Validate(data) // want `trace\.Validate returns an error and the goroutine discards it`
}

// --- clean ---

func goodReturned(spec string) (*fault.Plan, error) {
	return fault.ParsePlan(spec)
}

func goodChecked(data []byte) bool {
	if err := trace.Validate(data); err != nil {
		return false
	}
	return true
}

func goodStdlib() {
	// Only module-internal APIs are guarded; stdlib conventions (Println's
	// error, say) stay the caller's business.
	fmt.Println("ok")
}
