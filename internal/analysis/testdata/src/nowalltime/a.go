// Fixture for the nowalltime analyzer: wall-clock reads and timers are
// forbidden; inert time values (Duration, unit constants) are allowed.
package nowalltime

import "time"

func bad() {
	_ = time.Now()               // want `use of time\.Now is forbidden`
	time.Sleep(time.Millisecond) // want `use of time\.Sleep is forbidden`
	_ = time.Since(time.Time{})  // want `use of time\.Since is forbidden`
	_ = time.Until(time.Time{})  // want `use of time\.Until is forbidden`
	_ = time.NewTimer(0)         // want `use of time\.NewTimer is forbidden`
	_ = time.NewTicker(1)        // want `use of time\.NewTicker is forbidden`
	<-time.After(5)              // want `use of time\.After is forbidden`
	time.AfterFunc(1, func() {}) // want `use of time\.AfterFunc is forbidden`
}

func good() time.Duration {
	// Duration arithmetic and unit constants are pure data: fine.
	d := 3 * time.Millisecond
	return d + time.Second
}
