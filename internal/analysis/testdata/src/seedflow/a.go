// Fixture for the seedflow analyzer: seed-derivation hygiene. Ad-hoc seed
// arithmetic, seed reuse across stream constructions, seeds captured into
// par closures, and one RNG drawn from in two sibling loops are flagged;
// StreamSeed-per-index, Split-per-phase, and reassigned seeds are clean.
package seedflow

import (
	"mklite/internal/par"
	"mklite/internal/sim"
)

// --- rule 1: ad-hoc seed arithmetic ---

func badArith(base uint64, i int) *sim.RNG {
	return sim.NewRNG(base + uint64(i)*2654435761) // want `ad-hoc seed arithmetic .* in a seed position of sim\.NewRNG`
}

func badXorMix(base, kind uint64) uint64 {
	return sim.StreamSeed(base^kind, 3) // want `ad-hoc seed arithmetic .* in a seed position of sim\.StreamSeed`
}

// newWorker consumes its parameter as a seed, so calls to it are seed
// positions too (intra-package fact propagation).
func newWorker(seed uint64) *sim.RNG {
	return sim.NewRNG(seed)
}

func badChained(base uint64, i int) *sim.RNG {
	return newWorker(base ^ uint64(i)) // want `ad-hoc seed arithmetic .* in a seed position of newWorker`
}

// --- rule 2: seed reuse ---

func badTwice(seed uint64) (a, b *sim.RNG) {
	a = sim.NewRNG(seed)
	b = sim.NewRNG(seed) // want `seed "seed" already constructs a stream`
	return a, b
}

func badDirectAndBase(seed uint64) *sim.RNG {
	derived := sim.StreamSeed(seed, 1)
	r := sim.NewRNG(seed) // want `used both as a sim\.StreamSeed base .* the streams overlap`
	_ = derived
	return r
}

func badDupStream(seed uint64) (a, b *sim.RNG) {
	a = sim.NewRNG(sim.StreamSeed(seed, 7))
	b = sim.NewRNG(sim.StreamSeed(seed, 7)) // want `sim\.StreamSeed\(seed, 7\) repeats the derivation`
	return a, b
}

// --- rule 3: seed captured into a par closure ---

func badParSeed(seed uint64) []float64 {
	return par.Map(4, func(i int) float64 {
		r := sim.NewRNG(seed) // want `seed "seed" is consumed inside a par closure`
		return r.Float64()
	})
}

// --- rule 4: one RNG drawn from in two sibling loops ---

func badTwoPhases(seed uint64) float64 {
	rng := sim.NewRNG(seed)
	var warm, meas float64
	for i := 0; i < 8; i++ {
		warm += rng.Float64()
	}
	for i := 0; i < 8; i++ {
		meas += rng.Float64() // want `RNG "rng" is drawn from in a second loop`
	}
	return warm + meas
}

// drawOne draws from its parameter, so handing an RNG to it counts as a
// draw at the call site (fact propagation again).
func drawOne(r *sim.RNG) float64 {
	return r.Float64()
}

func badHelperPhases(seed uint64) float64 {
	rng := sim.NewRNG(seed)
	var total float64
	for i := 0; i < 4; i++ {
		total += drawOne(rng)
	}
	for i := 0; i < 4; i++ {
		total += drawOne(rng) // want `RNG "rng" is drawn from in a second loop`
	}
	return total
}

// --- sanctioned patterns ---

func goodPerJob(seed uint64) []float64 {
	return par.Map(4, func(i int) float64 {
		r := sim.NewRNG(sim.StreamSeed(seed, uint64(i)))
		return r.Float64()
	})
}

func goodSplitPhases(seed uint64) float64 {
	rng := sim.NewRNG(seed)
	warm := rng.Split()
	meas := rng.Split()
	var total float64
	for i := 0; i < 8; i++ {
		total += warm.Float64()
	}
	for i := 0; i < 8; i++ {
		total += meas.Float64()
	}
	return total
}

func goodReseeded(seed uint64, attempts int) float64 {
	var total float64
	for a := 0; a < attempts; a++ {
		// Reassignment makes each iteration's seed a genuinely new
		// value, so base-and-direct use of the variable is fine.
		seed = sim.StreamSeed(seed, uint64(a))
		rng := sim.NewRNG(seed)
		total += rng.Float64()
	}
	return total
}

func goodDistinctStreams(seed uint64) (a, b *sim.RNG) {
	a = sim.NewRNG(sim.StreamSeed(seed, 0))
	b = sim.NewRNG(sim.StreamSeed(seed, 1))
	return a, b
}
