// Fixture for the parshare obs rule: an obs.Timeline or obs.DecisionLog is
// one observed facility run's artifact state, fed by the scheduler's
// sequential commit loop. Capturing either across a par.Map closure would
// interleave occupancy spans and decision records in worker order — the
// capture must be flagged; building job-local rings inside the closure and
// merging them after the join must not.
package parshare

import (
	"mklite/internal/obs"
	"mklite/internal/par"
	"mklite/internal/trace"
)

func badSharedTimeline() []int {
	tl := obs.NewTimeline(8, 1, 0)
	return par.Map(4, func(i int) int {
		tl.Sample(int64(i), i, 0) // want `par closure captures \*obs\.Timeline "tl" from an enclosing scope`
		return i
	})
}

func badSharedDecisionLog() []int {
	log := obs.NewDecisionLog()
	return par.Map(4, func(i int) int {
		log.Record(obs.Decision{Job: i}) // want `par closure captures \*obs\.DecisionLog "log" from an enclosing scope`
		return i
	})
}

func goodJobLocalRingsMergedAfterJoin() *obs.Timeline {
	tl := obs.NewTimeline(8, 1, 0)
	rings := par.Map(4, func(i int) *trace.Events {
		// Per-job ring built inside the closure: no shared state.
		e := trace.NewEvents(16)
		e.Emit(trace.Event{Name: "step", Cat: "phase", Ph: trace.PhInstant, TS: int64(i)})
		return e
	})
	for job, e := range rings {
		// Merge in batch order after the join — the sanctioned pattern.
		tl.AddJobEvents(job, 0, e.Snapshot(), e.Dropped())
	}
	return tl
}

func goodDecisionLogOutsideFanOut() int {
	log := obs.NewDecisionLog()
	log.Record(obs.Decision{Job: 0, Kind: obs.KindFIFO})
	return log.Len()
}
