// Fixture for the parshare metrics rules: capturing a metrics registry or
// histogram across a par.Map closure must be flagged (recording is plain
// int64 arithmetic under the single-goroutine contract), as must any
// package-level registry; per-job registries built inside the closure and
// merged after the join must not.
package parshare

import (
	"mklite/internal/metrics"
	"mklite/internal/par"
	"mklite/internal/trace"
)

var globalRegistry = metrics.NewRegistry() // want `package-level metrics registry \*metrics\.Registry "globalRegistry"`

var globalHistogram metrics.Histogram // want `package-level metrics registry metrics\.Histogram "globalHistogram"`

func badSharedRegistry() []int {
	reg := metrics.NewRegistry()
	return par.Map(8, func(i int) int {
		reg.Observe("latency_ns", int64(i)) // want `par closure captures \*metrics\.Registry "reg" from an enclosing scope`
		return i
	})
}

func badSharedHistogram() []int {
	var h metrics.Histogram
	return par.Map(4, func(i int) int {
		h.Record(int64(i)) // want `par closure captures metrics\.Histogram "h" from an enclosing scope`
		return i
	})
}

func goodPerJobRegistry() *metrics.Registry {
	merged := metrics.NewRegistry()
	parts := par.Map(8, func(i int) *metrics.Registry {
		reg := metrics.NewRegistry()
		sink := trace.NewSinkObs(nil, nil, reg)
		sink.Observe("latency_ns", int64(i))
		return reg
	})
	// Deterministic aggregation: merge in index order after the join.
	for _, r := range parts {
		merged.Merge(r)
	}
	return merged
}

func goodRegistryOutsideClosure() int64 {
	// Using a registry outside any par closure is not parshare's
	// business, and a function-local registry is per-run state.
	reg := metrics.NewRegistry()
	reg.Observe("latency_ns", 42)
	return reg.Histogram("latency_ns").Count()
}
