// Fixture for the parshare analyzer: capturing per-job simulation state
// across a par.Map closure must be flagged; deriving it inside the job
// must not.
package parshare

import (
	"mklite/internal/par"
	"mklite/internal/sim"
)

func badSharedRNG(seed uint64) []float64 {
	rng := sim.NewRNG(seed)
	return par.Map(8, func(i int) float64 {
		return rng.Float64() // want `par closure captures \*sim\.RNG "rng" from an enclosing scope`
	})
}

func badSharedValue(seed uint64) []uint64 {
	var rng sim.RNG
	_ = rng
	out, _ := par.MapErr(4, func(i int) (uint64, error) {
		r := &rng // want `par closure captures sim\.RNG "rng" from an enclosing scope`
		return r.Uint64(), nil
	})
	return out
}

func badEngine(eng *sim.Engine) []int {
	return par.MapWidth(2, 4, func(i int) int {
		eng.RunUntil(sim.Time(i)) // want `par closure captures \*sim\.Engine "eng" from an enclosing scope`
		return i
	})
}

func badNestedClosure(seed uint64) []float64 {
	rng := sim.NewRNG(seed)
	return par.Map(8, func(i int) float64 {
		f := func() float64 {
			return rng.Float64() // want `par closure captures \*sim\.RNG "rng" from an enclosing scope`
		}
		return f()
	})
}

func goodPerJobStream(seed uint64) []float64 {
	return par.Map(8, func(i int) float64 {
		rng := sim.NewRNG(sim.StreamSeed(seed, uint64(i)))
		return rng.Float64()
	})
}

func goodPlainCapture(scale float64) []float64 {
	// Capturing immutable non-sim state is fine; only per-job
	// simulation state is guarded.
	return par.Map(8, func(i int) float64 {
		return scale * float64(i)
	})
}

func goodOutsideClosure(seed uint64) float64 {
	// Using an RNG outside any par closure is not parshare's business.
	rng := sim.NewRNG(seed)
	return rng.Float64()
}
