// Fixture for the parshare trace rules: capturing a trace sink across a
// par.Map closure must be flagged (emission is single-goroutine by design),
// as must any package-level sink; per-job sinks built inside the closure
// and merged after the join must not.
package parshare

import (
	"mklite/internal/par"
	"mklite/internal/trace"
)

var globalSink *trace.Sink // want `package-level trace sink \*trace\.Sink "globalSink"`

var globalCounters = trace.NewCounters() // want `package-level trace sink \*trace\.Counters "globalCounters"`

func badSharedSink(sink *trace.Sink) []int {
	return par.Map(8, func(i int) int {
		sink.Count("jobs", 1) // want `par closure captures \*trace\.Sink "sink" from an enclosing scope`
		return i
	})
}

func badSharedCounters() []int {
	ctrs := trace.NewCounters()
	return par.Map(8, func(i int) int {
		ctrs.Add("jobs", 1) // want `par closure captures \*trace\.Counters "ctrs" from an enclosing scope`
		return i
	})
}

func badSharedEvents() []int {
	evs := trace.NewEvents(0)
	return par.Map(4, func(i int) int {
		evs.Emit(trace.Event{TS: int64(i)}) // want `par closure captures \*trace\.Events "evs" from an enclosing scope`
		return i
	})
}

func goodPerJobSink() *trace.Counters {
	merged := trace.NewCounters()
	parts := par.Map(8, func(i int) map[string]int64 {
		ctrs := trace.NewCounters()
		sink := trace.NewSink(ctrs, nil)
		sink.Count("jobs", 1)
		return ctrs.Map()
	})
	// Deterministic aggregation: merge in index order after the join.
	for _, m := range parts {
		merged.MergeMap(m)
	}
	return merged
}

func goodSinkOutsideClosure() int64 {
	// Using a sink outside any par closure is not parshare's business,
	// and a function-local sink is per-run state, not a package global.
	ctrs := trace.NewCounters()
	sink := trace.NewSink(ctrs, nil)
	sink.Count("runs", 1)
	return ctrs.Get("runs")
}
