// Fixture for the parshare fault rule: a fault.Injector owns its run's
// fault RNG stream, so capturing one across a par.Map closure makes every
// job's fault draws depend on worker scheduling and must be flagged;
// building the injector inside the job from a stream seed must not.
package parshare

import (
	"mklite/internal/fault"
	"mklite/internal/par"
	"mklite/internal/sim"
)

func badSharedInjector(plan *fault.Plan, seed uint64) []int {
	inj := fault.NewInjector(plan, sim.StreamSeed(seed, fault.StreamCluster))
	return par.Map(8, func(i int) int {
		n, _ := inj.OffloadStalls(100) // want `par closure captures \*fault\.Injector "inj" from an enclosing scope`
		return n
	})
}

func badSharedInjectorValue(plan *fault.Plan) []bool {
	var inj fault.Injector
	_ = inj
	return par.Map(4, func(i int) bool {
		r := &inj // want `par closure captures fault\.Injector "inj" from an enclosing scope`
		return r.Active()
	})
}

func goodPerJobInjector(plan *fault.Plan, seed uint64) []int {
	return par.Map(8, func(i int) int {
		inj := fault.NewInjector(plan, sim.StreamSeed(sim.StreamSeed(seed, uint64(i)), fault.StreamCluster))
		n, _ := inj.OffloadStalls(100)
		return n
	})
}

func goodSharedPlan(plan *fault.Plan) []bool {
	// The Plan is immutable declarative data; only the Injector carries
	// per-run draw state.
	return par.Map(8, func(i int) bool {
		return !plan.Empty()
	})
}

func goodInjectorOutsideClosure(plan *fault.Plan, seed uint64) bool {
	inj := fault.NewInjector(plan, sim.StreamSeed(seed, fault.StreamNode))
	return inj.Active()
}
