// Fixture for the parshare fleet rule: a fleet.Scheduler or fleet.Allocator
// is one facility run's mutable queue/occupancy state, so capturing either
// across a par.Map closure makes node placement — and every co-tenancy
// interference plan derived from it — depend on worker scheduling and must
// be flagged; passing immutable launch specs into the closure must not.
package parshare

import (
	"mklite/internal/fleet"
	"mklite/internal/par"
)

func badSharedAllocator() []bool {
	alloc := fleet.NewAllocator(64, 1)
	return par.Map(8, func(i int) bool {
		return alloc.Fits(4) // want `par closure captures \*fleet\.Allocator "alloc" from an enclosing scope`
	})
}

func badSharedScheduler() []int {
	var sched fleet.Scheduler
	_ = sched
	return par.Map(4, func(i int) int {
		s := &sched // want `par closure captures fleet\.Scheduler "sched" from an enclosing scope`
		_ = s
		return i
	})
}

func goodImmutableLaunchSpecs(jobs []*fleet.Job) []int {
	// Placement decided sequentially before the fan-out; the closure sees
	// only the immutable per-job specs.
	return par.Map(len(jobs), func(i int) int {
		return jobs[i].Nodes * jobs[i].Timesteps
	})
}

func goodAllocatorOutsideClosure() bool {
	alloc := fleet.NewAllocator(8, 2)
	return alloc.Fits(3)
}
