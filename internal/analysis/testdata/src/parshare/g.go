// Fixture for the parshare sched rule: a *sched.State is one run's mutable
// scheduler state (the adaptive policy's EMA, live quantum and RNG stream
// all advance on every Step), and a sched.Policy handle's only job-side use
// is minting per-run State — so capturing either across a par.Map closure
// makes quantum adaptation depend on worker order and must be flagged;
// deriving the policy and its state inside the closure must not.
package parshare

import (
	"mklite/internal/par"
	"mklite/internal/sched"
	"mklite/internal/sim"
)

func badSharedSchedState() []int {
	pol, _ := sched.New(sched.Adaptive, sched.Params{})
	st := pol.NewState(1)
	return par.Map(4, func(i int) int {
		cost := st.Step(sim.Duration(i)) // want `par closure captures \*sched\.State "st" from an enclosing scope`
		return int(cost.Overhead)
	})
}

func badSharedSchedPolicy() []int {
	pol, _ := sched.New(sched.Adaptive, sched.Params{})
	return par.Map(4, func(i int) int {
		st := pol.NewState(uint64(i)) // want `par closure captures sched\.Policy "pol" from an enclosing scope`
		return int(st.Step(sim.Duration(i)).Overhead)
	})
}

func goodJobLocalSchedState() []int {
	return par.Map(4, func(i int) int {
		// Policy and state both derived inside the job: no shared draws.
		pol, _ := sched.New(sched.Adaptive, sched.Params{})
		st := pol.NewState(sim.StreamSeed(1, uint64(i)))
		return int(st.Step(sim.Duration(i)).Overhead)
	})
}

func goodPolicyOutsideFanOut() sched.Kind {
	pol, _ := sched.New(sched.RR, sched.Params{})
	st := pol.NewState(1)
	st.Step(42)
	return pol.Kind()
}
