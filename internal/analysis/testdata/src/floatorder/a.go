// Fixture for the floatorder analyzer: compound float accumulation inside
// an unordered iteration context (map range, channel range, par closure)
// is flagged; slice ranges, per-key updates, and iteration-local
// accumulators are clean.
package floatorder

import "mklite/internal/par"

func badMapSum(weights map[string]float64) float64 {
	var total float64
	for _, w := range weights {
		total += w // want `float accumulation into total inside a map range`
	}
	return total
}

func badMapSub(budget map[int]float64) float64 {
	remaining := 1.0
	for _, b := range budget {
		remaining -= b // want `float accumulation into remaining inside a map range`
	}
	return remaining
}

func badChanSum(ch chan float64) float64 {
	sum := 0.0
	for v := range ch {
		sum += v // want `float accumulation into sum inside a channel range`
	}
	return sum
}

func badParSum(n int) float64 {
	var total float64
	par.Map(n, func(i int) int {
		total += float64(i) // want `float accumulation into total inside a par closure`
		return i
	})
	return total
}

// --- sanctioned patterns ---

func goodSliceSum(xs []float64) float64 {
	// Slice iteration is index-ordered; sequential reduction is the fix
	// floatorder points at.
	var total float64
	for _, x := range xs {
		total += x
	}
	return total
}

func goodParThenReduce(n int) float64 {
	// Collect per-job values index-ordered (par results are), reduce
	// sequentially.
	parts := par.Map(n, func(i int) float64 { return float64(i) })
	var total float64
	for _, p := range parts {
		total += p
	}
	return total
}

func goodIndexed(m, upd map[string]float64) {
	// Per-key update: each key is touched exactly once, no ordering.
	for k, v := range upd {
		m[k] += v
	}
}

func goodLocal(weights map[string]float64) float64 {
	// The accumulator dies with the iteration body; nothing escapes.
	var last float64
	for _, w := range weights {
		scaled := 0.0
		scaled += w * 2
		last = scaled
	}
	return last
}

func goodIntCount(m map[string]int) int {
	// Integer addition is associative; only floats are order-sensitive.
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
