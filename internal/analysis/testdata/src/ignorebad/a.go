// Fixture proving the reason string is mandatory: a bare
// //mklint:ignore <analyzer> directive is reported as malformed and
// suppresses nothing, so the underlying diagnostic still fires.
package ignorebad

func missingReason(m map[string]int) []string {
	var out []string
	//mklint:ignore maprange
	// want(-1) `malformed //mklint:ignore directive`
	for k := range m { // want `appends to out, which outlives the loop`
		out = append(out, k)
	}
	return out
}
