// Fixture for the ignoreaudit analyzer: a //mklint:ignore directive must
// still suppress a live diagnostic of an analyzer that ran. A directive
// that suppresses nothing is stale; one naming an analyzer outside the
// suite can never suppress anything.
package ignoreaudit

func live(m map[string]int) []string {
	var out []string
	//mklint:ignore maprange caller sorts the result before any use
	for k := range m {
		out = append(out, k)
	}
	return out
}

func stale(xs []int) int {
	total := 0
	//mklint:ignore maprange slices range in index order
	// want(-1) `stale //mklint:ignore maprange directive`
	for _, x := range xs {
		total += x
	}
	return total
}

func unknown(xs []int) int {
	//mklint:ignore mapsort sorted downstream
	// want(-1) `names unknown analyzer "mapsort"`
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}
