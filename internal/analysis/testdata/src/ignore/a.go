// Fixture proving //mklint:ignore suppression: both standalone (covers the
// next line) and trailing (covers its own line) placements silence the
// diagnostic, so this package must produce none.
package ignore

func standalone(m map[string]int) []string {
	var out []string
	//mklint:ignore maprange caller sorts the result before any use
	for k := range m {
		out = append(out, k)
	}
	return out
}

func trailing(m map[string]int) []string {
	var out []string
	for k := range m { //mklint:ignore maprange caller sorts the result before any use
		out = append(out, k)
	}
	return out
}
