// Fixture for the nogoroutine analyzer. The harness presents this package
// under an internal/sim import path so the path-scoped analyzer applies.
package nogoroutine

func bad(ch chan int) {
	go func() { ch <- 1 }() // want `bare go statement in simulation-model package`
	go send(ch)             // want `bare go statement in simulation-model package`
}

func send(ch chan int) { ch <- 2 }

func good(ch chan int) {
	send(ch)
}
