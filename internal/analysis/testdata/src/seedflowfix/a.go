// Fixture for mklint -fix: the base+i*prime seed shape carries a
// machine-applicable rewrite to sim.StreamSeed; a.go.golden is the exact
// expected output of applying it.
package seedflowfix

import "mklite/internal/sim"

// Streams builds one generator per worker with the correlated-seed
// anti-pattern; -fix rewrites the argument in place.
func Streams(base uint64, n int) []*sim.RNG {
	out := make([]*sim.RNG, n)
	for i := 0; i < n; i++ {
		out[i] = sim.NewRNG(base + uint64(i)*2654435761) // want `ad-hoc seed arithmetic`
	}
	return out
}
