// Fixture for the noglobalrand analyzer: package-level draws and local
// generator construction are both forbidden, for math/rand and
// math/rand/v2 alike.
package noglobalrand

import (
	"math/rand"

	v2 "math/rand/v2"
)

func bad() {
	_ = rand.Intn(10)                 // want `use of math/rand\.Intn is forbidden`
	_ = rand.Float64()                // want `use of math/rand\.Float64 is forbidden`
	rand.Seed(42)                     // want `use of math/rand\.Seed is forbidden`
	r := rand.New(rand.NewSource(42)) // want `use of math/rand\.New is forbidden` `use of math/rand\.NewSource is forbidden`
	// Methods on an explicit generator are not re-flagged; the rand.New
	// construction site above already is.
	_ = r.Int63()
	_ = v2.IntN(4)    // want `use of math/rand/v2\.IntN is forbidden`
	_ = v2.Float64()  // want `use of math/rand/v2\.Float64 is forbidden`
	_ = v2.Uint64N(9) // want `use of math/rand/v2\.Uint64N is forbidden`
}
