// Fixture for the maprange analyzer: map iteration is flagged only when
// the loop body has order-dependent effects.
package maprange

import (
	"fmt"
	"strings"

	"mklite/internal/sim"
)

// Appending to a slice that outlives the loop leaks iteration order.
func appendOutside(m map[string]int) []string {
	var out []string
	for k := range m { // want `appends to out, which outlives the loop`
		out = append(out, k)
	}
	return out
}

// Appending to a loop-local slice is order-free: it dies each iteration.
func appendInside(m map[string]int) int {
	n := 0
	for k := range m {
		var tmp []string
		tmp = append(tmp, k)
		n += len(tmp)
	}
	return n
}

// Float accumulation is order-sensitive: float addition is not associative.
func floatAccum(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m { // want `accumulates into float sum`
		sum += v
	}
	return sum
}

// Integer accumulation is associative, hence order-free.
func intAccum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Per-key map element updates touch each key exactly once: order-free.
func perKeyFloat(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

// Printing emits bytes in iteration order.
func output(m map[string]int) {
	for k, v := range m { // want `writes output via fmt\.Printf`
		fmt.Printf("%s=%d\n", k, v)
	}
}

// Stream writes (builders, hashes, files) record iteration order too.
func builder(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want `writes to a stream via b\.WriteString`
		b.WriteString(k)
	}
	return b.String()
}

// Scheduling events in map order perturbs same-timestamp tie-breaking in
// the engine's queue, and with it the entire downstream timeline.
func schedule(e *sim.Engine, m map[string]int) {
	for _, v := range m { // want `schedules simulation events via e\.After`
		d := sim.Duration(v)
		e.After(d, func() {})
	}
}
