package analysis

import (
	"fmt"
)

// IgnoreAudit enforces that every //mklint:ignore directive still earns its
// keep: a directive that no longer suppresses any live diagnostic is itself
// reported as an error, with a fix that deletes it. Suppressions are review
// debt — each one records a spot where the determinism contract is bent for
// a stated reason — and a stale one is pure noise that teaches readers to
// skim past the marker. The audit only makes sense when the whole suite has
// run, so the driver executes it after every other analyzer has finished
// with the package (Run is nil); directives naming an analyzer that was not
// part of the run are left alone.
var IgnoreAudit = &Analyzer{
	Name: "ignoreaudit",
	Doc: "report //mklint:ignore directives that no longer suppress any " +
		"diagnostic of the analyzers that ran; stale suppressions are " +
		"errors and must be deleted",
	Run: nil, // driven specially by Analyze, after the rest of the suite
}

// auditPackage reports every stale directive of one package. ranNames holds
// the analyzers that actually ran, so single-analyzer invocations (tests,
// future -run filters) do not condemn directives for checks they skipped. A
// directive naming an analyzer outside the suite is reported too — it can
// never suppress anything.
func auditPackage(pkg *Package, ignores *ignoreIndex, ranNames map[string]bool) []Diagnostic {
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	var diags []Diagnostic
	for _, d := range ignores.all {
		if d.used {
			continue
		}
		var msg string
		switch {
		case d.analyzer != "all" && !known[d.analyzer]:
			msg = fmt.Sprintf("//mklint:ignore names unknown analyzer %q and suppresses nothing; delete it (run `mklint -list` for the suite)", d.analyzer)
		case d.analyzer != "all" && !ranNames[d.analyzer]:
			continue // that analyzer did not run; no verdict
		default:
			msg = fmt.Sprintf("stale //mklint:ignore %s directive: it no longer suppresses any diagnostic; delete it (reason was: %s)", d.analyzer, d.reason)
		}
		diags = append(diags, Diagnostic{
			Pos:      d.pos,
			Analyzer: IgnoreAudit.Name,
			Message:  msg,
			SuggestedFixes: []SuggestedFix{{
				Message: "delete the stale directive",
				Edits: []Edit{{
					Filename:  d.pos.Filename,
					Start:     d.pos.Offset,
					End:       d.end.Offset,
					StartLine: d.pos.Line,
					StartCol:  d.pos.Column,
					EndLine:   d.end.Line,
					EndCol:    d.end.Column,
				}},
			}},
		})
	}
	return diags
}

// Ignores returns the suppression inventory of a finished Result rendered
// one directive per line, stale ones marked. The driver's -ignores mode
// prints it.
func (r *Result) RenderIgnores() []string {
	var lines []string
	for _, ig := range r.Ignores {
		status := "live"
		if !ig.Used {
			status = "STALE"
		}
		lines = append(lines, fmt.Sprintf("%s:%d: %-12s %-5s %s",
			ig.Pos.Filename, ig.Pos.Line, ig.Analyzer, status, ig.Reason))
	}
	return lines
}

// StaleIgnores counts the stale entries of the inventory.
func (r *Result) StaleIgnores() int {
	n := 0
	for _, ig := range r.Ignores {
		if !ig.Used {
			n++
		}
	}
	return n
}
