package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// MapRange flags `range` statements over maps whose bodies have effects
// that observe iteration order. Go randomizes map order per run, so any
// such loop makes results differ between identically seeded runs — the
// exact failure mode the (model, seed) purity contract rules out.
//
// The analyzer looks for four order-sensitive effect classes inside the
// loop body (including nested function literals):
//
//   - appending to a slice declared outside the loop: element order leaks;
//   - compound float accumulation (+=, -=, *=, /=) into a variable
//     declared outside the loop: float arithmetic is not associative, so
//     even a "sum" depends on visit order;
//   - writing output (fmt print functions, Write/WriteString-style
//     methods): bytes are emitted in visit order;
//   - scheduling simulation events (After/At/Spawn/Fire/Send on sim types):
//     the event queue tie-breaks by insertion order, so scheduling from a
//     map range perturbs the whole downstream timeline.
//
// Loops whose bodies only do order-independent work (counting into ints,
// writing other map keys, finding a max) are not flagged. To iterate
// deterministically, range over sorted keys — slices.Sorted(maps.Keys(m))
// — or suppress a genuinely safe site with
// //mklint:ignore maprange <reason>.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc: "flag map iteration whose body appends to slices, accumulates " +
		"floats, writes output, or schedules events — iteration order " +
		"would leak into results; iterate sorted keys instead",
	Run: runMapRange,
}

func runMapRange(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if effect := findOrderEffect(pass, rs); effect != "" {
				pass.Reportf(rs.Pos(), "iteration over map %s %s; iterate sorted keys (e.g. slices.Sorted(maps.Keys(m))) or annotate //mklint:ignore maprange <reason> (determinism contract, see docs/LINTING.md)",
					exprString(rs.X), effect)
			}
			return true
		})
	}
	return nil
}

// findOrderEffect scans the body of a map-range statement for the first
// order-sensitive effect and describes it, or returns "".
func findOrderEffect(pass *Pass, rs *ast.RangeStmt) string {
	var effect string
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if effect != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if e := assignEffect(pass, rs, n); e != "" {
				effect = e
				return false
			}
		case *ast.CallExpr:
			if e := callEffect(pass, n); e != "" {
				effect = e
				return false
			}
		}
		return true
	})
	return effect
}

// assignEffect classifies an assignment inside the loop body.
func assignEffect(pass *Pass, rs *ast.RangeStmt, as *ast.AssignStmt) string {
	// Slice growth: x = append(x, ...) with x declared outside the loop.
	if as.Tok == token.ASSIGN || as.Tok == token.DEFINE {
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass, call) || i >= len(as.Lhs) {
				continue
			}
			if declaredOutside(pass, rs, as.Lhs[i]) {
				return fmt.Sprintf("appends to %s, which outlives the loop", exprString(as.Lhs[i]))
			}
		}
		return ""
	}
	// Compound accumulation: only float targets are order-sensitive
	// (integer addition is associative; map-element updates touch each
	// key once). Indexed targets like m2[k] += v are per-key independent.
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		lhs := as.Lhs[0]
		if _, indexed := lhs.(*ast.IndexExpr); indexed {
			return ""
		}
		tv, ok := pass.TypesInfo.Types[lhs]
		if !ok || tv.Type == nil {
			return ""
		}
		basic, ok := tv.Type.Underlying().(*types.Basic)
		if !ok || basic.Info()&types.IsFloat == 0 {
			return ""
		}
		if declaredOutside(pass, rs, lhs) {
			return fmt.Sprintf("accumulates into float %s — float addition is not associative, so the total depends on visit order", exprString(lhs))
		}
	}
	return ""
}

// outputFuncs are fmt package-level print functions that emit bytes.
var outputFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// writerMethods are method names that append to an output or digest stream.
var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "Print": true, "Printf": true, "Println": true,
}

// schedulingMethods are the sim package entry points that enqueue events or
// processes; calling them in map order reorders the event queue's
// same-timestamp tie-breaking.
var schedulingMethods = map[string]bool{
	"After": true, "At": true, "Spawn": true, "Fire": true, "Send": true,
}

// callEffect classifies a call inside the loop body.
func callEffect(pass *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok {
		return ""
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return ""
	}
	if sig.Recv() == nil {
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && outputFuncs[fn.Name()] {
			return fmt.Sprintf("writes output via fmt.%s in iteration order", fn.Name())
		}
		return ""
	}
	if writerMethods[fn.Name()] {
		return fmt.Sprintf("writes to a stream via %s in iteration order", exprString(sel))
	}
	if schedulingMethods[fn.Name()] && recvFromSim(sig) {
		return fmt.Sprintf("schedules simulation events via %s in iteration order", exprString(sel))
	}
	return ""
}

// recvFromSim reports whether the method receiver's named type lives in the
// simulation core package.
func recvFromSim(sig *types.Signature) bool {
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path := named.Obj().Pkg().Path()
	return path == "mklite/internal/sim" || path == "sim"
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}

// declaredOutside reports whether the base identifier of expr refers to an
// object declared outside the range statement (so mutations survive the
// loop). Unresolvable expressions are treated as inside, erring quiet.
func declaredOutside(pass *Pass, rs *ast.RangeStmt, expr ast.Expr) bool {
	id := baseIdent(expr)
	if id == nil {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() < rs.Pos() || obj.Pos() >= rs.End()
}

// baseIdent unwraps selectors, indexing, derefs and parens to the leftmost
// identifier.
func baseIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// exprString renders a short source-like form of simple expressions for
// diagnostics.
func exprString(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.ParenExpr:
		return "(" + exprString(e.X) + ")"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.BasicLit:
		return e.Value
	case *ast.BinaryExpr:
		return exprString(e.X) + e.Op.String() + exprString(e.Y)
	case *ast.UnaryExpr:
		return e.Op.String() + exprString(e.X)
	default:
		return "expression"
	}
}
