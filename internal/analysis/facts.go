package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"maps"
	"reflect"
	"slices"
)

// A Fact is a datum an analyzer computes about a package-level object
// (function, method, variable) of the package under analysis and publishes
// for passes over importing packages to consult. Facts are what make the
// suite interprocedural across package boundaries: seedflow, for example,
// exports a fact marking which parameters of an exported function flow into
// sim.NewRNG, so a call in another package can be checked against the same
// contract as a direct sim.NewRNG call.
//
// Fact values must be pointers to gob-encodable structs and must be
// registered once with RegisterFact. The shape mirrors
// golang.org/x/tools/go/analysis facts: serialization is mandatory, not an
// optimisation — a fact that does not survive the gob round trip would also
// not survive a future on-disk cache keyed to the `go list -deps -export`
// artifacts the loader already consumes.
type Fact interface {
	// AFact is a marker method; it has no behaviour.
	AFact()
}

// RegisterFact registers the concrete type of fact with gob so per-package
// fact sets can be encoded and decoded. Each analyzer registers its fact
// types from an init function.
func RegisterFact(fact Fact) {
	gob.Register(fact)
}

// A factKey names one object of one package, stably across the two views of
// a package the loader produces (type-checked from source when the package
// is analyzed, imported from gc export data when a later package refers to
// it). Package-level objects are keyed by name; methods by
// "ReceiverType.Method".
type factKey struct {
	Pkg    string
	Object string
}

// objectFactKey derives the stable key for obj, or ok=false if obj is not a
// package-level object facts can attach to.
func objectFactKey(obj types.Object) (factKey, bool) {
	if obj == nil || obj.Pkg() == nil {
		return factKey{}, false
	}
	name := obj.Name()
	if fn, ok := obj.(*types.Func); ok {
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				return factKey{}, false
			}
			name = named.Obj().Name() + "." + fn.Name()
		}
	}
	return factKey{Pkg: obj.Pkg().Path(), Object: name}, true
}

// A factEntry is the serialized form of one object fact.
type factEntry struct {
	Object string
	Fact   Fact
}

// A factStore holds one analyzer's facts across a whole Run. Facts exported
// while analyzing a package are held live; when the package's pass
// completes, they are sealed into a gob blob keyed by import path — the
// in-process analogue of the .facts side files a distributed build would
// write next to its export data. Importing a fact from an already-analyzed
// package always goes through the gob decode, so the serialized form is the
// form of record.
type factStore struct {
	current string            // import path of the package being analyzed
	live    map[string]Fact   // facts of the current package, by object key
	blobs   map[string][]byte // sealed per-package fact sets, gob-encoded
	// cache holds the decoded view of blobs, by package.
	cache map[string]map[string]Fact
}

func newFactStore() *factStore {
	return &factStore{
		live:  map[string]Fact{},
		blobs: map[string][]byte{},
		cache: map[string]map[string]Fact{},
	}
}

// begin readies the store for a pass over pkgPath.
func (s *factStore) begin(pkgPath string) {
	s.current = pkgPath
	s.live = map[string]Fact{}
}

// seal gob-encodes the current package's facts and archives the blob. The
// entries are sorted by object key so the encoding — and anything derived
// from it — is deterministic.
func (s *factStore) seal() error {
	if s.current == "" {
		return nil
	}
	var entries []factEntry
	for _, name := range slices.Sorted(maps.Keys(s.live)) {
		entries = append(entries, factEntry{Object: name, Fact: s.live[name]})
	}
	if len(entries) > 0 {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(entries); err != nil {
			return fmt.Errorf("encoding facts for %s: %w", s.current, err)
		}
		s.blobs[s.current] = buf.Bytes()
	}
	s.current = ""
	s.live = map[string]Fact{}
	return nil
}

// export records fact for obj, which must belong to the package currently
// being analyzed.
func (s *factStore) export(obj types.Object, fact Fact) error {
	key, ok := objectFactKey(obj)
	if !ok {
		return fmt.Errorf("cannot attach a fact to %v", obj)
	}
	if key.Pkg != s.current {
		return fmt.Errorf("fact exported for object %s of package %s while analyzing %s", key.Object, key.Pkg, s.current)
	}
	s.live[key.Object] = fact
	return nil
}

// lookup returns the stored fact for obj, consulting the live set for the
// current package and the decoded gob archive for any other.
func (s *factStore) lookup(obj types.Object) (Fact, bool) {
	key, ok := objectFactKey(obj)
	if !ok {
		return nil, false
	}
	if key.Pkg == s.current {
		f, ok := s.live[key.Object]
		return f, ok
	}
	decoded, ok := s.cache[key.Pkg]
	if !ok {
		decoded = map[string]Fact{}
		if blob := s.blobs[key.Pkg]; blob != nil {
			var entries []factEntry
			if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&entries); err == nil {
				for _, e := range entries {
					decoded[e.Object] = e.Fact
				}
			}
		}
		s.cache[key.Pkg] = decoded
	}
	f, ok := decoded[key.Object]
	return f, ok
}

// ExportObjectFact attaches fact to obj, a package-level object (or method)
// of the package under analysis, making it visible to later passes of the
// same analyzer over importing packages.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) error {
	if p.facts == nil {
		return fmt.Errorf("analyzer %s has no fact store", p.Analyzer.Name)
	}
	return p.facts.export(obj, fact)
}

// ImportObjectFact copies the fact previously exported for obj — by this
// pass for the current package, or by an earlier pass over the defining
// package — into the value fact points to, reporting whether one existed.
// Packages are analyzed in dependency order, so by the time a call site is
// reached the callee's facts are always available.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if p.facts == nil {
		return false
	}
	stored, ok := p.facts.lookup(obj)
	if !ok {
		return false
	}
	sv := reflect.ValueOf(stored)
	fv := reflect.ValueOf(fact)
	if sv.Type() != fv.Type() || fv.Kind() != reflect.Pointer {
		return false
	}
	fv.Elem().Set(sv.Elem())
	return true
}
