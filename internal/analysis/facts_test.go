package analysis

// White-box test of the facts mechanism: seedflow facts exported while
// analyzing one package must reach an importing package through the
// gob-serialized store — serialization is the form of record, so this
// exercises the encode/decode round trip, not just an in-memory map.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// memImporter resolves imports from an in-memory set of checked packages.
type memImporter map[string]*types.Package

func (m memImporter) Import(path string) (*types.Package, error) {
	if p, ok := m[path]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("unknown import %q", path)
}

// checkSrc parses and type-checks one single-file package from source.
func checkSrc(t *testing.T, fset *token.FileSet, imp types.Importer, path, src string) *Package {
	t.Helper()
	f, err := parser.ParseFile(fset, path+"/x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := newTypesInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-checking %s: %v", path, err)
	}
	return &Package{
		ImportPath: path,
		Fset:       fset,
		Files:      []*ast.File{f},
		Types:      tpkg,
		TypesInfo:  info,
	}
}

// A miniature stand-in for internal/sim: the import path suffix is what
// seedflow keys on, so the fixture package lives at mklite/internal/sim.
const factsSimSrc = `package sim

type RNG struct{ state uint64 }

func NewRNG(seed uint64) *RNG               { return &RNG{state: seed} }
func StreamSeed(base, stream uint64) uint64 { return base + stream }

func (r *RNG) Uint64() uint64   { r.state++; return r.state }
func (r *RNG) Float64() float64 { return float64(r.Uint64()) }
`

// Package a's NewWorker sinks its parameter into sim.NewRNG and DrawPair
// draws from its *sim.RNG parameter — both become exported facts.
const factsASrc = `package a

import "mklite/internal/sim"

func NewWorker(seed uint64) *sim.RNG { return sim.NewRNG(seed) }

func DrawPair(r *sim.RNG) float64 { return r.Float64() + r.Float64() }
`

// Package b violates rules 1 and 4 only through package a's functions: every
// diagnostic here depends on facts imported across the package boundary.
const factsBSrc = `package b

import "mklite/internal/a"

func Correlated(base uint64, i int) {
	_ = a.NewWorker(base ^ uint64(i))
}

func TwoPhases(seed uint64) float64 {
	rng := a.NewWorker(seed)
	var t float64
	for i := 0; i < 3; i++ {
		t += a.DrawPair(rng)
	}
	for i := 0; i < 3; i++ {
		t += a.DrawPair(rng)
	}
	return t
}
`

func loadFactsFixture(t *testing.T) (simPkg, aPkg, bPkg *Package) {
	t.Helper()
	fset := token.NewFileSet()
	imp := memImporter{}
	simPkg = checkSrc(t, fset, imp, "mklite/internal/sim", factsSimSrc)
	imp["mklite/internal/sim"] = simPkg.Types
	aPkg = checkSrc(t, fset, imp, "mklite/internal/a", factsASrc)
	imp["mklite/internal/a"] = aPkg.Types
	bPkg = checkSrc(t, fset, imp, "mklite/internal/b", factsBSrc)
	return simPkg, aPkg, bPkg
}

func TestSeedFactsCrossPackage(t *testing.T) {
	simPkg, aPkg, bPkg := loadFactsFixture(t)
	diags, err := Run([]*Package{simPkg, aPkg, bPkg}, []*Analyzer{SeedFlow})
	if err != nil {
		t.Fatal(err)
	}
	var arith, phases bool
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "ad-hoc seed arithmetic") &&
			strings.Contains(d.Message, "a.NewWorker"):
			arith = true
		case strings.Contains(d.Message, "drawn from in a second loop"):
			phases = true
		default:
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if !arith {
		t.Error("seed-parameter fact did not cross the package boundary: no ad-hoc arithmetic diagnostic for a.NewWorker's argument")
	}
	if !phases {
		t.Error("rng-parameter fact did not cross the package boundary: no two-loop diagnostic for a.DrawPair's argument")
	}
}

// TestSeedFactsRequireProducerPass is the control: analyzing b without
// having analyzed a first leaves the fact store empty, so b is silent.
// Together with TestSeedFactsCrossPackage this proves the diagnostics come
// from transported facts, not local reasoning.
func TestSeedFactsRequireProducerPass(t *testing.T) {
	_, _, bPkg := loadFactsFixture(t)
	diags, err := Run([]*Package{bPkg}, []*Analyzer{SeedFlow})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic without producer pass: %s", d)
	}
}

// TestFactsAreSerialized pins the mechanism itself: after a package is
// sealed, its facts are held only as gob blobs, and a foreign-package
// lookup decodes a fresh value rather than aliasing the producer's.
func TestFactsAreSerialized(t *testing.T) {
	simPkg, aPkg, _ := loadFactsFixture(t)
	store := newFactStore()
	for _, pkg := range []*Package{simPkg, aPkg} {
		store.begin(pkg.ImportPath)
		pass := &Pass{
			Analyzer:  SeedFlow,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			facts:     store,
			ignores:   buildIgnoreIndex(pkg.Fset, pkg.Files),
			sink:      func(Diagnostic) {},
		}
		if err := SeedFlow.Run(pass); err != nil {
			t.Fatal(err)
		}
		if err := store.seal(); err != nil {
			t.Fatal(err)
		}
	}
	blob, ok := store.blobs["mklite/internal/a"]
	if !ok || len(blob) == 0 {
		t.Fatal("sealing left no gob blob for mklite/internal/a")
	}
	fn, ok := aPkg.Types.Scope().Lookup("NewWorker").(*types.Func)
	if !ok {
		t.Fatal("NewWorker not found in package a")
	}
	store.begin("mklite/internal/b")
	var fact seedParamsFact
	consumer := &Pass{facts: store}
	if !consumer.ImportObjectFact(fn, &fact) {
		t.Fatal("ImportObjectFact found no fact for a.NewWorker after sealing")
	}
	if len(fact.Params) != 1 || fact.Params[0] != 0 {
		t.Fatalf("decoded fact = %+v, want Params [0]", fact)
	}
}
