package analysis

import (
	"go/ast"
	"strings"
)

// simOnlyPackages are the model packages where raw goroutines are banned.
// The engine promises that exactly one goroutine — the engine loop or a
// single cooperative process — runs at any moment; a bare `go` statement
// hands scheduling to the Go runtime, whose interleaving differs run to
// run and races with simulation state. Model concurrency must go through
// sim.Engine.Spawn / sim.Proc, whose handoff protocol keeps execution
// sequential. (The one legitimate `go` in the tree is inside sim.Proc
// itself, carrying an explicit //mklint:ignore with the invariant that
// justifies it.)
var simOnlyPackages = []string{
	"internal/sim",
	"internal/kernel",
	"internal/cluster",
}

// NoGoroutine forbids bare go statements in the simulation-model packages.
var NoGoroutine = &Analyzer{
	Name: "nogoroutine",
	Doc: "forbid bare go statements in internal/sim, internal/kernel and " +
		"internal/cluster; model concurrency must use the cooperative " +
		"sim.Proc abstraction",
	AppliesTo: func(importPath string) bool {
		for _, root := range simOnlyPackages {
			// Match the package itself and any subpackage of it,
			// with root anchored at a path-segment boundary.
			if importPath == root ||
				strings.HasSuffix(importPath, "/"+root) ||
				strings.Contains(importPath, "/"+root+"/") ||
				strings.HasPrefix(importPath, root+"/") {
				return true
			}
		}
		return false
	},
	Run: runNoGoroutine,
}

func runNoGoroutine(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			pass.Reportf(gs.Pos(), "bare go statement in simulation-model package %s: the engine requires exactly one runnable goroutine; use sim.Engine.Spawn and the cooperative sim.Proc API (determinism contract, see docs/LINTING.md)",
				pass.Pkg.Path())
			return true
		})
	}
	return nil
}
